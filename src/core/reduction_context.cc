#include "core/reduction_context.h"

#include "common/status.h"
#include "core/parallel.h"

namespace fairbc {

ReductionContext::ReductionContext() : scratch_(1) {}

ReductionContext::ReductionContext(unsigned num_threads) {
  if (num_threads > 1) {
    owned_pool_ = std::make_unique<ThreadPool>(num_threads);
    pool_ = owned_pool_.get();
    num_workers_ = pool_->num_threads();
  }
  scratch_.resize(num_workers_);
}

ReductionContext::~ReductionContext() = default;

std::vector<std::uint32_t>& ReductionContext::CountScratch(unsigned worker,
                                                           std::size_t size) {
  FAIRBC_CHECK(worker < scratch_.size());
  auto& counts = scratch_[worker].counts;
  if (counts.size() < size) counts.assign(size, 0);
  return counts;
}

std::vector<char>& ReductionContext::FlagScratch(unsigned worker,
                                                 std::size_t size) {
  FAIRBC_CHECK(worker < scratch_.size());
  auto& flags = scratch_[worker].flags;
  if (flags.size() < size) flags.assign(size, 0);
  return flags;
}

}  // namespace fairbc
