#include "core/ordering.h"

#include <algorithm>
#include <numeric>

namespace fairbc {

std::vector<VertexId> MakeOrder(const BipartiteGraph& g, Side side,
                                VertexOrdering ordering) {
  std::vector<VertexId> order(g.NumVertices(side));
  std::iota(order.begin(), order.end(), 0);
  if (ordering == VertexOrdering::kDegreeDesc) {
    std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
      return g.Degree(side, a) > g.Degree(side, b);
    });
  }
  return order;
}

}  // namespace fairbc
