#include "core/cfcore.h"

#include <algorithm>
#include <atomic>
#include <deque>

#include "common/status.h"
#include "core/fcore.h"
#include "core/parallel.h"
#include "core/reduction_context.h"

namespace fairbc {

namespace {

// Serial ego colorful peel: the exact traversal the pre-parallel code ran
// (queue order preserved), used when no pool is available.
void EgoPeelSerial(const UnipartiteGraph& h, const Coloring& coloring,
                   std::uint32_t k, std::vector<char>& alive,
                   std::vector<std::uint32_t>& mult,
                   std::vector<std::uint32_t>& ego_deg) {
  const VertexId n = h.NumVertices();
  const AttrId na = h.num_attrs;
  const std::uint32_t nc = std::max<std::uint32_t>(coloring.num_colors, 1);
  const std::size_t stride = static_cast<std::size_t>(na) * nc;

  auto bump = [&](VertexId v, AttrId a, std::uint32_t c) {
    std::uint32_t& slot = mult[v * stride + static_cast<std::size_t>(a) * nc + c];
    if (slot == 0) ++ego_deg[static_cast<std::size_t>(v) * na + a];
    ++slot;
  };
  for (VertexId v = 0; v < n; ++v) {
    if (!alive[v]) continue;
    bump(v, h.attrs[v], coloring.color[v]);
    for (VertexId w : h.Neighbors(v)) {
      if (alive[w]) bump(v, h.attrs[w], coloring.color[w]);
    }
  }

  auto violates = [&](VertexId v) {
    for (AttrId a = 0; a < na; ++a) {
      if (ego_deg[static_cast<std::size_t>(v) * na + a] < k) return true;
    }
    return false;
  };

  std::deque<VertexId> queue;
  for (VertexId v = 0; v < n; ++v) {
    if (alive[v] && violates(v)) {
      alive[v] = 0;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop_front();
    const AttrId ua = h.attrs[u];
    const std::uint32_t uc = coloring.color[u];
    for (VertexId v : h.Neighbors(u)) {
      if (!alive[v]) continue;
      std::uint32_t& slot =
          mult[v * stride + static_cast<std::size_t>(ua) * nc + uc];
      FAIRBC_CHECK(slot > 0);
      --slot;
      if (slot == 0) {
        --ego_deg[static_cast<std::size_t>(v) * na + ua];
        if (violates(v)) {
          alive[v] = 0;
          queue.push_back(v);
        }
      }
    }
  }
}

// Frontier-based bulk-synchronous ego colorful peel (same fixpoint as the
// serial queue — see the overestimation argument in fcore.cc). The color
// multiplicity slots and ego degrees are decremented with atomics; the
// slot's 1 -> 0 transition is what decrements the ego degree, and each
// edge contributes that transition at most once.
void EgoPeelParallel(const UnipartiteGraph& h, const Coloring& coloring,
                     std::uint32_t k, std::vector<char>& alive,
                     std::vector<std::uint32_t>& mult,
                     std::vector<std::uint32_t>& ego_deg, ThreadPool& pool) {
  const VertexId n = h.NumVertices();
  const AttrId na = h.num_attrs;
  const std::uint32_t nc = std::max<std::uint32_t>(coloring.num_colors, 1);
  const std::size_t stride = static_cast<std::size_t>(na) * nc;

  // Init: vertex v's multiplicity row is filled only by v's own chunk.
  ParallelForChunks(pool, n, [&](std::uint64_t begin, std::uint64_t end,
                                 unsigned) {
    auto bump = [&](VertexId v, AttrId a, std::uint32_t c) {
      std::uint32_t& slot =
          mult[v * stride + static_cast<std::size_t>(a) * nc + c];
      if (slot == 0) ++ego_deg[static_cast<std::size_t>(v) * na + a];
      ++slot;
    };
    for (VertexId v = static_cast<VertexId>(begin); v < end; ++v) {
      if (!alive[v]) continue;
      bump(v, h.attrs[v], coloring.color[v]);
      for (VertexId w : h.Neighbors(v)) {
        if (alive[w]) bump(v, h.attrs[w], coloring.color[w]);
      }
    }
  });

  auto violates = [&](VertexId v) {
    for (AttrId a = 0; a < na; ++a) {
      if (std::atomic_ref<std::uint32_t>(
              ego_deg[static_cast<std::size_t>(v) * na + a])
              .load(std::memory_order_relaxed) < k) {
        return true;
      }
    }
    return false;
  };

  std::vector<std::vector<VertexId>> local(pool.num_threads());
  ParallelForChunks(pool, n, [&](std::uint64_t begin, std::uint64_t end,
                                 unsigned worker) {
    for (VertexId v = static_cast<VertexId>(begin); v < end; ++v) {
      if (alive[v] && violates(v)) {
        alive[v] = 0;
        local[worker].push_back(v);
      }
    }
  });

  std::vector<VertexId> frontier;
  auto drain_local = [&] {
    frontier.clear();
    for (auto& buf : local) {
      frontier.insert(frontier.end(), buf.begin(), buf.end());
      buf.clear();
    }
  };
  drain_local();

  std::vector<VertexId> current;
  while (!frontier.empty()) {
    current.swap(frontier);
    ParallelForChunks(pool, current.size(), [&](std::uint64_t begin,
                                                std::uint64_t end,
                                                unsigned worker) {
      auto& out = local[worker];
      for (std::uint64_t i = begin; i < end; ++i) {
        const VertexId u = current[i];
        const AttrId ua = h.attrs[u];
        const std::uint32_t uc = coloring.color[u];
        for (VertexId v : h.Neighbors(u)) {
          std::atomic_ref<char> alive_ref(alive[v]);
          if (alive_ref.load(std::memory_order_relaxed) == 0) continue;
          std::atomic_ref<std::uint32_t> slot(
              mult[v * stride + static_cast<std::size_t>(ua) * nc + uc]);
          const std::uint32_t prev =
              slot.fetch_sub(1, std::memory_order_relaxed);
          FAIRBC_CHECK(prev > 0);
          if (prev == 1) {
            std::atomic_ref<std::uint32_t>(
                ego_deg[static_cast<std::size_t>(v) * na + ua])
                .fetch_sub(1, std::memory_order_relaxed);
            if (violates(v)) {
              char expected = 1;
              if (alive_ref.compare_exchange_strong(
                      expected, 0, std::memory_order_relaxed)) {
                out.push_back(v);
              }
            }
          }
        }
      }
    });
    drain_local();
  }
}

}  // namespace

void EgoColorfulCorePeel(const UnipartiteGraph& h, const Coloring& coloring,
                         std::uint32_t k, std::vector<char>& alive,
                         std::size_t* meter_bytes, ReductionContext* ctx) {
  ThreadPool* pool = ctx != nullptr ? ctx->pool() : nullptr;
  const VertexId n = h.NumVertices();
  const AttrId na = h.num_attrs;
  const std::uint32_t nc = std::max<std::uint32_t>(coloring.num_colors, 1);
  FAIRBC_CHECK(alive.size() == n);

  // Color multiplicity matrix M_v(attr, color) over N(v) ∪ {v}, flattened,
  // plus the ego colorful degrees ED_a(v) (count of nonzero color slots).
  const std::size_t stride = static_cast<std::size_t>(na) * nc;
  std::vector<std::uint32_t> mult(static_cast<std::size_t>(n) * stride, 0);
  std::vector<std::uint32_t> ego_deg(static_cast<std::size_t>(n) * na, 0);
  if (meter_bytes != nullptr) {
    *meter_bytes += mult.size() * sizeof(std::uint32_t) +
                    ego_deg.size() * sizeof(std::uint32_t);
  }

  if (pool != nullptr && pool->num_threads() > 1) {
    EgoPeelParallel(h, coloring, k, alive, mult, ego_deg, *pool);
  } else {
    EgoPeelSerial(h, coloring, k, alive, mult, ego_deg);
  }
}

namespace {

// Shared colorful phase: build the 2-hop graph on `fair_side`, apply the
// clique-size degree bound, color, peel the ego colorful k-core, and
// clear the masks of removed vertices. Each stage accumulates into its
// phase timer on the context (construct / color / peel).
void ColorfulPhase(const BipartiteGraph& g, Side fair_side,
                   std::uint32_t common_threshold, std::uint32_t k,
                   bool per_attr, SideMasks& masks, std::size_t* bytes,
                   ReductionContext* ctx) {
  if (common_threshold == 0) return;  // 2-hop condition degenerate; skip.
  ReductionPhaseTimes* times = ctx != nullptr ? &ctx->times() : nullptr;

  UnipartiteGraph h;
  std::vector<char>& alive =
      fair_side == Side::kLower ? masks.lower_alive : masks.upper_alive;
  {
    ScopedPhaseTimer timer(times != nullptr ? &times->construct_seconds
                                            : nullptr,
                           ctx != nullptr ? ctx->trace() : nullptr,
                           "construct");
    h = per_attr
            ? BiConstruct2HopGraph(g, fair_side, common_threshold, masks, ctx)
            : Construct2HopGraph(g, fair_side, common_threshold, masks, ctx);
    if (bytes != nullptr) *bytes += h.MemoryBytes();

    // A fair biclique has at least num_attrs * k vertices on the fair
    // side, so each participant needs num_attrs * k - 1 neighbors in `h`
    // (paper Alg. 2 lines 4-5).
    const std::int64_t min_degree =
        static_cast<std::int64_t>(g.NumAttrs(fair_side)) * k - 1;
    for (VertexId v = 0; v < h.NumVertices(); ++v) {
      if (alive[v] && static_cast<std::int64_t>(h.Degree(v)) < min_degree) {
        alive[v] = 0;
      }
    }
  }

  Coloring coloring;
  {
    ScopedPhaseTimer timer(times != nullptr ? &times->color_seconds : nullptr,
                           ctx != nullptr ? ctx->trace() : nullptr, "color");
    // Jones–Plassmann evaluates the same degree-then-id greedy fixpoint in
    // parallel rounds, so the coloring (and hence the peel below) is
    // byte-identical to the serial GreedyColor path.
    coloring = ctx != nullptr && ctx->pool() != nullptr
                   ? JonesPlassmannColor(h, alive, ctx)
                   : GreedyColor(h, alive);
  }

  ScopedPhaseTimer timer(times != nullptr ? &times->peel_seconds : nullptr,
                         ctx != nullptr ? ctx->trace() : nullptr, "peel");
  EgoColorfulCorePeel(h, coloring, k, alive, bytes, ctx);
}

}  // namespace

PruneResult CFCore(const BipartiteGraph& g, std::uint32_t alpha,
                   std::uint32_t beta, ReductionContext* ctx) {
  PruneResult result;
  result.masks = FCore(g, alpha, beta, ctx);
  ColorfulPhase(g, Side::kLower, alpha, beta, /*per_attr=*/false, result.masks,
                &result.peak_struct_bytes, ctx);
  FCoreInPlace(g, alpha, beta, result.masks, ctx);
  return result;
}

PruneResult BCFCore(const BipartiteGraph& g, std::uint32_t alpha,
                    std::uint32_t beta, ReductionContext* ctx) {
  PruneResult result;
  result.masks = BFCore(g, alpha, beta, ctx);
  // Lower side: vertices must share alpha common neighbors per upper
  // class; upper side: beta common neighbors per lower class.
  ColorfulPhase(g, Side::kLower, alpha, beta, /*per_attr=*/true, result.masks,
                &result.peak_struct_bytes, ctx);
  ColorfulPhase(g, Side::kUpper, beta, alpha, /*per_attr=*/true, result.masks,
                &result.peak_struct_bytes, ctx);
  BFCoreInPlace(g, alpha, beta, result.masks, ctx);
  return result;
}

}  // namespace fairbc
