#include "core/cfcore.h"

#include <algorithm>
#include <deque>

#include "common/status.h"
#include "core/fcore.h"

namespace fairbc {

void EgoColorfulCorePeel(const UnipartiteGraph& h, const Coloring& coloring,
                         std::uint32_t k, std::vector<char>& alive,
                         std::size_t* meter_bytes) {
  const VertexId n = h.NumVertices();
  const AttrId na = h.num_attrs;
  const std::uint32_t nc = std::max<std::uint32_t>(coloring.num_colors, 1);
  FAIRBC_CHECK(alive.size() == n);

  // Color multiplicity matrix M_v(attr, color) over N(v) ∪ {v}, flattened,
  // plus the ego colorful degrees ED_a(v) (count of nonzero color slots).
  const std::size_t stride = static_cast<std::size_t>(na) * nc;
  std::vector<std::uint32_t> mult(static_cast<std::size_t>(n) * stride, 0);
  std::vector<std::uint32_t> ego_deg(static_cast<std::size_t>(n) * na, 0);
  if (meter_bytes != nullptr) {
    *meter_bytes += mult.size() * sizeof(std::uint32_t) +
                    ego_deg.size() * sizeof(std::uint32_t);
  }

  auto bump = [&](VertexId v, AttrId a, std::uint32_t c) {
    std::uint32_t& slot = mult[v * stride + static_cast<std::size_t>(a) * nc + c];
    if (slot == 0) ++ego_deg[static_cast<std::size_t>(v) * na + a];
    ++slot;
  };
  for (VertexId v = 0; v < n; ++v) {
    if (!alive[v]) continue;
    bump(v, h.attrs[v], coloring.color[v]);
    for (VertexId w : h.adj[v]) {
      if (alive[w]) bump(v, h.attrs[w], coloring.color[w]);
    }
  }

  auto violates = [&](VertexId v) {
    for (AttrId a = 0; a < na; ++a) {
      if (ego_deg[static_cast<std::size_t>(v) * na + a] < k) return true;
    }
    return false;
  };

  std::deque<VertexId> queue;
  for (VertexId v = 0; v < n; ++v) {
    if (alive[v] && violates(v)) {
      alive[v] = 0;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop_front();
    const AttrId ua = h.attrs[u];
    const std::uint32_t uc = coloring.color[u];
    for (VertexId v : h.adj[u]) {
      if (!alive[v]) continue;
      std::uint32_t& slot =
          mult[v * stride + static_cast<std::size_t>(ua) * nc + uc];
      FAIRBC_CHECK(slot > 0);
      --slot;
      if (slot == 0) {
        --ego_deg[static_cast<std::size_t>(v) * na + ua];
        if (violates(v)) {
          alive[v] = 0;
          queue.push_back(v);
        }
      }
    }
  }
}

namespace {

// Shared colorful phase: build the 2-hop graph on `fair_side`, apply the
// clique-size degree bound, color, peel the ego colorful k-core, and
// clear the masks of removed vertices.
void ColorfulPhase(const BipartiteGraph& g, Side fair_side,
                   std::uint32_t common_threshold, std::uint32_t k,
                   bool per_attr, SideMasks& masks, std::size_t* bytes) {
  if (common_threshold == 0) return;  // 2-hop condition degenerate; skip.
  UnipartiteGraph h =
      per_attr ? BiConstruct2HopGraph(g, fair_side, common_threshold, masks)
               : Construct2HopGraph(g, fair_side, common_threshold, masks);
  if (bytes != nullptr) *bytes += h.MemoryBytes();

  std::vector<char>& alive =
      fair_side == Side::kLower ? masks.lower_alive : masks.upper_alive;

  // A fair biclique has at least num_attrs * k vertices on the fair side,
  // so each participant needs num_attrs * k - 1 neighbors in `h`
  // (paper Alg. 2 lines 4-5).
  const std::int64_t min_degree =
      static_cast<std::int64_t>(g.NumAttrs(fair_side)) * k - 1;
  for (VertexId v = 0; v < h.NumVertices(); ++v) {
    if (alive[v] && static_cast<std::int64_t>(h.Degree(v)) < min_degree) {
      alive[v] = 0;
    }
  }

  Coloring coloring = GreedyColor(h, alive);
  EgoColorfulCorePeel(h, coloring, k, alive, bytes);
}

}  // namespace

PruneResult CFCore(const BipartiteGraph& g, std::uint32_t alpha,
                   std::uint32_t beta) {
  PruneResult result;
  result.masks = FCore(g, alpha, beta);
  ColorfulPhase(g, Side::kLower, alpha, beta, /*per_attr=*/false, result.masks,
                &result.peak_struct_bytes);
  FCoreInPlace(g, alpha, beta, result.masks);
  return result;
}

PruneResult BCFCore(const BipartiteGraph& g, std::uint32_t alpha,
                    std::uint32_t beta) {
  PruneResult result;
  result.masks = BFCore(g, alpha, beta);
  // Lower side: vertices must share alpha common neighbors per upper
  // class; upper side: beta common neighbors per lower class.
  ColorfulPhase(g, Side::kLower, alpha, beta, /*per_attr=*/true, result.masks,
                &result.peak_struct_bytes);
  ColorfulPhase(g, Side::kUpper, beta, alpha, /*per_attr=*/true, result.masks,
                &result.peak_struct_bytes);
  BFCoreInPlace(g, alpha, beta, result.masks);
  return result;
}

}  // namespace fairbc
