#ifndef FAIRBC_CORE_TWO_HOP_GRAPH_H_
#define FAIRBC_CORE_TWO_HOP_GRAPH_H_

#include <cstdint>

#include "graph/bipartite_graph.h"
#include "graph/unipartite_graph.h"

namespace fairbc {

class ReductionContext;

/// Paper Alg. 3 (Construct2HopGraph): connects two alive vertices of
/// `fair_side` iff they share at least `alpha` alive common neighbors.
/// Runs in O(sum of squared degrees) like the paper's counter sweep.
///
/// With a `ReductionContext` carrying a pool the counter sweeps shard by
/// vertex range across workers (each worker sweeps with private
/// counter/flag scratch from the context), the per-vertex edge counts are
/// prefix-summed into the CSR offsets, and the shard outputs are copied
/// into place. The output is a pure function of (g, masks, alpha) — byte
/// identical at every thread count, including the serial null-context
/// path.
UnipartiteGraph Construct2HopGraph(const BipartiteGraph& g, Side fair_side,
                                   std::uint32_t alpha, const SideMasks& masks,
                                   ReductionContext* ctx = nullptr);

/// Paper Alg. 8 (BiConstruct2HopGraph): connects two alive vertices iff
/// they share at least `alpha` alive common neighbors *of every opposite-
/// side attribute class* (the bi-side condition of Def. 4(1)). Same
/// sharded parallel scheme and determinism guarantee as above.
UnipartiteGraph BiConstruct2HopGraph(const BipartiteGraph& g, Side fair_side,
                                     std::uint32_t alpha,
                                     const SideMasks& masks,
                                     ReductionContext* ctx = nullptr);

}  // namespace fairbc

#endif  // FAIRBC_CORE_TWO_HOP_GRAPH_H_
