#ifndef FAIRBC_CORE_TWO_HOP_GRAPH_H_
#define FAIRBC_CORE_TWO_HOP_GRAPH_H_

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"

namespace fairbc {

/// Attributed unipartite graph over the fair-side vertices of a bipartite
/// graph (the `H(V, E, A)` of paper Algs. 3 and 8). Vertex ids are those
/// of the originating side; dead vertices simply have empty adjacency.
struct UnipartiteGraph {
  std::vector<std::vector<VertexId>> adj;  ///< sorted neighbor lists.
  std::vector<AttrId> attrs;
  AttrId num_attrs = 1;

  VertexId NumVertices() const { return static_cast<VertexId>(adj.size()); }
  VertexId Degree(VertexId v) const {
    return static_cast<VertexId>(adj[v].size());
  }
  std::size_t NumEdges() const;
  std::size_t MemoryBytes() const;
};

/// Paper Alg. 3 (Construct2HopGraph): connects two alive vertices of
/// `fair_side` iff they share at least `alpha` alive common neighbors.
/// Runs in O(sum of squared degrees) like the paper's counter sweep.
UnipartiteGraph Construct2HopGraph(const BipartiteGraph& g, Side fair_side,
                                   std::uint32_t alpha, const SideMasks& masks);

/// Paper Alg. 8 (BiConstruct2HopGraph): connects two alive vertices iff
/// they share at least `alpha` alive common neighbors *of every opposite-
/// side attribute class* (the bi-side condition of Def. 4(1)).
UnipartiteGraph BiConstruct2HopGraph(const BipartiteGraph& g, Side fair_side,
                                     std::uint32_t alpha,
                                     const SideMasks& masks);

}  // namespace fairbc

#endif  // FAIRBC_CORE_TWO_HOP_GRAPH_H_
