#include "core/mbea.h"

#include <algorithm>
#include <memory>
#include <span>

#include "core/intersect.h"
#include "core/ordering.h"
#include "core/parallel.h"
#include "core/search_context.h"

namespace fairbc {

namespace {

class MbeaEngine;
using EngineSplitter = SubtreeSplitter<std::unique_ptr<MbeaEngine>>;

// iMBEA recursion on the shared budget layer. One instance per worker;
// stats_ is worker-local, the SearchBudget is shared by every worker of
// the run. Root branches are independent: branch i only needs the
// exclusion prefix candidates[0..i), so the parallel driver hands each
// root to a pool worker; a dominating root subtree re-submits its depth-1
// children once the pool queue runs dry (depth-adaptive splitting). The
// serial path (Run) keeps the original traversal — including the
// "exhausted candidate" skip, which is a pure work-saving: a skipped
// branch re-run in isolation is killed by the excluded-vertex check, so
// both the root fan-out and the splitter may safely ignore it.
class MbeaEngine {
 public:
  MbeaEngine(const BipartiteGraph& g, const MbeaConfig& config,
             SearchBudget& budget, const MaximalBicliqueSink& sink)
      : g_(g),
        config_(config),
        budget_(budget),
        sink_(sink),
        num_lower_attrs_(g.NumAttrs(Side::kLower)) {}

  const MbeaStats& stats() const { return stats_; }

  void Run(const std::vector<VertexId>& upper_all,
           std::vector<VertexId> candidates) {
    Recurse(upper_all, {}, std::move(candidates), {});
  }

  void RunRootBranch(const std::vector<VertexId>& upper_all,
                     const std::vector<VertexId>& candidates, std::size_t root,
                     EngineSplitter* splitter) {
    splitter_ = splitter;
    allow_split_ = splitter != nullptr;
    std::vector<VertexId> unused_exhausted;
    std::span<const VertexId> all(candidates);
    Branch(upper_all, {}, all.subspan(root), all.first(root),
           &unused_exhausted);
  }

  /// One depth-1 child of a split subtree (never splits again).
  void RunSubtreeChild(const std::shared_ptr<const SubtreeBatch>& batch,
                       std::size_t child) {
    allow_split_ = false;
    const std::vector<VertexId> q = batch->ExclusionFor(child);
    std::vector<VertexId> unused_exhausted;
    std::span<const VertexId> p(batch->p);
    Branch(batch->big_l, batch->r, p.subspan(child), q, &unused_exhausted);
  }

 private:
  std::uint32_t MinUpper() const { return std::max(config_.min_upper, 1u); }

  void CountNode() {
    ++stats_.search_nodes;
    budget_.CountNode();
  }

  // Per-class sizes of a sorted lower vertex set.
  SizeVector LowerSizes(const std::vector<VertexId>& vs) const {
    SizeVector sizes(num_lower_attrs_, 0);
    for (VertexId v : vs) ++sizes[g_.Attr(Side::kLower, v)];
    return sizes;
  }

  // Processes the branch at p[0] (exclusion set q) and recurses into its
  // subtree. Absorbed candidates with no neighbors outside the shrunk L
  // are appended to `exhausted`: the caller may drop them from its
  // remaining candidates (their branches are provably redundant).
  // Returns false when the whole search must stop.
  bool Branch(const std::vector<VertexId>& big_l,
              const std::vector<VertexId>& r, std::span<const VertexId> p,
              std::span<const VertexId> q, std::vector<VertexId>* exhausted) {
    if (budget_.OverBudget()) return false;
    CountNode();
    const VertexId x = p.front();

    std::vector<VertexId> new_l =
        Intersect(big_l, g_.Neighbors(Side::kLower, x));
    bool viable = new_l.size() >= MinUpper();

    std::vector<VertexId> new_q;
    if (viable) {
      for (VertexId v : q) {
        std::uint32_t c = IntersectSize(g_.Neighbors(Side::kLower, v), new_l);
        if (c == new_l.size()) {
          // An excluded vertex is fully connected: this L (and every L
          // of the subtree) was already enumerated in v's branch.
          viable = false;
          break;
        }
        if (c >= MinUpper()) new_q.push_back(v);
      }
    }
    if (!viable) return true;

    std::vector<VertexId> new_r = r;
    new_r.push_back(x);
    std::vector<VertexId> new_p;
    for (std::size_t i = 1; i < p.size(); ++i) {
      const VertexId v = p[i];
      auto nbrs = g_.Neighbors(Side::kLower, v);
      std::uint32_t c = IntersectSize(nbrs, new_l);
      if (c == new_l.size()) {
        new_r.push_back(v);  // absorb: fully connected to new_l.
        if (IntersectSize(nbrs, big_l) == c) exhausted->push_back(v);
      } else if (c >= MinUpper()) {
        new_p.push_back(v);
      }
    }
    std::sort(new_r.begin(), new_r.end());

    // Emit (new_l, new_r) if it passes the size filters.
    if (new_r.size() >= config_.min_lower_total) {
      bool classes_ok = true;
      if (config_.min_lower_per_attr > 0) {
        for (auto s : LowerSizes(new_r)) {
          if (s < config_.min_lower_per_attr) {
            classes_ok = false;
            break;
          }
        }
      }
      if (classes_ok) {
        ++stats_.emitted;
        if (!sink_(new_l, new_r)) {
          budget_.Abort();
          return false;
        }
      }
    }

    // Recurse if the candidate pool can still reach the thresholds.
    if (!new_p.empty() &&
        new_r.size() + new_p.size() >= config_.min_lower_total) {
      bool reachable = true;
      if (config_.min_lower_per_attr > 0) {
        SizeVector sizes = LowerSizes(new_r);
        for (VertexId v : new_p) ++sizes[g_.Attr(Side::kLower, v)];
        for (auto s : sizes) {
          if (s < config_.min_lower_per_attr) {
            reachable = false;
            break;
          }
        }
      }
      if (reachable) {
        if (!TrySplit(new_l, new_r, new_p, new_q)) {
          Recurse(new_l, std::move(new_r), std::move(new_p), std::move(new_q));
        }
        if (budget_.OverBudget()) return false;
      }
    }
    return true;
  }

  // Depth-adaptive task splitting (see FairBcemEngine::TrySplit): a root
  // task re-checks the queue at every descend point and hands the first
  // dry-queue node's depth-1 children to the pool. The split children
  // skip the exhausted-candidate pruning of the serial Recurse loop,
  // which is safe for the same reason the root fan-out may skip it (see
  // the class comment).
  bool TrySplit(const std::vector<VertexId>& big_l,
                const std::vector<VertexId>& r, const std::vector<VertexId>& p,
                const std::vector<VertexId>& q) {
    if (!allow_split_ || splitter_ == nullptr) return false;
    if (p.size() < 2 || !splitter_->ShouldSplit()) return false;
    ++stats_.split_subtrees;
    auto batch = std::make_shared<SubtreeBatch>();
    batch->big_l = big_l;
    batch->r = r;
    batch->p = p;
    batch->q = q;
    for (std::size_t child = 0; child < batch->p.size(); ++child) {
      splitter_->Submit([batch, child](MbeaEngine& engine) {
        engine.RunSubtreeChild(batch, child);
      });
    }
    return true;
  }

  // L sorted; R sorted; P in candidate order; Q arbitrary order.
  void Recurse(const std::vector<VertexId>& big_l, std::vector<VertexId> r,
               std::vector<VertexId> p, std::vector<VertexId> q) {
    while (!p.empty()) {
      std::vector<VertexId> exhausted;
      if (!Branch(big_l, r, p, q, &exhausted)) return;

      // Move p[0] (and absorbed vertices with no neighbors outside the
      // shrunk L) from P to Q.
      q.push_back(p.front());
      for (VertexId v : exhausted) q.push_back(v);
      std::vector<VertexId> rest;
      rest.reserve(p.size() - 1);
      for (std::size_t i = 1; i < p.size(); ++i) {
        if (std::find(exhausted.begin(), exhausted.end(), p[i]) ==
            exhausted.end()) {
          rest.push_back(p[i]);
        }
      }
      p = std::move(rest);
    }
  }

  const BipartiteGraph& g_;
  const MbeaConfig& config_;
  SearchBudget& budget_;
  const MaximalBicliqueSink& sink_;
  const AttrId num_lower_attrs_;
  MbeaStats stats_;
  EngineSplitter* splitter_ = nullptr;
  /// True only while the root node of a parallel task is being branched.
  bool allow_split_ = false;
};

}  // namespace

MbeaStats EnumerateMaximalBicliques(const BipartiteGraph& g,
                                    const MbeaConfig& config,
                                    const MaximalBicliqueSink& sink) {
  if (g.NumUpper() == 0 || g.NumLower() == 0) return {};
  SearchBudget budget(config.node_budget, config.time_budget_seconds);
  const std::vector<VertexId> upper_all = AllVertices(g, Side::kUpper);
  const std::vector<VertexId> candidates =
      MakeOrder(g, Side::kLower, config.ordering);

  MbeaStats stats;
  const unsigned num_threads = ResolveNumThreads(config.num_threads);
  if (num_threads <= 1) {
    MbeaEngine engine(g, config, budget, sink);
    engine.Run(upper_all, candidates);
    stats = engine.stats();
  } else {
    auto engines = FanOutRootBranches<std::unique_ptr<MbeaEngine>>(
        num_threads, candidates.size(),
        [&](unsigned) {
          return std::make_unique<MbeaEngine>(g, config, budget, sink);
        },
        [&](MbeaEngine& engine, std::uint64_t task, EngineSplitter& splitter) {
          engine.RunRootBranch(upper_all, candidates, task, &splitter);
        });
    for (const auto& engine : engines) {
      stats.search_nodes += engine->stats().search_nodes;
      stats.emitted += engine->stats().emitted;
      stats.split_subtrees += engine->stats().split_subtrees;
    }
  }
  stats.budget_exhausted = budget.exhausted();
  return stats;
}

}  // namespace fairbc
