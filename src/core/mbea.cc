#include "core/mbea.h"

#include <algorithm>

#include "common/status.h"
#include "common/timer.h"
#include "core/intersect.h"
#include "core/ordering.h"

namespace fairbc {

namespace {

class MbeaEngine {
 public:
  MbeaEngine(const BipartiteGraph& g, const MbeaConfig& config,
             const MaximalBicliqueSink& sink)
      : g_(g),
        config_(config),
        sink_(sink),
        deadline_(config.time_budget_seconds),
        num_lower_attrs_(g.NumAttrs(Side::kLower)) {}

  MbeaStats Run() {
    std::vector<VertexId> upper_all(g_.NumUpper());
    for (VertexId u = 0; u < g_.NumUpper(); ++u) upper_all[u] = u;
    std::vector<VertexId> candidates =
        MakeOrder(g_, Side::kLower, config_.ordering);
    Recurse(std::move(upper_all), {}, std::move(candidates), {});
    return stats_;
  }

 private:
  std::uint32_t MinUpper() const { return std::max(config_.min_upper, 1u); }

  bool OverBudget() {
    if (aborted_) return true;
    if ((config_.node_budget > 0 &&
         stats_.search_nodes >= config_.node_budget) ||
        deadline_.Expired()) {
      stats_.budget_exhausted = true;
      return true;
    }
    return false;
  }

  // Per-class sizes of a sorted lower vertex set.
  SizeVector LowerSizes(const std::vector<VertexId>& vs) const {
    SizeVector sizes(num_lower_attrs_, 0);
    for (VertexId v : vs) ++sizes[g_.Attr(Side::kLower, v)];
    return sizes;
  }

  // L sorted; R sorted; P in candidate order; Q arbitrary order.
  void Recurse(std::vector<VertexId> big_l, std::vector<VertexId> r,
               std::vector<VertexId> p, std::vector<VertexId> q) {
    while (!p.empty()) {
      if (OverBudget()) return;
      ++stats_.search_nodes;
      const VertexId x = p.front();

      std::vector<VertexId> new_l = Intersect(big_l, g_.Neighbors(Side::kLower, x));
      bool viable = new_l.size() >= MinUpper();

      std::vector<VertexId> new_q;
      if (viable) {
        for (VertexId v : q) {
          std::uint32_t c = IntersectSize(g_.Neighbors(Side::kLower, v), new_l);
          if (c == new_l.size()) {
            // An excluded vertex is fully connected: this L (and every L
            // of the subtree) was already enumerated in v's branch.
            viable = false;
            break;
          }
          if (c >= MinUpper()) new_q.push_back(v);
        }
      }

      std::vector<VertexId> exhausted;  // the paper's C set, minus x.
      if (viable) {
        std::vector<VertexId> new_r = r;
        new_r.push_back(x);
        std::vector<VertexId> new_p;
        for (std::size_t i = 1; i < p.size(); ++i) {
          const VertexId v = p[i];
          auto nbrs = g_.Neighbors(Side::kLower, v);
          std::uint32_t c = IntersectSize(nbrs, new_l);
          if (c == new_l.size()) {
            new_r.push_back(v);  // absorb: fully connected to new_l.
            if (IntersectSize(nbrs, big_l) == c) exhausted.push_back(v);
          } else if (c >= MinUpper()) {
            new_p.push_back(v);
          }
        }
        std::sort(new_r.begin(), new_r.end());

        // Emit (new_l, new_r) if it passes the size filters.
        if (new_r.size() >= config_.min_lower_total) {
          bool classes_ok = true;
          if (config_.min_lower_per_attr > 0) {
            for (auto s : LowerSizes(new_r)) {
              if (s < config_.min_lower_per_attr) {
                classes_ok = false;
                break;
              }
            }
          }
          if (classes_ok) {
            ++stats_.emitted;
            if (!sink_(new_l, new_r)) {
              aborted_ = true;
              return;
            }
          }
        }

        // Recurse if the candidate pool can still reach the thresholds.
        if (!new_p.empty() &&
            new_r.size() + new_p.size() >= config_.min_lower_total) {
          bool reachable = true;
          if (config_.min_lower_per_attr > 0) {
            SizeVector sizes = LowerSizes(new_r);
            for (VertexId v : new_p) ++sizes[g_.Attr(Side::kLower, v)];
            for (auto s : sizes) {
              if (s < config_.min_lower_per_attr) {
                reachable = false;
                break;
              }
            }
          }
          if (reachable) {
            Recurse(new_l, std::move(new_r), std::move(new_p),
                    std::move(new_q));
            if (aborted_ || OverBudget()) return;
          }
        }
      }

      // Move x (and absorbed vertices with no neighbors outside new_l)
      // from P to Q.
      q.push_back(x);
      for (VertexId v : exhausted) q.push_back(v);
      std::vector<VertexId> rest;
      rest.reserve(p.size() - 1);
      for (std::size_t i = 1; i < p.size(); ++i) {
        if (std::find(exhausted.begin(), exhausted.end(), p[i]) ==
            exhausted.end()) {
          rest.push_back(p[i]);
        }
      }
      p = std::move(rest);
    }
  }

  const BipartiteGraph& g_;
  const MbeaConfig& config_;
  const MaximalBicliqueSink& sink_;
  Deadline deadline_;
  const AttrId num_lower_attrs_;
  MbeaStats stats_;
  bool aborted_ = false;
};

}  // namespace

MbeaStats EnumerateMaximalBicliques(const BipartiteGraph& g,
                                    const MbeaConfig& config,
                                    const MaximalBicliqueSink& sink) {
  if (g.NumUpper() == 0 || g.NumLower() == 0) return {};
  MbeaEngine engine(g, config, sink);
  return engine.Run();
}

}  // namespace fairbc
