#include "core/mbea.h"

#include <algorithm>
#include <memory>
#include <span>

#include "core/kernels.h"
#include "core/ordering.h"
#include "core/parallel.h"
#include "core/search_context.h"
#include "obs/trace.h"

namespace fairbc {

namespace {

class MbeaEngine;
using EngineSplitter = SubtreeSplitter<std::unique_ptr<MbeaEngine>>;

// iMBEA recursion on the shared budget layer. One instance per worker;
// stats_ is worker-local, the SearchBudget is shared by every worker of
// the run. Root branches are independent: branch i only needs the
// exclusion prefix candidates[0..i), so the parallel driver hands each
// root to a pool worker; a dominating root subtree re-submits its depth-1
// children once the pool queue runs dry (depth-adaptive splitting). The
// serial path (Run) keeps the original traversal — including the
// "exhausted candidate" skip, which is a pure work-saving: a skipped
// branch re-run in isolation is killed by the excluded-vertex check, so
// both the root fan-out and the splitter may safely ignore it.
//
// Recursion state (shrunk L, filtered candidates, exclusion lists,
// class counters) lives in the worker's ScratchArena — one ArenaScope
// per frame, fixed capacities bounded by the parent sets — so the search
// itself never heap-allocates; only emissions copy sets out.
class MbeaEngine {
 public:
  MbeaEngine(const BipartiteGraph& g, const MbeaConfig& config,
             SearchBudget& budget, const MaximalBicliqueSink& sink)
      : g_(g),
        config_(config),
        budget_(budget),
        sink_(sink),
        num_lower_attrs_(g.NumAttrs(Side::kLower)) {}

  const MbeaStats& stats() const { return stats_; }
  std::size_t ArenaHighWaterBytes() const { return arena_.HighWaterBytes(); }

  void Run(std::span<const VertexId> upper_all,
           std::span<const VertexId> candidates) {
    Recurse(upper_all, {}, candidates, {});
  }

  void RunRootBranch(std::span<const VertexId> upper_all,
                     std::span<const VertexId> candidates, std::size_t root,
                     EngineSplitter* splitter) {
    splitter_ = splitter;
    allow_split_ = splitter != nullptr;
    ArenaScope frame(arena_);
    IdVec unused_exhausted(arena_, candidates.size());
    Branch(upper_all, {}, candidates.subspan(root), candidates.first(root),
           &unused_exhausted);
  }

  /// One depth-1 child of a split subtree (never splits again).
  void RunSubtreeChild(const std::shared_ptr<const SubtreeBatch>& batch,
                       std::size_t child) {
    allow_split_ = false;
    const std::vector<VertexId> q = batch->ExclusionFor(child);
    std::span<const VertexId> p(batch->p);
    ArenaScope frame(arena_);
    IdVec unused_exhausted(arena_, p.size());
    Branch(batch->big_l, batch->r, p.subspan(child), q, &unused_exhausted);
  }

 private:
  std::uint32_t MinUpper() const { return std::max(config_.min_upper, 1u); }

  void CountNode() {
    ++stats_.search_nodes;
    budget_.CountNode();
  }

  // Processes the branch at p[0] (exclusion set q) and recurses into its
  // subtree. Absorbed candidates with no neighbors outside the shrunk L
  // are appended to `exhausted` (caller-allocated, capacity >= |p|): the
  // caller may drop them from its remaining candidates (their branches
  // are provably redundant). Returns false when the whole search must
  // stop.
  bool Branch(std::span<const VertexId> big_l, std::span<const VertexId> r,
              std::span<const VertexId> p, std::span<const VertexId> q,
              IdVec* exhausted) {
    if (budget_.OverBudget()) return false;
    CountNode();
    KernelStats* kstats = &stats_.kernels;
    const VertexId x = p.front();

    // Top-k branch-and-bound: descendants stay within (|L|, |R| + |P|)
    // (or the caller-installed side caps — see MbeaConfig::topk). Cutting
    // returns true: siblings continue, only this subtree dies.
    if (config_.topk != nullptr &&
        config_.topk->CanPrune(big_l.size(), r.size() + p.size())) {
      return true;
    }

    ArenaScope frame(arena_);
    const std::span<const VertexId> x_nbrs = g_.Neighbors(Side::kLower, x);
    IdVec new_l(arena_, std::min(big_l.size(), x_nbrs.size()));
    new_l.set_size(
        IntersectInto(new_l.data(), big_l, x_nbrs, &arena_, kstats));
    bool viable = new_l.size() >= MinUpper();

    // Both the exclusion scan and the candidate scan intersect against
    // the same L'; load its bitmap once and probe each neighbor list in
    // O(deg).
    BitsetView lbits;
    if (viable) lbits = BitsetView::Load(arena_, new_l.view());

    IdVec new_q(arena_, q.size());
    if (viable) {
      for (VertexId v : q) {
        std::uint32_t c = lbits.CountHits(g_.Neighbors(Side::kLower, v),
                                          kstats);
        if (c == new_l.size()) {
          // An excluded vertex is fully connected: this L (and every L
          // of the subtree) was already enumerated in v's branch.
          viable = false;
          break;
        }
        if (c >= MinUpper()) new_q.push_back(v);
      }
    }
    if (!viable) return true;

    IdVec new_r(arena_, r.size() + p.size());
    for (VertexId v : r) new_r.push_back(v);
    new_r.push_back(x);
    IdVec new_p(arena_, p.size() - 1);
    for (std::size_t i = 1; i < p.size(); ++i) {
      const VertexId v = p[i];
      auto nbrs = g_.Neighbors(Side::kLower, v);
      std::uint32_t c = lbits.CountHits(nbrs, kstats);
      if (c == new_l.size()) {
        new_r.push_back(v);  // absorb: fully connected to new_l.
        if (IntersectSize(nbrs, big_l, &arena_, kstats) == c) {
          exhausted->push_back(v);
        }
      } else if (c >= MinUpper()) {
        new_p.push_back(v);
      }
    }
    std::sort(new_r.begin(), new_r.end());

    // Emit (new_l, new_r) if it passes the size filters.
    if (new_r.size() >= config_.min_lower_total) {
      bool classes_ok = true;
      if (config_.min_lower_per_attr > 0) {
        CountVec sizes = CountVec::Zero(arena_, num_lower_attrs_);
        for (VertexId v : new_r) ++sizes[g_.Attr(Side::kLower, v)];
        for (auto s : sizes) {
          if (s < config_.min_lower_per_attr) {
            classes_ok = false;
            break;
          }
        }
      }
      if (classes_ok) {
        ++stats_.emitted;
        const std::vector<VertexId> l_out(new_l.begin(), new_l.end());
        const std::vector<VertexId> r_out(new_r.begin(), new_r.end());
        if (!sink_(l_out, r_out)) {
          budget_.Abort();
          return false;
        }
      }
    }

    // Recurse if the candidate pool can still reach the thresholds.
    if (!new_p.empty() &&
        new_r.size() + new_p.size() >= config_.min_lower_total) {
      bool reachable = true;
      if (config_.min_lower_per_attr > 0) {
        CountVec sizes = CountVec::Zero(arena_, num_lower_attrs_);
        for (VertexId v : new_r) ++sizes[g_.Attr(Side::kLower, v)];
        for (VertexId v : new_p) ++sizes[g_.Attr(Side::kLower, v)];
        for (auto s : sizes) {
          if (s < config_.min_lower_per_attr) {
            reachable = false;
            break;
          }
        }
      }
      if (reachable) {
        if (!TrySplit(new_l.view(), new_r.view(), new_p.view(),
                      new_q.view())) {
          Recurse(new_l.view(), new_r.view(), new_p.view(), new_q.view());
        }
        if (budget_.OverBudget()) return false;
      }
    }
    return true;
  }

  // Depth-adaptive task splitting (see FairBcemEngine::TrySplit): a root
  // task re-checks the queue at every descend point and hands the first
  // dry-queue node's depth-1 children to the pool. The split children
  // skip the exhausted-candidate pruning of the serial Recurse loop,
  // which is safe for the same reason the root fan-out may skip it (see
  // the class comment).
  bool TrySplit(std::span<const VertexId> big_l, std::span<const VertexId> r,
                std::span<const VertexId> p, std::span<const VertexId> q) {
    if (!allow_split_ || splitter_ == nullptr) return false;
    if (p.size() < 2 || !splitter_->ShouldSplit()) return false;
    ++stats_.split_subtrees;
    auto batch = std::make_shared<SubtreeBatch>();
    batch->big_l.assign(big_l.begin(), big_l.end());
    batch->r.assign(r.begin(), r.end());
    batch->p.assign(p.begin(), p.end());
    batch->q.assign(q.begin(), q.end());
    for (std::size_t child = 0; child < batch->p.size(); ++child) {
      splitter_->Submit([batch, child, trace = config_.trace](
                            MbeaEngine& engine) {
        TraceSpan span(trace, "split");
        engine.RunSubtreeChild(batch, child);
      });
    }
    return true;
  }

  // L sorted; R sorted; P in candidate order; Q arbitrary order. The
  // loop's mutable P/Q live in this frame's arena slice: Q grows by at
  // most |P| in total (p[0] plus exhausted vertices all come out of P),
  // and the shrinking candidate list ping-pongs between two fixed
  // buffers (reading one while writing the other, then swapping).
  void Recurse(std::span<const VertexId> big_l, std::span<const VertexId> r,
               std::span<const VertexId> p_in, std::span<const VertexId> q_in) {
    ArenaScope frame(arena_);
    IdVec q(arena_, q_in.size() + p_in.size());
    for (VertexId v : q_in) q.push_back(v);
    IdVec bufs[2] = {IdVec(arena_, p_in.size()), IdVec(arena_, p_in.size())};
    for (VertexId v : p_in) bufs[0].push_back(v);
    IdVec exhausted(arena_, p_in.size());
    int cur = 0;
    while (!bufs[cur].empty()) {
      const IdVec& p = bufs[cur];
      exhausted.clear();
      if (!Branch(big_l, r, p.view(), q.view(), &exhausted)) return;

      // Move p[0] (and absorbed vertices with no neighbors outside the
      // shrunk L) from P to Q.
      q.push_back(p[0]);
      for (VertexId v : exhausted) q.push_back(v);
      IdVec& rest = bufs[1 - cur];
      rest.clear();
      for (std::size_t i = 1; i < p.size(); ++i) {
        if (std::find(exhausted.begin(), exhausted.end(), p[i]) ==
            exhausted.end()) {
          rest.push_back(p[i]);
        }
      }
      cur = 1 - cur;
    }
  }

  const BipartiteGraph& g_;
  const MbeaConfig& config_;
  SearchBudget& budget_;
  const MaximalBicliqueSink& sink_;
  const AttrId num_lower_attrs_;
  MbeaStats stats_;
  ScratchArena arena_;
  EngineSplitter* splitter_ = nullptr;
  /// True only while the root node of a parallel task is being branched.
  bool allow_split_ = false;
};

}  // namespace

MbeaStats EnumerateMaximalBicliques(const BipartiteGraph& g,
                                    const MbeaConfig& config,
                                    const MaximalBicliqueSink& sink) {
  if (g.NumUpper() == 0 || g.NumLower() == 0) return {};
  SearchBudget local_budget(config.node_budget, config.time_budget_seconds);
  SearchBudget& budget = config.shared_budget != nullptr
                             ? *config.shared_budget
                             : local_budget;
  const std::vector<VertexId> upper_all = AllVertices(g, Side::kUpper);
  const std::vector<VertexId> candidates =
      MakeOrder(g, Side::kLower, config.ordering);

  MbeaStats stats;
  const unsigned num_threads = ResolveNumThreads(config.num_threads);
  if (num_threads <= 1) {
    MbeaEngine engine(g, config, budget, sink);
    engine.Run(upper_all, candidates);
    stats = engine.stats();
    stats.arena_high_water_bytes = engine.ArenaHighWaterBytes();
  } else {
    auto engines = FanOutRootBranches<std::unique_ptr<MbeaEngine>>(
        num_threads, candidates.size(),
        [&](unsigned) {
          return std::make_unique<MbeaEngine>(g, config, budget, sink);
        },
        [&](MbeaEngine& engine, std::uint64_t task, EngineSplitter& splitter) {
          TraceSpan span(config.trace, "root");
          engine.RunRootBranch(upper_all, candidates, task, &splitter);
        });
    for (const auto& engine : engines) {
      stats.search_nodes += engine->stats().search_nodes;
      stats.emitted += engine->stats().emitted;
      stats.split_subtrees += engine->stats().split_subtrees;
      MergeKernelStats(stats.kernels, engine->stats().kernels);
      stats.arena_high_water_bytes =
          std::max(stats.arena_high_water_bytes, engine->ArenaHighWaterBytes());
    }
  }
  stats.budget_exhausted = budget.exhausted();
  return stats;
}

}  // namespace fairbc
