#ifndef FAIRBC_CORE_REDUCTION_CONTEXT_H_
#define FAIRBC_CORE_REDUCTION_CONTEXT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/timer.h"
#include "obs/trace.h"

namespace fairbc {

class ThreadPool;

/// Wall-clock breakdown of one graph-reduction run: 2-hop construction,
/// coloring, and peeling (the FCore/BFCore passes count toward peel).
/// Surfaced through EnumStats and the bench_peel_scaling JSON.
struct ReductionPhaseTimes {
  double construct_seconds = 0.0;
  double color_seconds = 0.0;
  double peel_seconds = 0.0;
};

/// Execution context of the graph-reduction front-end (FCore/BFCore,
/// 2-hop construction, coloring, colorful peeling). Owns — or borrows —
/// the ThreadPool, the per-worker scratch buffers of the construction
/// counter sweeps, and the per-phase timers, so the reduction entry
/// points take one `ReductionContext*` instead of ad-hoc ThreadPool*
/// threading. A null context (the default everywhere) means "serial, no
/// timing" — the exact pre-parallel traversal.
class ReductionContext {
 public:
  /// Serial context: no pool, one worker, timing only.
  ReductionContext();
  /// Owns a pool of `num_threads` workers when num_threads > 1; serial
  /// otherwise (the EnumOptions::num_threads == 1 exact-serial contract).
  explicit ReductionContext(unsigned num_threads);
  ~ReductionContext();

  ReductionContext(const ReductionContext&) = delete;
  ReductionContext& operator=(const ReductionContext&) = delete;

  /// Pool to fan work out on; nullptr = run serial.
  ThreadPool* pool() const { return pool_; }
  /// Worker count (1 when serial); also the valid range of scratch ids.
  unsigned num_workers() const { return num_workers_; }

  ReductionPhaseTimes& times() { return times_; }
  const ReductionPhaseTimes& times() const { return times_; }

  /// Optional span recorder the phase timers also report into
  /// (EnumOptions::trace, threaded through the pipeline); null = timing
  /// only.
  TraceRecorder* trace() const { return trace_; }
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  /// Per-worker counter scratch for the 2-hop construction sweeps, grown
  /// to at least `size` and zero-filled on growth. Borrowers must return
  /// it all-zero (the sweeps reset the slots they touched), which is what
  /// lets phases reuse it without re-clearing. Distinct worker ids may be
  /// used concurrently; the same id must not.
  std::vector<std::uint32_t>& CountScratch(unsigned worker, std::size_t size);
  /// Per-worker first-touch flags, same contract as CountScratch.
  std::vector<char>& FlagScratch(unsigned worker, std::size_t size);

 private:
  struct WorkerScratch {
    std::vector<std::uint32_t> counts;
    std::vector<char> flags;
  };

  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;
  unsigned num_workers_ = 1;
  std::vector<WorkerScratch> scratch_;
  ReductionPhaseTimes times_;
  TraceRecorder* trace_ = nullptr;
};

/// RAII accumulator for one reduction phase: adds the scope's wall-clock
/// to `*accumulator` on destruction; a null accumulator (null context
/// path) makes it a no-op. With a recorder and a span name, the scope is
/// also emitted as a trace span (retroactively, at destruction).
class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(double* accumulator, TraceRecorder* trace = nullptr,
                            const char* span_name = nullptr)
      : acc_(accumulator), trace_(trace), span_name_(span_name) {}
  ~ScopedPhaseTimer() {
    const double elapsed = timer_.ElapsedSeconds();
    if (acc_ != nullptr) *acc_ += elapsed;
    if (trace_ != nullptr && span_name_ != nullptr) {
      trace_->RecordEnding(span_name_, elapsed);
    }
  }

  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  double* acc_;
  TraceRecorder* trace_;
  const char* span_name_;
  Timer timer_;
};

}  // namespace fairbc

#endif  // FAIRBC_CORE_REDUCTION_CONTEXT_H_
