#ifndef FAIRBC_CORE_SEARCH_CONTEXT_H_
#define FAIRBC_CORE_SEARCH_CONTEXT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/timer.h"
#include "core/enumerate.h"
#include "core/kernels.h"
#include "fairness/fair_vector.h"
#include "graph/bipartite_graph.h"

namespace fairbc {

/// Pluggable fairness model evaluated on per-class size vectors. The
/// branch-and-bound engines only ever ask these three questions, so a
/// policy object is the whole fairness model from the search's point of
/// view: single-side models install one policy on the lower side, bi-side
/// models one per side, and the proportional (theta) variants are the same
/// policy with theta > 0 in the spec. Implementations must be thread-safe
/// (const methods, no mutable state) — one instance is shared by every
/// worker of a run.
class FairnessPolicy {
 public:
  virtual ~FairnessPolicy() = default;

  /// Def. 11 feasibility (plus the Def. 5/6 ratio constraint when
  /// proportional): may `sizes` be the class sizes of a fair set?
  /// Size vectors are passed as spans so arena-backed counter blocks flow
  /// through without copying; implementations must not allocate on the
  /// common path (these run once per branch of the search).
  virtual bool Feasible(SizeSpan sizes) const = 0;

  /// MFSCheck (paper Alg. 4): is `sizes` maximal within the per-class
  /// capacities `counts`, i.e. is a set with these sizes a *maximal* fair
  /// subset of a ground set with those counts?
  virtual bool MaximalWithin(SizeSpan sizes, SizeSpan counts) const = 0;

  /// Branch-and-bound reachability (Observation 5, second half): can every
  /// class still reach the per-class minimum within pool capacities
  /// `pool` (current picks plus remaining candidates)?
  virtual bool Reachable(SizeSpan pool) const = 0;

  virtual const FairnessSpec& spec() const = 0;
};

/// The size-vector policy implementing all four paper models on top of
/// fairness/fair_vector.h (plain and proportional, either side).
class SpecFairnessPolicy final : public FairnessPolicy {
 public:
  explicit SpecFairnessPolicy(FairnessSpec spec) : spec_(spec) {}

  bool Feasible(SizeSpan sizes) const override {
    return IsFeasibleVector(sizes, spec_);
  }
  bool MaximalWithin(SizeSpan sizes, SizeSpan counts) const override {
    return IsMaximalFairVector(sizes, counts, spec_);
  }
  bool Reachable(SizeSpan pool) const override {
    for (auto c : pool) {
      if (c < spec_.min_per_class) return false;
    }
    return true;
  }
  const FairnessSpec& spec() const override { return spec_; }

 private:
  const FairnessSpec spec_;
};

/// Thread-safe node/time budget and abort latch shared by every worker of
/// one enumeration run. Preserves the serial engines' check-then-count
/// sequence: the node that would exceed the budget is never accounted.
class SearchBudget {
 public:
  explicit SearchBudget(const EnumOptions& options)
      : SearchBudget(options.node_budget, options.time_budget_seconds) {}
  SearchBudget(std::uint64_t node_budget, double time_budget_seconds)
      : node_budget_(node_budget), deadline_(time_budget_seconds) {}

  /// True when the run must stop. Sets the exhausted latch when the node
  /// or time budget tripped; an abort (sink returned false) stops the run
  /// without marking the budget exhausted, exactly like the serial code.
  bool OverBudget() {
    if (aborted_.load(std::memory_order_relaxed)) return true;
    if ((node_budget_ > 0 &&
         nodes_.load(std::memory_order_relaxed) >= node_budget_) ||
        deadline_.Expired()) {
      exhausted_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Accounts one search node against the shared budget.
  void CountNode() { nodes_.fetch_add(1, std::memory_order_relaxed); }

  void Abort() { aborted_.store(true, std::memory_order_relaxed); }
  /// Search nodes accounted so far (streaming checkpoints read this
  /// mid-run, so it is monotone but approximate under concurrency).
  std::uint64_t nodes() const {
    return nodes_.load(std::memory_order_relaxed);
  }
  bool aborted() const { return aborted_.load(std::memory_order_relaxed); }
  bool exhausted() const { return exhausted_.load(std::memory_order_relaxed); }
  bool DeadlineExpired() const { return deadline_.Expired(); }

 private:
  const std::uint64_t node_budget_;
  const Deadline deadline_;
  std::atomic<std::uint64_t> nodes_{0};
  std::atomic<bool> aborted_{false};
  std::atomic<bool> exhausted_{false};
};

/// Per-worker view of one enumeration run: a local EnumStats block plus
/// the pieces every worker shares (graph, options, fairness policy, budget,
/// result sink). The engines' recursion classes hold exactly one of these;
/// the run driver merges the stats blocks afterwards (MergeEnumStats).
///
/// The sink handed in here is invoked directly from the owning worker —
/// callers decide where serialization happens (see the BicliqueSink
/// contract in core/enumerate.h).
class SearchContext {
 public:
  SearchContext(const BipartiteGraph& g, const EnumOptions& options,
                const FairnessPolicy& policy, SearchBudget& budget,
                const BicliqueSink& sink)
      : g_(g), options_(options), policy_(policy), budget_(budget),
        sink_(sink) {}

  SearchContext(const SearchContext&) = delete;
  SearchContext& operator=(const SearchContext&) = delete;

  const BipartiteGraph& graph() const { return g_; }
  const EnumOptions& options() const { return options_; }
  const FairnessPolicy& policy() const { return policy_; }
  SearchBudget& budget() { return budget_; }
  EnumStats& stats() { return stats_; }

  /// This worker's recursion scratch: engine frames carve their candidate
  /// stacks and counter blocks out of it (ArenaScope per frame) instead of
  /// heap-allocating. Grow-only across subtrees — after the first deep
  /// branch the whole search is allocation-free.
  ScratchArena& arena() { return arena_; }

  /// Kernel telemetry shortcut (stats().kernels).
  KernelStats* kernel_stats() { return &stats_.kernels; }

  /// True when this worker must unwind (shared abort or exhausted budget).
  bool ShouldStop() { return budget_.OverBudget(); }

  /// Accounts one search node in the local stats and the shared budget.
  void CountNode() {
    ++stats_.search_nodes;
    budget_.CountNode();
  }

  /// Class-size vector of a vertex set on `side`.
  SizeVector ClassSizes(Side side, std::span<const VertexId> vs) const {
    SizeVector sizes(g_.NumAttrs(side), 0);
    for (VertexId v : vs) ++sizes[g_.Attr(side, v)];
    return sizes;
  }

  /// Emits one result; counts it and latches the shared abort when the
  /// sink declines more. Returns false once the run is aborted.
  bool Emit(const Biclique& b) {
    ++stats_.num_results;
    if (!sink_(b)) {
      budget_.Abort();
      return false;
    }
    return true;
  }

 private:
  const BipartiteGraph& g_;
  const EnumOptions& options_;
  const FairnessPolicy& policy_;
  SearchBudget& budget_;
  const BicliqueSink& sink_;
  EnumStats stats_;
  ScratchArena arena_;
};

/// Frozen state of one search node whose children are fanned out as pool
/// tasks (depth-adaptive task splitting): when the pool queue runs dry
/// under a dominating subtree, the owning worker freezes the node's sets
/// here and re-submits child `i` as a fresh task. Children share the batch
/// via shared_ptr; child i branches on `p[i]` with the exclusion set
/// `q + p[0..i)` — exactly the sets the serial recursion would have used,
/// so the enumerated result set is unchanged.
struct SubtreeBatch {
  std::vector<VertexId> big_l;  ///< upper set L at the split node.
  std::vector<VertexId> r;      ///< partial fair-side pick R.
  std::vector<VertexId> p;      ///< remaining candidates, in branch order.
  std::vector<VertexId> q;      ///< exclusion set at the split node.

  /// Exclusion set of child `i`: q followed by p[0..i).
  std::vector<VertexId> ExclusionFor(std::size_t i) const;
};

/// Splits candidate-set maintenance shared by the engines: for each v in
/// `candidates` (vertices on `side`) computes c = |N(v) ∩ big_l| by
/// probing `big_l_bits` (a loaded BitsetView of the sorted upper set
/// `big_l` — load once, probe every candidate in O(deg) each), appends v
/// to `kept` when c >= keep_threshold and to `full` when c == |big_l|
/// (fully connected). A fully connected vertex lands in both lists iff
/// |big_l| also meets the threshold. `kept`/`full` must have capacity >=
/// |candidates|.
void FilterCandidates(const BipartiteGraph& g, Side side,
                      std::span<const VertexId> candidates,
                      std::span<const VertexId> big_l,
                      const BitsetView& big_l_bits,
                      std::uint32_t keep_threshold, IdVec* kept, IdVec* full,
                      KernelStats* stats);

/// All vertex ids of one side, ascending (the root "L = U(G)" set).
std::vector<VertexId> AllVertices(const BipartiteGraph& g, Side side);

}  // namespace fairbc

#endif  // FAIRBC_CORE_SEARCH_CONTEXT_H_
