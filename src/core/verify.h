#ifndef FAIRBC_CORE_VERIFY_H_
#define FAIRBC_CORE_VERIFY_H_

#include "common/status.h"
#include "core/enumerate.h"
#include "graph/bipartite_graph.h"

namespace fairbc {

/// Which fairness model a result set claims to satisfy.
enum class FairModel {
  kSsfbc,  ///< single-side fair biclique (Def. 3 / Def. 5 with theta).
  kBsfbc,  ///< bi-side fair biclique (Def. 4 / Def. 6 with theta).
};

/// Checks that `b` is a valid result for `model` under `params` on `g`:
/// a biclique with nonempty sides, the required fairness on the fair
/// side(s), the size threshold(s), and *maximality* (no satisfying
/// strict superset exists). Returns OK or an InvalidArgument status
/// describing the first violated condition. Independent of the
/// enumeration engines; encodes Definitions 3-6 directly via the
/// common-neighborhood and maximal-fair-subset characterizations.
Status VerifyFairBiclique(const BipartiteGraph& g, const Biclique& b,
                          const FairBicliqueParams& params, FairModel model);

/// Verifies a whole result set and additionally checks it is duplicate
/// free. Returns OK or the first failure (with its index in the
/// message).
Status VerifyResultSet(const BipartiteGraph& g,
                       const std::vector<Biclique>& results,
                       const FairBicliqueParams& params, FairModel model);

}  // namespace fairbc

#endif  // FAIRBC_CORE_VERIFY_H_
