#include "core/max_search.h"

#include "common/status.h"
#include "core/pipeline.h"
#include "core/result_sink.h"

namespace fairbc {

std::uint64_t ObjectiveValue(const Biclique& b, BicliqueObjective objective) {
  return RankValue(b.upper.size(), b.lower.size(),
                   objective == BicliqueObjective::kEdges ? TopKRank::kWeight
                                                          : TopKRank::kSize);
}

namespace {

// The keeper itself lives in core/result_sink.h (TopKSink) now that the
// whole result pathway is sink-based; this module keeps the historical
// objective-named entry points and additionally feeds the sink's prune
// bound back into the engines (EnumOptions::topk), so top-k search cuts
// subtrees that cannot reach the current k-th best.
template <typename EnumerateFn>
MaxSearchResult RunTopK(EnumerateFn&& enumerate, const BipartiteGraph& g,
                        const FairBicliqueParams& params,
                        const EnumOptions& options, std::uint32_t k,
                        BicliqueObjective objective) {
  TopKSink sink(k, objective == BicliqueObjective::kEdges
                       ? TopKRank::kWeight
                       : TopKRank::kSize);
  EnumOptions pruned = options;
  pruned.topk = sink.prune_bound();
  MaxSearchResult result;
  result.stats = enumerate(g, params, pruned, sink.AsSink());
  sink.Finish();
  result.best = sink.Take();
  return result;
}

}  // namespace

MaxSearchResult TopKSSFBC(const BipartiteGraph& g,
                          const FairBicliqueParams& params,
                          const EnumOptions& options, std::uint32_t k,
                          BicliqueObjective objective) {
  return RunTopK(EnumerateSSFBCPlusPlus, g, params, options, k, objective);
}

MaxSearchResult TopKBSFBC(const BipartiteGraph& g,
                          const FairBicliqueParams& params,
                          const EnumOptions& options, std::uint32_t k,
                          BicliqueObjective objective) {
  return RunTopK(EnumerateBSFBCPlusPlus, g, params, options, k, objective);
}

}  // namespace fairbc
