#include "core/max_search.h"

#include <algorithm>

#include "common/status.h"
#include "core/pipeline.h"

namespace fairbc {

std::uint64_t ObjectiveValue(const Biclique& b, BicliqueObjective objective) {
  auto u = static_cast<std::uint64_t>(b.upper.size());
  auto v = static_cast<std::uint64_t>(b.lower.size());
  return objective == BicliqueObjective::kEdges ? u * v : u + v;
}

namespace {

// Keeps the k best bicliques seen so far; deterministic tie-break by the
// canonical order so results are stable across orderings/pruning levels.
class TopKKeeper {
 public:
  TopKKeeper(std::uint32_t k, BicliqueObjective objective)
      : k_(std::max(k, 1u)), objective_(objective) {}

  // entries_ is kept sorted (Better is a total order: distinct bicliques
  // never compare equal), so one offer is a binary search plus insert —
  // and a full keeper rejects non-improving candidates without touching
  // the list at all, instead of re-sorting everything per result.
  void Offer(const Biclique& b) {
    std::pair<std::uint64_t, Biclique> cand(ObjectiveValue(b, objective_), b);
    if (entries_.size() >= k_ && !Better(cand, entries_.back())) return;
    auto pos =
        std::upper_bound(entries_.begin(), entries_.end(), cand, Better);
    entries_.insert(pos, std::move(cand));
    if (entries_.size() > k_) entries_.pop_back();
  }

  std::vector<Biclique> Take() {
    std::vector<Biclique> out;
    out.reserve(entries_.size());
    for (auto& [value, b] : entries_) out.push_back(std::move(b));
    return out;
  }

 private:
  static bool Better(const std::pair<std::uint64_t, Biclique>& a,
                     const std::pair<std::uint64_t, Biclique>& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  }

  std::uint32_t k_;
  BicliqueObjective objective_;
  std::vector<std::pair<std::uint64_t, Biclique>> entries_;
};

template <typename EnumerateFn>
MaxSearchResult RunTopK(EnumerateFn&& enumerate, const BipartiteGraph& g,
                        const FairBicliqueParams& params,
                        const EnumOptions& options, std::uint32_t k,
                        BicliqueObjective objective) {
  TopKKeeper keeper(k, objective);
  MaxSearchResult result;
  result.stats = enumerate(g, params, options, [&](const Biclique& b) {
    keeper.Offer(b);
    return true;
  });
  result.best = keeper.Take();
  return result;
}

}  // namespace

MaxSearchResult TopKSSFBC(const BipartiteGraph& g,
                          const FairBicliqueParams& params,
                          const EnumOptions& options, std::uint32_t k,
                          BicliqueObjective objective) {
  return RunTopK(EnumerateSSFBCPlusPlus, g, params, options, k, objective);
}

MaxSearchResult TopKBSFBC(const BipartiteGraph& g,
                          const FairBicliqueParams& params,
                          const EnumOptions& options, std::uint32_t k,
                          BicliqueObjective objective) {
  return RunTopK(EnumerateBSFBCPlusPlus, g, params, options, k, objective);
}

}  // namespace fairbc
