#ifndef FAIRBC_CORE_BRUTEFORCE_H_
#define FAIRBC_CORE_BRUTEFORCE_H_

#include <vector>

#include "core/enumerate.h"
#include "graph/bipartite_graph.h"

namespace fairbc {

/// Exhaustive reference enumerators for tiny graphs (both sides <= 24
/// vertices), used as test oracles. They enumerate candidates by subset
/// bitmasks and apply Definitions 2-6 literally (pairwise containment
/// maximality), sharing nothing with the production engines beyond the
/// fairness feasibility predicate. Results are sorted canonically.

/// All maximal bicliques (Def. 2, both sides nonempty) with
/// |upper| >= min_upper, |lower| >= min_lower_total and every lower class
/// >= min_lower_per_attr.
std::vector<Biclique> BruteForceMaximalBicliques(
    const BipartiteGraph& g, std::uint32_t min_upper,
    std::uint32_t min_lower_total, std::uint32_t min_lower_per_attr);

/// All single-side fair bicliques (Def. 3); with params.theta > 0 all
/// proportion single-side fair bicliques (Def. 5).
std::vector<Biclique> BruteForceSSFBC(const BipartiteGraph& g,
                                      const FairBicliqueParams& params);

/// All bi-side fair bicliques (Def. 4); with params.theta > 0 all
/// proportion bi-side fair bicliques (Def. 6).
std::vector<Biclique> BruteForceBSFBC(const BipartiteGraph& g,
                                      const FairBicliqueParams& params);

}  // namespace fairbc

#endif  // FAIRBC_CORE_BRUTEFORCE_H_
