// Composable result sinks for the streaming result pipeline: the
// enumeration engines push one Biclique at a time (core/enumerate.h
// ResultSink / BicliqueSink contract) and every consumer above them —
// batch collection, chunked streaming over the wire, top-k selection —
// is a sink stage from this header stacked onto CollectSink/CountSink/
// SerializingSink. The service layer (service/query_executor.h
// ExecuteStreaming) and the CLI build their pipelines out of these.
//
// Unless a class documents otherwise, sinks here follow the BicliqueSink
// threading contract: the pipeline.h entry points serialize calls into
// them, so they need no locking of their own, but calls may arrive from
// different worker threads over time.

#ifndef FAIRBC_CORE_RESULT_SINK_H_
#define FAIRBC_CORE_RESULT_SINK_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/enumerate.h"

namespace fairbc {

class SearchBudget;

/// Keeps the k best bicliques under a TopKRank, best first. Ties in rank
/// value break by the canonical Biclique order (smaller wins), so the
/// kept set — and Take()'s order — is a pure function of the offered
/// *set*, independent of offer order. Not internally synchronized.
class TopKKeeper {
 public:
  TopKKeeper(std::uint32_t k, TopKRank rank)
      : k_(k < 1 ? 1 : k), rank_(rank) {}

  /// Offers one candidate; keeps it iff it beats the current k-th best
  /// (or the keeper is not yet full).
  void Offer(const Biclique& b);

  bool full() const { return entries_.size() >= k_; }
  std::size_t size() const { return entries_.size(); }
  std::uint32_t k() const { return k_; }
  TopKRank rank() const { return rank_; }

  /// Rank value of the current k-th best; only meaningful when full().
  std::uint64_t KthValue() const {
    return entries_.empty() ? 0 : entries_.back().first;
  }

  /// Moves the kept bicliques out, best first. The keeper is empty after.
  std::vector<Biclique> Take();

 private:
  static bool Better(const std::pair<std::uint64_t, Biclique>& a,
                     const std::pair<std::uint64_t, Biclique>& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  }

  const std::uint32_t k_;
  const TopKRank rank_;
  std::vector<std::pair<std::uint64_t, Biclique>> entries_;
};

/// Top-k sink stage: feeds every accepted result into a TopKKeeper and
/// publishes the keeper's k-th best into a TopKPruneBound that the
/// engines consult for branch-and-bound cuts (wire prune_bound() into
/// EnumOptions::topk). After the run, Finish() then Take() yield the
/// final ranking. Follows the serialized-sink contract (no locking; the
/// prune bound itself is atomic and safe for concurrent engine reads).
class TopKSink final : public ResultSink {
 public:
  TopKSink(std::uint32_t k, TopKRank rank)
      : keeper_(k, rank), bound_(rank) {}

  bool Accept(const Biclique& b) override {
    keeper_.Offer(b);
    if (keeper_.full()) bound_.Publish(keeper_.KthValue());
    return true;
  }

  const TopKPruneBound* prune_bound() const { return &bound_; }
  TopKPruneBound* prune_bound() { return &bound_; }
  const TopKKeeper& keeper() const { return keeper_; }
  std::vector<Biclique> Take() { return keeper_.Take(); }

 private:
  TopKKeeper keeper_;
  TopKPruneBound bound_;
};

/// Progress marker attached to every flushed chunk: how far the run had
/// advanced when the chunk was cut. `nodes` reads the shared SearchBudget
/// when one is attached (0 otherwise), giving clients a cooperative
/// checkpoint — a budgeted query that streamed n chunks and then reported
/// budget_exhausted can be re-issued with the remaining budget.
struct StreamCheckpoint {
  std::uint64_t results = 0;  ///< results emitted up to and incl. chunk.
  std::uint64_t nodes = 0;    ///< search nodes accounted so far.
};

/// Bounded-buffer streaming stage: buffers accepted results and hands
/// them to `flush` as chunks of at most `chunk_results`, with the final
/// (possibly short, possibly empty-run) flush driven by Finish(). The
/// flush callback returning false aborts the enumeration, exactly like a
/// sink would. Follows the serialized-sink contract — the callback runs
/// on whichever worker thread emitted the chunk-completing result, one
/// call at a time.
class ChunkSink final : public ResultSink {
 public:
  /// Receives one chunk (moved) and its checkpoint; false aborts the run.
  using FlushFn =
      std::function<bool(std::vector<Biclique>&& chunk,
                         const StreamCheckpoint& checkpoint)>;

  /// `budget` (optional) supplies StreamCheckpoint::nodes; it must
  /// outlive the sink.
  ChunkSink(std::size_t chunk_results, FlushFn flush,
            const SearchBudget* budget = nullptr);

  bool Accept(const Biclique& b) override;

  /// Flushes the remainder. Never drops results: after Finish, every
  /// accepted result has been handed to the callback (unless a flush
  /// aborted the run).
  void Finish() override;

  std::uint64_t results() const { return results_; }
  std::uint64_t chunks() const { return chunks_; }

 private:
  bool Flush();

  const std::size_t chunk_results_;
  const FlushFn flush_;
  const SearchBudget* budget_;
  std::vector<Biclique> buffer_;
  std::uint64_t results_ = 0;
  std::uint64_t chunks_ = 0;
  bool aborted_ = false;
};

}  // namespace fairbc

#endif  // FAIRBC_CORE_RESULT_SINK_H_
