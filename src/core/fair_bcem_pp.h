#ifndef FAIRBC_CORE_FAIR_BCEM_PP_H_
#define FAIRBC_CORE_FAIR_BCEM_PP_H_

#include <cstdint>

#include "core/enumerate.h"
#include "graph/bipartite_graph.h"

namespace fairbc {

/// FairBCEM++ engine (paper Alg. 6) on an already-pruned graph: enumerate
/// maximal bicliques with the thresholded iMBEA substrate, then emit each
/// biclique's maximal fair subsets whose common neighborhood is exactly L
/// (the paper's Combination + line-28 check). With params.theta > 0 this
/// is FairBCEMPro++ (CombinationPro). Library users should go through
/// pipeline.h which wires in the graph reduction.
EnumStats FairBcemPpRun(const BipartiteGraph& g,
                        const FairBicliqueParams& params,
                        std::uint32_t min_upper, const EnumOptions& options,
                        const BicliqueSink& sink);

}  // namespace fairbc

#endif  // FAIRBC_CORE_FAIR_BCEM_PP_H_
