#ifndef FAIRBC_CORE_PARALLEL_H_
#define FAIRBC_CORE_PARALLEL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/enumerate.h"

namespace fairbc {

/// Resolves EnumOptions::num_threads: 0 means "use every hardware thread",
/// anything else is taken literally (minimum 1).
unsigned ResolveNumThreads(unsigned requested);

/// Minimal work-stealing thread pool used for the root-level subtree
/// fan-out of the enumeration engines. Each worker owns a deque of task
/// indices: it pops its own work from the back (LIFO, cache-friendly for
/// locally submitted work) and steals from a sibling's front (FIFO, takes
/// the oldest — typically largest — task) when its deque runs dry.
///
/// The pool is intentionally small and generic: tasks are plain indices,
/// cancellation is the callee's job (the engines poll their shared
/// SearchBudget), and nothing here knows about bicliques — future
/// subsystems (sharded serving, batch pipelines) can reuse it as-is.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (resolved; must be >= 1).
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()); }

  /// Runs tasks `0 .. num_tasks-1` as `fn(task, worker)` where `worker` is
  /// in `[0, num_threads())`; returns once every task has finished. Tasks
  /// are dealt round-robin across the worker deques and rebalanced by
  /// stealing. `fn` must not throw. One ParallelFor may run at a time.
  void ParallelFor(std::uint64_t num_tasks,
                   const std::function<void(std::uint64_t, unsigned)>& fn);

 private:
  struct Worker {
    std::deque<std::uint64_t> tasks;
    std::mutex mu;
  };

  void WorkerLoop(unsigned index);
  /// Pops a task for worker `index`, stealing if needed. Returns false
  /// when no task is available anywhere.
  bool NextTask(unsigned index, std::uint64_t* task);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex mu_;                    // guards the fields below.
  std::condition_variable work_cv_;  // workers wait for a batch.
  std::condition_variable done_cv_;  // ParallelFor waits for completion.
  const std::function<void(std::uint64_t, unsigned)>* fn_ = nullptr;
  std::uint64_t outstanding_ = 0;
  std::uint64_t batch_ = 0;  // bumped per ParallelFor to wake workers.
  bool stop_ = false;
};

/// Serializing sink adapter: wraps a plain BicliqueSink so concurrent
/// workers invoke it one at a time. The pipeline entry points wrap every
/// caller-provided sink in one of these, which is why existing sinks need
/// no thread-safety of their own (see the contract in core/enumerate.h).
class SerializingSink {
 public:
  explicit SerializingSink(const BicliqueSink& sink) : inner_(sink) {}

  SerializingSink(const SerializingSink&) = delete;
  SerializingSink& operator=(const SerializingSink&) = delete;

  /// Thread-safe sink view; valid while this adapter is alive.
  BicliqueSink AsSink() {
    return [this](const Biclique& b) {
      std::lock_guard<std::mutex> lock(mu_);
      return inner_(b);
    };
  }

 private:
  std::mutex mu_;
  const BicliqueSink& inner_;
};

/// Folds one worker's stats block into the run aggregate: counters and
/// timings sum, peaks take the max, and budget_exhausted is sticky (any
/// worker tripping the budget marks the whole run).
void MergeEnumStats(EnumStats& into, const EnumStats& worker);

/// Shared fan-out driver of the enumeration engines: builds one worker
/// state via `make_state(worker)`, runs `run(*states[worker], task)` for
/// every root task on a work-stealing pool, and returns the states for
/// the caller to merge. `State` is typically a unique_ptr to a per-worker
/// context/engine (those hold references and don't move).
template <typename State, typename MakeState, typename Run>
std::vector<State> FanOutRootBranches(unsigned num_threads,
                                      std::uint64_t num_tasks,
                                      MakeState&& make_state, Run&& run) {
  std::vector<State> states;
  states.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) states.push_back(make_state(t));
  ThreadPool pool(num_threads);
  pool.ParallelFor(num_tasks, [&](std::uint64_t task, unsigned worker) {
    run(*states[worker], task);
  });
  return states;
}

}  // namespace fairbc

#endif  // FAIRBC_CORE_PARALLEL_H_
