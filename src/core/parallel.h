#ifndef FAIRBC_CORE_PARALLEL_H_
#define FAIRBC_CORE_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/enumerate.h"

namespace fairbc {

/// Resolves EnumOptions::num_threads: 0 means "use every hardware thread",
/// anything else is taken literally (minimum 1).
unsigned ResolveNumThreads(unsigned requested);

/// Minimal work-stealing thread pool used for the subtree fan-out of the
/// enumeration engines and the bulk-synchronous peeling rounds of the
/// graph reduction. Each worker owns a deque of tasks: it pops its own
/// work from the back (LIFO, cache-friendly for locally submitted work)
/// and steals from a sibling's front (FIFO, takes the oldest — typically
/// largest — task) when its deque runs dry.
///
/// Tasks are closures `void(unsigned worker)`; a running task may push
/// follow-up tasks into the same batch with Submit() (this is how the
/// engines split a dominating subtree once the queue runs dry). The pool
/// stays small and generic: cancellation is the callee's job (the engines
/// poll their shared SearchBudget) and nothing here knows about bicliques
/// — future subsystems (sharded serving, batch pipelines) can reuse it
/// as-is.
class ThreadPool {
 public:
  /// A unit of work; receives the id of the worker running it.
  using Task = std::function<void(unsigned)>;

  /// Spawns `num_threads` workers (resolved; must be >= 1).
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()); }

  /// Runs tasks `0 .. num_tasks-1` as `fn(task, worker)` where `worker` is
  /// in `[0, num_threads())`; returns once every task (including tasks
  /// added by Submit) has finished. Tasks are dealt round-robin across the
  /// worker deques and rebalanced by stealing. `fn` must not throw. One
  /// ParallelFor may run at a time.
  void ParallelFor(std::uint64_t num_tasks,
                   const std::function<void(std::uint64_t, unsigned)>& fn);

  /// Adds one task to the currently running batch. Must only be called
  /// from inside a task of an active ParallelFor (the batch cannot
  /// complete concurrently: the calling task's completion has not been
  /// posted yet). Thread-safe; tasks are dealt round-robin so starving
  /// siblings pick them up directly.
  void Submit(Task task);

  /// True when fewer tasks are queued than there are workers — i.e. some
  /// worker is starving or about to. Cheap approximation (relaxed atomic),
  /// used by the engines to decide when splitting a subtree is worth the
  /// copies.
  bool QueueNearlyDry() const {
    return queued_.load(std::memory_order_relaxed) <
           static_cast<std::int64_t>(workers_.size());
  }

 private:
  struct Worker {
    std::deque<Task> tasks;
    std::mutex mu;
  };

  void WorkerLoop(unsigned index);
  /// Pops a task for worker `index`, stealing if needed. Returns false
  /// when no task is available anywhere.
  bool NextTask(unsigned index, Task* task);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex mu_;                    // guards outstanding_ / stop_.
  std::condition_variable work_cv_;  // workers wait for queued tasks.
  std::condition_variable done_cv_;  // ParallelFor waits for completion.
  std::uint64_t outstanding_ = 0;
  bool stop_ = false;
  /// Tasks sitting in deques (not yet popped). Every increment happens
  /// while mu_ is held so sleeping workers cannot miss the wakeup;
  /// decrements (pops) happen lock-free.
  std::atomic<std::int64_t> queued_{0};
  std::atomic<std::uint64_t> next_victim_{0};  // round-robin Submit target.
};

/// Chunk size of the data-parallel loops (peeling rounds, degree init):
/// coarse enough to amortize deque traffic, fine enough to rebalance.
inline constexpr std::uint64_t kParallelChunk = 512;

/// Runs `fn(begin, end, worker)` over consecutive chunks of `[0, n)` on
/// the pool. A plain blocking data-parallel loop (one batch, no dynamic
/// submission) used by the bulk-synchronous peeling phases.
template <typename Fn>
void ParallelForChunks(ThreadPool& pool, std::uint64_t n, Fn&& fn) {
  const std::uint64_t chunks = (n + kParallelChunk - 1) / kParallelChunk;
  pool.ParallelFor(chunks, [&](std::uint64_t chunk, unsigned worker) {
    const std::uint64_t begin = chunk * kParallelChunk;
    fn(begin, std::min(n, begin + kParallelChunk), worker);
  });
}

/// Serializing sink adapter: wraps a plain BicliqueSink so concurrent
/// workers invoke it one at a time. The pipeline entry points wrap every
/// caller-provided sink in one of these, which is why existing sinks need
/// no thread-safety of their own (see the contract in core/enumerate.h).
/// One of the composable ResultSink stages; its Accept (and the AsSink
/// view) is safe under concurrent emission.
class SerializingSink final : public ResultSink {
 public:
  explicit SerializingSink(const BicliqueSink& sink) : inner_(sink) {}

  SerializingSink(const SerializingSink&) = delete;
  SerializingSink& operator=(const SerializingSink&) = delete;

  bool Accept(const Biclique& b) override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_(b);
  }

 private:
  std::mutex mu_;
  const BicliqueSink& inner_;
};

/// Folds one worker's stats block into the run aggregate: counters and
/// timings sum, peaks take the max, and budget_exhausted is sticky (any
/// worker tripping the budget marks the whole run).
void MergeEnumStats(EnumStats& into, const EnumStats& worker);

/// Handle the engines use for depth-adaptive task splitting: when the
/// pool queue runs dry while a worker walks a dominating subtree, the
/// subtree's depth-1 branches are re-submitted as fresh tasks instead of
/// starving the other workers. Submitted closures receive the per-worker
/// state of whichever worker picks them up (`State` is typically a
/// unique_ptr to a context/engine; the closure gets the dereferenced
/// element).
template <typename State>
class SubtreeSplitter {
 public:
  SubtreeSplitter(ThreadPool& pool, std::vector<State>& states)
      : pool_(pool), states_(states) {}

  SubtreeSplitter(const SubtreeSplitter&) = delete;
  SubtreeSplitter& operator=(const SubtreeSplitter&) = delete;

  /// True when splitting would feed starving workers right now.
  bool ShouldSplit() const { return pool_.QueueNearlyDry(); }

  /// Re-submits one subtree as a fresh pool task; `fn(*states[worker])`
  /// runs on whichever worker pops it. Only valid from inside a running
  /// task (ThreadPool::Submit's contract).
  template <typename Fn>
  void Submit(Fn&& fn) {
    pool_.Submit([this, fn = std::forward<Fn>(fn)](unsigned worker) mutable {
      fn(*states_[worker]);
    });
  }

 private:
  ThreadPool& pool_;
  std::vector<State>& states_;
};

/// Shared fan-out driver of the enumeration engines: builds one worker
/// state via `make_state(worker)`, runs `run(*states[worker], task,
/// splitter)` for every root task on a work-stealing pool, and returns the
/// states for the caller to merge. The splitter lets a root task
/// re-submit its depth-1 branches when the queue runs dry (depth-adaptive
/// splitting); engines that never split may ignore it.
template <typename State, typename MakeState, typename Run>
std::vector<State> FanOutRootBranches(unsigned num_threads,
                                      std::uint64_t num_tasks,
                                      MakeState&& make_state, Run&& run) {
  std::vector<State> states;
  states.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) states.push_back(make_state(t));
  ThreadPool pool(num_threads);
  SubtreeSplitter<State> splitter(pool, states);
  pool.ParallelFor(num_tasks, [&](std::uint64_t task, unsigned worker) {
    run(*states[worker], task, splitter);
  });
  return states;
}

}  // namespace fairbc

#endif  // FAIRBC_CORE_PARALLEL_H_
