#include "core/coloring.h"

#include <algorithm>
#include <numeric>

#include "common/status.h"

namespace fairbc {

Coloring GreedyColor(const UnipartiteGraph& h, const std::vector<char>& alive) {
  const VertexId n = h.NumVertices();
  FAIRBC_CHECK(alive.size() == n);
  Coloring result;
  result.color.assign(n, 0);

  std::vector<VertexId> order;
  order.reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    if (alive[v]) order.push_back(v);
  }
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return h.Degree(a) > h.Degree(b);
  });

  std::vector<char> used;  // scratch: color -> used by a neighbor?
  std::vector<char> assigned(n, 0);
  for (VertexId v : order) {
    used.assign(result.num_colors + 1, 0);
    for (VertexId w : h.adj[v]) {
      if (alive[w] && assigned[w]) used[result.color[w]] = 1;
    }
    std::uint32_t c = 0;
    while (c < used.size() && used[c]) ++c;
    result.color[v] = c;
    assigned[v] = 1;
    if (c + 1 > result.num_colors) result.num_colors = c + 1;
  }
  return result;
}

bool IsProperColoring(const UnipartiteGraph& h, const std::vector<char>& alive,
                      const Coloring& coloring) {
  for (VertexId v = 0; v < h.NumVertices(); ++v) {
    if (!alive[v]) continue;
    for (VertexId w : h.adj[v]) {
      if (alive[w] && coloring.color[v] == coloring.color[w]) return false;
    }
  }
  return true;
}

}  // namespace fairbc
