#include "core/coloring.h"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "common/status.h"
#include "core/parallel.h"
#include "core/reduction_context.h"

namespace fairbc {

Coloring GreedyColor(const UnipartiteGraph& h, const std::vector<char>& alive) {
  const VertexId n = h.NumVertices();
  FAIRBC_CHECK(alive.size() == n);
  Coloring result;
  result.color.assign(n, 0);

  std::vector<VertexId> order;
  order.reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    if (alive[v]) order.push_back(v);
  }
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return h.Degree(a) > h.Degree(b);
  });

  std::vector<char> used;  // scratch: color -> used by a neighbor?
  std::vector<char> assigned(n, 0);
  for (VertexId v : order) {
    used.assign(result.num_colors + 1, 0);
    for (VertexId w : h.Neighbors(v)) {
      if (alive[w] && assigned[w]) used[result.color[w]] = 1;
    }
    std::uint32_t c = 0;
    while (c < used.size() && used[c]) ++c;
    result.color[v] = c;
    assigned[v] = 1;
    if (c + 1 > result.num_colors) result.num_colors = c + 1;
  }
  return result;
}

namespace {

/// Smallest color absent among `v`'s alive higher-priority neighbors, all
/// of which are already colored. `mark` is a per-worker scratch stamped
/// with `v + 1` so it never needs clearing between vertices.
template <typename Higher>
std::uint32_t MexColor(const UnipartiteGraph& h, const std::vector<char>& alive,
                       const std::vector<std::uint32_t>& color,
                       const Higher& higher, VertexId v,
                       std::vector<VertexId>& mark) {
  const VertexId stamp = v + 1;
  std::uint32_t bound = 0;  // colors seen are < number of ranked neighbors.
  for (VertexId w : h.Neighbors(v)) {
    if (!alive[w] || !higher(w, v)) continue;
    ++bound;
    if (color[w] < mark.size()) mark[color[w]] = stamp;
  }
  for (std::uint32_t c = 0; c <= bound; ++c) {
    if (mark[c] != stamp) return c;
  }
  FAIRBC_CHECK(false);  // mex is at most the ranked-neighbor count.
  return 0;
}

}  // namespace

Coloring JonesPlassmannColor(const UnipartiteGraph& h,
                             const std::vector<char>& alive,
                             ReductionContext* ctx) {
  const VertexId n = h.NumVertices();
  FAIRBC_CHECK(alive.size() == n);
  Coloring result;
  result.color.assign(n, 0);
  if (n == 0) return result;

  // Fixed total priority order: degree desc, then id asc — the same order
  // GreedyColor processes vertices in, which is what makes the two
  // kernels byte-identical.
  auto higher = [&h](VertexId a, VertexId b) {
    const VertexId da = h.Degree(a), db = h.Degree(b);
    return da != db ? da > db : a < b;
  };

  ThreadPool* pool = ctx != nullptr ? ctx->pool() : nullptr;
  const unsigned workers = pool != nullptr ? pool->num_threads() : 1;

  // wait[v]: uncolored alive higher-priority neighbors of v; a vertex
  // enters the frontier when its count hits zero. Two frontier vertices
  // are never adjacent (the higher-priority endpoint would still be
  // waiting on the other), so a round colors an independent set and the
  // colors it reads were all published by earlier rounds' barriers.
  std::vector<std::uint32_t> wait(n, 0);
  std::vector<std::vector<VertexId>> local(workers);
  VertexId max_degree = 0;
  auto seed_range = [&](VertexId begin, VertexId end, unsigned worker) {
    for (VertexId v = begin; v < end; ++v) {
      if (!alive[v]) continue;
      std::uint32_t pending = 0;
      for (VertexId w : h.Neighbors(v)) {
        if (alive[w] && higher(w, v)) ++pending;
      }
      wait[v] = pending;
      if (pending == 0) local[worker].push_back(v);
    }
  };
  if (pool != nullptr) {
    ParallelForChunks(*pool, n, [&](std::uint64_t begin, std::uint64_t end,
                                    unsigned worker) {
      seed_range(static_cast<VertexId>(begin), static_cast<VertexId>(end),
                 worker);
    });
  } else {
    seed_range(0, n, 0);
  }
  for (VertexId v = 0; v < n; ++v) max_degree = std::max(max_degree, h.Degree(v));

  std::vector<VertexId> frontier;
  auto drain_local = [&] {
    frontier.clear();
    for (auto& buf : local) {
      frontier.insert(frontier.end(), buf.begin(), buf.end());
      buf.clear();
    }
  };
  drain_local();

  // Per-worker mex scratch; colors never exceed max_degree.
  std::vector<std::vector<VertexId>> marks(
      workers, std::vector<VertexId>(static_cast<std::size_t>(max_degree) + 2, 0));

  std::vector<VertexId> current;
  while (!frontier.empty()) {
    current.swap(frontier);
    auto color_range = [&](std::uint64_t begin, std::uint64_t end,
                           unsigned worker) {
      auto& out = local[worker];
      auto& mark = marks[worker];
      for (std::uint64_t i = begin; i < end; ++i) {
        const VertexId v = current[i];
        result.color[v] = MexColor(h, alive, result.color, higher, v, mark);
        for (VertexId w : h.Neighbors(v)) {
          if (!alive[w] || !higher(v, w)) continue;
          if (pool != nullptr) {
            if (std::atomic_ref<std::uint32_t>(wait[w]).fetch_sub(
                    1, std::memory_order_relaxed) == 1) {
              out.push_back(w);
            }
          } else if (--wait[w] == 0) {
            out.push_back(w);
          }
        }
      }
    };
    if (pool != nullptr) {
      ParallelForChunks(*pool, current.size(), color_range);
    } else {
      color_range(0, current.size(), 0);
    }
    drain_local();
  }

  for (VertexId v = 0; v < n; ++v) {
    if (alive[v]) {
      result.num_colors = std::max(result.num_colors, result.color[v] + 1);
    }
  }
  return result;
}

bool IsProperColoring(const UnipartiteGraph& h, const std::vector<char>& alive,
                      const Coloring& coloring) {
  for (VertexId v = 0; v < h.NumVertices(); ++v) {
    if (!alive[v]) continue;
    for (VertexId w : h.Neighbors(v)) {
      if (alive[w] && coloring.color[v] == coloring.color[w]) return false;
    }
  }
  return true;
}

}  // namespace fairbc
