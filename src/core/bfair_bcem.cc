#include "core/bfair_bcem.h"

#include <algorithm>

#include "core/fair_bcem_pp.h"
#include "core/intersect.h"
#include "fairness/combination.h"
#include "fairness/fair_set.h"

namespace fairbc {

namespace {

// Common neighborhood (on the lower side) of an upper vertex set.
std::vector<VertexId> CommonLowerNeighborhood(const BipartiteGraph& g,
                                              std::span<const VertexId> upper) {
  FAIRBC_CHECK(!upper.empty());
  auto first = g.Neighbors(Side::kUpper, upper[0]);
  std::vector<VertexId> common(first.begin(), first.end());
  for (std::size_t i = 1; i < upper.size() && !common.empty(); ++i) {
    common = Intersect(common, g.Neighbors(Side::kUpper, upper[i]));
  }
  return common;
}

}  // namespace

EnumStats BFairBcemRun(const BipartiteGraph& g,
                       const FairBicliqueParams& params,
                       const EnumOptions& options, SsEngine engine,
                       const BicliqueSink& sink) {
  EnumStats stats;
  if (g.NumUpper() == 0 || g.NumLower() == 0) return stats;
  const FairnessSpec upper_spec = params.UpperSpec();
  const FairnessSpec lower_spec = params.LowerSpec();

  // Every bi-side fair biclique has at least num_upper_attrs * alpha upper
  // vertices, so the inner single-side search can use the tighter bound.
  const std::uint32_t min_upper = std::max<std::uint32_t>(
      1u, params.alpha * g.NumAttrs(Side::kUpper));

  bool aborted = false;
  std::uint64_t emitted = 0;

  // Paper Alg. 9 body, run per single-side fair biclique (L', R').
  BicliqueSink ss_sink = [&](const Biclique& ss) {
    SizeVector r_sizes = AttrSizes(g, Side::kLower, ss.lower);
    EnumerateMaximalFairSubsets(
        g, Side::kUpper, ss.upper, upper_spec,
        [&](std::span<const VertexId> l_sub) {
          if (l_sub.empty()) return true;  // bicliques need nonempty sides.
          std::vector<VertexId> hood = CommonLowerNeighborhood(g, l_sub);
          // R' ⊆ N∩(l') always holds (l' ⊆ N∩(R')); (l', R') is a bi-side
          // fair biclique iff R' cannot be fairly extended inside N∩(l').
          if (IsMaximalFairVector(r_sizes,
                                  AttrSizes(g, Side::kLower, hood),
                                  lower_spec)) {
            Biclique b;
            b.upper.assign(l_sub.begin(), l_sub.end());
            b.lower = ss.lower;
            ++emitted;
            if (!sink(b)) {
              aborted = true;
              return false;
            }
          }
          return true;
        });
    return !aborted;
  };

  switch (engine) {
    case SsEngine::kFairBcem:
      stats = FairBcemRun(g, params, min_upper, options,
                          FairBcemSearchOptions{}, ss_sink);
      break;
    case SsEngine::kFairBcemPlusPlus:
      stats = FairBcemPpRun(g, params, min_upper, options, ss_sink);
      break;
    case SsEngine::kNaive:
      stats = FairBcemRun(g, params, min_upper, options, NaiveSearchOptions(),
                          ss_sink);
      break;
  }
  stats.num_results = emitted;
  return stats;
}

}  // namespace fairbc
