#include "core/bfair_bcem.h"

#include <algorithm>
#include <atomic>

#include "core/fair_bcem_pp.h"
#include "core/intersect.h"
#include "core/search_context.h"
#include "fairness/combination.h"
#include "fairness/fair_set.h"

namespace fairbc {

namespace {

// Common neighborhood (on the lower side) of an upper vertex set, plus
// its per-class size histogram (`counts`, sized to the lower attr
// domain). The running intersection shrinks monotonically, so two
// ping-pong buffers sized to the first neighbor list cover the fold, and
// the last step fuses the class counting into the intersection instead
// of a separate pass over the result.
std::vector<VertexId> CommonLowerNeighborhoodWithCounts(
    const BipartiteGraph& g, std::span<const VertexId> upper,
    SizeVector* counts) {
  FAIRBC_CHECK(!upper.empty());
  counts->assign(g.NumAttrs(Side::kLower), 0);
  const std::span<const AttrId> attrs = g.AttrArray(Side::kLower);
  auto first = g.Neighbors(Side::kUpper, upper[0]);
  std::vector<VertexId> common(first.begin(), first.end());
  if (upper.size() == 1) {
    for (VertexId v : common) ++(*counts)[attrs[v]];
    return common;
  }
  std::vector<VertexId> tmp(common.size());
  for (std::size_t i = 1; i + 1 < upper.size() && !common.empty(); ++i) {
    tmp.resize(
        IntersectInto(tmp.data(), common, g.Neighbors(Side::kUpper, upper[i])));
    common.swap(tmp);
  }
  if (!common.empty()) {
    tmp.resize(IntersectWithAttrCounts(
        tmp.data(), common, g.Neighbors(Side::kUpper, upper.back()), attrs,
        counts->data()));
    common.swap(tmp);
  }
  return common;
}

}  // namespace

EnumStats BFairBcemRun(const BipartiteGraph& g,
                       const FairBicliqueParams& params,
                       const EnumOptions& options, SsEngine engine,
                       const BicliqueSink& sink) {
  EnumStats stats;
  if (g.NumUpper() == 0 || g.NumLower() == 0) return stats;
  if (options.topk != nullptr) {
    // ss_sink shrinks each SS biclique's upper side to its fair subsets
    // and regrows the lower side to each subset's common neighborhood —
    // the upper side of any derived result stays within the subtree's L,
    // but the lower side is only bounded by the whole (reduced) graph.
    options.topk->set_lower_cap(
        static_cast<std::uint32_t>(g.NumVertices(Side::kLower)));
  }
  const FairnessSpec upper_spec = params.UpperSpec();
  // The bi-side model is the lower-side policy applied once more on the
  // upper side; both policies are shared read-only by every worker.
  const SpecFairnessPolicy lower_policy(params.LowerSpec());

  // Every bi-side fair biclique has at least num_upper_attrs * alpha upper
  // vertices, so the inner single-side search can use the tighter bound.
  const std::uint32_t min_upper = std::max<std::uint32_t>(
      1u, params.alpha * g.NumAttrs(Side::kUpper));

  // The inner engine delivers single-side fair bicliques from several
  // workers at once when options.num_threads != 1; this body keeps all
  // its state per-call or atomic and forwards to `sink` under the
  // engine-level threading contract (core/enumerate.h).
  std::atomic<bool> aborted{false};
  std::atomic<std::uint64_t> emitted{0};

  // Paper Alg. 9 body, run per single-side fair biclique (L', R').
  BicliqueSink ss_sink = [&](const Biclique& ss) {
    SizeVector r_sizes = AttrSizes(g, Side::kLower, ss.lower);
    EnumerateMaximalFairSubsets(
        g, Side::kUpper, ss.upper, upper_spec,
        [&](std::span<const VertexId> l_sub) {
          if (l_sub.empty()) return true;  // bicliques need nonempty sides.
          SizeVector hood_sizes;
          std::vector<VertexId> hood =
              CommonLowerNeighborhoodWithCounts(g, l_sub, &hood_sizes);
          // R' ⊆ N∩(l') always holds (l' ⊆ N∩(R')); (l', R') is a bi-side
          // fair biclique iff R' cannot be fairly extended inside N∩(l').
          if (lower_policy.MaximalWithin(r_sizes, hood_sizes)) {
            Biclique b;
            b.upper.assign(l_sub.begin(), l_sub.end());
            b.lower = ss.lower;
            emitted.fetch_add(1, std::memory_order_relaxed);
            if (!sink(b)) {
              aborted.store(true, std::memory_order_relaxed);
              return false;
            }
          }
          return true;
        });
    return !aborted.load(std::memory_order_relaxed);
  };

  switch (engine) {
    case SsEngine::kFairBcem:
      stats = FairBcemRun(g, params, min_upper, options,
                          FairBcemSearchOptions{}, ss_sink);
      break;
    case SsEngine::kFairBcemPlusPlus:
      stats = FairBcemPpRun(g, params, min_upper, options, ss_sink);
      break;
    case SsEngine::kNaive:
      stats = FairBcemRun(g, params, min_upper, options, NaiveSearchOptions(),
                          ss_sink);
      break;
  }
  stats.num_results = emitted.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace fairbc
