#ifndef FAIRBC_CORE_ENUMERATE_H_
#define FAIRBC_CORE_ENUMERATE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"
#include "fairness/fair_vector.h"

namespace fairbc {

/// Parameters of the four fair-biclique models (Defs. 3–6).
struct FairBicliqueParams {
  std::uint32_t alpha = 1;  ///< upper-side size (SSFBC) / per-class (BSFBC).
  std::uint32_t beta = 1;   ///< lower-side per-class minimum.
  std::uint32_t delta = 0;  ///< max class-size difference on a fair side.
  double theta = 0.0;       ///< proportional threshold; 0 disables (Defs. 3/4).

  /// Fairness constraints on the lower (default fair) side.
  FairnessSpec LowerSpec() const { return FairnessSpec{beta, delta, theta}; }
  /// Fairness constraints on the upper side (bi-side models).
  FairnessSpec UpperSpec() const { return FairnessSpec{alpha, delta, theta}; }
};

/// One enumerated biclique; both sides sorted ascending, ids refer to the
/// graph the enumeration entry point was given (pruning remaps back).
struct Biclique {
  std::vector<VertexId> upper;
  std::vector<VertexId> lower;

  bool operator==(const Biclique& other) const = default;
  bool operator<(const Biclique& other) const {
    if (upper != other.upper) return upper < other.upper;
    return lower < other.lower;
  }
  std::string DebugString() const;
};

/// Receives results; return false to abort the enumeration.
using BicliqueSink = std::function<bool(const Biclique&)>;

/// Candidate processing order in the branch-and-bound search (Table II).
enum class VertexOrdering {
  kId,          ///< IDOrd: ascending vertex id.
  kDegreeDesc,  ///< DegOrd: non-increasing degree (paper default).
};

/// Graph-reduction preprocessing level (Figs. 3–4; ablation A1).
enum class PruningLevel {
  kNone,      ///< no reduction (only used by ablations/tests).
  kCore,      ///< FCore (single-side) / BFCore (bi-side).
  kColorful,  ///< CFCore / BCFCore (paper default).
};

struct EnumOptions {
  VertexOrdering ordering = VertexOrdering::kDegreeDesc;
  PruningLevel pruning = PruningLevel::kColorful;
  /// Maximum number of search-tree nodes (0 = unlimited); emulates the
  /// paper's 24h timeout for the naive baselines.
  std::uint64_t node_budget = 0;
  /// Wall-clock budget in seconds (0 = unlimited).
  double time_budget_seconds = 0.0;
};

/// Counters reported by every enumeration entry point.
struct EnumStats {
  std::uint64_t num_results = 0;
  std::uint64_t search_nodes = 0;
  std::uint64_t maximal_bicliques_visited = 0;  ///< ++ engines only.
  double prune_seconds = 0.0;
  double enum_seconds = 0.0;
  bool budget_exhausted = false;
  /// Vertices surviving the graph reduction.
  VertexId remaining_upper = 0;
  VertexId remaining_lower = 0;
  /// Peak bytes of algorithm-owned auxiliary structures (Fig. 8).
  std::size_t peak_struct_bytes = 0;

  std::string DebugString() const;
};

/// Convenience sink collecting every result.
class CollectSink {
 public:
  BicliqueSink AsSink() {
    return [this](const Biclique& b) {
      results_.push_back(b);
      return true;
    };
  }
  const std::vector<Biclique>& results() const { return results_; }
  std::vector<Biclique>& mutable_results() { return results_; }

 private:
  std::vector<Biclique> results_;
};

/// Convenience sink that only counts.
class CountSink {
 public:
  BicliqueSink AsSink() {
    return [this](const Biclique&) {
      ++count_;
      return true;
    };
  }
  std::uint64_t count() const { return count_; }

 private:
  std::uint64_t count_ = 0;
};

}  // namespace fairbc

#endif  // FAIRBC_CORE_ENUMERATE_H_
