#ifndef FAIRBC_CORE_ENUMERATE_H_
#define FAIRBC_CORE_ENUMERATE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/kernels.h"
#include "fairness/fair_vector.h"

namespace fairbc {

class TraceRecorder;
class SearchBudget;

/// Parameters of the four fair-biclique models (Defs. 3–6).
struct FairBicliqueParams {
  std::uint32_t alpha = 1;  ///< upper-side size (SSFBC) / per-class (BSFBC).
  std::uint32_t beta = 1;   ///< lower-side per-class minimum.
  std::uint32_t delta = 0;  ///< max class-size difference on a fair side.
  double theta = 0.0;       ///< proportional threshold; 0 disables (Defs. 3/4).

  /// Fairness constraints on the lower (default fair) side.
  FairnessSpec LowerSpec() const { return FairnessSpec{beta, delta, theta}; }
  /// Fairness constraints on the upper side (bi-side models).
  FairnessSpec UpperSpec() const { return FairnessSpec{alpha, delta, theta}; }
};

/// One enumerated biclique; both sides sorted ascending, ids refer to the
/// graph the enumeration entry point was given (pruning remaps back).
struct Biclique {
  std::vector<VertexId> upper;
  std::vector<VertexId> lower;

  bool operator==(const Biclique& other) const = default;
  bool operator<(const Biclique& other) const {
    if (upper != other.upper) return upper < other.upper;
    return lower < other.lower;
  }
  std::string DebugString() const;
};

/// Receives results; return false to abort the enumeration.
///
/// Threading contract: the pipeline.h entry points always invoke the
/// caller's sink one call at a time (they wrap it in a SerializingSink,
/// core/parallel.h, before fanning out), so sinks passed to the public API
/// need no synchronization of their own — but when
/// EnumOptions::num_threads != 1 the calls arrive from worker threads in
/// nondeterministic order. The lower-level engine entry points
/// (FairBcemRun, FairBcemPpRun, BFairBcemRun, EnumerateMaximalBicliques)
/// skip that wrapping and may invoke their sink concurrently; direct
/// callers running with num_threads != 1 must pass a thread-safe sink
/// (CollectSink/CountSink below qualify).
using BicliqueSink = std::function<bool(const Biclique&)>;

/// Composable result-sink interface: every consumer of an enumeration —
/// collecting, counting, chunked streaming, top-k selection — is one
/// ResultSink, and sinks stack by forwarding Accept to an inner sink.
/// Accept returns false to abort the run (same contract as BicliqueSink,
/// which remains the engines' currency; AsSink() bridges). Finish() is
/// called exactly once after the enumeration returns so buffering sinks
/// (core/result_sink.h ChunkSink, TopKSink) can flush; for pass-through
/// sinks it is a no-op. Unless a sink documents otherwise, Accept/Finish
/// follow the BicliqueSink threading contract above.
class ResultSink {
 public:
  virtual ~ResultSink() = default;

  /// Consumes one result; false aborts the enumeration.
  virtual bool Accept(const Biclique& b) = 0;

  /// Flushes buffered state once the run is over (no further Accepts).
  virtual void Finish() {}

  /// Adapter into the engines' functional sink type. The returned
  /// callable references *this and must not outlive it.
  BicliqueSink AsSink() {
    return [this](const Biclique& b) { return Accept(b); };
  }
};

/// Ranking for top-k result selection (core/result_sink.h TopKSink and
/// the service/CLI `top_k`/`rank` knobs). Higher rank value = better;
/// ties break by the canonical Biclique order (smaller wins) so top-k
/// output is deterministic whatever the emission order.
enum class TopKRank {
  kWeight,   ///< |upper| * |lower| (edge count of the biclique).
  kSize,     ///< |upper| + |lower| (vertex count).
  kBalance,  ///< min(|upper|, |lower|) (balanced-biclique objective).
};

/// Rank value of a (|upper|, |lower|) shape pair under `rank`.
std::uint64_t RankValue(std::uint64_t upper_size, std::uint64_t lower_size,
                        TopKRank rank);

/// Shared branch-and-bound prune state for top-k runs: the top-k sink
/// publishes the current k-th best rank value once its keeper is full, and
/// every engine worker consults CanPrune before descending into a subtree.
/// A subtree is cut only when its best possible rank value is *strictly*
/// below the published bound — results tying the k-th best can still
/// displace it under the canonical tie-break, so pruned runs return
/// exactly the top k of the full enumeration.
///
/// Engines whose emitted results re-expand one side after enumeration
/// (FairBcemPpRun grows the upper side of each fair subset back to its
/// common neighborhood; BFairBcemRun likewise the lower side) cannot bound
/// that side from the subtree sets, so their run drivers install a
/// graph-level cap that replaces the local bound for that side.
class TopKPruneBound {
 public:
  explicit TopKPruneBound(TopKRank rank) : rank_(rank) {}

  TopKRank rank() const { return rank_; }

  /// Installed by run drivers before fan-out (see class comment).
  void set_upper_cap(std::uint32_t cap) {
    upper_cap_.store(cap, std::memory_order_relaxed);
  }
  void set_lower_cap(std::uint32_t cap) {
    lower_cap_.store(cap, std::memory_order_relaxed);
  }

  /// Publishes the current k-th best value (keeper full). Monotone
  /// non-decreasing by construction; called under the sink serialization.
  void Publish(std::uint64_t kth_value) {
    bound_.store(kth_value, std::memory_order_release);
    full_.store(true, std::memory_order_release);
  }

  /// May a subtree whose results all fit within (upper_bound, lower_bound)
  /// be cut? Relaxed loads: a stale (smaller) bound only prunes less.
  bool CanPrune(std::uint64_t upper_bound, std::uint64_t lower_bound) const {
    if (!full_.load(std::memory_order_relaxed)) return false;
    std::uint64_t u_cap = upper_cap_.load(std::memory_order_relaxed);
    std::uint64_t l_cap = lower_cap_.load(std::memory_order_relaxed);
    if (u_cap != 0) upper_bound = u_cap;
    if (l_cap != 0) lower_bound = l_cap;
    return RankValue(upper_bound, lower_bound, rank_) <
           bound_.load(std::memory_order_relaxed);
  }

 private:
  const TopKRank rank_;
  std::atomic<std::uint64_t> bound_{0};
  std::atomic<bool> full_{false};
  std::atomic<std::uint32_t> upper_cap_{0};
  std::atomic<std::uint32_t> lower_cap_{0};
};

/// Candidate processing order in the branch-and-bound search (Table II).
enum class VertexOrdering {
  kId,          ///< IDOrd: ascending vertex id.
  kDegreeDesc,  ///< DegOrd: non-increasing degree (paper default).
};

/// Graph-reduction preprocessing level (Figs. 3–4; ablation A1).
enum class PruningLevel {
  kNone,      ///< no reduction (only used by ablations/tests).
  kCore,      ///< FCore (single-side) / BFCore (bi-side).
  kColorful,  ///< CFCore / BCFCore (paper default).
};

struct EnumOptions {
  VertexOrdering ordering = VertexOrdering::kDegreeDesc;
  PruningLevel pruning = PruningLevel::kColorful;
  /// Maximum number of search-tree nodes (0 = unlimited); emulates the
  /// paper's 24h timeout for the naive baselines.
  std::uint64_t node_budget = 0;
  /// Wall-clock budget in seconds (0 = unlimited).
  double time_budget_seconds = 0.0;
  /// Worker threads for the whole pipeline: the graph-reduction peeling
  /// (bulk-synchronous frontier rounds), the root-level subtree fan-out of
  /// the search, and its depth-adaptive task splitting all use this count.
  /// 1 = serial (the exact pre-parallel traversal, node accounting
  /// included), 0 = one per hardware thread, n = n workers. The result
  /// *set* is identical for every value; emission order and search_nodes
  /// bookkeeping may differ once the search actually runs on several
  /// workers.
  unsigned num_threads = 1;
  /// Optional per-query span recorder (obs/trace.h): the pipeline and the
  /// engines emit phase spans (reduce / construct / color / peel /
  /// enumerate, root fan-out tasks, split subtrees) into it. Not part of
  /// a query's identity — cache keys and result sets ignore it. null =
  /// no tracing (the default, and the zero-overhead path).
  TraceRecorder* trace = nullptr;
  /// Optional top-k branch-and-bound prune state, owned by the caller's
  /// top-k sink (core/result_sink.h TopKSink::prune_bound()). Engines cut
  /// subtrees that provably cannot reach the published k-th best; null =
  /// full enumeration (the default). Like `trace`, not part of a query's
  /// identity — but the *k/rank* knobs that create one are. Non-const so
  /// run drivers can install the engine-appropriate side caps.
  TopKPruneBound* topk = nullptr;
  /// Optional caller-owned budget the engines use instead of constructing
  /// their own from node_budget/time_budget_seconds. Lets streaming
  /// consumers observe mid-run progress (SearchBudget::nodes — the
  /// StreamCheckpoint of core/result_sink.h) and abort cooperatively. The
  /// caller must construct it with the same limits as this options block
  /// and must not reuse it across runs. null = engine-owned (default).
  SearchBudget* shared_budget = nullptr;
};

/// Counters reported by every enumeration entry point.
struct EnumStats {
  std::uint64_t num_results = 0;
  std::uint64_t search_nodes = 0;
  std::uint64_t maximal_bicliques_visited = 0;  ///< ++ engines only.
  /// Subtrees handed back to the pool by depth-adaptive task splitting
  /// (0 on serial runs and whenever the queue never ran dry).
  std::uint64_t split_subtrees = 0;
  double prune_seconds = 0.0;
  /// Reduction-phase breakdown of prune_seconds (kColorful pruning):
  /// 2-hop construction, coloring, and peeling (FCore/BFCore passes count
  /// toward peel). Compaction and mask bookkeeping make up the remainder.
  double prune_construct_seconds = 0.0;
  double prune_color_seconds = 0.0;
  double prune_peel_seconds = 0.0;
  double enum_seconds = 0.0;
  bool budget_exhausted = false;
  /// Vertices surviving the graph reduction.
  VertexId remaining_upper = 0;
  VertexId remaining_lower = 0;
  /// Peak bytes of algorithm-owned auxiliary structures (Fig. 8); includes
  /// the workers' recursion-arena high-water marks.
  std::size_t peak_struct_bytes = 0;
  /// Intersection-kernel telemetry summed over every worker of the run
  /// (calls, work steps, dispatch histogram; core/kernels.h).
  KernelStats kernels;

  std::string DebugString() const;
};

/// Convenience sink collecting every result. Internally synchronized so it
/// is safe even with the engine-level entry points that emit from several
/// workers; results()/mutable_results() must only be read after the
/// enumeration returned.
class CollectSink final : public ResultSink {
 public:
  bool Accept(const Biclique& b) override {
    std::lock_guard<std::mutex> lock(mu_);
    results_.push_back(b);
    return true;
  }
  const std::vector<Biclique>& results() const { return results_; }
  std::vector<Biclique>& mutable_results() { return results_; }

 private:
  std::mutex mu_;
  std::vector<Biclique> results_;
};

/// Convenience sink that only counts; safe under concurrent emission.
class CountSink final : public ResultSink {
 public:
  bool Accept(const Biclique&) override {
    count_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> count_{0};
};

}  // namespace fairbc

#endif  // FAIRBC_CORE_ENUMERATE_H_
