#ifndef FAIRBC_CORE_BFAIR_BCEM_H_
#define FAIRBC_CORE_BFAIR_BCEM_H_

#include "core/enumerate.h"
#include "core/fair_bcem.h"
#include "graph/bipartite_graph.h"

namespace fairbc {

/// Which single-side engine drives the bi-side enumeration (paper Alg. 9:
/// BFairBCEM uses FairBCEM, BFairBCEM++ uses FairBCEM++, BNSF uses the
/// unpruned search).
enum class SsEngine {
  kFairBcem,
  kFairBcemPlusPlus,
  kNaive,
};

/// Bi-side fair biclique enumeration (paper Alg. 9) on an already-pruned
/// graph: enumerate single-side fair bicliques (L', R'), then for every
/// maximal fair subset l' of L' (Combination on the upper side) emit
/// (l', R') iff R' is a maximal fair subset of the common neighborhood of
/// l'. With params.theta > 0 this is BFairBCEMPro++. Library users should
/// go through pipeline.h which wires in the BCFCore reduction.
EnumStats BFairBcemRun(const BipartiteGraph& g,
                       const FairBicliqueParams& params,
                       const EnumOptions& options, SsEngine engine,
                       const BicliqueSink& sink);

}  // namespace fairbc

#endif  // FAIRBC_CORE_BFAIR_BCEM_H_
