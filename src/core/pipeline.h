#ifndef FAIRBC_CORE_PIPELINE_H_
#define FAIRBC_CORE_PIPELINE_H_

#include "core/enumerate.h"
#include "core/fair_bcem.h"
#include "core/verify.h"
#include "graph/bipartite_graph.h"

namespace fairbc {

/// Public enumeration entry points. Each runs the configured graph
/// reduction (CFCore / BCFCore by default, see EnumOptions::pruning),
/// compacts the survivors, runs the engine, and reports results in the
/// *input* graph's vertex ids. Statistics cover both phases.
///
/// Quickstart:
///
///   fairbc::FairBicliqueParams params{.alpha = 2, .beta = 2, .delta = 1};
///   fairbc::CollectSink sink;
///   fairbc::EnumerateSSFBCPlusPlus(graph, params, {}, sink.AsSink());
///   for (const auto& b : sink.results()) { ... }
///
/// Set EnumOptions::num_threads to parallelize the search (0 = one worker
/// per hardware thread). The caller's sink is always invoked serially —
/// these entry points wrap it in a SerializingSink before fanning out —
/// but emission order is nondeterministic once several workers run; the
/// result *set* is identical for every thread count.

/// FairBCEM (paper Alg. 5): branch-and-bound single-side fair biclique
/// enumeration. With params.theta > 0 it enumerates PSSFBCs.
EnumStats EnumerateSSFBC(const BipartiteGraph& g,
                         const FairBicliqueParams& params,
                         const EnumOptions& options, const BicliqueSink& sink);

/// FairBCEM++ (paper Alg. 6): maximal bicliques + combinatorial
/// enumeration. With params.theta > 0 this is FairBCEMPro++.
EnumStats EnumerateSSFBCPlusPlus(const BipartiteGraph& g,
                                 const FairBicliqueParams& params,
                                 const EnumOptions& options,
                                 const BicliqueSink& sink);

/// NSF baseline (§V-A): graph reduction kept, search pruning dropped.
EnumStats EnumerateSSFBCNaive(const BipartiteGraph& g,
                              const FairBicliqueParams& params,
                              const EnumOptions& options,
                              const BicliqueSink& sink);

/// BFairBCEM (paper Alg. 9). With params.theta > 0: proportion model.
EnumStats EnumerateBSFBC(const BipartiteGraph& g,
                         const FairBicliqueParams& params,
                         const EnumOptions& options, const BicliqueSink& sink);

/// BFairBCEM++ (paper §IV-C). With params.theta > 0 this is
/// BFairBCEMPro++.
EnumStats EnumerateBSFBCPlusPlus(const BipartiteGraph& g,
                                 const FairBicliqueParams& params,
                                 const EnumOptions& options,
                                 const BicliqueSink& sink);

/// BNSF baseline (§V-A).
EnumStats EnumerateBSFBCNaive(const BipartiteGraph& g,
                              const FairBicliqueParams& params,
                              const EnumOptions& options,
                              const BicliqueSink& sink);

/// Maximal biclique enumeration with the same pruning/compaction pipeline
/// (FCore reduction), used by the Fig. 6 count comparisons: emits maximal
/// bicliques with |L| >= min_upper and |R| >= min_lower_total.
EnumStats EnumerateMaximalBicliquesPruned(const BipartiteGraph& g,
                                          std::uint32_t min_upper,
                                          std::uint32_t min_lower_total,
                                          const EnumOptions& options,
                                          const BicliqueSink& sink);

/// Engine selector over the six entry points above, shared by the CLI,
/// the query service and ad-hoc drivers.
enum class FairAlgo {
  kPlusPlus,  ///< FairBCEM++ / BFairBCEM++ (paper default).
  kBcem,      ///< FairBCEM / BFairBCEM.
  kNaive,     ///< NSF / BNSF baselines.
};

/// Single (model, algo) dispatch: exactly equivalent to calling the
/// matching Enumerate* entry point. The proportional variants remain
/// selected by params.theta > 0, as everywhere else.
EnumStats RunEnumeration(const BipartiteGraph& g, FairModel model,
                         FairAlgo algo, const FairBicliqueParams& params,
                         const EnumOptions& options, const BicliqueSink& sink);

/// Ablation hook: FairBCEM with explicit search-pruning switches.
EnumStats EnumerateSSFBCWithSearchOptions(const BipartiteGraph& g,
                                          const FairBicliqueParams& params,
                                          const EnumOptions& options,
                                          const FairBcemSearchOptions& search,
                                          const BicliqueSink& sink);

}  // namespace fairbc

#endif  // FAIRBC_CORE_PIPELINE_H_
