#ifndef FAIRBC_CORE_MAX_SEARCH_H_
#define FAIRBC_CORE_MAX_SEARCH_H_

#include <cstdint>
#include <vector>

#include "core/enumerate.h"
#include "graph/bipartite_graph.h"

namespace fairbc {

/// Objective for maximum / top-k fair biclique search. The paper's
/// related work studies maximum (balanced) biclique search; this module
/// is the natural fairness-aware analogue, answering "what is the
/// largest fair community?" instead of enumerating all of them.
enum class BicliqueObjective {
  kEdges,     ///< maximize |L| * |R| (edge count of the biclique).
  kVertices,  ///< maximize |L| + |R|.
};

std::uint64_t ObjectiveValue(const Biclique& b, BicliqueObjective objective);

struct MaxSearchResult {
  /// Best bicliques found, best first; empty when none exists. Ties are
  /// broken deterministically by the canonical biclique order.
  std::vector<Biclique> best;
  EnumStats stats;
};

/// Exact top-k single-side fair biclique search (k >= 1): runs the
/// FairBCEM++ pipeline and keeps the k best results under `objective`.
/// With params.theta > 0 it searches proportional fair bicliques.
MaxSearchResult TopKSSFBC(const BipartiteGraph& g,
                          const FairBicliqueParams& params,
                          const EnumOptions& options, std::uint32_t k,
                          BicliqueObjective objective);

/// Exact top-k bi-side fair biclique search.
MaxSearchResult TopKBSFBC(const BipartiteGraph& g,
                          const FairBicliqueParams& params,
                          const EnumOptions& options, std::uint32_t k,
                          BicliqueObjective objective);

}  // namespace fairbc

#endif  // FAIRBC_CORE_MAX_SEARCH_H_
