#ifndef FAIRBC_CORE_INTERSECT_H_
#define FAIRBC_CORE_INTERSECT_H_

#include <span>
#include <vector>

#include "common/types.h"

namespace fairbc {

/// Size of the intersection of two ascending-sorted id sequences.
inline std::uint32_t IntersectSize(std::span<const VertexId> a,
                                   std::span<const VertexId> b) {
  std::uint32_t count = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

/// Intersection of two ascending-sorted id sequences (sorted output).
inline std::vector<VertexId> Intersect(std::span<const VertexId> a,
                                       std::span<const VertexId> b) {
  std::vector<VertexId> out;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      out.push_back(a[i]);
      ++i;
      ++j;
    }
  }
  return out;
}

}  // namespace fairbc

#endif  // FAIRBC_CORE_INTERSECT_H_
