#ifndef FAIRBC_CORE_INTERSECT_H_
#define FAIRBC_CORE_INTERSECT_H_

#include <algorithm>
#include <span>
#include <vector>

#include "common/types.h"
#include "core/kernels.h"

namespace fairbc {

// Compatibility shim: the scalar helpers that used to live here are now
// the adaptive kernels in core/kernels.h (IntersectSize comes from that
// header). Engine code calls the kernels directly with arena-backed
// destination buffers; this convenience wrapper remains for callers that
// genuinely need an owning vector.

/// Intersection of two ascending-sorted id sequences (sorted output).
inline std::vector<VertexId> Intersect(std::span<const VertexId> a,
                                       std::span<const VertexId> b) {
  std::vector<VertexId> out(std::min(a.size(), b.size()));
  out.resize(IntersectInto(out.data(), a, b));
  return out;
}

}  // namespace fairbc

#endif  // FAIRBC_CORE_INTERSECT_H_
