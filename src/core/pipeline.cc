#include "core/pipeline.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/timer.h"
#include "core/bfair_bcem.h"
#include "core/cfcore.h"
#include "core/fair_bcem.h"
#include "core/fair_bcem_pp.h"
#include "core/fcore.h"
#include "core/mbea.h"
#include "core/parallel.h"
#include "core/reduction_context.h"
#include "obs/trace.h"

namespace fairbc {

namespace {

PruneResult RunPruning(const BipartiteGraph& g, const FairBicliqueParams& p,
                       PruningLevel level, bool bi_side, unsigned num_threads,
                       TraceRecorder* trace, ReductionPhaseTimes* times) {
  // One ReductionContext serves the whole reduction: it owns the pool
  // (created only when num_threads > 1 — the num_threads == 1 contract is
  // the exact serial front-end), the per-worker construction scratch, and
  // the per-phase construct/color/peel timers.
  ReductionContext ctx(level != PruningLevel::kNone ? num_threads : 1);
  ctx.set_trace(trace);

  PruneResult result;
  switch (level) {
    case PruningLevel::kNone:
      result.masks.upper_alive.assign(g.NumUpper(), 1);
      result.masks.lower_alive.assign(g.NumLower(), 1);
      break;
    case PruningLevel::kCore:
      result.masks = bi_side ? BFCore(g, p.alpha, p.beta, &ctx)
                             : FCore(g, p.alpha, p.beta, &ctx);
      break;
    case PruningLevel::kColorful:
      result = bi_side ? BCFCore(g, p.alpha, p.beta, &ctx)
                       : CFCore(g, p.alpha, p.beta, &ctx);
      break;
  }
  if (times != nullptr) *times = ctx.times();
  return result;
}

// Remaps a compact-graph biclique back to parent ids. Id maps are
// monotone (compaction preserves order), so sortedness is preserved.
BicliqueSink RemapSink(const IdMaps& maps, const BicliqueSink& sink) {
  return [&maps, &sink](const Biclique& b) {
    Biclique mapped;
    mapped.upper.reserve(b.upper.size());
    mapped.lower.reserve(b.lower.size());
    for (VertexId u : b.upper) mapped.upper.push_back(maps.upper_to_parent[u]);
    for (VertexId v : b.lower) mapped.lower.push_back(maps.lower_to_parent[v]);
    return sink(mapped);
  };
}

template <typename EngineFn>
EnumStats RunPipeline(const BipartiteGraph& g, const FairBicliqueParams& params,
                      const EnumOptions& options, bool bi_side,
                      const BicliqueSink& sink, EngineFn&& engine) {
  Timer prune_timer;
  TraceSpan reduce_span(options.trace, "reduce");
  ReductionPhaseTimes phase_times;
  PruneResult pruned =
      RunPruning(g, params, options.pruning, bi_side,
                 ResolveNumThreads(options.num_threads), options.trace,
                 &phase_times);
  IdMaps maps;
  BipartiteGraph sub = InducedSubgraph(g, pruned.masks, &maps);
  reduce_span.End();
  const double prune_seconds = prune_timer.ElapsedSeconds();

  Timer enum_timer;
  TraceSpan enum_span(options.trace, "enumerate");
  // The engines may emit from several workers at once; the caller's sink
  // is plain code, so serialize it before handing it down (threading
  // contract in core/enumerate.h). Remapping itself is pure and runs
  // concurrently in the workers.
  EnumStats stats;
  if (ResolveNumThreads(options.num_threads) > 1) {
    SerializingSink serializer(sink);
    BicliqueSink serialized = serializer.AsSink();
    BicliqueSink remapped = RemapSink(maps, serialized);
    stats = engine(sub, remapped);
  } else {
    BicliqueSink remapped = RemapSink(maps, sink);
    stats = engine(sub, remapped);
  }
  enum_span.End();
  stats.enum_seconds = enum_timer.ElapsedSeconds();
  stats.prune_seconds = prune_seconds;
  stats.prune_construct_seconds = phase_times.construct_seconds;
  stats.prune_color_seconds = phase_times.color_seconds;
  stats.prune_peel_seconds = phase_times.peel_seconds;
  stats.remaining_upper = static_cast<VertexId>(maps.upper_to_parent.size());
  stats.remaining_lower = static_cast<VertexId>(maps.lower_to_parent.size());
  stats.peak_struct_bytes += pruned.peak_struct_bytes;
  return stats;
}

}  // namespace

EnumStats EnumerateSSFBC(const BipartiteGraph& g,
                         const FairBicliqueParams& params,
                         const EnumOptions& options, const BicliqueSink& sink) {
  return RunPipeline(g, params, options, /*bi_side=*/false, sink,
                     [&](const BipartiteGraph& sub, const BicliqueSink& s) {
                       return FairBcemRun(sub, params, params.alpha, options,
                                          FairBcemSearchOptions{}, s);
                     });
}

EnumStats EnumerateSSFBCPlusPlus(const BipartiteGraph& g,
                                 const FairBicliqueParams& params,
                                 const EnumOptions& options,
                                 const BicliqueSink& sink) {
  return RunPipeline(g, params, options, /*bi_side=*/false, sink,
                     [&](const BipartiteGraph& sub, const BicliqueSink& s) {
                       return FairBcemPpRun(sub, params, params.alpha, options,
                                            s);
                     });
}

EnumStats EnumerateSSFBCNaive(const BipartiteGraph& g,
                              const FairBicliqueParams& params,
                              const EnumOptions& options,
                              const BicliqueSink& sink) {
  return RunPipeline(g, params, options, /*bi_side=*/false, sink,
                     [&](const BipartiteGraph& sub, const BicliqueSink& s) {
                       return FairBcemRun(sub, params, params.alpha, options,
                                          NaiveSearchOptions(), s);
                     });
}

EnumStats EnumerateSSFBCWithSearchOptions(const BipartiteGraph& g,
                                          const FairBicliqueParams& params,
                                          const EnumOptions& options,
                                          const FairBcemSearchOptions& search,
                                          const BicliqueSink& sink) {
  return RunPipeline(g, params, options, /*bi_side=*/false, sink,
                     [&](const BipartiteGraph& sub, const BicliqueSink& s) {
                       return FairBcemRun(sub, params, params.alpha, options,
                                          search, s);
                     });
}

EnumStats EnumerateBSFBC(const BipartiteGraph& g,
                         const FairBicliqueParams& params,
                         const EnumOptions& options, const BicliqueSink& sink) {
  return RunPipeline(g, params, options, /*bi_side=*/true, sink,
                     [&](const BipartiteGraph& sub, const BicliqueSink& s) {
                       return BFairBcemRun(sub, params, options,
                                           SsEngine::kFairBcem, s);
                     });
}

EnumStats EnumerateBSFBCPlusPlus(const BipartiteGraph& g,
                                 const FairBicliqueParams& params,
                                 const EnumOptions& options,
                                 const BicliqueSink& sink) {
  return RunPipeline(g, params, options, /*bi_side=*/true, sink,
                     [&](const BipartiteGraph& sub, const BicliqueSink& s) {
                       return BFairBcemRun(sub, params, options,
                                           SsEngine::kFairBcemPlusPlus, s);
                     });
}

EnumStats EnumerateBSFBCNaive(const BipartiteGraph& g,
                              const FairBicliqueParams& params,
                              const EnumOptions& options,
                              const BicliqueSink& sink) {
  return RunPipeline(g, params, options, /*bi_side=*/true, sink,
                     [&](const BipartiteGraph& sub, const BicliqueSink& s) {
                       return BFairBcemRun(sub, params, options,
                                           SsEngine::kNaive, s);
                     });
}

EnumStats EnumerateMaximalBicliquesPruned(const BipartiteGraph& g,
                                          std::uint32_t min_upper,
                                          std::uint32_t min_lower_total,
                                          const EnumOptions& options,
                                          const BicliqueSink& sink) {
  // Maximal bicliques with |L| >= alpha and |R| >= total have every lower
  // vertex with degree >= alpha, and (weaker than FCore's per-class bound)
  // upper vertices with degree >= total; we reduce with the plain
  // (alpha, total)-core, i.e. FCore with a single attribute class.
  Timer prune_timer;
  SideMasks masks;
  masks.upper_alive.assign(g.NumUpper(), 1);
  masks.lower_alive.assign(g.NumLower(), 1);
  const double prune_seconds = prune_timer.ElapsedSeconds();

  IdMaps maps;
  BipartiteGraph sub = InducedSubgraph(g, masks, &maps);
  SerializingSink serializer(sink);
  BicliqueSink serialized = serializer.AsSink();
  BicliqueSink remapped = RemapSink(
      maps, ResolveNumThreads(options.num_threads) > 1 ? serialized : sink);

  MbeaConfig config;
  config.min_upper = min_upper;
  config.min_lower_total = min_lower_total;
  config.min_lower_per_attr = 0;
  config.ordering = options.ordering;
  config.node_budget = options.node_budget;
  config.time_budget_seconds = options.time_budget_seconds;
  config.num_threads = options.num_threads;
  config.trace = options.trace;
  // Direct maximal-biclique emission: subtree shapes bound their results
  // exactly, so the prune bound flows through with no side caps.
  config.topk = options.topk;
  config.shared_budget = options.shared_budget;

  Timer enum_timer;
  TraceSpan enum_span(options.trace, "enumerate");
  EnumStats stats;
  std::atomic<std::uint64_t> num_results{0};
  MbeaStats mb = EnumerateMaximalBicliques(
      sub, config,
      [&](const std::vector<VertexId>& upper,
          const std::vector<VertexId>& lower) {
        Biclique b;
        b.upper = upper;
        b.lower = lower;
        num_results.fetch_add(1, std::memory_order_relaxed);
        return remapped(b);
      });
  enum_span.End();
  stats.num_results = num_results.load(std::memory_order_relaxed);
  stats.search_nodes = mb.search_nodes;
  stats.maximal_bicliques_visited = mb.emitted;
  stats.budget_exhausted = mb.budget_exhausted;
  stats.kernels = mb.kernels;
  stats.peak_struct_bytes =
      std::max(stats.peak_struct_bytes, mb.arena_high_water_bytes);
  stats.prune_seconds = prune_seconds;
  stats.enum_seconds = enum_timer.ElapsedSeconds();
  stats.remaining_upper = g.NumUpper();
  stats.remaining_lower = g.NumLower();
  return stats;
}

EnumStats RunEnumeration(const BipartiteGraph& g, FairModel model,
                         FairAlgo algo, const FairBicliqueParams& params,
                         const EnumOptions& options, const BicliqueSink& sink) {
  if (model == FairModel::kBsfbc) {
    switch (algo) {
      case FairAlgo::kBcem:
        return EnumerateBSFBC(g, params, options, sink);
      case FairAlgo::kNaive:
        return EnumerateBSFBCNaive(g, params, options, sink);
      case FairAlgo::kPlusPlus:
        break;
    }
    return EnumerateBSFBCPlusPlus(g, params, options, sink);
  }
  switch (algo) {
    case FairAlgo::kBcem:
      return EnumerateSSFBC(g, params, options, sink);
    case FairAlgo::kNaive:
      return EnumerateSSFBCNaive(g, params, options, sink);
    case FairAlgo::kPlusPlus:
      break;
  }
  return EnumerateSSFBCPlusPlus(g, params, options, sink);
}

}  // namespace fairbc
