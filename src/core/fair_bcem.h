#ifndef FAIRBC_CORE_FAIR_BCEM_H_
#define FAIRBC_CORE_FAIR_BCEM_H_

#include <cstdint>

#include "core/enumerate.h"
#include "graph/bipartite_graph.h"

namespace fairbc {

/// Search-pruning switches of the FairBCEM branch-and-bound (paper Alg. 5
/// Observations 2/4/5). Turning them all off yields the paper's NSF
/// baseline; individual switches feed the ablation bench.
struct FairBcemSearchOptions {
  /// Kill a branch when |L'| < alpha (Observation 5, first half).
  bool prune_small_l = true;
  /// Kill a subtree when every attribute class has an excluded vertex
  /// fully connected to L' (Observation 2).
  bool prune_excluded_full = true;
  /// Kill a branch when some class cannot reach beta from R' + P'
  /// (Observation 5, second half).
  bool prune_class_counts = true;
  /// Absorb the whole candidate set when it is fully connected and the
  /// union stays fair (Observation 4).
  bool absorb_full_candidates = true;
  /// Candidate filter threshold: keep v only if |N(v) ∩ L'| >= alpha.
  /// NSF relaxes this to 1 (a vertex with no common neighbor can never be
  /// in a biclique with nonempty L).
  bool filter_candidates_alpha = true;
};

inline FairBcemSearchOptions NaiveSearchOptions() {
  return FairBcemSearchOptions{false, false, false, false, false};
}

/// Core FairBCEM recursion (paper Alg. 5) on an already-pruned graph.
/// Emits every single-side fair biclique of `g` (lower side fair) whose
/// upper side has size >= min_upper, in `g`'s vertex ids. `min_upper`
/// is params.alpha for SSFBC; BFairBCEM passes a tighter bound.
/// Exposed for tests and for the bi-side engine; library users should go
/// through pipeline.h which wires in the graph reduction.
EnumStats FairBcemRun(const BipartiteGraph& g, const FairBicliqueParams& params,
                      std::uint32_t min_upper, const EnumOptions& options,
                      const FairBcemSearchOptions& search,
                      const BicliqueSink& sink);

}  // namespace fairbc

#endif  // FAIRBC_CORE_FAIR_BCEM_H_
