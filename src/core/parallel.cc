#include "core/parallel.h"

#include <algorithm>

#include "common/status.h"

namespace fairbc {

unsigned ResolveNumThreads(unsigned requested) {
  // Cap far above any sane oversubscription: protects against sign-cast
  // accidents (e.g. -1 becoming 4 billion workers) without judging
  // deliberate oversubscription.
  constexpr unsigned kMaxThreads = 1024;
  if (requested != 0) return std::min(requested, kMaxThreads);
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : std::min(hw, kMaxThreads);
}

ThreadPool::ThreadPool(unsigned num_threads) {
  FAIRBC_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::ParallelFor(
    std::uint64_t num_tasks,
    const std::function<void(std::uint64_t, unsigned)>& fn) {
  if (num_tasks == 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    FAIRBC_CHECK(outstanding_ == 0);
    // Deal tasks round-robin; stealing rebalances skewed subtrees. The
    // closures only reference `fn`, which outlives the batch: ParallelFor
    // returns after the last task destroyed its closure (WorkerLoop drops
    // the closure before posting completion).
    for (std::uint64_t t = 0; t < num_tasks; ++t) {
      Worker& w = *workers_[t % workers_.size()];
      std::lock_guard<std::mutex> wlock(w.mu);
      w.tasks.push_back([&fn, t](unsigned worker) { fn(t, worker); });
    }
    outstanding_ = num_tasks;
    queued_.fetch_add(static_cast<std::int64_t>(num_tasks),
                      std::memory_order_relaxed);
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

void ThreadPool::Submit(Task task) {
  const unsigned victim =
      static_cast<unsigned>(next_victim_.fetch_add(1, std::memory_order_relaxed) %
                            workers_.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Only valid mid-batch: the caller runs inside a task whose completion
    // has not been posted yet, so the batch cannot finish under us.
    FAIRBC_CHECK(outstanding_ > 0);
    ++outstanding_;
    {
      Worker& w = *workers_[victim];
      std::lock_guard<std::mutex> wlock(w.mu);
      w.tasks.push_back(std::move(task));
    }
    queued_.fetch_add(1, std::memory_order_relaxed);
  }
  work_cv_.notify_all();
}

bool ThreadPool::NextTask(unsigned index, Task* task) {
  {
    Worker& own = *workers_[index];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      *task = std::move(own.tasks.back());  // own work: newest first.
      own.tasks.pop_back();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  for (std::size_t step = 1; step < workers_.size(); ++step) {
    Worker& victim = *workers_[(index + step) % workers_.size()];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      *task = std::move(victim.tasks.front());  // stolen work: oldest first.
      victim.tasks.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(unsigned index) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        return stop_ || queued_.load(std::memory_order_relaxed) > 0;
      });
      if (stop_) return;
    }
    Task task;
    while (NextTask(index, &task)) {
      task(index);
      // Destroy the closure (it may reference the batch's fn or a split
      // batch) before posting completion: once outstanding_ hits zero
      // ParallelFor returns and those referents die.
      task = Task();
      std::unique_lock<std::mutex> lock(mu_);
      if (--outstanding_ == 0) {
        lock.unlock();
        done_cv_.notify_all();
      }
    }
  }
}

void MergeEnumStats(EnumStats& into, const EnumStats& worker) {
  into.num_results += worker.num_results;
  into.search_nodes += worker.search_nodes;
  into.maximal_bicliques_visited += worker.maximal_bicliques_visited;
  into.split_subtrees += worker.split_subtrees;
  into.prune_seconds += worker.prune_seconds;
  into.prune_construct_seconds += worker.prune_construct_seconds;
  into.prune_color_seconds += worker.prune_color_seconds;
  into.prune_peel_seconds += worker.prune_peel_seconds;
  into.enum_seconds += worker.enum_seconds;
  into.budget_exhausted = into.budget_exhausted || worker.budget_exhausted;
  into.remaining_upper = std::max(into.remaining_upper, worker.remaining_upper);
  into.remaining_lower = std::max(into.remaining_lower, worker.remaining_lower);
  into.peak_struct_bytes =
      std::max(into.peak_struct_bytes, worker.peak_struct_bytes);
  MergeKernelStats(into.kernels, worker.kernels);
}

}  // namespace fairbc
