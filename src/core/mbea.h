#ifndef FAIRBC_CORE_MBEA_H_
#define FAIRBC_CORE_MBEA_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/enumerate.h"
#include "graph/bipartite_graph.h"

namespace fairbc {

/// Receives one maximal biclique (both sides sorted ascending). Return
/// false to abort the enumeration. May be invoked concurrently from
/// worker threads when MbeaConfig::num_threads != 1 (same contract as the
/// engine-level BicliqueSink entry points, see core/enumerate.h).
using MaximalBicliqueSink =
    std::function<bool(const std::vector<VertexId>& upper,
                       const std::vector<VertexId>& lower)>;

/// Size thresholds and budgets for maximal biclique enumeration.
struct MbeaConfig {
  /// Branch-kill + emission threshold on |L| (>= 1 always enforced).
  std::uint32_t min_upper = 1;
  /// Emission threshold on |R| (prunes branches via |R|+|P|).
  std::uint32_t min_lower_total = 1;
  /// Per-lower-attribute-class threshold (the `R_a >= beta` guard of the
  /// FairBCEM++ substrate); prunes branches via per-class |R_a|+|P_a|.
  std::uint32_t min_lower_per_attr = 0;
  VertexOrdering ordering = VertexOrdering::kDegreeDesc;
  std::uint64_t node_budget = 0;       ///< 0 = unlimited search nodes.
  double time_budget_seconds = 0.0;    ///< 0 = unlimited wall clock.
  /// Root-branch fan-out workers (same semantics as
  /// EnumOptions::num_threads: 1 = exact serial traversal, 0 = all cores).
  unsigned num_threads = 1;
  /// Optional span recorder (EnumOptions::trace); root/split task spans.
  TraceRecorder* trace = nullptr;
  /// Optional top-k branch-and-bound prune state (EnumOptions::topk):
  /// subtrees whose (|L|, |R| + |P|) shape cannot reach the published
  /// k-th best are cut. Callers whose sink re-expands the upper side of
  /// emitted bicliques (the FairBCEM++ fair-subset pass) must install an
  /// upper cap on the bound first (TopKPruneBound::set_upper_cap).
  const TopKPruneBound* topk = nullptr;
  /// Optional caller-owned budget (EnumOptions::shared_budget contract).
  SearchBudget* shared_budget = nullptr;
};

struct MbeaStats {
  std::uint64_t search_nodes = 0;
  std::uint64_t emitted = 0;
  /// Subtrees handed back to the pool by depth-adaptive task splitting.
  std::uint64_t split_subtrees = 0;
  bool budget_exhausted = false;
  /// Intersection-kernel telemetry summed over the run's workers.
  KernelStats kernels;
  /// Largest per-worker recursion-arena high-water mark (bytes).
  std::size_t arena_high_water_bytes = 0;
};

/// iMBEA-style maximal biclique enumeration (the MBEA++ substrate of
/// paper Alg. 6): branch on one lower vertex at a time, absorb every
/// candidate fully connected to the shrunk L, and kill branches whose L
/// was already covered (an excluded vertex fully connected to L). Every
/// maximal biclique (L, R) of `g` with nonempty sides, |L| >= min_upper,
/// |R| >= min_lower_total and per-class sizes >= min_lower_per_attr is
/// emitted exactly once.
MbeaStats EnumerateMaximalBicliques(const BipartiteGraph& g,
                                    const MbeaConfig& config,
                                    const MaximalBicliqueSink& sink);

}  // namespace fairbc

#endif  // FAIRBC_CORE_MBEA_H_
