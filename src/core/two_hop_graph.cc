#include "core/two_hop_graph.h"

#include <algorithm>

#include "common/status.h"

namespace fairbc {

std::size_t UnipartiteGraph::NumEdges() const {
  std::size_t total = 0;
  for (const auto& nbrs : adj) total += nbrs.size();
  return total / 2;
}

std::size_t UnipartiteGraph::MemoryBytes() const {
  std::size_t bytes = attrs.size() * sizeof(AttrId);
  for (const auto& nbrs : adj) {
    bytes += nbrs.capacity() * sizeof(VertexId) + sizeof(nbrs);
  }
  return bytes;
}

namespace {

UnipartiteGraph ConstructImpl(const BipartiteGraph& g, Side fair_side,
                              std::uint32_t alpha, const SideMasks& masks,
                              bool per_attr) {
  const Side other = Opposite(fair_side);
  const VertexId n = g.NumVertices(fair_side);
  const AttrId other_attrs = g.NumAttrs(other);
  const auto& fair_alive =
      fair_side == Side::kLower ? masks.lower_alive : masks.upper_alive;
  const auto& other_alive =
      fair_side == Side::kLower ? masks.upper_alive : masks.lower_alive;
  FAIRBC_CHECK(fair_alive.size() == n);

  UnipartiteGraph h;
  h.adj.assign(n, {});
  h.attrs.resize(n);
  h.num_attrs = g.NumAttrs(fair_side);
  for (VertexId v = 0; v < n; ++v) h.attrs[v] = g.Attr(fair_side, v);

  // Counter sweep with a touched-list reset, per paper Algs. 3/8. For the
  // bi-side variant counts are kept per opposite-side attribute class.
  const std::size_t stride = per_attr ? other_attrs : 1;
  std::vector<std::uint32_t> counts(static_cast<std::size_t>(n) * stride, 0);
  std::vector<VertexId> touched;

  for (VertexId v = 0; v < n; ++v) {
    if (!fair_alive[v]) continue;
    touched.clear();
    for (VertexId u : g.Neighbors(fair_side, v)) {
      if (!other_alive[u]) continue;
      const std::size_t attr_off =
          per_attr ? g.Attr(other, u) : 0;
      for (VertexId w : g.Neighbors(other, u)) {
        if (w == v || !fair_alive[w]) continue;
        std::uint32_t& slot = counts[static_cast<std::size_t>(w) * stride +
                                     attr_off];
        if (slot == 0) {
          bool first_touch = true;
          if (per_attr) {
            first_touch = true;
            for (std::size_t a = 0; a < stride; ++a) {
              if (counts[static_cast<std::size_t>(w) * stride + a] != 0) {
                first_touch = false;
                break;
              }
            }
          }
          if (first_touch) touched.push_back(w);
        }
        ++slot;
      }
    }
    for (VertexId w : touched) {
      bool connect;
      if (!per_attr) {
        connect = counts[w] >= alpha;
      } else {
        connect = true;
        for (std::size_t a = 0; a < stride; ++a) {
          if (counts[static_cast<std::size_t>(w) * stride + a] < alpha) {
            connect = false;
            break;
          }
        }
      }
      // Paper adds each pair once via the `u < v` guard; we materialize
      // both directions for symmetric adjacency.
      if (connect && w < v) {
        h.adj[v].push_back(w);
        h.adj[w].push_back(v);
      }
      for (std::size_t a = 0; a < stride; ++a) {
        counts[static_cast<std::size_t>(w) * stride + a] = 0;
      }
    }
  }
  for (auto& nbrs : h.adj) std::sort(nbrs.begin(), nbrs.end());
  return h;
}

}  // namespace

UnipartiteGraph Construct2HopGraph(const BipartiteGraph& g, Side fair_side,
                                   std::uint32_t alpha,
                                   const SideMasks& masks) {
  return ConstructImpl(g, fair_side, alpha, masks, /*per_attr=*/false);
}

UnipartiteGraph BiConstruct2HopGraph(const BipartiteGraph& g, Side fair_side,
                                     std::uint32_t alpha,
                                     const SideMasks& masks) {
  return ConstructImpl(g, fair_side, alpha, masks, /*per_attr=*/true);
}

}  // namespace fairbc
