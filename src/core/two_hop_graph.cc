#include "core/two_hop_graph.h"

#include <algorithm>

#include "common/status.h"
#include "core/parallel.h"
#include "core/reduction_context.h"

namespace fairbc {

namespace {

/// Counter-sweep over one contiguous vertex shard `[begin, end)`: for
/// every alive `v` in the shard, count alive 2-hop paths into `counts`
/// (per opposite-attribute class when `per_attr`), then emit the sorted
/// satisfying neighbors into `out` and record `deg[v]`. First touches are
/// tracked with one flag byte per vertex (not by rescanning the count
/// slots), and both scratch arrays are returned all-zero.
void SweepShard(const BipartiteGraph& g, Side fair_side, std::uint32_t alpha,
                const std::vector<char>& fair_alive,
                const std::vector<char>& other_alive, bool per_attr,
                VertexId begin, VertexId end,
                std::vector<std::uint32_t>& counts, std::vector<char>& touched_flag,
                std::vector<VertexId>& out, std::vector<std::uint32_t>& deg) {
  const Side other = Opposite(fair_side);
  const std::size_t stride = per_attr ? g.NumAttrs(other) : 1;
  std::vector<VertexId> touched;
  // A vertex can touch every other fair-side vertex; sizing up front keeps
  // the inner loop free of growth reallocations (matches the other scratch
  // arrays, which are already O(n)).
  touched.reserve(touched_flag.size());

  for (VertexId v = begin; v < end; ++v) {
    if (!fair_alive[v]) continue;
    touched.clear();
    for (VertexId u : g.Neighbors(fair_side, v)) {
      if (!other_alive[u]) continue;
      const std::size_t attr_off = per_attr ? g.Attr(other, u) : 0;
      for (VertexId w : g.Neighbors(other, u)) {
        if (w == v || !fair_alive[w]) continue;
        if (!touched_flag[w]) {
          touched_flag[w] = 1;
          touched.push_back(w);
        }
        ++counts[static_cast<std::size_t>(w) * stride + attr_off];
      }
    }
    const std::size_t out_begin = out.size();
    for (VertexId w : touched) {
      bool connect;
      if (!per_attr) {
        connect = counts[w] >= alpha;
      } else {
        connect = true;
        for (std::size_t a = 0; a < stride; ++a) {
          if (counts[static_cast<std::size_t>(w) * stride + a] < alpha) {
            connect = false;
            break;
          }
        }
      }
      if (connect) out.push_back(w);
      for (std::size_t a = 0; a < stride; ++a) {
        counts[static_cast<std::size_t>(w) * stride + a] = 0;
      }
      touched_flag[w] = 0;
    }
    std::sort(out.begin() + out_begin, out.end());
    deg[v] = static_cast<std::uint32_t>(out.size() - out_begin);
  }
}

UnipartiteGraph ConstructImpl(const BipartiteGraph& g, Side fair_side,
                              std::uint32_t alpha, const SideMasks& masks,
                              bool per_attr, ReductionContext* ctx) {
  const Side other = Opposite(fair_side);
  const VertexId n = g.NumVertices(fair_side);
  const auto& fair_alive =
      fair_side == Side::kLower ? masks.lower_alive : masks.upper_alive;
  const auto& other_alive =
      fair_side == Side::kLower ? masks.upper_alive : masks.lower_alive;
  FAIRBC_CHECK(fair_alive.size() == n);

  UnipartiteGraph h;
  h.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  h.attrs.resize(n);
  h.num_attrs = g.NumAttrs(fair_side);
  for (VertexId v = 0; v < n; ++v) h.attrs[v] = g.Attr(fair_side, v);
  if (n == 0) return h;

  const std::size_t stride = per_attr ? g.NumAttrs(other) : 1;
  const std::size_t counts_size = static_cast<std::size_t>(n) * stride;

  // A null context runs the same code path through a local serial
  // context, so the scratch grow-and-zero contract lives in one place.
  ReductionContext serial_ctx;
  if (ctx == nullptr) ctx = &serial_ctx;
  ThreadPool* pool = ctx->pool();

  // Shard plan: contiguous vertex ranges, several shards per worker so
  // stealing can rebalance skewed degree distributions. The shard
  // boundaries do not affect the output — each vertex's neighbor list is
  // a pure function of (g, masks, alpha) — so the serial path is simply
  // the same shards swept in order by worker 0.
  const unsigned workers = pool != nullptr ? pool->num_threads() : 1;
  const VertexId shard_size = std::max<VertexId>(
      64, (n + workers * 8 - 1) / (workers * 8));
  const std::size_t num_shards = (n + shard_size - 1) / shard_size;

  std::vector<std::uint32_t> deg(n, 0);
  std::vector<std::vector<VertexId>> shard_nbrs(num_shards);

  auto sweep_one = [&](std::size_t shard, unsigned worker) {
    std::vector<std::uint32_t>& counts = ctx->CountScratch(worker, counts_size);
    std::vector<char>& flags = ctx->FlagScratch(worker, n);
    const VertexId begin = static_cast<VertexId>(shard * shard_size);
    const VertexId end = std::min<VertexId>(n, begin + shard_size);
    SweepShard(g, fair_side, alpha, fair_alive, other_alive, per_attr, begin,
               end, counts, flags, shard_nbrs[shard], deg);
  };
  if (pool != nullptr) {
    pool->ParallelFor(num_shards,
                      [&](std::uint64_t shard, unsigned worker) {
                        sweep_one(shard, worker);
                      });
  } else {
    for (std::size_t shard = 0; shard < num_shards; ++shard) {
      sweep_one(shard, 0);
    }
  }

  // Prefix-sum the per-vertex counts into the CSR offsets: one serial
  // scan over the (few) shard totals, then each shard fills its own
  // offset range in parallel.
  std::vector<EdgeIndex> shard_base(num_shards + 1, 0);
  for (std::size_t shard = 0; shard < num_shards; ++shard) {
    shard_base[shard + 1] = shard_base[shard] + shard_nbrs[shard].size();
  }
  auto fill_offsets = [&](std::size_t shard) {
    const VertexId begin = static_cast<VertexId>(shard * shard_size);
    const VertexId end = std::min<VertexId>(n, begin + shard_size);
    EdgeIndex off = shard_base[shard];
    for (VertexId v = begin; v < end; ++v) {
      off += deg[v];
      h.offsets[v + 1] = off;
    }
  };
  h.neighbors.resize(shard_base[num_shards]);
  auto scatter = [&](std::size_t shard) {
    fill_offsets(shard);
    std::copy(shard_nbrs[shard].begin(), shard_nbrs[shard].end(),
              h.neighbors.begin() + shard_base[shard]);
  };
  if (pool != nullptr) {
    pool->ParallelFor(num_shards, [&](std::uint64_t shard, unsigned) {
      scatter(shard);
    });
  } else {
    for (std::size_t shard = 0; shard < num_shards; ++shard) scatter(shard);
  }
  return h;
}

}  // namespace

UnipartiteGraph Construct2HopGraph(const BipartiteGraph& g, Side fair_side,
                                   std::uint32_t alpha, const SideMasks& masks,
                                   ReductionContext* ctx) {
  return ConstructImpl(g, fair_side, alpha, masks, /*per_attr=*/false, ctx);
}

UnipartiteGraph BiConstruct2HopGraph(const BipartiteGraph& g, Side fair_side,
                                     std::uint32_t alpha,
                                     const SideMasks& masks,
                                     ReductionContext* ctx) {
  return ConstructImpl(g, fair_side, alpha, masks, /*per_attr=*/true, ctx);
}

}  // namespace fairbc
