#include "core/search_context.h"

#include "core/intersect.h"

namespace fairbc {

void FilterCandidates(const BipartiteGraph& g, Side side,
                      std::span<const VertexId> candidates,
                      const std::vector<VertexId>& big_l,
                      std::uint32_t keep_threshold, std::vector<VertexId>* kept,
                      std::vector<VertexId>* full) {
  for (VertexId v : candidates) {
    std::uint32_t c = IntersectSize(g.Neighbors(side, v), big_l);
    if (c == big_l.size()) full->push_back(v);
    if (c >= keep_threshold) kept->push_back(v);
  }
}

std::vector<VertexId> AllVertices(const BipartiteGraph& g, Side side) {
  std::vector<VertexId> all(g.NumVertices(side));
  for (VertexId v = 0; v < all.size(); ++v) all[v] = v;
  return all;
}

}  // namespace fairbc
