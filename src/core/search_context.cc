#include "core/search_context.h"

#include "core/intersect.h"

namespace fairbc {

std::vector<VertexId> SubtreeBatch::ExclusionFor(std::size_t i) const {
  std::vector<VertexId> exclusion;
  exclusion.reserve(q.size() + i);
  exclusion.insert(exclusion.end(), q.begin(), q.end());
  exclusion.insert(exclusion.end(), p.begin(), p.begin() + i);
  return exclusion;
}

void FilterCandidates(const BipartiteGraph& g, Side side,
                      std::span<const VertexId> candidates,
                      std::span<const VertexId> big_l,
                      const BitsetView& big_l_bits,
                      std::uint32_t keep_threshold, IdVec* kept, IdVec* full,
                      KernelStats* stats) {
  for (VertexId v : candidates) {
    std::uint32_t c = big_l_bits.CountHits(g.Neighbors(side, v), stats);
    if (c == big_l.size()) full->push_back(v);
    if (c >= keep_threshold) kept->push_back(v);
  }
}

std::vector<VertexId> AllVertices(const BipartiteGraph& g, Side side) {
  std::vector<VertexId> all(g.NumVertices(side));
  for (VertexId v = 0; v < all.size(); ++v) all[v] = v;
  return all;
}

}  // namespace fairbc
