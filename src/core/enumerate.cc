#include "core/enumerate.h"

#include <sstream>

namespace fairbc {

std::uint64_t RankValue(std::uint64_t upper_size, std::uint64_t lower_size,
                        TopKRank rank) {
  switch (rank) {
    case TopKRank::kWeight:
      return upper_size * lower_size;
    case TopKRank::kSize:
      return upper_size + lower_size;
    case TopKRank::kBalance:
      return upper_size < lower_size ? upper_size : lower_size;
  }
  return 0;
}

std::string Biclique::DebugString() const {
  std::ostringstream os;
  os << "U{";
  for (std::size_t i = 0; i < upper.size(); ++i) {
    os << (i > 0 ? "," : "") << upper[i];
  }
  os << "} V{";
  for (std::size_t i = 0; i < lower.size(); ++i) {
    os << (i > 0 ? "," : "") << lower[i];
  }
  os << "}";
  return os.str();
}

std::string EnumStats::DebugString() const {
  std::ostringstream os;
  os << "results=" << num_results << " nodes=" << search_nodes
     << " mbc=" << maximal_bicliques_visited << " splits=" << split_subtrees
     << " prune_s=" << prune_seconds << " (construct=" << prune_construct_seconds
     << " color=" << prune_color_seconds << " peel=" << prune_peel_seconds
     << ")"
     << " enum_s=" << enum_seconds << " remaining=(" << remaining_upper << ","
     << remaining_lower << ")"
     << " kern=" << kernels.calls << "/" << kernels.steps
     << " (merge=" << kernels.merge << " gallop=" << kernels.gallop
     << " bitset=" << kernels.bitset << ")"
     << (budget_exhausted ? " BUDGET_EXHAUSTED" : "");
  return os.str();
}

}  // namespace fairbc
