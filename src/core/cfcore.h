#ifndef FAIRBC_CORE_CFCORE_H_
#define FAIRBC_CORE_CFCORE_H_

#include <cstdint>

#include "core/coloring.h"
#include "core/two_hop_graph.h"
#include "graph/bipartite_graph.h"

namespace fairbc {

class ReductionContext;

/// Result of a graph-reduction run (CFCore / BCFCore).
struct PruneResult {
  SideMasks masks;
  /// Peak bytes of pruning-owned structures (2-hop graph + color
  /// multiplicity matrices); reported by the Fig. 8 memory experiment.
  std::size_t peak_struct_bytes = 0;
};

/// Peels `h` (restricted to `alive`) down to its ego colorful k-core
/// (Def. 10): every surviving vertex keeps ego colorful degree >= k for
/// every attribute class. Updates `alive` in place. `meter_bytes`, if
/// non-null, accumulates the peak size of the color multiplicity matrices.
/// With a context carrying a pool the peel runs frontier-based
/// bulk-synchronous rounds with atomic multiplicity counters; the
/// surviving set is identical to the serial peel (the ego colorful core
/// is a unique fixpoint).
void EgoColorfulCorePeel(const UnipartiteGraph& h, const Coloring& coloring,
                         std::uint32_t k, std::vector<char>& alive,
                         std::size_t* meter_bytes,
                         ReductionContext* ctx = nullptr);

/// Colorful fair α-β core pruning (paper Alg. 2, CFCore): FCore, then the
/// 2-hop graph on the fair (lower) side, degree pruning, coloring, ego
/// colorful β-core, and a final FCore pass. Lossless for SSFBC
/// enumeration (Lemma 2).
///
/// `ctx` carries the ThreadPool (nullptr or a serial context = the exact
/// serial path: serial sweeps, GreedyColor, serial peel), the per-worker
/// construction scratch, and the per-phase construct/color/peel timers.
/// With a pool the front-end runs sharded parallel 2-hop construction and
/// Jones–Plassmann coloring; both are byte-identical to the serial
/// kernels, so the returned masks match at every thread count.
PruneResult CFCore(const BipartiteGraph& g, std::uint32_t alpha,
                   std::uint32_t beta, ReductionContext* ctx = nullptr);

/// Bi-side variant (paper §IV-A, BCFCore): BFCore, then colorful pruning
/// on *both* sides using BiConstruct2HopGraph, and a final BFCore pass.
/// Lossless for BSFBC enumeration. Same context contract as CFCore.
PruneResult BCFCore(const BipartiteGraph& g, std::uint32_t alpha,
                    std::uint32_t beta, ReductionContext* ctx = nullptr);

}  // namespace fairbc

#endif  // FAIRBC_CORE_CFCORE_H_
