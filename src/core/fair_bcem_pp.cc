#include "core/fair_bcem_pp.h"

#include <algorithm>
#include <atomic>

#include "common/timer.h"
#include "core/intersect.h"
#include "core/mbea.h"
#include "fairness/combination.h"
#include "fairness/fair_set.h"

namespace fairbc {

namespace {

// Common neighborhood (on the upper side) of a lower vertex set. The
// running intersection shrinks monotonically, so two ping-pong buffers
// sized to the first neighbor list cover the whole fold — no per-step
// reallocation.
std::vector<VertexId> CommonUpperNeighborhood(const BipartiteGraph& g,
                                              std::span<const VertexId> lower) {
  FAIRBC_CHECK(!lower.empty());
  auto first = g.Neighbors(Side::kLower, lower[0]);
  std::vector<VertexId> common(first.begin(), first.end());
  if (lower.size() == 1) return common;
  std::vector<VertexId> tmp(common.size());
  for (std::size_t i = 1; i < lower.size() && !common.empty(); ++i) {
    tmp.resize(
        IntersectInto(tmp.data(), common, g.Neighbors(Side::kLower, lower[i])));
    common.swap(tmp);
  }
  return common;
}

}  // namespace

EnumStats FairBcemPpRun(const BipartiteGraph& g,
                        const FairBicliqueParams& params,
                        std::uint32_t min_upper, const EnumOptions& options,
                        const BicliqueSink& sink) {
  EnumStats stats;
  if (g.NumUpper() == 0 || g.NumLower() == 0) return stats;
  const FairnessSpec spec = params.LowerSpec();
  const AttrId num_attrs = g.NumAttrs(Side::kLower);

  MbeaConfig config;
  config.min_upper = std::max(min_upper, 1u);
  config.min_lower_per_attr = params.beta;
  config.min_lower_total =
      std::max<std::uint32_t>(1u, params.beta * num_attrs);
  config.ordering = options.ordering;
  config.node_budget = options.node_budget;
  config.time_budget_seconds = options.time_budget_seconds;
  config.num_threads = options.num_threads;
  config.trace = options.trace;
  config.shared_budget = options.shared_budget;
  if (options.topk != nullptr) {
    // The fair-subset pass regrows each subset's upper side to its common
    // neighborhood, which can exceed the substrate biclique's |L| — only
    // the whole upper side of the (already reduced) graph bounds it.
    options.topk->set_upper_cap(
        static_cast<std::uint32_t>(g.NumVertices(Side::kUpper)));
    config.topk = options.topk;
  }

  // The substrate may deliver maximal bicliques from several workers at
  // once (config.num_threads != 1), so everything the per-biclique
  // post-processing shares is atomic; `sink` follows the engine-level
  // threading contract (core/enumerate.h).
  Deadline deadline(options.time_budget_seconds);
  std::atomic<bool> aborted{false};
  std::atomic<bool> subset_budget_exhausted{false};
  std::atomic<std::uint64_t> num_results{0};
  std::atomic<std::uint64_t> visited{0};

  auto emit = [&](const std::vector<VertexId>& upper,
                  std::vector<VertexId> lower) {
    Biclique b;
    b.upper = upper;
    b.lower = std::move(lower);
    num_results.fetch_add(1, std::memory_order_relaxed);
    if (!sink(b)) aborted.store(true, std::memory_order_relaxed);
    return !aborted.load(std::memory_order_relaxed);
  };

  MaximalBicliqueSink mb_sink = [&](const std::vector<VertexId>& upper,
                                    const std::vector<VertexId>& lower) {
    visited.fetch_add(1, std::memory_order_relaxed);
    SizeVector sizes = AttrSizes(g, Side::kLower, lower);
    if (IsFeasibleVector(sizes, spec)) {
      // A fair closure is its own unique maximal fair subset and its
      // common neighborhood is exactly `upper` (closure property), so
      // (upper, lower) is a single-side fair biclique directly.
      return emit(upper, lower);
    }
    // Paper Alg. 6 lines 25-28: enumerate the maximal fair subsets of R
    // and keep those whose common neighborhood is exactly L.
    EnumerateMaximalFairSubsets(
        g, Side::kLower, lower, spec, [&](std::span<const VertexId> subset) {
          if (deadline.Expired()) {
            subset_budget_exhausted.store(true, std::memory_order_relaxed);
            return false;
          }
          if (subset.empty()) return true;
          std::vector<VertexId> common = CommonUpperNeighborhood(g, subset);
          if (common.size() == upper.size()) {
            // N∩(subset) ⊇ upper always; equal size means equality, so
            // `upper` really is the full common neighborhood.
            return emit(common, std::vector<VertexId>(subset.begin(),
                                                      subset.end()));
          }
          return true;
        });
    return !aborted.load(std::memory_order_relaxed) &&
           !subset_budget_exhausted.load(std::memory_order_relaxed);
  };

  MbeaStats mb_stats = EnumerateMaximalBicliques(g, config, mb_sink);
  stats.num_results = num_results.load(std::memory_order_relaxed);
  stats.maximal_bicliques_visited = visited.load(std::memory_order_relaxed);
  stats.search_nodes = mb_stats.search_nodes;
  stats.split_subtrees = mb_stats.split_subtrees;
  stats.kernels = mb_stats.kernels;
  stats.peak_struct_bytes =
      std::max(stats.peak_struct_bytes, mb_stats.arena_high_water_bytes);
  stats.budget_exhausted =
      subset_budget_exhausted.load(std::memory_order_relaxed) ||
      mb_stats.budget_exhausted;
  stats.remaining_upper = g.NumUpper();
  stats.remaining_lower = g.NumLower();
  return stats;
}

}  // namespace fairbc
