#include "core/bruteforce.h"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "common/status.h"
#include "fairness/fair_vector.h"

namespace fairbc {

namespace {

using Mask = std::uint32_t;

constexpr VertexId kMaxSide = 24;

// Adjacency bitmaps: for each lower v, the mask of adjacent uppers; and
// vice versa.
struct BitGraph {
  std::vector<Mask> lower_to_upper;
  std::vector<Mask> upper_to_lower;
  std::vector<AttrId> upper_attr;
  std::vector<AttrId> lower_attr;
  AttrId num_upper_attrs;
  AttrId num_lower_attrs;
};

BitGraph ToBits(const BipartiteGraph& g) {
  FAIRBC_CHECK(g.NumUpper() <= kMaxSide && g.NumLower() <= kMaxSide);
  BitGraph b;
  b.lower_to_upper.assign(g.NumLower(), 0);
  b.upper_to_lower.assign(g.NumUpper(), 0);
  b.num_upper_attrs = g.NumAttrs(Side::kUpper);
  b.num_lower_attrs = g.NumAttrs(Side::kLower);
  b.upper_attr.resize(g.NumUpper());
  b.lower_attr.resize(g.NumLower());
  for (VertexId u = 0; u < g.NumUpper(); ++u) {
    b.upper_attr[u] = g.Attr(Side::kUpper, u);
    for (VertexId v : g.Neighbors(Side::kUpper, u)) {
      b.upper_to_lower[u] |= Mask{1} << v;
      b.lower_to_upper[v] |= Mask{1} << u;
    }
  }
  for (VertexId v = 0; v < g.NumLower(); ++v) {
    b.lower_attr[v] = g.Attr(Side::kLower, v);
  }
  return b;
}

SizeVector MaskSizes(Mask m, const std::vector<AttrId>& attrs,
                     AttrId num_attrs) {
  SizeVector sizes(num_attrs, 0);
  while (m != 0) {
    int v = std::countr_zero(m);
    m &= m - 1;
    ++sizes[attrs[v]];
  }
  return sizes;
}

std::vector<VertexId> MaskToVector(Mask m) {
  std::vector<VertexId> out;
  while (m != 0) {
    out.push_back(static_cast<VertexId>(std::countr_zero(m)));
    m &= m - 1;
  }
  return out;
}

// Common upper neighborhood of the lower set `y`.
Mask CommonUpper(const BitGraph& b, Mask y, Mask all_upper) {
  Mask common = all_upper;
  Mask rest = y;
  while (rest != 0) {
    int v = std::countr_zero(rest);
    rest &= rest - 1;
    common &= b.lower_to_upper[v];
  }
  return common;
}

Mask CommonLower(const BitGraph& b, Mask x, Mask all_lower) {
  Mask common = all_lower;
  Mask rest = x;
  while (rest != 0) {
    int u = std::countr_zero(rest);
    rest &= rest - 1;
    common &= b.upper_to_lower[u];
  }
  return common;
}

struct MaskPair {
  Mask upper;
  Mask lower;
  bool operator==(const MaskPair&) const = default;
};

// Keeps only pairs not strictly contained in another pair.
std::vector<MaskPair> FilterMaximal(std::vector<MaskPair> candidates) {
  std::vector<MaskPair> maximal;
  for (const auto& a : candidates) {
    bool contained = false;
    for (const auto& b : candidates) {
      if (a == b) continue;
      if ((a.upper & b.upper) == a.upper && (a.lower & b.lower) == a.lower) {
        contained = true;
        break;
      }
    }
    if (!contained) maximal.push_back(a);
  }
  return maximal;
}

std::vector<Biclique> ToBicliques(const std::vector<MaskPair>& pairs) {
  std::vector<Biclique> out;
  out.reserve(pairs.size());
  for (const auto& p : pairs) {
    Biclique b;
    b.upper = MaskToVector(p.upper);
    b.lower = MaskToVector(p.lower);
    out.push_back(std::move(b));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

std::vector<Biclique> BruteForceMaximalBicliques(
    const BipartiteGraph& g, std::uint32_t min_upper,
    std::uint32_t min_lower_total, std::uint32_t min_lower_per_attr) {
  BitGraph b = ToBits(g);
  const Mask all_upper = g.NumUpper() >= 32
                             ? ~Mask{0}
                             : (Mask{1} << g.NumUpper()) - 1;
  std::vector<MaskPair> maximal;
  for (Mask y = 1; y < (Mask{1} << g.NumLower()); ++y) {
    Mask x = CommonUpper(b, y, all_upper);
    if (x == 0) continue;
    // Maximal iff y is exactly the common lower neighborhood of x.
    Mask closure = CommonLower(b, x, (Mask{1} << g.NumLower()) - 1);
    if (closure != y) continue;
    maximal.push_back({x, y});
  }
  // Apply size filters.
  std::vector<MaskPair> filtered;
  for (const auto& p : maximal) {
    if (std::popcount(p.upper) < static_cast<int>(std::max(min_upper, 1u))) {
      continue;
    }
    if (std::popcount(p.lower) <
        static_cast<int>(std::max(min_lower_total, 1u))) {
      continue;
    }
    if (min_lower_per_attr > 0) {
      SizeVector sizes = MaskSizes(p.lower, b.lower_attr, b.num_lower_attrs);
      bool ok = true;
      for (auto s : sizes) {
        if (s < min_lower_per_attr) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
    }
    filtered.push_back(p);
  }
  return ToBicliques(filtered);
}

std::vector<Biclique> BruteForceSSFBC(const BipartiteGraph& g,
                                      const FairBicliqueParams& params) {
  BitGraph b = ToBits(g);
  const FairnessSpec spec{params.beta, params.delta, params.theta};
  const Mask all_upper = (Mask{1} << g.NumUpper()) - 1;
  // Candidates: (N∩(Y), Y) for every fair nonempty Y with |N∩(Y)| >= alpha.
  // Any satisfying biclique (X, Y) has X ⊆ N∩(Y), so it is contained in
  // its candidate; maximality therefore only needs the candidate set.
  std::vector<MaskPair> candidates;
  for (Mask y = 1; y < (Mask{1} << g.NumLower()); ++y) {
    SizeVector sizes = MaskSizes(y, b.lower_attr, b.num_lower_attrs);
    if (!IsFeasibleVector(sizes, spec)) continue;
    Mask x = CommonUpper(b, y, all_upper);
    if (x == 0) continue;
    if (std::popcount(x) < static_cast<int>(params.alpha)) continue;
    candidates.push_back({x, y});
  }
  return ToBicliques(FilterMaximal(std::move(candidates)));
}

std::vector<Biclique> BruteForceBSFBC(const BipartiteGraph& g,
                                      const FairBicliqueParams& params) {
  BitGraph b = ToBits(g);
  const FairnessSpec lower_spec{params.beta, params.delta, params.theta};
  const FairnessSpec upper_spec{params.alpha, params.delta, params.theta};
  const Mask all_upper = (Mask{1} << g.NumUpper()) - 1;
  std::vector<MaskPair> candidates;
  for (Mask y = 1; y < (Mask{1} << g.NumLower()); ++y) {
    SizeVector lower_sizes = MaskSizes(y, b.lower_attr, b.num_lower_attrs);
    if (!IsFeasibleVector(lower_sizes, lower_spec)) continue;
    Mask hood = CommonUpper(b, y, all_upper);
    if (hood == 0) continue;
    // Every nonempty fair X ⊆ hood yields a satisfying biclique (X, Y).
    for (Mask x = hood;; x = (x - 1) & hood) {
      if (x != 0) {
        SizeVector upper_sizes = MaskSizes(x, b.upper_attr, b.num_upper_attrs);
        if (IsFeasibleVector(upper_sizes, upper_spec)) {
          candidates.push_back({x, y});
        }
      }
      if (x == 0) break;
    }
  }
  return ToBicliques(FilterMaximal(std::move(candidates)));
}

}  // namespace fairbc
