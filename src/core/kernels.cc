#include "core/kernels.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace fairbc {

void MergeKernelStats(KernelStats& into, const KernelStats& worker) {
  into.calls += worker.calls;
  into.steps += worker.steps;
  into.merge += worker.merge;
  into.gallop += worker.gallop;
  into.bitset += worker.bitset;
}

std::uint64_t* ScratchArena::AllocWords(std::size_t n) {
  // Find (or create) a chunk with room; chunks in between are skipped but
  // stay claimed until the covering mark rewinds, preserving live blocks.
  while (true) {
    if (chunk_ == chunks_.size()) {
      std::size_t size = chunks_.empty() ? kFirstChunkWords
                                         : chunks_.back().size * 2;
      size = std::max(size, n);
      chunks_.push_back({std::make_unique<std::uint64_t[]>(size), size});
      total_words_ += size;
    }
    Chunk& c = chunks_[chunk_];
    if (c.size - used_ >= n) {
      std::uint64_t* p = c.words.get() + used_;
      used_ += n;
      return p;
    }
    ++chunk_;
    used_ = 0;
  }
}

namespace {

// Branchless scalar merge: one iteration per element consumed, advance
// decisions computed as data moves (no hard-to-predict taken/not-taken
// pattern on random inputs). The unconditional dst write is safe: the
// write index k only advances on a match, and k == min(|a|,|b|) implies
// the smaller side is exhausted, so k < min(|a|,|b|) at every write.
std::size_t MergeInto(VertexId* dst, std::span<const VertexId> a,
                      std::span<const VertexId> b, std::uint64_t* steps) {
  std::size_t i = 0, j = 0, k = 0;
  const std::size_t na = a.size(), nb = b.size();
  std::uint64_t iters = 0;
  while (i < na && j < nb) {
    const VertexId x = a[i];
    const VertexId y = b[j];
    dst[k] = x;
    k += (x == y);
    i += (x <= y);
    j += (x >= y);
    ++iters;
  }
  if (steps != nullptr) *steps += iters;
  return k;
}

std::size_t MergeSize(std::span<const VertexId> a, std::span<const VertexId> b,
                      std::uint64_t* steps) {
  std::size_t i = 0, j = 0, k = 0;
  const std::size_t na = a.size(), nb = b.size();
  std::uint64_t iters = 0;
  while (i < na && j < nb) {
    const VertexId x = a[i];
    const VertexId y = b[j];
    k += (x == y);
    i += (x <= y);
    j += (x >= y);
    ++iters;
  }
  if (steps != nullptr) *steps += iters;
  return k;
}

// Galloping lower bound: doubles the probe distance from `from` until the
// value at the probe is >= x, then binary-searches the bracketed range.
// O(log gap) per lookup, so intersecting a small set against a huge one
// costs |small| * log(|large|) instead of |small| + |large|.
std::size_t GallopLowerBound(std::span<const VertexId> v, std::size_t from,
                             VertexId x, std::uint64_t* steps) {
  std::size_t lo = from;
  std::size_t hi = from;
  std::size_t step = 1;
  std::uint64_t probes = 0;
  while (hi < v.size() && v[hi] < x) {
    lo = hi + 1;
    hi += step;
    step *= 2;
    ++probes;
  }
  hi = std::min(hi, v.size());
  // Invariant: v[lo-1] < x (or lo == from), v[hi] >= x (or hi == size).
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    ++probes;
    if (v[mid] < x) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (steps != nullptr) *steps += probes;
  return lo;
}

template <bool kEmit>
std::size_t GallopImpl(VertexId* dst, std::span<const VertexId> a,
                       std::span<const VertexId> b, std::uint64_t* steps) {
  // Probe the smaller sequence into the larger one.
  std::span<const VertexId> small = a.size() <= b.size() ? a : b;
  std::span<const VertexId> large = a.size() <= b.size() ? b : a;
  std::size_t pos = 0;
  std::size_t k = 0;
  for (const VertexId x : small) {
    pos = GallopLowerBound(large, pos, x, steps);
    if (pos == large.size()) break;
    if (large[pos] == x) {
      if constexpr (kEmit) dst[k] = x;
      ++k;
      ++pos;
    }
  }
  return k;
}

struct PackedWindow {
  const std::uint64_t* words = nullptr;
  VertexId lo = 0;
  std::size_t nwords = 0;
};

// Packs the slice of `ids` falling into [lo, hi] as set bits over `lo`.
// The per-word bits are accumulated in a register (sorted input makes the
// word index non-decreasing), so packing dense runs does not serialize on
// store-to-load forwarding through the same word.
PackedWindow Pack(ScratchArena& arena, std::span<const VertexId> ids,
                  VertexId lo, VertexId hi, std::uint64_t* steps) {
  PackedWindow w;
  w.lo = lo;
  w.nwords = (static_cast<std::uint64_t>(hi) - lo) / 64 + 1;
  std::uint64_t* words = arena.AllocWords(w.nwords);
  std::memset(words, 0, w.nwords * sizeof(std::uint64_t));
  const VertexId* first =
      std::lower_bound(ids.data(), ids.data() + ids.size(), lo);
  const VertexId* last =
      std::upper_bound(first, ids.data() + ids.size(), hi);
  std::uint64_t acc = 0;
  std::uint64_t wi = 0;
  for (const VertexId* p = first; p != last; ++p) {
    const std::uint64_t bit = *p - lo;
    const std::uint64_t word = bit >> 6;
    if (word != wi) {
      words[wi] = acc;  // each word is visited once; memset covers gaps.
      wi = word;
      acc = 0;
    }
    acc |= std::uint64_t{1} << (bit & 63);
  }
  words[wi] = acc;  // nwords >= 1, so the flush is in range even when empty.
  if (steps != nullptr) *steps += static_cast<std::uint64_t>(last - first);
  w.words = words;
  return w;
}

template <bool kEmit>
std::size_t BitsetImpl(VertexId* dst, std::span<const VertexId> a,
                       std::span<const VertexId> b, ScratchArena& arena,
                       std::uint64_t* steps) {
  // Elements outside the overlap window cannot match; pack only the
  // window [lo, hi].
  const VertexId lo = std::max(a.front(), b.front());
  const VertexId hi = std::min(a.back(), b.back());
  if (hi < lo) return 0;
  // Pack the larger side once, then probe with the smaller: linear in
  // |a|+|b| like the merge, but the probe iterations are independent (no
  // loop-carried compare chain), and the sorted probe side emits matches
  // already in order — no bit-extraction pass.
  std::span<const VertexId> small = a.size() <= b.size() ? a : b;
  std::span<const VertexId> large = a.size() <= b.size() ? b : a;
  ArenaScope scope(arena);
  const PackedWindow w = Pack(arena, large, lo, hi, steps);
  const VertexId* first =
      std::lower_bound(small.data(), small.data() + small.size(), lo);
  const VertexId* last =
      std::upper_bound(first, small.data() + small.size(), hi);
  std::size_t k = 0;
  for (const VertexId* p = first; p != last; ++p) {
    const std::uint64_t bit = *p - lo;
    // Unconditional write, advance on hit: by the time dst[k] is written,
    // k <= probes-so-far < |small|, so the slot exists (same argument as
    // the branchless merge).
    if constexpr (kEmit) dst[k] = *p;
    k += static_cast<std::size_t>((w.words[bit >> 6] >> (bit & 63)) & 1u);
  }
  if (steps != nullptr) *steps += static_cast<std::uint64_t>(last - first);
  return k;
}

enum class Kernel { kNone, kMerge, kGallop, kBitset };

// The dispatch heuristic shared by every adaptive entry point; see the
// header comment and docs/PERF.md for the crossovers behind the
// constants.
Kernel Choose(std::span<const VertexId> a, std::span<const VertexId> b,
              const ScratchArena* arena) {
  const std::size_t small = std::min(a.size(), b.size());
  const std::size_t large = std::max(a.size(), b.size());
  if (small == 0) return Kernel::kNone;
  if (a.front() > b.back() || b.front() > a.back()) return Kernel::kNone;
  if (small * kGallopRatio < large) return Kernel::kGallop;
  if (arena != nullptr && small >= kBitsetMinSize) {
    const std::uint64_t lo = std::max(a.front(), b.front());
    const std::uint64_t hi = std::min(a.back(), b.back());
    const std::uint64_t window = hi - lo + 1;
    if (window <= static_cast<std::uint64_t>(a.size() + b.size()) *
                      kBitsetDensityBits) {
      return Kernel::kBitset;
    }
  }
  return Kernel::kMerge;
}

void Count(KernelStats* stats, Kernel kernel) {
  if (stats == nullptr) return;
  ++stats->calls;
  switch (kernel) {
    case Kernel::kNone:
      break;
    case Kernel::kMerge:
      ++stats->merge;
      break;
    case Kernel::kGallop:
      ++stats->gallop;
      break;
    case Kernel::kBitset:
      ++stats->bitset;
      break;
  }
}

}  // namespace

std::size_t IntersectInto(VertexId* dst, std::span<const VertexId> a,
                          std::span<const VertexId> b, ScratchArena* arena,
                          KernelStats* stats) {
  const Kernel kernel = Choose(a, b, arena);
  Count(stats, kernel);
  std::uint64_t* steps = stats != nullptr ? &stats->steps : nullptr;
  switch (kernel) {
    case Kernel::kNone:
      return 0;
    case Kernel::kGallop:
      return GallopImpl<true>(dst, a, b, steps);
    case Kernel::kBitset:
      return BitsetImpl<true>(dst, a, b, *arena, steps);
    case Kernel::kMerge:
      break;
  }
  return MergeInto(dst, a, b, steps);
}

std::uint32_t IntersectSize(std::span<const VertexId> a,
                            std::span<const VertexId> b, ScratchArena* arena,
                            KernelStats* stats) {
  const Kernel kernel = Choose(a, b, arena);
  Count(stats, kernel);
  std::uint64_t* steps = stats != nullptr ? &stats->steps : nullptr;
  switch (kernel) {
    case Kernel::kNone:
      return 0;
    case Kernel::kGallop:
      return static_cast<std::uint32_t>(GallopImpl<false>(nullptr, a, b, steps));
    case Kernel::kBitset:
      return static_cast<std::uint32_t>(
          BitsetImpl<false>(nullptr, a, b, *arena, steps));
    case Kernel::kMerge:
      break;
  }
  return static_cast<std::uint32_t>(MergeSize(a, b, steps));
}

std::size_t IntersectWithAttrCounts(VertexId* dst, std::span<const VertexId> a,
                                    std::span<const VertexId> b,
                                    std::span<const AttrId> attrs,
                                    std::uint32_t* counts, ScratchArena* arena,
                                    KernelStats* stats) {
  const std::size_t n = IntersectInto(dst, a, b, arena, stats);
  for (std::size_t i = 0; i < n; ++i) ++counts[attrs[dst[i]]];
  return n;
}

std::size_t MergeIntersectInto(VertexId* dst, std::span<const VertexId> a,
                               std::span<const VertexId> b,
                               KernelStats* stats) {
  if (stats != nullptr) {
    ++stats->calls;
    ++stats->merge;
  }
  return MergeInto(dst, a, b, stats != nullptr ? &stats->steps : nullptr);
}

std::size_t GallopIntersectInto(VertexId* dst, std::span<const VertexId> a,
                                std::span<const VertexId> b,
                                KernelStats* stats) {
  if (stats != nullptr) {
    ++stats->calls;
    ++stats->gallop;
  }
  if (a.empty() || b.empty()) return 0;
  return GallopImpl<true>(dst, a, b,
                          stats != nullptr ? &stats->steps : nullptr);
}

std::size_t BitsetIntersectInto(VertexId* dst, std::span<const VertexId> a,
                                std::span<const VertexId> b,
                                ScratchArena& arena, KernelStats* stats) {
  if (stats != nullptr) {
    ++stats->calls;
    ++stats->bitset;
  }
  if (a.empty() || b.empty()) return 0;
  return BitsetImpl<true>(dst, a, b, arena,
                          stats != nullptr ? &stats->steps : nullptr);
}

BitsetView BitsetView::Load(ScratchArena& arena,
                            std::span<const VertexId> ids) {
  BitsetView view;
  FAIRBC_KERNEL_DCHECK(!ids.empty());
  view.lo_ = ids.front();
  view.hi_ = ids.back();
  const std::size_t nwords =
      (static_cast<std::uint64_t>(view.hi_) - view.lo_) / 64 + 1;
  std::uint64_t* words = arena.AllocWords(nwords);
  std::memset(words, 0, nwords * sizeof(std::uint64_t));
  std::uint64_t acc = 0;
  std::uint64_t wi = 0;
  for (const VertexId v : ids) {
    const std::uint64_t bit = v - view.lo_;
    const std::uint64_t word = bit >> 6;
    if (word != wi) {
      words[wi] = acc;
      wi = word;
      acc = 0;
    }
    acc |= std::uint64_t{1} << (bit & 63);
  }
  words[wi] = acc;
  view.words_ = words;
  return view;
}

std::uint32_t BitsetView::CountHits(std::span<const VertexId> ids,
                                    KernelStats* stats) const {
  if (stats != nullptr) {
    ++stats->calls;
    ++stats->bitset;
    stats->steps += ids.size();
  }
  std::uint32_t hits = 0;
  for (const VertexId v : ids) hits += Test(v) ? 1u : 0u;
  return hits;
}

}  // namespace fairbc
