#include "core/fcore.h"

#include <deque>
#include <utility>
#include <vector>

#include "common/status.h"
#include "fairness/fair_vector.h"

namespace fairbc {

namespace {

// Shared peeling engine operating on the alive subgraph in `masks`. The
// upper side always uses lower-attribute degrees with threshold beta; the
// lower side uses plain degree (FCore) or upper-attribute degrees
// (BFCore) with threshold alpha.
void PeelCore(const BipartiteGraph& g, std::uint32_t alpha, std::uint32_t beta,
              bool bi_side, SideMasks& masks) {
  const VertexId nu = g.NumUpper();
  const VertexId nv = g.NumLower();
  const AttrId av = g.NumAttrs(Side::kLower);
  const AttrId au = g.NumAttrs(Side::kUpper);
  FAIRBC_CHECK(masks.upper_alive.size() == nu);
  FAIRBC_CHECK(masks.lower_alive.size() == nv);

  // Attribute degrees, flattened [vertex * num_attrs + attr].
  std::vector<std::uint32_t> up_attr_deg(static_cast<std::size_t>(nu) * av, 0);
  std::vector<std::uint32_t> lo_attr_deg;
  std::vector<std::uint32_t> lo_deg(nv, 0);
  if (bi_side) lo_attr_deg.assign(static_cast<std::size_t>(nv) * au, 0);

  for (VertexId u = 0; u < nu; ++u) {
    if (!masks.upper_alive[u]) continue;
    for (VertexId v : g.Neighbors(Side::kUpper, u)) {
      if (!masks.lower_alive[v]) continue;
      ++up_attr_deg[static_cast<std::size_t>(u) * av + g.Attr(Side::kLower, v)];
      ++lo_deg[v];
      if (bi_side) {
        ++lo_attr_deg[static_cast<std::size_t>(v) * au +
                      g.Attr(Side::kUpper, u)];
      }
    }
  }

  auto upper_violates = [&](VertexId u) {
    for (AttrId a = 0; a < av; ++a) {
      if (up_attr_deg[static_cast<std::size_t>(u) * av + a] < beta) return true;
    }
    return false;
  };
  auto lower_violates = [&](VertexId v) {
    if (!bi_side) return lo_deg[v] < alpha;
    for (AttrId a = 0; a < au; ++a) {
      if (lo_attr_deg[static_cast<std::size_t>(v) * au + a] < alpha) return true;
    }
    return false;
  };

  std::deque<std::pair<Side, VertexId>> queue;
  for (VertexId u = 0; u < nu; ++u) {
    if (masks.upper_alive[u] && upper_violates(u)) {
      masks.upper_alive[u] = 0;
      queue.emplace_back(Side::kUpper, u);
    }
  }
  for (VertexId v = 0; v < nv; ++v) {
    if (masks.lower_alive[v] && lower_violates(v)) {
      masks.lower_alive[v] = 0;
      queue.emplace_back(Side::kLower, v);
    }
  }

  while (!queue.empty()) {
    auto [side, x] = queue.front();
    queue.pop_front();
    if (side == Side::kUpper) {
      const AttrId xa = g.Attr(Side::kUpper, x);
      for (VertexId v : g.Neighbors(Side::kUpper, x)) {
        if (!masks.lower_alive[v]) continue;
        --lo_deg[v];
        if (bi_side) --lo_attr_deg[static_cast<std::size_t>(v) * au + xa];
        if (lower_violates(v)) {
          masks.lower_alive[v] = 0;
          queue.emplace_back(Side::kLower, v);
        }
      }
    } else {
      const AttrId xa = g.Attr(Side::kLower, x);
      for (VertexId u : g.Neighbors(Side::kLower, x)) {
        if (!masks.upper_alive[u]) continue;
        --up_attr_deg[static_cast<std::size_t>(u) * av + xa];
        if (upper_violates(u)) {
          masks.upper_alive[u] = 0;
          queue.emplace_back(Side::kUpper, u);
        }
      }
    }
  }
}

SideMasks AllAlive(const BipartiteGraph& g) {
  SideMasks masks;
  masks.upper_alive.assign(g.NumUpper(), 1);
  masks.lower_alive.assign(g.NumLower(), 1);
  return masks;
}

}  // namespace

SideMasks FCore(const BipartiteGraph& g, std::uint32_t alpha,
                std::uint32_t beta) {
  SideMasks masks = AllAlive(g);
  PeelCore(g, alpha, beta, /*bi_side=*/false, masks);
  return masks;
}

SideMasks BFCore(const BipartiteGraph& g, std::uint32_t alpha,
                 std::uint32_t beta) {
  SideMasks masks = AllAlive(g);
  PeelCore(g, alpha, beta, /*bi_side=*/true, masks);
  return masks;
}

void FCoreInPlace(const BipartiteGraph& g, std::uint32_t alpha,
                  std::uint32_t beta, SideMasks& masks) {
  PeelCore(g, alpha, beta, /*bi_side=*/false, masks);
}

void BFCoreInPlace(const BipartiteGraph& g, std::uint32_t alpha,
                   std::uint32_t beta, SideMasks& masks) {
  PeelCore(g, alpha, beta, /*bi_side=*/true, masks);
}

SideMasks FCoreNaive(const BipartiteGraph& g, std::uint32_t alpha,
                     std::uint32_t beta, bool bi_side) {
  SideMasks masks;
  masks.upper_alive.assign(g.NumUpper(), 1);
  masks.lower_alive.assign(g.NumLower(), 1);
  const AttrId av = g.NumAttrs(Side::kLower);
  const AttrId au = g.NumAttrs(Side::kUpper);

  bool changed = true;
  while (changed) {
    changed = false;
    for (VertexId u = 0; u < g.NumUpper(); ++u) {
      if (!masks.upper_alive[u]) continue;
      SizeVector deg(av, 0);
      for (VertexId v : g.Neighbors(Side::kUpper, u)) {
        if (masks.lower_alive[v]) ++deg[g.Attr(Side::kLower, v)];
      }
      for (AttrId a = 0; a < av; ++a) {
        if (deg[a] < beta) {
          masks.upper_alive[u] = 0;
          changed = true;
          break;
        }
      }
    }
    for (VertexId v = 0; v < g.NumLower(); ++v) {
      if (!masks.lower_alive[v]) continue;
      if (!bi_side) {
        std::uint32_t d = 0;
        for (VertexId u : g.Neighbors(Side::kLower, v)) {
          if (masks.upper_alive[u]) ++d;
        }
        if (d < alpha) {
          masks.lower_alive[v] = 0;
          changed = true;
        }
      } else {
        SizeVector deg(au, 0);
        for (VertexId u : g.Neighbors(Side::kLower, v)) {
          if (masks.upper_alive[u]) ++deg[g.Attr(Side::kUpper, u)];
        }
        for (AttrId a = 0; a < au; ++a) {
          if (deg[a] < alpha) {
            masks.lower_alive[v] = 0;
            changed = true;
            break;
          }
        }
      }
    }
  }
  return masks;
}

}  // namespace fairbc
