#include "core/fcore.h"

#include <atomic>
#include <deque>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/parallel.h"
#include "core/reduction_context.h"
#include "fairness/fair_vector.h"

namespace fairbc {

namespace {

// Shared peeling engine operating on the alive subgraph in `masks`. The
// upper side always uses lower-attribute degrees with threshold beta; the
// lower side uses plain degree (FCore) or upper-attribute degrees
// (BFCore) with threshold alpha.
void PeelCoreSerial(const BipartiteGraph& g, std::uint32_t alpha,
                    std::uint32_t beta, bool bi_side, SideMasks& masks) {
  const VertexId nu = g.NumUpper();
  const VertexId nv = g.NumLower();
  const AttrId av = g.NumAttrs(Side::kLower);
  const AttrId au = g.NumAttrs(Side::kUpper);
  FAIRBC_CHECK(masks.upper_alive.size() == nu);
  FAIRBC_CHECK(masks.lower_alive.size() == nv);

  // Attribute degrees, flattened [vertex * num_attrs + attr].
  std::vector<std::uint32_t> up_attr_deg(static_cast<std::size_t>(nu) * av, 0);
  std::vector<std::uint32_t> lo_attr_deg;
  std::vector<std::uint32_t> lo_deg(nv, 0);
  if (bi_side) lo_attr_deg.assign(static_cast<std::size_t>(nv) * au, 0);

  for (VertexId u = 0; u < nu; ++u) {
    if (!masks.upper_alive[u]) continue;
    for (VertexId v : g.Neighbors(Side::kUpper, u)) {
      if (!masks.lower_alive[v]) continue;
      ++up_attr_deg[static_cast<std::size_t>(u) * av + g.Attr(Side::kLower, v)];
      ++lo_deg[v];
      if (bi_side) {
        ++lo_attr_deg[static_cast<std::size_t>(v) * au +
                      g.Attr(Side::kUpper, u)];
      }
    }
  }

  auto upper_violates = [&](VertexId u) {
    for (AttrId a = 0; a < av; ++a) {
      if (up_attr_deg[static_cast<std::size_t>(u) * av + a] < beta) return true;
    }
    return false;
  };
  auto lower_violates = [&](VertexId v) {
    if (!bi_side) return lo_deg[v] < alpha;
    for (AttrId a = 0; a < au; ++a) {
      if (lo_attr_deg[static_cast<std::size_t>(v) * au + a] < alpha) return true;
    }
    return false;
  };

  std::deque<std::pair<Side, VertexId>> queue;
  for (VertexId u = 0; u < nu; ++u) {
    if (masks.upper_alive[u] && upper_violates(u)) {
      masks.upper_alive[u] = 0;
      queue.emplace_back(Side::kUpper, u);
    }
  }
  for (VertexId v = 0; v < nv; ++v) {
    if (masks.lower_alive[v] && lower_violates(v)) {
      masks.lower_alive[v] = 0;
      queue.emplace_back(Side::kLower, v);
    }
  }

  while (!queue.empty()) {
    auto [side, x] = queue.front();
    queue.pop_front();
    if (side == Side::kUpper) {
      const AttrId xa = g.Attr(Side::kUpper, x);
      for (VertexId v : g.Neighbors(Side::kUpper, x)) {
        if (!masks.lower_alive[v]) continue;
        --lo_deg[v];
        if (bi_side) --lo_attr_deg[static_cast<std::size_t>(v) * au + xa];
        if (lower_violates(v)) {
          masks.lower_alive[v] = 0;
          queue.emplace_back(Side::kLower, v);
        }
      }
    } else {
      const AttrId xa = g.Attr(Side::kLower, x);
      for (VertexId u : g.Neighbors(Side::kLower, x)) {
        if (!masks.upper_alive[u]) continue;
        --up_attr_deg[static_cast<std::size_t>(u) * av + xa];
        if (upper_violates(u)) {
          masks.upper_alive[u] = 0;
          queue.emplace_back(Side::kUpper, u);
        }
      }
    }
  }
}

inline std::atomic_ref<std::uint32_t> AtomicAt(std::vector<std::uint32_t>& v,
                                               std::size_t i) {
  return std::atomic_ref<std::uint32_t>(v[i]);
}

// Frontier-based bulk-synchronous peel. Counters lag behind removals that
// are still queued in the frontier, so they only ever *overestimate* the
// alive degree — a vertex removed here genuinely violates its threshold
// (violation is monotone under decrements), and every pending removal is
// processed in a later round. The fixpoint is therefore exactly the core
// the serial peel computes; only the traversal order differs.
void PeelCoreParallel(const BipartiteGraph& g, std::uint32_t alpha,
                      std::uint32_t beta, bool bi_side, SideMasks& masks,
                      ThreadPool& pool) {
  const VertexId nu = g.NumUpper();
  const VertexId nv = g.NumLower();
  const AttrId av = g.NumAttrs(Side::kLower);
  const AttrId au = g.NumAttrs(Side::kUpper);
  FAIRBC_CHECK(masks.upper_alive.size() == nu);
  FAIRBC_CHECK(masks.lower_alive.size() == nv);

  std::vector<std::uint32_t> up_attr_deg(static_cast<std::size_t>(nu) * av, 0);
  std::vector<std::uint32_t> lo_attr_deg;
  std::vector<std::uint32_t> lo_deg(nv, 0);
  if (bi_side) lo_attr_deg.assign(static_cast<std::size_t>(nv) * au, 0);

  // Degree init: each side fills its own rows from its own adjacency, so
  // the writes of distinct chunks never alias.
  ParallelForChunks(pool, nu, [&](std::uint64_t begin, std::uint64_t end,
                                  unsigned) {
    for (VertexId u = static_cast<VertexId>(begin); u < end; ++u) {
      if (!masks.upper_alive[u]) continue;
      for (VertexId v : g.Neighbors(Side::kUpper, u)) {
        if (masks.lower_alive[v]) {
          ++up_attr_deg[static_cast<std::size_t>(u) * av +
                        g.Attr(Side::kLower, v)];
        }
      }
    }
  });
  ParallelForChunks(pool, nv, [&](std::uint64_t begin, std::uint64_t end,
                                  unsigned) {
    for (VertexId v = static_cast<VertexId>(begin); v < end; ++v) {
      if (!masks.lower_alive[v]) continue;
      for (VertexId u : g.Neighbors(Side::kLower, v)) {
        if (!masks.upper_alive[u]) continue;
        ++lo_deg[v];
        if (bi_side) {
          ++lo_attr_deg[static_cast<std::size_t>(v) * au +
                        g.Attr(Side::kUpper, u)];
        }
      }
    }
  });

  // Violation checks over the (possibly concurrently decremented) atomic
  // counters. Relaxed order suffices: counters only decrease, and any
  // decrement that crosses a threshold is observed by the worker that
  // performed it.
  auto upper_violates = [&](VertexId u) {
    for (AttrId a = 0; a < av; ++a) {
      if (AtomicAt(up_attr_deg, static_cast<std::size_t>(u) * av + a)
              .load(std::memory_order_relaxed) < beta) {
        return true;
      }
    }
    return false;
  };
  auto lower_violates = [&](VertexId v) {
    if (!bi_side) {
      return AtomicAt(lo_deg, v).load(std::memory_order_relaxed) < alpha;
    }
    for (AttrId a = 0; a < au; ++a) {
      if (AtomicAt(lo_attr_deg, static_cast<std::size_t>(v) * au + a)
              .load(std::memory_order_relaxed) < alpha) {
        return true;
      }
    }
    return false;
  };

  using Removal = std::pair<Side, VertexId>;
  std::vector<std::vector<Removal>> local(pool.num_threads());

  // Initial frontier: unsynchronized scans are safe — each vertex is
  // examined by exactly one chunk and the scans only read counters their
  // own side's init wrote (published by the batch barrier above).
  ParallelForChunks(pool, nu, [&](std::uint64_t begin, std::uint64_t end,
                                  unsigned worker) {
    for (VertexId u = static_cast<VertexId>(begin); u < end; ++u) {
      if (masks.upper_alive[u] && upper_violates(u)) {
        masks.upper_alive[u] = 0;
        local[worker].emplace_back(Side::kUpper, u);
      }
    }
  });
  ParallelForChunks(pool, nv, [&](std::uint64_t begin, std::uint64_t end,
                                  unsigned worker) {
    for (VertexId v = static_cast<VertexId>(begin); v < end; ++v) {
      if (masks.lower_alive[v] && lower_violates(v)) {
        masks.lower_alive[v] = 0;
        local[worker].emplace_back(Side::kLower, v);
      }
    }
  });

  std::vector<Removal> frontier;
  auto drain_local = [&] {
    frontier.clear();
    for (auto& buf : local) {
      frontier.insert(frontier.end(), buf.begin(), buf.end());
      buf.clear();
    }
  };
  drain_local();

  // Rounds: every removal decrements its alive neighbors' counters once;
  // a CAS on the alive byte makes sure each newly violating vertex enters
  // the next frontier exactly once. Decrements of vertices that die in
  // the same round are harmless (their counters are never read again).
  std::vector<Removal> current;
  while (!frontier.empty()) {
    current.swap(frontier);
    ParallelForChunks(pool, current.size(), [&](std::uint64_t begin,
                                                std::uint64_t end,
                                                unsigned worker) {
      auto& out = local[worker];
      for (std::uint64_t i = begin; i < end; ++i) {
        const auto [side, x] = current[i];
        if (side == Side::kUpper) {
          const AttrId xa = g.Attr(Side::kUpper, x);
          for (VertexId v : g.Neighbors(Side::kUpper, x)) {
            std::atomic_ref<char> alive(masks.lower_alive[v]);
            if (alive.load(std::memory_order_relaxed) == 0) continue;
            AtomicAt(lo_deg, v).fetch_sub(1, std::memory_order_relaxed);
            if (bi_side) {
              AtomicAt(lo_attr_deg, static_cast<std::size_t>(v) * au + xa)
                  .fetch_sub(1, std::memory_order_relaxed);
            }
            if (lower_violates(v)) {
              char expected = 1;
              if (alive.compare_exchange_strong(expected, 0,
                                                std::memory_order_relaxed)) {
                out.emplace_back(Side::kLower, v);
              }
            }
          }
        } else {
          const AttrId xa = g.Attr(Side::kLower, x);
          for (VertexId u : g.Neighbors(Side::kLower, x)) {
            std::atomic_ref<char> alive(masks.upper_alive[u]);
            if (alive.load(std::memory_order_relaxed) == 0) continue;
            AtomicAt(up_attr_deg, static_cast<std::size_t>(u) * av + xa)
                .fetch_sub(1, std::memory_order_relaxed);
            if (upper_violates(u)) {
              char expected = 1;
              if (alive.compare_exchange_strong(expected, 0,
                                                std::memory_order_relaxed)) {
                out.emplace_back(Side::kUpper, u);
              }
            }
          }
        }
      }
    });
    drain_local();
  }
}

void PeelCore(const BipartiteGraph& g, std::uint32_t alpha, std::uint32_t beta,
              bool bi_side, SideMasks& masks, ReductionContext* ctx) {
  ScopedPhaseTimer timer(ctx != nullptr ? &ctx->times().peel_seconds : nullptr,
                         ctx != nullptr ? ctx->trace() : nullptr, "peel");
  ThreadPool* pool = ctx != nullptr ? ctx->pool() : nullptr;
  if (pool != nullptr && pool->num_threads() > 1) {
    PeelCoreParallel(g, alpha, beta, bi_side, masks, *pool);
  } else {
    PeelCoreSerial(g, alpha, beta, bi_side, masks);
  }
}

SideMasks AllAlive(const BipartiteGraph& g) {
  SideMasks masks;
  masks.upper_alive.assign(g.NumUpper(), 1);
  masks.lower_alive.assign(g.NumLower(), 1);
  return masks;
}

}  // namespace

SideMasks FCore(const BipartiteGraph& g, std::uint32_t alpha,
                std::uint32_t beta, ReductionContext* ctx) {
  SideMasks masks = AllAlive(g);
  PeelCore(g, alpha, beta, /*bi_side=*/false, masks, ctx);
  return masks;
}

SideMasks BFCore(const BipartiteGraph& g, std::uint32_t alpha,
                 std::uint32_t beta, ReductionContext* ctx) {
  SideMasks masks = AllAlive(g);
  PeelCore(g, alpha, beta, /*bi_side=*/true, masks, ctx);
  return masks;
}

void FCoreInPlace(const BipartiteGraph& g, std::uint32_t alpha,
                  std::uint32_t beta, SideMasks& masks, ReductionContext* ctx) {
  PeelCore(g, alpha, beta, /*bi_side=*/false, masks, ctx);
}

void BFCoreInPlace(const BipartiteGraph& g, std::uint32_t alpha,
                   std::uint32_t beta, SideMasks& masks, ReductionContext* ctx) {
  PeelCore(g, alpha, beta, /*bi_side=*/true, masks, ctx);
}

SideMasks FCoreNaive(const BipartiteGraph& g, std::uint32_t alpha,
                     std::uint32_t beta, bool bi_side) {
  SideMasks masks;
  masks.upper_alive.assign(g.NumUpper(), 1);
  masks.lower_alive.assign(g.NumLower(), 1);
  const AttrId av = g.NumAttrs(Side::kLower);
  const AttrId au = g.NumAttrs(Side::kUpper);

  bool changed = true;
  while (changed) {
    changed = false;
    for (VertexId u = 0; u < g.NumUpper(); ++u) {
      if (!masks.upper_alive[u]) continue;
      SizeVector deg(av, 0);
      for (VertexId v : g.Neighbors(Side::kUpper, u)) {
        if (masks.lower_alive[v]) ++deg[g.Attr(Side::kLower, v)];
      }
      for (AttrId a = 0; a < av; ++a) {
        if (deg[a] < beta) {
          masks.upper_alive[u] = 0;
          changed = true;
          break;
        }
      }
    }
    for (VertexId v = 0; v < g.NumLower(); ++v) {
      if (!masks.lower_alive[v]) continue;
      if (!bi_side) {
        std::uint32_t d = 0;
        for (VertexId u : g.Neighbors(Side::kLower, v)) {
          if (masks.upper_alive[u]) ++d;
        }
        if (d < alpha) {
          masks.lower_alive[v] = 0;
          changed = true;
        }
      } else {
        SizeVector deg(au, 0);
        for (VertexId u : g.Neighbors(Side::kLower, v)) {
          if (masks.upper_alive[u]) ++deg[g.Attr(Side::kUpper, u)];
        }
        for (AttrId a = 0; a < au; ++a) {
          if (deg[a] < alpha) {
            masks.lower_alive[v] = 0;
            changed = true;
            break;
          }
        }
      }
    }
  }
  return masks;
}

}  // namespace fairbc
