#ifndef FAIRBC_CORE_KERNELS_H_
#define FAIRBC_CORE_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/types.h"

// Capacity contract checks compile away outside debug builds.
#ifndef FAIRBC_KERNEL_DCHECK
#ifdef NDEBUG
#define FAIRBC_KERNEL_DCHECK(cond) ((void)0)
#else
#include <cassert>
#define FAIRBC_KERNEL_DCHECK(cond) assert(cond)
#endif
#endif

namespace fairbc {

/// Per-class size view used by the allocation-free fairness checks; a
/// SizeVector (fairness/fair_vector.h) converts implicitly.
using SizeSpan = std::span<const std::uint32_t>;

/// Kernel telemetry of one worker: how often the intersection kernels ran,
/// how much element work they did, and which kernel the dispatch heuristic
/// picked (docs/PERF.md documents the heuristic and the crossovers).
/// "Steps" are kernel-specific work units — merge loop iterations, gallop
/// probe comparisons, bitset loads+probes — comparable across runs of the
/// same workload, not across kernels.
struct KernelStats {
  std::uint64_t calls = 0;   ///< IntersectInto/Size/WithAttrCounts calls.
  std::uint64_t steps = 0;   ///< element comparisons / work units.
  std::uint64_t merge = 0;   ///< calls dispatched to the branchless merge.
  std::uint64_t gallop = 0;  ///< calls dispatched to the galloping kernel.
  std::uint64_t bitset = 0;  ///< calls dispatched to the packed-bitset kernel.
};

/// Sums `worker` into `into` (used by the per-worker stats merges).
void MergeKernelStats(KernelStats& into, const KernelStats& worker);

/// Grow-only bump allocator backing the engines' recursion scratch: the
/// branch-and-bound frames carve candidate/level stacks out of it instead
/// of heap-allocating vectors per branch. Allocation is a pointer bump
/// into chunked storage; freeing is rewinding to a saved mark (stack
/// discipline, one Save/Rewind pair per recursion frame). Chunks are
/// never released or moved while allocated blocks are live, so spans
/// handed out stay valid until their frame rewinds past them; capacity
/// reaches a high-water mark during the first deep subtree and every
/// later branch is allocation-free. One arena per worker — no
/// synchronization, no sharing.
class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Position of the bump pointer; Rewind(mark) frees everything
  /// allocated after the matching Save(). Marks must be rewound in LIFO
  /// order (enforced by ArenaScope).
  struct Mark {
    std::size_t chunk = 0;
    std::size_t used = 0;  ///< words used in that chunk.
  };

  Mark Save() const { return {chunk_, used_}; }
  void Rewind(const Mark& mark) {
    chunk_ = mark.chunk;
    used_ = mark.used;
  }

  /// Uninitialized block of `n` 32-bit slots (8-byte aligned).
  std::uint32_t* AllocU32(std::size_t n) {
    return reinterpret_cast<std::uint32_t*>(AllocWords((n + 1) / 2));
  }

  /// Uninitialized block of `n` 64-bit words.
  std::uint64_t* AllocWords(std::size_t n);

  /// Rewinds to empty; keeps every chunk (grow-only reuse).
  void Reset() {
    chunk_ = 0;
    used_ = 0;
  }

  /// Total bytes of chunk storage ever acquired (the grow-only
  /// high-water mark; never shrinks).
  std::size_t HighWaterBytes() const { return total_words_ * sizeof(std::uint64_t); }

 private:
  struct Chunk {
    std::unique_ptr<std::uint64_t[]> words;
    std::size_t size = 0;  ///< capacity in words.
  };

  /// First chunk size in words (64 KiB); later chunks double.
  static constexpr std::size_t kFirstChunkWords = 8192;

  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;  ///< index of the chunk being bumped.
  std::size_t used_ = 0;   ///< words used in chunks_[chunk_].
  std::size_t total_words_ = 0;
};

/// RAII Save/Rewind pair: everything the guarded frame allocates from the
/// arena is released when the scope ends.
class ArenaScope {
 public:
  explicit ArenaScope(ScratchArena& arena)
      : arena_(arena), mark_(arena.Save()) {}
  ~ArenaScope() { arena_.Rewind(mark_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  ScratchArena& arena_;
  const ScratchArena::Mark mark_;
};

/// Fixed-capacity vertex-id sequence carved out of a ScratchArena. The
/// capacity is decided at construction (the engines' set sizes all have
/// cheap upper bounds: |A∩B| <= min(|A|,|B|), filtered subsets fit their
/// source, R grows by one per level); push_back never reallocates, so the
/// storage address is stable and deeper recursion frames may hold spans
/// into it. Debug builds assert the capacity contract.
class IdVec {
 public:
  IdVec() = default;
  IdVec(ScratchArena& arena, std::size_t capacity)
      : data_(arena.AllocU32(capacity)), capacity_(capacity) {}

  void push_back(VertexId v) {
    FAIRBC_KERNEL_DCHECK(size_ < capacity_);
    data_[size_++] = v;
  }
  void clear() { size_ = 0; }
  /// Sets the size after a kernel wrote the elements directly.
  void set_size(std::size_t n) {
    FAIRBC_KERNEL_DCHECK(n <= capacity_);
    size_ = n;
  }

  VertexId* data() { return data_; }
  const VertexId* data() const { return data_; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }
  VertexId operator[](std::size_t i) const { return data_[i]; }
  VertexId* begin() { return data_; }
  VertexId* end() { return data_ + size_; }
  const VertexId* begin() const { return data_; }
  const VertexId* end() const { return data_ + size_; }
  std::span<const VertexId> view() const { return {data_, size_}; }

 private:
  VertexId* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

/// Fixed-size per-class counter block carved out of a ScratchArena
/// (replaces per-branch SizeVector allocations in the engines).
class CountVec {
 public:
  CountVec() = default;
  CountVec(ScratchArena& arena, std::size_t n)
      : data_(arena.AllocU32(n)), size_(n) {}
  /// Zero-initializing constructor.
  static CountVec Zero(ScratchArena& arena, std::size_t n) {
    CountVec c(arena, n);
    for (std::size_t i = 0; i < n; ++i) c.data_[i] = 0;
    return c;
  }
  /// Copying constructor (sizes snapshots taken per level).
  static CountVec CopyOf(ScratchArena& arena, SizeSpan other) {
    CountVec c(arena, other.size());
    for (std::size_t i = 0; i < other.size(); ++i) c.data_[i] = other[i];
    return c;
  }

  std::uint32_t& operator[](std::size_t i) { return data_[i]; }
  std::uint32_t operator[](std::size_t i) const { return data_[i]; }
  std::size_t size() const { return size_; }
  std::uint32_t* data() { return data_; }
  SizeSpan view() const { return {data_, size_}; }
  const std::uint32_t* begin() const { return data_; }
  const std::uint32_t* end() const { return data_ + size_; }

 private:
  std::uint32_t* data_ = nullptr;
  std::size_t size_ = 0;
};

// ---------------------------------------------------------------------------
// Adaptive set-intersection kernels.
//
// All inputs are ascending-sorted duplicate-free id sequences (the CSR
// neighbor-list invariant). Every kernel produces the identical sorted
// output; the dispatch heuristic (IntersectInto/IntersectSize) only
// changes how fast it is computed, never what is computed — the
// parallel-equivalence and property-oracle suites rely on this.
//
// Dispatch (measured crossovers in docs/PERF.md):
//   1. empty/disjoint windows   -> early exit (no kernel).
//   2. max/min size ratio >= 16 -> galloping binary probes of the smaller
//      sequence into the larger one.
//   3. both sides >= 64 elements and the overlap window is dense
//      (window span <= 16 bits per element) and an arena is available
//      for the packed bitmap -> bitset: pack the larger side into a
//      dense 64-bit bitmap over the window, probe it with the smaller
//      side (independent iterations; no loop-carried compare chain).
//   4. otherwise                -> branchless scalar merge.
// ---------------------------------------------------------------------------

/// Intersection size ratio at which galloping beats the merge.
inline constexpr std::size_t kGallopRatio = 16;
/// Minimum smaller-side size for the bitset kernel to amortize packing.
inline constexpr std::size_t kBitsetMinSize = 64;
/// Maximum overlap-window bits per input element for the bitset kernel.
inline constexpr std::size_t kBitsetDensityBits = 16;

/// Adaptive sorted-set intersection into a caller-provided buffer.
/// `dst` must have capacity >= min(|a|,|b|); returns the output size.
/// `arena` (optional) enables the bitset kernel — packing scratch is
/// taken from it and released before returning. `stats` (optional)
/// accumulates kernel telemetry.
std::size_t IntersectInto(VertexId* dst, std::span<const VertexId> a,
                          std::span<const VertexId> b,
                          ScratchArena* arena = nullptr,
                          KernelStats* stats = nullptr);

/// Adaptive intersection size (no output materialized).
std::uint32_t IntersectSize(std::span<const VertexId> a,
                            std::span<const VertexId> b,
                            ScratchArena* arena = nullptr,
                            KernelStats* stats = nullptr);

/// Fused variant: intersects like IntersectInto and additionally counts
/// the attribute classes of the emitted vertices into `counts` (one slot
/// per AttrId of `attrs`' domain; the caller zeroes or pre-seeds it).
/// Replaces the separate class-size pass the engines used to run over
/// the intersection result.
std::size_t IntersectWithAttrCounts(VertexId* dst, std::span<const VertexId> a,
                                    std::span<const VertexId> b,
                                    std::span<const AttrId> attrs,
                                    std::uint32_t* counts,
                                    ScratchArena* arena = nullptr,
                                    KernelStats* stats = nullptr);

// Forced-kernel entry points, exposed for the property tests and the
// bench_micro_kernels kernel matrix; production code goes through the
// adaptive dispatchers above.
std::size_t MergeIntersectInto(VertexId* dst, std::span<const VertexId> a,
                               std::span<const VertexId> b,
                               KernelStats* stats = nullptr);
std::size_t GallopIntersectInto(VertexId* dst, std::span<const VertexId> a,
                                std::span<const VertexId> b,
                                KernelStats* stats = nullptr);
std::size_t BitsetIntersectInto(VertexId* dst, std::span<const VertexId> a,
                                std::span<const VertexId> b,
                                ScratchArena& arena,
                                KernelStats* stats = nullptr);

/// Per-worker dense bitmap over one sorted id set, used when many
/// candidate lists are intersected against the same set (the engines'
/// candidate filtering): load once in O(|set|), then count each
/// candidate's hits in O(|candidate|) probes instead of a full merge.
/// Backed by arena words; release by rewinding the arena past Load.
class BitsetView {
 public:
  BitsetView() = default;

  /// Packs `ids` (sorted, nonempty) into arena-backed words covering
  /// [ids.front(), ids.back()].
  static BitsetView Load(ScratchArena& arena, std::span<const VertexId> ids);

  bool Test(VertexId v) const {
    if (v < lo_ || v > hi_) return false;
    const std::uint64_t bit = v - lo_;
    return (words_[bit >> 6] >> (bit & 63)) & 1u;
  }

  /// |ids ∩ loaded set| — identical to IntersectSize against the loaded
  /// set (`ids` sorted duplicate-free).
  std::uint32_t CountHits(std::span<const VertexId> ids,
                          KernelStats* stats = nullptr) const;

  bool loaded() const { return words_ != nullptr; }

 private:
  const std::uint64_t* words_ = nullptr;
  VertexId lo_ = 0;
  VertexId hi_ = 0;
};

}  // namespace fairbc

#endif  // FAIRBC_CORE_KERNELS_H_
