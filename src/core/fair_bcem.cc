#include "core/fair_bcem.h"

#include <algorithm>

#include "common/status.h"
#include "common/timer.h"
#include "core/intersect.h"
#include "core/ordering.h"
#include "fairness/fair_vector.h"

namespace fairbc {

namespace {

class FairBcemEngine {
 public:
  FairBcemEngine(const BipartiteGraph& g, const FairBicliqueParams& params,
                 std::uint32_t min_upper, const EnumOptions& options,
                 const FairBcemSearchOptions& search, const BicliqueSink& sink)
      : g_(g),
        spec_(params.LowerSpec()),
        min_upper_(std::max(min_upper, 1u)),
        options_(options),
        search_(search),
        sink_(sink),
        deadline_(options.time_budget_seconds),
        num_attrs_(g.NumAttrs(Side::kLower)) {}

  EnumStats Run() {
    std::vector<VertexId> upper_all(g_.NumUpper());
    for (VertexId u = 0; u < g_.NumUpper(); ++u) upper_all[u] = u;
    std::vector<VertexId> candidates =
        MakeOrder(g_, Side::kLower, options_.ordering);
    Recurse(std::move(upper_all), {}, std::move(candidates), {});
    return stats_;
  }

 private:
  bool OverBudget() {
    if (aborted_) return true;
    if ((options_.node_budget > 0 &&
         stats_.search_nodes >= options_.node_budget) ||
        deadline_.Expired()) {
      stats_.budget_exhausted = true;
      return true;
    }
    return false;
  }

  std::uint32_t CandidateThreshold() const {
    return search_.filter_candidates_alpha ? min_upper_ : 1u;
  }

  SizeVector SizesOf(const std::vector<VertexId>& vs) const {
    SizeVector sizes(num_attrs_, 0);
    for (VertexId v : vs) ++sizes[g_.Attr(Side::kLower, v)];
    return sizes;
  }

  // Emits (upper, lower) if the maximality check against `ground_sizes`
  // passes. `lower_sizes` must be the class sizes of `lower`.
  void MaybeEmit(const std::vector<VertexId>& upper,
                 const std::vector<VertexId>& lower,
                 const SizeVector& lower_sizes, const SizeVector& ground_sizes) {
    if (upper.size() < min_upper_) return;
    if (!IsFeasibleVector(lower_sizes, spec_)) return;
    if (!IsMaximalFairVector(lower_sizes, ground_sizes, spec_)) return;
    Biclique b;
    b.upper = upper;
    b.lower = lower;
    std::sort(b.lower.begin(), b.lower.end());
    ++stats_.num_results;
    if (!sink_(b)) aborted_ = true;
  }

  void Recurse(std::vector<VertexId> big_l, std::vector<VertexId> r,
               std::vector<VertexId> p, std::vector<VertexId> q) {
    const SizeVector r_sizes_base = SizesOf(r);
    while (!p.empty()) {
      if (OverBudget()) return;
      ++stats_.search_nodes;
      const VertexId x = p.front();

      std::vector<VertexId> new_l = Intersect(big_l, g_.Neighbors(Side::kLower, x));
      std::vector<VertexId> new_r = r;
      new_r.push_back(x);

      bool viable = !new_l.empty();
      if (search_.prune_small_l && new_l.size() < min_upper_) viable = false;

      std::vector<VertexId> new_q;
      std::vector<VertexId> q_full;
      if (viable) {
        const std::uint32_t keep_at = CandidateThreshold();
        for (VertexId v : q) {
          std::uint32_t c = IntersectSize(g_.Neighbors(Side::kLower, v), new_l);
          if (c == new_l.size()) q_full.push_back(v);
          if (c >= keep_at) new_q.push_back(v);
        }
        if (search_.prune_excluded_full && !q_full.empty()) {
          // Observation 2: one fully-connected excluded vertex per class
          // means no descendant can be maximal.
          SizeVector cover(num_attrs_, 0);
          for (VertexId v : q_full) ++cover[g_.Attr(Side::kLower, v)];
          bool all_covered = true;
          for (auto c : cover) {
            if (c == 0) {
              all_covered = false;
              break;
            }
          }
          if (all_covered) viable = false;
        }
      }

      if (viable) {
        const std::uint32_t keep_at = CandidateThreshold();
        std::vector<VertexId> new_p;
        std::vector<VertexId> p_full;
        for (std::size_t i = 1; i < p.size(); ++i) {
          const VertexId v = p[i];
          std::uint32_t c = IntersectSize(g_.Neighbors(Side::kLower, v), new_l);
          if (c == new_l.size()) p_full.push_back(v);
          if (c >= keep_at) new_p.push_back(v);
        }

        SizeVector new_r_sizes = r_sizes_base;
        ++new_r_sizes[g_.Attr(Side::kLower, x)];
        SizeVector ground_sizes = new_r_sizes;
        for (VertexId v : p_full) ++ground_sizes[g_.Attr(Side::kLower, v)];
        for (VertexId v : q_full) ++ground_sizes[g_.Attr(Side::kLower, v)];

        bool shortcut = false;
        // p_full ⊆ new_p requires |new_l| >= keep_at; only then does the
        // size equality mean "every remaining candidate is fully
        // connected".
        if (search_.absorb_full_candidates && new_l.size() >= keep_at &&
            new_p.size() == p_full.size()) {
          // Observation 4: every remaining candidate is fully connected.
          SizeVector all_sizes = new_r_sizes;
          for (VertexId v : p_full) ++all_sizes[g_.Attr(Side::kLower, v)];
          if (IsFeasibleVector(all_sizes, spec_)) {
            std::vector<VertexId> all_r = new_r;
            all_r.insert(all_r.end(), p_full.begin(), p_full.end());
            MaybeEmit(new_l, all_r, all_sizes, ground_sizes);
            shortcut = true;
          }
        }

        if (!shortcut) {
          MaybeEmit(new_l, new_r, new_r_sizes, ground_sizes);
          if (aborted_) return;
          if (!new_p.empty()) {
            bool reachable = true;
            if (search_.prune_class_counts) {
              // Observation 5 (second half): every class must be able to
              // reach beta from R' plus the candidate pool.
              SizeVector pool = new_r_sizes;
              for (VertexId v : new_p) ++pool[g_.Attr(Side::kLower, v)];
              for (auto c : pool) {
                if (c < spec_.min_per_class) {
                  reachable = false;
                  break;
                }
              }
            }
            if (reachable) {
              Recurse(new_l, new_r, std::move(new_p), std::move(new_q));
              if (aborted_ || OverBudget()) return;
            }
          }
        }
        if (aborted_) return;
      }

      // Move x from P to Q.
      q.push_back(x);
      p.erase(p.begin());
    }
  }

  const BipartiteGraph& g_;
  const FairnessSpec spec_;
  const std::uint32_t min_upper_;
  const EnumOptions& options_;
  const FairBcemSearchOptions& search_;
  const BicliqueSink& sink_;
  Deadline deadline_;
  const AttrId num_attrs_;
  EnumStats stats_;
  bool aborted_ = false;
};

}  // namespace

EnumStats FairBcemRun(const BipartiteGraph& g, const FairBicliqueParams& params,
                      std::uint32_t min_upper, const EnumOptions& options,
                      const FairBcemSearchOptions& search,
                      const BicliqueSink& sink) {
  if (g.NumUpper() == 0 || g.NumLower() == 0) {
    return {};
  }
  FairBcemEngine engine(g, params, min_upper, options, search, sink);
  EnumStats stats = engine.Run();
  stats.remaining_upper = g.NumUpper();
  stats.remaining_lower = g.NumLower();
  return stats;
}

}  // namespace fairbc
