#include "core/fair_bcem.h"

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "core/kernels.h"
#include "core/ordering.h"
#include "core/parallel.h"
#include "core/search_context.h"
#include "fairness/fair_vector.h"
#include "obs/trace.h"

namespace fairbc {

namespace {

class FairBcemEngine;
using ContextSplitter = SubtreeSplitter<std::unique_ptr<SearchContext>>;

// FairBCEM recursion (paper Alg. 5) on the shared SearchContext layer:
// the context owns stats, budget, fairness policy and sink; this class
// owns only the branch-and-bound logic. Root-level branches are
// independent (branch i's exclusion set is exactly the candidates before
// it), which is what the parallel fan-out in FairBcemRun exploits; a
// root branch whose subtree dominates re-submits its depth-1 children to
// the pool once the queue runs dry (depth-adaptive splitting).
//
// Every per-branch set (new L, filtered candidates, exclusion lists,
// class counters) is carved out of the worker's ScratchArena — one
// ArenaScope per recursion frame, capacity bounds proven from the parent
// sets — so the recursion itself never touches the heap; only emitted
// results allocate.
class FairBcemEngine {
 public:
  FairBcemEngine(SearchContext& ctx, const FairBcemSearchOptions& search,
                 std::uint32_t min_upper, ContextSplitter* splitter = nullptr)
      : ctx_(ctx),
        search_(search),
        splitter_(splitter),
        min_upper_(std::max(min_upper, 1u)),
        num_attrs_(ctx.graph().NumAttrs(Side::kLower)) {}

  /// Full serial search; traversal (and node accounting) is identical to
  /// running every root branch in candidate order.
  void Run(std::span<const VertexId> upper_all,
           std::span<const VertexId> candidates) {
    ArenaScope frame(ctx_.arena());
    const CountVec zero = CountVec::Zero(ctx_.arena(), num_attrs_);
    Recurse(upper_all, {}, zero.view(), candidates, {});
  }

  /// One root-level subtree: the branch on candidates[root] with the
  /// exclusion prefix candidates[0..root).
  void RunRootBranch(std::span<const VertexId> upper_all,
                     std::span<const VertexId> candidates, std::size_t root) {
    allow_split_ = splitter_ != nullptr;
    ArenaScope frame(ctx_.arena());
    const CountVec zero = CountVec::Zero(ctx_.arena(), num_attrs_);
    Branch(upper_all, {}, zero.view(), candidates.subspan(root),
           candidates.first(root));
  }

  /// One depth-1 child of a split subtree (never splits again).
  void RunSubtreeChild(const std::shared_ptr<const SubtreeBatch>& batch,
                       std::size_t child) {
    allow_split_ = false;
    const std::vector<VertexId> q = batch->ExclusionFor(child);
    const SizeVector r_sizes = ctx_.ClassSizes(Side::kLower, batch->r);
    std::span<const VertexId> p(batch->p);
    Branch(batch->big_l, batch->r, r_sizes, p.subspan(child), q);
  }

 private:
  std::uint32_t CandidateThreshold() const {
    return search_.filter_candidates_alpha ? min_upper_ : 1u;
  }

  // Emits (upper, lower) if the maximality check against `ground_sizes`
  // passes. `lower_sizes` must be the class sizes of `lower`. Nothing is
  // materialized until the checks pass; only an actual emission copies
  // the sets out of the arena.
  void MaybeEmit(std::span<const VertexId> upper,
                 std::span<const VertexId> lower, SizeSpan lower_sizes,
                 SizeSpan ground_sizes) {
    if (upper.size() < min_upper_) return;
    if (!ctx_.policy().Feasible(lower_sizes)) return;
    if (!ctx_.policy().MaximalWithin(lower_sizes, ground_sizes)) return;
    Biclique b;
    b.upper.assign(upper.begin(), upper.end());
    b.lower.assign(lower.begin(), lower.end());
    std::sort(b.lower.begin(), b.lower.end());
    ctx_.Emit(b);
  }

  // Processes the branch rooted at p[0] (remaining candidates p, exclusion
  // set q; `r_sizes` are the class sizes of r, computed once per level)
  // and recurses into its subtree. Returns false when the whole search
  // must stop (budget exhausted or sink abort).
  bool Branch(std::span<const VertexId> big_l, std::span<const VertexId> r,
              SizeSpan r_sizes, std::span<const VertexId> p,
              std::span<const VertexId> q) {
    if (ctx_.ShouldStop()) return false;
    ctx_.CountNode();
    const BipartiteGraph& g = ctx_.graph();
    ScratchArena& arena = ctx_.arena();
    KernelStats* kstats = ctx_.kernel_stats();
    const VertexId x = p.front();

    // Top-k branch-and-bound: no result below this node can exceed
    // (|L|, |R| + |P|) — every descendant upper set is a subset of L and
    // every descendant pick comes from R ∪ P (excluded q vertices never
    // re-enter). Cut the subtree when even that shape cannot reach the
    // published k-th best; `return true` (not false) — siblings go on.
    const TopKPruneBound* topk = ctx_.options().topk;
    if (topk != nullptr && topk->CanPrune(big_l.size(), r.size() + p.size())) {
      return true;
    }

    ArenaScope frame(arena);
    const std::span<const VertexId> x_nbrs = g.Neighbors(Side::kLower, x);
    IdVec new_l(arena, std::min(big_l.size(), x_nbrs.size()));
    new_l.set_size(IntersectInto(new_l.data(), big_l, x_nbrs, &arena, kstats));

    bool viable = !new_l.empty();
    if (search_.prune_small_l && new_l.size() < min_upper_) viable = false;

    // Both candidate filters probe the same L'; load its bitmap once and
    // count each neighbor list in O(deg) probes.
    BitsetView lbits;
    IdVec new_q(arena, q.size());
    IdVec q_full(arena, q.size());
    if (viable) {
      lbits = BitsetView::Load(arena, new_l.view());
      FilterCandidates(g, Side::kLower, q, new_l.view(), lbits,
                       CandidateThreshold(), &new_q, &q_full, kstats);
      if (search_.prune_excluded_full && !q_full.empty()) {
        // Observation 2: one fully-connected excluded vertex per class
        // means no descendant can be maximal.
        CountVec cover = CountVec::Zero(arena, num_attrs_);
        for (VertexId v : q_full) ++cover[g.Attr(Side::kLower, v)];
        bool all_covered = true;
        for (auto c : cover) {
          if (c == 0) {
            all_covered = false;
            break;
          }
        }
        if (all_covered) viable = false;
      }
    }
    if (!viable) return true;

    IdVec new_p(arena, p.size() - 1);
    IdVec p_full(arena, p.size() - 1);
    FilterCandidates(g, Side::kLower, p.subspan(1), new_l.view(), lbits,
                     CandidateThreshold(), &new_p, &p_full, kstats);

    // Tighter top-k bound now that L' and the surviving candidates are
    // known: upper ≤ |new_l|, lower ≤ |r| + 1 (x) + |new_p|.
    if (topk != nullptr &&
        topk->CanPrune(new_l.size(), r.size() + 1 + new_p.size())) {
      return true;
    }

    IdVec new_r(arena, r.size() + 1);
    for (VertexId v : r) new_r.push_back(v);
    new_r.push_back(x);
    CountVec new_r_sizes = CountVec::CopyOf(arena, r_sizes);
    ++new_r_sizes[g.Attr(Side::kLower, x)];
    CountVec ground_sizes = CountVec::CopyOf(arena, new_r_sizes.view());
    for (VertexId v : p_full) ++ground_sizes[g.Attr(Side::kLower, v)];
    for (VertexId v : q_full) ++ground_sizes[g.Attr(Side::kLower, v)];

    bool shortcut = false;
    // p_full ⊆ new_p requires |new_l| >= threshold; only then does the
    // size equality mean "every remaining candidate is fully connected".
    if (search_.absorb_full_candidates &&
        new_l.size() >= CandidateThreshold() &&
        new_p.size() == p_full.size()) {
      // Observation 4: every remaining candidate is fully connected.
      CountVec all_sizes = CountVec::CopyOf(arena, new_r_sizes.view());
      for (VertexId v : p_full) ++all_sizes[g.Attr(Side::kLower, v)];
      if (ctx_.policy().Feasible(all_sizes.view())) {
        IdVec all_r(arena, new_r.size() + p_full.size());
        for (VertexId v : new_r) all_r.push_back(v);
        for (VertexId v : p_full) all_r.push_back(v);
        MaybeEmit(new_l.view(), all_r.view(), all_sizes.view(),
                  ground_sizes.view());
        shortcut = true;
      }
    }

    if (!shortcut) {
      MaybeEmit(new_l.view(), new_r.view(), new_r_sizes.view(),
                ground_sizes.view());
      if (ctx_.budget().aborted()) return false;
      if (!new_p.empty()) {
        bool reachable = true;
        if (search_.prune_class_counts) {
          // Observation 5 (second half): every class must be able to
          // reach beta from R' plus the candidate pool.
          CountVec pool = CountVec::CopyOf(arena, new_r_sizes.view());
          for (VertexId v : new_p) ++pool[g.Attr(Side::kLower, v)];
          reachable = ctx_.policy().Reachable(pool.view());
        }
        if (reachable) {
          if (!TrySplit(new_l.view(), new_r.view(), new_p.view(),
                        new_q.view())) {
            Recurse(new_l.view(), new_r.view(), new_r_sizes.view(),
                    new_p.view(), new_q.view());
          }
          if (ctx_.ShouldStop()) return false;
        }
      }
    }
    return !ctx_.budget().aborted();
  }

  // Depth-adaptive task splitting: a root task re-checks the pool queue
  // at every descend point of its serial walk and, at the first node
  // where the queue has run dry, hands that node's depth-1 children to
  // the pool (with the exact exclusion prefixes the serial loop would
  // have used) instead of walking them while other workers starve.
  // Split children never split again, and a split only fires on a
  // near-empty queue, so the task count stays bounded. Returns true when
  // the subtree was handed to the pool.
  bool TrySplit(std::span<const VertexId> big_l, std::span<const VertexId> r,
                std::span<const VertexId> p, std::span<const VertexId> q) {
    if (!allow_split_ || splitter_ == nullptr) return false;
    if (p.size() < 2 || !splitter_->ShouldSplit()) return false;
    ++ctx_.stats().split_subtrees;
    auto batch = std::make_shared<SubtreeBatch>();
    batch->big_l.assign(big_l.begin(), big_l.end());
    batch->r.assign(r.begin(), r.end());
    batch->p.assign(p.begin(), p.end());
    batch->q.assign(q.begin(), q.end());
    const FairBcemSearchOptions* search = &search_;
    const std::uint32_t min_upper = min_upper_;
    for (std::size_t child = 0; child < batch->p.size(); ++child) {
      splitter_->Submit(
          [batch, child, search, min_upper](SearchContext& ctx) {
            TraceSpan span(ctx.options().trace, "split");
            FairBcemEngine(ctx, *search, min_upper)
                .RunSubtreeChild(batch, child);
          });
    }
    return true;
  }

  // Branches on every candidate of p in order, growing the exclusion set.
  // `r_sizes` are the class sizes of r, handed down by the caller (the
  // parent branch already maintains them incrementally).
  void Recurse(std::span<const VertexId> big_l, std::span<const VertexId> r,
               SizeSpan r_sizes, std::span<const VertexId> p,
               std::span<const VertexId> q_in) {
    ArenaScope frame(ctx_.arena());
    IdVec q(ctx_.arena(), q_in.size() + p.size());
    for (VertexId v : q_in) q.push_back(v);
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (!Branch(big_l, r, r_sizes, p.subspan(i), q.view())) return;
      q.push_back(p[i]);
    }
  }

  SearchContext& ctx_;
  const FairBcemSearchOptions& search_;
  ContextSplitter* const splitter_;
  const std::uint32_t min_upper_;
  const AttrId num_attrs_;
  /// True only while the root node of a parallel task is being branched.
  bool allow_split_ = false;
};

}  // namespace

EnumStats FairBcemRun(const BipartiteGraph& g, const FairBicliqueParams& params,
                      std::uint32_t min_upper, const EnumOptions& options,
                      const FairBcemSearchOptions& search,
                      const BicliqueSink& sink) {
  if (g.NumUpper() == 0 || g.NumLower() == 0) {
    return {};
  }
  SpecFairnessPolicy policy(params.LowerSpec());
  SearchBudget local_budget(options);
  SearchBudget& budget = options.shared_budget != nullptr
                             ? *options.shared_budget
                             : local_budget;
  const std::vector<VertexId> upper_all = AllVertices(g, Side::kUpper);
  const std::vector<VertexId> candidates =
      MakeOrder(g, Side::kLower, options.ordering);

  EnumStats stats;
  const unsigned num_threads = ResolveNumThreads(options.num_threads);
  if (num_threads <= 1) {
    SearchContext ctx(g, options, policy, budget, sink);
    FairBcemEngine(ctx, search, min_upper).Run(upper_all, candidates);
    stats = ctx.stats();
    stats.peak_struct_bytes =
        std::max(stats.peak_struct_bytes, ctx.arena().HighWaterBytes());
  } else {
    auto contexts = FanOutRootBranches<std::unique_ptr<SearchContext>>(
        num_threads, candidates.size(),
        [&](unsigned) {
          return std::make_unique<SearchContext>(g, options, policy, budget,
                                                 sink);
        },
        [&](SearchContext& ctx, std::uint64_t task, ContextSplitter& splitter) {
          TraceSpan span(options.trace, "root");
          FairBcemEngine(ctx, search, min_upper, &splitter)
              .RunRootBranch(upper_all, candidates, task);
        });
    for (const auto& ctx : contexts) {
      MergeEnumStats(stats, ctx->stats());
      stats.peak_struct_bytes =
          std::max(stats.peak_struct_bytes, ctx->arena().HighWaterBytes());
    }
  }
  stats.budget_exhausted = budget.exhausted();
  stats.remaining_upper = g.NumUpper();
  stats.remaining_lower = g.NumLower();
  return stats;
}

}  // namespace fairbc
