#include "core/fair_bcem.h"

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "core/intersect.h"
#include "core/ordering.h"
#include "core/parallel.h"
#include "core/search_context.h"
#include "fairness/fair_vector.h"

namespace fairbc {

namespace {

class FairBcemEngine;
using ContextSplitter = SubtreeSplitter<std::unique_ptr<SearchContext>>;

// FairBCEM recursion (paper Alg. 5) on the shared SearchContext layer:
// the context owns stats, budget, fairness policy and sink; this class
// owns only the branch-and-bound logic. Root-level branches are
// independent (branch i's exclusion set is exactly the candidates before
// it), which is what the parallel fan-out in FairBcemRun exploits; a
// root branch whose subtree dominates re-submits its depth-1 children to
// the pool once the queue runs dry (depth-adaptive splitting).
class FairBcemEngine {
 public:
  FairBcemEngine(SearchContext& ctx, const FairBcemSearchOptions& search,
                 std::uint32_t min_upper, ContextSplitter* splitter = nullptr)
      : ctx_(ctx),
        search_(search),
        splitter_(splitter),
        min_upper_(std::max(min_upper, 1u)),
        num_attrs_(ctx.graph().NumAttrs(Side::kLower)) {}

  /// Full serial search; traversal (and node accounting) is identical to
  /// running every root branch in candidate order.
  void Run(const std::vector<VertexId>& upper_all,
           const std::vector<VertexId>& candidates) {
    Recurse(upper_all, {}, candidates, {});
  }

  /// One root-level subtree: the branch on candidates[root] with the
  /// exclusion prefix candidates[0..root).
  void RunRootBranch(const std::vector<VertexId>& upper_all,
                     const std::vector<VertexId>& candidates,
                     std::size_t root) {
    allow_split_ = splitter_ != nullptr;
    std::span<const VertexId> all(candidates);
    Branch(upper_all, {}, SizeVector(num_attrs_, 0), all.subspan(root),
           all.first(root));
  }

  /// One depth-1 child of a split subtree (never splits again).
  void RunSubtreeChild(const std::shared_ptr<const SubtreeBatch>& batch,
                       std::size_t child) {
    allow_split_ = false;
    const std::vector<VertexId> q = batch->ExclusionFor(child);
    const SizeVector r_sizes = ctx_.ClassSizes(Side::kLower, batch->r);
    std::span<const VertexId> p(batch->p);
    Branch(batch->big_l, batch->r, r_sizes, p.subspan(child), q);
  }

 private:
  std::uint32_t CandidateThreshold() const {
    return search_.filter_candidates_alpha ? min_upper_ : 1u;
  }

  // Emits (upper, lower) if the maximality check against `ground_sizes`
  // passes. `lower_sizes` must be the class sizes of `lower`.
  void MaybeEmit(const std::vector<VertexId>& upper,
                 std::vector<VertexId> lower, const SizeVector& lower_sizes,
                 const SizeVector& ground_sizes) {
    if (upper.size() < min_upper_) return;
    if (!ctx_.policy().Feasible(lower_sizes)) return;
    if (!ctx_.policy().MaximalWithin(lower_sizes, ground_sizes)) return;
    Biclique b;
    b.upper = upper;
    b.lower = std::move(lower);
    std::sort(b.lower.begin(), b.lower.end());
    ctx_.Emit(b);
  }

  // Processes the branch rooted at p[0] (remaining candidates p, exclusion
  // set q; `r_sizes` are the class sizes of r, computed once per level)
  // and recurses into its subtree. Returns false when the whole search
  // must stop (budget exhausted or sink abort).
  bool Branch(const std::vector<VertexId>& big_l,
              const std::vector<VertexId>& r, const SizeVector& r_sizes,
              std::span<const VertexId> p, std::span<const VertexId> q) {
    if (ctx_.ShouldStop()) return false;
    ctx_.CountNode();
    const BipartiteGraph& g = ctx_.graph();
    const VertexId x = p.front();

    std::vector<VertexId> new_l =
        Intersect(big_l, g.Neighbors(Side::kLower, x));

    bool viable = !new_l.empty();
    if (search_.prune_small_l && new_l.size() < min_upper_) viable = false;

    std::vector<VertexId> new_q;
    std::vector<VertexId> q_full;
    if (viable) {
      FilterCandidates(g, Side::kLower, q, new_l, CandidateThreshold(), &new_q,
                       &q_full);
      if (search_.prune_excluded_full && !q_full.empty()) {
        // Observation 2: one fully-connected excluded vertex per class
        // means no descendant can be maximal.
        SizeVector cover(num_attrs_, 0);
        for (VertexId v : q_full) ++cover[g.Attr(Side::kLower, v)];
        bool all_covered = true;
        for (auto c : cover) {
          if (c == 0) {
            all_covered = false;
            break;
          }
        }
        if (all_covered) viable = false;
      }
    }
    if (!viable) return true;

    std::vector<VertexId> new_p;
    std::vector<VertexId> p_full;
    FilterCandidates(g, Side::kLower, p.subspan(1), new_l,
                     CandidateThreshold(), &new_p, &p_full);

    std::vector<VertexId> new_r = r;
    new_r.push_back(x);
    SizeVector new_r_sizes = r_sizes;
    ++new_r_sizes[g.Attr(Side::kLower, x)];
    SizeVector ground_sizes = new_r_sizes;
    for (VertexId v : p_full) ++ground_sizes[g.Attr(Side::kLower, v)];
    for (VertexId v : q_full) ++ground_sizes[g.Attr(Side::kLower, v)];

    bool shortcut = false;
    // p_full ⊆ new_p requires |new_l| >= threshold; only then does the
    // size equality mean "every remaining candidate is fully connected".
    if (search_.absorb_full_candidates &&
        new_l.size() >= CandidateThreshold() &&
        new_p.size() == p_full.size()) {
      // Observation 4: every remaining candidate is fully connected.
      SizeVector all_sizes = new_r_sizes;
      for (VertexId v : p_full) ++all_sizes[g.Attr(Side::kLower, v)];
      if (ctx_.policy().Feasible(all_sizes)) {
        std::vector<VertexId> all_r = new_r;
        all_r.insert(all_r.end(), p_full.begin(), p_full.end());
        MaybeEmit(new_l, std::move(all_r), all_sizes, ground_sizes);
        shortcut = true;
      }
    }

    if (!shortcut) {
      MaybeEmit(new_l, new_r, new_r_sizes, ground_sizes);
      if (ctx_.budget().aborted()) return false;
      if (!new_p.empty()) {
        bool reachable = true;
        if (search_.prune_class_counts) {
          // Observation 5 (second half): every class must be able to
          // reach beta from R' plus the candidate pool.
          SizeVector pool = new_r_sizes;
          for (VertexId v : new_p) ++pool[g.Attr(Side::kLower, v)];
          reachable = ctx_.policy().Reachable(pool);
        }
        if (reachable) {
          if (!TrySplit(new_l, new_r, new_p, new_q)) {
            Recurse(new_l, new_r, new_p, std::move(new_q));
          }
          if (ctx_.ShouldStop()) return false;
        }
      }
    }
    return !ctx_.budget().aborted();
  }

  // Depth-adaptive task splitting: a root task re-checks the pool queue
  // at every descend point of its serial walk and, at the first node
  // where the queue has run dry, hands that node's depth-1 children to
  // the pool (with the exact exclusion prefixes the serial loop would
  // have used) instead of walking them while other workers starve.
  // Split children never split again, and a split only fires on a
  // near-empty queue, so the task count stays bounded. Returns true when
  // the subtree was handed to the pool.
  bool TrySplit(const std::vector<VertexId>& big_l,
                const std::vector<VertexId>& r, const std::vector<VertexId>& p,
                const std::vector<VertexId>& q) {
    if (!allow_split_ || splitter_ == nullptr) return false;
    if (p.size() < 2 || !splitter_->ShouldSplit()) return false;
    ++ctx_.stats().split_subtrees;
    auto batch = std::make_shared<SubtreeBatch>();
    batch->big_l = big_l;
    batch->r = r;
    batch->p = p;
    batch->q = q;
    const FairBcemSearchOptions* search = &search_;
    const std::uint32_t min_upper = min_upper_;
    for (std::size_t child = 0; child < batch->p.size(); ++child) {
      splitter_->Submit(
          [batch, child, search, min_upper](SearchContext& ctx) {
            FairBcemEngine(ctx, *search, min_upper)
                .RunSubtreeChild(batch, child);
          });
    }
    return true;
  }

  // Branches on every candidate of p in order, growing the exclusion set.
  void Recurse(const std::vector<VertexId>& big_l,
               const std::vector<VertexId>& r, const std::vector<VertexId>& p,
               std::vector<VertexId> q) {
    const SizeVector r_sizes = ctx_.ClassSizes(Side::kLower, r);
    std::span<const VertexId> rest(p);
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (!Branch(big_l, r, r_sizes, rest.subspan(i), q)) return;
      q.push_back(p[i]);
    }
  }

  SearchContext& ctx_;
  const FairBcemSearchOptions& search_;
  ContextSplitter* const splitter_;
  const std::uint32_t min_upper_;
  const AttrId num_attrs_;
  /// True only while the root node of a parallel task is being branched.
  bool allow_split_ = false;
};

}  // namespace

EnumStats FairBcemRun(const BipartiteGraph& g, const FairBicliqueParams& params,
                      std::uint32_t min_upper, const EnumOptions& options,
                      const FairBcemSearchOptions& search,
                      const BicliqueSink& sink) {
  if (g.NumUpper() == 0 || g.NumLower() == 0) {
    return {};
  }
  SpecFairnessPolicy policy(params.LowerSpec());
  SearchBudget budget(options);
  const std::vector<VertexId> upper_all = AllVertices(g, Side::kUpper);
  const std::vector<VertexId> candidates =
      MakeOrder(g, Side::kLower, options.ordering);

  EnumStats stats;
  const unsigned num_threads = ResolveNumThreads(options.num_threads);
  if (num_threads <= 1) {
    SearchContext ctx(g, options, policy, budget, sink);
    FairBcemEngine(ctx, search, min_upper).Run(upper_all, candidates);
    stats = ctx.stats();
  } else {
    auto contexts = FanOutRootBranches<std::unique_ptr<SearchContext>>(
        num_threads, candidates.size(),
        [&](unsigned) {
          return std::make_unique<SearchContext>(g, options, policy, budget,
                                                 sink);
        },
        [&](SearchContext& ctx, std::uint64_t task, ContextSplitter& splitter) {
          FairBcemEngine(ctx, search, min_upper, &splitter)
              .RunRootBranch(upper_all, candidates, task);
        });
    for (const auto& ctx : contexts) MergeEnumStats(stats, ctx->stats());
  }
  stats.budget_exhausted = budget.exhausted();
  stats.remaining_upper = g.NumUpper();
  stats.remaining_lower = g.NumLower();
  return stats;
}

}  // namespace fairbc
