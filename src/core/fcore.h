#ifndef FAIRBC_CORE_FCORE_H_
#define FAIRBC_CORE_FCORE_H_

#include <cstdint>

#include "graph/bipartite_graph.h"

namespace fairbc {

class ReductionContext;

/// Fair α-β core pruning (paper Alg. 1, FCore).
///
/// Computes the unique maximal subgraph in which every surviving upper
/// vertex has attribute degree >= beta for *every* lower attribute class
/// and every surviving lower vertex has degree >= alpha. By Lemma 1 every
/// single-side fair biclique lives inside it. Linear-time peeling
/// (Batagelj–Zaversnik style). Returns alive masks over `g`.
///
/// All peeling entry points take an optional `ReductionContext`: a null
/// context (or one without a pool) runs the exact serial peel
/// (deterministic traversal order); a context carrying a pool runs
/// frontier-based bulk-synchronous rounds with atomic degree counters.
/// The surviving vertex set is identical either way — the core is the
/// unique maximal fixpoint, so peel order cannot change it. Wall-clock
/// accumulates into the context's peel phase timer.
SideMasks FCore(const BipartiteGraph& g, std::uint32_t alpha,
                std::uint32_t beta, ReductionContext* ctx = nullptr);

/// Bi-fair α-β core pruning (paper Def. 13, BFCore): like FCore but the
/// lower side also uses attribute degrees — every surviving lower vertex
/// needs attribute degree >= alpha for every *upper* attribute class
/// (Lemma 3: every bi-side fair biclique lives inside it).
SideMasks BFCore(const BipartiteGraph& g, std::uint32_t alpha,
                 std::uint32_t beta, ReductionContext* ctx = nullptr);

/// In-place variants restricted to the already-alive vertices in `masks`
/// (used by CFCore/BCFCore which interleave core pruning with colorful
/// pruning, paper Alg. 2 lines 1 and 27).
void FCoreInPlace(const BipartiteGraph& g, std::uint32_t alpha,
                  std::uint32_t beta, SideMasks& masks,
                  ReductionContext* ctx = nullptr);
void BFCoreInPlace(const BipartiteGraph& g, std::uint32_t alpha,
                   std::uint32_t beta, SideMasks& masks,
                   ReductionContext* ctx = nullptr);

/// Reference implementation used by tests: repeatedly delete violating
/// vertices until fixpoint, quadratic but obviously correct.
SideMasks FCoreNaive(const BipartiteGraph& g, std::uint32_t alpha,
                     std::uint32_t beta, bool bi_side);

}  // namespace fairbc

#endif  // FAIRBC_CORE_FCORE_H_
