#ifndef FAIRBC_CORE_ORDERING_H_
#define FAIRBC_CORE_ORDERING_H_

#include <vector>

#include "core/enumerate.h"
#include "graph/bipartite_graph.h"

namespace fairbc {

/// Candidate processing order for the branch-and-bound search (§V-A,
/// Table II): `kId` returns ascending ids, `kDegreeDesc` non-increasing
/// degree with id tie-break.
std::vector<VertexId> MakeOrder(const BipartiteGraph& g, Side side,
                                VertexOrdering ordering);

}  // namespace fairbc

#endif  // FAIRBC_CORE_ORDERING_H_
