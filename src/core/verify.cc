#include "core/verify.h"

#include <algorithm>
#include <set>
#include <string>

#include "fairness/fair_set.h"

namespace fairbc {

namespace {

// All vertices of `side` adjacent to every vertex in `other_set` (which
// lives on the opposite side). Quadratic but independent of the
// engines' merge-based intersections — this module is a checker.
std::vector<VertexId> AdjacentToAll(const BipartiteGraph& g, Side side,
                                    const std::vector<VertexId>& other_set) {
  std::vector<VertexId> out;
  out.reserve(g.NumVertices(side));  // every vertex may qualify.
  for (VertexId v = 0; v < g.NumVertices(side); ++v) {
    bool all = true;
    for (VertexId w : other_set) {
      bool edge = side == Side::kLower ? g.HasEdge(w, v) : g.HasEdge(v, w);
      if (!edge) {
        all = false;
        break;
      }
    }
    if (all) out.push_back(v);
  }
  return out;
}

Status CheckBasicStructure(const BipartiteGraph& g, const Biclique& b) {
  if (b.upper.empty() || b.lower.empty()) {
    return Status::InvalidArgument("biclique has an empty side");
  }
  for (VertexId u : b.upper) {
    if (u >= g.NumUpper()) {
      return Status::InvalidArgument("upper vertex id out of range");
    }
  }
  for (VertexId v : b.lower) {
    if (v >= g.NumLower()) {
      return Status::InvalidArgument("lower vertex id out of range");
    }
  }
  std::set<VertexId> us(b.upper.begin(), b.upper.end());
  std::set<VertexId> vs(b.lower.begin(), b.lower.end());
  if (us.size() != b.upper.size() || vs.size() != b.lower.size()) {
    return Status::InvalidArgument("duplicate vertex inside a side");
  }
  for (VertexId u : b.upper) {
    for (VertexId v : b.lower) {
      if (!g.HasEdge(u, v)) {
        return Status::InvalidArgument(
            "missing edge (" + std::to_string(u) + "," + std::to_string(v) +
            "): not a biclique");
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status VerifyFairBiclique(const BipartiteGraph& g, const Biclique& b,
                          const FairBicliqueParams& params, FairModel model) {
  FAIRBC_RETURN_IF_ERROR(CheckBasicStructure(g, b));
  const FairnessSpec lower_spec = params.LowerSpec();
  if (!IsFairSet(g, Side::kLower, b.lower, lower_spec)) {
    return Status::InvalidArgument("lower side is not a fair set");
  }

  if (model == FairModel::kSsfbc) {
    if (b.upper.size() < params.alpha) {
      return Status::InvalidArgument("|upper| < alpha");
    }
    // An SSFBC's upper side must be the full common neighborhood of its
    // lower side (otherwise (N∩(Y), Y) is a satisfying strict superset).
    std::vector<VertexId> hood = AdjacentToAll(g, Side::kUpper, b.lower);
    if (hood.size() != b.upper.size()) {
      return Status::InvalidArgument(
          "upper side is not the full common neighborhood of the lower side");
    }
    // Maximality: no fair superset of Y inside the vertices adjacent to
    // all of X.
    std::vector<VertexId> ground = AdjacentToAll(g, Side::kLower, b.upper);
    if (!IsMaximalFairSubset(g, Side::kLower, b.lower, ground, lower_spec)) {
      return Status::InvalidArgument(
          "lower side is fairly extendable: not maximal");
    }
    return Status::OK();
  }

  // Bi-side model.
  const FairnessSpec upper_spec = params.UpperSpec();
  if (!IsFairSet(g, Side::kUpper, b.upper, upper_spec)) {
    return Status::InvalidArgument("upper side is not a fair set");
  }
  std::vector<VertexId> upper_ground = AdjacentToAll(g, Side::kUpper, b.lower);
  if (!IsMaximalFairSubset(g, Side::kUpper, b.upper, upper_ground,
                           upper_spec)) {
    return Status::InvalidArgument(
        "upper side is fairly extendable: not maximal");
  }
  std::vector<VertexId> lower_ground = AdjacentToAll(g, Side::kLower, b.upper);
  if (!IsMaximalFairSubset(g, Side::kLower, b.lower, lower_ground,
                           lower_spec)) {
    return Status::InvalidArgument(
        "lower side is fairly extendable: not maximal");
  }
  return Status::OK();
}

Status VerifyResultSet(const BipartiteGraph& g,
                       const std::vector<Biclique>& results,
                       const FairBicliqueParams& params, FairModel model) {
  std::set<Biclique> seen;
  for (std::size_t i = 0; i < results.size(); ++i) {
    Biclique canonical = results[i];
    std::sort(canonical.upper.begin(), canonical.upper.end());
    std::sort(canonical.lower.begin(), canonical.lower.end());
    if (!seen.insert(canonical).second) {
      return Status::InvalidArgument("duplicate result at index " +
                                     std::to_string(i));
    }
    Status st = VerifyFairBiclique(g, results[i], params, model);
    if (!st.ok()) {
      return Status::InvalidArgument("result " + std::to_string(i) + ": " +
                                     st.message());
    }
  }
  return Status::OK();
}

}  // namespace fairbc
