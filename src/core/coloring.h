#ifndef FAIRBC_CORE_COLORING_H_
#define FAIRBC_CORE_COLORING_H_

#include <cstdint>
#include <vector>

#include "core/two_hop_graph.h"

namespace fairbc {

/// Color assignment produced by greedy coloring; colors are dense from 0.
struct Coloring {
  std::vector<std::uint32_t> color;
  std::uint32_t num_colors = 0;
};

/// Degree-ordered greedy coloring (paper §III-B / [35]): vertices are
/// processed by non-increasing degree, each taking the smallest color
/// absent from its neighborhood. Guaranteed proper; at most max_degree+1
/// colors. Vertices with `alive[v] == 0` are skipped (color 0, unused).
Coloring GreedyColor(const UnipartiteGraph& h, const std::vector<char>& alive);

/// True iff no edge of `h` connects two equal colors (test helper).
bool IsProperColoring(const UnipartiteGraph& h, const std::vector<char>& alive,
                      const Coloring& coloring);

}  // namespace fairbc

#endif  // FAIRBC_CORE_COLORING_H_
