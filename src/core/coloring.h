#ifndef FAIRBC_CORE_COLORING_H_
#define FAIRBC_CORE_COLORING_H_

#include <cstdint>
#include <vector>

#include "core/two_hop_graph.h"

namespace fairbc {

class ReductionContext;

/// Color assignment produced by the coloring kernels; colors are dense
/// from 0.
struct Coloring {
  std::vector<std::uint32_t> color;
  std::uint32_t num_colors = 0;

  bool operator==(const Coloring& other) const = default;
};

/// Degree-ordered greedy coloring (paper §III-B / [35]): vertices are
/// processed by non-increasing degree (ties by ascending id), each taking
/// the smallest color absent from its already-colored neighborhood.
/// Guaranteed proper; at most max_degree+1 colors. Vertices with
/// `alive[v] == 0` are skipped (color 0, unused). This is the exact
/// serial kernel the reduction runs at num_threads == 1.
Coloring GreedyColor(const UnipartiteGraph& h, const std::vector<char>& alive);

/// Deterministic Jones–Plassmann coloring with degree-then-id priorities:
/// vertex `v` outranks `w` iff deg(v) > deg(w), ties broken by smaller
/// id. Each round colors every uncolored vertex whose uncolored alive
/// neighbors are all lower-priority, assigning the smallest color absent
/// among its higher-priority neighbors.
///
/// Because the priority order is a fixed total order, the fixpoint is
/// `color(v) = mex{color(w) : w alive neighbor, w outranks v}` — exactly
/// the assignment GreedyColor computes — so the output is byte-identical
/// to GreedyColor at *every* thread count, serial rounds included. The
/// rounds only parallelize the evaluation of that unique fixpoint.
Coloring JonesPlassmannColor(const UnipartiteGraph& h,
                             const std::vector<char>& alive,
                             ReductionContext* ctx = nullptr);

/// True iff no edge of `h` connects two equal colors (test helper).
bool IsProperColoring(const UnipartiteGraph& h, const std::vector<char>& alive,
                      const Coloring& coloring);

}  // namespace fairbc

#endif  // FAIRBC_CORE_COLORING_H_
