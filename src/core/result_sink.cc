#include "core/result_sink.h"

#include <algorithm>

#include "core/search_context.h"

namespace fairbc {

void TopKKeeper::Offer(const Biclique& b) {
  std::pair<std::uint64_t, Biclique> cand(
      RankValue(b.upper.size(), b.lower.size(), rank_), b);
  if (entries_.size() >= k_ && !Better(cand, entries_.back())) return;
  auto pos = std::upper_bound(entries_.begin(), entries_.end(), cand, Better);
  entries_.insert(pos, std::move(cand));
  if (entries_.size() > k_) entries_.pop_back();
}

std::vector<Biclique> TopKKeeper::Take() {
  std::vector<Biclique> out;
  out.reserve(entries_.size());
  for (auto& entry : entries_) out.push_back(std::move(entry.second));
  entries_.clear();
  return out;
}

ChunkSink::ChunkSink(std::size_t chunk_results, FlushFn flush,
                     const SearchBudget* budget)
    : chunk_results_(chunk_results < 1 ? 1 : chunk_results),
      flush_(std::move(flush)), budget_(budget) {
  buffer_.reserve(chunk_results_);
}

bool ChunkSink::Flush() {
  StreamCheckpoint checkpoint;
  checkpoint.results = results_;
  checkpoint.nodes = budget_ != nullptr ? budget_->nodes() : 0;
  ++chunks_;
  std::vector<Biclique> chunk;
  chunk.swap(buffer_);
  buffer_.reserve(chunk_results_);
  if (!flush_(std::move(chunk), checkpoint)) {
    aborted_ = true;
    return false;
  }
  return true;
}

bool ChunkSink::Accept(const Biclique& b) {
  if (aborted_) return false;
  buffer_.push_back(b);
  ++results_;
  if (buffer_.size() >= chunk_results_) return Flush();
  return true;
}

void ChunkSink::Finish() {
  // The final flush always runs (even for an empty result set) so the
  // stream carries at least one chunk and its terminal checkpoint —
  // unless a mid-run flush already aborted.
  if (!aborted_ && (!buffer_.empty() || chunks_ == 0)) Flush();
}

}  // namespace fairbc
