#ifndef FAIRBC_FAIRNESS_FAIR_SET_H_
#define FAIRBC_FAIRNESS_FAIR_SET_H_

#include <span>
#include <vector>

#include "common/types.h"
#include "fairness/fair_vector.h"
#include "graph/bipartite_graph.h"

namespace fairbc {

/// Class-size vector of a vertex set on one side of `g`.
SizeVector AttrSizes(const BipartiteGraph& g, Side side,
                     std::span<const VertexId> vertices);

/// True iff `vertices` is a fair set (Def. 11) under `spec` (with the
/// optional Def. 5 ratio constraint).
bool IsFairSet(const BipartiteGraph& g, Side side,
               std::span<const VertexId> vertices, const FairnessSpec& spec);

/// Paper Alg. 4 (MFSCheck), generalized: is `subset` a maximal fair subset
/// of `ground` (Def. 12)? Both are vertex sets on `side`; `subset` need
/// not be materialized as indices into `ground`. Implemented via the
/// size-vector characterization (DESIGN.md §1 fact 2).
bool IsMaximalFairSubset(const BipartiteGraph& g, Side side,
                         std::span<const VertexId> subset,
                         std::span<const VertexId> ground,
                         const FairnessSpec& spec);

}  // namespace fairbc

#endif  // FAIRBC_FAIRNESS_FAIR_SET_H_
