#include "fairness/fair_vector.h"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "common/status.h"

namespace fairbc {

namespace {

constexpr double kRatioEps = 1e-9;

// Ratio constraint t_i >= theta * sum(t) evaluated with a small epsilon so
// values like theta = 0.4 on integer sums behave exactly.
bool RatioOk(SizeSpan t, double theta) {
  if (theta <= 0.0) return true;
  std::uint64_t sum = 0;
  for (auto x : t) sum += x;
  if (sum == 0) return true;  // Vacuous on the empty set.
  for (auto x : t) {
    if (static_cast<double>(x) + kRatioEps < theta * static_cast<double>(sum)) {
      return false;
    }
  }
  return true;
}

// Largest integer value allowed per class when the minimum class size is
// `m`: floor(m * (1 - theta) / theta), i.e. the `msize*(1-theta)/theta`
// cap of the paper's CombinationPro. Only meaningful for two classes.
std::uint64_t ProportionalCapTwoClasses(std::uint64_t m, double theta) {
  if (theta <= 0.0) return std::numeric_limits<std::uint64_t>::max();
  double cap = static_cast<double>(m) * (1.0 - theta) / theta;
  if (cap >= 1e18) return std::numeric_limits<std::uint64_t>::max();
  return static_cast<std::uint64_t>(cap + kRatioEps);
}

}  // namespace

bool IsFeasibleVector(SizeSpan sizes, const FairnessSpec& spec) {
  if (sizes.empty()) return true;
  std::uint32_t lo = sizes[0], hi = sizes[0];
  for (auto s : sizes) {
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  if (lo < spec.min_per_class) return false;
  if (hi - lo > spec.delta) return false;
  return RatioOk(sizes, spec.theta);
}

bool StrictlyDominated(SizeSpan a, SizeSpan b) {
  FAIRBC_CHECK(a.size() == b.size());
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) differs = true;
  }
  return differs;
}

namespace {

// Closed form for theta == 0 (any class count) and for <= 2 classes with
// theta: the unique maximal vector t*_i = min(c_i, m + delta [, ratio
// cap]). See DESIGN.md §1 fact 2 for the domination proof.
std::vector<SizeVector> ClosedFormMaximal(const SizeVector& counts,
                                          const FairnessSpec& spec) {
  std::uint32_t m = *std::min_element(counts.begin(), counts.end());
  std::uint64_t ratio_cap = spec.proportional() && counts.size() >= 2
                                ? ProportionalCapTwoClasses(m, spec.theta)
                                : std::numeric_limits<std::uint64_t>::max();
  SizeVector t(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    std::uint64_t cap =
        std::min<std::uint64_t>(counts[i],
                                static_cast<std::uint64_t>(m) + spec.delta);
    cap = std::min(cap, ratio_cap);
    t[i] = static_cast<std::uint32_t>(cap);
  }
  if (!IsFeasibleVector(t, spec)) return {};
  return {t};
}

// General exact search for >= 3 classes with a proportional constraint:
// for every candidate minimum mm, enumerate locally-maximal compositions,
// then drop dominated vectors. Exotic path; the paper's experiments use
// two classes per side.
std::vector<SizeVector> GeneralMaximal(const SizeVector& counts,
                                       const FairnessSpec& spec) {
  const std::size_t n = counts.size();
  std::uint32_t m = *std::min_element(counts.begin(), counts.end());
  std::vector<SizeVector> candidates;

  for (std::uint32_t mm = m;; --mm) {
    if (mm < spec.min_per_class) break;
    SizeVector caps(n);
    std::uint64_t total_cap = 0;
    for (std::size_t i = 0; i < n; ++i) {
      caps[i] = static_cast<std::uint32_t>(std::min<std::uint64_t>(
          counts[i], static_cast<std::uint64_t>(mm) + spec.delta));
      total_cap += caps[i];
    }
    // Max total size S with mm >= theta * S.
    auto budget = static_cast<std::uint64_t>(
        static_cast<double>(mm) / spec.theta + kRatioEps);
    if (static_cast<std::uint64_t>(n) * mm > budget) {
      if (mm == 0) break;
      continue;
    }
    std::uint64_t target = std::min(total_cap, budget);

    // Enumerate compositions T with sum == target, mm <= T_i <= caps_i and
    // min(T) == mm.
    SizeVector t(n, 0);
    auto dfs = [&](auto&& self, std::size_t idx, std::uint64_t remaining,
                   bool has_min) -> void {
      if (idx == n) {
        if (remaining == 0 && has_min && IsFeasibleVector(t, spec)) {
          candidates.push_back(t);
        }
        return;
      }
      std::uint64_t lo = mm, hi = caps[idx];
      for (std::uint64_t x = lo; x <= hi && x <= remaining; ++x) {
        t[idx] = static_cast<std::uint32_t>(x);
        self(self, idx + 1, remaining - x, has_min || x == mm);
      }
      t[idx] = 0;
    };
    dfs(dfs, 0, target, false);
    if (mm == 0) break;
  }

  // Keep only non-dominated, deduplicated vectors.
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  std::vector<SizeVector> maximal;
  for (const auto& a : candidates) {
    bool dominated = false;
    for (const auto& b : candidates) {
      if (StrictlyDominated(a, b)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) maximal.push_back(a);
  }
  return maximal;
}

}  // namespace

std::vector<SizeVector> MaximalFairVectors(const SizeVector& counts,
                                           const FairnessSpec& spec) {
  if (counts.empty()) return {SizeVector{}};
  for (auto c : counts) {
    if (c < spec.min_per_class) return {};
  }
  if (!spec.proportional() || counts.size() <= 2) {
    return ClosedFormMaximal(counts, spec);
  }
  return GeneralMaximal(counts, spec);
}

bool IsMaximalFairVector(SizeSpan sizes, SizeSpan counts,
                         const FairnessSpec& spec) {
  if (sizes.size() != counts.size()) return false;
  if (!IsFeasibleVector(sizes, spec)) return false;
  if (counts.empty()) return true;
  for (auto c : counts) {
    if (c < spec.min_per_class) return false;
  }
  if (!spec.proportional() || counts.size() <= 2) {
    // Closed-form unique maximal vector (see ClosedFormMaximal), compared
    // slot by slot with no materialization. `sizes` is feasible and must
    // match t* exactly, so t*'s own feasibility holds whenever we return
    // true and never needs a separate check.
    std::uint32_t m = *std::min_element(counts.begin(), counts.end());
    std::uint64_t ratio_cap = spec.proportional() && counts.size() >= 2
                                  ? ProportionalCapTwoClasses(m, spec.theta)
                                  : std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      std::uint64_t cap = std::min<std::uint64_t>(
          counts[i], static_cast<std::uint64_t>(m) + spec.delta);
      cap = std::min(cap, ratio_cap);
      if (sizes[i] != cap) return false;
    }
    return true;
  }
  SizeVector sizes_vec(sizes.begin(), sizes.end());
  for (const auto& t :
       MaximalFairVectors(SizeVector(counts.begin(), counts.end()), spec)) {
    if (t == sizes_vec) return true;
  }
  return false;
}

std::uint64_t BinomialSaturated(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  unsigned __int128 result = 1;
  constexpr unsigned __int128 kMax = std::numeric_limits<std::uint64_t>::max();
  for (std::uint64_t i = 1; i <= k; ++i) {
    result = result * (n - k + i);
    result /= i;
    if (result > kMax) return std::numeric_limits<std::uint64_t>::max();
  }
  return static_cast<std::uint64_t>(result);
}

std::uint64_t CountMaximalFairSubsets(const SizeVector& counts,
                                      const FairnessSpec& spec) {
  std::uint64_t total = 0;
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  for (const auto& t : MaximalFairVectors(counts, spec)) {
    unsigned __int128 prod = 1;
    for (std::size_t i = 0; i < t.size(); ++i) {
      prod *= BinomialSaturated(counts[i], t[i]);
      if (prod > kMax) return kMax;
    }
    auto p = static_cast<std::uint64_t>(prod);
    if (total > kMax - p) return kMax;
    total += p;
  }
  return total;
}

}  // namespace fairbc
