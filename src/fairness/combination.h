#ifndef FAIRBC_FAIRNESS_COMBINATION_H_
#define FAIRBC_FAIRNESS_COMBINATION_H_

#include <functional>
#include <span>
#include <vector>

#include "common/types.h"
#include "fairness/fair_vector.h"
#include "graph/bipartite_graph.h"

namespace fairbc {

/// Callback receiving one maximal fair subset. Return false to stop the
/// enumeration early.
using SubsetSink = std::function<bool(std::span<const VertexId>)>;

/// Paper Alg. 7 (`Combination`) and its CombinationPro extension: streams
/// every *maximal fair subset* of `ground` (a vertex set on `side` of `g`)
/// under `spec`; with `spec.theta > 0` this is CombinationPro. Subsets are
/// emitted as sorted vertex-id arrays. Returns the number emitted (which
/// may be cut short by the sink).
///
/// The ground set is first partitioned by attribute class; for each
/// maximal fair size vector t the Cartesian product of per-class
/// t_i-subsets is generated (prod_i C(c_i, t_i) outputs).
std::uint64_t EnumerateMaximalFairSubsets(const BipartiteGraph& g, Side side,
                                          std::span<const VertexId> ground,
                                          const FairnessSpec& spec,
                                          const SubsetSink& sink);

/// Number of subsets EnumerateMaximalFairSubsets would emit, without
/// materializing them. Saturates at UINT64_MAX.
std::uint64_t CountMaximalFairSubsetsOf(const BipartiteGraph& g, Side side,
                                        std::span<const VertexId> ground,
                                        const FairnessSpec& spec);

}  // namespace fairbc

#endif  // FAIRBC_FAIRNESS_COMBINATION_H_
