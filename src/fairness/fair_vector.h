#ifndef FAIRBC_FAIRNESS_FAIR_VECTOR_H_
#define FAIRBC_FAIRNESS_FAIR_VECTOR_H_

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/types.h"

namespace fairbc {

/// Per-attribute-class size vector (index = AttrId, value = class size).
using SizeVector = std::vector<std::uint32_t>;

/// Non-owning view of a size vector; the engines pass arena-backed
/// counter blocks (core/kernels.h CountVec) through this without copying.
using SizeSpan = std::span<const std::uint32_t>;

/// Fairness constraints on one side. `theta <= 0` disables the
/// proportional constraint (plain SSFBC/BSFBC models); `theta > 0` adds
/// the Def. 5/6 ratio constraint `t_i / sum(t) >= theta`.
struct FairnessSpec {
  std::uint32_t min_per_class = 1;  ///< `alpha` or `beta` in the paper.
  std::uint32_t delta = 0;          ///< max pairwise class-size difference.
  double theta = 0.0;               ///< proportional threshold, 0 = off.

  bool proportional() const { return theta > 0.0; }
};

/// True iff `sizes` satisfies Def. 11 (and the ratio constraint when
/// `spec.proportional()`): every class >= min_per_class, pairwise
/// difference <= delta, and (optionally) each class fraction >= theta.
/// An all-zero vector with min_per_class == 0 is feasible by convention
/// (the empty set), except that the proportional constraint is vacuous on
/// an empty set.
bool IsFeasibleVector(SizeSpan sizes, const FairnessSpec& spec);
inline bool IsFeasibleVector(const SizeVector& sizes,
                             const FairnessSpec& spec) {
  return IsFeasibleVector(SizeSpan(sizes), spec);
}
// Braced-list convenience (`IsFeasibleVector({2, 3}, spec)`); an
// initializer_list parameter outranks both overloads above for any
// braced argument ([over.ics.rank]), which keeps `{}` unambiguous.
inline bool IsFeasibleVector(std::initializer_list<std::uint32_t> sizes,
                             const FairnessSpec& spec) {
  return IsFeasibleVector(SizeSpan(sizes.begin(), sizes.size()), spec);
}

/// True iff `a` is pointwise <= `b` and differs somewhere.
bool StrictlyDominated(SizeSpan a, SizeSpan b);
inline bool StrictlyDominated(const SizeVector& a, const SizeVector& b) {
  return StrictlyDominated(SizeSpan(a), SizeSpan(b));
}

/// All maximal feasible size vectors within per-class capacities `counts`:
/// feasible vectors t (t_i <= counts_i) such that no other feasible vector
/// within the capacities strictly dominates them.
///
/// For the plain model this is always a single vector
///   t*_i = min(counts_i, min_j counts_j + delta)
/// (paper Alg. 7's `csize`); with the proportional constraint and two
/// classes it is the single vector additionally capped by
/// floor(m (1-theta)/theta). For >2 classes with theta the maximum may be
/// non-unique, which this general search handles exactly. Returns an empty
/// list when no feasible vector exists (e.g. some counts_i < min_per_class).
std::vector<SizeVector> MaximalFairVectors(const SizeVector& counts,
                                           const FairnessSpec& spec);

/// Convenience: true iff `sizes` is one of MaximalFairVectors(counts).
/// This is the size-vector form of the paper's MFSCheck (Alg. 4): a subset
/// is a maximal fair subset of its ground set iff its class sizes match a
/// maximal feasible vector (see DESIGN.md §1 fact 2). Allocation-free
/// except on the exotic >2-classes-with-theta path: the closed-form
/// maximal vector is compared slot by slot, so this is safe to call once
/// per branch of the enumeration.
bool IsMaximalFairVector(SizeSpan sizes, SizeSpan counts,
                         const FairnessSpec& spec);
inline bool IsMaximalFairVector(const SizeVector& sizes,
                                const SizeVector& counts,
                                const FairnessSpec& spec) {
  return IsMaximalFairVector(SizeSpan(sizes), SizeSpan(counts), spec);
}

/// Number of subsets realizing the maximal vectors:
/// sum over maximal t of prod_i C(counts_i, t_i). Saturates at
/// UINT64_MAX on overflow.
std::uint64_t CountMaximalFairSubsets(const SizeVector& counts,
                                      const FairnessSpec& spec);

/// Binomial coefficient with saturation at UINT64_MAX.
std::uint64_t BinomialSaturated(std::uint64_t n, std::uint64_t k);

}  // namespace fairbc

#endif  // FAIRBC_FAIRNESS_FAIR_VECTOR_H_
