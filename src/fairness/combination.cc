#include "fairness/combination.h"

#include <algorithm>

#include "common/status.h"
#include "fairness/fair_set.h"

namespace fairbc {

namespace {

// Streams all size-k subsets of `cls` via the revolving-door order of
// index vectors; invokes `body` with the chosen vertices appended to
// `out` (and removed afterwards). Returns false if the body aborted.
bool ForEachKSubset(const std::vector<VertexId>& cls, std::uint32_t k,
                    std::vector<VertexId>& out,
                    const std::function<bool()>& body) {
  if (k > cls.size()) return true;
  if (k == 0) return body();
  std::vector<std::uint32_t> idx(k);
  for (std::uint32_t i = 0; i < k; ++i) idx[i] = i;
  while (true) {
    std::size_t base = out.size();
    for (std::uint32_t i = 0; i < k; ++i) out.push_back(cls[idx[i]]);
    bool keep_going = body();
    out.resize(base);
    if (!keep_going) return false;
    // Advance to the next combination (lexicographic).
    std::int64_t pos = static_cast<std::int64_t>(k) - 1;
    while (pos >= 0 &&
           idx[pos] == cls.size() - k + static_cast<std::uint32_t>(pos)) {
      --pos;
    }
    if (pos < 0) return true;
    ++idx[pos];
    for (std::uint32_t i = static_cast<std::uint32_t>(pos) + 1; i < k; ++i) {
      idx[i] = idx[i - 1] + 1;
    }
  }
}

}  // namespace

std::uint64_t EnumerateMaximalFairSubsets(const BipartiteGraph& g, Side side,
                                          std::span<const VertexId> ground,
                                          const FairnessSpec& spec,
                                          const SubsetSink& sink) {
  const AttrId num_attrs = g.NumAttrs(side);
  std::vector<std::vector<VertexId>> classes(num_attrs);
  for (VertexId v : ground) classes[g.Attr(side, v)].push_back(v);
  for (auto& cls : classes) std::sort(cls.begin(), cls.end());

  SizeVector counts(num_attrs);
  for (AttrId a = 0; a < num_attrs; ++a) {
    counts[a] = static_cast<std::uint32_t>(classes[a].size());
  }

  std::uint64_t emitted = 0;
  std::vector<VertexId> current;
  for (const SizeVector& t : MaximalFairVectors(counts, spec)) {
    current.clear();
    bool aborted = false;
    // Nested per-class k-subset loops, realized recursively.
    std::function<bool(AttrId)> recurse = [&](AttrId a) -> bool {
      if (a == num_attrs) {
        ++emitted;
        std::vector<VertexId> sorted(current);
        std::sort(sorted.begin(), sorted.end());
        return sink(sorted);
      }
      return ForEachKSubset(classes[a], t[a], current,
                            [&]() { return recurse(static_cast<AttrId>(a + 1)); });
    };
    if (!recurse(0)) aborted = true;
    if (aborted) break;
  }
  return emitted;
}

std::uint64_t CountMaximalFairSubsetsOf(const BipartiteGraph& g, Side side,
                                        std::span<const VertexId> ground,
                                        const FairnessSpec& spec) {
  SizeVector counts = AttrSizes(g, side, ground);
  return CountMaximalFairSubsets(counts, spec);
}

}  // namespace fairbc
