#include "fairness/fair_set.h"

namespace fairbc {

SizeVector AttrSizes(const BipartiteGraph& g, Side side,
                     std::span<const VertexId> vertices) {
  SizeVector sizes(g.NumAttrs(side), 0);
  for (VertexId v : vertices) ++sizes[g.Attr(side, v)];
  return sizes;
}

bool IsFairSet(const BipartiteGraph& g, Side side,
               std::span<const VertexId> vertices, const FairnessSpec& spec) {
  return IsFeasibleVector(AttrSizes(g, side, vertices), spec);
}

bool IsMaximalFairSubset(const BipartiteGraph& g, Side side,
                         std::span<const VertexId> subset,
                         std::span<const VertexId> ground,
                         const FairnessSpec& spec) {
  SizeVector sub_sizes = AttrSizes(g, side, subset);
  SizeVector ground_sizes = AttrSizes(g, side, ground);
  return IsMaximalFairVector(sub_sizes, ground_sizes, spec);
}

}  // namespace fairbc
