#include "graph/stats.h"

#include <algorithm>
#include <sstream>

#include "common/status.h"

namespace fairbc {

DegreeStats ComputeDegreeStats(const BipartiteGraph& g, Side side) {
  DegreeStats stats;
  const VertexId n = g.NumVertices(side);
  if (n == 0) return stats;
  stats.min_degree = g.Degree(side, 0);
  std::uint64_t total = 0;
  for (VertexId v = 0; v < n; ++v) {
    VertexId d = g.Degree(side, v);
    stats.min_degree = std::min(stats.min_degree, d);
    stats.max_degree = std::max(stats.max_degree, d);
    if (d == 0) ++stats.isolated;
    total += d;
  }
  stats.mean_degree = static_cast<double>(total) / static_cast<double>(n);
  return stats;
}

std::vector<VertexId> DegreeHistogram(const BipartiteGraph& g, Side side,
                                      VertexId max_degree) {
  std::vector<VertexId> hist(max_degree + 1, 0);
  for (VertexId v = 0; v < g.NumVertices(side); ++v) {
    ++hist[std::min(g.Degree(side, v), max_degree)];
  }
  return hist;
}

namespace {

// Wedge-counting sweep anchored on `side`: for every vertex v of `side`,
// walk v -> u -> w (two hops) counting |N(v) ∩ N(w)| for each co-hop
// partner w > v, then add C(common, 2) per pair.
std::uint64_t CountFromSide(const BipartiteGraph& g, Side side) {
  const VertexId n = g.NumVertices(side);
  const Side other = Opposite(side);
  std::vector<std::uint32_t> common(n, 0);
  std::vector<VertexId> touched;
  std::uint64_t butterflies = 0;
  for (VertexId v = 0; v < n; ++v) {
    touched.clear();
    for (VertexId u : g.Neighbors(side, v)) {
      for (VertexId w : g.Neighbors(other, u)) {
        if (w <= v) continue;  // count each pair once.
        if (common[w] == 0) touched.push_back(w);
        ++common[w];
      }
    }
    for (VertexId w : touched) {
      std::uint64_t c = common[w];
      butterflies += c * (c - 1) / 2;
      common[w] = 0;
    }
  }
  return butterflies;
}

std::uint64_t SumSquaredDegrees(const BipartiteGraph& g, Side side) {
  std::uint64_t sum = 0;
  for (VertexId v = 0; v < g.NumVertices(side); ++v) {
    std::uint64_t d = g.Degree(side, v);
    sum += d * d;
  }
  return sum;
}

}  // namespace

std::uint64_t CountButterflies(const BipartiteGraph& g) {
  if (g.NumUpper() == 0 || g.NumLower() == 0) return 0;
  // Anchoring on the side with the smaller wedge count is the vertex-
  // priority idea of BFC-VP in its coarsest form.
  Side anchor = SumSquaredDegrees(g, Side::kUpper) <=
                        SumSquaredDegrees(g, Side::kLower)
                    ? Side::kUpper
                    : Side::kLower;
  return CountFromSide(g, anchor);
}

std::uint64_t CountButterfliesNaive(const BipartiteGraph& g) {
  std::uint64_t butterflies = 0;
  for (VertexId a = 0; a < g.NumLower(); ++a) {
    for (VertexId b = a + 1; b < g.NumLower(); ++b) {
      auto na = g.Neighbors(Side::kLower, a);
      std::uint64_t common = 0;
      for (VertexId u : na) {
        auto nb = g.Neighbors(Side::kLower, b);
        if (std::binary_search(nb.begin(), nb.end(), u)) ++common;
      }
      butterflies += common * (common - 1) / 2;
    }
  }
  return butterflies;
}

double AttrImbalance(const BipartiteGraph& g, Side side) {
  const VertexId n = g.NumVertices(side);
  if (n == 0) return 0.0;
  auto counts = g.AttrCounts(side);
  VertexId largest = *std::max_element(counts.begin(), counts.end());
  return static_cast<double>(largest) / static_cast<double>(n);
}

std::string StatsReport(const BipartiteGraph& g) {
  std::ostringstream os;
  os << g.DebugString() << "\n";
  for (Side side : {Side::kUpper, Side::kLower}) {
    DegreeStats d = ComputeDegreeStats(g, side);
    os << "  " << ToString(side) << ": degree min/mean/max = "
       << d.min_degree << "/" << d.mean_degree << "/" << d.max_degree
       << ", isolated = " << d.isolated
       << ", attr imbalance = " << AttrImbalance(g, side) << "\n";
  }
  os << "  butterflies = " << CountButterflies(g) << "\n";
  return os.str();
}

}  // namespace fairbc
