#include "graph/attr_assign.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "graph/builder.h"

namespace fairbc {

BipartiteGraph ReassignAttrs(const BipartiteGraph& g, Side side,
                             AttrAssignment strategy, AttrId num_attrs,
                             std::uint64_t seed) {
  FAIRBC_CHECK(num_attrs >= 1);
  const VertexId n = g.NumVertices(side);
  std::vector<AttrId> attrs(n, 0);
  switch (strategy) {
    case AttrAssignment::kUniformRandom: {
      Rng rng(seed);
      for (VertexId v = 0; v < n; ++v) {
        attrs[v] = static_cast<AttrId>(rng.NextUInt64(num_attrs));
      }
      break;
    }
    case AttrAssignment::kByDegree: {
      std::vector<VertexId> order(n);
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
        return g.Degree(side, a) > g.Degree(side, b);
      });
      // Equal-frequency buckets: the top slice becomes class 0
      // ("popular"), the next class 1, ...
      for (VertexId rank = 0; rank < n; ++rank) {
        attrs[order[rank]] = static_cast<AttrId>(
            std::min<std::uint64_t>(num_attrs - 1,
                                    static_cast<std::uint64_t>(rank) *
                                        num_attrs / std::max<VertexId>(n, 1)));
      }
      break;
    }
    case AttrAssignment::kRoundRobin: {
      for (VertexId v = 0; v < n; ++v) {
        attrs[v] = static_cast<AttrId>(v % num_attrs);
      }
      break;
    }
  }

  BipartiteGraphBuilder builder(g.NumUpper(), g.NumLower());
  builder.SetNumAttrs(Side::kUpper, side == Side::kUpper
                                        ? num_attrs
                                        : g.NumAttrs(Side::kUpper));
  builder.SetNumAttrs(Side::kLower, side == Side::kLower
                                        ? num_attrs
                                        : g.NumAttrs(Side::kLower));
  std::vector<AttrId> up(g.NumUpper()), lo(g.NumLower());
  for (VertexId u = 0; u < g.NumUpper(); ++u) up[u] = g.Attr(Side::kUpper, u);
  for (VertexId v = 0; v < g.NumLower(); ++v) lo[v] = g.Attr(Side::kLower, v);
  if (side == Side::kUpper) {
    up = attrs;
  } else {
    lo = attrs;
  }
  builder.SetAttrs(Side::kUpper, std::move(up));
  builder.SetAttrs(Side::kLower, std::move(lo));
  for (VertexId u = 0; u < g.NumUpper(); ++u) {
    for (VertexId v : g.Neighbors(Side::kUpper, u)) builder.AddEdge(u, v);
  }
  auto result = builder.Build();
  FAIRBC_CHECK(result.ok());
  return std::move(result).value();
}

}  // namespace fairbc
