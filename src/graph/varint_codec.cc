#include "graph/varint_codec.h"

#include <algorithm>

namespace fairbc {

void AppendVarint(std::string* out, std::uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>(0x80u | (value & 0x7Fu)));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

std::size_t VarintSize(std::uint64_t value) {
  std::size_t size = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++size;
  }
  return size;
}

bool ReadVarint(const unsigned char** p, const unsigned char* end,
                std::uint64_t* value) {
  std::uint64_t result = 0;
  unsigned shift = 0;
  const unsigned char* cur = *p;
  while (cur < end) {
    const unsigned char byte = *cur++;
    if (shift == 63 && byte > 1) return false;  // would overflow 64 bits.
    result |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) {
      *p = cur;
      *value = result;
      return true;
    }
    shift += 7;
    if (shift > 63) return false;  // 11th continuation byte.
  }
  return false;  // truncated mid-varint.
}

void BitWriter::PushBit(bool bit) {
  cur_ = static_cast<unsigned char>((cur_ << 1) | (bit ? 1u : 0u));
  if (++filled_ == 8) {
    out_->push_back(static_cast<char>(cur_));
    cur_ = 0;
    filled_ = 0;
  }
}

void BitWriter::WriteBits(std::uint64_t value, unsigned nbits) {
  for (unsigned i = nbits; i-- > 0;) {
    PushBit((value >> i) & 1u);
  }
}

void BitWriter::WriteUnary(std::uint64_t q) {
  for (std::uint64_t i = 0; i < q; ++i) PushBit(true);
  PushBit(false);
}

void BitWriter::Flush() {
  while (filled_ != 0) PushBit(false);
}

bool BitReader::ReadBits(unsigned nbits, std::uint64_t* value) {
  if (nbits > 64 || size_bits_ - pos_ < nbits) return false;
  std::uint64_t result = 0;
  for (unsigned i = 0; i < nbits; ++i, ++pos_) {
    const unsigned char byte = data_[pos_ >> 3];
    const unsigned bit = (byte >> (7 - (pos_ & 7))) & 1u;
    result = (result << 1) | bit;
  }
  *value = result;
  return true;
}

bool BitReader::ReadUnary(std::uint64_t* q) {
  std::uint64_t count = 0;
  while (pos_ < size_bits_) {
    const unsigned char byte = data_[pos_ >> 3];
    const unsigned bit = (byte >> (7 - (pos_ & 7))) & 1u;
    ++pos_;
    if (bit == 0) {
      *q = count;
      return true;
    }
    ++count;
  }
  return false;  // ran off the end before the terminator.
}

bool BitReader::RemainderIsZeroPadding() const {
  for (std::size_t p = pos_; p < size_bits_; ++p) {
    if ((data_[p >> 3] >> (7 - (p & 7))) & 1u) return false;
  }
  return true;
}

void AppendRice(BitWriter* writer, std::uint64_t value, unsigned k) {
  writer->WriteUnary(value >> k);
  writer->WriteBits(value, k);
}

bool ReadRice(BitReader* reader, unsigned k, std::uint64_t* value) {
  std::uint64_t q = 0;
  if (!reader->ReadUnary(&q)) return false;
  // A corrupt stream can claim an arbitrarily long unary run; the shift
  // below must not overflow into a small value that then "decodes".
  if (k >= 64 || (k > 0 && q > (~std::uint64_t{0} >> k))) return false;
  std::uint64_t r = 0;
  if (!reader->ReadBits(k, &r)) return false;
  *value = (q << k) | r;
  return true;
}

std::size_t RiceBits(std::uint64_t value, unsigned k) {
  return static_cast<std::size_t>(value >> k) + 1 + k;
}

unsigned ChooseRiceK(std::span<const std::uint64_t> values) {
  // Exact minimization: for each candidate k the cost is
  // sum(v >> k) + n * (k + 1). Values here are < 2^32 (vertex ids and
  // gaps), so k beyond 33 never helps; the scan is O(34 n) on blocks of
  // a few thousand values — negligible against the encode itself.
  unsigned best_k = 0;
  std::uint64_t best_bits = ~std::uint64_t{0};
  for (unsigned k = 0; k <= 33; ++k) {
    std::uint64_t bits = 0;
    for (std::uint64_t v : values) {
      bits += (v >> k) + 1 + k;
      if (bits >= best_bits) break;  // already worse; stop summing.
    }
    if (bits < best_bits) {
      best_bits = bits;
      best_k = k;
    }
  }
  return best_k;
}

std::string EncodeBlock(std::span<const std::uint64_t> values,
                        BlockCodec* codec, std::uint16_t* rice_k) {
  std::size_t varint_bytes = 0;
  for (std::uint64_t v : values) varint_bytes += VarintSize(v);

  const unsigned k = ChooseRiceK(values);
  std::uint64_t rice_bits = 0;
  for (std::uint64_t v : values) rice_bits += RiceBits(v, k);
  const std::size_t rice_bytes = static_cast<std::size_t>((rice_bits + 7) / 8);

  std::string out;
  if (rice_bytes < varint_bytes) {
    *codec = BlockCodec::kRice;
    *rice_k = static_cast<std::uint16_t>(k);
    out.reserve(rice_bytes);
    BitWriter writer(&out);
    for (std::uint64_t v : values) AppendRice(&writer, v, k);
    writer.Flush();
  } else {
    *codec = BlockCodec::kVarint;
    *rice_k = 0;
    out.reserve(varint_bytes);
    for (std::uint64_t v : values) AppendVarint(&out, v);
  }
  return out;
}

Status DecodeBlock(std::string_view bytes, BlockCodec codec, unsigned rice_k,
                   std::size_t expected, std::uint64_t* out) {
  const auto* data = reinterpret_cast<const unsigned char*>(bytes.data());
  if (codec == BlockCodec::kVarint) {
    const unsigned char* p = data;
    const unsigned char* end = data + bytes.size();
    for (std::size_t i = 0; i < expected; ++i) {
      if (!ReadVarint(&p, end, &out[i])) {
        return Status::CorruptInput("block decodes to fewer values than its "
                                    "header claims");
      }
    }
    if (p != end) {
      return Status::CorruptInput("block carries trailing bytes past the "
                                  "expected value count");
    }
    return Status::OK();
  }
  if (codec != BlockCodec::kRice) {
    return Status::CorruptInput("unknown block codec id");
  }
  BitReader reader(data, bytes.size());
  for (std::size_t i = 0; i < expected; ++i) {
    if (!ReadRice(&reader, rice_k, &out[i])) {
      return Status::CorruptInput("block decodes to fewer values than its "
                                  "header claims");
    }
  }
  // Only the encoder's zero padding may remain: a whole trailing byte or
  // a set bit would mean the stream held more values than the header
  // admits.
  if (reader.RemainingBits() >= 8 || !reader.RemainderIsZeroPadding()) {
    return Status::CorruptInput("block carries trailing bits past the "
                                "expected value count");
  }
  return Status::OK();
}

}  // namespace fairbc
