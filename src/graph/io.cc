#include "graph/io.h"

#include <fstream>
#include <sstream>
#include <string>

#include "graph/builder.h"

namespace fairbc {

namespace {

bool IsCommentOrBlank(const std::string& line) {
  for (char c : line) {
    if (c == ' ' || c == '\t' || c == '\r') continue;
    return c == '%' || c == '#';
  }
  return true;
}

}  // namespace

Result<BipartiteGraph> ReadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open edge list: " + path);
  }
  BipartiteGraphBuilder builder;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (IsCommentOrBlank(line)) continue;
    std::istringstream iss(line);
    long long u = -1, v = -1;
    if (!(iss >> u >> v) || u < 0 || v < 0) {
      return Status::CorruptInput("bad edge at " + path + ":" +
                                  std::to_string(line_no));
    }
    builder.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  return builder.Build();
}

Result<BipartiteGraph> ReadAttributedGraph(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open graph: " + path);
  }
  std::string line;
  std::size_t line_no = 0;

  // Header.
  long long nu = -1, nv = -1, au = -1, av = -1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.rfind("%fairbc", 0) == 0) {
      std::istringstream iss(line.substr(7));
      int version = 0;
      if (!(iss >> version >> nu >> nv >> au >> av) || version != 1) {
        return Status::CorruptInput("bad %fairbc header in " + path);
      }
      break;
    }
    if (!IsCommentOrBlank(line)) {
      return Status::CorruptInput("missing %fairbc header in " + path);
    }
  }
  if (nu < 0 || nv < 0 || au < 1 || av < 1) {
    return Status::CorruptInput("missing or invalid %fairbc header in " + path);
  }

  BipartiteGraphBuilder builder(static_cast<VertexId>(nu),
                                static_cast<VertexId>(nv));
  builder.SetNumAttrs(Side::kUpper, static_cast<AttrId>(au));
  builder.SetNumAttrs(Side::kLower, static_cast<AttrId>(av));

  while (std::getline(in, line)) {
    ++line_no;
    if (IsCommentOrBlank(line)) continue;
    std::istringstream iss(line);
    char tag = 0;
    iss >> tag;
    auto bad = [&](const char* what) {
      return Status::CorruptInput(std::string(what) + " at " + path + ":" +
                                  std::to_string(line_no));
    };
    if (tag == 'E') {
      long long u = -1, v = -1;
      if (!(iss >> u >> v) || u < 0 || v < 0 || u >= nu || v >= nv) {
        return bad("bad edge");
      }
      builder.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v));
    } else if (tag == 'U' || tag == 'V') {
      long long id = -1, a = -1;
      long long n = tag == 'U' ? nu : nv;
      long long dom = tag == 'U' ? au : av;
      if (!(iss >> id >> a) || id < 0 || id >= n || a < 0 || a >= dom) {
        return bad("bad attribute line");
      }
      builder.SetAttr(tag == 'U' ? Side::kUpper : Side::kLower,
                      static_cast<VertexId>(id), static_cast<AttrId>(a));
    } else {
      return bad("unknown record tag");
    }
  }
  return builder.Build();
}

Status WriteAttributedGraph(const BipartiteGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  out << "%fairbc 1 " << g.NumUpper() << ' ' << g.NumLower() << ' '
      << g.NumAttrs(Side::kUpper) << ' ' << g.NumAttrs(Side::kLower) << "\n";
  for (VertexId u = 0; u < g.NumUpper(); ++u) {
    out << "U " << u << ' ' << g.Attr(Side::kUpper, u) << "\n";
  }
  for (VertexId v = 0; v < g.NumLower(); ++v) {
    out << "V " << v << ' ' << g.Attr(Side::kLower, v) << "\n";
  }
  for (VertexId u = 0; u < g.NumUpper(); ++u) {
    for (VertexId v : g.Neighbors(Side::kUpper, u)) {
      out << "E " << u << ' ' << v << "\n";
    }
  }
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::OK();
}

}  // namespace fairbc
