#ifndef FAIRBC_GRAPH_BIPARTITE_GRAPH_H_
#define FAIRBC_GRAPH_BIPARTITE_GRAPH_H_

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace fairbc {

/// Immutable attributed bipartite graph `G(U, V, E, A)` stored as CSR in
/// both directions. Vertex ids are dense per side; neighbor lists are
/// sorted ascending and deduplicated. Every vertex carries one attribute
/// value out of a dense per-side domain (`A(U)`, `A(V)` in the paper).
///
/// Construction goes through BipartiteGraphBuilder (builder.h) or the
/// generators; the invariants above are established there and relied on
/// everywhere else (binary search adjacency tests, sorted merges).
///
/// Storage comes in two flavors behind the same accessors: the normal
/// owned mode (CSR vectors held by the graph) and a read-only *view* mode
/// (MakeView) where the arrays live in externally managed memory — e.g.
/// an mmap'd snapshot (ReadSnapshotView) — kept alive by a shared backing
/// handle. Copying a view shares the backing (cheap); copying an owned
/// graph deep-copies the vectors. Every accessor reads through spans, so
/// engines never see the difference.
class BipartiteGraph {
 public:
  BipartiteGraph();

  /// Assembles a graph from pre-validated CSR pieces. Prefer the builder.
  BipartiteGraph(std::vector<EdgeIndex> upper_offsets,
                 std::vector<VertexId> upper_neighbors,
                 std::vector<EdgeIndex> lower_offsets,
                 std::vector<VertexId> lower_neighbors,
                 std::vector<AttrId> upper_attrs,
                 std::vector<AttrId> lower_attrs, AttrId num_upper_attrs,
                 AttrId num_lower_attrs);

  /// Assembles a non-owning view over externally managed CSR arrays.
  /// `backing` keeps the memory alive for the lifetime of the graph (and
  /// of every copy of it); the arrays must satisfy the same invariants as
  /// the owned constructor and must stay immutable while mapped.
  static BipartiteGraph MakeView(std::span<const EdgeIndex> upper_offsets,
                                 std::span<const VertexId> upper_neighbors,
                                 std::span<const EdgeIndex> lower_offsets,
                                 std::span<const VertexId> lower_neighbors,
                                 std::span<const AttrId> upper_attrs,
                                 std::span<const AttrId> lower_attrs,
                                 AttrId num_upper_attrs, AttrId num_lower_attrs,
                                 std::shared_ptr<const void> backing);

  BipartiteGraph(const BipartiteGraph& other);
  BipartiteGraph& operator=(const BipartiteGraph& other);
  BipartiteGraph(BipartiteGraph&& other) noexcept;
  BipartiteGraph& operator=(BipartiteGraph&& other) noexcept;
  ~BipartiteGraph() = default;

  /// True when the CSR arrays live in externally managed (e.g. mmap'd)
  /// memory rather than in vectors owned by this graph.
  bool IsView() const { return backing_ != nullptr; }

  VertexId NumVertices(Side side) const {
    return side == Side::kUpper ? num_upper_ : num_lower_;
  }
  VertexId NumUpper() const { return num_upper_; }
  VertexId NumLower() const { return num_lower_; }
  EdgeIndex NumEdges() const { return num_edges_; }

  /// Number of attribute values in the side's domain (`A_n^U` / `A_n^V`).
  AttrId NumAttrs(Side side) const {
    return side == Side::kUpper ? num_upper_attrs_ : num_lower_attrs_;
  }

  /// Attribute value of vertex `v` on `side` (`v.val` in the paper).
  AttrId Attr(Side side, VertexId v) const {
    return side == Side::kUpper ? upper_attrs_v_[v] : lower_attrs_v_[v];
  }

  /// Sorted neighbors of `v` (which lives on `side`; neighbors are on the
  /// opposite side).
  std::span<const VertexId> Neighbors(Side side, VertexId v) const {
    const auto off = side == Side::kUpper ? upper_offsets_v_ : lower_offsets_v_;
    const auto nbr =
        side == Side::kUpper ? upper_neighbors_v_ : lower_neighbors_v_;
    return {nbr.data() + off[v], nbr.data() + off[v + 1]};
  }

  /// Degree of `v` on `side`.
  VertexId Degree(Side side, VertexId v) const {
    const auto off = side == Side::kUpper ? upper_offsets_v_ : lower_offsets_v_;
    return static_cast<VertexId>(off[v + 1] - off[v]);
  }

  /// Binary-search adjacency test: is `u` (upper) adjacent to `v` (lower)?
  bool HasEdge(VertexId u, VertexId v) const;

  /// Raw CSR arrays of one side, exposed for bulk serialization and
  /// checksumming (graph/snapshot.h). Offsets has NumVertices(side) + 1
  /// entries; NeighborArray is the flat neighbor list all offsets index
  /// into; AttrArray has one attribute value per vertex.
  std::span<const EdgeIndex> Offsets(Side side) const {
    return side == Side::kUpper ? upper_offsets_v_ : lower_offsets_v_;
  }
  std::span<const VertexId> NeighborArray(Side side) const {
    return side == Side::kUpper ? upper_neighbors_v_ : lower_neighbors_v_;
  }
  std::span<const AttrId> AttrArray(Side side) const {
    return side == Side::kUpper ? upper_attrs_v_ : lower_attrs_v_;
  }

  /// Per-attribute class sizes of one side of the whole graph.
  std::vector<VertexId> AttrCounts(Side side) const;

  /// Edge density |E| / (|U| * |V|); 0 for degenerate sides.
  double Density() const;

  /// Estimated heap footprint of the CSR arrays in bytes.
  std::size_t MemoryBytes() const;

  /// Checks structural invariants (offsets monotone, neighbor ids in
  /// range, sorted/deduped lists, both CSR directions consistent,
  /// attribute values within domain). Used by tests and after IO.
  Status Validate() const;

  /// One-line human-readable summary.
  std::string DebugString() const;

 private:
  /// Points the span views at the owned vectors (owned mode only).
  void BindOwned();
  /// Returns to the default empty owned state (used for moved-from
  /// sources, so they stay valid graphs).
  void ResetToEmpty();
  /// Takes over `other`'s representation; leaves `other` empty.
  void MoveFrom(BipartiteGraph& other);

  VertexId num_upper_ = 0;
  VertexId num_lower_ = 0;
  EdgeIndex num_edges_ = 0;
  AttrId num_upper_attrs_ = 1;
  AttrId num_lower_attrs_ = 1;
  /// Owned storage; empty in view mode and in the default/moved-from
  /// state (where the offset *views* bind to a static zero entry so no
  /// allocation is ever needed — see BindOwned).
  std::vector<EdgeIndex> upper_offsets_;
  std::vector<VertexId> upper_neighbors_;
  std::vector<EdgeIndex> lower_offsets_;
  std::vector<VertexId> lower_neighbors_;
  std::vector<AttrId> upper_attrs_;
  std::vector<AttrId> lower_attrs_;
  /// What every accessor reads: either the owned vectors above or the
  /// externally backed arrays of a view.
  std::span<const EdgeIndex> upper_offsets_v_;
  std::span<const VertexId> upper_neighbors_v_;
  std::span<const EdgeIndex> lower_offsets_v_;
  std::span<const VertexId> lower_neighbors_v_;
  std::span<const AttrId> upper_attrs_v_;
  std::span<const AttrId> lower_attrs_v_;
  /// Keeps a view's memory alive (e.g. holds the munmap); null when owned.
  std::shared_ptr<const void> backing_;
};

/// Masks identifying a vertex subset on each side; used by pruning.
struct SideMasks {
  std::vector<char> upper_alive;
  std::vector<char> lower_alive;

  VertexId CountAlive(Side side) const;
};

/// Mapping from a compacted subgraph's ids back to the parent graph's ids.
struct IdMaps {
  std::vector<VertexId> upper_to_parent;
  std::vector<VertexId> lower_to_parent;
};

/// Builds the vertex-induced subgraph on the alive vertices, compacting
/// ids. `id_maps` receives new-id -> parent-id tables.
BipartiteGraph InducedSubgraph(const BipartiteGraph& g, const SideMasks& masks,
                               IdMaps* id_maps);

}  // namespace fairbc

#endif  // FAIRBC_GRAPH_BIPARTITE_GRAPH_H_
