#ifndef FAIRBC_GRAPH_BIPARTITE_GRAPH_H_
#define FAIRBC_GRAPH_BIPARTITE_GRAPH_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace fairbc {

/// Immutable attributed bipartite graph `G(U, V, E, A)` stored as CSR in
/// both directions. Vertex ids are dense per side; neighbor lists are
/// sorted ascending and deduplicated. Every vertex carries one attribute
/// value out of a dense per-side domain (`A(U)`, `A(V)` in the paper).
///
/// Construction goes through BipartiteGraphBuilder (builder.h) or the
/// generators; the invariants above are established there and relied on
/// everywhere else (binary search adjacency tests, sorted merges).
class BipartiteGraph {
 public:
  BipartiteGraph() = default;

  /// Assembles a graph from pre-validated CSR pieces. Prefer the builder.
  BipartiteGraph(std::vector<EdgeIndex> upper_offsets,
                 std::vector<VertexId> upper_neighbors,
                 std::vector<EdgeIndex> lower_offsets,
                 std::vector<VertexId> lower_neighbors,
                 std::vector<AttrId> upper_attrs,
                 std::vector<AttrId> lower_attrs, AttrId num_upper_attrs,
                 AttrId num_lower_attrs);

  VertexId NumVertices(Side side) const {
    return side == Side::kUpper ? num_upper_ : num_lower_;
  }
  VertexId NumUpper() const { return num_upper_; }
  VertexId NumLower() const { return num_lower_; }
  EdgeIndex NumEdges() const { return num_edges_; }

  /// Number of attribute values in the side's domain (`A_n^U` / `A_n^V`).
  AttrId NumAttrs(Side side) const {
    return side == Side::kUpper ? num_upper_attrs_ : num_lower_attrs_;
  }

  /// Attribute value of vertex `v` on `side` (`v.val` in the paper).
  AttrId Attr(Side side, VertexId v) const {
    return side == Side::kUpper ? upper_attrs_[v] : lower_attrs_[v];
  }

  /// Sorted neighbors of `v` (which lives on `side`; neighbors are on the
  /// opposite side).
  std::span<const VertexId> Neighbors(Side side, VertexId v) const {
    const auto& off = side == Side::kUpper ? upper_offsets_ : lower_offsets_;
    const auto& nbr = side == Side::kUpper ? upper_neighbors_ : lower_neighbors_;
    return {nbr.data() + off[v], nbr.data() + off[v + 1]};
  }

  /// Degree of `v` on `side`.
  VertexId Degree(Side side, VertexId v) const {
    const auto& off = side == Side::kUpper ? upper_offsets_ : lower_offsets_;
    return static_cast<VertexId>(off[v + 1] - off[v]);
  }

  /// Binary-search adjacency test: is `u` (upper) adjacent to `v` (lower)?
  bool HasEdge(VertexId u, VertexId v) const;

  /// Raw CSR arrays of one side, exposed for bulk serialization and
  /// checksumming (graph/snapshot.h). Offsets has NumVertices(side) + 1
  /// entries; NeighborArray is the flat neighbor list all offsets index
  /// into; AttrArray has one attribute value per vertex.
  std::span<const EdgeIndex> Offsets(Side side) const {
    const auto& off = side == Side::kUpper ? upper_offsets_ : lower_offsets_;
    return {off.data(), off.size()};
  }
  std::span<const VertexId> NeighborArray(Side side) const {
    const auto& nbr = side == Side::kUpper ? upper_neighbors_ : lower_neighbors_;
    return {nbr.data(), nbr.size()};
  }
  std::span<const AttrId> AttrArray(Side side) const {
    const auto& attrs = side == Side::kUpper ? upper_attrs_ : lower_attrs_;
    return {attrs.data(), attrs.size()};
  }

  /// Per-attribute class sizes of one side of the whole graph.
  std::vector<VertexId> AttrCounts(Side side) const;

  /// Edge density |E| / (|U| * |V|); 0 for degenerate sides.
  double Density() const;

  /// Estimated heap footprint of the CSR arrays in bytes.
  std::size_t MemoryBytes() const;

  /// Checks structural invariants (offsets monotone, neighbor ids in
  /// range, sorted/deduped lists, both CSR directions consistent,
  /// attribute values within domain). Used by tests and after IO.
  Status Validate() const;

  /// One-line human-readable summary.
  std::string DebugString() const;

 private:
  VertexId num_upper_ = 0;
  VertexId num_lower_ = 0;
  EdgeIndex num_edges_ = 0;
  AttrId num_upper_attrs_ = 1;
  AttrId num_lower_attrs_ = 1;
  std::vector<EdgeIndex> upper_offsets_{0};
  std::vector<VertexId> upper_neighbors_;
  std::vector<EdgeIndex> lower_offsets_{0};
  std::vector<VertexId> lower_neighbors_;
  std::vector<AttrId> upper_attrs_;
  std::vector<AttrId> lower_attrs_;
};

/// Masks identifying a vertex subset on each side; used by pruning.
struct SideMasks {
  std::vector<char> upper_alive;
  std::vector<char> lower_alive;

  VertexId CountAlive(Side side) const;
};

/// Mapping from a compacted subgraph's ids back to the parent graph's ids.
struct IdMaps {
  std::vector<VertexId> upper_to_parent;
  std::vector<VertexId> lower_to_parent;
};

/// Builds the vertex-induced subgraph on the alive vertices, compacting
/// ids. `id_maps` receives new-id -> parent-id tables.
BipartiteGraph InducedSubgraph(const BipartiteGraph& g, const SideMasks& masks,
                               IdMaps* id_maps);

}  // namespace fairbc

#endif  // FAIRBC_GRAPH_BIPARTITE_GRAPH_H_
