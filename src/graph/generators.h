#ifndef FAIRBC_GRAPH_GENERATORS_H_
#define FAIRBC_GRAPH_GENERATORS_H_

#include <cstdint>

#include "common/random.h"
#include "graph/bipartite_graph.h"

namespace fairbc {

/// Synthetic bipartite graph generators. These are the reproduction's
/// stand-in for the paper's five KONECT datasets (offline environment, see
/// DESIGN.md §4). All take explicit seeds and are fully deterministic.

/// Uniformly random bipartite graph with ~`num_edges` distinct edges and
/// uniformly random attributes from [0, num_attrs) on both sides.
BipartiteGraph MakeUniformRandom(VertexId num_upper, VertexId num_lower,
                                 EdgeIndex num_edges, AttrId num_attrs,
                                 std::uint64_t seed);

/// Chung–Lu style bipartite graph with power-law expected degrees
/// (exponent `gamma` on both sides), matching the heavy-tailed degree
/// shape of real affiliation networks.
BipartiteGraph MakePowerLaw(VertexId num_upper, VertexId num_lower,
                            EdgeIndex num_edges, double gamma, AttrId num_attrs,
                            std::uint64_t seed);

/// Parameters for the planted-affiliation generator.
struct AffiliationConfig {
  VertexId num_upper = 1000;
  VertexId num_lower = 1000;
  /// Number of planted communities (each a complete biclique block).
  std::uint32_t num_communities = 60;
  /// Community side sizes are uniform in [min,max]; overlapping vertices
  /// create intersecting bicliques, the structure maximal-biclique
  /// algorithms are sensitive to.
  VertexId community_upper_min = 4;
  VertexId community_upper_max = 16;
  VertexId community_lower_min = 4;
  VertexId community_lower_max = 16;
  /// Probability of keeping each community edge (1.0 = exact bicliques).
  double edge_keep_prob = 1.0;
  /// Extra noise edges as a fraction of community edges.
  double noise_fraction = 0.3;
  /// Probability that a noise endpoint attaches to a community member
  /// instead of a uniform vertex. Preferential attachment creates
  /// vertices that survive degree-based pruning (FCore) but fail the
  /// 2-hop clique test (CFCore), like the semi-popular vertices of real
  /// affiliation networks.
  double noise_attach_community = 0.6;
  AttrId num_upper_attrs = 2;
  AttrId num_lower_attrs = 2;
  std::uint64_t seed = 42;
};

/// Planted-affiliation graph: overlapping community bicliques plus noise.
/// This is the workload generator used for the paper-shaped experiments;
/// affiliation networks (IMDB, Youtube) are exactly this structure.
BipartiteGraph MakeAffiliation(const AffiliationConfig& config);

/// Keeps each edge independently with probability `fraction` (used by the
/// Fig. 7 scalability experiment: 20%–100% edge samples). Vertex counts
/// and attributes are preserved.
BipartiteGraph SampleEdges(const BipartiteGraph& g, double fraction,
                           std::uint64_t seed);

}  // namespace fairbc

#endif  // FAIRBC_GRAPH_GENERATORS_H_
