#include "graph/snapshot.h"

#include <cstring>
#include <fstream>
#include <vector>

namespace fairbc {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

struct SnapshotCounts {
  std::uint32_t num_upper = 0;
  std::uint32_t num_lower = 0;
  std::uint64_t num_edges = 0;
  std::uint16_t num_upper_attrs = 0;
  std::uint16_t num_lower_attrs = 0;
  std::uint32_t reserved = 0;
};
static_assert(sizeof(SnapshotCounts) == 24, "packed count block");

SnapshotCounts CountsOf(const BipartiteGraph& g) {
  SnapshotCounts c;
  c.num_upper = g.NumUpper();
  c.num_lower = g.NumLower();
  c.num_edges = g.NumEdges();
  c.num_upper_attrs = g.NumAttrs(Side::kUpper);
  c.num_lower_attrs = g.NumAttrs(Side::kLower);
  return c;
}

template <typename T>
std::uint64_t FoldSpan(std::uint64_t state, std::span<const T> data) {
  return Fnv1a64(data.data(), data.size() * sizeof(T), state);
}

/// Checksum over the count block and the six arrays, in file order.
std::uint64_t ChecksumOf(const SnapshotCounts& counts,
                         const BipartiteGraph& g) {
  std::uint64_t state = Fnv1a64(&counts, sizeof(counts));
  state = FoldSpan(state, g.Offsets(Side::kUpper));
  state = FoldSpan(state, g.NeighborArray(Side::kUpper));
  state = FoldSpan(state, g.Offsets(Side::kLower));
  state = FoldSpan(state, g.NeighborArray(Side::kLower));
  state = FoldSpan(state, g.AttrArray(Side::kUpper));
  state = FoldSpan(state, g.AttrArray(Side::kLower));
  return state;
}

template <typename T>
void WriteArray(std::ofstream& out, std::span<const T> data) {
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(T)));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.gcount() == sizeof(T);
}

template <typename T>
bool ReadArray(std::ifstream& in, std::size_t count, std::vector<T>* out) {
  out->resize(count);
  const auto bytes = static_cast<std::streamsize>(count * sizeof(T));
  in.read(reinterpret_cast<char*>(out->data()), bytes);
  return in.gcount() == bytes;
}

}  // namespace

std::uint64_t Fnv1a64(const void* data, std::size_t size, std::uint64_t state) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    state ^= bytes[i];
    state *= kFnvPrime;
  }
  return state;
}

std::uint64_t GraphFingerprint(const BipartiteGraph& g) {
  const SnapshotCounts counts = CountsOf(g);
  return ChecksumOf(counts, g);
}

Status WriteSnapshot(const BipartiteGraph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  const SnapshotCounts counts = CountsOf(g);
  const std::uint64_t checksum = ChecksumOf(counts, g);

  out.write(kSnapshotMagic, sizeof(kSnapshotMagic));
  const std::uint32_t version = kSnapshotVersion;
  const std::uint32_t reserved = 0;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&reserved), sizeof(reserved));
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  out.write(reinterpret_cast<const char*>(&counts), sizeof(counts));
  WriteArray(out, g.Offsets(Side::kUpper));
  WriteArray(out, g.NeighborArray(Side::kUpper));
  WriteArray(out, g.Offsets(Side::kLower));
  WriteArray(out, g.NeighborArray(Side::kLower));
  WriteArray(out, g.AttrArray(Side::kUpper));
  WriteArray(out, g.AttrArray(Side::kLower));
  out.flush();
  if (!out) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

Result<BipartiteGraph> ReadSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open: " + path);
  }

  char magic[sizeof(kSnapshotMagic)];
  in.read(magic, sizeof(magic));
  if (in.gcount() != sizeof(magic) ||
      std::memcmp(magic, kSnapshotMagic, sizeof(magic)) != 0) {
    return Status::CorruptInput("not a fairbc snapshot: " + path);
  }
  std::uint32_t version = 0;
  std::uint32_t reserved = 0;
  std::uint64_t checksum = 0;
  SnapshotCounts counts;
  if (!ReadPod(in, &version) || !ReadPod(in, &reserved) ||
      !ReadPod(in, &checksum) || !ReadPod(in, &counts)) {
    return Status::CorruptInput("truncated snapshot header: " + path);
  }
  if (version != kSnapshotVersion) {
    return Status::CorruptInput("unsupported snapshot version " +
                                std::to_string(version) + ": " + path);
  }

  // Bound the payload by the actual file size *before* sizing any
  // vector from the (as yet unauthenticated) count fields: a corrupt
  // num_edges must come back as a Status, not a length_error/OOM. The
  // exact-size check also rejects trailing garbage. 128-bit arithmetic
  // because num_edges alone can overflow a u64 byte count.
  const std::streampos payload_start = in.tellg();
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(payload_start);
  unsigned __int128 expected = 0;
  expected += (static_cast<unsigned __int128>(counts.num_upper) + 1) *
              sizeof(EdgeIndex);
  expected += (static_cast<unsigned __int128>(counts.num_lower) + 1) *
              sizeof(EdgeIndex);
  expected +=
      static_cast<unsigned __int128>(counts.num_edges) * 2 * sizeof(VertexId);
  expected += static_cast<unsigned __int128>(counts.num_upper) * sizeof(AttrId);
  expected += static_cast<unsigned __int128>(counts.num_lower) * sizeof(AttrId);
  if (expected !=
      file_size - static_cast<std::uint64_t>(payload_start)) {
    return Status::CorruptInput(
        "snapshot payload size does not match its header counts: " + path);
  }

  std::vector<EdgeIndex> upper_offsets;
  std::vector<VertexId> upper_neighbors;
  std::vector<EdgeIndex> lower_offsets;
  std::vector<VertexId> lower_neighbors;
  std::vector<AttrId> upper_attrs;
  std::vector<AttrId> lower_attrs;
  if (!ReadArray(in, counts.num_upper + std::size_t{1}, &upper_offsets) ||
      !ReadArray(in, counts.num_edges, &upper_neighbors) ||
      !ReadArray(in, counts.num_lower + std::size_t{1}, &lower_offsets) ||
      !ReadArray(in, counts.num_edges, &lower_neighbors) ||
      !ReadArray(in, counts.num_upper, &upper_attrs) ||
      !ReadArray(in, counts.num_lower, &lower_attrs)) {
    return Status::CorruptInput("truncated snapshot payload: " + path);
  }
  std::uint64_t state = Fnv1a64(&counts, sizeof(counts));
  state = FoldSpan(state, std::span<const EdgeIndex>(upper_offsets));
  state = FoldSpan(state, std::span<const VertexId>(upper_neighbors));
  state = FoldSpan(state, std::span<const EdgeIndex>(lower_offsets));
  state = FoldSpan(state, std::span<const VertexId>(lower_neighbors));
  state = FoldSpan(state, std::span<const AttrId>(upper_attrs));
  state = FoldSpan(state, std::span<const AttrId>(lower_attrs));
  if (state != checksum) {
    return Status::CorruptInput("snapshot checksum mismatch: " + path);
  }

  BipartiteGraph g(std::move(upper_offsets), std::move(upper_neighbors),
                   std::move(lower_offsets), std::move(lower_neighbors),
                   std::move(upper_attrs), std::move(lower_attrs),
                   static_cast<AttrId>(counts.num_upper_attrs),
                   static_cast<AttrId>(counts.num_lower_attrs));
  Status valid = g.Validate();
  if (!valid.ok()) {
    return Status::CorruptInput("snapshot fails graph validation (" +
                                valid.message() + "): " + path);
  }
  return g;
}

}  // namespace fairbc
