#include "graph/snapshot.h"

#include <cstring>
#include <fstream>
#include <memory>
#include <type_traits>
#include <vector>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace fairbc {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Array sections are zero-padded to this alignment in version-2 files so
/// mmap'd u64 spans never do misaligned loads.
constexpr std::uint64_t kSectionAlign = 8;

/// Templated so the 128-bit size pre-check shares the exact same padding
/// rule as the u64 writer/reader paths.
template <typename T>
constexpr T PadTo8(T bytes) {
  return (T{kSectionAlign} - bytes % T{kSectionAlign}) % T{kSectionAlign};
}

struct SnapshotCounts {
  std::uint32_t num_upper = 0;
  std::uint32_t num_lower = 0;
  std::uint64_t num_edges = 0;
  std::uint16_t num_upper_attrs = 0;
  std::uint16_t num_lower_attrs = 0;
  std::uint32_t reserved = 0;
};
static_assert(sizeof(SnapshotCounts) == 24, "packed count block");

SnapshotCounts CountsOf(const BipartiteGraph& g) {
  SnapshotCounts c;
  c.num_upper = g.NumUpper();
  c.num_lower = g.NumLower();
  c.num_edges = g.NumEdges();
  c.num_upper_attrs = g.NumAttrs(Side::kUpper);
  c.num_lower_attrs = g.NumAttrs(Side::kLower);
  return c;
}

template <typename T>
std::uint64_t FoldSpan(std::uint64_t state, std::span<const T> data) {
  return Fnv1a64(data.data(), data.size() * sizeof(T), state);
}

/// Checksum over the count block and the six arrays, in file order.
std::uint64_t ChecksumOf(const SnapshotCounts& counts,
                         const BipartiteGraph& g) {
  std::uint64_t state = Fnv1a64(&counts, sizeof(counts));
  state = FoldSpan(state, g.Offsets(Side::kUpper));
  state = FoldSpan(state, g.NeighborArray(Side::kUpper));
  state = FoldSpan(state, g.Offsets(Side::kLower));
  state = FoldSpan(state, g.NeighborArray(Side::kLower));
  state = FoldSpan(state, g.AttrArray(Side::kUpper));
  state = FoldSpan(state, g.AttrArray(Side::kLower));
  return state;
}

template <typename T>
void WriteArray(std::ofstream& out, std::span<const T> data) {
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(T)));
  static constexpr char kZeros[kSectionAlign] = {};
  out.write(kZeros,
            static_cast<std::streamsize>(PadTo8(data.size() * sizeof(T))));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.gcount() == sizeof(T);
}

template <typename T>
bool ReadArray(std::ifstream& in, std::size_t count, bool padded,
               std::vector<T>* out) {
  out->resize(count);
  const auto bytes = static_cast<std::streamsize>(count * sizeof(T));
  in.read(reinterpret_cast<char*>(out->data()), bytes);
  if (in.gcount() != bytes) return false;
  if (padded) {
    // Padding must be zero: the checksum excludes it, so this is the
    // only thing standing between a flipped pad byte and a clean load.
    char pad[kSectionAlign] = {};
    const auto pad_bytes =
        static_cast<std::streamsize>(PadTo8(count * sizeof(T)));
    in.read(pad, pad_bytes);
    if (in.gcount() != pad_bytes) return false;
    for (std::streamsize i = 0; i < pad_bytes; ++i) {
      if (pad[i] != 0) return false;
    }
  }
  return static_cast<bool>(in);
}

/// Payload size implied by the count fields: the six raw arrays, plus the
/// per-section alignment padding for version-2 files. 128-bit because a
/// corrupt num_edges alone can overflow a u64 byte count.
unsigned __int128 ExpectedPayloadBytes(const SnapshotCounts& counts,
                                       std::uint32_t version) {
  const unsigned __int128 sections[6] = {
      (static_cast<unsigned __int128>(counts.num_upper) + 1) *
          sizeof(EdgeIndex),
      static_cast<unsigned __int128>(counts.num_edges) * sizeof(VertexId),
      (static_cast<unsigned __int128>(counts.num_lower) + 1) *
          sizeof(EdgeIndex),
      static_cast<unsigned __int128>(counts.num_edges) * sizeof(VertexId),
      static_cast<unsigned __int128>(counts.num_upper) * sizeof(AttrId),
      static_cast<unsigned __int128>(counts.num_lower) * sizeof(AttrId)};
  unsigned __int128 total = 0;
  for (unsigned __int128 bytes : sections) {
    total += bytes;
    if (version >= 2) total += PadTo8(bytes);
  }
  return total;
}

}  // namespace

std::uint64_t Fnv1a64(const void* data, std::size_t size, std::uint64_t state) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    state ^= bytes[i];
    state *= kFnvPrime;
  }
  return state;
}

std::uint64_t GraphFingerprint(const BipartiteGraph& g) {
  const SnapshotCounts counts = CountsOf(g);
  return ChecksumOf(counts, g);
}

Status WriteSnapshot(const BipartiteGraph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  const SnapshotCounts counts = CountsOf(g);
  const std::uint64_t checksum = ChecksumOf(counts, g);

  out.write(kSnapshotMagic, sizeof(kSnapshotMagic));
  const std::uint32_t version = kSnapshotVersion;
  const std::uint32_t reserved = 0;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&reserved), sizeof(reserved));
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  out.write(reinterpret_cast<const char*>(&counts), sizeof(counts));
  WriteArray(out, g.Offsets(Side::kUpper));
  WriteArray(out, g.NeighborArray(Side::kUpper));
  WriteArray(out, g.Offsets(Side::kLower));
  WriteArray(out, g.NeighborArray(Side::kLower));
  WriteArray(out, g.AttrArray(Side::kUpper));
  WriteArray(out, g.AttrArray(Side::kLower));
  out.flush();
  if (!out) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

Result<BipartiteGraph> ReadSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open: " + path);
  }

  char magic[sizeof(kSnapshotMagic)];
  in.read(magic, sizeof(magic));
  if (in.gcount() != sizeof(magic) ||
      std::memcmp(magic, kSnapshotMagic, sizeof(magic)) != 0) {
    return Status::CorruptInput("not a fairbc snapshot: " + path);
  }
  std::uint32_t version = 0;
  std::uint32_t reserved = 0;
  std::uint64_t checksum = 0;
  SnapshotCounts counts;
  if (!ReadPod(in, &version) || !ReadPod(in, &reserved) ||
      !ReadPod(in, &checksum) || !ReadPod(in, &counts)) {
    return Status::CorruptInput("truncated snapshot header: " + path);
  }
  if (version != 1 && version != kSnapshotVersion) {
    return Status::CorruptInput("unsupported snapshot version " +
                                std::to_string(version) + ": " + path);
  }

  // Bound the payload by the actual file size *before* sizing any
  // vector from the (as yet unauthenticated) count fields: a corrupt
  // num_edges must come back as a Status, not a length_error/OOM. The
  // exact-size check also rejects trailing garbage.
  const std::streampos payload_start = in.tellg();
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(payload_start);
  if (ExpectedPayloadBytes(counts, version) !=
      file_size - static_cast<std::uint64_t>(payload_start)) {
    return Status::CorruptInput(
        "snapshot payload size does not match its header counts: " + path);
  }

  const bool padded = version >= 2;
  std::vector<EdgeIndex> upper_offsets;
  std::vector<VertexId> upper_neighbors;
  std::vector<EdgeIndex> lower_offsets;
  std::vector<VertexId> lower_neighbors;
  std::vector<AttrId> upper_attrs;
  std::vector<AttrId> lower_attrs;
  if (!ReadArray(in, counts.num_upper + std::size_t{1}, padded,
                 &upper_offsets) ||
      !ReadArray(in, counts.num_edges, padded, &upper_neighbors) ||
      !ReadArray(in, counts.num_lower + std::size_t{1}, padded,
                 &lower_offsets) ||
      !ReadArray(in, counts.num_edges, padded, &lower_neighbors) ||
      !ReadArray(in, counts.num_upper, padded, &upper_attrs) ||
      !ReadArray(in, counts.num_lower, padded, &lower_attrs)) {
    return Status::CorruptInput("truncated snapshot payload: " + path);
  }
  std::uint64_t state = Fnv1a64(&counts, sizeof(counts));
  state = FoldSpan(state, std::span<const EdgeIndex>(upper_offsets));
  state = FoldSpan(state, std::span<const VertexId>(upper_neighbors));
  state = FoldSpan(state, std::span<const EdgeIndex>(lower_offsets));
  state = FoldSpan(state, std::span<const VertexId>(lower_neighbors));
  state = FoldSpan(state, std::span<const AttrId>(upper_attrs));
  state = FoldSpan(state, std::span<const AttrId>(lower_attrs));
  if (state != checksum) {
    return Status::CorruptInput("snapshot checksum mismatch: " + path);
  }

  BipartiteGraph g(std::move(upper_offsets), std::move(upper_neighbors),
                   std::move(lower_offsets), std::move(lower_neighbors),
                   std::move(upper_attrs), std::move(lower_attrs),
                   static_cast<AttrId>(counts.num_upper_attrs),
                   static_cast<AttrId>(counts.num_lower_attrs));
  Status valid = g.Validate();
  if (!valid.ok()) {
    return Status::CorruptInput("snapshot fails graph validation (" +
                                valid.message() + "): " + path);
  }
  return g;
}

Result<BipartiteGraph> ReadSnapshotView(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open: " + path);
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::CorruptInput("cannot stat: " + path);
  }
  const auto file_size = static_cast<std::uint64_t>(st.st_size);
  constexpr std::uint64_t kHeaderBytes =
      sizeof(kSnapshotMagic) + 2 * sizeof(std::uint32_t) +
      sizeof(std::uint64_t) + sizeof(SnapshotCounts);
  static_assert(kHeaderBytes == 48 && kHeaderBytes % kSectionAlign == 0);
  if (file_size < kHeaderBytes) {
    return (::close(fd),
            Status::CorruptInput("truncated snapshot header: " + path));
  }
  void* mapped = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference.
  if (mapped == MAP_FAILED) {
    return Status::Internal("mmap failed: " + path);
  }
  std::shared_ptr<const void> backing(
      mapped, [file_size](const void* p) {
        ::munmap(const_cast<void*>(p), file_size);
      });
  const auto* base = static_cast<const unsigned char*>(mapped);

  if (std::memcmp(base, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::CorruptInput("not a fairbc snapshot: " + path);
  }
  std::uint32_t version = 0;
  std::uint64_t checksum = 0;
  SnapshotCounts counts;
  std::memcpy(&version, base + 8, sizeof(version));
  std::memcpy(&checksum, base + 16, sizeof(checksum));
  std::memcpy(&counts, base + 24, sizeof(counts));
  if (version == 1) {
    // Version 1 has no alignment padding, so its u64 sections may start
    // misaligned in the mapping; load it the copying way instead.
    backing.reset();
    return ReadSnapshot(path);
  }
  if (version != kSnapshotVersion) {
    return Status::CorruptInput("unsupported snapshot version " +
                                std::to_string(version) + ": " + path);
  }
  if (ExpectedPayloadBytes(counts, version) != file_size - kHeaderBytes) {
    return Status::CorruptInput(
        "snapshot payload size does not match its header counts: " + path);
  }

  // Slice the six sections out of the mapping; every section start is
  // 8-byte aligned by the v2 padding (and mmap bases are page-aligned).
  // Padding bytes must be zero — the checksum excludes them.
  std::uint64_t pos = kHeaderBytes;
  bool padding_clean = true;
  auto take = [&](std::uint64_t count, auto* span_out) {
    using T = typename std::remove_reference_t<decltype(*span_out)>::value_type;
    const std::uint64_t bytes = count * sizeof(T);
    *span_out = std::span<const T>(reinterpret_cast<const T*>(base + pos),
                                   static_cast<std::size_t>(count));
    pos += bytes;
    for (std::uint64_t i = 0; i < PadTo8(bytes); ++i) {
      padding_clean = padding_clean && base[pos + i] == 0;
    }
    pos += PadTo8(bytes);
  };
  std::span<const EdgeIndex> upper_offsets, lower_offsets;
  std::span<const VertexId> upper_neighbors, lower_neighbors;
  std::span<const AttrId> upper_attrs, lower_attrs;
  take(counts.num_upper + std::uint64_t{1}, &upper_offsets);
  take(counts.num_edges, &upper_neighbors);
  take(counts.num_lower + std::uint64_t{1}, &lower_offsets);
  take(counts.num_edges, &lower_neighbors);
  take(counts.num_upper, &upper_attrs);
  take(counts.num_lower, &lower_attrs);
  if (!padding_clean) {
    return Status::CorruptInput("snapshot padding bytes corrupted: " + path);
  }

  std::uint64_t state = Fnv1a64(&counts, sizeof(counts));
  state = FoldSpan(state, upper_offsets);
  state = FoldSpan(state, upper_neighbors);
  state = FoldSpan(state, lower_offsets);
  state = FoldSpan(state, lower_neighbors);
  state = FoldSpan(state, upper_attrs);
  state = FoldSpan(state, lower_attrs);
  if (state != checksum) {
    return Status::CorruptInput("snapshot checksum mismatch: " + path);
  }

  BipartiteGraph g = BipartiteGraph::MakeView(
      upper_offsets, upper_neighbors, lower_offsets, lower_neighbors,
      upper_attrs, lower_attrs, static_cast<AttrId>(counts.num_upper_attrs),
      static_cast<AttrId>(counts.num_lower_attrs), std::move(backing));
  Status valid = g.Validate();
  if (!valid.ok()) {
    return Status::CorruptInput("snapshot fails graph validation (" +
                                valid.message() + "): " + path);
  }
  return g;
}

}  // namespace fairbc
