#include "graph/snapshot.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <memory>
#include <string_view>
#include <type_traits>
#include <vector>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "graph/varint_codec.h"

namespace fairbc {

// Named (not anonymous) so SnapshotReader::Impl — an externally visible
// class — can hold these without tripping -Wsubobject-linkage.
namespace snapshot_detail {

struct SnapshotCounts {
  std::uint32_t num_upper = 0;
  std::uint32_t num_lower = 0;
  std::uint64_t num_edges = 0;
  std::uint16_t num_upper_attrs = 0;
  std::uint16_t num_lower_attrs = 0;
  std::uint32_t reserved = 0;
};
static_assert(sizeof(SnapshotCounts) == 24, "packed count block");

struct V3Header {
  std::uint64_t index_checksum = 0;
  std::uint32_t block_edges = 0;
  std::uint32_t num_upper_blocks = 0;
  std::uint32_t num_lower_blocks = 0;
  std::uint32_t reserved = 0;
  std::uint64_t upper_offsets_bytes = 0;
  std::uint64_t lower_offsets_bytes = 0;
  std::uint64_t upper_attrs_bytes = 0;
  std::uint64_t lower_attrs_bytes = 0;
  std::uint64_t blocks_bytes = 0;
};
static_assert(sizeof(V3Header) == 64, "packed v3 header");

struct BlockIndexEntry {
  std::uint64_t offset = 0;    ///< from the start of the blocks region.
  std::uint32_t bytes = 0;     ///< encoded size of this block.
  std::uint32_t checksum = 0;  ///< Fold32(Fnv1a64(block bytes)).
  std::uint16_t codec = 0;     ///< BlockCodec.
  std::uint16_t rice_k = 0;    ///< Rice parameter when codec == kRice.
  std::uint32_t reserved = 0;
};
static_assert(sizeof(BlockIndexEntry) == 24, "packed block index entry");

}  // namespace snapshot_detail

namespace {

using snapshot_detail::BlockIndexEntry;
using snapshot_detail::SnapshotCounts;
using snapshot_detail::V3Header;

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Array sections are zero-padded to this alignment in version-2 files so
/// mmap'd u64 spans never do misaligned loads.
constexpr std::uint64_t kSectionAlign = 8;

/// Templated so the 128-bit size pre-check shares the exact same padding
/// rule as the u64 writer/reader paths.
template <typename T>
constexpr T PadTo8(T bytes) {
  return (T{kSectionAlign} - bytes % T{kSectionAlign}) % T{kSectionAlign};
}

SnapshotCounts CountsOf(const BipartiteGraph& g) {
  SnapshotCounts c;
  c.num_upper = g.NumUpper();
  c.num_lower = g.NumLower();
  c.num_edges = g.NumEdges();
  c.num_upper_attrs = g.NumAttrs(Side::kUpper);
  c.num_lower_attrs = g.NumAttrs(Side::kLower);
  return c;
}

template <typename T>
std::uint64_t FoldSpan(std::uint64_t state, std::span<const T> data) {
  return Fnv1a64(data.data(), data.size() * sizeof(T), state);
}

/// Checksum over the count block and the six arrays, in file order.
std::uint64_t ChecksumOf(const SnapshotCounts& counts,
                         const BipartiteGraph& g) {
  std::uint64_t state = Fnv1a64(&counts, sizeof(counts));
  state = FoldSpan(state, g.Offsets(Side::kUpper));
  state = FoldSpan(state, g.NeighborArray(Side::kUpper));
  state = FoldSpan(state, g.Offsets(Side::kLower));
  state = FoldSpan(state, g.NeighborArray(Side::kLower));
  state = FoldSpan(state, g.AttrArray(Side::kUpper));
  state = FoldSpan(state, g.AttrArray(Side::kLower));
  return state;
}

template <typename T>
void WriteArray(std::ofstream& out, std::span<const T> data) {
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(T)));
  static constexpr char kZeros[kSectionAlign] = {};
  out.write(kZeros,
            static_cast<std::streamsize>(PadTo8(data.size() * sizeof(T))));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.gcount() == sizeof(T);
}

template <typename T>
bool ReadArray(std::ifstream& in, std::size_t count, bool padded,
               std::vector<T>* out) {
  out->resize(count);
  const auto bytes = static_cast<std::streamsize>(count * sizeof(T));
  in.read(reinterpret_cast<char*>(out->data()), bytes);
  if (in.gcount() != bytes) return false;
  if (padded) {
    // Padding must be zero: the checksum excludes it, so this is the
    // only thing standing between a flipped pad byte and a clean load.
    char pad[kSectionAlign] = {};
    const auto pad_bytes =
        static_cast<std::streamsize>(PadTo8(count * sizeof(T)));
    in.read(pad, pad_bytes);
    if (in.gcount() != pad_bytes) return false;
    for (std::streamsize i = 0; i < pad_bytes; ++i) {
      if (pad[i] != 0) return false;
    }
  }
  return static_cast<bool>(in);
}

/// Payload size implied by the count fields: the six raw arrays, plus the
/// per-section alignment padding for version-2 files. 128-bit because a
/// corrupt num_edges alone can overflow a u64 byte count.
unsigned __int128 ExpectedPayloadBytes(const SnapshotCounts& counts,
                                       std::uint32_t version) {
  const unsigned __int128 sections[6] = {
      (static_cast<unsigned __int128>(counts.num_upper) + 1) *
          sizeof(EdgeIndex),
      static_cast<unsigned __int128>(counts.num_edges) * sizeof(VertexId),
      (static_cast<unsigned __int128>(counts.num_lower) + 1) *
          sizeof(EdgeIndex),
      static_cast<unsigned __int128>(counts.num_edges) * sizeof(VertexId),
      static_cast<unsigned __int128>(counts.num_upper) * sizeof(AttrId),
      static_cast<unsigned __int128>(counts.num_lower) * sizeof(AttrId)};
  unsigned __int128 total = 0;
  for (unsigned __int128 bytes : sections) {
    total += bytes;
    if (version >= 2) total += PadTo8(bytes);
  }
  return total;
}

// ---------------------------------------------------------------------------
// Version 3: compressed sections. Layout after the common 48-byte header:
//
//   V3Header            64 bytes
//   block index         2 * num_blocks x BlockIndexEntry (upper, then lower)
//   upper_offsets_c     varints: first absolute, then deltas
//   lower_offsets_c     "
//   upper_attrs_c       varints, one per vertex
//   lower_attrs_c       "
//   blocks region       concatenated neighbor blocks (upper, then lower)
//
// `index_checksum` covers the count block, the v3 header remainder, the
// block index and the four eager sections — everything a reader must
// trust before sizing an allocation — and is verified first. Each
// neighbor block carries its own folded-FNV checksum in the index so
// lazy per-range decodes stay self-verifying.

constexpr std::uint64_t kCommonHeaderBytes = 48;

std::uint32_t Fold32(std::uint64_t h) {
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

/// Offsets section: first value absolute, then consecutive differences
/// (non-negative because offsets are monotone).
std::string EncodeOffsetsSection(std::span<const EdgeIndex> offsets) {
  std::string out;
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    AppendVarint(&out, i == 0 ? offsets[0] : offsets[i] - offsets[i - 1]);
  }
  return out;
}

Status DecodeOffsetsSection(const unsigned char* data, std::size_t size,
                            std::size_t count, std::uint64_t num_edges,
                            std::vector<EdgeIndex>* out) {
  out->clear();
  out->reserve(count);
  const unsigned char* p = data;
  const unsigned char* end = data + size;
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t v = 0;
    if (!ReadVarint(&p, end, &v)) {
      return Status::CorruptInput("truncated offsets section");
    }
    // Overflow-safe monotone accumulation bounded by the edge count.
    if (i == 0) {
      acc = v;
    } else if (v > num_edges - acc) {
      return Status::CorruptInput("offsets section exceeds edge count");
    } else {
      acc += v;
    }
    if (acc > num_edges) {
      return Status::CorruptInput("offsets section exceeds edge count");
    }
    out->push_back(acc);
  }
  if (p != end) {
    return Status::CorruptInput("trailing bytes in offsets section");
  }
  if (out->empty() || out->front() != 0 || out->back() != num_edges) {
    return Status::CorruptInput("offsets section endpoints mismatch");
  }
  return Status::OK();
}

std::string EncodeAttrsSection(std::span<const AttrId> attrs) {
  std::string out;
  for (AttrId a : attrs) AppendVarint(&out, a);
  return out;
}

Status DecodeAttrsSection(const unsigned char* data, std::size_t size,
                          std::size_t count, std::uint16_t num_attrs,
                          std::vector<AttrId>* out) {
  out->clear();
  out->reserve(count);
  const unsigned char* p = data;
  const unsigned char* end = data + size;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t v = 0;
    if (!ReadVarint(&p, end, &v)) {
      return Status::CorruptInput("truncated attrs section");
    }
    if (v >= num_attrs) {
      return Status::CorruptInput("attr id out of domain");
    }
    out->push_back(static_cast<AttrId>(v));
  }
  if (p != end) {
    return Status::CorruptInput("trailing bytes in attrs section");
  }
  return Status::OK();
}

/// Splits one direction's neighbor array into blocks of `block_edges`
/// entries, delta-maps each (absolute value at a block start or a list
/// start, gap-minus-one otherwise — lists are strictly increasing) and
/// appends the per-block encodings to `blocks` / their descriptors to
/// `index`. Offsets in the emitted entries are relative to the start of
/// the whole blocks region, so calling this for upper then lower onto
/// the same string yields the final region verbatim.
Status EncodeNeighborBlocks(std::span<const EdgeIndex> offsets,
                            std::span<const VertexId> neighbors,
                            std::uint32_t block_edges,
                            std::vector<BlockIndexEntry>* index,
                            std::string* blocks) {
  const std::size_t num_edges = neighbors.size();
  std::vector<std::uint64_t> mapped;
  mapped.reserve(std::min<std::size_t>(block_edges, num_edges));
  std::size_t vp = 0;  // current vertex: offsets[vp] <= e < offsets[vp+1].
  for (std::size_t start = 0; start < num_edges; start += block_edges) {
    const std::size_t count =
        std::min<std::size_t>(block_edges, num_edges - start);
    mapped.clear();
    for (std::size_t e = start; e < start + count; ++e) {
      while (vp + 1 < offsets.size() && offsets[vp + 1] <= e) ++vp;
      const bool restart = e == start || offsets[vp] == e;
      mapped.push_back(restart
                           ? std::uint64_t{neighbors[e]}
                           : std::uint64_t{neighbors[e]} - neighbors[e - 1] - 1);
    }
    BlockIndexEntry entry;
    BlockCodec codec = BlockCodec::kVarint;
    std::uint16_t rice_k = 0;
    const std::string bytes = EncodeBlock(mapped, &codec, &rice_k);
    if (bytes.size() > 0xFFFFFFFFull) {
      return Status::InvalidArgument(
          "snapshot block_edges too large: one encoded block exceeds 4 GiB");
    }
    entry.offset = blocks->size();
    entry.bytes = static_cast<std::uint32_t>(bytes.size());
    entry.checksum = Fold32(Fnv1a64(bytes.data(), bytes.size()));
    entry.codec = static_cast<std::uint16_t>(codec);
    entry.rice_k = rice_k;
    index->push_back(entry);
    blocks->append(bytes);
  }
  return Status::OK();
}

Status WriteSnapshotV3(const BipartiteGraph& g, const std::string& path,
                       std::uint32_t block_edges) {
  if (block_edges == 0) {
    return Status::InvalidArgument("snapshot block_edges must be >= 1");
  }
  const SnapshotCounts counts = CountsOf(g);
  const std::uint64_t checksum = ChecksumOf(counts, g);

  const std::string upper_offsets_c =
      EncodeOffsetsSection(g.Offsets(Side::kUpper));
  const std::string lower_offsets_c =
      EncodeOffsetsSection(g.Offsets(Side::kLower));
  const std::string upper_attrs_c = EncodeAttrsSection(g.AttrArray(Side::kUpper));
  const std::string lower_attrs_c = EncodeAttrsSection(g.AttrArray(Side::kLower));

  std::vector<BlockIndexEntry> index;
  std::string blocks;
  FAIRBC_RETURN_IF_ERROR(EncodeNeighborBlocks(g.Offsets(Side::kUpper),
                                              g.NeighborArray(Side::kUpper),
                                              block_edges, &index, &blocks));
  const std::size_t num_upper_blocks = index.size();
  FAIRBC_RETURN_IF_ERROR(EncodeNeighborBlocks(g.Offsets(Side::kLower),
                                              g.NeighborArray(Side::kLower),
                                              block_edges, &index, &blocks));
  const std::size_t num_lower_blocks = index.size() - num_upper_blocks;
  if (num_upper_blocks > 0xFFFFFFFFull || num_lower_blocks > 0xFFFFFFFFull) {
    return Status::InvalidArgument(
        "snapshot block_edges too small for this edge count");
  }

  V3Header header;
  header.block_edges = block_edges;
  header.num_upper_blocks = static_cast<std::uint32_t>(num_upper_blocks);
  header.num_lower_blocks = static_cast<std::uint32_t>(num_lower_blocks);
  header.upper_offsets_bytes = upper_offsets_c.size();
  header.lower_offsets_bytes = lower_offsets_c.size();
  header.upper_attrs_bytes = upper_attrs_c.size();
  header.lower_attrs_bytes = lower_attrs_c.size();
  header.blocks_bytes = blocks.size();

  std::uint64_t state = Fnv1a64(&counts, sizeof(counts));
  const auto* header_bytes = reinterpret_cast<const unsigned char*>(&header);
  state = Fnv1a64(header_bytes + sizeof(header.index_checksum),
                  sizeof(header) - sizeof(header.index_checksum), state);
  state = Fnv1a64(index.data(), index.size() * sizeof(BlockIndexEntry), state);
  state = Fnv1a64(upper_offsets_c.data(), upper_offsets_c.size(), state);
  state = Fnv1a64(lower_offsets_c.data(), lower_offsets_c.size(), state);
  state = Fnv1a64(upper_attrs_c.data(), upper_attrs_c.size(), state);
  state = Fnv1a64(lower_attrs_c.data(), lower_attrs_c.size(), state);
  header.index_checksum = state;

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  out.write(kSnapshotMagic, sizeof(kSnapshotMagic));
  const std::uint32_t version = kSnapshotVersionCompressed;
  const std::uint32_t reserved = 0;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&reserved), sizeof(reserved));
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  out.write(reinterpret_cast<const char*>(&counts), sizeof(counts));
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out.write(reinterpret_cast<const char*>(index.data()),
            static_cast<std::streamsize>(index.size() *
                                         sizeof(BlockIndexEntry)));
  out.write(upper_offsets_c.data(),
            static_cast<std::streamsize>(upper_offsets_c.size()));
  out.write(lower_offsets_c.data(),
            static_cast<std::streamsize>(lower_offsets_c.size()));
  out.write(upper_attrs_c.data(),
            static_cast<std::streamsize>(upper_attrs_c.size()));
  out.write(lower_attrs_c.data(),
            static_cast<std::streamsize>(lower_attrs_c.size()));
  out.write(blocks.data(), static_cast<std::streamsize>(blocks.size()));
  out.flush();
  if (!out) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

}  // namespace

std::uint64_t Fnv1a64(const void* data, std::size_t size, std::uint64_t state) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    state ^= bytes[i];
    state *= kFnvPrime;
  }
  return state;
}

std::uint64_t GraphFingerprint(const BipartiteGraph& g) {
  const SnapshotCounts counts = CountsOf(g);
  return ChecksumOf(counts, g);
}

Status WriteSnapshot(const BipartiteGraph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  const SnapshotCounts counts = CountsOf(g);
  const std::uint64_t checksum = ChecksumOf(counts, g);

  out.write(kSnapshotMagic, sizeof(kSnapshotMagic));
  const std::uint32_t version = kSnapshotVersion;
  const std::uint32_t reserved = 0;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&reserved), sizeof(reserved));
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  out.write(reinterpret_cast<const char*>(&counts), sizeof(counts));
  WriteArray(out, g.Offsets(Side::kUpper));
  WriteArray(out, g.NeighborArray(Side::kUpper));
  WriteArray(out, g.Offsets(Side::kLower));
  WriteArray(out, g.NeighborArray(Side::kLower));
  WriteArray(out, g.AttrArray(Side::kUpper));
  WriteArray(out, g.AttrArray(Side::kLower));
  out.flush();
  if (!out) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

Status WriteSnapshot(const BipartiteGraph& g, const std::string& path,
                     const SnapshotWriteOptions& options) {
  if (options.version == kSnapshotVersion) {
    return WriteSnapshot(g, path);
  }
  if (options.version == kSnapshotVersionCompressed) {
    return WriteSnapshotV3(g, path, options.block_edges);
  }
  return Status::InvalidArgument("unsupported snapshot write version " +
                                 std::to_string(options.version));
}

Result<BipartiteGraph> ReadSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open: " + path);
  }

  char magic[sizeof(kSnapshotMagic)];
  in.read(magic, sizeof(magic));
  if (in.gcount() != sizeof(magic) ||
      std::memcmp(magic, kSnapshotMagic, sizeof(magic)) != 0) {
    return Status::CorruptInput("not a fairbc snapshot: " + path);
  }
  std::uint32_t version = 0;
  std::uint32_t reserved = 0;
  std::uint64_t checksum = 0;
  SnapshotCounts counts;
  if (!ReadPod(in, &version) || !ReadPod(in, &reserved) ||
      !ReadPod(in, &checksum) || !ReadPod(in, &counts)) {
    return Status::CorruptInput("truncated snapshot header: " + path);
  }
  if (version == kSnapshotVersionCompressed) {
    in.close();
    Result<SnapshotReader> reader = SnapshotReader::Open(path);
    if (!reader.ok()) return reader.status();
    return reader.value().DecodeGraph();
  }
  if (version != 1 && version != kSnapshotVersion) {
    return Status::CorruptInput("unsupported snapshot version " +
                                std::to_string(version) + ": " + path);
  }

  // Bound the payload by the actual file size *before* sizing any
  // vector from the (as yet unauthenticated) count fields: a corrupt
  // num_edges must come back as a Status, not a length_error/OOM. The
  // exact-size check also rejects trailing garbage.
  const std::streampos payload_start = in.tellg();
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(payload_start);
  if (ExpectedPayloadBytes(counts, version) !=
      file_size - static_cast<std::uint64_t>(payload_start)) {
    return Status::CorruptInput(
        "snapshot payload size does not match its header counts: " + path);
  }

  const bool padded = version >= 2;
  std::vector<EdgeIndex> upper_offsets;
  std::vector<VertexId> upper_neighbors;
  std::vector<EdgeIndex> lower_offsets;
  std::vector<VertexId> lower_neighbors;
  std::vector<AttrId> upper_attrs;
  std::vector<AttrId> lower_attrs;
  if (!ReadArray(in, counts.num_upper + std::size_t{1}, padded,
                 &upper_offsets) ||
      !ReadArray(in, counts.num_edges, padded, &upper_neighbors) ||
      !ReadArray(in, counts.num_lower + std::size_t{1}, padded,
                 &lower_offsets) ||
      !ReadArray(in, counts.num_edges, padded, &lower_neighbors) ||
      !ReadArray(in, counts.num_upper, padded, &upper_attrs) ||
      !ReadArray(in, counts.num_lower, padded, &lower_attrs)) {
    return Status::CorruptInput("truncated snapshot payload: " + path);
  }
  std::uint64_t state = Fnv1a64(&counts, sizeof(counts));
  state = FoldSpan(state, std::span<const EdgeIndex>(upper_offsets));
  state = FoldSpan(state, std::span<const VertexId>(upper_neighbors));
  state = FoldSpan(state, std::span<const EdgeIndex>(lower_offsets));
  state = FoldSpan(state, std::span<const VertexId>(lower_neighbors));
  state = FoldSpan(state, std::span<const AttrId>(upper_attrs));
  state = FoldSpan(state, std::span<const AttrId>(lower_attrs));
  if (state != checksum) {
    return Status::CorruptInput("snapshot checksum mismatch: " + path);
  }

  BipartiteGraph g(std::move(upper_offsets), std::move(upper_neighbors),
                   std::move(lower_offsets), std::move(lower_neighbors),
                   std::move(upper_attrs), std::move(lower_attrs),
                   static_cast<AttrId>(counts.num_upper_attrs),
                   static_cast<AttrId>(counts.num_lower_attrs));
  Status valid = g.Validate();
  if (!valid.ok()) {
    return Status::CorruptInput("snapshot fails graph validation (" +
                                valid.message() + "): " + path);
  }
  return g;
}

Result<BipartiteGraph> ReadSnapshotView(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open: " + path);
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::CorruptInput("cannot stat: " + path);
  }
  const auto file_size = static_cast<std::uint64_t>(st.st_size);
  constexpr std::uint64_t kHeaderBytes =
      sizeof(kSnapshotMagic) + 2 * sizeof(std::uint32_t) +
      sizeof(std::uint64_t) + sizeof(SnapshotCounts);
  static_assert(kHeaderBytes == 48 && kHeaderBytes % kSectionAlign == 0);
  if (file_size < kHeaderBytes) {
    return (::close(fd),
            Status::CorruptInput("truncated snapshot header: " + path));
  }
  void* mapped = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference.
  if (mapped == MAP_FAILED) {
    return Status::Internal("mmap failed: " + path);
  }
  std::shared_ptr<const void> backing(
      mapped, [file_size](const void* p) {
        ::munmap(const_cast<void*>(p), file_size);
      });
  const auto* base = static_cast<const unsigned char*>(mapped);

  if (std::memcmp(base, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::CorruptInput("not a fairbc snapshot: " + path);
  }
  std::uint32_t version = 0;
  std::uint64_t checksum = 0;
  SnapshotCounts counts;
  std::memcpy(&version, base + 8, sizeof(version));
  std::memcpy(&checksum, base + 16, sizeof(checksum));
  std::memcpy(&counts, base + 24, sizeof(counts));
  if (version == 1 || version == kSnapshotVersionCompressed) {
    // Version 1 has no alignment padding, so its u64 sections may start
    // misaligned in the mapping; version 3 sections are compressed and
    // cannot be viewed in place at all. Both fall back to the copying
    // (for v3: eager-decoding) loader — same bytes, IsView() false.
    backing.reset();
    return ReadSnapshot(path);
  }
  if (version != kSnapshotVersion) {
    return Status::CorruptInput("unsupported snapshot version " +
                                std::to_string(version) + ": " + path);
  }
  if (ExpectedPayloadBytes(counts, version) != file_size - kHeaderBytes) {
    return Status::CorruptInput(
        "snapshot payload size does not match its header counts: " + path);
  }

  // Slice the six sections out of the mapping; every section start is
  // 8-byte aligned by the v2 padding (and mmap bases are page-aligned).
  // Padding bytes must be zero — the checksum excludes them.
  std::uint64_t pos = kHeaderBytes;
  bool padding_clean = true;
  auto take = [&](std::uint64_t count, auto* span_out) {
    using T = typename std::remove_reference_t<decltype(*span_out)>::value_type;
    const std::uint64_t bytes = count * sizeof(T);
    *span_out = std::span<const T>(reinterpret_cast<const T*>(base + pos),
                                   static_cast<std::size_t>(count));
    pos += bytes;
    for (std::uint64_t i = 0; i < PadTo8(bytes); ++i) {
      padding_clean = padding_clean && base[pos + i] == 0;
    }
    pos += PadTo8(bytes);
  };
  std::span<const EdgeIndex> upper_offsets, lower_offsets;
  std::span<const VertexId> upper_neighbors, lower_neighbors;
  std::span<const AttrId> upper_attrs, lower_attrs;
  take(counts.num_upper + std::uint64_t{1}, &upper_offsets);
  take(counts.num_edges, &upper_neighbors);
  take(counts.num_lower + std::uint64_t{1}, &lower_offsets);
  take(counts.num_edges, &lower_neighbors);
  take(counts.num_upper, &upper_attrs);
  take(counts.num_lower, &lower_attrs);
  if (!padding_clean) {
    return Status::CorruptInput("snapshot padding bytes corrupted: " + path);
  }

  std::uint64_t state = Fnv1a64(&counts, sizeof(counts));
  state = FoldSpan(state, upper_offsets);
  state = FoldSpan(state, upper_neighbors);
  state = FoldSpan(state, lower_offsets);
  state = FoldSpan(state, lower_neighbors);
  state = FoldSpan(state, upper_attrs);
  state = FoldSpan(state, lower_attrs);
  if (state != checksum) {
    return Status::CorruptInput("snapshot checksum mismatch: " + path);
  }

  BipartiteGraph g = BipartiteGraph::MakeView(
      upper_offsets, upper_neighbors, lower_offsets, lower_neighbors,
      upper_attrs, lower_attrs, static_cast<AttrId>(counts.num_upper_attrs),
      static_cast<AttrId>(counts.num_lower_attrs), std::move(backing));
  Status valid = g.Validate();
  if (!valid.ok()) {
    return Status::CorruptInput("snapshot fails graph validation (" +
                                valid.message() + "): " + path);
  }
  return g;
}

struct SnapshotReader::Impl {
  std::shared_ptr<const void> backing;
  const unsigned char* base = nullptr;
  std::uint64_t file_size = 0;
  std::string path;
  SnapshotCounts counts;
  std::uint64_t checksum = 0;
  V3Header header;
  std::vector<BlockIndexEntry> index;  ///< upper blocks, then lower blocks.
  std::uint64_t blocks_region = 0;     ///< file offset of the blocks region.
  std::vector<EdgeIndex> upper_offsets;
  std::vector<EdgeIndex> lower_offsets;
  std::vector<AttrId> upper_attrs;
  std::vector<AttrId> lower_attrs;
};

Result<SnapshotReader> SnapshotReader::Open(const std::string& path) {
  auto impl = std::make_shared<Impl>();
  impl->path = path;

  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open: " + path);
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::CorruptInput("cannot stat: " + path);
  }
  impl->file_size = static_cast<std::uint64_t>(st.st_size);
  if (impl->file_size < kCommonHeaderBytes + sizeof(V3Header)) {
    ::close(fd);
    return Status::CorruptInput("truncated snapshot header: " + path);
  }
  void* mapped =
      ::mmap(nullptr, impl->file_size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (mapped == MAP_FAILED) {
    return Status::Internal("mmap failed: " + path);
  }
  const std::uint64_t file_size = impl->file_size;
  impl->backing = std::shared_ptr<const void>(
      mapped, [file_size](const void* p) {
        ::munmap(const_cast<void*>(p), file_size);
      });
  const auto* base = static_cast<const unsigned char*>(mapped);
  impl->base = base;

  if (std::memcmp(base, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::CorruptInput("not a fairbc snapshot: " + path);
  }
  std::uint32_t version = 0;
  std::memcpy(&version, base + 8, sizeof(version));
  if (version != kSnapshotVersionCompressed) {
    return Status::CorruptInput("not a compressed (v3) snapshot, version " +
                                std::to_string(version) + ": " + path);
  }
  std::memcpy(&impl->checksum, base + 16, sizeof(impl->checksum));
  std::memcpy(&impl->counts, base + 24, sizeof(impl->counts));
  std::memcpy(&impl->header, base + kCommonHeaderBytes, sizeof(V3Header));
  const SnapshotCounts& counts = impl->counts;
  const V3Header& header = impl->header;

  if (header.block_edges == 0) {
    return Status::CorruptInput("snapshot block_edges is zero: " + path);
  }
  const std::uint64_t expect_blocks =
      counts.num_edges == 0
          ? 0
          : (counts.num_edges - 1) / header.block_edges + 1;
  if (header.num_upper_blocks != expect_blocks ||
      header.num_lower_blocks != expect_blocks) {
    return Status::CorruptInput(
        "snapshot block count does not match its edge count: " + path);
  }
  const std::uint64_t num_blocks = 2 * expect_blocks;
  const unsigned __int128 index_bytes =
      static_cast<unsigned __int128>(num_blocks) * sizeof(BlockIndexEntry);
  // Exact-size check before trusting any of the section lengths: a
  // corrupt header must come back as a Status, not a wild read.
  unsigned __int128 total = kCommonHeaderBytes + sizeof(V3Header);
  total += index_bytes;
  total += header.upper_offsets_bytes;
  total += header.lower_offsets_bytes;
  total += header.upper_attrs_bytes;
  total += header.lower_attrs_bytes;
  total += header.blocks_bytes;
  if (total != impl->file_size) {
    return Status::CorruptInput(
        "snapshot payload size does not match its header counts: " + path);
  }

  // Metadata checksum — verified before any count-derived allocation, so
  // a flipped num_upper/num_edges cannot cause OOM. The block index and
  // the four eager sections are contiguous in the file, hence one pass.
  const std::uint64_t index_off = kCommonHeaderBytes + sizeof(V3Header);
  const std::uint64_t eager_bytes =
      header.upper_offsets_bytes + header.lower_offsets_bytes +
      header.upper_attrs_bytes + header.lower_attrs_bytes;
  std::uint64_t state = Fnv1a64(base + 24, sizeof(SnapshotCounts));
  state = Fnv1a64(base + kCommonHeaderBytes + sizeof(header.index_checksum),
                  sizeof(V3Header) - sizeof(header.index_checksum), state);
  state = Fnv1a64(base + index_off,
                  static_cast<std::size_t>(index_bytes) + eager_bytes, state);
  if (state != header.index_checksum) {
    return Status::CorruptInput("snapshot index checksum mismatch: " + path);
  }

  impl->index.resize(num_blocks);
  if (num_blocks != 0) {
    std::memcpy(impl->index.data(), base + index_off,
                static_cast<std::size_t>(index_bytes));
  }
  // Entries must tile the blocks region exactly in order — this is what
  // makes `base + blocks_region + entry.offset .. + entry.bytes` safe to
  // read for every entry without per-access bounds math.
  std::uint64_t running = 0;
  for (const BlockIndexEntry& entry : impl->index) {
    if (entry.offset != running ||
        entry.bytes > header.blocks_bytes - running ||
        entry.codec > static_cast<std::uint16_t>(BlockCodec::kRice) ||
        entry.rice_k > 63 || entry.reserved != 0) {
      return Status::CorruptInput("snapshot block index invalid: " + path);
    }
    running += entry.bytes;
  }
  if (running != header.blocks_bytes) {
    return Status::CorruptInput("snapshot block index invalid: " + path);
  }
  impl->blocks_region = index_off + static_cast<std::uint64_t>(index_bytes) +
                        eager_bytes;

  // Eagerly decode the O(vertices) sections; neighbor blocks stay cold.
  std::uint64_t pos = index_off + static_cast<std::uint64_t>(index_bytes);
  auto decode_section = [&](std::uint64_t bytes, auto&& fn) -> Status {
    Status s = fn(base + pos, static_cast<std::size_t>(bytes));
    pos += bytes;
    return s;
  };
  auto wrap = [&path](Status s) {
    return s.ok() ? s : Status::CorruptInput(s.message() + ": " + path);
  };
  Status s = wrap(decode_section(
      header.upper_offsets_bytes, [&](const unsigned char* d, std::size_t n) {
        return DecodeOffsetsSection(d, n, counts.num_upper + std::size_t{1},
                                    counts.num_edges, &impl->upper_offsets);
      }));
  if (!s.ok()) return s;
  s = wrap(decode_section(
      header.lower_offsets_bytes, [&](const unsigned char* d, std::size_t n) {
        return DecodeOffsetsSection(d, n, counts.num_lower + std::size_t{1},
                                    counts.num_edges, &impl->lower_offsets);
      }));
  if (!s.ok()) return s;
  s = wrap(decode_section(
      header.upper_attrs_bytes, [&](const unsigned char* d, std::size_t n) {
        return DecodeAttrsSection(d, n, counts.num_upper,
                                  counts.num_upper_attrs, &impl->upper_attrs);
      }));
  if (!s.ok()) return s;
  s = wrap(decode_section(
      header.lower_attrs_bytes, [&](const unsigned char* d, std::size_t n) {
        return DecodeAttrsSection(d, n, counts.num_lower,
                                  counts.num_lower_attrs, &impl->lower_attrs);
      }));
  if (!s.ok()) return s;

  SnapshotReader reader;
  reader.impl_ = std::move(impl);
  return reader;
}

std::uint32_t SnapshotReader::NumUpper() const { return impl_->counts.num_upper; }
std::uint32_t SnapshotReader::NumLower() const { return impl_->counts.num_lower; }
std::uint64_t SnapshotReader::NumEdges() const { return impl_->counts.num_edges; }
std::uint16_t SnapshotReader::NumAttrs(Side side) const {
  return side == Side::kUpper ? impl_->counts.num_upper_attrs
                              : impl_->counts.num_lower_attrs;
}
std::uint32_t SnapshotReader::BlockEdges() const {
  return impl_->header.block_edges;
}
std::uint64_t SnapshotReader::NumBlocks() const {
  return impl_->header.num_upper_blocks;
}
std::uint64_t SnapshotReader::Checksum() const { return impl_->checksum; }
std::uint64_t SnapshotReader::FileBytes() const { return impl_->file_size; }

const std::vector<EdgeIndex>& SnapshotReader::Offsets(Side side) const {
  return side == Side::kUpper ? impl_->upper_offsets : impl_->lower_offsets;
}
const std::vector<AttrId>& SnapshotReader::Attrs(Side side) const {
  return side == Side::kUpper ? impl_->upper_attrs : impl_->lower_attrs;
}

Status SnapshotReader::DecodeEdgeRange(Side side, std::uint64_t first,
                                       std::uint64_t count,
                                       std::vector<VertexId>* out) const {
  FAIRBC_CHECK(impl_ != nullptr);
  const Impl& im = *impl_;
  const std::uint64_t num_edges = im.counts.num_edges;
  if (first > num_edges || count > num_edges - first) {
    return Status::InvalidArgument("snapshot edge range out of bounds");
  }
  out->clear();
  out->resize(static_cast<std::size_t>(count));
  if (count == 0) return Status::OK();

  const std::vector<EdgeIndex>& offsets =
      side == Side::kUpper ? im.upper_offsets : im.lower_offsets;
  const std::uint64_t block = im.header.block_edges;
  const std::uint64_t side_base =
      side == Side::kUpper ? 0 : im.header.num_upper_blocks;
  // Decoded ids index the *opposite* side.
  const std::uint64_t opposite =
      side == Side::kUpper ? im.counts.num_lower : im.counts.num_upper;

  const std::uint64_t b0 = first / block;
  const std::uint64_t b1 = (first + count - 1) / block;
  std::vector<std::uint64_t> vals(
      static_cast<std::size_t>(std::min<std::uint64_t>(block, num_edges)));
  for (std::uint64_t b = b0; b <= b1; ++b) {
    const BlockIndexEntry& entry = im.index[static_cast<std::size_t>(
        side_base + b)];
    const std::uint64_t block_start = b * block;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(block, num_edges - block_start));
    const unsigned char* data = im.base + im.blocks_region + entry.offset;
    if (Fold32(Fnv1a64(data, entry.bytes)) != entry.checksum) {
      return Status::CorruptInput("snapshot block checksum mismatch: " +
                                  im.path);
    }
    Status s = DecodeBlock(
        std::string_view(reinterpret_cast<const char*>(data), entry.bytes),
        static_cast<BlockCodec>(entry.codec), entry.rice_k, n, vals.data());
    if (!s.ok()) {
      return Status::CorruptInput(s.message() + ": " + im.path);
    }
    // Un-delta with the same vertex-pointer walk the encoder used: the
    // value is absolute at a block start or a list start, gap-minus-one
    // otherwise.
    std::size_t vp = static_cast<std::size_t>(
        std::upper_bound(offsets.begin(), offsets.end(), block_start) -
        offsets.begin() - 1);
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t e = block_start + i;
      while (vp + 1 < offsets.size() && offsets[vp + 1] <= e) ++vp;
      const bool restart = i == 0 || offsets[vp] == e;
      // Bound the raw value first so prev + vals[i] + 1 cannot wrap.
      if (vals[i] >= opposite) {
        return Status::CorruptInput("snapshot neighbor id out of range: " +
                                    im.path);
      }
      const std::uint64_t value = restart ? vals[i] : prev + vals[i] + 1;
      if (value >= opposite) {
        return Status::CorruptInput("snapshot neighbor id out of range: " +
                                    im.path);
      }
      prev = value;
      // Only the requested slice lands in `out`: the last block can run
      // past `first + count`, and those tail entries must not be stored.
      if (e >= first && e - first < count) {
        (*out)[static_cast<std::size_t>(e - first)] =
            static_cast<VertexId>(value);
      }
    }
  }
  return Status::OK();
}

Status SnapshotReader::DecodeNeighbors(Side side, VertexId v,
                                       std::vector<VertexId>* out) const {
  FAIRBC_CHECK(impl_ != nullptr);
  const std::vector<EdgeIndex>& offsets = Offsets(side);
  if (static_cast<std::size_t>(v) + 1 >= offsets.size()) {
    return Status::InvalidArgument("snapshot vertex id out of bounds");
  }
  return DecodeEdgeRange(side, offsets[v], offsets[v + 1] - offsets[v], out);
}

Result<BipartiteGraph> SnapshotReader::DecodeGraph() const {
  FAIRBC_CHECK(impl_ != nullptr);
  const Impl& im = *impl_;
  std::vector<VertexId> upper_neighbors;
  std::vector<VertexId> lower_neighbors;
  Status s = DecodeEdgeRange(Side::kUpper, 0, im.counts.num_edges,
                             &upper_neighbors);
  if (!s.ok()) return s;
  s = DecodeEdgeRange(Side::kLower, 0, im.counts.num_edges, &lower_neighbors);
  if (!s.ok()) return s;

  BipartiteGraph g(im.upper_offsets, std::move(upper_neighbors),
                   im.lower_offsets, std::move(lower_neighbors),
                   im.upper_attrs, im.lower_attrs,
                   static_cast<AttrId>(im.counts.num_upper_attrs),
                   static_cast<AttrId>(im.counts.num_lower_attrs));
  // The per-block checksums already authenticated each section, but the
  // header fingerprint is the cross-format contract (it is what v2 files
  // carry and what GraphCatalog/ResultCache key on) — verify it too.
  if (GraphFingerprint(g) != im.checksum) {
    return Status::CorruptInput("snapshot checksum mismatch: " + im.path);
  }
  Status valid = g.Validate();
  if (!valid.ok()) {
    return Status::CorruptInput("snapshot fails graph validation (" +
                                valid.message() + "): " + im.path);
  }
  return g;
}

Result<SnapshotInfo> ProbeSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open: " + path);
  }
  char magic[sizeof(kSnapshotMagic)];
  in.read(magic, sizeof(magic));
  if (in.gcount() != sizeof(magic) ||
      std::memcmp(magic, kSnapshotMagic, sizeof(magic)) != 0) {
    return Status::CorruptInput("not a fairbc snapshot: " + path);
  }
  SnapshotInfo info;
  std::uint32_t reserved = 0;
  SnapshotCounts counts;
  if (!ReadPod(in, &info.version) || !ReadPod(in, &reserved) ||
      !ReadPod(in, &info.checksum) || !ReadPod(in, &counts)) {
    return Status::CorruptInput("truncated snapshot header: " + path);
  }
  info.num_upper = counts.num_upper;
  info.num_lower = counts.num_lower;
  info.num_edges = counts.num_edges;
  info.num_upper_attrs = counts.num_upper_attrs;
  info.num_lower_attrs = counts.num_lower_attrs;

  const std::streampos here = in.tellg();
  in.seekg(0, std::ios::end);
  info.file_bytes = static_cast<std::uint64_t>(in.tellg());
  in.seekg(here);

  const unsigned __int128 v2_payload = ExpectedPayloadBytes(counts, 2);
  if (v2_payload >
      ~std::uint64_t{0} - kCommonHeaderBytes) {  // corrupt counts.
    return Status::CorruptInput(
        "snapshot counts imply an impossible payload size: " + path);
  }
  info.uncompressed_bytes =
      kCommonHeaderBytes + static_cast<std::uint64_t>(v2_payload);

  if (info.version == 1 || info.version == kSnapshotVersion) {
    if (ExpectedPayloadBytes(counts, info.version) !=
        info.file_bytes - kCommonHeaderBytes) {
      return Status::CorruptInput(
          "snapshot payload size does not match its header counts: " + path);
    }
    return info;
  }
  if (info.version != kSnapshotVersionCompressed) {
    return Status::CorruptInput("unsupported snapshot version " +
                                std::to_string(info.version) + ": " + path);
  }
  V3Header header;
  if (!ReadPod(in, &header)) {
    return Status::CorruptInput("truncated snapshot header: " + path);
  }
  if (header.block_edges == 0) {
    return Status::CorruptInput("snapshot block_edges is zero: " + path);
  }
  const std::uint64_t expect_blocks =
      counts.num_edges == 0
          ? 0
          : (counts.num_edges - 1) / header.block_edges + 1;
  if (header.num_upper_blocks != expect_blocks ||
      header.num_lower_blocks != expect_blocks) {
    return Status::CorruptInput(
        "snapshot block count does not match its edge count: " + path);
  }
  unsigned __int128 total = kCommonHeaderBytes + sizeof(V3Header);
  total += static_cast<unsigned __int128>(2 * expect_blocks) *
           sizeof(BlockIndexEntry);
  total += header.upper_offsets_bytes;
  total += header.lower_offsets_bytes;
  total += header.upper_attrs_bytes;
  total += header.lower_attrs_bytes;
  total += header.blocks_bytes;
  if (total != info.file_bytes) {
    return Status::CorruptInput(
        "snapshot payload size does not match its header counts: " + path);
  }
  info.block_edges = header.block_edges;
  info.num_blocks = expect_blocks;
  return info;
}

}  // namespace fairbc
