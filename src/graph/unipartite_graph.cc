#include "graph/unipartite_graph.h"

#include <algorithm>

#include "common/status.h"

namespace fairbc {

std::size_t UnipartiteGraph::MemoryBytes() const {
  return offsets.capacity() * sizeof(EdgeIndex) +
         neighbors.capacity() * sizeof(VertexId) +
         attrs.capacity() * sizeof(AttrId);
}

UnipartiteGraph UnipartiteGraph::FromEdges(
    VertexId n, const std::vector<std::pair<VertexId, VertexId>>& edges,
    std::vector<AttrId> attrs, AttrId num_attrs) {
  UnipartiteGraph h;
  h.attrs = std::move(attrs);
  h.num_attrs = num_attrs;
  h.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [a, b] : edges) {
    FAIRBC_CHECK(a < n && b < n && a != b);
    ++h.offsets[a + 1];
    ++h.offsets[b + 1];
  }
  for (VertexId v = 0; v < n; ++v) h.offsets[v + 1] += h.offsets[v];
  h.neighbors.resize(h.offsets[n]);
  std::vector<EdgeIndex> cursor(h.offsets.begin(), h.offsets.end() - 1);
  for (const auto& [a, b] : edges) {
    h.neighbors[cursor[a]++] = b;
    h.neighbors[cursor[b]++] = a;
  }
  for (VertexId v = 0; v < n; ++v) {
    std::sort(h.neighbors.begin() + h.offsets[v],
              h.neighbors.begin() + h.offsets[v + 1]);
  }
  return h;
}

std::vector<std::vector<VertexId>> UnipartiteGraph::AdjacencyLists() const {
  std::vector<std::vector<VertexId>> adj(NumVertices());
  for (VertexId v = 0; v < NumVertices(); ++v) {
    const auto nbrs = Neighbors(v);
    adj[v].assign(nbrs.begin(), nbrs.end());
  }
  return adj;
}

}  // namespace fairbc
