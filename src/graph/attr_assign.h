#ifndef FAIRBC_GRAPH_ATTR_ASSIGN_H_
#define FAIRBC_GRAPH_ATTR_ASSIGN_H_

#include <cstdint>

#include "graph/bipartite_graph.h"

namespace fairbc {

/// Attribute re-assignment strategies used when preparing experiment
/// graphs (the paper assigns random attributes to the non-attributed
/// KONECT inputs; the case studies derive attributes from metadata like
/// popularity, which degree-based assignment emulates).
enum class AttrAssignment {
  kUniformRandom,  ///< each vertex uniform over [0, num_attrs).
  kByDegree,       ///< equal-frequency degree buckets: class 0 = highest-
                   ///< degree slice (the "popular" class), etc.
  kRoundRobin,     ///< vertex id modulo num_attrs (deterministic,
                   ///< balanced; useful in tests).
};

/// Returns a copy of `g` whose `side` attributes are re-assigned with
/// `strategy` over a domain of `num_attrs` classes. `seed` is used only
/// by kUniformRandom.
BipartiteGraph ReassignAttrs(const BipartiteGraph& g, Side side,
                             AttrAssignment strategy, AttrId num_attrs,
                             std::uint64_t seed);

}  // namespace fairbc

#endif  // FAIRBC_GRAPH_ATTR_ASSIGN_H_
