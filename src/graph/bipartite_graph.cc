#include "graph/bipartite_graph.h"

#include <algorithm>
#include <sstream>

namespace fairbc {

BipartiteGraph::BipartiteGraph(std::vector<EdgeIndex> upper_offsets,
                               std::vector<VertexId> upper_neighbors,
                               std::vector<EdgeIndex> lower_offsets,
                               std::vector<VertexId> lower_neighbors,
                               std::vector<AttrId> upper_attrs,
                               std::vector<AttrId> lower_attrs,
                               AttrId num_upper_attrs, AttrId num_lower_attrs)
    : num_upper_(static_cast<VertexId>(upper_offsets.size() - 1)),
      num_lower_(static_cast<VertexId>(lower_offsets.size() - 1)),
      num_edges_(upper_neighbors.size()),
      num_upper_attrs_(num_upper_attrs),
      num_lower_attrs_(num_lower_attrs),
      upper_offsets_(std::move(upper_offsets)),
      upper_neighbors_(std::move(upper_neighbors)),
      lower_offsets_(std::move(lower_offsets)),
      lower_neighbors_(std::move(lower_neighbors)),
      upper_attrs_(std::move(upper_attrs)),
      lower_attrs_(std::move(lower_attrs)) {
  FAIRBC_CHECK(upper_attrs_.size() == num_upper_);
  FAIRBC_CHECK(lower_attrs_.size() == num_lower_);
  FAIRBC_CHECK(lower_neighbors_.size() == num_edges_);
}

bool BipartiteGraph::HasEdge(VertexId u, VertexId v) const {
  auto nbrs = Neighbors(Side::kUpper, u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<VertexId> BipartiteGraph::AttrCounts(Side side) const {
  std::vector<VertexId> counts(NumAttrs(side), 0);
  const auto& attrs = side == Side::kUpper ? upper_attrs_ : lower_attrs_;
  for (AttrId a : attrs) ++counts[a];
  return counts;
}

double BipartiteGraph::Density() const {
  if (num_upper_ == 0 || num_lower_ == 0) return 0.0;
  return static_cast<double>(num_edges_) /
         (static_cast<double>(num_upper_) * static_cast<double>(num_lower_));
}

std::size_t BipartiteGraph::MemoryBytes() const {
  return upper_offsets_.size() * sizeof(EdgeIndex) +
         lower_offsets_.size() * sizeof(EdgeIndex) +
         upper_neighbors_.size() * sizeof(VertexId) +
         lower_neighbors_.size() * sizeof(VertexId) +
         upper_attrs_.size() * sizeof(AttrId) +
         lower_attrs_.size() * sizeof(AttrId);
}

Status BipartiteGraph::Validate() const {
  auto check_side = [&](Side side, VertexId n, VertexId other_n,
                        const std::vector<EdgeIndex>& off,
                        const std::vector<VertexId>& nbr) -> Status {
    if (off.size() != static_cast<std::size_t>(n) + 1) {
      return Status::CorruptInput("offset array size mismatch");
    }
    if (off.front() != 0 || off.back() != nbr.size()) {
      return Status::CorruptInput("offset endpoints mismatch");
    }
    for (VertexId v = 0; v < n; ++v) {
      if (off[v] > off[v + 1]) {
        return Status::CorruptInput("offsets not monotone");
      }
      for (EdgeIndex i = off[v]; i + 1 < off[v + 1]; ++i) {
        if (nbr[i] >= nbr[i + 1]) {
          return Status::CorruptInput("neighbors not sorted/deduped on " +
                                      std::string(ToString(side)));
        }
      }
      for (EdgeIndex i = off[v]; i < off[v + 1]; ++i) {
        if (nbr[i] >= other_n) {
          return Status::CorruptInput("neighbor id out of range");
        }
      }
    }
    return Status::OK();
  };
  FAIRBC_RETURN_IF_ERROR(check_side(Side::kUpper, num_upper_, num_lower_,
                                    upper_offsets_, upper_neighbors_));
  FAIRBC_RETURN_IF_ERROR(check_side(Side::kLower, num_lower_, num_upper_,
                                    lower_offsets_, lower_neighbors_));
  if (upper_neighbors_.size() != lower_neighbors_.size()) {
    return Status::CorruptInput("CSR directions disagree on edge count");
  }
  // Cross-check both directions describe the same edge set.
  for (VertexId u = 0; u < num_upper_; ++u) {
    for (VertexId v : Neighbors(Side::kUpper, u)) {
      auto back = Neighbors(Side::kLower, v);
      if (!std::binary_search(back.begin(), back.end(), u)) {
        return Status::CorruptInput("edge present only in one direction");
      }
    }
  }
  for (VertexId u = 0; u < num_upper_; ++u) {
    if (upper_attrs_[u] >= num_upper_attrs_) {
      return Status::CorruptInput("upper attribute out of domain");
    }
  }
  for (VertexId v = 0; v < num_lower_; ++v) {
    if (lower_attrs_[v] >= num_lower_attrs_) {
      return Status::CorruptInput("lower attribute out of domain");
    }
  }
  return Status::OK();
}

std::string BipartiteGraph::DebugString() const {
  std::ostringstream os;
  os << "BipartiteGraph(|U|=" << num_upper_ << ", |V|=" << num_lower_
     << ", |E|=" << num_edges_ << ", A_U=" << num_upper_attrs_
     << ", A_V=" << num_lower_attrs_ << ", density=" << Density() << ")";
  return os.str();
}

VertexId SideMasks::CountAlive(Side side) const {
  const auto& m = side == Side::kUpper ? upper_alive : lower_alive;
  VertexId n = 0;
  for (char c : m) n += (c != 0);
  return n;
}

BipartiteGraph InducedSubgraph(const BipartiteGraph& g, const SideMasks& masks,
                               IdMaps* id_maps) {
  FAIRBC_CHECK(masks.upper_alive.size() == g.NumUpper());
  FAIRBC_CHECK(masks.lower_alive.size() == g.NumLower());
  std::vector<VertexId> upper_new(g.NumUpper(), kInvalidVertex);
  std::vector<VertexId> lower_new(g.NumLower(), kInvalidVertex);
  IdMaps maps;
  for (VertexId u = 0; u < g.NumUpper(); ++u) {
    if (masks.upper_alive[u]) {
      upper_new[u] = static_cast<VertexId>(maps.upper_to_parent.size());
      maps.upper_to_parent.push_back(u);
    }
  }
  for (VertexId v = 0; v < g.NumLower(); ++v) {
    if (masks.lower_alive[v]) {
      lower_new[v] = static_cast<VertexId>(maps.lower_to_parent.size());
      maps.lower_to_parent.push_back(v);
    }
  }

  auto build_dir = [&](Side side, const std::vector<VertexId>& to_parent,
                       const std::vector<VertexId>& other_new,
                       const std::vector<char>& other_alive,
                       std::vector<EdgeIndex>& offsets,
                       std::vector<VertexId>& neighbors) {
    offsets.assign(to_parent.size() + 1, 0);
    for (std::size_t i = 0; i < to_parent.size(); ++i) {
      for (VertexId w : g.Neighbors(side, to_parent[i])) {
        if (other_alive[w]) ++offsets[i + 1];
      }
    }
    for (std::size_t i = 0; i < to_parent.size(); ++i) {
      offsets[i + 1] += offsets[i];
    }
    neighbors.resize(offsets.back());
    for (std::size_t i = 0; i < to_parent.size(); ++i) {
      EdgeIndex pos = offsets[i];
      for (VertexId w : g.Neighbors(side, to_parent[i])) {
        if (other_alive[w]) neighbors[pos++] = other_new[w];
      }
      // Parent lists are sorted and compaction is order-preserving, so the
      // result stays sorted.
    }
  };

  std::vector<EdgeIndex> up_off, lo_off;
  std::vector<VertexId> up_nbr, lo_nbr;
  build_dir(Side::kUpper, maps.upper_to_parent, lower_new, masks.lower_alive,
            up_off, up_nbr);
  build_dir(Side::kLower, maps.lower_to_parent, upper_new, masks.upper_alive,
            lo_off, lo_nbr);

  std::vector<AttrId> up_attrs(maps.upper_to_parent.size());
  std::vector<AttrId> lo_attrs(maps.lower_to_parent.size());
  for (std::size_t i = 0; i < maps.upper_to_parent.size(); ++i) {
    up_attrs[i] = g.Attr(Side::kUpper, maps.upper_to_parent[i]);
  }
  for (std::size_t i = 0; i < maps.lower_to_parent.size(); ++i) {
    lo_attrs[i] = g.Attr(Side::kLower, maps.lower_to_parent[i]);
  }

  if (id_maps != nullptr) *id_maps = std::move(maps);
  return BipartiteGraph(std::move(up_off), std::move(up_nbr), std::move(lo_off),
                        std::move(lo_nbr), std::move(up_attrs),
                        std::move(lo_attrs), g.NumAttrs(Side::kUpper),
                        g.NumAttrs(Side::kLower));
}

}  // namespace fairbc
