#include "graph/bipartite_graph.h"

#include <algorithm>
#include <sstream>

namespace fairbc {

BipartiteGraph::BipartiteGraph() { BindOwned(); }

BipartiteGraph::BipartiteGraph(std::vector<EdgeIndex> upper_offsets,
                               std::vector<VertexId> upper_neighbors,
                               std::vector<EdgeIndex> lower_offsets,
                               std::vector<VertexId> lower_neighbors,
                               std::vector<AttrId> upper_attrs,
                               std::vector<AttrId> lower_attrs,
                               AttrId num_upper_attrs, AttrId num_lower_attrs)
    : num_upper_(static_cast<VertexId>(upper_offsets.size() - 1)),
      num_lower_(static_cast<VertexId>(lower_offsets.size() - 1)),
      num_edges_(upper_neighbors.size()),
      num_upper_attrs_(num_upper_attrs),
      num_lower_attrs_(num_lower_attrs),
      upper_offsets_(std::move(upper_offsets)),
      upper_neighbors_(std::move(upper_neighbors)),
      lower_offsets_(std::move(lower_offsets)),
      lower_neighbors_(std::move(lower_neighbors)),
      upper_attrs_(std::move(upper_attrs)),
      lower_attrs_(std::move(lower_attrs)) {
  FAIRBC_CHECK(upper_attrs_.size() == num_upper_);
  FAIRBC_CHECK(lower_attrs_.size() == num_lower_);
  FAIRBC_CHECK(lower_neighbors_.size() == num_edges_);
  BindOwned();
}

BipartiteGraph BipartiteGraph::MakeView(
    std::span<const EdgeIndex> upper_offsets,
    std::span<const VertexId> upper_neighbors,
    std::span<const EdgeIndex> lower_offsets,
    std::span<const VertexId> lower_neighbors,
    std::span<const AttrId> upper_attrs, std::span<const AttrId> lower_attrs,
    AttrId num_upper_attrs, AttrId num_lower_attrs,
    std::shared_ptr<const void> backing) {
  FAIRBC_CHECK(!upper_offsets.empty() && !lower_offsets.empty());
  FAIRBC_CHECK(upper_attrs.size() == upper_offsets.size() - 1);
  FAIRBC_CHECK(lower_attrs.size() == lower_offsets.size() - 1);
  FAIRBC_CHECK(lower_neighbors.size() == upper_neighbors.size());
  FAIRBC_CHECK(backing != nullptr);
  BipartiteGraph g;
  g.num_upper_ = static_cast<VertexId>(upper_offsets.size() - 1);
  g.num_lower_ = static_cast<VertexId>(lower_offsets.size() - 1);
  g.num_edges_ = upper_neighbors.size();
  g.num_upper_attrs_ = num_upper_attrs;
  g.num_lower_attrs_ = num_lower_attrs;
  g.upper_offsets_v_ = upper_offsets;
  g.upper_neighbors_v_ = upper_neighbors;
  g.lower_offsets_v_ = lower_offsets;
  g.lower_neighbors_v_ = lower_neighbors;
  g.upper_attrs_v_ = upper_attrs;
  g.lower_attrs_v_ = lower_attrs;
  g.backing_ = std::move(backing);
  return g;
}

void BipartiteGraph::BindOwned() {
  // The empty state binds the offset views to this static zero entry, so
  // default construction and ResetToEmpty never allocate — which is what
  // lets the move operations be genuinely noexcept.
  static constexpr EdgeIndex kEmptyOffsets[1] = {0};
  upper_offsets_v_ = upper_offsets_.empty()
                         ? std::span<const EdgeIndex>(kEmptyOffsets, 1)
                         : std::span<const EdgeIndex>(upper_offsets_.data(),
                                                      upper_offsets_.size());
  lower_offsets_v_ = lower_offsets_.empty()
                         ? std::span<const EdgeIndex>(kEmptyOffsets, 1)
                         : std::span<const EdgeIndex>(lower_offsets_.data(),
                                                      lower_offsets_.size());
  upper_neighbors_v_ = {upper_neighbors_.data(), upper_neighbors_.size()};
  lower_neighbors_v_ = {lower_neighbors_.data(), lower_neighbors_.size()};
  upper_attrs_v_ = {upper_attrs_.data(), upper_attrs_.size()};
  lower_attrs_v_ = {lower_attrs_.data(), lower_attrs_.size()};
}

void BipartiteGraph::ResetToEmpty() {
  num_upper_ = num_lower_ = 0;
  num_edges_ = 0;
  num_upper_attrs_ = num_lower_attrs_ = 1;
  upper_offsets_.clear();
  upper_neighbors_.clear();
  lower_offsets_.clear();
  lower_neighbors_.clear();
  upper_attrs_.clear();
  lower_attrs_.clear();
  backing_.reset();
  BindOwned();
}

void BipartiteGraph::MoveFrom(BipartiteGraph& other) {
  num_upper_ = other.num_upper_;
  num_lower_ = other.num_lower_;
  num_edges_ = other.num_edges_;
  num_upper_attrs_ = other.num_upper_attrs_;
  num_lower_attrs_ = other.num_lower_attrs_;
  upper_offsets_ = std::move(other.upper_offsets_);
  upper_neighbors_ = std::move(other.upper_neighbors_);
  lower_offsets_ = std::move(other.lower_offsets_);
  lower_neighbors_ = std::move(other.lower_neighbors_);
  upper_attrs_ = std::move(other.upper_attrs_);
  lower_attrs_ = std::move(other.lower_attrs_);
  backing_ = std::move(other.backing_);
  if (backing_ != nullptr) {
    // View: the spans point into the backing, which we now hold.
    upper_offsets_v_ = other.upper_offsets_v_;
    upper_neighbors_v_ = other.upper_neighbors_v_;
    lower_offsets_v_ = other.lower_offsets_v_;
    lower_neighbors_v_ = other.lower_neighbors_v_;
    upper_attrs_v_ = other.upper_attrs_v_;
    lower_attrs_v_ = other.lower_attrs_v_;
  } else {
    // Owned: vector moves keep the heap buffers, rebinding is exact.
    BindOwned();
  }
  other.ResetToEmpty();
}

BipartiteGraph::BipartiteGraph(const BipartiteGraph& other)
    : num_upper_(other.num_upper_),
      num_lower_(other.num_lower_),
      num_edges_(other.num_edges_),
      num_upper_attrs_(other.num_upper_attrs_),
      num_lower_attrs_(other.num_lower_attrs_),
      upper_offsets_(other.upper_offsets_),
      upper_neighbors_(other.upper_neighbors_),
      lower_offsets_(other.lower_offsets_),
      lower_neighbors_(other.lower_neighbors_),
      upper_attrs_(other.upper_attrs_),
      lower_attrs_(other.lower_attrs_),
      backing_(other.backing_) {
  if (backing_ != nullptr) {
    // Copying a view shares the backing; the arrays are immutable.
    upper_offsets_v_ = other.upper_offsets_v_;
    upper_neighbors_v_ = other.upper_neighbors_v_;
    lower_offsets_v_ = other.lower_offsets_v_;
    lower_neighbors_v_ = other.lower_neighbors_v_;
    upper_attrs_v_ = other.upper_attrs_v_;
    lower_attrs_v_ = other.lower_attrs_v_;
  } else {
    BindOwned();
  }
}

BipartiteGraph& BipartiteGraph::operator=(const BipartiteGraph& other) {
  if (this != &other) {
    BipartiteGraph tmp(other);
    MoveFrom(tmp);
  }
  return *this;
}

BipartiteGraph::BipartiteGraph(BipartiteGraph&& other) noexcept {
  MoveFrom(other);
}

BipartiteGraph& BipartiteGraph::operator=(BipartiteGraph&& other) noexcept {
  if (this != &other) MoveFrom(other);
  return *this;
}

bool BipartiteGraph::HasEdge(VertexId u, VertexId v) const {
  auto nbrs = Neighbors(Side::kUpper, u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<VertexId> BipartiteGraph::AttrCounts(Side side) const {
  std::vector<VertexId> counts(NumAttrs(side), 0);
  for (AttrId a : AttrArray(side)) ++counts[a];
  return counts;
}

double BipartiteGraph::Density() const {
  if (num_upper_ == 0 || num_lower_ == 0) return 0.0;
  return static_cast<double>(num_edges_) /
         (static_cast<double>(num_upper_) * static_cast<double>(num_lower_));
}

std::size_t BipartiteGraph::MemoryBytes() const {
  // For a view this is the mapped CSR footprint, not heap usage.
  return upper_offsets_v_.size() * sizeof(EdgeIndex) +
         lower_offsets_v_.size() * sizeof(EdgeIndex) +
         upper_neighbors_v_.size() * sizeof(VertexId) +
         lower_neighbors_v_.size() * sizeof(VertexId) +
         upper_attrs_v_.size() * sizeof(AttrId) +
         lower_attrs_v_.size() * sizeof(AttrId);
}

Status BipartiteGraph::Validate() const {
  auto check_side = [&](Side side, VertexId n, VertexId other_n,
                        std::span<const EdgeIndex> off,
                        std::span<const VertexId> nbr) -> Status {
    if (off.size() != static_cast<std::size_t>(n) + 1) {
      return Status::CorruptInput("offset array size mismatch");
    }
    if (off.front() != 0 || off.back() != nbr.size()) {
      return Status::CorruptInput("offset endpoints mismatch");
    }
    for (VertexId v = 0; v < n; ++v) {
      if (off[v] > off[v + 1]) {
        return Status::CorruptInput("offsets not monotone");
      }
      for (EdgeIndex i = off[v]; i + 1 < off[v + 1]; ++i) {
        if (nbr[i] >= nbr[i + 1]) {
          return Status::CorruptInput("neighbors not sorted/deduped on " +
                                      std::string(ToString(side)));
        }
      }
      for (EdgeIndex i = off[v]; i < off[v + 1]; ++i) {
        if (nbr[i] >= other_n) {
          return Status::CorruptInput("neighbor id out of range");
        }
      }
    }
    return Status::OK();
  };
  FAIRBC_RETURN_IF_ERROR(check_side(Side::kUpper, num_upper_, num_lower_,
                                    upper_offsets_v_, upper_neighbors_v_));
  FAIRBC_RETURN_IF_ERROR(check_side(Side::kLower, num_lower_, num_upper_,
                                    lower_offsets_v_, lower_neighbors_v_));
  if (upper_neighbors_v_.size() != lower_neighbors_v_.size()) {
    return Status::CorruptInput("CSR directions disagree on edge count");
  }
  // Cross-check both directions describe the same edge set.
  for (VertexId u = 0; u < num_upper_; ++u) {
    for (VertexId v : Neighbors(Side::kUpper, u)) {
      auto back = Neighbors(Side::kLower, v);
      if (!std::binary_search(back.begin(), back.end(), u)) {
        return Status::CorruptInput("edge present only in one direction");
      }
    }
  }
  for (VertexId u = 0; u < num_upper_; ++u) {
    if (upper_attrs_v_[u] >= num_upper_attrs_) {
      return Status::CorruptInput("upper attribute out of domain");
    }
  }
  for (VertexId v = 0; v < num_lower_; ++v) {
    if (lower_attrs_v_[v] >= num_lower_attrs_) {
      return Status::CorruptInput("lower attribute out of domain");
    }
  }
  return Status::OK();
}

std::string BipartiteGraph::DebugString() const {
  std::ostringstream os;
  os << "BipartiteGraph(|U|=" << num_upper_ << ", |V|=" << num_lower_
     << ", |E|=" << num_edges_ << ", A_U=" << num_upper_attrs_
     << ", A_V=" << num_lower_attrs_ << ", density=" << Density() << ")";
  return os.str();
}

VertexId SideMasks::CountAlive(Side side) const {
  const auto& m = side == Side::kUpper ? upper_alive : lower_alive;
  VertexId n = 0;
  for (char c : m) n += (c != 0);
  return n;
}

BipartiteGraph InducedSubgraph(const BipartiteGraph& g, const SideMasks& masks,
                               IdMaps* id_maps) {
  FAIRBC_CHECK(masks.upper_alive.size() == g.NumUpper());
  FAIRBC_CHECK(masks.lower_alive.size() == g.NumLower());
  std::vector<VertexId> upper_new(g.NumUpper(), kInvalidVertex);
  std::vector<VertexId> lower_new(g.NumLower(), kInvalidVertex);
  IdMaps maps;
  for (VertexId u = 0; u < g.NumUpper(); ++u) {
    if (masks.upper_alive[u]) {
      upper_new[u] = static_cast<VertexId>(maps.upper_to_parent.size());
      maps.upper_to_parent.push_back(u);
    }
  }
  for (VertexId v = 0; v < g.NumLower(); ++v) {
    if (masks.lower_alive[v]) {
      lower_new[v] = static_cast<VertexId>(maps.lower_to_parent.size());
      maps.lower_to_parent.push_back(v);
    }
  }

  auto build_dir = [&](Side side, const std::vector<VertexId>& to_parent,
                       const std::vector<VertexId>& other_new,
                       const std::vector<char>& other_alive,
                       std::vector<EdgeIndex>& offsets,
                       std::vector<VertexId>& neighbors) {
    offsets.assign(to_parent.size() + 1, 0);
    for (std::size_t i = 0; i < to_parent.size(); ++i) {
      for (VertexId w : g.Neighbors(side, to_parent[i])) {
        if (other_alive[w]) ++offsets[i + 1];
      }
    }
    for (std::size_t i = 0; i < to_parent.size(); ++i) {
      offsets[i + 1] += offsets[i];
    }
    neighbors.resize(offsets.back());
    for (std::size_t i = 0; i < to_parent.size(); ++i) {
      EdgeIndex pos = offsets[i];
      for (VertexId w : g.Neighbors(side, to_parent[i])) {
        if (other_alive[w]) neighbors[pos++] = other_new[w];
      }
      // Parent lists are sorted and compaction is order-preserving, so the
      // result stays sorted.
    }
  };

  std::vector<EdgeIndex> up_off, lo_off;
  std::vector<VertexId> up_nbr, lo_nbr;
  build_dir(Side::kUpper, maps.upper_to_parent, lower_new, masks.lower_alive,
            up_off, up_nbr);
  build_dir(Side::kLower, maps.lower_to_parent, upper_new, masks.upper_alive,
            lo_off, lo_nbr);

  std::vector<AttrId> up_attrs(maps.upper_to_parent.size());
  std::vector<AttrId> lo_attrs(maps.lower_to_parent.size());
  for (std::size_t i = 0; i < maps.upper_to_parent.size(); ++i) {
    up_attrs[i] = g.Attr(Side::kUpper, maps.upper_to_parent[i]);
  }
  for (std::size_t i = 0; i < maps.lower_to_parent.size(); ++i) {
    lo_attrs[i] = g.Attr(Side::kLower, maps.lower_to_parent[i]);
  }

  if (id_maps != nullptr) *id_maps = std::move(maps);
  return BipartiteGraph(std::move(up_off), std::move(up_nbr), std::move(lo_off),
                        std::move(lo_nbr), std::move(up_attrs),
                        std::move(lo_attrs), g.NumAttrs(Side::kUpper),
                        g.NumAttrs(Side::kLower));
}

}  // namespace fairbc
