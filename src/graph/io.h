#ifndef FAIRBC_GRAPH_IO_H_
#define FAIRBC_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/bipartite_graph.h"

namespace fairbc {

/// Text formats for attributed bipartite graphs.
///
/// Edge-list format (KONECT-like; `%`-prefixed comment lines allowed):
///   u v            one edge per line, 0-based ids
///
/// Attributed format, a superset with an explicit header:
///   %fairbc 1 <num_upper> <num_lower> <num_upper_attrs> <num_lower_attrs>
///   U <id> <attr>    attribute assignment, one per upper vertex (optional)
///   V <id> <attr>    attribute assignment, one per lower vertex (optional)
///   E <u> <v>        edge
///
/// Unattributed vertices default to attribute 0.

/// Reads a plain `u v` edge list. Vertex counts are inferred from the
/// largest ids; attributes default to 0 with domain sizes 1.
Result<BipartiteGraph> ReadEdgeList(const std::string& path);

/// Reads the attributed `%fairbc` format described above.
Result<BipartiteGraph> ReadAttributedGraph(const std::string& path);

/// Writes the attributed `%fairbc` format; round-trips with
/// ReadAttributedGraph.
Status WriteAttributedGraph(const BipartiteGraph& g, const std::string& path);

}  // namespace fairbc

#endif  // FAIRBC_GRAPH_IO_H_
