#ifndef FAIRBC_GRAPH_BICLIQUE_IO_H_
#define FAIRBC_GRAPH_BICLIQUE_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/enumerate.h"

namespace fairbc {

/// Text format for enumeration results, one biclique per line:
///   U <ids...> ; V <ids...>
/// Round-trips exactly; the CLI uses it to persist result sets for
/// downstream inspection and diffing.

Status WriteBicliques(const std::vector<Biclique>& bicliques,
                      const std::string& path);

Result<std::vector<Biclique>> ReadBicliques(const std::string& path);

}  // namespace fairbc

#endif  // FAIRBC_GRAPH_BICLIQUE_IO_H_
