#ifndef FAIRBC_GRAPH_STATS_H_
#define FAIRBC_GRAPH_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/bipartite_graph.h"

namespace fairbc {

/// Summary statistics of one side of a bipartite graph.
struct DegreeStats {
  VertexId min_degree = 0;
  VertexId max_degree = 0;
  double mean_degree = 0.0;
  /// Number of isolated (degree-0) vertices.
  VertexId isolated = 0;
};

DegreeStats ComputeDegreeStats(const BipartiteGraph& g, Side side);

/// Degree histogram: index = degree, value = vertex count. Truncated at
/// `max_degree` (larger degrees accumulate in the last bucket).
std::vector<VertexId> DegreeHistogram(const BipartiteGraph& g, Side side,
                                      VertexId max_degree);

/// Number of butterflies — (2,2)-bicliques — in `g`. Butterflies are the
/// smallest non-trivial bicliques and the standard cohesion measure for
/// bipartite graphs (paper §VI related work, Wang et al. BFC-VP). This
/// implementation uses the wedge-counting sweep from the side with the
/// smaller sum of squared degrees, O(min side sum d^2).
std::uint64_t CountButterflies(const BipartiteGraph& g);

/// Naive reference for tests: iterates all vertex pairs, O(n^2 d).
std::uint64_t CountButterfliesNaive(const BipartiteGraph& g);

/// Attribute balance of one side: fraction of vertices in the largest
/// class (0.5 = perfectly balanced two classes, 1.0 = single class).
double AttrImbalance(const BipartiteGraph& g, Side side);

/// Multi-line human-readable report used by the CLI's `stats` command.
std::string StatsReport(const BipartiteGraph& g);

}  // namespace fairbc

#endif  // FAIRBC_GRAPH_STATS_H_
