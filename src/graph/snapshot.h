#ifndef FAIRBC_GRAPH_SNAPSHOT_H_
#define FAIRBC_GRAPH_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/bipartite_graph.h"

namespace fairbc {

/// Versioned binary snapshot of an attributed bipartite graph. Loading a
/// snapshot is a handful of bulk reads straight into the CSR vectors — no
/// text parsing — which is what makes GraphCatalog preloading cheap. The
/// mmap loader (ReadSnapshotView) skips even those reads and maps the CSR
/// sections in place.
///
/// Layout (native-endian; the checksum catches cross-endian loads too,
/// since the payload bytes differ):
///
///   magic              8 bytes   "FBCSNAP1"
///   version            u32       kSnapshotVersion
///   reserved           u32       0
///   checksum           u64       FNV-1a over the count fields + payload
///   num_upper          u32
///   num_lower          u32
///   num_edges          u64
///   num_upper_attrs    u16
///   num_lower_attrs    u16
///   reserved           u32       0
///   upper_offsets      (num_upper + 1) x u64
///   upper_neighbors    num_edges x u32
///   lower_offsets      (num_lower + 1) x u64
///   lower_neighbors    num_edges x u32
///   upper_attrs        num_upper x u16
///   lower_attrs        num_lower x u16
///
/// Version 2 (current) zero-pads every array section to the next 8-byte
/// boundary so each section starts 8-byte aligned relative to the file —
/// the 48-byte header is itself 8-aligned, which is what lets an mmap'd
/// file be read through typed u64 spans without misaligned loads. The
/// padding bytes are *excluded* from the checksum, so a graph's
/// GraphFingerprint still equals its snapshot header checksum in both
/// versions. Version-1 files (unpadded) remain readable by both loaders;
/// ReadSnapshotView falls back to a copying load for them.
///
/// Version 3 (optional, written on request) compresses every array
/// section. After the same 48-byte common header — whose checksum field
/// still holds the *decoded-content* fingerprint, so
/// `GraphFingerprint(g) == header.checksum` across all three versions —
/// comes a 64-byte v3 header, a block index, four eagerly-decoded varint
/// sections (offsets as first-absolute + deltas, attrs as raw varints),
/// and a region of independently decodable neighbor blocks of
/// `block_edges` edges each (delta-coded with absolute restarts at block
/// and list starts, per block either LEB128 varint or Golomb–Rice —
/// whichever is smaller). The v3 header's `index_checksum` covers the
/// count block, the v3 header remainder, the block index and the four
/// eager sections, and is verified *before any allocation*, so corrupt
/// counts still cannot cause OOM; each neighbor block carries its own
/// folded-FNV checksum, verified on (lazy) decode. See
/// docs/SNAPSHOT_FORMAT.md for the byte-level spec.
///
/// ReadSnapshot validates magic, version, checksum, exact file length and
/// the full BipartiteGraph::Validate() invariants; every failure is a
/// Status (kCorruptInput / kNotFound), never a crash.

inline constexpr char kSnapshotMagic[8] = {'F', 'B', 'C', 'S', 'N', 'A', 'P', '1'};
inline constexpr std::uint32_t kSnapshotVersion = 2;
inline constexpr std::uint32_t kSnapshotVersionCompressed = 3;

/// Default v3 neighbor-block granularity: small enough that a point
/// lookup decodes a few KiB, large enough that the 24-byte index entry
/// is amortized to well under 1% of a typical block.
inline constexpr std::uint32_t kDefaultSnapshotBlockEdges = 4096;

/// Incremental FNV-1a (64-bit) over a byte range.
std::uint64_t Fnv1a64(const void* data, std::size_t size,
                      std::uint64_t state = 14695981039346656037ULL);

/// Content fingerprint of a graph: FNV-1a over the vertex/edge/attr-domain
/// counts followed by the six CSR arrays — exactly the bytes a snapshot's
/// checksum covers, so `GraphFingerprint(g) == header.checksum` for a
/// snapshot of `g`. GraphCatalog versions and ResultCache keys use this;
/// two graphs with equal fingerprints are treated as identical content.
std::uint64_t GraphFingerprint(const BipartiteGraph& g);

struct SnapshotWriteOptions {
  /// kSnapshotVersion (2, raw + mmap-aligned) or
  /// kSnapshotVersionCompressed (3). Version 1 is read-only legacy.
  std::uint32_t version = kSnapshotVersion;
  /// Edges per compressed neighbor block (v3 only). Must be >= 1.
  std::uint32_t block_edges = kDefaultSnapshotBlockEdges;
};

/// Writes `g` to `path` in the current default (v2) format. Overwrites
/// existing files.
Status WriteSnapshot(const BipartiteGraph& g, const std::string& path);

/// Writes `g` to `path` in the requested format version.
Status WriteSnapshot(const BipartiteGraph& g, const std::string& path,
                     const SnapshotWriteOptions& options);

/// Reads a snapshot written by WriteSnapshot. The returned graph is
/// byte-identical to the one written (same CSR arrays, same fingerprint).
Result<BipartiteGraph> ReadSnapshot(const std::string& path);

/// Maps `path` read-only and returns a BipartiteGraph *view* whose CSR
/// spans point straight into the mapped pages (BipartiteGraph::IsView()),
/// making the load allocation-free: the only O(n) work is the checksum
/// verification, which doubles as page warm-up. The mapping is owned by
/// the returned graph (and any copies) and unmapped with the last one.
/// Version-1 snapshots lack the alignment padding, so they fall back to
/// the copying ReadSnapshot — same bytes, IsView() false. All validation
/// (magic, version, checksum, exact length, graph invariants) matches
/// ReadSnapshot; the file must stay unmodified while mapped.
Result<BipartiteGraph> ReadSnapshotView(const std::string& path);

/// Cheap header-only inspection of a snapshot file: version, counts,
/// content fingerprint and (v3) compression geometry, without decoding
/// any payload. Sizes are cross-checked against the actual file length;
/// checksums are *not* verified (that happens on load).
struct SnapshotInfo {
  std::uint32_t version = 0;
  std::uint64_t file_bytes = 0;
  std::uint64_t checksum = 0;  ///< content fingerprint (GraphFingerprint).
  std::uint32_t num_upper = 0;
  std::uint32_t num_lower = 0;
  std::uint64_t num_edges = 0;
  std::uint16_t num_upper_attrs = 0;
  std::uint16_t num_lower_attrs = 0;
  /// Size the same graph takes as a v2 snapshot (header + raw aligned
  /// sections) — the denominator-free way to report compression ratio.
  std::uint64_t uncompressed_bytes = 0;
  /// v3 only; zero for v1/v2.
  std::uint32_t block_edges = 0;
  std::uint64_t num_blocks = 0;  ///< per direction.
};

Result<SnapshotInfo> ProbeSnapshot(const std::string& path);

/// Lazy reader for v3 (compressed) snapshots. Open() mmaps the file,
/// verifies the metadata checksum (count block + v3 header + block index
/// + offsets/attrs sections) and eagerly decodes the O(vertices)
/// offsets/attrs — but touches *no* neighbor blocks. Neighbor data is
/// then decoded per request, one block (`block_edges` edges) at a time,
/// with the block's own checksum verified first — this is the hot-graph
/// path that serves point lookups from a compressed file without paying
/// a full decompression. DecodeGraph() is the cold-load path: it decodes
/// everything, re-verifies the content fingerprint against the header
/// checksum and runs BipartiteGraph::Validate().
///
/// Readers are cheap to copy (shared immutable state); a
/// default-constructed reader is only a placeholder and must not be
/// used. All methods are const and thread-safe on an opened reader.
class SnapshotReader {
 public:
  SnapshotReader() = default;

  static Result<SnapshotReader> Open(const std::string& path);

  std::uint32_t NumUpper() const;
  std::uint32_t NumLower() const;
  std::uint64_t NumEdges() const;
  std::uint16_t NumAttrs(Side side) const;
  std::uint32_t BlockEdges() const;
  std::uint64_t NumBlocks() const;  ///< per direction.
  std::uint64_t Checksum() const;   ///< content fingerprint from header.
  std::uint64_t FileBytes() const;

  /// Eagerly decoded CSR offsets / attribute arrays for `side`.
  const std::vector<EdgeIndex>& Offsets(Side side) const;
  const std::vector<AttrId>& Attrs(Side side) const;

  /// Decodes neighbor-array entries [first, first + count) of `side`
  /// into `out` (resized to `count`). Touches only the blocks covering
  /// the range; InvalidArgument on an out-of-bounds range, CorruptInput
  /// on a bad block (checksum, truncation, trailing data, id overflow).
  Status DecodeEdgeRange(Side side, std::uint64_t first, std::uint64_t count,
                         std::vector<VertexId>* out) const;

  /// Decodes the adjacency list of vertex `v` on `side`.
  Status DecodeNeighbors(Side side, VertexId v,
                         std::vector<VertexId>* out) const;

  /// Full eager decode: owned BipartiteGraph, fingerprint-verified
  /// against the header checksum and Validate()d — the same guarantees
  /// ReadSnapshot gives for v1/v2 files.
  Result<BipartiteGraph> DecodeGraph() const;

 private:
  struct Impl;
  std::shared_ptr<const Impl> impl_;
};

}  // namespace fairbc

#endif  // FAIRBC_GRAPH_SNAPSHOT_H_
