#ifndef FAIRBC_GRAPH_SNAPSHOT_H_
#define FAIRBC_GRAPH_SNAPSHOT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "graph/bipartite_graph.h"

namespace fairbc {

/// Versioned binary snapshot of an attributed bipartite graph. Loading a
/// snapshot is a handful of bulk reads straight into the CSR vectors — no
/// text parsing — which is what makes GraphCatalog preloading cheap. The
/// mmap loader (ReadSnapshotView) skips even those reads and maps the CSR
/// sections in place.
///
/// Layout (native-endian; the checksum catches cross-endian loads too,
/// since the payload bytes differ):
///
///   magic              8 bytes   "FBCSNAP1"
///   version            u32       kSnapshotVersion
///   reserved           u32       0
///   checksum           u64       FNV-1a over the count fields + payload
///   num_upper          u32
///   num_lower          u32
///   num_edges          u64
///   num_upper_attrs    u16
///   num_lower_attrs    u16
///   reserved           u32       0
///   upper_offsets      (num_upper + 1) x u64
///   upper_neighbors    num_edges x u32
///   lower_offsets      (num_lower + 1) x u64
///   lower_neighbors    num_edges x u32
///   upper_attrs        num_upper x u16
///   lower_attrs        num_lower x u16
///
/// Version 2 (current) zero-pads every array section to the next 8-byte
/// boundary so each section starts 8-byte aligned relative to the file —
/// the 48-byte header is itself 8-aligned, which is what lets an mmap'd
/// file be read through typed u64 spans without misaligned loads. The
/// padding bytes are *excluded* from the checksum, so a graph's
/// GraphFingerprint still equals its snapshot header checksum in both
/// versions. Version-1 files (unpadded) remain readable by both loaders;
/// ReadSnapshotView falls back to a copying load for them.
///
/// ReadSnapshot validates magic, version, checksum, exact file length and
/// the full BipartiteGraph::Validate() invariants; every failure is a
/// Status (kCorruptInput / kNotFound), never a crash.

inline constexpr char kSnapshotMagic[8] = {'F', 'B', 'C', 'S', 'N', 'A', 'P', '1'};
inline constexpr std::uint32_t kSnapshotVersion = 2;

/// Incremental FNV-1a (64-bit) over a byte range.
std::uint64_t Fnv1a64(const void* data, std::size_t size,
                      std::uint64_t state = 14695981039346656037ULL);

/// Content fingerprint of a graph: FNV-1a over the vertex/edge/attr-domain
/// counts followed by the six CSR arrays — exactly the bytes a snapshot's
/// checksum covers, so `GraphFingerprint(g) == header.checksum` for a
/// snapshot of `g`. GraphCatalog versions and ResultCache keys use this;
/// two graphs with equal fingerprints are treated as identical content.
std::uint64_t GraphFingerprint(const BipartiteGraph& g);

/// Writes `g` to `path` in the format above. Overwrites existing files.
Status WriteSnapshot(const BipartiteGraph& g, const std::string& path);

/// Reads a snapshot written by WriteSnapshot. The returned graph is
/// byte-identical to the one written (same CSR arrays, same fingerprint).
Result<BipartiteGraph> ReadSnapshot(const std::string& path);

/// Maps `path` read-only and returns a BipartiteGraph *view* whose CSR
/// spans point straight into the mapped pages (BipartiteGraph::IsView()),
/// making the load allocation-free: the only O(n) work is the checksum
/// verification, which doubles as page warm-up. The mapping is owned by
/// the returned graph (and any copies) and unmapped with the last one.
/// Version-1 snapshots lack the alignment padding, so they fall back to
/// the copying ReadSnapshot — same bytes, IsView() false. All validation
/// (magic, version, checksum, exact length, graph invariants) matches
/// ReadSnapshot; the file must stay unmodified while mapped.
Result<BipartiteGraph> ReadSnapshotView(const std::string& path);

}  // namespace fairbc

#endif  // FAIRBC_GRAPH_SNAPSHOT_H_
