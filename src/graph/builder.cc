#include "graph/builder.h"

#include <algorithm>

namespace fairbc {

void BipartiteGraphBuilder::AddEdge(VertexId u, VertexId v) {
  edges_.emplace_back(u, v);
  if (u + 1 > num_upper_) num_upper_ = u + 1;
  if (v + 1 > num_lower_) num_lower_ = v + 1;
}

void BipartiteGraphBuilder::SetAttr(Side side, VertexId v, AttrId a) {
  auto& updates =
      side == Side::kUpper ? upper_attr_updates_ : lower_attr_updates_;
  updates.emplace_back(v, a);
  VertexId& n = side == Side::kUpper ? num_upper_ : num_lower_;
  if (v + 1 > n) n = v + 1;
}

void BipartiteGraphBuilder::SetAttrs(Side side, std::vector<AttrId> attrs) {
  if (side == Side::kUpper) {
    upper_attrs_full_ = std::move(attrs);
    has_upper_full_ = true;
    if (upper_attrs_full_.size() > num_upper_) {
      num_upper_ = static_cast<VertexId>(upper_attrs_full_.size());
    }
  } else {
    lower_attrs_full_ = std::move(attrs);
    has_lower_full_ = true;
    if (lower_attrs_full_.size() > num_lower_) {
      num_lower_ = static_cast<VertexId>(lower_attrs_full_.size());
    }
  }
}

void BipartiteGraphBuilder::SetNumAttrs(Side side, AttrId n) {
  FAIRBC_CHECK(n >= 1);
  (side == Side::kUpper ? num_upper_attrs_ : num_lower_attrs_) = n;
}

void BipartiteGraphBuilder::AssignRandomAttrs(Side side, AttrId n, Rng& rng) {
  SetNumAttrs(side, n);
  VertexId count = side == Side::kUpper ? num_upper_ : num_lower_;
  std::vector<AttrId> attrs(count);
  for (VertexId v = 0; v < count; ++v) {
    attrs[v] = static_cast<AttrId>(rng.NextUInt64(n));
  }
  SetAttrs(side, std::move(attrs));
}

Result<BipartiteGraph> BipartiteGraphBuilder::Build() {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  // Resolve attributes.
  auto resolve = [&](Side side, VertexId n, AttrId domain, bool has_full,
                     std::vector<AttrId>& full,
                     const std::vector<std::pair<VertexId, AttrId>>& updates)
      -> Status {
    if (has_full) {
      if (full.size() != n) {
        return Status::InvalidArgument(
            "attribute vector size does not match vertex count on " +
            std::string(ToString(side)));
      }
    } else {
      full.assign(n, 0);
    }
    for (auto [v, a] : updates) full[v] = a;
    for (AttrId a : full) {
      if (a >= domain) {
        return Status::InvalidArgument(
            "attribute value out of declared domain on " +
            std::string(ToString(side)));
      }
    }
    return Status::OK();
  };
  Status st = resolve(Side::kUpper, num_upper_, num_upper_attrs_,
                      has_upper_full_, upper_attrs_full_, upper_attr_updates_);
  if (!st.ok()) return st;
  st = resolve(Side::kLower, num_lower_, num_lower_attrs_, has_lower_full_,
               lower_attrs_full_, lower_attr_updates_);
  if (!st.ok()) return st;

  // Upper CSR: edges_ is already sorted by (u, v).
  std::vector<EdgeIndex> up_off(num_upper_ + 1, 0);
  std::vector<VertexId> up_nbr(edges_.size());
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    ++up_off[edges_[i].first + 1];
    up_nbr[i] = edges_[i].second;
  }
  for (VertexId u = 0; u < num_upper_; ++u) up_off[u + 1] += up_off[u];

  // Lower CSR via counting sort on v; within each v the u values arrive in
  // ascending order because edges_ is sorted by (u, v).
  std::vector<EdgeIndex> lo_off(num_lower_ + 1, 0);
  for (const auto& [u, v] : edges_) ++lo_off[v + 1];
  for (VertexId v = 0; v < num_lower_; ++v) lo_off[v + 1] += lo_off[v];
  std::vector<VertexId> lo_nbr(edges_.size());
  {
    std::vector<EdgeIndex> cursor(lo_off.begin(), lo_off.end() - 1);
    for (const auto& [u, v] : edges_) lo_nbr[cursor[v]++] = u;
  }

  BipartiteGraph g(std::move(up_off), std::move(up_nbr), std::move(lo_off),
                   std::move(lo_nbr), std::move(upper_attrs_full_),
                   std::move(lower_attrs_full_), num_upper_attrs_,
                   num_lower_attrs_);
  return g;
}

}  // namespace fairbc
