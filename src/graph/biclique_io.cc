#include "graph/biclique_io.h"

#include <fstream>
#include <sstream>

namespace fairbc {

Status WriteBicliques(const std::vector<Biclique>& bicliques,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  for (const Biclique& b : bicliques) {
    out << "U";
    for (VertexId u : b.upper) out << ' ' << u;
    out << " ; V";
    for (VertexId v : b.lower) out << ' ' << v;
    out << "\n";
  }
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<std::vector<Biclique>> ReadBicliques(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open: " + path);
  }
  std::vector<Biclique> out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream iss(line);
    std::string tag;
    if (!(iss >> tag) || tag != "U") {
      return Status::CorruptInput("expected 'U' at " + path + ":" +
                                  std::to_string(line_no));
    }
    Biclique b;
    std::string token;
    bool in_lower = false;
    bool saw_v = false;
    while (iss >> token) {
      if (token == ";") {
        if (!(iss >> token) || token != "V") {
          return Status::CorruptInput("expected 'V' after ';' at " + path +
                                      ":" + std::to_string(line_no));
        }
        in_lower = true;
        saw_v = true;
        continue;
      }
      char* end = nullptr;
      long long id = std::strtoll(token.c_str(), &end, 10);
      if (end == token.c_str() || *end != '\0' || id < 0) {
        return Status::CorruptInput("bad vertex id '" + token + "' at " +
                                    path + ":" + std::to_string(line_no));
      }
      (in_lower ? b.lower : b.upper).push_back(static_cast<VertexId>(id));
    }
    if (!saw_v) {
      return Status::CorruptInput("missing '; V' separator at " + path + ":" +
                                  std::to_string(line_no));
    }
    out.push_back(std::move(b));
  }
  return out;
}

}  // namespace fairbc
