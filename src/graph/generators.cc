#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/builder.h"

namespace fairbc {

BipartiteGraph MakeUniformRandom(VertexId num_upper, VertexId num_lower,
                                 EdgeIndex num_edges, AttrId num_attrs,
                                 std::uint64_t seed) {
  FAIRBC_CHECK(num_upper > 0 && num_lower > 0);
  Rng rng(seed);
  BipartiteGraphBuilder builder(num_upper, num_lower);
  EdgeIndex max_edges =
      static_cast<EdgeIndex>(num_upper) * static_cast<EdgeIndex>(num_lower);
  num_edges = std::min(num_edges, max_edges);
  // Duplicates are deduped by the builder; oversample slightly to land
  // near the requested count on sparse graphs.
  EdgeIndex to_draw = num_edges + num_edges / 20 + 8;
  for (EdgeIndex i = 0; i < to_draw; ++i) {
    auto u = static_cast<VertexId>(rng.NextUInt64(num_upper));
    auto v = static_cast<VertexId>(rng.NextUInt64(num_lower));
    builder.AddEdge(u, v);
  }
  builder.AssignRandomAttrs(Side::kUpper, num_attrs, rng);
  builder.AssignRandomAttrs(Side::kLower, num_attrs, rng);
  auto result = builder.Build();
  FAIRBC_CHECK(result.ok());
  return std::move(result).value();
}

BipartiteGraph MakePowerLaw(VertexId num_upper, VertexId num_lower,
                            EdgeIndex num_edges, double gamma, AttrId num_attrs,
                            std::uint64_t seed) {
  FAIRBC_CHECK(num_upper > 0 && num_lower > 0 && gamma > 1.0);
  Rng rng(seed);
  // Chung–Lu: expected degree w_i proportional to i^{-1/(gamma-1)}.
  auto make_weights = [&](VertexId n) {
    std::vector<double> w(n);
    double exponent = 1.0 / (gamma - 1.0);
    double sum = 0.0;
    for (VertexId i = 0; i < n; ++i) {
      w[i] = std::pow(static_cast<double>(i + 1), -exponent);
      sum += w[i];
    }
    // Cumulative distribution for inverse-transform sampling.
    std::vector<double> cdf(n);
    double acc = 0.0;
    for (VertexId i = 0; i < n; ++i) {
      acc += w[i] / sum;
      cdf[i] = acc;
    }
    cdf[n - 1] = 1.0;
    return cdf;
  };
  std::vector<double> up_cdf = make_weights(num_upper);
  std::vector<double> lo_cdf = make_weights(num_lower);
  auto sample = [&](const std::vector<double>& cdf) {
    double x = rng.NextDouble();
    auto it = std::lower_bound(cdf.begin(), cdf.end(), x);
    return static_cast<VertexId>(it - cdf.begin());
  };

  BipartiteGraphBuilder builder(num_upper, num_lower);
  EdgeIndex to_draw = num_edges + num_edges / 10 + 8;
  for (EdgeIndex i = 0; i < to_draw; ++i) {
    builder.AddEdge(sample(up_cdf), sample(lo_cdf));
  }
  builder.AssignRandomAttrs(Side::kUpper, num_attrs, rng);
  builder.AssignRandomAttrs(Side::kLower, num_attrs, rng);
  auto result = builder.Build();
  FAIRBC_CHECK(result.ok());
  return std::move(result).value();
}

BipartiteGraph MakeAffiliation(const AffiliationConfig& config) {
  FAIRBC_CHECK(config.num_upper > 0 && config.num_lower > 0);
  FAIRBC_CHECK(config.community_upper_min >= 1 &&
               config.community_upper_min <= config.community_upper_max);
  FAIRBC_CHECK(config.community_lower_min >= 1 &&
               config.community_lower_min <= config.community_lower_max);
  Rng rng(config.seed);
  BipartiteGraphBuilder builder(config.num_upper, config.num_lower);

  EdgeIndex community_edges = 0;
  std::vector<VertexId> member_uppers;
  std::vector<VertexId> member_lowers;
  for (std::uint32_t c = 0; c < config.num_communities; ++c) {
    auto su = static_cast<VertexId>(rng.NextInt(config.community_upper_min,
                                                config.community_upper_max));
    auto sv = static_cast<VertexId>(rng.NextInt(config.community_lower_min,
                                                config.community_lower_max));
    su = std::min(su, config.num_upper);
    sv = std::min(sv, config.num_lower);
    auto uppers = rng.SampleWithoutReplacement(config.num_upper, su);
    auto lowers = rng.SampleWithoutReplacement(config.num_lower, sv);
    member_uppers.insert(member_uppers.end(), uppers.begin(), uppers.end());
    member_lowers.insert(member_lowers.end(), lowers.begin(), lowers.end());
    for (VertexId u : uppers) {
      for (VertexId v : lowers) {
        if (config.edge_keep_prob >= 1.0 || rng.NextBool(config.edge_keep_prob)) {
          builder.AddEdge(u, v);
          ++community_edges;
        }
      }
    }
  }
  auto noise = static_cast<EdgeIndex>(
      static_cast<double>(community_edges) * config.noise_fraction);
  auto pick_upper = [&]() -> VertexId {
    if (!member_uppers.empty() && rng.NextBool(config.noise_attach_community)) {
      return member_uppers[rng.NextUInt64(member_uppers.size())];
    }
    return static_cast<VertexId>(rng.NextUInt64(config.num_upper));
  };
  auto pick_lower = [&]() -> VertexId {
    if (!member_lowers.empty() && rng.NextBool(config.noise_attach_community)) {
      return member_lowers[rng.NextUInt64(member_lowers.size())];
    }
    return static_cast<VertexId>(rng.NextUInt64(config.num_lower));
  };
  for (EdgeIndex i = 0; i < noise; ++i) {
    builder.AddEdge(pick_upper(), pick_lower());
  }
  builder.AssignRandomAttrs(Side::kUpper, config.num_upper_attrs, rng);
  builder.AssignRandomAttrs(Side::kLower, config.num_lower_attrs, rng);
  auto result = builder.Build();
  FAIRBC_CHECK(result.ok());
  return std::move(result).value();
}

BipartiteGraph SampleEdges(const BipartiteGraph& g, double fraction,
                           std::uint64_t seed) {
  FAIRBC_CHECK(fraction >= 0.0 && fraction <= 1.0);
  Rng rng(seed);
  BipartiteGraphBuilder builder(g.NumUpper(), g.NumLower());
  builder.SetNumAttrs(Side::kUpper, g.NumAttrs(Side::kUpper));
  builder.SetNumAttrs(Side::kLower, g.NumAttrs(Side::kLower));
  std::vector<AttrId> up_attrs(g.NumUpper()), lo_attrs(g.NumLower());
  for (VertexId u = 0; u < g.NumUpper(); ++u) {
    up_attrs[u] = g.Attr(Side::kUpper, u);
  }
  for (VertexId v = 0; v < g.NumLower(); ++v) {
    lo_attrs[v] = g.Attr(Side::kLower, v);
  }
  builder.SetAttrs(Side::kUpper, std::move(up_attrs));
  builder.SetAttrs(Side::kLower, std::move(lo_attrs));
  for (VertexId u = 0; u < g.NumUpper(); ++u) {
    for (VertexId v : g.Neighbors(Side::kUpper, u)) {
      if (rng.NextBool(fraction)) builder.AddEdge(u, v);
    }
  }
  auto result = builder.Build();
  FAIRBC_CHECK(result.ok());
  return std::move(result).value();
}

}  // namespace fairbc
