#ifndef FAIRBC_GRAPH_BUILDER_H_
#define FAIRBC_GRAPH_BUILDER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "graph/bipartite_graph.h"

namespace fairbc {

/// Incremental edge-list builder producing a validated BipartiteGraph.
/// Duplicate edges are deduplicated; vertex counts may be given up front
/// or grown implicitly by the largest id seen.
class BipartiteGraphBuilder {
 public:
  BipartiteGraphBuilder() = default;
  BipartiteGraphBuilder(VertexId num_upper, VertexId num_lower)
      : num_upper_(num_upper), num_lower_(num_lower) {}

  void AddEdge(VertexId u, VertexId v);

  /// Sets the attribute of a single vertex. Unset vertices default to 0.
  void SetAttr(Side side, VertexId v, AttrId a);

  /// Sets the whole attribute vector for one side (size must match the
  /// final vertex count at Build time).
  void SetAttrs(Side side, std::vector<AttrId> attrs);

  /// Declares the attribute domain size for a side (default 1).
  void SetNumAttrs(Side side, AttrId n);

  /// Assigns uniformly random attributes in [0, n) to every vertex of
  /// `side`, mirroring the paper's "randomly assign an attribute to each
  /// vertex" preprocessing for the non-attributed KONECT datasets.
  void AssignRandomAttrs(Side side, AttrId n, Rng& rng);

  std::size_t NumPendingEdges() const { return edges_.size(); }
  VertexId num_upper() const { return num_upper_; }
  VertexId num_lower() const { return num_lower_; }

  /// Sorts, dedupes, builds both CSR directions and validates attributes.
  Result<BipartiteGraph> Build();

 private:
  VertexId num_upper_ = 0;
  VertexId num_lower_ = 0;
  AttrId num_upper_attrs_ = 1;
  AttrId num_lower_attrs_ = 1;
  std::vector<std::pair<VertexId, VertexId>> edges_;
  std::vector<std::pair<VertexId, AttrId>> upper_attr_updates_;
  std::vector<std::pair<VertexId, AttrId>> lower_attr_updates_;
  std::vector<AttrId> upper_attrs_full_;
  std::vector<AttrId> lower_attrs_full_;
  bool has_upper_full_ = false;
  bool has_lower_full_ = false;
};

}  // namespace fairbc

#endif  // FAIRBC_GRAPH_BUILDER_H_
