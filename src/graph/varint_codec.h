#ifndef FAIRBC_GRAPH_VARINT_CODEC_H_
#define FAIRBC_GRAPH_VARINT_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/status.h"

namespace fairbc {

/// Integer codecs for the compressed snapshot format (snapshot v3,
/// docs/SNAPSHOT_FORMAT.md): LEB128 varints for skewed gap
/// distributions and Golomb–Rice codes for near-uniform ones, plus the
/// per-block chooser that picks whichever is smaller for a given value
/// sequence. Everything here decodes *hostile* bytes — a snapshot file
/// may be truncated, bit-flipped or crafted — so every read is bounds
/// checked, every decode enforces an exact expected value count, and
/// failures are Status, never UB or unbounded allocation (the
/// snapshot_codec_test fuzz loop plus the ASan/UBSan CI job hold this
/// line the same way wire_test does for the network codec).

/// Appends `value` as an LEB128 varint (7 bits per byte, high bit =
/// continuation); at most 10 bytes for a u64.
void AppendVarint(std::string* out, std::uint64_t value);

/// Encoded size of `value` as a varint, in bytes.
std::size_t VarintSize(std::uint64_t value);

/// Reads one varint from [*p, end), advancing *p. Returns false on
/// truncation or an over-long (> 10 byte / > 64 bit) encoding.
bool ReadVarint(const unsigned char** p, const unsigned char* end,
                std::uint64_t* value);

/// MSB-first bit appender over a byte string. Flush() zero-pads the
/// final partial byte.
class BitWriter {
 public:
  explicit BitWriter(std::string* out) : out_(out) {}

  /// Appends the low `nbits` bits of `value`, most significant first.
  void WriteBits(std::uint64_t value, unsigned nbits);

  /// Unary code: `q` one-bits then a terminating zero-bit.
  void WriteUnary(std::uint64_t q);

  void Flush();

 private:
  void PushBit(bool bit);

  std::string* out_;
  unsigned char cur_ = 0;
  unsigned filled_ = 0;
};

/// MSB-first bit reader over a byte range; every read reports
/// exhaustion instead of running past the end.
class BitReader {
 public:
  BitReader(const unsigned char* data, std::size_t size)
      : data_(data), size_bits_(size * 8) {}

  bool ReadBits(unsigned nbits, std::uint64_t* value);

  /// Counts one-bits up to the terminating zero. Returns false when the
  /// buffer ends before a terminator.
  bool ReadUnary(std::uint64_t* q);

  /// Bits not yet consumed (the encoder's zero padding at most).
  std::size_t RemainingBits() const { return size_bits_ - pos_; }

  /// True when every unconsumed bit is zero — i.e. the remainder is
  /// legitimate Flush() padding, not trailing data.
  bool RemainderIsZeroPadding() const;

 private:
  const unsigned char* data_;
  std::size_t size_bits_;
  std::size_t pos_ = 0;
};

/// Rice code with parameter `k`: unary quotient `value >> k`, then the
/// k low bits. Optimal when values are geometrically distributed around
/// 2^k — the near-uniform gap case delta-coded neighbor lists produce.
void AppendRice(BitWriter* writer, std::uint64_t value, unsigned k);
bool ReadRice(BitReader* reader, unsigned k, std::uint64_t* value);
std::size_t RiceBits(std::uint64_t value, unsigned k);

/// The Rice parameter minimizing the exact encoded size of `values`.
unsigned ChooseRiceK(std::span<const std::uint64_t> values);

/// Per-block codec id, stored in the snapshot block index.
enum class BlockCodec : std::uint16_t {
  kVarint = 0,
  kRice = 1,
};

/// Encodes `values` with whichever codec is smaller for this block
/// (ties go to varint); reports the choice through `codec` / `rice_k`.
std::string EncodeBlock(std::span<const std::uint64_t> values,
                        BlockCodec* codec, std::uint16_t* rice_k);

/// Decodes exactly `expected` values into `out` (caller-allocated,
/// `expected` slots). Rejects — with Status, before writing past
/// `expected` — streams that are truncated, carry trailing data, or
/// would overflow a u64; a corrupted length can never cause quiet
/// success with the wrong count.
Status DecodeBlock(std::string_view bytes, BlockCodec codec, unsigned rice_k,
                   std::size_t expected, std::uint64_t* out);

}  // namespace fairbc

#endif  // FAIRBC_GRAPH_VARINT_CODEC_H_
