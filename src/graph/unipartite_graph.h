#ifndef FAIRBC_GRAPH_UNIPARTITE_GRAPH_H_
#define FAIRBC_GRAPH_UNIPARTITE_GRAPH_H_

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/types.h"

namespace fairbc {

/// Attributed undirected unipartite graph in CSR layout (offsets + flat
/// neighbor array), matching BipartiteGraph's storage. Used for the 2-hop
/// graph `H(V, E, A)` of paper Algs. 3 and 8, built over the fair-side
/// vertices of a bipartite graph. Vertex ids are those of the originating
/// side; dead vertices simply have empty adjacency.
///
/// Invariants: `offsets` has NumVertices()+1 monotone entries; each
/// vertex's neighbor range is sorted ascending and deduplicated; every
/// edge appears in both endpoints' ranges.
struct UnipartiteGraph {
  std::vector<EdgeIndex> offsets{0};
  std::vector<VertexId> neighbors;
  std::vector<AttrId> attrs;
  AttrId num_attrs = 1;

  VertexId NumVertices() const {
    return static_cast<VertexId>(offsets.size() - 1);
  }
  VertexId Degree(VertexId v) const {
    return static_cast<VertexId>(offsets[v + 1] - offsets[v]);
  }
  /// Sorted neighbors of `v`.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {neighbors.data() + offsets[v], neighbors.data() + offsets[v + 1]};
  }
  /// Undirected edge count (each edge is stored twice).
  std::size_t NumEdges() const { return neighbors.size() / 2; }
  /// Exact heap footprint of the CSR arrays (offsets + neighbors + attrs).
  std::size_t MemoryBytes() const;

  /// Builds a CSR graph from an undirected edge list (each pair once, in
  /// any order). Test/tooling helper; the 2-hop constructors build their
  /// CSR directly.
  static UnipartiteGraph FromEdges(
      VertexId n, const std::vector<std::pair<VertexId, VertexId>>& edges,
      std::vector<AttrId> attrs, AttrId num_attrs);

  /// Materializes per-vertex neighbor vectors (tests/debugging only).
  std::vector<std::vector<VertexId>> AdjacencyLists() const;

  bool operator==(const UnipartiteGraph& other) const = default;
};

}  // namespace fairbc

#endif  // FAIRBC_GRAPH_UNIPARTITE_GRAPH_H_
