#include "recsys/cf.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"
#include "core/intersect.h"
#include "graph/builder.h"

namespace fairbc {

ItemBasedCF::ItemBasedCF(const BipartiteGraph& interactions)
    : graph_(interactions), num_items_(interactions.NumLower()) {
  // Packed strict upper triangle: pairs (a, b) with a < b.
  const std::size_t pairs =
      static_cast<std::size_t>(num_items_) * (num_items_ - 1) / 2;
  sim_.assign(pairs, 0.0f);
  ScratchArena arena;  // lets the O(n^2) pair scan use the bitset kernel.
  for (VertexId a = 0; a < num_items_; ++a) {
    auto na = graph_.Neighbors(Side::kLower, a);
    if (na.empty()) continue;
    for (VertexId b = a + 1; b < num_items_; ++b) {
      auto nb = graph_.Neighbors(Side::kLower, b);
      if (nb.empty()) continue;
      std::uint32_t common = IntersectSize(na, nb, &arena);
      if (common == 0) continue;
      double denom = std::sqrt(static_cast<double>(na.size()) *
                               static_cast<double>(nb.size()));
      sim_[PackedIndex(a, b)] = static_cast<float>(common / denom);
    }
  }
}

std::size_t ItemBasedCF::PackedIndex(VertexId a, VertexId b) const {
  FAIRBC_CHECK(a < b && b < num_items_);
  // Row `a` starts after sum_{i<a} (n-1-i) entries.
  std::size_t row_start = static_cast<std::size_t>(a) * (num_items_ - 1) -
                          static_cast<std::size_t>(a) * (a - 1) / 2;
  return row_start + (b - a - 1);
}

double ItemBasedCF::Similarity(VertexId item_a, VertexId item_b) const {
  if (item_a == item_b) return 1.0;
  if (item_a > item_b) std::swap(item_a, item_b);
  return sim_[PackedIndex(item_a, item_b)];
}

std::vector<VertexId> ItemBasedCF::TopK(VertexId user, std::uint32_t k) const {
  auto owned = graph_.Neighbors(Side::kUpper, user);
  std::vector<double> score(num_items_, 0.0);
  for (VertexId mine : owned) {
    for (VertexId item = 0; item < num_items_; ++item) {
      if (item == mine) continue;
      score[item] += Similarity(mine, item);
    }
  }
  for (VertexId mine : owned) score[mine] = -1.0;  // exclude owned items.

  std::vector<VertexId> order(num_items_);
  for (VertexId i = 0; i < num_items_; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return score[a] > score[b];
  });
  std::vector<VertexId> top;
  for (VertexId item : order) {
    if (top.size() >= k) break;
    if (score[item] <= 0.0) break;  // no positive evidence left.
    top.push_back(item);
  }
  return top;
}

BipartiteGraph BuildRecommendationGraph(const BipartiteGraph& interactions,
                                        const ItemBasedCF& cf,
                                        std::uint32_t top_k) {
  BipartiteGraphBuilder builder(interactions.NumUpper(),
                                interactions.NumLower());
  builder.SetNumAttrs(Side::kUpper, interactions.NumAttrs(Side::kUpper));
  builder.SetNumAttrs(Side::kLower, interactions.NumAttrs(Side::kLower));
  std::vector<AttrId> up(interactions.NumUpper());
  std::vector<AttrId> lo(interactions.NumLower());
  for (VertexId u = 0; u < interactions.NumUpper(); ++u) {
    up[u] = interactions.Attr(Side::kUpper, u);
  }
  for (VertexId v = 0; v < interactions.NumLower(); ++v) {
    lo[v] = interactions.Attr(Side::kLower, v);
  }
  builder.SetAttrs(Side::kUpper, std::move(up));
  builder.SetAttrs(Side::kLower, std::move(lo));
  for (VertexId user = 0; user < interactions.NumUpper(); ++user) {
    for (VertexId item : cf.TopK(user, top_k)) {
      builder.AddEdge(user, item);
    }
  }
  auto result = builder.Build();
  FAIRBC_CHECK(result.ok());
  return std::move(result).value();
}

}  // namespace fairbc
