#ifndef FAIRBC_RECSYS_RECOMMEND_GRAPH_H_
#define FAIRBC_RECSYS_RECOMMEND_GRAPH_H_

#include <cstdint>

#include "graph/bipartite_graph.h"

namespace fairbc {

/// Synthetic interaction datasets with planted popularity bias for the
/// Jobs and Movies case studies (§V-C). Two item groups exist (attribute
/// 0 = popular/old, 1 = unpopular/new); user tastes are drawn from latent
/// interest clusters, but interaction probability is additionally skewed
/// toward popular items by `popularity_boost`, reproducing the exposure
/// bias that makes plain CF recommend only popular items.
struct BiasedInteractionsConfig {
  VertexId num_users = 300;
  VertexId num_items = 120;
  std::uint32_t num_clusters = 6;
  /// Interactions drawn per user.
  std::uint32_t interactions_per_user = 12;
  /// Probability that a drawn interaction is redirected to a popular item
  /// regardless of taste.
  double popularity_boost = 0.6;
  /// Fraction of items that are "popular" (attribute 0).
  double popular_fraction = 0.5;
  /// Number of user attribute classes (e.g. national/foreigner).
  AttrId num_user_attrs = 2;
  std::uint64_t seed = 7;
};

/// Generates the biased user-item interaction bipartite graph.
BipartiteGraph MakeBiasedInteractions(const BiasedInteractionsConfig& config);

/// Bias diagnostic: fraction of recommended edges pointing to items of
/// attribute class 0 (popular). ~1.0 means the recommender only surfaces
/// popular items.
double PopularShare(const BipartiteGraph& recommendation_graph);

}  // namespace fairbc

#endif  // FAIRBC_RECSYS_RECOMMEND_GRAPH_H_
