#include "recsys/recommend_graph.h"

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "graph/builder.h"

namespace fairbc {

BipartiteGraph MakeBiasedInteractions(const BiasedInteractionsConfig& config) {
  FAIRBC_CHECK(config.num_users > 0 && config.num_items > 0);
  FAIRBC_CHECK(config.num_clusters > 0);
  Rng rng(config.seed);

  const auto num_popular = static_cast<VertexId>(
      static_cast<double>(config.num_items) * config.popular_fraction);

  // Assign items to clusters round-robin so every cluster holds both
  // popular (id < num_popular) and unpopular items.
  std::vector<std::vector<VertexId>> cluster_items(config.num_clusters);
  std::vector<std::vector<VertexId>> cluster_popular(config.num_clusters);
  std::vector<std::vector<VertexId>> cluster_unpopular(config.num_clusters);
  for (VertexId item = 0; item < config.num_items; ++item) {
    std::uint32_t c = item % config.num_clusters;
    cluster_items[c].push_back(item);
    if (item < num_popular) {
      cluster_popular[c].push_back(item);
    } else {
      cluster_unpopular[c].push_back(item);
    }
  }

  BipartiteGraphBuilder builder(config.num_users, config.num_items);
  builder.SetNumAttrs(Side::kUpper, config.num_user_attrs);
  builder.SetNumAttrs(Side::kLower, 2);

  std::vector<AttrId> item_attrs(config.num_items);
  for (VertexId item = 0; item < config.num_items; ++item) {
    item_attrs[item] = item < num_popular ? 0 : 1;
  }
  builder.SetAttrs(Side::kLower, std::move(item_attrs));

  std::vector<AttrId> user_attrs(config.num_users);
  for (VertexId user = 0; user < config.num_users; ++user) {
    user_attrs[user] =
        static_cast<AttrId>(rng.NextUInt64(config.num_user_attrs));
  }
  builder.SetAttrs(Side::kUpper, std::move(user_attrs));

  for (VertexId user = 0; user < config.num_users; ++user) {
    const auto cluster =
        static_cast<std::uint32_t>(rng.NextUInt64(config.num_clusters));
    const auto& popular = cluster_popular[cluster];
    const auto& unpopular = cluster_unpopular[cluster];
    const auto& any = cluster_items[cluster];
    for (std::uint32_t i = 0; i < config.interactions_per_user; ++i) {
      // Popularity bias: redirect the draw toward popular taste-matching
      // items with probability popularity_boost.
      const std::vector<VertexId>* pool = &any;
      if (!popular.empty() && rng.NextBool(config.popularity_boost)) {
        pool = &popular;
      } else if (!unpopular.empty() && rng.NextBool(0.5)) {
        pool = &unpopular;
      }
      if (pool->empty()) pool = &any;
      VertexId item = (*pool)[rng.NextUInt64(pool->size())];
      builder.AddEdge(user, item);
    }
  }
  auto result = builder.Build();
  FAIRBC_CHECK(result.ok());
  return std::move(result).value();
}

double PopularShare(const BipartiteGraph& recommendation_graph) {
  std::uint64_t popular = 0, total = 0;
  for (VertexId u = 0; u < recommendation_graph.NumUpper(); ++u) {
    for (VertexId v : recommendation_graph.Neighbors(Side::kUpper, u)) {
      ++total;
      if (recommendation_graph.Attr(Side::kLower, v) == 0) ++popular;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(popular) /
                                static_cast<double>(total);
}

}  // namespace fairbc
