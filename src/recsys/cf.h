#ifndef FAIRBC_RECSYS_CF_H_
#define FAIRBC_RECSYS_CF_H_

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"

namespace fairbc {

/// Item-based collaborative filtering over an interaction bipartite graph
/// (users on the upper side, items on the lower side). This is the "CF
/// algorithm" of the paper's Jobs/Movies case studies (§V-C): cosine
/// similarity between item interaction vectors, user score = sum of
/// similarities to the user's items, top-k lists per user.
class ItemBasedCF {
 public:
  /// Precomputes item-item cosine similarities from `interactions`
  /// (user-item edges). Intended for case-study scale (thousands of
  /// items).
  explicit ItemBasedCF(const BipartiteGraph& interactions);

  /// Cosine similarity between two items in [0, 1].
  double Similarity(VertexId item_a, VertexId item_b) const;

  /// Scores every item for `user` (items the user already interacted
  /// with score 0) and returns the top-k item ids, best first.
  std::vector<VertexId> TopK(VertexId user, std::uint32_t k) const;

  VertexId num_items() const { return num_items_; }

 private:
  const BipartiteGraph& graph_;
  VertexId num_items_ = 0;
  /// Dense upper-triangular similarity matrix, row-major packed.
  std::vector<float> sim_;

  std::size_t PackedIndex(VertexId a, VertexId b) const;
};

/// Builds the recommendation bipartite graph the case studies mine: an
/// edge (user, item) for every item in the user's CF top-k list. Item
/// attributes are copied from `interactions`; user attributes too.
BipartiteGraph BuildRecommendationGraph(const BipartiteGraph& interactions,
                                        const ItemBasedCF& cf,
                                        std::uint32_t top_k);

}  // namespace fairbc

#endif  // FAIRBC_RECSYS_CF_H_
