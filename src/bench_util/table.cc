#include "bench_util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/status.h"

namespace fairbc {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

TextTable& TextTable::AddRow(std::vector<std::string> cells) {
  FAIRBC_CHECK(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string TextTable::Num(std::uint64_t v) { return std::to_string(v); }

std::string TextTable::Seconds(double s, bool inf) {
  if (inf) return "INF";
  char buf[32];
  if (s < 0.001) {
    std::snprintf(buf, sizeof(buf), "%.2e", s);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", s);
  }
  return buf;
}

std::string TextTable::Double(double v, int precision) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void TextTable::Print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << " |\n";
  };
  print_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|" : "-|");
    for (std::size_t i = 0; i < width[c] + 2; ++i) os << '-';
  }
  os << "-|\n";
  for (const auto& row : rows_) print_row(row);
}

void PrintBanner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace fairbc
