#ifndef FAIRBC_BENCH_UTIL_SWEEP_H_
#define FAIRBC_BENCH_UTIL_SWEEP_H_

#include <functional>
#include <string>

#include "core/enumerate.h"
#include "core/pipeline.h"
#include "graph/bipartite_graph.h"

namespace fairbc {

/// Named algorithm wrapper used by the experiment benches.
struct Algorithm {
  std::string name;
  std::function<EnumStats(const BipartiteGraph&, const FairBicliqueParams&,
                          const EnumOptions&, const BicliqueSink&)>
      run;
};

Algorithm AlgoNSF();
Algorithm AlgoFairBCEM();
Algorithm AlgoFairBCEMpp();
Algorithm AlgoBNSF();
Algorithm AlgoBFairBCEM();
Algorithm AlgoBFairBCEMpp();

/// Runs `algo` in counting mode and returns (stats, seconds). `seconds`
/// is prune + enumeration wall clock, the paper's reported runtime.
struct TimedRun {
  EnumStats stats;
  double seconds = 0.0;
  std::uint64_t count = 0;
  bool timed_out = false;  ///< paper's "INF".
};
TimedRun RunCounting(const Algorithm& algo, const BipartiteGraph& g,
                     const FairBicliqueParams& params,
                     const EnumOptions& options);

/// Default per-run budget for benches (seconds); FAIRBC_TIME_BUDGET
/// overrides. Stands in for the paper's 24h timeout.
double BenchTimeBudget();

}  // namespace fairbc

#endif  // FAIRBC_BENCH_UTIL_SWEEP_H_
