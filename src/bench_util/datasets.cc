#include "bench_util/datasets.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "common/status.h"

namespace fairbc {

namespace {

VertexId Scaled(VertexId base, double scale) {
  return std::max<VertexId>(8, static_cast<VertexId>(base * scale));
}

DatasetSpec MakeSpec(const std::string& name, VertexId nu, VertexId nv,
                     std::uint32_t communities, VertexId cu_max, VertexId cv_max,
                     double noise, std::uint64_t seed,
                     FairBicliqueParams ss_defaults,
                     FairBicliqueParams bs_defaults, double scale) {
  DatasetSpec spec;
  spec.name = name;
  spec.config.num_upper = Scaled(nu, scale);
  spec.config.num_lower = Scaled(nv, scale);
  spec.config.num_communities =
      std::max<std::uint32_t>(4, static_cast<std::uint32_t>(communities * scale));
  spec.config.community_upper_min = 4;
  spec.config.community_upper_max = cu_max;
  spec.config.community_lower_min = 4;
  spec.config.community_lower_max = cv_max;
  spec.config.noise_fraction = noise;
  spec.config.seed = seed;
  spec.ss_defaults = ss_defaults;
  spec.bs_defaults = bs_defaults;
  return spec;
}

}  // namespace

std::vector<DatasetSpec> StandardDatasets(double scale) {
  // Relative scale ordering mirrors Table I: youtube < twitter < imdb ~
  // wiki < dblp. Default parameters are the Table-I defaults retuned to
  // the synthetic scale (delta* = 2, theta* = 0.4 as in the paper).
  std::vector<DatasetSpec> specs;
  specs.push_back(MakeSpec(
      "youtube", 3000, 1000, 90, 14, 12, 0.3, 101,
      FairBicliqueParams{.alpha = 4, .beta = 3, .delta = 2, .theta = 0.0},
      FairBicliqueParams{.alpha = 2, .beta = 2, .delta = 2, .theta = 0.0},
      scale));
  specs.push_back(MakeSpec(
      "twitter", 5000, 14000, 140, 14, 14, 0.3, 102,
      FairBicliqueParams{.alpha = 4, .beta = 3, .delta = 2, .theta = 0.0},
      FairBicliqueParams{.alpha = 2, .beta = 2, .delta = 2, .theta = 0.0},
      scale));
  specs.push_back(MakeSpec(
      "imdb", 8000, 24000, 180, 16, 22, 0.3, 103,
      FairBicliqueParams{.alpha = 5, .beta = 3, .delta = 2, .theta = 0.0},
      FairBicliqueParams{.alpha = 3, .beta = 3, .delta = 2, .theta = 0.0},
      scale));
  specs.push_back(MakeSpec(
      "wiki", 50000, 5000, 170, 14, 12, 0.25, 104,
      FairBicliqueParams{.alpha = 4, .beta = 3, .delta = 2, .theta = 0.0},
      FairBicliqueParams{.alpha = 2, .beta = 2, .delta = 2, .theta = 0.0},
      scale));
  specs.push_back(MakeSpec(
      "dblp", 28000, 80000, 260, 12, 12, 0.2, 105,
      FairBicliqueParams{.alpha = 4, .beta = 3, .delta = 2, .theta = 0.0},
      FairBicliqueParams{.alpha = 2, .beta = 2, .delta = 2, .theta = 0.0},
      scale));
  return specs;
}

double EnvScale() {
  const char* env = std::getenv("FAIRBC_SCALE");
  if (env == nullptr) return 1.0;
  double scale = std::atof(env);
  return scale > 0.0 ? scale : 1.0;
}

std::vector<NamedGraph> LoadStandardDatasets() {
  std::vector<NamedGraph> out;
  for (const DatasetSpec& spec : StandardDatasets(EnvScale())) {
    out.push_back(NamedGraph{spec, MakeAffiliation(spec.config)});
  }
  return out;
}

NamedGraph LoadDataset(const std::string& name) {
  std::string lowered = name;
  std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  for (const DatasetSpec& spec : StandardDatasets(EnvScale())) {
    if (spec.name == lowered) {
      return NamedGraph{spec, MakeAffiliation(spec.config)};
    }
  }
  FAIRBC_CHECK(false && "unknown dataset name");
  return {};
}

}  // namespace fairbc
