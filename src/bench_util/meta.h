#ifndef FAIRBC_BENCH_UTIL_META_H_
#define FAIRBC_BENCH_UTIL_META_H_

#include <cstdint>
#include <string>

namespace fairbc {

/// Run metadata stamped into every bench JSON output so trajectories are
/// comparable across containers/machines: the hardware parallelism the
/// run saw, the git revision of the binary, and the dataset seed/scale
/// that generated the inputs.
struct RunMetadata {
  unsigned hardware_threads = 0;
  std::string git_sha;  ///< FAIRBC_GIT_SHA env, else build-time sha.
  std::uint64_t dataset_seed = 0;
  double scale = 1.0;  ///< FAIRBC_SCALE at run time.
};

/// Fills the metadata from the environment (seed passed by the bench).
RunMetadata CollectRunMetadata(std::uint64_t dataset_seed);

/// `{"hardware_threads":...,"git_sha":"...","dataset_seed":...,"scale":...}`
std::string RunMetadataJson(const RunMetadata& meta);

}  // namespace fairbc

#endif  // FAIRBC_BENCH_UTIL_META_H_
