#include "bench_util/meta.h"

#include <cstdlib>
#include <sstream>
#include <thread>

#include "bench_util/datasets.h"
#include "service/response_json.h"

#ifndef FAIRBC_BUILD_GIT_SHA
#define FAIRBC_BUILD_GIT_SHA "unknown"
#endif

namespace fairbc {

RunMetadata CollectRunMetadata(std::uint64_t dataset_seed) {
  RunMetadata meta;
  meta.hardware_threads = std::thread::hardware_concurrency();
  const char* env_sha = std::getenv("FAIRBC_GIT_SHA");
  meta.git_sha = (env_sha != nullptr && *env_sha != '\0') ? env_sha
                                                          : FAIRBC_BUILD_GIT_SHA;
  meta.dataset_seed = dataset_seed;
  meta.scale = EnvScale();
  return meta;
}

std::string RunMetadataJson(const RunMetadata& meta) {
  std::ostringstream os;
  os << "{\"hardware_threads\":" << meta.hardware_threads << ",\"git_sha\":\""
     << JsonEscape(meta.git_sha) << "\",\"dataset_seed\":" << meta.dataset_seed
     << ",\"scale\":" << JsonDouble(meta.scale) << "}";
  return os.str();
}

}  // namespace fairbc
