#ifndef FAIRBC_BENCH_UTIL_DATASETS_H_
#define FAIRBC_BENCH_UTIL_DATASETS_H_

#include <string>
#include <vector>

#include "core/enumerate.h"
#include "graph/bipartite_graph.h"
#include "graph/generators.h"

namespace fairbc {

/// One synthetic stand-in for a paper dataset (Table I), with the default
/// parameters used by the experiment benches. The paper's KONECT graphs
/// are unavailable offline; these planted-affiliation graphs reproduce
/// the overlapping-biclique structure at laptop scale (DESIGN.md §4).
struct DatasetSpec {
  std::string name;           ///< paper dataset this stands in for.
  AffiliationConfig config;   ///< generator parameters.
  /// Default model parameters mirroring Table I's alpha_s/beta_s (single-
  /// side) and alpha_b/beta_b (bi-side), retuned to the synthetic scale.
  FairBicliqueParams ss_defaults;
  FairBicliqueParams bs_defaults;
};

/// The five stand-ins, ordered as in Table I (Youtube, Twitter, IMDB,
/// Wiki-cat, DBLP). `scale` multiplies vertex counts and community counts
/// (1.0 = default laptop scale; the FAIRBC_SCALE env var is applied by
/// LoadScaledDatasets).
std::vector<DatasetSpec> StandardDatasets(double scale);

/// Reads FAIRBC_SCALE (default 1.0) and materializes name->graph pairs.
struct NamedGraph {
  DatasetSpec spec;
  BipartiteGraph graph;
};
std::vector<NamedGraph> LoadStandardDatasets();

/// Single dataset lookup by (case-insensitive) name at default scale.
NamedGraph LoadDataset(const std::string& name);

/// Scale factor from the FAIRBC_SCALE environment variable (default 1.0).
double EnvScale();

}  // namespace fairbc

#endif  // FAIRBC_BENCH_UTIL_DATASETS_H_
