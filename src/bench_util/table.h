#ifndef FAIRBC_BENCH_UTIL_TABLE_H_
#define FAIRBC_BENCH_UTIL_TABLE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace fairbc {

/// Minimal fixed-width table printer for the experiment benches; renders
/// the paper-shaped rows to stdout in aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  TextTable& AddRow(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string Num(std::uint64_t v);
  static std::string Seconds(double s, bool inf = false);
  static std::string Double(double v, int precision = 3);

  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner ("== Fig. 2 (a): ... ==").
void PrintBanner(std::ostream& os, const std::string& title);

}  // namespace fairbc

#endif  // FAIRBC_BENCH_UTIL_TABLE_H_
