#include "bench_util/sweep.h"

#include <cstdlib>

#include "common/timer.h"

namespace fairbc {

Algorithm AlgoNSF() { return {"NSF", EnumerateSSFBCNaive}; }
Algorithm AlgoFairBCEM() { return {"FairBCEM", EnumerateSSFBC}; }
Algorithm AlgoFairBCEMpp() { return {"FairBCEM++", EnumerateSSFBCPlusPlus}; }
Algorithm AlgoBNSF() { return {"BNSF", EnumerateBSFBCNaive}; }
Algorithm AlgoBFairBCEM() { return {"BFairBCEM", EnumerateBSFBC}; }
Algorithm AlgoBFairBCEMpp() { return {"BFairBCEM++", EnumerateBSFBCPlusPlus}; }

TimedRun RunCounting(const Algorithm& algo, const BipartiteGraph& g,
                     const FairBicliqueParams& params,
                     const EnumOptions& options) {
  TimedRun out;
  CountSink sink;
  Timer timer;
  out.stats = algo.run(g, params, options, sink.AsSink());
  out.seconds = timer.ElapsedSeconds();
  out.count = sink.count();
  out.timed_out = out.stats.budget_exhausted;
  return out;
}

double BenchTimeBudget() {
  const char* env = std::getenv("FAIRBC_TIME_BUDGET");
  if (env != nullptr) {
    double v = std::atof(env);
    if (v > 0) return v;
  }
  return 8.0;
}

}  // namespace fairbc
