#include "service/result_cache.h"

namespace fairbc {

ResultCache::ResultCache(std::size_t capacity, MetricsRegistry* metrics,
                         std::size_t biclique_byte_budget)
    : capacity_(capacity), payload_budget_(biclique_byte_budget) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  hits_ = metrics->GetCounter("fairbc_cache_hits_total",
                              "Result-cache lookups served from the cache.");
  misses_ = metrics->GetCounter("fairbc_cache_misses_total",
                                "Result-cache lookups that missed.");
  insertions_ = metrics->GetCounter("fairbc_cache_insertions_total",
                                    "Summaries inserted into the cache.");
  evictions_ = metrics->GetCounter("fairbc_cache_evictions_total",
                                   "LRU evictions from the cache.");
  payload_hits_ = metrics->GetCounter(
      "fairbc_cache_payload_hits_total",
      "Cache hits that also returned retained result bicliques.");
  payload_evictions_ = metrics->GetCounter(
      "fairbc_cache_payload_evictions_total",
      "Retained biclique payloads shed for the byte budget (or evicted).");
  entries_ = metrics->GetGauge("fairbc_cache_entries",
                               "Summaries currently cached.");
  payload_bytes_gauge_ =
      metrics->GetGauge("fairbc_cache_payload_bytes",
                        "Bytes of retained result bicliques in the cache.");
}

std::size_t ResultCache::PayloadBytes(const std::vector<Biclique>& bicliques) {
  std::size_t bytes = bicliques.size() * sizeof(Biclique);
  for (const Biclique& b : bicliques) {
    bytes += (b.upper.size() + b.lower.size()) * sizeof(VertexId);
  }
  return bytes;
}

void ResultCache::ShedPayload(CachedResult* entry) {
  if (entry->payload == nullptr) return;
  payload_bytes_ -= entry->payload_bytes;
  payload_bytes_gauge_->Add(-static_cast<std::int64_t>(entry->payload_bytes));
  payload_evictions_->Increment();
  entry->payload = nullptr;
  entry->payload_bytes = 0;
}

std::optional<QuerySummary> ResultCache::Lookup(const std::string& key,
                                                Payload* payload) {
  if (payload != nullptr) *payload = nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  // A disabled cache (capacity 0) still counts its misses: a server run
  // with --cache=0 must report the real lookup traffic, not zeros.
  if (capacity_ == 0) {
    misses_->Increment();
    return std::nullopt;
  }
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_->Increment();
    return std::nullopt;
  }
  hits_->Increment();
  lru_.splice(lru_.begin(), lru_, it->second);
  const CachedResult& cached = it->second->second;
  if (payload != nullptr && cached.payload != nullptr) {
    *payload = cached.payload;
    payload_hits_->Increment();
  }
  return cached.summary;
}

void ResultCache::Insert(const std::string& key, const QuerySummary& summary,
                         Payload payload) {
  if (capacity_ == 0) return;
  std::size_t payload_bytes = 0;
  if (payload != nullptr) {
    payload_bytes = PayloadBytes(*payload);
    // A payload the whole budget cannot hold is never retained (and a
    // zero budget retains nothing).
    if (payload_bytes > payload_budget_) {
      payload = nullptr;
      payload_bytes = 0;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  insertions_->Increment();
  auto it = index_.find(key);
  if (it != index_.end()) {
    ShedPayload(&it->second->second);
    it->second->second.summary = summary;
    it->second->second.payload = std::move(payload);
    it->second->second.payload_bytes = payload_bytes;
    payload_bytes_ += payload_bytes;
    if (payload_bytes > 0) {
      payload_bytes_gauge_->Add(static_cast<std::int64_t>(payload_bytes));
    }
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    CachedResult cached;
    cached.summary = summary;
    cached.payload = std::move(payload);
    cached.payload_bytes = payload_bytes;
    payload_bytes_ += payload_bytes;
    if (payload_bytes > 0) {
      payload_bytes_gauge_->Add(static_cast<std::int64_t>(payload_bytes));
    }
    lru_.emplace_front(key, std::move(cached));
    index_[key] = lru_.begin();
    entries_->Increment();
    if (lru_.size() > capacity_) {
      ShedPayload(&lru_.back().second);
      index_.erase(lru_.back().first);
      lru_.pop_back();
      evictions_->Increment();
      entries_->Decrement();
    }
  }
  // Byte budget: shed payloads LRU-first (entries keep their summaries)
  // until the retained bytes fit. The just-inserted payload sits at the
  // front, so it is shed last — only when it alone still overflows, which
  // the pre-insert size check already rules out.
  if (payload_bytes_ > payload_budget_) {
    for (auto rit = lru_.rbegin();
         rit != lru_.rend() && payload_bytes_ > payload_budget_; ++rit) {
      ShedPayload(&rit->second);
    }
  }
}

ResultCache::Telemetry ResultCache::telemetry() const {
  std::lock_guard<std::mutex> lock(mu_);
  Telemetry t;
  t.hits = hits_->Value();
  t.misses = misses_->Value();
  t.insertions = insertions_->Value();
  t.evictions = evictions_->Value();
  t.payload_hits = payload_hits_->Value();
  t.payload_evictions = payload_evictions_->Value();
  t.entries = lru_.size();
  t.capacity = capacity_;
  t.payload_bytes = payload_bytes_;
  t.payload_byte_budget = payload_budget_;
  return t;
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_->Add(-static_cast<std::int64_t>(lru_.size()));
  payload_bytes_gauge_->Add(-static_cast<std::int64_t>(payload_bytes_));
  payload_bytes_ = 0;
  lru_.clear();
  index_.clear();
  hits_->Reset();
  misses_->Reset();
  insertions_->Reset();
  evictions_->Reset();
  payload_hits_->Reset();
  payload_evictions_->Reset();
}

}  // namespace fairbc
