#include "service/result_cache.h"

namespace fairbc {

std::optional<QuerySummary> ResultCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  // A disabled cache (capacity 0) still counts its misses: a server run
  // with --cache=0 must report the real lookup traffic, not zeros.
  if (capacity_ == 0) {
    ++misses_;
    return std::nullopt;
  }
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void ResultCache::Insert(const std::string& key, const QuerySummary& summary) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++insertions_;
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = summary;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, summary);
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

ResultCache::Telemetry ResultCache::telemetry() const {
  std::lock_guard<std::mutex> lock(mu_);
  Telemetry t;
  t.hits = hits_;
  t.misses = misses_;
  t.insertions = insertions_;
  t.evictions = evictions_;
  t.entries = lru_.size();
  t.capacity = capacity_;
  return t;
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  hits_ = misses_ = insertions_ = evictions_ = 0;
}

}  // namespace fairbc
