#include "service/result_cache.h"

namespace fairbc {

ResultCache::ResultCache(std::size_t capacity, MetricsRegistry* metrics)
    : capacity_(capacity) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  hits_ = metrics->GetCounter("fairbc_cache_hits_total",
                              "Result-cache lookups served from the cache.");
  misses_ = metrics->GetCounter("fairbc_cache_misses_total",
                                "Result-cache lookups that missed.");
  insertions_ = metrics->GetCounter("fairbc_cache_insertions_total",
                                    "Summaries inserted into the cache.");
  evictions_ = metrics->GetCounter("fairbc_cache_evictions_total",
                                   "LRU evictions from the cache.");
  entries_ = metrics->GetGauge("fairbc_cache_entries",
                               "Summaries currently cached.");
}

std::optional<QuerySummary> ResultCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  // A disabled cache (capacity 0) still counts its misses: a server run
  // with --cache=0 must report the real lookup traffic, not zeros.
  if (capacity_ == 0) {
    misses_->Increment();
    return std::nullopt;
  }
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_->Increment();
    return std::nullopt;
  }
  hits_->Increment();
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void ResultCache::Insert(const std::string& key, const QuerySummary& summary) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  insertions_->Increment();
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = summary;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, summary);
  index_[key] = lru_.begin();
  entries_->Increment();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    evictions_->Increment();
    entries_->Decrement();
  }
}

ResultCache::Telemetry ResultCache::telemetry() const {
  std::lock_guard<std::mutex> lock(mu_);
  Telemetry t;
  t.hits = hits_->Value();
  t.misses = misses_->Value();
  t.insertions = insertions_->Value();
  t.evictions = evictions_->Value();
  t.entries = lru_.size();
  t.capacity = capacity_;
  return t;
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_->Add(-static_cast<std::int64_t>(lru_.size()));
  lru_.clear();
  index_.clear();
  hits_->Reset();
  misses_->Reset();
  insertions_->Reset();
  evictions_->Reset();
}

}  // namespace fairbc
