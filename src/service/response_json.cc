#include "service/response_json.h"

#include <cstdio>
#include <sstream>

namespace fairbc {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonHex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string JsonDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string StatsJson(const EnumStats& stats) {
  std::ostringstream os;
  os << "{\"results\":" << stats.num_results
     << ",\"nodes\":" << stats.search_nodes
     << ",\"mbc\":" << stats.maximal_bicliques_visited
     << ",\"splits\":" << stats.split_subtrees
     << ",\"prune_s\":" << JsonDouble(stats.prune_seconds)
     << ",\"prune_construct_s\":" << JsonDouble(stats.prune_construct_seconds)
     << ",\"prune_color_s\":" << JsonDouble(stats.prune_color_seconds)
     << ",\"prune_peel_s\":" << JsonDouble(stats.prune_peel_seconds)
     << ",\"enum_s\":" << JsonDouble(stats.enum_seconds)
     << ",\"remaining_upper\":" << stats.remaining_upper
     << ",\"remaining_lower\":" << stats.remaining_lower
     << ",\"peak_struct_bytes\":" << stats.peak_struct_bytes
     << ",\"kernel_calls\":" << stats.kernels.calls
     << ",\"kernel_steps\":" << stats.kernels.steps
     << ",\"kernel_merge\":" << stats.kernels.merge
     << ",\"kernel_gallop\":" << stats.kernels.gallop
     << ",\"kernel_bitset\":" << stats.kernels.bitset
     << ",\"budget_exhausted\":"
     << (stats.budget_exhausted ? "true" : "false") << "}";
  return os.str();
}

std::string QueryParamsSummaryJson(FairModel model, FairAlgo algo,
                                   const FairBicliqueParams& params,
                                   const QuerySummary& summary) {
  std::ostringstream os;
  os << "\"model\":\"" << ToString(model) << "\",\"algo\":\""
     << ToString(algo) << "\",\"alpha\":" << params.alpha
     << ",\"beta\":" << params.beta << ",\"delta\":" << params.delta
     << ",\"theta\":" << JsonDouble(params.theta)
     << ",\"count\":" << summary.count << ",\"digest\":\""
     << JsonHex64(summary.digest) << "\",\"max_upper\":" << summary.max_upper
     << ",\"max_lower\":" << summary.max_lower;
  return os.str();
}

std::string QueryResultJson(const QueryRequest& request,
                            const QueryResult& result) {
  if (!result.status.ok()) return ErrorJson(result.status);
  std::ostringstream os;
  os << "{\"ok\":true,\"cmd\":\"query\",";
  if (!request.request_id.empty()) {
    os << "\"request_id\":\"" << JsonEscape(request.request_id) << "\",";
  }
  os << "\"graph\":\"" << JsonEscape(request.graph) << "\",\"version\":\""
     << JsonHex64(result.graph_version) << "\",";
  if (request.top_k > 0) {
    os << "\"top_k\":" << request.top_k << ",\"rank\":\""
       << ToString(request.rank) << "\",";
  }
  os << QueryParamsSummaryJson(request.model, request.algo, request.params,
                               result.summary)
     << ",\"cache_hit\":" << (result.cache_hit ? "true" : "false")
     << ",\"coalesced\":" << (result.coalesced ? "true" : "false")
     << ",\"seconds\":" << JsonDouble(result.seconds)
     << ",\"stats\":" << StatsJson(result.summary.stats) << "}";
  return os.str();
}

std::string BicliquesJson(const std::vector<Biclique>& bicliques) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < bicliques.size(); ++i) {
    if (i > 0) os << ',';
    os << "{\"upper\":[";
    for (std::size_t j = 0; j < bicliques[i].upper.size(); ++j) {
      if (j > 0) os << ',';
      os << bicliques[i].upper[j];
    }
    os << "],\"lower\":[";
    for (std::size_t j = 0; j < bicliques[i].lower.size(); ++j) {
      if (j > 0) os << ',';
      os << bicliques[i].lower[j];
    }
    os << "]}";
  }
  os << ']';
  return os.str();
}

std::string StreamChunkJson(const QueryRequest& request,
                            const QueryExecutor::StreamChunk& chunk) {
  std::ostringstream os;
  os << "{\"ok\":true,\"cmd\":\"chunk\",";
  if (!request.request_id.empty()) {
    os << "\"request_id\":\"" << JsonEscape(request.request_id) << "\",";
  }
  os << "\"seq\":" << chunk.seq
     << ",\"results_so_far\":" << chunk.results_so_far
     << ",\"nodes_so_far\":" << chunk.nodes_so_far
     << ",\"final\":" << (chunk.final ? "true" : "false")
     << ",\"bicliques\":" << BicliquesJson(chunk.bicliques) << "}";
  return os.str();
}

std::string ExecutorTelemetryJson(const QueryExecutor::Telemetry& t) {
  std::ostringstream os;
  os << "{\"ok\":true,\"cmd\":\"cache\",\"hits\":" << t.cache.hits
     << ",\"misses\":" << t.cache.misses
     << ",\"insertions\":" << t.cache.insertions
     << ",\"evictions\":" << t.cache.evictions
     << ",\"entries\":" << t.cache.entries
     << ",\"capacity\":" << t.cache.capacity
     << ",\"hit_rate\":" << JsonDouble(t.cache.HitRate())
     << ",\"payload_hits\":" << t.cache.payload_hits
     << ",\"payload_evictions\":" << t.cache.payload_evictions
     << ",\"payload_bytes\":" << t.cache.payload_bytes
     << ",\"payload_byte_budget\":" << t.cache.payload_byte_budget
     << ",\"executions\":" << t.executions
     << ",\"coalesced\":" << t.coalesced << "}";
  return os.str();
}

std::string CatalogEntryJson(const CatalogEntry& entry) {
  std::ostringstream os;
  os << "{\"name\":\"" << JsonEscape(entry.name) << "\",\"version\":\""
     << JsonHex64(entry.version) << "\",\"source\":\""
     << JsonEscape(entry.source)
     << "\",\"upper\":" << entry.graph.NumUpper()
     << ",\"lower\":" << entry.graph.NumLower()
     << ",\"edges\":" << entry.graph.NumEdges()
     << ",\"memory_bytes\":" << entry.graph.MemoryBytes()
     << ",\"snapshot_version\":" << entry.snapshot_version
     << ",\"source_bytes\":" << entry.source_bytes
     << ",\"load_seconds\":" << JsonDouble(entry.load_seconds) << "}";
  return os.str();
}

std::string ErrorJson(const std::string& message) {
  return "{\"ok\":false,\"error\":\"" + JsonEscape(message) + "\"}";
}

std::string ErrorJson(const Status& status) {
  return ErrorJson(status.ToString());
}

std::string TypedErrorJson(const std::string& code, const std::string& message) {
  return "{\"ok\":false,\"code\":\"" + JsonEscape(code) + "\",\"error\":\"" +
         JsonEscape(message) + "\"}";
}

}  // namespace fairbc
