#ifndef FAIRBC_SERVICE_RESPONSE_JSON_H_
#define FAIRBC_SERVICE_RESPONSE_JSON_H_

#include <cstdint>
#include <string>

#include "core/enumerate.h"
#include "service/graph_catalog.h"
#include "service/query.h"
#include "service/query_executor.h"
#include "service/result_cache.h"

namespace fairbc {

/// Single-line JSON serializers shared by `fairbc_cli --output=json` and
/// the fairbc_server line protocol: same keys, same formatting, so the
/// CI smoke can compare CLI output against server responses textually.
/// All emitters produce compact JSON (no spaces after ':'), and 64-bit
/// hashes/versions are hex strings ("0x...") to stay safely inside JSON
/// number ranges.

std::string JsonEscape(const std::string& s);

/// `"0x%016x"` form used for digests and graph versions.
std::string JsonHex64(std::uint64_t v);

/// Double with round-trip precision (shortest form via %.17g is overkill
/// for timings; %.9g keeps lines short and sub-nanosecond exact).
std::string JsonDouble(double v);

/// EnumStats as a flat object mirroring EnumStats::DebugString's fields.
std::string StatsJson(const EnumStats& stats);

/// The braceless `"model":...,...,"max_lower":N` fragment describing a
/// query's parameters and its result summary. The server's query
/// responses and `fairbc_cli enum --output=json` both embed exactly
/// this fragment — one emitter, so the key set can never drift apart
/// (the CI smoke compares the two textually).
std::string QueryParamsSummaryJson(FairModel model, FairAlgo algo,
                                   const FairBicliqueParams& params,
                                   const QuerySummary& summary);

/// Full query response (the server's `query` reply; the CLI's enum
/// --output=json embeds the same object under identical keys). Requests
/// carrying a request_id echo it as "request_id"; top-k requests add
/// "top_k"/"rank" — absent otherwise, so legacy responses stay
/// byte-identical.
std::string QueryResultJson(const QueryRequest& request,
                            const QueryResult& result);

/// JSON array of bicliques: [{"upper":[...],"lower":[...]},...].
std::string BicliquesJson(const std::vector<Biclique>& bicliques);

/// One streamed chunk of a `query ... stream=1` line-protocol response:
/// {"ok":true,"cmd":"chunk","seq":N,...,"bicliques":[...]} — one line per
/// chunk, followed by the regular query reply line as the end-of-stream
/// marker. Mirrors the binary protocol's kReplyChunk/kReplyEnd framing.
std::string StreamChunkJson(const QueryRequest& request,
                            const QueryExecutor::StreamChunk& chunk);

/// Telemetry reply for the server's `cache` command: the ResultCache
/// counters plus the executor's single-flight counters ("executions",
/// "coalesced").
std::string ExecutorTelemetryJson(const QueryExecutor::Telemetry& t);

/// One catalog entry (the server's `catalog` reply lists these).
std::string CatalogEntryJson(const CatalogEntry& entry);

/// Uniform error reply: {"ok":false,"error":"..."}.
std::string ErrorJson(const std::string& message);
std::string ErrorJson(const Status& status);

/// Typed error reply: {"ok":false,"code":"busy","error":"..."} — the line
/// protocol's mirror of the binary protocol's wire::ErrorCode, so clients
/// on either protocol can branch on the same category strings.
std::string TypedErrorJson(const std::string& code, const std::string& message);

}  // namespace fairbc

#endif  // FAIRBC_SERVICE_RESPONSE_JSON_H_
