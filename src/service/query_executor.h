#ifndef FAIRBC_SERVICE_QUERY_EXECUTOR_H_
#define FAIRBC_SERVICE_QUERY_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/timer.h"
#include "core/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/graph_catalog.h"
#include "service/query.h"
#include "service/result_cache.h"

namespace fairbc {

struct QueryExecutorOptions {
  /// Width of the executor's query-runner pool: the fixed set of worker
  /// threads that async executions (ExecuteAsync leaders and unshared
  /// runs, and therefore every ExecuteBatch query) run on. 0 = one
  /// worker per hardware thread.
  unsigned num_threads = 0;
  /// ResultCache capacity in entries; 0 disables cross-query reuse.
  std::size_t cache_capacity = 256;
  /// Byte budget for result *bicliques* retained in the cache alongside
  /// their summaries (ResultCache payload; see result_cache.h). Repeated
  /// include_bicliques / streaming queries whose payload was retained
  /// skip the engines entirely. 0 = summaries only.
  std::size_t cache_biclique_bytes = 16u << 20;
  /// Results per streamed chunk (ExecuteStreaming's ChunkSink width).
  std::size_t stream_chunk_results = 64;
  /// Registry all executor and cache telemetry reports through. null =
  /// the executor owns a private registry (exact per-instance counts —
  /// what tests and benches want); the server passes
  /// MetricsRegistry::Global() so one scrape covers the process.
  MetricsRegistry* metrics = nullptr;
  /// Per-query tracing threshold in milliseconds. < 0 (default) disables
  /// tracing entirely — the zero-overhead path. >= 0: every executed
  /// query records phase spans; those whose wall clock reaches the
  /// threshold are retained in the recent-trace ring (0 retains every
  /// executed query — how the smoke test captures a trace per query).
  double slow_query_ms = -1.0;
  /// Capacity of the retained-trace ring (`trace` command history).
  std::size_t trace_ring_capacity = 32;
  /// Span capacity of each per-query trace buffer.
  std::size_t trace_span_capacity = 4096;
  /// Invoked (from the executing thread) for every retained slow-query
  /// trace; the server installs a stderr logger here.
  std::function<void(const QueryRequest&, const QueryResult&)> slow_query_log;
};

/// Concurrent query engine over a GraphCatalog: runs whole queries on a
/// fixed pool of runner threads, shares the read-only catalog entries
/// across them (no per-query graph copies), reuses summaries through an
/// LRU ResultCache, and coalesces concurrent identical queries behind
/// one execution (single-flight admission).
///
/// Concurrency invariants:
///  - catalog entries are immutable shared_ptr<const>, so queries read
///    the graph with no locking; a concurrent catalog replace affects
///    only queries admitted afterwards;
///  - the cache and the in-flight table are internally synchronized; the
///    executor holds no lock while an engine runs;
///  - Execute()/ExecuteAsync() are safe from any thread; batches may run
///    concurrently with each other and with direct calls.
///
/// Single-flight is COMPLETION-LIST based: a duplicate of an in-flight
/// query (same CanonicalCacheKey, summary-only, cacheable) registers a
/// completion callback on the leader's slot instead of occupying a
/// thread. When the leader publishes, it invokes every registered
/// completion with its summary (QueryResult::coalesced) — so however
/// many duplicates are in flight, they hold zero runner threads and zero
/// caller threads (the async path) between admission and completion.
/// The synchronous Execute() still blocks its *own calling* thread when
/// it joins a leader — that thread belongs to the caller (CLI, tests),
/// never to the runner pool or a server reactor, both of which only use
/// the async path. Budget-exhausted leader runs are never shared —
/// waiters are re-admitted (usually becoming the new leader), mirroring
/// the "partial runs are never cached" rule. Queries carrying their own
/// time/node budget never join a leader at all (the key excludes
/// budgets, so a leader may outlive their deadline): they run
/// themselves, at worst duplicating one execution.
///
/// Per-query deadlines/budgets ride on EnumOptions inside the request
/// (SearchBudget in the engines); a query hitting its budget reports
/// stats.budget_exhausted and is never cached.
///
/// Observability: every counter lives in the MetricsRegistry
/// (fairbc_query_* / fairbc_kernel_* families, plus the cache's
/// fairbc_cache_*); telemetry() reads through it. With tracing enabled
/// (slow_query_ms >= 0) each executed query records a span tree —
/// query → admission / queued / execute (→ reduce → construct/color/peel,
/// enumerate → root/split) / publish — and outliers land in traces().
class QueryExecutor {
 public:
  using Completion = std::function<void(QueryResult)>;

  /// One streamed slice of a query's result set (ExecuteStreaming).
  struct StreamChunk {
    std::uint64_t seq = 0;  ///< 1-based chunk index within the stream.
    std::vector<Biclique> bicliques;
    /// Cooperative checkpoint: results delivered up to and including this
    /// chunk, and search nodes the shared SearchBudget had accounted when
    /// the chunk was cut (0 for cache-replayed streams — nothing ran).
    std::uint64_t results_so_far = 0;
    std::uint64_t nodes_so_far = 0;
    bool final = false;  ///< last chunk of the stream.
  };
  /// Invoked once per chunk, strictly in stream order. Same calling
  /// convention as Completion: any thread, must not block for long, and
  /// must not call back into the executor (the server's reactors hand
  /// chunks straight to a cross-thread post).
  using ChunkCallback = std::function<void(const StreamChunk&)>;

  explicit QueryExecutor(const GraphCatalog& catalog,
                         const QueryExecutorOptions& options = {});
  ~QueryExecutor();

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  /// Runs one query on the calling thread (cache lookup, single-flight
  /// admission, then the full reduction + search pipeline when this call
  /// becomes the leader). Never throws; failures (unknown graph, invalid
  /// parameters) come back in QueryResult::status.
  QueryResult Execute(const QueryRequest& request);

  /// Asynchronous admission: never blocks beyond the admission lock.
  ///  - cache hit / unknown graph → `done` is invoked inline, before the
  ///    call returns;
  ///  - duplicate of an in-flight query → `done` is registered on the
  ///    leader's completion list and invoked (with coalesced=true) from
  ///    the leader's runner thread when it publishes — no thread waits;
  ///  - otherwise → the query is posted to the runner pool and `done` is
  ///    invoked from the runner thread that executed it.
  /// `done` must be callable from any thread and must not block for
  /// long: the server's reactors hand it straight to a cheap cross-
  /// thread post.
  void ExecuteAsync(const QueryRequest& request, Completion done);

  /// Streaming execution: results flow to `on_chunk` in bounded chunks
  /// (QueryExecutorOptions::stream_chunk_results) as the engines emit
  /// them, then `done` delivers the final summary (digest/count/stats —
  /// byte-identical to what Execute would have summarized; the summary's
  /// bicliques vector stays empty, the payload went through the chunks).
  /// Every stream carries at least one chunk, the last marked `final` —
  /// except failed admissions (unknown graph, invalid request), which
  /// invoke `done` with the error and no chunks.
  ///
  /// Admission mirrors ExecuteAsync: never blocks beyond the admission
  /// lock. A cache entry that retained the result payload replays it as
  /// chunks inline (cache_hit). A duplicate of an in-flight *streaming*
  /// query attaches to the leader's chunk stream instead of parking on
  /// the final result: the backlog replays inline, live chunks follow,
  /// and its `done` fires with coalesced=true — zero threads held either
  /// way. Like the batch path, queries carrying their own budgets never
  /// attach (and their partial streams are never shared or cached).
  void ExecuteStreaming(const QueryRequest& request, ChunkCallback on_chunk,
                        Completion done);

  /// Runs `requests` concurrently on the runner pool via ExecuteAsync;
  /// results are positionally aligned with the requests; returns when
  /// all have completed. Repeated parameters inside one batch are served
  /// from the cache or coalesced behind the one in-flight execution.
  /// Per-query num_threads is clamped to 1: the batch itself is the unit
  /// of parallelism, and a query spinning a nested enumeration pool on
  /// top of busy runners would oversubscribe the machine (the result set
  /// is thread-count invariant, so the clamp is unobservable in the
  /// output).
  std::vector<QueryResult> ExecuteBatch(
      const std::vector<QueryRequest>& requests);

  /// Executor-level counters on top of the cache's own telemetry — a
  /// registry read-through (single source of truth), kept as a struct so
  /// the `cache` JSON shape stays stable.
  struct Telemetry {
    ResultCache::Telemetry cache;
    std::uint64_t executions = 0;  ///< enumerations actually run.
    std::uint64_t coalesced = 0;   ///< queries served by joining a leader.
  };
  Telemetry telemetry() const;

  std::uint64_t execution_count() const { return executions_->Value(); }
  std::uint64_t coalesced_count() const { return coalesced_->Value(); }

  /// Async executions admitted but not yet completed (leaders + unshared
  /// runs + registered waiters). Telemetry/test aid.
  std::uint64_t async_pending() const {
    const std::int64_t v = async_pending_->Value();
    return v > 0 ? static_cast<std::uint64_t>(v) : 0;
  }

  /// Test seam: invoked on the executing thread right before each real
  /// enumeration (leaders and unshared runs; never cache hits or
  /// coalesced waiters). Tests use it to hold a leader in flight
  /// deterministically. Not for production use. Mutex-guarded so a test
  /// may install/clear it while runner threads are live.
  void SetExecuteHook(std::function<void(const QueryRequest&)> hook) {
    std::lock_guard<std::mutex> lock(hook_mu_);
    execute_hook_ = std::move(hook);
  }

  ResultCache& cache() { return cache_; }
  const GraphCatalog& catalog() const { return catalog_; }
  unsigned num_threads() const {
    return static_cast<unsigned>(runners_.size());
  }

  /// The registry this executor reports into (never null).
  MetricsRegistry* metrics() const { return metrics_; }
  /// Ring of retained slow-query traces (the `trace` command's source).
  TraceRing& traces() { return trace_ring_; }
  const TraceRing& traces() const { return trace_ring_; }
  bool tracing_enabled() const { return slow_query_ms_ >= 0.0; }
  double slow_query_ms() const { return slow_query_ms_; }

 private:
  /// One in-flight execution. Sync waiters block on `cv` (their own
  /// calling thread); async waiters sit in `completions`, which is
  /// guarded by inflight_mu_ (NOT `mu`) so registration and the leader's
  /// take-and-erase are atomic with the in-flight table itself.
  struct InFlight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    bool shareable = false;
    QuerySummary summary;
    /// Async duplicates awaiting this leader; guarded by inflight_mu_.
    struct Waiter {
      QueryRequest request;  ///< kept for re-admission on partial runs.
      Completion done;
      Timer timer;
      std::uint64_t graph_version = 0;
    };
    std::vector<Waiter> waiters;
  };

  /// One in-flight *streaming* execution. The leader appends every chunk
  /// to the backlog and fans it out to the subscribers under `mu`; a late
  /// duplicate replays the backlog inline under the same mutex, so each
  /// subscriber sees every chunk exactly once, in order. The map entry is
  /// erased (under inflight_mu_) before `done` flips, mirroring InFlight.
  struct StreamFlight {
    std::mutex mu;
    std::vector<StreamChunk> backlog;
    bool done = false;
    QueryResult final_result;  ///< valid once done (status + summary).
    struct Subscriber {
      ChunkCallback on_chunk;
      Completion done;
      Timer timer;
    };
    std::vector<Subscriber> subscribers;
  };

  /// Runs the enumeration for `request` against `graph` into `out`
  /// (digest accumulation, optional biclique collection, top-k selection,
  /// stats) under an "execute" span on `trace` (null = untraced), then
  /// folds the run's stats into the registry histograms and kernel
  /// counters. `emit` (nullable) receives streamed chunks; when set, the
  /// run drives a ChunkSink over a shared SearchBudget and records a
  /// "stream" span covering first flush to last.
  void RunQuery(const QueryRequest& request, const BipartiteGraph& graph,
                QueryResult* out, TraceRecorder* trace,
                const ChunkCallback* emit = nullptr);

  /// Leader epilogue shared by Execute and the async runner task:
  /// publishes to the cache, retires the slot, wakes sync waiters and
  /// invokes (or re-admits) async completions.
  void FinishLeader(const std::string& key,
                    const std::shared_ptr<InFlight>& slot,
                    const QuerySummary& summary, bool complete);

  /// Streaming-leader epilogue: publishes summary + payload (rebuilt from
  /// the backlog) to the cache, retires the flight, and completes every
  /// attached subscriber with the coalesced summary. Subscribers already
  /// received every chunk live; only their `done` is pending.
  void FinishStreamLeader(const std::string& key,
                          const std::shared_ptr<StreamFlight>& flight,
                          const QueryResult& out, bool complete);

  /// Fresh per-query recorder, or null when tracing is off.
  std::shared_ptr<TraceRecorder> MaybeStartTrace() const;

  /// Stamps metadata on the recorder, attaches it to `out`, and retains
  /// it in the ring (+ slow-query log) when out->seconds reaches the
  /// threshold. Requires out->seconds to be final.
  void FinalizeTrace(const QueryRequest& request,
                     std::shared_ptr<TraceRecorder> trace, QueryResult* out);

  /// Posts one closure to the runner pool.
  void PostToRunner(std::function<void()> task);
  void RunnerLoop();

  const GraphCatalog& catalog_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;  // before cache_: it
  MetricsRegistry* metrics_;                        // registers counters.
  Counter* queries_;         ///< admissions (every Execute/ExecuteAsync).
  Counter* executions_;      ///< enumerations actually run.
  Counter* coalesced_;       ///< served by joining a leader.
  Counter* failures_;        ///< results with !status.ok().
  Counter* slow_retained_;   ///< traces retained in the ring.
  Gauge* async_pending_;     ///< admitted-but-uncompleted async queries.
  Histogram* query_seconds_;
  Histogram* phase_construct_;
  Histogram* phase_color_;
  Histogram* phase_peel_;
  Histogram* phase_enumerate_;
  Counter* kernel_calls_;
  Counter* kernel_steps_;
  Counter* kernel_merge_;
  Counter* kernel_gallop_;
  Counter* kernel_bitset_;
  Counter* streams_;        ///< ExecuteStreaming admissions.
  Counter* stream_chunks_;  ///< chunks delivered (all streams, all subs).
  Histogram* stream_first_result_;  ///< admission → first chunk latency.
  ResultCache cache_;
  const std::size_t stream_chunk_results_;
  const double slow_query_ms_;
  const std::size_t trace_span_capacity_;
  TraceRing trace_ring_;
  std::function<void(const QueryRequest&, const QueryResult&)>
      slow_query_log_;

  std::mutex inflight_mu_;
  std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight_;
  /// In-flight streaming leaders, keyed like inflight_ (guarded by
  /// inflight_mu_). Kept separate: a streaming duplicate needs the chunk
  /// backlog, which a batch slot does not carry.
  std::unordered_map<std::string, std::shared_ptr<StreamFlight>>
      stream_inflight_;
  std::mutex hook_mu_;
  std::function<void(const QueryRequest&)> execute_hook_;  // guarded by hook_mu_

  // Fixed runner pool: a mutex/cv task deque drained by num_threads
  // workers. Executions are coarse (a whole query each), so a plain
  // shared deque is plenty — work stealing lives inside the enumeration
  // engines' own pools.
  std::mutex runner_mu_;
  std::condition_variable runner_cv_;
  std::deque<std::function<void()>> runner_tasks_;
  bool runner_stop_ = false;
  std::vector<std::thread> runners_;
};

}  // namespace fairbc

#endif  // FAIRBC_SERVICE_QUERY_EXECUTOR_H_
