#ifndef FAIRBC_SERVICE_QUERY_EXECUTOR_H_
#define FAIRBC_SERVICE_QUERY_EXECUTOR_H_

#include <mutex>
#include <vector>

#include "core/parallel.h"
#include "service/graph_catalog.h"
#include "service/query.h"
#include "service/result_cache.h"

namespace fairbc {

struct QueryExecutorOptions {
  /// Width of the executor's work-stealing pool used by ExecuteBatch
  /// (whole queries run as tasks). 0 = one worker per hardware thread.
  unsigned num_threads = 0;
  /// ResultCache capacity in entries; 0 disables cross-query reuse.
  std::size_t cache_capacity = 256;
};

/// Concurrent query engine over a GraphCatalog: admits whole queries onto
/// the existing work-stealing ThreadPool, shares the read-only catalog
/// entries across them (no per-query graph copies), and reuses summaries
/// through an LRU ResultCache.
///
/// Concurrency invariants:
///  - catalog entries are immutable shared_ptr<const>, so queries read
///    the graph with no locking; a concurrent catalog replace affects
///    only queries admitted afterwards;
///  - the cache is internally synchronized; the executor itself holds no
///    lock while an engine runs;
///  - Execute() is safe from any thread (ExecuteBatch calls it from pool
///    workers); ExecuteBatch serializes whole batches against each other
///    (the pool runs one ParallelFor at a time).
///
/// Per-query deadlines/budgets ride on EnumOptions inside the request
/// (SearchBudget in the engines); a query hitting its budget reports
/// stats.budget_exhausted and is never cached.
class QueryExecutor {
 public:
  explicit QueryExecutor(const GraphCatalog& catalog,
                         const QueryExecutorOptions& options = {});

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  /// Runs one query on the calling thread (cache lookup, then the full
  /// reduction + search pipeline on a cache miss). Never throws; failures
  /// (unknown graph, invalid parameters) come back in QueryResult::status.
  QueryResult Execute(const QueryRequest& request);

  /// Runs `requests` concurrently on the executor's pool; results are
  /// positionally aligned with the requests. Repeated parameters inside
  /// one batch may be served from the cache as earlier queries complete.
  std::vector<QueryResult> ExecuteBatch(
      const std::vector<QueryRequest>& requests);

  ResultCache& cache() { return cache_; }
  const GraphCatalog& catalog() const { return catalog_; }
  unsigned num_threads() const { return pool_.num_threads(); }

 private:
  const GraphCatalog& catalog_;
  ResultCache cache_;
  ThreadPool pool_;
  std::mutex batch_mu_;  ///< one ExecuteBatch at a time (pool contract).
};

}  // namespace fairbc

#endif  // FAIRBC_SERVICE_QUERY_EXECUTOR_H_
