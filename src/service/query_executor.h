#ifndef FAIRBC_SERVICE_QUERY_EXECUTOR_H_
#define FAIRBC_SERVICE_QUERY_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/parallel.h"
#include "service/graph_catalog.h"
#include "service/query.h"
#include "service/result_cache.h"

namespace fairbc {

struct QueryExecutorOptions {
  /// Width of the executor's work-stealing pool used by ExecuteBatch
  /// (whole queries run as tasks). 0 = one worker per hardware thread.
  unsigned num_threads = 0;
  /// ResultCache capacity in entries; 0 disables cross-query reuse.
  std::size_t cache_capacity = 256;
};

/// Concurrent query engine over a GraphCatalog: admits whole queries onto
/// the existing work-stealing ThreadPool, shares the read-only catalog
/// entries across them (no per-query graph copies), reuses summaries
/// through an LRU ResultCache, and coalesces concurrent identical queries
/// behind one execution (single-flight admission).
///
/// Concurrency invariants:
///  - catalog entries are immutable shared_ptr<const>, so queries read
///    the graph with no locking; a concurrent catalog replace affects
///    only queries admitted afterwards;
///  - the cache and the in-flight table are internally synchronized; the
///    executor holds no lock while an engine runs;
///  - Execute() is safe from any thread (ExecuteBatch calls it from pool
///    workers, the TCP server from session threads); ExecuteBatch
///    serializes whole batches against each other (the pool runs one
///    ParallelFor at a time).
///
/// Single-flight: summary-only cacheable queries (use_cache &&
/// !include_bicliques) that arrive while an identical query (same
/// CanonicalCacheKey) is already executing block until that leader
/// finishes and adopt its summary (QueryResult::coalesced). Budget-
/// exhausted leader runs are never shared — such waiters retry with their
/// own execution, mirroring the "partial runs are never cached" rule.
/// Queries carrying their own time/node budget never wait on a leader at
/// all (the key excludes budgets, so a leader may outlive their
/// deadline): they run themselves, at worst duplicating one execution.
///
/// Per-query deadlines/budgets ride on EnumOptions inside the request
/// (SearchBudget in the engines); a query hitting its budget reports
/// stats.budget_exhausted and is never cached.
class QueryExecutor {
 public:
  explicit QueryExecutor(const GraphCatalog& catalog,
                         const QueryExecutorOptions& options = {});

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  /// Runs one query on the calling thread (cache lookup, single-flight
  /// admission, then the full reduction + search pipeline when this call
  /// becomes the leader). Never throws; failures (unknown graph, invalid
  /// parameters) come back in QueryResult::status.
  QueryResult Execute(const QueryRequest& request);

  /// Runs `requests` concurrently on the executor's pool; results are
  /// positionally aligned with the requests. Repeated parameters inside
  /// one batch are served from the cache or coalesced behind the one
  /// in-flight execution. Per-query num_threads is clamped to 1: the
  /// batch itself is the unit of parallelism, and a query spinning a
  /// nested pool on top of a busy batch pool would oversubscribe the
  /// machine (the result set is thread-count invariant, so the clamp is
  /// unobservable in the output).
  std::vector<QueryResult> ExecuteBatch(
      const std::vector<QueryRequest>& requests);

  /// Executor-level counters on top of the cache's own telemetry.
  struct Telemetry {
    ResultCache::Telemetry cache;
    std::uint64_t executions = 0;  ///< enumerations actually run.
    std::uint64_t coalesced = 0;   ///< queries served by joining a leader.
  };
  Telemetry telemetry() const;

  std::uint64_t execution_count() const {
    return executions_.load(std::memory_order_relaxed);
  }
  std::uint64_t coalesced_count() const {
    return coalesced_.load(std::memory_order_relaxed);
  }

  ResultCache& cache() { return cache_; }
  const GraphCatalog& catalog() const { return catalog_; }
  unsigned num_threads() const { return pool_.num_threads(); }

 private:
  /// One in-flight execution; waiters block on cv until the leader
  /// publishes. `shareable` is false when the leader's run must not be
  /// adopted (budget exhausted), sending waiters back around the loop.
  struct InFlight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    bool shareable = false;
    QuerySummary summary;
  };

  /// Runs the enumeration for `request` against `graph` into `out`
  /// (digest accumulation, optional biclique collection, stats).
  void RunQuery(const QueryRequest& request, const BipartiteGraph& graph,
                QueryResult* out);

  const GraphCatalog& catalog_;
  ResultCache cache_;
  ThreadPool pool_;
  std::mutex batch_mu_;  ///< one ExecuteBatch at a time (pool contract).

  std::mutex inflight_mu_;
  std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight_;
  std::atomic<std::uint64_t> executions_{0};
  std::atomic<std::uint64_t> coalesced_{0};
};

}  // namespace fairbc

#endif  // FAIRBC_SERVICE_QUERY_EXECUTOR_H_
