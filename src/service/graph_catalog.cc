#include "service/graph_catalog.h"

#include <utility>

#include <sys/stat.h>

#include "common/timer.h"
#include "graph/io.h"
#include "graph/snapshot.h"

namespace fairbc {

namespace {

Status Publish(std::mutex& mu,
               std::map<std::string, std::shared_ptr<const CatalogEntry>>& map,
               const std::string& name, BipartiteGraph graph,
               const std::string& source, double load_seconds,
               std::uint32_t snapshot_version = 0,
               std::uint64_t source_bytes = 0) {
  if (name.empty()) {
    return Status::InvalidArgument("catalog name must be nonempty");
  }
  auto entry = std::make_shared<CatalogEntry>();
  entry->name = name;
  entry->version = GraphFingerprint(graph);
  entry->source = source;
  entry->load_seconds = load_seconds;
  entry->snapshot_version = snapshot_version;
  entry->source_bytes = source_bytes;
  entry->graph = std::move(graph);
  std::lock_guard<std::mutex> lock(mu);
  map[name] = std::move(entry);
  return Status::OK();
}

}  // namespace

Status GraphCatalog::AddGraph(const std::string& name, BipartiteGraph graph,
                              const std::string& source) {
  return Publish(mu_, entries_, name, std::move(graph), source,
                 /*load_seconds=*/0.0);
}

Status GraphCatalog::AddFromFile(const std::string& name,
                                 const std::string& path, Format format) {
  Timer timer;
  Result<BipartiteGraph> loaded =
      format == Format::kSnapshot     ? ReadSnapshot(path)
      : format == Format::kSnapshotMmap ? ReadSnapshotView(path)
      : format == Format::kAttr       ? ReadAttributedGraph(path)
                                      : ReadEdgeList(path);
  if (!loaded.ok()) return loaded.status();
  std::uint64_t source_bytes = 0;
  struct stat st{};
  if (::stat(path.c_str(), &st) == 0 && st.st_size >= 0) {
    source_bytes = static_cast<std::uint64_t>(st.st_size);
  }
  std::uint32_t snapshot_version = 0;
  if (format == Format::kSnapshot || format == Format::kSnapshotMmap) {
    // The load above already authenticated the file; the probe only
    // recovers which format version it was, for catalog telemetry
    // (compressed catalogs report their on-disk footprint).
    Result<SnapshotInfo> info = ProbeSnapshot(path);
    if (info.ok()) snapshot_version = info.value().version;
  }
  return Publish(mu_, entries_, name, std::move(loaded).value(), path,
                 timer.ElapsedSeconds(), snapshot_version, source_bytes);
}

std::shared_ptr<const CatalogEntry> GraphCatalog::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second;
}

bool GraphCatalog::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.erase(name) > 0;
}

std::vector<std::shared_ptr<const CatalogEntry>> GraphCatalog::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<const CatalogEntry>> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(entry);
  return out;
}

std::size_t GraphCatalog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::optional<GraphCatalog::Format> ParseCatalogFormat(
    const std::string& name) {
  if (name == "snapshot") return GraphCatalog::Format::kSnapshot;
  if (name == "mmap") return GraphCatalog::Format::kSnapshotMmap;
  if (name == "attr") return GraphCatalog::Format::kAttr;
  if (name == "edges") return GraphCatalog::Format::kEdges;
  return std::nullopt;
}

const char* ToString(GraphCatalog::Format format) {
  switch (format) {
    case GraphCatalog::Format::kAttr:
      return "attr";
    case GraphCatalog::Format::kEdges:
      return "edges";
    case GraphCatalog::Format::kSnapshotMmap:
      return "mmap";
    case GraphCatalog::Format::kSnapshot:
      break;
  }
  return "snapshot";
}

}  // namespace fairbc
