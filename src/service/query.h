#ifndef FAIRBC_SERVICE_QUERY_H_
#define FAIRBC_SERVICE_QUERY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/enumerate.h"
#include "core/pipeline.h"
#include "core/verify.h"
#include "obs/trace.h"

namespace fairbc {

/// One request against the query service: which catalog graph to
/// interrogate, which fairness model/engine, and the model parameters.
/// EnumOptions carries ordering/pruning plus per-query deadline/budget
/// (time_budget_seconds / node_budget → the engines' shared SearchBudget)
/// and num_threads for the search itself. Requests executed concurrently
/// through QueryExecutor::ExecuteBatch should normally keep num_threads
/// at 1 — concurrency then comes from running whole queries in parallel.
struct QueryRequest {
  std::string graph;  ///< GraphCatalog name.
  FairModel model = FairModel::kSsfbc;
  FairAlgo algo = FairAlgo::kPlusPlus;
  FairBicliqueParams params;
  EnumOptions options;
  bool use_cache = true;
  /// Collect the bicliques themselves into QueryResult::bicliques (the
  /// summary alone is returned otherwise). Collected runs are served from
  /// cache only when the cache retained the result *payload* under its
  /// byte budget (ResultCacheOptions::biclique_byte_budget); either way
  /// they publish their summary for later summary-only queries.
  bool include_bicliques = false;
  /// Keep only the `top_k` best results under `rank` (0 = enumerate
  /// everything, the default). Top-k runs feed the current k-th best back
  /// into the engines as a branch-and-bound prune bound; the output
  /// equals the top k of the full enumeration under (rank desc, canonical
  /// biclique order asc). Part of the cache key.
  std::uint32_t top_k = 0;
  TopKRank rank = TopKRank::kWeight;
  /// Optional client-supplied correlation token (traceparent-style),
  /// echoed verbatim in responses and stamped onto retained trace spans.
  /// Never part of a query's identity (cache key / single-flight).
  std::string request_id;
};

/// Order-independent 64-bit content hash of one biclique.
std::uint64_t BicliqueHash(const Biclique& b);

/// Cacheable summary of one finished query. The digest is the wrapping
/// sum of BicliqueHash over the result set — independent of emission
/// order, so serial and parallel runs of the same query agree.
struct QuerySummary {
  std::uint64_t count = 0;
  std::uint64_t digest = 0;
  std::uint32_t max_upper = 0;  ///< largest |L| over the result set.
  std::uint32_t max_lower = 0;  ///< largest |R| over the result set.
  EnumStats stats;              ///< per-query stats of the producing run.
};

/// Streaming accumulator for QuerySummary's result-derived fields. Wrap()
/// returns a sink adapter that updates the accumulator then forwards to
/// `inner`; it is NOT internally synchronized, which is safe for sinks
/// handed to the pipeline.h entry points (they serialize sink invocation
/// — see the BicliqueSink contract in core/enumerate.h).
class DigestAccumulator {
 public:
  BicliqueSink Wrap(BicliqueSink inner);

  std::uint64_t count() const { return count_; }
  std::uint64_t digest() const { return digest_; }
  std::uint32_t max_upper() const { return max_upper_; }
  std::uint32_t max_lower() const { return max_lower_; }

  /// Copies the accumulated fields into `summary` (stats untouched).
  void FillSummary(QuerySummary* summary) const;

 private:
  std::uint64_t count_ = 0;
  std::uint64_t digest_ = 0;
  std::uint32_t max_upper_ = 0;
  std::uint32_t max_lower_ = 0;
};

/// Outcome of one executed (or cache-served, or coalesced) query.
struct QueryResult {
  Status status = Status::OK();
  QuerySummary summary;
  bool cache_hit = false;
  /// True when this query joined an identical in-flight execution
  /// (single-flight admission) and shares that run's summary instead of
  /// having run the engines itself.
  bool coalesced = false;
  /// Worker threads the enumeration actually ran with (after the
  /// executor's batch clamp); 0 for cache hits, coalesced waiters and
  /// failed lookups, where no enumeration ran.
  unsigned effective_threads = 0;
  double seconds = 0.0;  ///< wall clock incl. catalog/cache bookkeeping.
  std::uint64_t graph_version = 0;
  std::vector<Biclique> bicliques;  ///< filled iff include_bicliques.
  /// Phase spans of this execution, when the executor ran with tracing
  /// enabled (QueryExecutorOptions::slow_query_ms >= 0) and this result
  /// came from a real enumeration (never cache hits or coalesced
  /// waiters). The server appends its serialize span post-hoc; consumers
  /// render it with TraceEventsJson.
  std::shared_ptr<TraceRecorder> trace;
};

/// Canonical ResultCache key: everything that determines the result set
/// and its summary — graph content version, model, algo, alpha, beta,
/// delta, theta, ordering, pruning, and (for top-k queries) k and rank.
/// Thread count is deliberately excluded (it never changes the result
/// set); budgets are excluded because budget-limited (partial) runs are
/// never inserted; request_id is correlation metadata, not identity.
std::string CanonicalCacheKey(const QueryRequest& req,
                              std::uint64_t graph_version);

/// Wire-name parsers/printers shared by the CLI flags and the server's
/// line protocol.
std::optional<FairModel> ParseFairModel(const std::string& name);
std::optional<FairAlgo> ParseFairAlgo(const std::string& name);
std::optional<TopKRank> ParseTopKRank(const std::string& name);
const char* ToString(FairModel model);
const char* ToString(FairAlgo algo);
const char* ToString(VertexOrdering ordering);
const char* ToString(PruningLevel level);
const char* ToString(TopKRank rank);

/// Validates a client-supplied request_id token: at most 128 bytes of
/// printable ASCII with no space, double quote or backslash (so it embeds
/// verbatim in JSON and the line protocol). Empty = absent = valid.
bool ValidRequestId(const std::string& token);

}  // namespace fairbc

#endif  // FAIRBC_SERVICE_QUERY_H_
