#ifndef FAIRBC_SERVICE_WIRE_H_
#define FAIRBC_SERVICE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "service/query.h"

namespace fairbc {
namespace wire {

/// Length-prefixed little-endian binary framing for the fairbc server.
/// Both protocols share one port: the first byte of a connection decides —
/// kMagic's low byte (0xBC) is not printable ASCII, so no line-protocol
/// command can ever start a binary stream and vice versa.
///
/// Frame layout (all integers little-endian):
///
///   offset  size  field
///   0       2     magic        0xFBBC
///   2       1     version      kVersion (currently 1)
///   3       1     opcode       Opcode
///   4       8     request id   echoed verbatim in the response frame
///   12      4     payload len  bytes following the header
///   16      n     payload      opcode-specific
///
/// Responses are delivered in request order per connection (pipelining:
/// a client may send many frames before reading), and the request id is
/// echoed so clients can also match by id. Unknown versions and corrupt
/// headers are answered with one kError frame (ErrorCode::kBadFrame /
/// kUnsupportedVersion) before the connection closes — a parser can not
/// resynchronize inside a corrupt length-prefixed stream.

inline constexpr std::uint16_t kMagic = 0xFBBC;
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::size_t kHeaderBytes = 16;

/// True when a connection's first byte announces the binary protocol.
inline bool LooksBinary(unsigned char first_byte) {
  return first_byte == static_cast<unsigned char>(kMagic & 0xFF);
}

enum class Opcode : std::uint8_t {
  // Requests.
  kPing = 0x01,     ///< liveness probe; empty payload.
  kCommand = 0x02,  ///< payload: UTF-8 request line (line-protocol grammar).
  kQuery = 0x03,    ///< payload: packed QueryRequest (EncodeQueryPayload).
  // Responses (high bit set).
  kPong = 0x81,   ///< reply to kPing; empty payload.
  kReply = 0x82,  ///< payload: the JSON object the line protocol prints.
  /// One streamed slice of a query's result set (EncodeChunkPayload).
  /// A streaming query is answered by zero or more kReplyChunk frames
  /// followed by exactly one kReplyEnd frame, all echoing the request id,
  /// delivered contiguously and in stream order — responses stay in
  /// request order per connection, so a pipelined stream never interleaves
  /// with other replies.
  kReplyChunk = 0x83,
  /// Final frame of a stream; payload is the same JSON object kReply
  /// would have carried (summary/digest/stats — no bicliques, those went
  /// through the chunks).
  kReplyEnd = 0x84,
  kError = 0x8F,  ///< payload: u16 ErrorCode + UTF-8 message.
};

/// True for opcodes a *client* may send (the server rejects responses
/// sent at it, and vice versa).
bool IsRequestOpcode(Opcode op);
bool IsResponseOpcode(Opcode op);

/// Typed error category carried by kError frames (and mirrored as the
/// "code" field of line-protocol error JSON).
enum class ErrorCode : std::uint16_t {
  kBadRequest = 1,          ///< malformed/out-of-range request contents.
  kBusy = 2,                ///< admission control: too many in-flight queries.
  kTooLarge = 3,            ///< request exceeds --max-request-bytes.
  kNotFound = 4,            ///< unknown graph/entry.
  kInternal = 5,            ///< server-side failure.
  kBadFrame = 6,            ///< corrupt frame (magic/opcode/length).
  kUnsupportedVersion = 7,  ///< frame version this server does not speak.
};

const char* ToString(ErrorCode code);

/// One decoded frame. `payload` is owned (copied out of the stream
/// buffer) so the connection may compact its read buffer immediately.
struct Frame {
  std::uint8_t version = kVersion;
  Opcode opcode = Opcode::kPing;
  std::uint64_t request_id = 0;
  std::string payload;
};

// --- primitive little-endian codec -----------------------------------------

void AppendU8(std::string* out, std::uint8_t v);
void AppendU16(std::string* out, std::uint16_t v);
void AppendU32(std::string* out, std::uint32_t v);
void AppendU64(std::string* out, std::uint64_t v);
void AppendF64(std::string* out, double v);
/// u16 length prefix + bytes; FAIRBC_CHECKs the string fits in 64 KiB.
void AppendString16(std::string* out, std::string_view s);

/// Bounds-checked forward reader over a payload. Every Read* returns
/// false (and leaves the output untouched) instead of reading past the
/// end, so truncated/corrupt payloads can never be UB.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ReadU8(std::uint8_t* v);
  bool ReadU16(std::uint16_t* v);
  bool ReadU32(std::uint32_t* v);
  bool ReadU64(std::uint64_t* v);
  bool ReadF64(double* v);
  bool ReadString16(std::string* v);

  std::size_t remaining() const { return data_.size() - off_; }
  bool AtEnd() const { return off_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t off_ = 0;
};

// --- frame codec ------------------------------------------------------------

/// Serializes `frame` (header + payload) onto `out`.
void EncodeFrame(const Frame& frame, std::string* out);

enum class FrameStatus {
  kOk,        ///< one complete frame decoded; `consumed` bytes used.
  kNeedMore,  ///< the buffer holds a valid prefix; read more bytes.
  kBad,       ///< unrecoverable: wrong magic/version/opcode or oversized.
};

struct DecodeResult {
  FrameStatus status = FrameStatus::kBad;
  /// Set when status == kBad: what to tell the client before closing.
  ErrorCode code = ErrorCode::kBadFrame;
  std::string message;
};

/// Decodes the frame starting at `buf[0]`. Payloads longer than
/// `max_payload` are rejected as kBad/kTooLarge *from the header alone*,
/// so a hostile length prefix can never drive buffering or allocation.
DecodeResult DecodeFrame(std::string_view buf, std::size_t max_payload,
                         Frame* out, std::size_t* consumed);

// --- opcode payloads --------------------------------------------------------

/// Packed QueryRequest payload for Opcode::kQuery:
///
///   u16+bytes graph      catalog name
///   u8        model      0 = ssfbc, 1 = bsfbc
///   u8        algo       0 = pp, 1 = bcem, 2 = naive
///   u32       alpha, beta, delta
///   f64       theta
///   u8        ordering   0 = deg, 1 = id
///   u8        pruning    0 = colorful, 1 = core, 2 = none
///   f64       time budget seconds (0 = unlimited)
///   u64       node budget (0 = unlimited)
///   u32       threads
///   u8        flags      bit0 = use_cache, bit1 = stream
///
/// followed by an OPTIONAL extension tail (absent in v1 frames from older
/// clients — the decoder treats end-of-payload here as all defaults):
///
///   u32       top_k      0 = full enumeration
///   u8        rank       0 = weight, 1 = size, 2 = balance
///   u16+bytes request id correlation token (may be empty)
std::string EncodeQueryPayload(const QueryRequest& request,
                               bool stream = false);

/// Strictly validated inverse of EncodeQueryPayload: truncated or
/// trailing bytes, unknown enum values, and out-of-range numerics (the
/// same [0, 1e9] / [0, 1] / [0, 1024] windows as the line protocol's
/// BuildQueryRequest) all come back as InvalidArgument. `stream`
/// (nullable) receives the flags' stream bit.
Result<QueryRequest> DecodeQueryPayload(std::string_view payload,
                                        bool* stream = nullptr);

/// One decoded kReplyChunk payload.
struct ChunkPayload {
  std::uint64_t seq = 0;             ///< 1-based chunk index.
  std::uint64_t results_so_far = 0;  ///< results up to and incl. chunk.
  std::uint64_t nodes_so_far = 0;    ///< search-node checkpoint.
  std::vector<Biclique> bicliques;
};

/// kReplyChunk payload:
///
///   u64  seq, u64 results_so_far, u64 nodes_so_far
///   u32  count
///   then per biclique: u32 |L| + |L| x u32 ids, u32 |R| + |R| x u32 ids
std::string EncodeChunkPayload(std::uint64_t seq, std::uint64_t results_so_far,
                               std::uint64_t nodes_so_far,
                               const std::vector<Biclique>& bicliques);

/// Strict inverse of EncodeChunkPayload (truncated/trailing bytes and
/// hostile counts rejected from the declared sizes before allocation).
Result<ChunkPayload> DecodeChunkPayload(std::string_view payload);

/// kError payload: u16 code + UTF-8 message (rest of payload).
std::string EncodeErrorPayload(ErrorCode code, std::string_view message);
Status DecodeErrorPayload(std::string_view payload, ErrorCode* code,
                          std::string* message);

}  // namespace wire
}  // namespace fairbc

#endif  // FAIRBC_SERVICE_WIRE_H_
