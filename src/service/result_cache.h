#ifndef FAIRBC_SERVICE_RESULT_CACHE_H_
#define FAIRBC_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "service/query.h"

namespace fairbc {

/// Thread-safe LRU cache of query summaries, keyed on the canonical
/// (graph version, model, parameters) string (CanonicalCacheKey). The
/// parameter-sweep workloads (the fig2/fig5/fig7 shape) re-issue
/// near-identical queries, so even a small cache absorbs most repeats.
/// Capacity 0 disables the cache (every lookup misses, inserts drop).
///
/// Entries may additionally retain the result *bicliques* (shared,
/// immutable) up to `biclique_byte_budget` bytes across the cache, so
/// repeated include_bicliques / streaming queries skip the engines
/// entirely. Payloads are dropped LRU-first when the budget is exceeded
/// — the summary always survives its payload. Budget 0 disables payload
/// retention (summary-only, the pre-streaming behavior).
///
/// Graph versions are content fingerprints, so replacing a catalog entry
/// with different content naturally invalidates its cached summaries —
/// the stale keys simply age out of the LRU list.
///
/// All telemetry lives in a MetricsRegistry (fairbc_cache_* counters and
/// the fairbc_cache_entries gauge) — the registry is the single source
/// of truth; telemetry() and the `cache` JSON read through it. Pass the
/// process registry to fold this cache into its Prometheus scrape, or
/// nothing for a private registry (exact per-instance counts in tests).
class ResultCache {
 public:
  /// Shared immutable result payload retained alongside a summary.
  using Payload = std::shared_ptr<const std::vector<Biclique>>;

  explicit ResultCache(std::size_t capacity,
                       MetricsRegistry* metrics = nullptr,
                       std::size_t biclique_byte_budget = 0);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the cached summary and refreshes its recency, or nullopt.
  /// When `payload` is non-null it receives the retained bicliques (null
  /// when the entry has none) — a summary hit with a null payload still
  /// needs the engines if the caller wants the bicliques themselves.
  std::optional<QuerySummary> Lookup(const std::string& key,
                                     Payload* payload = nullptr);

  /// Inserts or refreshes `key`; evicts the least-recently-used entry
  /// when over capacity. A non-null `payload` is retained when it fits
  /// the byte budget (older payloads are shed LRU-first to make room; a
  /// payload larger than the whole budget is simply not retained).
  void Insert(const std::string& key, const QuerySummary& summary,
              Payload payload = nullptr);

  /// Hit/miss/eviction counters since construction (or the last Clear),
  /// read from the registry.
  struct Telemetry {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t payload_hits = 0;
    std::uint64_t payload_evictions = 0;
    std::size_t entries = 0;
    std::size_t capacity = 0;
    std::size_t payload_bytes = 0;
    std::size_t payload_byte_budget = 0;

    double HitRate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };
  Telemetry telemetry() const;

  /// Drops all entries and resets the counters.
  void Clear();

  std::size_t capacity() const { return capacity_; }
  std::size_t biclique_byte_budget() const { return payload_budget_; }

  /// Approximate retained size of a payload (vector headers + id arrays).
  static std::size_t PayloadBytes(const std::vector<Biclique>& bicliques);

 private:
  struct CachedResult {
    QuerySummary summary;
    Payload payload;             ///< null when not retained.
    std::size_t payload_bytes = 0;
  };
  using Entry = std::pair<std::string, CachedResult>;

  /// Drops the payload of `entry` (mu_ held).
  void ShedPayload(CachedResult* entry);

  const std::size_t capacity_;
  const std::size_t payload_budget_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  Counter* hits_;
  Counter* misses_;
  Counter* insertions_;
  Counter* evictions_;
  Counter* payload_hits_;
  Counter* payload_evictions_;
  Gauge* entries_;
  Gauge* payload_bytes_gauge_;
  mutable std::mutex mu_;
  std::size_t payload_bytes_ = 0;  ///< retained across all entries.
  std::list<Entry> lru_;  ///< front = most recently used.
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace fairbc

#endif  // FAIRBC_SERVICE_RESULT_CACHE_H_
