#ifndef FAIRBC_SERVICE_RESULT_CACHE_H_
#define FAIRBC_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "service/query.h"

namespace fairbc {

/// Thread-safe LRU cache of query summaries, keyed on the canonical
/// (graph version, model, parameters) string (CanonicalCacheKey). The
/// parameter-sweep workloads (the fig2/fig5/fig7 shape) re-issue
/// near-identical queries, so even a small cache absorbs most repeats.
/// Capacity 0 disables the cache (every lookup misses, inserts drop).
///
/// Graph versions are content fingerprints, so replacing a catalog entry
/// with different content naturally invalidates its cached summaries —
/// the stale keys simply age out of the LRU list.
///
/// All telemetry lives in a MetricsRegistry (fairbc_cache_* counters and
/// the fairbc_cache_entries gauge) — the registry is the single source
/// of truth; telemetry() and the `cache` JSON read through it. Pass the
/// process registry to fold this cache into its Prometheus scrape, or
/// nothing for a private registry (exact per-instance counts in tests).
class ResultCache {
 public:
  explicit ResultCache(std::size_t capacity,
                       MetricsRegistry* metrics = nullptr);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the cached summary and refreshes its recency, or nullopt.
  std::optional<QuerySummary> Lookup(const std::string& key);

  /// Inserts or refreshes `key`; evicts the least-recently-used entry
  /// when over capacity.
  void Insert(const std::string& key, const QuerySummary& summary);

  /// Hit/miss/eviction counters since construction (or the last Clear),
  /// read from the registry.
  struct Telemetry {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t capacity = 0;

    double HitRate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };
  Telemetry telemetry() const;

  /// Drops all entries and resets the counters.
  void Clear();

  std::size_t capacity() const { return capacity_; }

 private:
  using Entry = std::pair<std::string, QuerySummary>;

  const std::size_t capacity_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  Counter* hits_;
  Counter* misses_;
  Counter* insertions_;
  Counter* evictions_;
  Gauge* entries_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recently used.
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace fairbc

#endif  // FAIRBC_SERVICE_RESULT_CACHE_H_
