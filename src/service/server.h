#ifndef FAIRBC_SERVICE_SERVER_H_
#define FAIRBC_SERVICE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "service/graph_catalog.h"
#include "service/query.h"
#include "service/query_executor.h"

namespace fairbc {

/// Line protocol of fairbc_server, shared by the stdin/stdout mode, the
/// TCP mode and the in-process tests. One request per line, `command
/// key=value ...`; one JSON object per response line (every response
/// carries the serving session's id as `"session":N`). Blank lines and
/// `#` comments are ignored. Malformed requests — including unparsable
/// or out-of-range numeric arguments — get {"ok":false,"error":...}; the
/// server never exits on bad input.
///
///   ping
///   load name=G path=FILE [format=snapshot|mmap|attr|edges]
///   gen name=G [kind=uniform|powerlaw|affiliation] [nu=N] [nv=N]
///       [edges=M] [attrs=K] [seed=S] [communities=C]
///   save name=G path=FILE [compress=0|1] [block=EDGES_PER_BLOCK]
///        (compress=1 writes the v3 compressed snapshot format)
///   catalog
///   query graph=G [model=ssfbc|bsfbc] [algo=pp|bcem|naive] [alpha=A]
///         [beta=B] [delta=D] [theta=T] [ordering=deg|id]
///         [pruning=colorful|core|none] [budget=SECONDS] [threads=N]
///         [cache=0|1] [top_k=K] [rank=weight|size|balance] [rid=TOKEN]
///         [stream=0|1]
///         (top_k=K returns only the K best bicliques under `rank`;
///          rid=TOKEN is a client correlation id echoed as "request_id"
///          in every response line of the query and retained in its
///          trace; stream=1 answers with zero or more
///          {"cmd":"chunk",...} lines carrying the bicliques, followed
///          by the regular query reply line as the end-of-stream marker)
///   sweep graph=G alphas=2,3 betas=2,3 deltas=1,2 [query keys...]
///   cache        (cache + single-flight telemetry; takes no arguments —
///                 extra keys are a typed bad_argument error)
///   metrics      (full Prometheus exposition of the process registry,
///                 JSON-escaped into the "text" field — one scrape
///                 covers executor, cache, kernel and reactor counters)
///   trace [n=N]  (the N most recent retained slow-query traces, newest
///                 first, each a Chrome trace-event JSON object; see
///                 --slow-query-ms and docs/OBSERVABILITY.md. n must be
///                 an integer in [1, 1024] and no other keys are
///                 accepted — violations are typed bad_argument errors)
///   drop name=G
///   quit         (ends THIS session: closes the TCP connection / stops
///                 reading the stdin stream; the server keeps serving
///                 other sessions)
///   stop         (ends this session AND stops the server: no new TCP
///                 connections are accepted and the front end drains —
///                 Serve() returns once every active connection has
///                 closed. In stdin mode the single session is the
///                 server, so quit and stop both terminate the process;
///                 stop additionally reports the server-stop intent to
///                 the caller, which logs it.)
///
/// The same port also speaks a length-prefixed binary protocol (see
/// service/wire.h and docs/WIRE_PROTOCOL.md): the first byte of a
/// connection selects the protocol — wire::kMagic's low byte is not
/// printable ASCII, so the two framings cannot collide.
struct RequestLine {
  std::string command;
  std::map<std::string, std::string> args;
};

RequestLine ParseRequestLine(const std::string& line);

/// Builds a QueryRequest from a `query` line; unset keys keep the same
/// defaults as `fairbc_cli enum`. Numeric arguments are strictly
/// validated: alpha/beta/delta/top_k must be integers in [0, 1e9] (a
/// negative value must NOT wrap to a huge unsigned), theta must be in
/// [0, 1], budget must be >= 0 and threads in [0, 1024]; rid must pass
/// ValidRequestId. The `stream` key is transport-level and read by the
/// caller, not stored in the QueryRequest.
Result<QueryRequest> BuildQueryRequest(const RequestLine& req);

/// Prefixes `"session":id` into a `{...}` response object (identity on
/// anything that is not an object). Every per-session response emitter —
/// ServerSession and the reactor's async query completions — goes
/// through this one function so the tag format cannot drift.
std::string TagSessionJson(std::uint64_t id, std::string json);

/// One server session: shares the catalog/executor (and therefore the
/// result cache and single-flight table) with every other session; owns
/// nothing but its id.
class ServerSession {
 public:
  ServerSession(GraphCatalog& catalog, QueryExecutor& executor,
                std::uint64_t id);

  /// Handles one request line. Returns false when the session ends
  /// (quit/stop); `stop_server` is latched by `stop`.
  bool Handle(const std::string& line, std::string* response,
              bool* stop_server);

  std::uint64_t id() const { return id_; }

 private:
  std::string Dispatch(const RequestLine& req);
  std::string Load(const RequestLine& req);
  std::string Gen(const RequestLine& req);
  std::string Save(const RequestLine& req);
  std::string Drop(const RequestLine& req);
  std::string Catalog();
  std::string Cache(const RequestLine& req);
  std::string Query(const RequestLine& req);
  std::string Sweep(const RequestLine& req);
  std::string Metrics();
  std::string Trace(const RequestLine& req);
  std::string EntryReply(const std::string& cmd, const std::string& name);
  std::string Tag(std::string json) const;

  GraphCatalog& catalog_;
  QueryExecutor& executor_;
  const std::uint64_t id_;
};

/// Default cap on one request (a line, or a binary frame payload): large
/// enough for any real sweep grid, small enough that a buggy or hostile
/// client cannot drive unbounded allocation.
inline constexpr std::size_t kDefaultMaxRequestBytes = 1 << 20;

/// Serves one already-open line stream (the stdin/stdout mode). Returns
/// true when the session ended via `stop` (server shutdown requested),
/// false on `quit` or end of stream. Lines longer than
/// `max_request_bytes` get a typed "too_large" error and are not
/// dispatched (the stream keeps going — stdin is a trusted local pipe,
/// unlike a TCP peer, whose connection is closed instead).
bool ServeStream(std::istream& in, std::ostream& out, ServerSession& session,
                 std::size_t max_request_bytes = kDefaultMaxRequestBytes);

struct TcpServerOptions {
  /// Port to bind on 127.0.0.1; 0 picks an ephemeral port (see port()).
  int port = 0;
  /// Connections served concurrently; further clients are turned away
  /// with a "server full" error response. Must be >= 1.
  unsigned max_sessions = 8;
  /// Reactor (event-loop) threads multiplexing all connections;
  /// 0 = min(4, hardware threads).
  unsigned reactor_threads = 0;
  /// Global bound on admitted-but-uncompleted query requests (leaders
  /// AND coalesced duplicates, across all connections). Requests beyond
  /// it get a typed "busy" error instead of queueing unboundedly.
  /// 0 = unlimited.
  unsigned max_inflight = 256;
  /// Per-request size cap: a line longer than this, or a binary frame
  /// whose header announces a larger payload, draws a typed "too_large"
  /// error and the connection is closed (a length-prefixed stream cannot
  /// be resynchronized past a rejected frame).
  std::size_t max_request_bytes = kDefaultMaxRequestBytes;
  /// Idle deadline: a connection with no traffic and no pending
  /// responses for this long is closed. 0 = never (the default — idle
  /// monitoring connections are legitimate).
  int client_deadline_ms = 0;
};

class Reactor;

/// Event-driven TCP front end: a small fixed pool of reactor threads
/// (epoll, level-triggered) multiplexes every client connection over
/// non-blocking sockets. Each accepted connection is pinned to one
/// reactor, which owns all its state — read/write buffers, protocol
/// (line vs. binary, negotiated on the first byte), and the ordered
/// response queue that implements pipelining: clients may send many
/// requests without reading; responses are delivered strictly in request
/// order per connection.
///
/// Queries never run on a reactor thread: they are admitted through
/// QueryExecutor::ExecuteAsync (or ExecuteStreaming for `stream=1` /
/// stream-flagged kQuery frames, whose chunks hop back the same way and
/// flush progressively once their response slot reaches the front of the
/// per-connection queue) against the global in-flight bound, and
/// their completions hop back to the owning reactor over a cross-thread
/// op queue (eventfd wakeup). Catalog mutations and other commands are
/// cheap and dispatch inline. No reactor thread and no executor runner
/// ever parks waiting on another query (see QueryExecutor's
/// completion-list single-flight).
///
/// Shutdown: `stop` (from any session) or RequestStop() stops the accept
/// loop race-free (shutdown(2) on the listener wakes a blocked accept)
/// and Serve() then drains — every reactor keeps serving its live
/// connections until they close, then exits — before returning.
class TcpServer {
 public:
  TcpServer(GraphCatalog& catalog, QueryExecutor& executor,
            const TcpServerOptions& options);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds and listens on 127.0.0.1:options.port and starts the reactor
  /// threads. Must be called (and have succeeded) before Serve().
  Status Listen();

  /// The bound port (resolves options.port == 0 to the ephemeral pick).
  int port() const { return port_; }

  /// Blocking accept loop; returns after a stop request has been seen,
  /// every connection has closed, every reactor thread has been joined,
  /// and every outstanding async query completion has landed.
  void Serve();

  /// Stops accepting new connections, wakes a blocked accept and tells
  /// the reactors to drain. Safe from any thread (sessions call it when
  /// they see `stop`).
  void RequestStop();

  /// Sessions (connections) ever admitted (telemetry/test aid).
  std::uint64_t sessions_started() const {
    return sessions_started_.load(std::memory_order_relaxed);
  }

 private:
  friend class Reactor;

  /// fairbc_server_errors_total{code="..."} series for one typed error
  /// category (wire::ToString name). Registration is idempotent, so the
  /// lazy per-error call is just a registry lookup after the first.
  Counter* ErrorCounter(const char* code);

  GraphCatalog& catalog_;
  QueryExecutor& executor_;
  const TcpServerOptions options_;
  /// Reactor/front-end counters, registered against the executor's
  /// registry so the `metrics` command and --metrics-port scrape cover
  /// the whole process.
  MetricsRegistry* metrics_;
  Counter* accepts_;    ///< connections accepted (admitted or not).
  Counter* reads_;      ///< successful recv() calls across reactors.
  Counter* writes_;     ///< successful send() calls across reactors.
  Counter* flushes_;    ///< Flush() passes that fully drained a wbuf.
  Counter* server_full_;  ///< connections turned away at max_sessions.
  Counter* sessions_metric_;  ///< sessions admitted (mirrors counter).
  Gauge* conns_gauge_;  ///< live connections (mirrors active_conns_).
  Gauge* inflight_gauge_;  ///< admitted query requests (mirrors inflight_).
  int listener_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> next_session_id_{1};
  std::atomic<std::uint64_t> sessions_started_{0};
  /// Live connections across all reactors (admission vs. max_sessions).
  std::atomic<unsigned> active_conns_{0};
  /// Admitted-but-uncompleted async query requests (admission vs.
  /// max_inflight, and the Serve() epilogue's completion drain).
  std::atomic<unsigned> inflight_{0};
  std::vector<std::unique_ptr<Reactor>> reactors_;
};

}  // namespace fairbc

#endif  // FAIRBC_SERVICE_SERVER_H_
