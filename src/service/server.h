#ifndef FAIRBC_SERVICE_SERVER_H_
#define FAIRBC_SERVICE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "service/graph_catalog.h"
#include "service/query.h"
#include "service/query_executor.h"

namespace fairbc {

/// Line protocol of fairbc_server, shared by the stdin/stdout mode, the
/// TCP mode and the in-process tests. One request per line, `command
/// key=value ...`; one JSON object per response line (every response
/// carries the serving session's id as `"session":N`). Blank lines and
/// `#` comments are ignored. Malformed requests — including unparsable
/// or out-of-range numeric arguments — get {"ok":false,"error":...}; the
/// server never exits on bad input.
///
///   ping
///   load name=G path=FILE [format=snapshot|mmap|attr|edges]
///   gen name=G [kind=uniform|powerlaw|affiliation] [nu=N] [nv=N]
///       [edges=M] [attrs=K] [seed=S] [communities=C]
///   save name=G path=FILE
///   catalog
///   query graph=G [model=ssfbc|bsfbc] [algo=pp|bcem|naive] [alpha=A]
///         [beta=B] [delta=D] [theta=T] [ordering=deg|id]
///         [pruning=colorful|core|none] [budget=SECONDS] [threads=N]
///         [cache=0|1]
///   sweep graph=G alphas=2,3 betas=2,3 deltas=1,2 [query keys...]
///   cache        (cache + single-flight telemetry)
///   drop name=G
///   quit         (ends THIS session: closes the TCP connection / stops
///                 reading the stdin stream; the server keeps serving
///                 other sessions)
///   stop         (ends this session AND stops the server: no new TCP
///                 connections are accepted and the accept loop drains —
///                 it returns once every active session has ended. In
///                 stdin mode the single session is the server, so quit
///                 and stop both terminate the process; stop additionally
///                 reports the server-stop intent to the caller, which
///                 logs it.)
struct RequestLine {
  std::string command;
  std::map<std::string, std::string> args;
};

RequestLine ParseRequestLine(const std::string& line);

/// Builds a QueryRequest from a `query` line; unset keys keep the same
/// defaults as `fairbc_cli enum`. Numeric arguments are strictly
/// validated: alpha/beta/delta must be integers in [0, 1e9] (a negative
/// value must NOT wrap to a huge unsigned), theta must be in [0, 1],
/// budget must be >= 0 and threads in [0, 1024].
Result<QueryRequest> BuildQueryRequest(const RequestLine& req);

/// One server session: shares the catalog/executor (and therefore the
/// result cache and single-flight table) with every other session; owns
/// nothing but its id.
class ServerSession {
 public:
  ServerSession(GraphCatalog& catalog, QueryExecutor& executor,
                std::uint64_t id);

  /// Handles one request line. Returns false when the session ends
  /// (quit/stop); `stop_server` is latched by `stop`.
  bool Handle(const std::string& line, std::string* response,
              bool* stop_server);

  std::uint64_t id() const { return id_; }

 private:
  std::string Dispatch(const RequestLine& req);
  std::string Load(const RequestLine& req);
  std::string Gen(const RequestLine& req);
  std::string Save(const RequestLine& req);
  std::string Drop(const RequestLine& req);
  std::string Catalog();
  std::string Query(const RequestLine& req);
  std::string Sweep(const RequestLine& req);
  std::string EntryReply(const std::string& cmd, const std::string& name);
  /// Prefixes `"session":id` into a `{...}` response object.
  std::string Tag(std::string json) const;

  GraphCatalog& catalog_;
  QueryExecutor& executor_;
  const std::uint64_t id_;
};

/// Serves one already-open line stream (the stdin/stdout mode). Returns
/// true when the session ended via `stop` (server shutdown requested),
/// false on `quit` or end of stream.
bool ServeStream(std::istream& in, std::ostream& out, ServerSession& session);

struct TcpServerOptions {
  /// Port to bind on 127.0.0.1; 0 picks an ephemeral port (see port()).
  int port = 0;
  /// Connections served concurrently; further clients are turned away
  /// with a "server full" error response. Must be >= 1.
  unsigned max_sessions = 8;
};

/// Concurrent TCP front end: the accept loop hands each connection to a
/// detached-from-the-acceptor session thread (a SessionRunner running the
/// read/dispatch/write loop over its own ServerSession), bounded by
/// max_sessions. Catalog, executor, result cache and single-flight table
/// are shared across sessions; per-session state is just the id stamped
/// into every response.
///
/// Shutdown: `stop` (from any session) or RequestStop() stops the accept
/// loop race-free (shutdown(2) on the listener wakes a blocked accept)
/// and Serve() then drains — joins every active session thread, letting
/// in-flight sessions finish their streams — before returning.
class TcpServer {
 public:
  TcpServer(GraphCatalog& catalog, QueryExecutor& executor,
            const TcpServerOptions& options);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds and listens on 127.0.0.1:options.port. Must be called (and
  /// have succeeded) before Serve().
  Status Listen();

  /// The bound port (resolves options.port == 0 to the ephemeral pick).
  int port() const { return port_; }

  /// Blocking accept loop; returns after a stop request has been seen
  /// and every session thread has been joined.
  void Serve();

  /// Stops accepting new connections and wakes a blocked accept. Safe
  /// from any thread (sessions call it when they see `stop`).
  void RequestStop();

  /// Sessions ever admitted (telemetry/test aid).
  std::uint64_t sessions_started() const {
    return sessions_started_.load(std::memory_order_relaxed);
  }

 private:
  struct SessionSlot {
    std::thread thread;
    std::atomic<bool> finished{false};
  };

  /// The per-connection session loop (read line, dispatch, write reply).
  void RunSession(int client_fd, std::uint64_t id, SessionSlot* slot);
  /// Joins finished session threads; with `all` set, joins every one
  /// (the drain path — blocks until active sessions end).
  void Reap(bool all);

  GraphCatalog& catalog_;
  QueryExecutor& executor_;
  const TcpServerOptions options_;
  int listener_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> next_session_id_{1};
  std::atomic<std::uint64_t> sessions_started_{0};
  std::mutex sessions_mu_;
  std::list<SessionSlot> sessions_;
};

}  // namespace fairbc

#endif  // FAIRBC_SERVICE_SERVER_H_
