#ifndef FAIRBC_SERVICE_GRAPH_CATALOG_H_
#define FAIRBC_SERVICE_GRAPH_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/bipartite_graph.h"

namespace fairbc {

/// One named, immutable graph snapshot resident in a GraphCatalog.
/// Entries are handed out as shared_ptr<const>, so queries keep the graph
/// alive (and unchanged) even if the catalog replaces or removes the name
/// mid-flight — replacement publishes a *new* entry, it never mutates an
/// old one. This immutability is what lets QueryExecutor run many queries
/// against one entry with no per-read locking.
struct CatalogEntry {
  std::string name;
  /// Content fingerprint (GraphFingerprint): equal versions mean equal
  /// CSR bytes. ResultCache keys embed this, so cached summaries can
  /// never be served for different content under a reused name.
  std::uint64_t version = 0;
  std::string source;  ///< originating path, or "<memory>".
  double load_seconds = 0.0;
  /// Snapshot format version of the source file (1/2 raw, 3 compressed);
  /// 0 when the entry did not come from a snapshot.
  std::uint32_t snapshot_version = 0;
  /// On-disk size of the source file; 0 for in-memory/generated entries.
  std::uint64_t source_bytes = 0;
  BipartiteGraph graph;
};

/// Thread-safe registry of named immutable graphs. The catalog is the
/// unit of preloading for the service front end (`fairbc_server load`)
/// and — per the ROADMAP NUMA note — the natural unit for per-socket
/// placement once workers are pinned.
class GraphCatalog {
 public:
  enum class Format {
    kSnapshot,      ///< binary snapshot (graph/snapshot.h) — the fast path.
    kSnapshotMmap,  ///< snapshot mapped in place (ReadSnapshotView): the
                    ///< entry's graph is a read-only view over the file's
                    ///< pages, so the load allocates nothing and the entry
                    ///< is the natural unit for per-socket page placement.
    kAttr,          ///< %fairbc attributed text format.
    kEdges,         ///< plain `u v` edge list.
  };

  GraphCatalog() = default;
  GraphCatalog(const GraphCatalog&) = delete;
  GraphCatalog& operator=(const GraphCatalog&) = delete;

  /// Registers `graph` under `name`, replacing any existing entry (the
  /// old entry stays valid for in-flight holders). Empty names are
  /// rejected.
  Status AddGraph(const std::string& name, BipartiteGraph graph,
                  const std::string& source = "<memory>");

  /// Loads `path` in `format` and registers it; the entry records the
  /// wall-clock load time (snapshot vs text parse comparisons).
  Status AddFromFile(const std::string& name, const std::string& path,
                     Format format);

  /// The current entry for `name`, or nullptr when absent.
  std::shared_ptr<const CatalogEntry> Get(const std::string& name) const;

  /// Removes `name`; returns whether it existed.
  bool Remove(const std::string& name);

  /// All current entries, ordered by name.
  std::vector<std::shared_ptr<const CatalogEntry>> List() const;

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const CatalogEntry>> entries_;
};

/// Wire-name parser/printer for Format ("snapshot" / "mmap" / "attr" /
/// "edges").
std::optional<GraphCatalog::Format> ParseCatalogFormat(const std::string& name);
const char* ToString(GraphCatalog::Format format);

}  // namespace fairbc

#endif  // FAIRBC_SERVICE_GRAPH_CATALOG_H_
