#include "service/wire.h"

#include <bit>
#include <cmath>
#include <cstring>

namespace fairbc {
namespace wire {

namespace {

/// Same window as the line protocol's BuildQueryRequest: far above any
/// meaningful fairness threshold, far below unsigned-wrap territory.
constexpr std::uint32_t kMaxParam = 1'000'000'000;

template <typename T>
void AppendLE(std::string* out, T v) {
  char bytes[sizeof(T)];
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    bytes[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
  out->append(bytes, sizeof(T));
}

template <typename T>
bool ReadLE(std::string_view data, std::size_t* off, T* v) {
  if (data.size() - *off < sizeof(T)) return false;
  T value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    value |= static_cast<T>(static_cast<unsigned char>(data[*off + i]))
             << (8 * i);
  }
  *off += sizeof(T);
  *v = value;
  return true;
}

}  // namespace

bool IsRequestOpcode(Opcode op) {
  switch (op) {
    case Opcode::kPing:
    case Opcode::kCommand:
    case Opcode::kQuery:
      return true;
    default:
      return false;
  }
}

bool IsResponseOpcode(Opcode op) {
  switch (op) {
    case Opcode::kPong:
    case Opcode::kReply:
    case Opcode::kReplyChunk:
    case Opcode::kReplyEnd:
    case Opcode::kError:
      return true;
    default:
      return false;
  }
}

const char* ToString(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest:
      return "bad_request";
    case ErrorCode::kBusy:
      return "busy";
    case ErrorCode::kTooLarge:
      return "too_large";
    case ErrorCode::kNotFound:
      return "not_found";
    case ErrorCode::kInternal:
      return "internal";
    case ErrorCode::kBadFrame:
      return "bad_frame";
    case ErrorCode::kUnsupportedVersion:
      return "unsupported_version";
  }
  return "unknown";
}

void AppendU8(std::string* out, std::uint8_t v) { AppendLE(out, v); }
void AppendU16(std::string* out, std::uint16_t v) { AppendLE(out, v); }
void AppendU32(std::string* out, std::uint32_t v) { AppendLE(out, v); }
void AppendU64(std::string* out, std::uint64_t v) { AppendLE(out, v); }

void AppendF64(std::string* out, double v) {
  AppendLE(out, std::bit_cast<std::uint64_t>(v));
}

void AppendString16(std::string* out, std::string_view s) {
  FAIRBC_CHECK(s.size() <= 0xFFFF);
  AppendU16(out, static_cast<std::uint16_t>(s.size()));
  out->append(s.data(), s.size());
}

bool Reader::ReadU8(std::uint8_t* v) { return ReadLE(data_, &off_, v); }
bool Reader::ReadU16(std::uint16_t* v) { return ReadLE(data_, &off_, v); }
bool Reader::ReadU32(std::uint32_t* v) { return ReadLE(data_, &off_, v); }
bool Reader::ReadU64(std::uint64_t* v) { return ReadLE(data_, &off_, v); }

bool Reader::ReadF64(double* v) {
  std::uint64_t bits = 0;
  if (!ReadLE(data_, &off_, &bits)) return false;
  *v = std::bit_cast<double>(bits);
  return true;
}

bool Reader::ReadString16(std::string* v) {
  std::uint16_t len = 0;
  if (!ReadLE(data_, &off_, &len)) return false;
  if (data_.size() - off_ < len) return false;
  v->assign(data_.data() + off_, len);
  off_ += len;
  return true;
}

void EncodeFrame(const Frame& frame, std::string* out) {
  FAIRBC_CHECK(frame.payload.size() <= 0xFFFFFFFFu);
  AppendU16(out, kMagic);
  AppendU8(out, frame.version);
  AppendU8(out, static_cast<std::uint8_t>(frame.opcode));
  AppendU64(out, frame.request_id);
  AppendU32(out, static_cast<std::uint32_t>(frame.payload.size()));
  out->append(frame.payload);
}

DecodeResult DecodeFrame(std::string_view buf, std::size_t max_payload,
                         Frame* out, std::size_t* consumed) {
  *consumed = 0;
  // Reject on the earliest byte that can prove corruption, so a line
  // client (or garbage) is turned away before a full header accumulates.
  if (!buf.empty() && !LooksBinary(static_cast<unsigned char>(buf[0]))) {
    return {FrameStatus::kBad, ErrorCode::kBadFrame, "bad frame magic"};
  }
  if (buf.size() >= 2) {
    std::size_t off = 0;
    std::uint16_t magic = 0;
    ReadLE(buf, &off, &magic);
    if (magic != kMagic) {
      return {FrameStatus::kBad, ErrorCode::kBadFrame, "bad frame magic"};
    }
  }
  if (buf.size() < kHeaderBytes) return {FrameStatus::kNeedMore, {}, {}};

  std::size_t off = 2;
  std::uint8_t version = 0, opcode = 0;
  std::uint64_t request_id = 0;
  std::uint32_t payload_len = 0;
  ReadLE(buf, &off, &version);
  ReadLE(buf, &off, &opcode);
  ReadLE(buf, &off, &request_id);
  ReadLE(buf, &off, &payload_len);
  if (version != kVersion) {
    return {FrameStatus::kBad, ErrorCode::kUnsupportedVersion,
            "unsupported frame version " + std::to_string(version)};
  }
  if (!IsRequestOpcode(static_cast<Opcode>(opcode)) &&
      !IsResponseOpcode(static_cast<Opcode>(opcode))) {
    return {FrameStatus::kBad, ErrorCode::kBadFrame,
            "unknown opcode " + std::to_string(opcode)};
  }
  // The length check precedes any buffering decision: a hostile prefix
  // ("send 4 GiB") is refused from the 16 header bytes alone.
  if (payload_len > max_payload) {
    return {FrameStatus::kBad, ErrorCode::kTooLarge,
            "frame payload of " + std::to_string(payload_len) +
                " bytes exceeds the " + std::to_string(max_payload) +
                "-byte limit"};
  }
  if (buf.size() - kHeaderBytes < payload_len) {
    return {FrameStatus::kNeedMore, {}, {}};
  }
  out->version = version;
  out->opcode = static_cast<Opcode>(opcode);
  out->request_id = request_id;
  out->payload.assign(buf.data() + kHeaderBytes, payload_len);
  *consumed = kHeaderBytes + payload_len;
  return {FrameStatus::kOk, {}, {}};
}

std::string EncodeQueryPayload(const QueryRequest& request, bool stream) {
  std::string out;
  AppendString16(&out, request.graph);
  AppendU8(&out, request.model == FairModel::kSsfbc ? 0 : 1);
  AppendU8(&out, request.algo == FairAlgo::kPlusPlus ? 0
                 : request.algo == FairAlgo::kBcem  ? 1
                                                    : 2);
  AppendU32(&out, request.params.alpha);
  AppendU32(&out, request.params.beta);
  AppendU32(&out, request.params.delta);
  AppendF64(&out, request.params.theta);
  AppendU8(&out, request.options.ordering == VertexOrdering::kDegreeDesc ? 0
                                                                         : 1);
  AppendU8(&out, request.options.pruning == PruningLevel::kColorful ? 0
                 : request.options.pruning == PruningLevel::kCore   ? 1
                                                                    : 2);
  AppendF64(&out, request.options.time_budget_seconds);
  AppendU64(&out, request.options.node_budget);
  AppendU32(&out, request.options.num_threads);
  AppendU8(&out, static_cast<std::uint8_t>((request.use_cache ? 1 : 0) |
                                           (stream ? 2 : 0)));
  // Extension tail (always emitted by this encoder; decoders treat its
  // absence — v1 frames from older clients — as all defaults).
  AppendU32(&out, request.top_k);
  AppendU8(&out, request.rank == TopKRank::kWeight ? 0
                 : request.rank == TopKRank::kSize ? 1
                                                   : 2);
  AppendString16(&out, request.request_id);
  return out;
}

Result<QueryRequest> DecodeQueryPayload(std::string_view payload,
                                        bool* stream) {
  Reader r(payload);
  QueryRequest req;
  std::uint8_t model = 0, algo = 0, ordering = 0, pruning = 0, flags = 0;
  std::uint32_t threads = 0;
  if (stream != nullptr) *stream = false;
  if (!r.ReadString16(&req.graph) || !r.ReadU8(&model) || !r.ReadU8(&algo) ||
      !r.ReadU32(&req.params.alpha) || !r.ReadU32(&req.params.beta) ||
      !r.ReadU32(&req.params.delta) || !r.ReadF64(&req.params.theta) ||
      !r.ReadU8(&ordering) || !r.ReadU8(&pruning) ||
      !r.ReadF64(&req.options.time_budget_seconds) ||
      !r.ReadU64(&req.options.node_budget) || !r.ReadU32(&threads) ||
      !r.ReadU8(&flags)) {
    return Status::InvalidArgument("truncated query payload");
  }
  // Extension tail: end-of-payload here is a legacy frame (defaults);
  // anything else must be the complete tail, strictly consumed.
  std::uint8_t rank = 0;
  if (!r.AtEnd()) {
    if (!r.ReadU32(&req.top_k) || !r.ReadU8(&rank) ||
        !r.ReadString16(&req.request_id)) {
      return Status::InvalidArgument("truncated query payload tail");
    }
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after query payload");
  }
  if (req.graph.empty()) {
    return Status::InvalidArgument("query needs a graph name");
  }
  if (model > 1) return Status::InvalidArgument("bad model byte");
  req.model = model == 0 ? FairModel::kSsfbc : FairModel::kBsfbc;
  if (algo > 2) return Status::InvalidArgument("bad algo byte");
  req.algo = algo == 0   ? FairAlgo::kPlusPlus
             : algo == 1 ? FairAlgo::kBcem
                         : FairAlgo::kNaive;
  // The exact windows of the line protocol (BuildQueryRequest): the two
  // front doors must accept and reject the same requests.
  if (req.params.alpha > kMaxParam || req.params.beta > kMaxParam ||
      req.params.delta > kMaxParam) {
    return Status::InvalidArgument("alpha/beta/delta must be in [0, 1e9]");
  }
  if (!std::isfinite(req.params.theta) || req.params.theta < 0.0 ||
      req.params.theta > 1.0) {
    return Status::InvalidArgument("theta must be in [0, 1]");
  }
  if (ordering > 1) return Status::InvalidArgument("bad ordering byte");
  req.options.ordering =
      ordering == 0 ? VertexOrdering::kDegreeDesc : VertexOrdering::kId;
  if (pruning > 2) return Status::InvalidArgument("bad pruning byte");
  req.options.pruning = pruning == 0   ? PruningLevel::kColorful
                        : pruning == 1 ? PruningLevel::kCore
                                       : PruningLevel::kNone;
  if (!std::isfinite(req.options.time_budget_seconds) ||
      req.options.time_budget_seconds < 0.0) {
    return Status::InvalidArgument("budget must be in [0, inf)");
  }
  if (threads > 1024) {
    return Status::InvalidArgument("threads must be in [0, 1024]");
  }
  req.options.num_threads = threads;
  req.use_cache = (flags & 1) != 0;
  if (stream != nullptr) *stream = (flags & 2) != 0;
  if (req.top_k > kMaxParam) {
    return Status::InvalidArgument("top_k must be in [0, 1e9]");
  }
  if (rank > 2) return Status::InvalidArgument("bad rank byte");
  req.rank = rank == 0   ? TopKRank::kWeight
             : rank == 1 ? TopKRank::kSize
                         : TopKRank::kBalance;
  if (!ValidRequestId(req.request_id)) {
    return Status::InvalidArgument(
        "request id must be at most 128 bytes of printable ASCII with no "
        "space, quote or backslash");
  }
  return req;
}

std::string EncodeChunkPayload(std::uint64_t seq, std::uint64_t results_so_far,
                               std::uint64_t nodes_so_far,
                               const std::vector<Biclique>& bicliques) {
  std::string out;
  AppendU64(&out, seq);
  AppendU64(&out, results_so_far);
  AppendU64(&out, nodes_so_far);
  FAIRBC_CHECK(bicliques.size() <= 0xFFFFFFFFu);
  AppendU32(&out, static_cast<std::uint32_t>(bicliques.size()));
  for (const Biclique& b : bicliques) {
    FAIRBC_CHECK(b.upper.size() <= 0xFFFFFFFFu &&
                 b.lower.size() <= 0xFFFFFFFFu);
    AppendU32(&out, static_cast<std::uint32_t>(b.upper.size()));
    for (VertexId v : b.upper) AppendU32(&out, v);
    AppendU32(&out, static_cast<std::uint32_t>(b.lower.size()));
    for (VertexId v : b.lower) AppendU32(&out, v);
  }
  return out;
}

Result<ChunkPayload> DecodeChunkPayload(std::string_view payload) {
  Reader r(payload);
  ChunkPayload chunk;
  std::uint32_t count = 0;
  if (!r.ReadU64(&chunk.seq) || !r.ReadU64(&chunk.results_so_far) ||
      !r.ReadU64(&chunk.nodes_so_far) || !r.ReadU32(&count)) {
    return Status::InvalidArgument("truncated chunk payload");
  }
  // Each biclique needs at least its two u32 size fields, so a hostile
  // count is refused against the remaining bytes before any allocation.
  if (count > r.remaining() / 8) {
    return Status::InvalidArgument("chunk count exceeds payload");
  }
  chunk.bicliques.resize(count);
  for (Biclique& b : chunk.bicliques) {
    std::uint32_t n = 0;
    if (!r.ReadU32(&n) || n > r.remaining() / sizeof(std::uint32_t)) {
      return Status::InvalidArgument("truncated chunk biclique");
    }
    b.upper.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      if (!r.ReadU32(&b.upper[i])) {
        return Status::InvalidArgument("truncated chunk biclique");
      }
    }
    if (!r.ReadU32(&n) || n > r.remaining() / sizeof(std::uint32_t)) {
      return Status::InvalidArgument("truncated chunk biclique");
    }
    b.lower.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      if (!r.ReadU32(&b.lower[i])) {
        return Status::InvalidArgument("truncated chunk biclique");
      }
    }
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after chunk payload");
  }
  return chunk;
}

std::string EncodeErrorPayload(ErrorCode code, std::string_view message) {
  std::string out;
  AppendU16(&out, static_cast<std::uint16_t>(code));
  out.append(message.data(), message.size());
  return out;
}

Status DecodeErrorPayload(std::string_view payload, ErrorCode* code,
                          std::string* message) {
  Reader r(payload);
  std::uint16_t raw = 0;
  if (!r.ReadU16(&raw)) {
    return Status::CorruptInput("error payload shorter than its code");
  }
  *code = static_cast<ErrorCode>(raw);
  message->assign(payload.substr(2));
  return Status::OK();
}

}  // namespace wire
}  // namespace fairbc
