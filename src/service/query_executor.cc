#include "service/query_executor.h"

#include "common/timer.h"

namespace fairbc {

QueryExecutor::QueryExecutor(const GraphCatalog& catalog,
                             const QueryExecutorOptions& options)
    : catalog_(catalog),
      cache_(options.cache_capacity),
      pool_(ResolveNumThreads(options.num_threads)) {}

QueryResult QueryExecutor::Execute(const QueryRequest& request) {
  Timer timer;
  QueryResult out;
  std::shared_ptr<const CatalogEntry> entry = catalog_.Get(request.graph);
  if (entry == nullptr) {
    out.status = Status::NotFound("unknown graph: " + request.graph);
    out.seconds = timer.ElapsedSeconds();
    return out;
  }
  out.graph_version = entry->version;

  const std::string key = CanonicalCacheKey(request, entry->version);
  if (request.use_cache && !request.include_bicliques) {
    if (std::optional<QuerySummary> hit = cache_.Lookup(key)) {
      out.summary = *hit;
      out.cache_hit = true;
      out.seconds = timer.ElapsedSeconds();
      return out;
    }
  }

  DigestAccumulator digest;
  BicliqueSink inner;
  if (request.include_bicliques) {
    inner = [&out](const Biclique& b) {
      out.bicliques.push_back(b);
      return true;
    };
  } else {
    inner = [](const Biclique&) { return true; };
  }
  // The pipeline entry points serialize sink invocation, so the plain
  // accumulator and vector push_back are safe at any num_threads.
  out.summary.stats =
      RunEnumeration(entry->graph, request.model, request.algo, request.params,
                     request.options, digest.Wrap(std::move(inner)));
  digest.FillSummary(&out.summary);

  // Partial runs (deadline/budget tripped) must not poison the cache.
  if (request.use_cache && !out.summary.stats.budget_exhausted) {
    cache_.Insert(key, out.summary);
  }
  out.seconds = timer.ElapsedSeconds();
  return out;
}

std::vector<QueryResult> QueryExecutor::ExecuteBatch(
    const std::vector<QueryRequest>& requests) {
  std::vector<QueryResult> results(requests.size());
  if (requests.empty()) return results;
  std::lock_guard<std::mutex> lock(batch_mu_);
  pool_.ParallelFor(requests.size(), [&](std::uint64_t i, unsigned) {
    results[i] = Execute(requests[i]);
  });
  return results;
}

}  // namespace fairbc
