#include "service/query_executor.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <utility>

#include "core/result_sink.h"
#include "core/search_context.h"

namespace fairbc {

QueryExecutor::QueryExecutor(const GraphCatalog& catalog,
                             const QueryExecutorOptions& options)
    : catalog_(catalog),
      owned_metrics_(options.metrics == nullptr
                         ? std::make_unique<MetricsRegistry>()
                         : nullptr),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : owned_metrics_.get()),
      queries_(metrics_->GetCounter("fairbc_queries_total",
                                    "Queries admitted by the executor.")),
      executions_(metrics_->GetCounter("fairbc_query_executions_total",
                                       "Enumerations actually run.")),
      coalesced_(metrics_->GetCounter(
          "fairbc_query_coalesced_total",
          "Queries served by joining an identical in-flight execution.")),
      failures_(metrics_->GetCounter("fairbc_query_failures_total",
                                     "Queries completed with an error.")),
      slow_retained_(metrics_->GetCounter(
          "fairbc_slow_queries_total",
          "Query traces retained by the slow-query threshold.")),
      async_pending_(metrics_->GetGauge(
          "fairbc_inflight_queries",
          "Async queries admitted but not yet completed.")),
      query_seconds_(metrics_->GetHistogram(
          "fairbc_query_seconds", "Wall clock of executed queries.")),
      phase_construct_(metrics_->GetHistogram(
          "fairbc_query_phase_seconds", "Per-phase query latency.",
          "phase=\"construct\"")),
      phase_color_(metrics_->GetHistogram("fairbc_query_phase_seconds",
                                          "Per-phase query latency.",
                                          "phase=\"color\"")),
      phase_peel_(metrics_->GetHistogram("fairbc_query_phase_seconds",
                                         "Per-phase query latency.",
                                         "phase=\"peel\"")),
      phase_enumerate_(metrics_->GetHistogram("fairbc_query_phase_seconds",
                                              "Per-phase query latency.",
                                              "phase=\"enumerate\"")),
      kernel_calls_(metrics_->GetCounter(
          "fairbc_kernel_calls_total",
          "Intersection-kernel invocations (core/kernels.h).")),
      kernel_steps_(metrics_->GetCounter("fairbc_kernel_steps_total",
                                         "Intersection-kernel work steps.")),
      kernel_merge_(metrics_->GetCounter("fairbc_kernel_dispatch_total",
                                         "Kernel dispatch decisions.",
                                         "kernel=\"merge\"")),
      kernel_gallop_(metrics_->GetCounter("fairbc_kernel_dispatch_total",
                                          "Kernel dispatch decisions.",
                                          "kernel=\"gallop\"")),
      kernel_bitset_(metrics_->GetCounter("fairbc_kernel_dispatch_total",
                                          "Kernel dispatch decisions.",
                                          "kernel=\"bitset\"")),
      streams_(metrics_->GetCounter("fairbc_stream_queries_total",
                                    "Streaming executions admitted.")),
      stream_chunks_(metrics_->GetCounter(
          "fairbc_stream_chunks_total",
          "Stream chunks delivered (all streams and subscribers).")),
      stream_first_result_(metrics_->GetHistogram(
          "fairbc_stream_first_result_seconds",
          "Streaming admission to first delivered chunk.")),
      cache_(options.cache_capacity, metrics_, options.cache_biclique_bytes),
      stream_chunk_results_(options.stream_chunk_results < 1
                                ? 1
                                : options.stream_chunk_results),
      slow_query_ms_(options.slow_query_ms),
      trace_span_capacity_(options.trace_span_capacity),
      trace_ring_(options.trace_ring_capacity),
      slow_query_log_(options.slow_query_log) {
  const unsigned n = ResolveNumThreads(options.num_threads);
  runners_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    runners_.emplace_back([this] { RunnerLoop(); });
  }
}

QueryExecutor::~QueryExecutor() {
  {
    std::lock_guard<std::mutex> lock(runner_mu_);
    runner_stop_ = true;
  }
  runner_cv_.notify_all();
  for (std::thread& t : runners_) t.join();
}

void QueryExecutor::PostToRunner(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(runner_mu_);
    runner_tasks_.push_back(std::move(task));
  }
  runner_cv_.notify_one();
}

void QueryExecutor::RunnerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(runner_mu_);
      runner_cv_.wait(
          lock, [this] { return runner_stop_ || !runner_tasks_.empty(); });
      // Drain-on-stop: queued executions still carry completions someone
      // may be waiting on, so the pool finishes them before exiting.
      if (runner_tasks_.empty()) return;
      task = std::move(runner_tasks_.front());
      runner_tasks_.pop_front();
    }
    task();
  }
}

std::shared_ptr<TraceRecorder> QueryExecutor::MaybeStartTrace() const {
  if (!tracing_enabled()) return nullptr;
  return std::make_shared<TraceRecorder>(trace_span_capacity_);
}

void QueryExecutor::FinalizeTrace(const QueryRequest& request,
                                  std::shared_ptr<TraceRecorder> trace,
                                  QueryResult* out) {
  if (trace == nullptr) return;
  std::ostringstream label;
  label << request.graph << ' ' << ToString(request.model) << '/'
        << ToString(request.algo) << " alpha=" << request.params.alpha
        << " beta=" << request.params.beta
        << " delta=" << request.params.delta;
  // A client correlation id rides into the retained trace, so a slow
  // streamed query found via `trace` can be matched to the client log.
  if (!request.request_id.empty()) label << " rid=" << request.request_id;
  trace->set_label(label.str());
  trace->set_wall_seconds(out->seconds);
  out->trace = trace;
  if (out->seconds * 1e3 >= slow_query_ms_) {
    trace_ring_.Push(trace);
    slow_retained_->Increment();
    if (slow_query_log_) slow_query_log_(request, *out);
  }
}

void QueryExecutor::RunQuery(const QueryRequest& request,
                             const BipartiteGraph& graph, QueryResult* out,
                             TraceRecorder* trace, const ChunkCallback* emit) {
  std::function<void(const QueryRequest&)> hook;
  {
    std::lock_guard<std::mutex> lock(hook_mu_);
    hook = execute_hook_;
  }
  if (hook) hook(request);
  TraceSpan span(trace, "execute");
  Timer run_timer;
  DigestAccumulator digest;
  EnumOptions options = request.options;
  options.trace = trace;
  // Executor-owned budget when streaming: chunk checkpoints read the node
  // count mid-run, which the engines' internal budget would keep private.
  SearchBudget budget(options);
  if (emit != nullptr) options.shared_budget = &budget;

  // Streamed chunks flow through a bounded ChunkSink. Its guaranteed
  // empty-run flush is skipped here — the end-of-stream marker emitted
  // below carries the totals (and the `final` flag) either way.
  std::uint64_t seq = 0;
  double stream_start_us = -1.0;
  std::optional<ChunkSink> chunker;
  if (emit != nullptr) {
    chunker.emplace(
        stream_chunk_results_,
        [&](std::vector<Biclique>&& bicliques,
            const StreamCheckpoint& checkpoint) {
          if (bicliques.empty()) return true;
          StreamChunk chunk;
          chunk.seq = ++seq;
          chunk.bicliques = std::move(bicliques);
          chunk.results_so_far = checkpoint.results;
          chunk.nodes_so_far = checkpoint.nodes;
          (*emit)(chunk);
          return true;
        },
        &budget);
  }

  // Terminal stage the per-result digest wrapper forwards into: streamed
  // chunks, batch collection, or nothing (summary-only).
  BicliqueSink terminal;
  if (chunker) {
    terminal = chunker->AsSink();
  } else if (request.include_bicliques) {
    terminal = [out](const Biclique& b) {
      out->bicliques.push_back(b);
      return true;
    };
  } else {
    terminal = [](const Biclique&) { return true; };
  }

  // The pipeline entry points serialize sink invocation, so the plain
  // accumulator, vector push_back and chunk buffer are safe at any
  // num_threads.
  if (request.top_k > 0) {
    // Top-k interposes between the engines and the terminal stage: the
    // keeper absorbs the full emission (publishing the k-th best into the
    // engines' prune bound as it fills), then the final ranking replays
    // through digest + terminal so the summary — and any stream — describe
    // exactly the kept set, best first.
    TopKSink topk(request.top_k, request.rank);
    options.topk = topk.prune_bound();
    out->summary.stats =
        RunEnumeration(graph, request.model, request.algo, request.params,
                       options, topk.AsSink());
    topk.Finish();
    std::vector<Biclique> best = topk.Take();
    BicliqueSink wrapped = digest.Wrap(std::move(terminal));
    for (const Biclique& b : best) {
      if (!wrapped(b)) break;
    }
    out->summary.stats.num_results = best.size();
  } else {
    out->summary.stats =
        RunEnumeration(graph, request.model, request.algo, request.params,
                       options, digest.Wrap(std::move(terminal)));
  }
  digest.FillSummary(&out->summary);
  if (chunker) {
    // The "stream" span covers the post-enumeration delivery tail (final
    // chunk flush + end-of-stream marker): mid-run chunk flushes happen
    // inside the enumerate span, and Chrome trace complete events on one
    // thread must nest — a first-flush-to-last span would straddle
    // enumerate's boundary. First-chunk latency lives in the
    // fairbc_stream_first_result_seconds histogram instead.
    if (trace != nullptr) stream_start_us = trace->NowMicros();
    chunker->Finish();
    StreamChunk end;
    end.seq = ++seq;
    end.results_so_far = digest.count();
    end.nodes_so_far = budget.nodes();
    end.final = true;
    (*emit)(end);
    if (trace != nullptr) {
      trace->Record("stream", stream_start_us,
                    trace->NowMicros() - stream_start_us);
    }
  }
  out->effective_threads = ResolveNumThreads(request.options.num_threads);
  span.End();

  const EnumStats& stats = out->summary.stats;
  executions_->Increment();
  query_seconds_->Observe(run_timer.ElapsedSeconds());
  if (stats.prune_construct_seconds > 0) {
    phase_construct_->Observe(stats.prune_construct_seconds);
  }
  if (stats.prune_color_seconds > 0) {
    phase_color_->Observe(stats.prune_color_seconds);
  }
  if (stats.prune_peel_seconds > 0) {
    phase_peel_->Observe(stats.prune_peel_seconds);
  }
  phase_enumerate_->Observe(stats.enum_seconds);
  kernel_calls_->Increment(stats.kernels.calls);
  kernel_steps_->Increment(stats.kernels.steps);
  kernel_merge_->Increment(stats.kernels.merge);
  kernel_gallop_->Increment(stats.kernels.gallop);
  kernel_bitset_->Increment(stats.kernels.bitset);
}

void QueryExecutor::FinishLeader(const std::string& key,
                                 const std::shared_ptr<InFlight>& slot,
                                 const QuerySummary& summary, bool complete) {
  // Take the completion list and retire the slot atomically with the
  // cache insert: between these, no duplicate can either miss the cache
  // or register on a dead slot.
  std::vector<InFlight::Waiter> waiters;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    if (complete) cache_.Insert(key, summary);
    waiters = std::move(slot->waiters);
    slot->waiters.clear();
    inflight_.erase(key);
  }
  {
    std::lock_guard<std::mutex> lk(slot->mu);
    slot->done = true;
    slot->shareable = complete;
    slot->summary = summary;
  }
  slot->cv.notify_all();
  for (InFlight::Waiter& w : waiters) {
    async_pending_->Decrement();
    if (complete) {
      QueryResult adopted;
      adopted.summary = summary;
      adopted.coalesced = true;
      adopted.graph_version = w.graph_version;
      adopted.seconds = w.timer.ElapsedSeconds();
      coalesced_->Increment();
      w.done(std::move(adopted));
    } else {
      // Partial leader run (deadline/budget tripped): never adopted.
      // Re-admission usually elects the first waiter as the new leader
      // and stacks the rest behind it again.
      ExecuteAsync(w.request, std::move(w.done));
    }
  }
}

QueryResult QueryExecutor::Execute(const QueryRequest& request) {
  Timer timer;
  queries_->Increment();
  QueryResult out;
  std::shared_ptr<const CatalogEntry> entry = catalog_.Get(request.graph);
  if (entry == nullptr) {
    out.status = Status::NotFound("unknown graph: " + request.graph);
    out.seconds = timer.ElapsedSeconds();
    failures_->Increment();
    return out;
  }
  out.graph_version = entry->version;

  std::shared_ptr<TraceRecorder> trace = MaybeStartTrace();
  TraceSpan root_span(trace.get(), "query");
  TraceSpan admission_span(trace.get(), "admission");

  const std::string key = CanonicalCacheKey(request, entry->version);
  // Only summary-only cacheable queries can share results — with someone
  // already in flight (single-flight) or with the cache.
  const bool shareable = request.use_cache && !request.include_bicliques;
  // Budgeted queries never *wait* on a leader: the cache key excludes
  // budgets, so an identical-key leader may take arbitrarily longer than
  // this query's own deadline allows. They still lead (and publish) when
  // first, and still take cache hits — they just run themselves instead
  // of blocking behind someone else's run.
  const bool may_wait = request.options.time_budget_seconds == 0.0 &&
                        request.options.node_budget == 0;

  // Biclique-collecting queries can still skip the engines when the cache
  // retained the result payload under its byte budget (they stay outside
  // single-flight — a summary-only leader has no bicliques to share).
  if (request.use_cache && request.include_bicliques) {
    ResultCache::Payload payload;
    std::optional<QuerySummary> cached;
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      cached = cache_.Lookup(key, &payload);
    }
    if (cached && payload != nullptr) {
      out.summary = *cached;
      out.bicliques = *payload;
      out.cache_hit = true;
      out.seconds = timer.ElapsedSeconds();
      return out;
    }
  }

  for (;;) {
    std::shared_ptr<InFlight> slot;
    bool leader = true;
    if (shareable) {
      // Admission is atomic: cache lookup and in-flight join/lead happen
      // under one lock, and a leader publishes (cache insert + slot
      // retire) under the same lock — so between a miss here and our slot
      // insertion no other execution can slip through, and each key has
      // exactly one execution per cache-miss epoch (among queries allowed
      // to wait).
      std::lock_guard<std::mutex> lock(inflight_mu_);
      if (std::optional<QuerySummary> hit = cache_.Lookup(key)) {
        out.summary = *hit;
        out.cache_hit = true;
        out.seconds = timer.ElapsedSeconds();
        return out;  // trace discarded: nothing ran.
      }
      auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        if (may_wait) {
          slot = it->second;
          leader = false;
        }
        // else: run unshared below — slot stays null, nothing to retire.
      } else {
        slot = std::make_shared<InFlight>();
        inflight_[key] = slot;
      }
    }

    if (!leader) {
      // Synchronous join: this parks the CALLER's thread (CLI, tests) —
      // the server reactors and the runner pool always go through
      // ExecuteAsync, whose duplicates register a completion instead.
      std::unique_lock<std::mutex> lk(slot->mu);
      slot->cv.wait(lk, [&] { return slot->done; });
      if (!slot->shareable) continue;  // partial leader run; run ourselves.
      out.summary = slot->summary;
      out.coalesced = true;
      coalesced_->Increment();
      out.seconds = timer.ElapsedSeconds();
      return out;
    }

    admission_span.End();
    RunQuery(request, entry->graph, &out, trace.get());

    // Partial runs (deadline/budget tripped) must not poison the cache —
    // and must not be adopted by waiters, whose own budgets may differ.
    const bool complete = !out.summary.stats.budget_exhausted;
    TraceSpan publish_span(trace.get(), "publish");
    if (slot != nullptr) {
      FinishLeader(key, slot, out.summary, complete);
    } else if (request.use_cache && complete) {
      // Unshared runs (biclique-collecting, or budgeted queries that
      // declined to wait on someone else's slot) still publish their
      // summary for later summary-only queries; collecting runs attach
      // the result payload so repeats can skip the engines entirely.
      ResultCache::Payload payload;
      if (request.include_bicliques) {
        payload = std::make_shared<const std::vector<Biclique>>(out.bicliques);
      }
      cache_.Insert(key, out.summary, std::move(payload));
    }
    publish_span.End();
    root_span.End();
    out.seconds = timer.ElapsedSeconds();
    FinalizeTrace(request, std::move(trace), &out);
    return out;
  }
}

void QueryExecutor::ExecuteAsync(const QueryRequest& request, Completion done) {
  Timer timer;
  queries_->Increment();
  std::shared_ptr<const CatalogEntry> entry = catalog_.Get(request.graph);
  if (entry == nullptr) {
    QueryResult out;
    out.status = Status::NotFound("unknown graph: " + request.graph);
    out.seconds = timer.ElapsedSeconds();
    failures_->Increment();
    done(std::move(out));
    return;
  }

  std::shared_ptr<TraceRecorder> trace = MaybeStartTrace();
  TraceSpan root_span(trace.get(), "query");
  TraceSpan admission_span(trace.get(), "admission");

  const std::string key = CanonicalCacheKey(request, entry->version);
  const bool shareable = request.use_cache && !request.include_bicliques;
  const bool may_wait = request.options.time_budget_seconds == 0.0 &&
                        request.options.node_budget == 0;

  // Async mirror of Execute's payload fast path for collecting queries.
  if (request.use_cache && request.include_bicliques) {
    ResultCache::Payload payload;
    std::optional<QuerySummary> cached;
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      cached = cache_.Lookup(key, &payload);
    }
    if (cached && payload != nullptr) {
      QueryResult out;
      out.summary = *cached;
      out.bicliques = *payload;
      out.cache_hit = true;
      out.graph_version = entry->version;
      out.seconds = timer.ElapsedSeconds();
      done(std::move(out));
      return;
    }
  }

  std::shared_ptr<InFlight> slot;
  if (shareable) {
    std::optional<QueryResult> hit;
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      if (std::optional<QuerySummary> cached = cache_.Lookup(key)) {
        QueryResult out;
        out.summary = *cached;
        out.cache_hit = true;
        out.graph_version = entry->version;
        out.seconds = timer.ElapsedSeconds();
        hit = std::move(out);
      } else {
        auto it = inflight_.find(key);
        if (it != inflight_.end()) {
          if (may_wait) {
            // The whole point of completion-list single-flight: the
            // duplicate costs one vector slot, not one parked thread.
            async_pending_->Increment();
            it->second->waiters.push_back(
                {request, std::move(done), timer, entry->version});
            return;  // trace discarded: the leader's run is the story.
          }
          // Budgeted duplicate: run unshared (slot stays null).
        } else {
          slot = std::make_shared<InFlight>();
          inflight_[key] = slot;
        }
      }
    }
    if (hit) {
      done(std::move(*hit));  // invoked outside the admission lock.
      return;
    }
  }

  admission_span.End();
  async_pending_->Increment();
  const double queued_start_us = trace != nullptr ? trace->NowMicros() : 0.0;
  // std::function demands a copyable target, so the move-only root span
  // rides in a shared_ptr (the task is only ever invoked once).
  auto moved_root =
      std::make_shared<TraceSpan>(std::move(root_span));
  PostToRunner([this, request, done = std::move(done), entry = std::move(entry),
                key, slot, timer, trace = std::move(trace),
                root_span = std::move(moved_root), queued_start_us]() mutable {
    if (trace != nullptr) {
      trace->Record("queued", queued_start_us,
                    trace->NowMicros() - queued_start_us);
    }
    QueryResult out;
    out.graph_version = entry->version;
    RunQuery(request, entry->graph, &out, trace.get());
    const bool complete = !out.summary.stats.budget_exhausted;
    TraceSpan publish_span(trace.get(), "publish");
    if (slot != nullptr) {
      FinishLeader(key, slot, out.summary, complete);
    } else if (request.use_cache && complete) {
      ResultCache::Payload payload;
      if (request.include_bicliques) {
        payload = std::make_shared<const std::vector<Biclique>>(out.bicliques);
      }
      cache_.Insert(key, out.summary, std::move(payload));
    }
    publish_span.End();
    root_span->End();
    out.seconds = timer.ElapsedSeconds();
    FinalizeTrace(request, std::move(trace), &out);
    async_pending_->Decrement();
    done(std::move(out));
  });
}

void QueryExecutor::FinishStreamLeader(
    const std::string& key, const std::shared_ptr<StreamFlight>& flight,
    const QueryResult& out, bool complete) {
  // Cache insert and flight retirement are atomic with the in-flight
  // table, mirroring FinishLeader: between them no duplicate can either
  // miss the cache payload or attach to a dead flight. Lock order is
  // inflight_mu_ -> flight->mu; no path acquires them in reverse.
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    if (complete) {
      auto payload = std::make_shared<std::vector<Biclique>>();
      {
        std::lock_guard<std::mutex> lk(flight->mu);
        payload->reserve(static_cast<std::size_t>(out.summary.count));
        for (const StreamChunk& c : flight->backlog) {
          payload->insert(payload->end(), c.bicliques.begin(),
                          c.bicliques.end());
        }
      }
      cache_.Insert(key, out.summary, std::move(payload));
    }
    stream_inflight_.erase(key);
  }
  std::vector<StreamFlight::Subscriber> subs;
  {
    std::lock_guard<std::mutex> lk(flight->mu);
    flight->done = true;
    flight->final_result.status = out.status;
    flight->final_result.summary = out.summary;
    subs = std::move(flight->subscribers);
    flight->subscribers.clear();
  }
  for (StreamFlight::Subscriber& sub : subs) {
    QueryResult adopted;
    adopted.status = out.status;
    adopted.summary = out.summary;
    adopted.coalesced = true;
    adopted.graph_version = out.graph_version;
    adopted.seconds = sub.timer.ElapsedSeconds();
    coalesced_->Increment();
    async_pending_->Decrement();
    sub.done(std::move(adopted));
  }
}

void QueryExecutor::ExecuteStreaming(const QueryRequest& request,
                                     ChunkCallback on_chunk, Completion done) {
  Timer timer;
  queries_->Increment();
  streams_->Increment();
  std::shared_ptr<const CatalogEntry> entry = catalog_.Get(request.graph);
  if (entry == nullptr) {
    QueryResult out;
    out.status = Status::NotFound("unknown graph: " + request.graph);
    out.seconds = timer.ElapsedSeconds();
    failures_->Increment();
    done(std::move(out));
    return;
  }

  std::shared_ptr<TraceRecorder> trace = MaybeStartTrace();
  TraceSpan root_span(trace.get(), "query");
  TraceSpan admission_span(trace.get(), "admission");

  const std::string key = CanonicalCacheKey(request, entry->version);
  // Streams share like summary queries do: attaching (or leading a
  // shareable flight) requires an unbudgeted cacheable request — partial
  // streams are never shared or cached.
  const bool shareable = request.use_cache &&
                         request.options.time_budget_seconds == 0.0 &&
                         request.options.node_budget == 0;

  std::shared_ptr<StreamFlight> flight;
  bool leader = true;
  if (request.use_cache) {
    ResultCache::Payload payload;
    std::optional<QuerySummary> cached;
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      cached = cache_.Lookup(key, &payload);
      if (!(cached && payload != nullptr) && shareable) {
        auto it = stream_inflight_.find(key);
        if (it != stream_inflight_.end()) {
          flight = it->second;
          leader = false;
        } else {
          flight = std::make_shared<StreamFlight>();
          stream_inflight_[key] = flight;
        }
      }
    }
    if (cached && payload != nullptr) {
      // Retained payload: the whole stream replays inline from the cache
      // (cache_hit), chunked exactly like a live run would have been.
      QueryResult out;
      out.summary = *cached;
      out.cache_hit = true;
      out.graph_version = entry->version;
      std::uint64_t seq = 0;
      std::size_t i = 0;
      bool first = true;
      while (i < payload->size()) {
        const std::size_t n =
            std::min(stream_chunk_results_, payload->size() - i);
        StreamChunk chunk;
        chunk.seq = ++seq;
        chunk.bicliques.assign(payload->begin() + static_cast<std::ptrdiff_t>(i),
                               payload->begin() +
                                   static_cast<std::ptrdiff_t>(i + n));
        i += n;
        chunk.results_so_far = i;
        if (first) {
          stream_first_result_->Observe(timer.ElapsedSeconds());
          first = false;
        }
        stream_chunks_->Increment();
        on_chunk(chunk);
      }
      StreamChunk end;
      end.seq = ++seq;
      end.results_so_far = payload->size();
      end.final = true;
      if (first) stream_first_result_->Observe(timer.ElapsedSeconds());
      stream_chunks_->Increment();
      on_chunk(end);
      out.seconds = timer.ElapsedSeconds();
      done(std::move(out));
      return;
    }
  }

  if (!leader) {
    // Attach to the in-flight stream. The backlog replays inline under
    // the flight mutex — the leader delivers under the same mutex, so the
    // subscriber sees every chunk exactly once, in order. If the leader
    // already finished (retired from the map but done flipped after our
    // lookup), the backlog is complete and the final summary is ready.
    async_pending_->Increment();
    bool first = true;
    std::lock_guard<std::mutex> lk(flight->mu);
    for (const StreamChunk& c : flight->backlog) {
      if (first) {
        stream_first_result_->Observe(timer.ElapsedSeconds());
        first = false;
      }
      stream_chunks_->Increment();
      on_chunk(c);
    }
    if (flight->done) {
      QueryResult out = flight->final_result;
      out.coalesced = true;
      out.graph_version = entry->version;
      out.seconds = timer.ElapsedSeconds();
      coalesced_->Increment();
      async_pending_->Decrement();
      done(std::move(out));
    } else {
      flight->subscribers.push_back(
          {std::move(on_chunk), std::move(done), timer});
    }
    return;
  }

  admission_span.End();
  async_pending_->Increment();
  const double queued_start_us = trace != nullptr ? trace->NowMicros() : 0.0;
  auto moved_root = std::make_shared<TraceSpan>(std::move(root_span));
  PostToRunner([this, request, on_chunk = std::move(on_chunk),
                done = std::move(done), entry = std::move(entry), key, flight,
                timer, trace = std::move(trace),
                root_span = std::move(moved_root), queued_start_us]() mutable {
    if (trace != nullptr) {
      trace->Record("queued", queued_start_us,
                    trace->NowMicros() - queued_start_us);
    }
    QueryResult out;
    out.graph_version = entry->version;
    bool first = true;
    ChunkCallback emit = [&](const StreamChunk& chunk) {
      if (first) {
        stream_first_result_->Observe(timer.ElapsedSeconds());
        first = false;
      }
      if (flight != nullptr) {
        // Deliver under the flight mutex: backlog append, own callback
        // and subscriber fan-out stay atomic against late attachers.
        std::lock_guard<std::mutex> lk(flight->mu);
        flight->backlog.push_back(chunk);
        stream_chunks_->Increment();
        on_chunk(chunk);
        for (StreamFlight::Subscriber& sub : flight->subscribers) {
          stream_chunks_->Increment();
          sub.on_chunk(chunk);
        }
      } else {
        stream_chunks_->Increment();
        on_chunk(chunk);
      }
    };
    RunQuery(request, entry->graph, &out, trace.get(), &emit);

    const bool complete = !out.summary.stats.budget_exhausted;
    TraceSpan publish_span(trace.get(), "publish");
    if (flight != nullptr) {
      FinishStreamLeader(key, flight, out, complete);
    } else if (request.use_cache && complete) {
      // Unshared (budgeted) streams kept no backlog — publish the summary
      // alone for later summary-only queries.
      cache_.Insert(key, out.summary);
    }
    publish_span.End();
    root_span->End();
    out.seconds = timer.ElapsedSeconds();
    FinalizeTrace(request, std::move(trace), &out);
    async_pending_->Decrement();
    done(std::move(out));
  });
}

std::vector<QueryResult> QueryExecutor::ExecuteBatch(
    const std::vector<QueryRequest>& requests) {
  std::vector<QueryResult> results(requests.size());
  if (requests.empty()) return results;
  std::mutex mu;
  std::condition_variable cv;
  std::size_t remaining = requests.size();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    QueryRequest request = requests[i];
    // Whole queries are the batch's unit of parallelism; nested per-query
    // pools on top of busy runners would oversubscribe the machine (see
    // the header contract — the result set does not change).
    request.options.num_threads = 1;
    ExecuteAsync(request, [&results, &mu, &cv, &remaining, i](QueryResult r) {
      results[i] = std::move(r);
      // Notify while holding mu: the waiter cannot return from wait (and
      // destroy the stack cv) until it reacquires mu, which orders the
      // destruction after this signal completes.
      std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return remaining == 0; });
  return results;
}

QueryExecutor::Telemetry QueryExecutor::telemetry() const {
  Telemetry t;
  t.cache = cache_.telemetry();
  t.executions = executions_->Value();
  t.coalesced = coalesced_->Value();
  return t;
}

}  // namespace fairbc
