#include "service/query_executor.h"

#include "common/timer.h"

namespace fairbc {

QueryExecutor::QueryExecutor(const GraphCatalog& catalog,
                             const QueryExecutorOptions& options)
    : catalog_(catalog),
      cache_(options.cache_capacity),
      pool_(ResolveNumThreads(options.num_threads)) {}

void QueryExecutor::RunQuery(const QueryRequest& request,
                             const BipartiteGraph& graph, QueryResult* out) {
  DigestAccumulator digest;
  BicliqueSink inner;
  if (request.include_bicliques) {
    inner = [out](const Biclique& b) {
      out->bicliques.push_back(b);
      return true;
    };
  } else {
    inner = [](const Biclique&) { return true; };
  }
  // The pipeline entry points serialize sink invocation, so the plain
  // accumulator and vector push_back are safe at any num_threads.
  out->summary.stats =
      RunEnumeration(graph, request.model, request.algo, request.params,
                     request.options, digest.Wrap(std::move(inner)));
  digest.FillSummary(&out->summary);
  out->effective_threads = ResolveNumThreads(request.options.num_threads);
  executions_.fetch_add(1, std::memory_order_relaxed);
}

QueryResult QueryExecutor::Execute(const QueryRequest& request) {
  Timer timer;
  QueryResult out;
  std::shared_ptr<const CatalogEntry> entry = catalog_.Get(request.graph);
  if (entry == nullptr) {
    out.status = Status::NotFound("unknown graph: " + request.graph);
    out.seconds = timer.ElapsedSeconds();
    return out;
  }
  out.graph_version = entry->version;

  const std::string key = CanonicalCacheKey(request, entry->version);
  // Only summary-only cacheable queries can share results — with someone
  // already in flight (single-flight) or with the cache.
  const bool shareable = request.use_cache && !request.include_bicliques;
  // Budgeted queries never *wait* on a leader: the cache key excludes
  // budgets, so an identical-key leader may take arbitrarily longer than
  // this query's own deadline allows. They still lead (and publish) when
  // first, and still take cache hits — they just run themselves instead
  // of blocking behind someone else's run.
  const bool may_wait = request.options.time_budget_seconds == 0.0 &&
                        request.options.node_budget == 0;

  for (;;) {
    std::shared_ptr<InFlight> slot;
    bool leader = true;
    if (shareable) {
      // Admission is atomic: cache lookup and in-flight join/lead happen
      // under one lock, and a leader publishes (cache insert + slot
      // retire) under the same lock — so between a miss here and our slot
      // insertion no other execution can slip through, and each key has
      // exactly one execution per cache-miss epoch (among queries allowed
      // to wait).
      std::lock_guard<std::mutex> lock(inflight_mu_);
      if (std::optional<QuerySummary> hit = cache_.Lookup(key)) {
        out.summary = *hit;
        out.cache_hit = true;
        out.seconds = timer.ElapsedSeconds();
        return out;
      }
      auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        if (may_wait) {
          slot = it->second;
          leader = false;
        }
        // else: run unshared below — slot stays null, nothing to retire.
      } else {
        slot = std::make_shared<InFlight>();
        inflight_[key] = slot;
      }
    }

    if (!leader) {
      std::unique_lock<std::mutex> lk(slot->mu);
      slot->cv.wait(lk, [&] { return slot->done; });
      if (!slot->shareable) continue;  // partial leader run; run ourselves.
      out.summary = slot->summary;
      out.coalesced = true;
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      out.seconds = timer.ElapsedSeconds();
      return out;
    }

    RunQuery(request, entry->graph, &out);

    // Partial runs (deadline/budget tripped) must not poison the cache —
    // and must not be adopted by waiters, whose own budgets may differ.
    const bool complete = !out.summary.stats.budget_exhausted;
    if (slot != nullptr) {
      // We own the in-flight slot for `key`: publish and retire it.
      {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        if (complete) cache_.Insert(key, out.summary);
        inflight_.erase(key);
      }
      {
        std::lock_guard<std::mutex> lk(slot->mu);
        slot->done = true;
        slot->shareable = complete;
        slot->summary = out.summary;
      }
      slot->cv.notify_all();
    } else if (request.use_cache && complete) {
      // Unshared runs (biclique-collecting, or budgeted queries that
      // declined to wait on someone else's slot) still publish their
      // summary for later summary-only queries.
      cache_.Insert(key, out.summary);
    }
    out.seconds = timer.ElapsedSeconds();
    return out;
  }
}

std::vector<QueryResult> QueryExecutor::ExecuteBatch(
    const std::vector<QueryRequest>& requests) {
  std::vector<QueryResult> results(requests.size());
  if (requests.empty()) return results;
  std::lock_guard<std::mutex> lock(batch_mu_);
  pool_.ParallelFor(requests.size(), [&](std::uint64_t i, unsigned) {
    QueryRequest request = requests[i];
    // Whole queries are the batch's unit of parallelism; nested per-query
    // pools on top of busy batch workers would oversubscribe the machine
    // (see the header contract — the result set does not change).
    request.options.num_threads = 1;
    results[i] = Execute(request);
  });
  return results;
}

QueryExecutor::Telemetry QueryExecutor::telemetry() const {
  Telemetry t;
  t.cache = cache_.telemetry();
  t.executions = executions_.load(std::memory_order_relaxed);
  t.coalesced = coalesced_.load(std::memory_order_relaxed);
  return t;
}

}  // namespace fairbc
