#include "service/server.h"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <istream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "graph/generators.h"
#include "graph/snapshot.h"
#include "service/response_json.h"
#include "service/wire.h"

namespace fairbc {

namespace {

/// alpha/beta/delta (and the sweep lists) live in [0, kMaxParamValue]:
/// far above any meaningful fairness threshold, far below the uint32
/// wrap that `query alpha=-1` used to silently hit.
constexpr std::int64_t kMaxParamValue = 1'000'000'000;

std::string Arg(const RequestLine& req, const std::string& key,
                const std::string& default_value) {
  auto it = req.args.find(key);
  return it == req.args.end() ? default_value : it->second;
}

/// Strict integer argument: absent → default, present-but-unparsable or
/// partially numeric ("3x") → error. Negative values parse fine here and
/// are range-checked by the caller, so "alpha=-1" reports its real value
/// instead of wrapping through an unsigned cast.
Result<std::int64_t> IntArg(const RequestLine& req, const std::string& key,
                            std::int64_t default_value) {
  auto it = req.args.find(key);
  if (it == req.args.end()) return default_value;
  const std::string& text = it->second;
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument(key + " must be an integer, got \"" + text +
                                   "\"");
  }
  return value;
}

/// Strict floating-point argument, same contract as IntArg.
Result<double> DoubleArg(const RequestLine& req, const std::string& key,
                         double default_value) {
  auto it = req.args.find(key);
  if (it == req.args.end()) return default_value;
  const std::string& text = it->second;
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(key);
    return value;
  } catch (...) {
    return Status::InvalidArgument(key + " must be a number, got \"" + text +
                                   "\"");
  }
}

Status RangeError(const std::string& key, const std::string& range) {
  return Status::InvalidArgument(key + " must be in " + range);
}

/// Strict-args check for introspection commands: any key outside `known`
/// is an error. Matches the query-arg hardening — a typo like
/// `trace m=8` must not silently act like a bare `trace`.
Status CheckKnownArgs(const RequestLine& req,
                      std::initializer_list<const char*> known) {
  for (const auto& [key, value] : req.args) {
    bool recognized = false;
    for (const char* k : known) {
      if (key == k) {
        recognized = true;
        break;
      }
    }
    if (!recognized) {
      return Status::InvalidArgument(req.command + " does not take \"" + key +
                                     "\"");
    }
  }
  return Status::OK();
}

}  // namespace

RequestLine ParseRequestLine(const std::string& line) {
  RequestLine req;
  std::istringstream tokens(line);
  tokens >> req.command;
  std::string token;
  while (tokens >> token) {
    auto eq = token.find('=');
    if (eq == std::string::npos) {
      req.args[token] = "1";  // bare key = boolean true, like the CLI.
    } else {
      req.args[token.substr(0, eq)] = token.substr(eq + 1);
    }
  }
  return req;
}

Result<QueryRequest> BuildQueryRequest(const RequestLine& req) {
  QueryRequest query;
  query.graph = Arg(req, "graph", "");
  if (query.graph.empty()) {
    return Status::InvalidArgument("query needs graph=NAME");
  }
  auto model = ParseFairModel(Arg(req, "model", "ssfbc"));
  if (!model) return Status::InvalidArgument("bad model (ssfbc|bsfbc)");
  query.model = *model;
  auto algo = ParseFairAlgo(Arg(req, "algo", "pp"));
  if (!algo) return Status::InvalidArgument("bad algo (pp|bcem|naive)");
  query.algo = *algo;

  for (auto [key, field, default_value] :
       {std::tuple<const char*, std::uint32_t*, std::int64_t>
            {"alpha", &query.params.alpha, 1},
        {"beta", &query.params.beta, 1},
        {"delta", &query.params.delta, 0}}) {
    auto parsed = IntArg(req, key, default_value);
    if (!parsed.ok()) return parsed.status();
    if (parsed.value() < 0 || parsed.value() > kMaxParamValue) {
      return RangeError(key, "[0, 1000000000]");
    }
    *field = static_cast<std::uint32_t>(parsed.value());
  }

  auto theta = DoubleArg(req, "theta", 0.0);
  if (!theta.ok()) return theta.status();
  if (!(theta.value() >= 0.0) || !(theta.value() <= 1.0)) {
    return RangeError("theta", "[0, 1]");
  }
  query.params.theta = theta.value();

  const std::string ordering = Arg(req, "ordering", "deg");
  query.options.ordering = ordering == "id" ? VertexOrdering::kId
                                            : VertexOrdering::kDegreeDesc;
  const std::string pruning = Arg(req, "pruning", "colorful");
  query.options.pruning = pruning == "none"   ? PruningLevel::kNone
                          : pruning == "core" ? PruningLevel::kCore
                                              : PruningLevel::kColorful;

  auto budget = DoubleArg(req, "budget", 0.0);
  if (!budget.ok()) return budget.status();
  if (!(budget.value() >= 0.0)) return RangeError("budget", "[0, inf)");
  query.options.time_budget_seconds = budget.value();

  auto threads = IntArg(req, "threads", 1);
  if (!threads.ok()) return threads.status();
  if (threads.value() < 0 || threads.value() > 1024) {
    return RangeError("threads", "[0, 1024]");
  }
  query.options.num_threads = static_cast<unsigned>(threads.value());

  auto use_cache = IntArg(req, "cache", 1);
  if (!use_cache.ok()) return use_cache.status();
  query.use_cache = use_cache.value() != 0;

  auto top_k = IntArg(req, "top_k", 0);
  if (!top_k.ok()) return top_k.status();
  if (top_k.value() < 0 || top_k.value() > kMaxParamValue) {
    return RangeError("top_k", "[0, 1000000000]");
  }
  query.top_k = static_cast<std::uint32_t>(top_k.value());
  auto rank = ParseTopKRank(Arg(req, "rank", "weight"));
  if (!rank) return Status::InvalidArgument("bad rank (weight|size|balance)");
  query.rank = *rank;

  query.request_id = Arg(req, "rid", "");
  if (!ValidRequestId(query.request_id)) {
    return Status::InvalidArgument(
        "rid must be at most 128 bytes of printable ASCII with no space, "
        "quote or backslash");
  }
  return query;
}

std::string TagSessionJson(std::uint64_t id, std::string json) {
  if (json.empty() || json.front() != '{') return json;
  return "{\"session\":" + std::to_string(id) + "," + json.substr(1);
}

ServerSession::ServerSession(GraphCatalog& catalog, QueryExecutor& executor,
                             std::uint64_t id)
    : catalog_(catalog), executor_(executor), id_(id) {}

std::string ServerSession::Tag(std::string json) const {
  return TagSessionJson(id_, std::move(json));
}

bool ServerSession::Handle(const std::string& line, std::string* response,
                           bool* stop_server) {
  const RequestLine req = ParseRequestLine(line);
  if (req.command.empty() || req.command[0] == '#') {
    response->clear();
    return true;
  }
  if (req.command == "quit") {
    *response = Tag("{\"ok\":true,\"cmd\":\"quit\"}");
    return false;
  }
  if (req.command == "stop") {
    *stop_server = true;
    *response = Tag("{\"ok\":true,\"cmd\":\"stop\"}");
    return false;
  }
  *response = Tag(Dispatch(req));
  return true;
}

std::string ServerSession::Dispatch(const RequestLine& req) {
  if (req.command == "ping") return "{\"ok\":true,\"cmd\":\"ping\"}";
  if (req.command == "load") return Load(req);
  if (req.command == "gen") return Gen(req);
  if (req.command == "save") return Save(req);
  if (req.command == "drop") return Drop(req);
  if (req.command == "catalog") return Catalog();
  if (req.command == "cache") return Cache(req);
  if (req.command == "query") return Query(req);
  if (req.command == "sweep") return Sweep(req);
  if (req.command == "metrics") return Metrics();
  if (req.command == "trace") return Trace(req);
  return ErrorJson("unknown command: " + req.command);
}

std::string ServerSession::Metrics() {
  // The whole exposition rides in one JSON string field: JsonEscape
  // turns the newlines into \n, so the response stays a single line in
  // both protocols. Scrapers unescape (tools/fairbc_metrics_scrape.cc)
  // or use the plain-text --metrics-port listener instead.
  return "{\"ok\":true,\"cmd\":\"metrics\",\"text\":\"" +
         JsonEscape(executor_.metrics()->PrometheusText()) + "\"}";
}

std::string ServerSession::Cache(const RequestLine& req) {
  // `cache` takes no arguments; garbage like `cache n=5` is a typed
  // bad_argument error rather than a silently ignored key.
  Status known = CheckKnownArgs(req, {});
  if (!known.ok()) return TypedErrorJson("bad_argument", known.message());
  return ExecutorTelemetryJson(executor_.telemetry());
}

std::string ServerSession::Trace(const RequestLine& req) {
  // Strict argument validation: `trace n=-1`, `trace n=x` and unknown
  // keys all come back as typed bad_argument errors, matching the query
  // parameter hardening.
  Status known = CheckKnownArgs(req, {"n"});
  if (!known.ok()) return TypedErrorJson("bad_argument", known.message());
  auto n = IntArg(req, "n", 4);
  if (!n.ok()) return TypedErrorJson("bad_argument", n.status().message());
  if (n.value() < 1 || n.value() > 1024) {
    return TypedErrorJson("bad_argument",
                          RangeError("n", "[1, 1024]").message());
  }
  const auto traces =
      executor_.traces().Snapshot(static_cast<std::size_t>(n.value()));
  std::ostringstream os;
  os << "{\"ok\":true,\"cmd\":\"trace\",\"tracing\":"
     << (executor_.tracing_enabled() ? "true" : "false")
     << ",\"slow_query_ms\":" << JsonDouble(executor_.slow_query_ms())
     << ",\"retained\":" << executor_.traces().pushed() << ",\"traces\":[";
  for (std::size_t i = 0; i < traces.size(); ++i) {
    os << (i > 0 ? "," : "") << TraceEventsJson(*traces[i]);
  }
  os << "]}";
  return os.str();
}

std::string ServerSession::Load(const RequestLine& req) {
  const std::string name = Arg(req, "name", "");
  const std::string path = Arg(req, "path", "");
  if (name.empty() || path.empty()) {
    return ErrorJson("load needs name=NAME path=FILE");
  }
  auto format = ParseCatalogFormat(Arg(req, "format", "snapshot"));
  if (!format) return ErrorJson("bad format (snapshot|mmap|attr|edges)");
  Status st = catalog_.AddFromFile(name, path, *format);
  if (!st.ok()) return ErrorJson(st);
  return EntryReply("load", name);
}

std::string ServerSession::Gen(const RequestLine& req) {
  const std::string name = Arg(req, "name", "");
  if (name.empty()) return ErrorJson("gen needs name=NAME");
  const std::string kind = Arg(req, "kind", "affiliation");
  // Validate everything before casting: the generators FAIRBC_CHECK
  // (abort) on bad parameters, and a resident server must never die
  // on a request line.
  auto nu = IntArg(req, "nu", 1000);
  auto nv = IntArg(req, "nv", 1000);
  auto edges = IntArg(req, "edges", 5000);
  auto attrs = IntArg(req, "attrs", 2);
  auto communities = IntArg(req, "communities", 60);
  auto gamma = DoubleArg(req, "gamma", 2.2);
  auto seed = IntArg(req, "seed", 42);
  for (const auto* parsed : {&nu, &nv, &edges, &attrs, &communities, &seed}) {
    if (!parsed->ok()) return ErrorJson(parsed->status());
  }
  if (!gamma.ok()) return ErrorJson(gamma.status());
  if (nu.value() < 1 || nu.value() > 20'000'000 || nv.value() < 1 ||
      nv.value() > 20'000'000) {
    return ErrorJson("nu/nv must be in [1, 2e7]");
  }
  if (edges.value() < 0 || edges.value() > 200'000'000) {
    return ErrorJson("edges must be in [0, 2e8]");
  }
  if (attrs.value() < 1 || attrs.value() > 1024) {
    return ErrorJson("attrs must be in [1, 1024]");
  }
  if (communities.value() < 1 || communities.value() > 1'000'000) {
    return ErrorJson("communities must be in [1, 1e6]");
  }
  if (!(gamma.value() > 1.0) || gamma.value() > 10.0) {
    return ErrorJson("gamma must be in (1, 10]");
  }
  BipartiteGraph g;
  if (kind == "uniform") {
    g = MakeUniformRandom(static_cast<VertexId>(nu.value()),
                          static_cast<VertexId>(nv.value()),
                          static_cast<EdgeIndex>(edges.value()),
                          static_cast<AttrId>(attrs.value()),
                          static_cast<std::uint64_t>(seed.value()));
  } else if (kind == "powerlaw") {
    g = MakePowerLaw(static_cast<VertexId>(nu.value()),
                     static_cast<VertexId>(nv.value()),
                     static_cast<EdgeIndex>(edges.value()), gamma.value(),
                     static_cast<AttrId>(attrs.value()),
                     static_cast<std::uint64_t>(seed.value()));
  } else if (kind == "affiliation") {
    AffiliationConfig config;
    config.num_upper = static_cast<VertexId>(nu.value());
    config.num_lower = static_cast<VertexId>(nv.value());
    config.num_communities = static_cast<std::uint32_t>(communities.value());
    config.num_upper_attrs = static_cast<AttrId>(attrs.value());
    config.num_lower_attrs = static_cast<AttrId>(attrs.value());
    config.seed = static_cast<std::uint64_t>(seed.value());
    g = MakeAffiliation(config);
  } else {
    return ErrorJson("bad kind (uniform|powerlaw|affiliation)");
  }
  Status st = catalog_.AddGraph(name, std::move(g), "<gen:" + kind + ">");
  if (!st.ok()) return ErrorJson(st);
  return EntryReply("gen", name);
}

std::string ServerSession::Save(const RequestLine& req) {
  const std::string name = Arg(req, "name", "");
  const std::string path = Arg(req, "path", "");
  if (name.empty() || path.empty()) {
    return ErrorJson("save needs name=NAME path=FILE");
  }
  auto entry = catalog_.Get(name);
  if (entry == nullptr) return ErrorJson("unknown graph: " + name);
  auto compress = IntArg(req, "compress", 0);
  if (!compress.ok()) return ErrorJson(compress.status());
  auto block = IntArg(req, "block", kDefaultSnapshotBlockEdges);
  if (!block.ok()) return ErrorJson(block.status());
  if (block.value() < 1 || block.value() > 1'000'000'000) {
    return ErrorJson("block must be in [1, 1000000000]");
  }
  SnapshotWriteOptions options;
  options.version = compress.value() != 0 ? kSnapshotVersionCompressed
                                          : kSnapshotVersion;
  options.block_edges = static_cast<std::uint32_t>(block.value());
  Status st = WriteSnapshot(entry->graph, path, options);
  if (!st.ok()) return ErrorJson(st);
  Result<SnapshotInfo> info = ProbeSnapshot(path);
  std::ostringstream os;
  os << "{\"ok\":true,\"cmd\":\"save\",\"name\":\"" << JsonEscape(name)
     << "\",\"path\":\"" << JsonEscape(path) << "\",\"version\":\""
     << JsonHex64(entry->version) << "\",\"snapshot_version\":"
     << options.version;
  if (info.ok()) {
    os << ",\"file_bytes\":" << info.value().file_bytes
       << ",\"uncompressed_bytes\":" << info.value().uncompressed_bytes;
  }
  os << "}";
  return os.str();
}

std::string ServerSession::Drop(const RequestLine& req) {
  const std::string name = Arg(req, "name", "");
  if (name.empty()) return ErrorJson("drop needs name=NAME");
  if (!catalog_.Remove(name)) return ErrorJson("unknown graph: " + name);
  return "{\"ok\":true,\"cmd\":\"drop\",\"name\":\"" + JsonEscape(name) +
         "\"}";
}

std::string ServerSession::Catalog() {
  std::ostringstream os;
  os << "{\"ok\":true,\"cmd\":\"catalog\",\"graphs\":[";
  bool first = true;
  for (const auto& entry : catalog_.List()) {
    if (!first) os << ",";
    first = false;
    os << CatalogEntryJson(*entry);
  }
  os << "]}";
  return os.str();
}

std::string ServerSession::Query(const RequestLine& req) {
  auto built = BuildQueryRequest(req);
  if (!built.ok()) return ErrorJson(built.status());
  const QueryRequest query = std::move(built).value();
  auto stream = IntArg(req, "stream", 0);
  if (!stream.ok()) return ErrorJson(stream.status());
  if (stream.value() == 0) {
    QueryResult result = executor_.Execute(query);
    // The serialize span lands in the already-retained recorder after the
    // root "query" span closed — a sibling tail, not a child.
    TraceSpan serialize_span(result.trace.get(), "serialize");
    return QueryResultJson(query, result);
  }
  // `query ... stream=1` over a synchronous line stream: chunk lines are
  // collected in arrival order and returned ahead of the final reply,
  // one JSON object per line — the same framing the reactor writes
  // progressively on TCP connections. Handle() tags the first returned
  // line, so only the lines after it are tagged here.
  std::mutex mu;
  std::condition_variable cv;
  bool finished = false;
  std::vector<std::string> lines;
  QueryResult result;
  executor_.ExecuteStreaming(
      query,
      [&](const QueryExecutor::StreamChunk& chunk) {
        if (chunk.final) return;  // the reply line is the end marker.
        std::lock_guard<std::mutex> lock(mu);
        lines.push_back(StreamChunkJson(query, chunk));
      },
      [&](QueryResult r) {
        std::lock_guard<std::mutex> lock(mu);
        result = std::move(r);
        finished = true;
        cv.notify_one();
      });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return finished; });
  TraceSpan serialize_span(result.trace.get(), "serialize");
  lines.push_back(QueryResultJson(query, result));
  std::string out = lines.front();
  for (std::size_t i = 1; i < lines.size(); ++i) {
    out += '\n';
    out += Tag(lines[i]);
  }
  return out;
}

// `sweep` expands a parameter grid (comma lists) into one batch and
// admits it onto the executor's runner pool — this is where the server's
// --threads width does concurrent work. Response: one JSON object
// with the per-query results, positionally aligned with the grid in
// alphas-outer / betas / deltas-inner order.
std::string ServerSession::Sweep(const RequestLine& req) {
  RequestLine base = req;
  base.args["alpha"] = "0";
  base.args["beta"] = "0";
  base.args["delta"] = "0";
  auto built = BuildQueryRequest(base);
  if (!built.ok()) return ErrorJson(built.status());
  const QueryRequest prototype = std::move(built).value();

  // Each list value gets the same strict parse + range check as the
  // scalar query parameters: `sweep alphas=-1` must be an error, not a
  // wrapped-to-4294967295 grid point.
  auto list = [&](const std::string& key, const std::string& fallback)
      -> Result<std::vector<std::uint32_t>> {
    std::vector<std::uint32_t> values;
    std::istringstream ss(Arg(req, key, fallback));
    std::string token;
    while (std::getline(ss, token, ',')) {
      std::int64_t value = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec != std::errc() || ptr != token.data() + token.size()) {
        return Status::InvalidArgument(key + " wants a comma list of " +
                                       "integers, got \"" + token + "\"");
      }
      if (value < 0 || value > kMaxParamValue) {
        return RangeError(key + " values", "[0, 1000000000]");
      }
      values.push_back(static_cast<std::uint32_t>(value));
    }
    if (values.empty()) {
      return Status::InvalidArgument(key + " wants a nonempty comma list");
    }
    return values;
  };
  auto alphas = list("alphas", "1");
  if (!alphas.ok()) return ErrorJson(alphas.status());
  auto betas = list("betas", "1");
  if (!betas.ok()) return ErrorJson(betas.status());
  auto deltas = list("deltas", "0");
  if (!deltas.ok()) return ErrorJson(deltas.status());

  constexpr std::size_t kMaxSweep = 4096;
  if (alphas.value().size() * betas.value().size() * deltas.value().size() >
      kMaxSweep) {
    return ErrorJson("sweep grid too large (max 4096 points)");
  }

  std::vector<QueryRequest> grid;
  for (std::uint32_t alpha : alphas.value()) {
    for (std::uint32_t beta : betas.value()) {
      for (std::uint32_t delta : deltas.value()) {
        QueryRequest point = prototype;
        point.params.alpha = alpha;
        point.params.beta = beta;
        point.params.delta = delta;
        grid.push_back(point);
      }
    }
  }
  std::vector<QueryResult> results = executor_.ExecuteBatch(grid);
  std::ostringstream os;
  os << "{\"ok\":true,\"cmd\":\"sweep\",\"queries\":" << grid.size()
     << ",\"results\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    os << (i > 0 ? "," : "") << QueryResultJson(grid[i], results[i]);
  }
  os << "]}";
  return os.str();
}

std::string ServerSession::EntryReply(const std::string& cmd,
                                      const std::string& name) {
  auto entry = catalog_.Get(name);
  if (entry == nullptr) return ErrorJson("entry vanished: " + name);
  return "{\"ok\":true,\"cmd\":\"" + cmd +
         "\",\"entry\":" + CatalogEntryJson(*entry) + "}";
}

bool ServeStream(std::istream& in, std::ostream& out, ServerSession& session,
                 std::size_t max_request_bytes) {
  bool stop_server = false;
  std::string line;
  while (std::getline(in, line)) {
    std::string response;
    bool keep_going = true;
    if (line.size() > max_request_bytes) {
      response = TagSessionJson(
          session.id(),
          TypedErrorJson("too_large", "request line exceeds " +
                                          std::to_string(max_request_bytes) +
                                          " bytes"));
    } else {
      keep_going = session.Handle(line, &response, &stop_server);
    }
    if (!response.empty()) out << response << "\n" << std::flush;
    if (!keep_going) break;
  }
  return stop_server;
}

// ---------------------------------------------------------------------------
// Reactor: one epoll loop owning a share of the connections.
// ---------------------------------------------------------------------------

/// All Connection state is touched ONLY on the owning reactor's thread;
/// cross-thread inputs (new connections from the accept loop, async query
/// completions from executor runner threads) arrive through the reactor's
/// locked op queue + eventfd wakeup and are applied on the loop thread.
class Reactor {
 public:
  explicit Reactor(TcpServer& server) : server_(server) {}

  ~Reactor() {
    RequestStop();
    Join();
    if (wake_fd_ >= 0) ::close(wake_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
  }

  Status Start() {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) return Status::Internal("epoll_create1() failed");
    wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wake_fd_ < 0) return Status::Internal("eventfd() failed");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = 0;  // 0 is the wake sentinel; session ids start at 1.
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
      return Status::Internal("epoll_ctl(wake) failed");
    }
    thread_ = std::thread([this] { Loop(); });
    return Status::OK();
  }

  /// Hands a freshly accepted (non-blocking, CLOEXEC, NODELAY) socket to
  /// this reactor. Called from the accept thread.
  void Adopt(int fd, std::uint64_t id) {
    PostOp(Op{Op::kAdopt, fd, id, 0, {}});
  }

  /// Delivers an async query result for connection `conn_id`'s response
  /// slot `seq`. Called from executor runner threads (or inline from a
  /// reactor thread on a cache hit); the slot's framing was fixed at
  /// admission, only the body travels.
  void PostCompletion(std::uint64_t conn_id, std::uint64_t seq,
                      std::string body) {
    PostOp(Op{Op::kComplete, -1, conn_id, seq, std::move(body)});
  }

  /// Delivers one encoded stream chunk for connection `conn_id`'s slot
  /// `seq`. The op queue is FIFO, so chunk order — and the final
  /// PostCompletion after the last chunk — is inherited from the
  /// executor's per-stream delivery order.
  void PostChunk(std::uint64_t conn_id, std::uint64_t seq, std::string body) {
    PostOp(Op{Op::kChunk, -1, conn_id, seq, std::move(body)});
  }

  void RequestStop() {
    stop_.store(true, std::memory_order_release);
    Wake();
  }

  void Join() {
    if (thread_.joinable()) thread_.join();
    // The loop has exited; reap anything that raced in behind it so no
    // fd outlives the reactor (adopted-but-unprocessed sockets included).
    std::vector<Op> ops;
    {
      std::lock_guard<std::mutex> lock(ops_mu_);
      ops.swap(ops_);
    }
    for (const Op& op : ops) {
      if (op.kind == Op::kAdopt) {
        ::close(op.fd);
        server_.active_conns_.fetch_sub(1, std::memory_order_release);
        server_.conns_gauge_->Decrement();
      }
    }
    server_.active_conns_.fetch_sub(static_cast<unsigned>(conns_.size()),
                                    std::memory_order_release);
    server_.conns_gauge_->Add(-static_cast<std::int64_t>(conns_.size()));
    conns_.clear();  // Connection dtor closes the fds.
  }

 private:
  struct Connection {
    Connection(GraphCatalog& catalog, QueryExecutor& executor, int fd_in,
               std::uint64_t id_in)
        : fd(fd_in), id(id_in), session(catalog, executor, id_in) {}
    ~Connection() {
      if (fd >= 0) ::close(fd);
    }

    int fd;
    const std::uint64_t id;
    enum class Proto { kUnknown, kLine, kBinary };
    Proto proto = Proto::kUnknown;
    std::string rbuf;
    std::string wbuf;
    bool want_write = false;
    /// Set by quit/stop/EOF/protocol errors: buffered input after the
    /// current request is discarded, no new requests are parsed.
    bool stop_reading = false;
    /// Close once every pending response has been written out.
    bool close_after_flush = false;
    ServerSession session;

    /// One response, in request order. Pipelining: a slot is appended
    /// when its request is parsed and flushed only when it is `ready`
    /// AND every older slot has been flushed — async queries that finish
    /// out of order wait their turn in the deque.
    struct Slot {
      std::uint64_t seq = 0;
      bool ready = false;
      bool binary = false;
      /// Streaming query: chunk bodies flush as they arrive once the
      /// slot reaches the front of the deque (progressive delivery,
      /// still in request order); `ready` + `body` then close the stream
      /// with a kReplyEnd frame / the regular reply line.
      bool streaming = false;
      wire::Opcode opcode = wire::Opcode::kReply;
      std::uint64_t request_id = 0;
      std::string body;
      /// Encoded-but-unflushed stream chunks, in stream order:
      /// kReplyChunk payloads on binary connections, pre-tagged JSON
      /// lines on line-protocol ones.
      std::deque<std::string> chunks;
    };
    std::deque<Slot> pending;
    std::uint64_t next_seq = 1;
    std::chrono::steady_clock::time_point last_activity;
  };

  struct Op {
    enum Kind { kAdopt, kComplete, kChunk };
    Kind kind;
    int fd;
    std::uint64_t conn_id;
    std::uint64_t seq;
    std::string body;
  };

  void PostOp(Op op) {
    {
      std::lock_guard<std::mutex> lock(ops_mu_);
      ops_.push_back(std::move(op));
    }
    Wake();
  }

  void Wake() {
    if (wake_fd_ < 0) return;
    std::uint64_t one = 1;
    (void)!::write(wake_fd_, &one, sizeof(one));
  }

  void Loop() {
    std::vector<epoll_event> events(64);
    for (;;) {
      int timeout = -1;
      if (server_.options_.client_deadline_ms > 0 && !conns_.empty()) {
        timeout = std::clamp(server_.options_.client_deadline_ms / 4, 5, 1000);
      }
      const int n = ::epoll_wait(epoll_fd_, events.data(),
                                 static_cast<int>(events.size()), timeout);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // epoll itself failing is unrecoverable for this loop.
      }
      for (int i = 0; i < n; ++i) {
        if (events[i].data.u64 == 0) {
          std::uint64_t drained = 0;
          while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
          }
          continue;  // the op queue is applied below, once per wakeup.
        }
        // Look the connection up per event: an earlier event in this
        // batch may have closed it (stale entries must be skipped, never
        // dereferenced).
        auto it = conns_.find(events[i].data.u64);
        if (it == conns_.end()) continue;
        Connection* c = it->second.get();
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          CloseConn(c);
          continue;
        }
        if ((events[i].events & EPOLLIN) && !HandleReadable(c)) continue;
        if (events[i].events & EPOLLOUT) Flush(c);
      }
      ApplyOps();
      SweepDeadlines();
      if (stop_.load(std::memory_order_acquire) && conns_.empty() &&
          NoPendingOps()) {
        break;
      }
    }
  }

  bool NoPendingOps() {
    std::lock_guard<std::mutex> lock(ops_mu_);
    return ops_.empty();
  }

  void ApplyOps() {
    std::vector<Op> ops;
    {
      std::lock_guard<std::mutex> lock(ops_mu_);
      ops.swap(ops_);
    }
    for (Op& op : ops) {
      if (op.kind == Op::kAdopt) {
        auto conn = std::make_unique<Connection>(server_.catalog_,
                                                 server_.executor_, op.fd,
                                                 op.conn_id);
        conn->last_activity = std::chrono::steady_clock::now();
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = op.conn_id;
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, op.fd, &ev) < 0) {
          server_.active_conns_.fetch_sub(1, std::memory_order_release);
          server_.conns_gauge_->Decrement();
          continue;  // conn dtor closes the fd.
        }
        conns_.emplace(op.conn_id, std::move(conn));
      } else {
        // Completion/chunk for a connection that died mid-query is
        // simply dropped — the executor already accounted for it.
        auto it = conns_.find(op.conn_id);
        if (it == conns_.end()) continue;
        Connection* c = it->second.get();
        for (Connection::Slot& slot : c->pending) {
          if (slot.seq == op.seq) {
            if (op.kind == Op::kChunk) {
              slot.chunks.push_back(std::move(op.body));
            } else {
              slot.body = std::move(op.body);
              slot.ready = true;
            }
            break;
          }
        }
        Flush(c);
      }
    }
  }

  void SweepDeadlines() {
    const int deadline_ms = server_.options_.client_deadline_ms;
    if (deadline_ms <= 0 || conns_.empty()) return;
    const auto now = std::chrono::steady_clock::now();
    std::vector<Connection*> expired;
    for (auto& kv : conns_) {
      Connection* conn = kv.second.get();
      // Only truly idle clients are reaped: a connection with responses
      // still pending or unflushed is waiting on US (or on its own read
      // loop), not dawdling.
      if (!conn->pending.empty() || !conn->wbuf.empty()) continue;
      if (now - conn->last_activity >
          std::chrono::milliseconds(deadline_ms)) {
        expired.push_back(conn);
      }
    }
    for (Connection* c : expired) CloseConn(c);
  }

  void CloseConn(Connection* c) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c->fd, nullptr);
    server_.active_conns_.fetch_sub(1, std::memory_order_release);
    server_.conns_gauge_->Decrement();
    conns_.erase(c->id);  // dtor closes the fd.
  }

  /// Drains the socket into rbuf, consuming complete requests as they
  /// appear (so a pipelined burst never accumulates more than one
  /// incomplete request past the size cap). Returns false when the
  /// connection was closed.
  bool HandleReadable(Connection* c) {
    char chunk[16384];
    bool eof = false;
    for (;;) {
      const ssize_t r = ::recv(c->fd, chunk, sizeof(chunk), 0);
      if (r > 0) {
        server_.reads_->Increment();
        c->rbuf.append(chunk, static_cast<std::size_t>(r));
        c->last_activity = std::chrono::steady_clock::now();
        if (!ProcessInput(c)) return false;
        continue;
      }
      if (r == 0) {
        eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConn(c);
      return false;
    }
    if (eof) {
      c->stop_reading = true;
      if (c->pending.empty() && c->wbuf.empty()) {
        CloseConn(c);
        return false;
      }
      // In-flight queries still owe responses; deliver them, then close.
      c->close_after_flush = true;
    }
    return Flush(c);
  }

  /// Parses every complete request in rbuf. Returns false when the
  /// connection was closed.
  bool ProcessInput(Connection* c) {
    const std::size_t max_request = server_.options_.max_request_bytes;
    while (!c->stop_reading) {
      if (c->proto == Connection::Proto::kUnknown) {
        if (c->rbuf.empty()) break;
        // Protocol negotiation: wire::kMagic's low byte is not printable
        // ASCII, so the first byte decides unambiguously.
        c->proto = wire::LooksBinary(static_cast<unsigned char>(c->rbuf[0]))
                       ? Connection::Proto::kBinary
                       : Connection::Proto::kLine;
      }
      if (c->proto == Connection::Proto::kLine) {
        const std::size_t nl = c->rbuf.find('\n');
        // The cap triggers both on a complete-but-huge line and on an
        // unterminated one that already outgrew it (the latter stops a
        // hostile newline-free stream from allocating without bound).
        if (nl > max_request) {  // npos > max, so this covers both.
          if (nl != std::string::npos || c->rbuf.size() > max_request) {
            Connection::Slot& slot = NewSlot(c, /*binary=*/false,
                                             wire::Opcode::kReply, 0);
            FillError(c, &slot, wire::ErrorCode::kTooLarge,
                      "request line exceeds " + std::to_string(max_request) +
                          " bytes");
            c->stop_reading = true;
            c->close_after_flush = true;
          }
          break;
        }
        std::string line = c->rbuf.substr(0, nl);
        c->rbuf.erase(0, nl + 1);
        while (!line.empty() && line.back() == '\r') line.pop_back();
        HandleCommandText(c, line, /*binary=*/false, 0);
      } else {
        wire::Frame frame;
        std::size_t consumed = 0;
        const wire::DecodeResult decoded =
            wire::DecodeFrame(c->rbuf, max_request, &frame, &consumed);
        if (decoded.status == wire::FrameStatus::kNeedMore) break;
        if (decoded.status == wire::FrameStatus::kBad) {
          // A corrupt length-prefixed stream cannot be resynchronized:
          // one typed error frame, then hang up.
          Connection::Slot& slot =
              NewSlot(c, /*binary=*/true, wire::Opcode::kError, 0);
          FillError(c, &slot, decoded.code, decoded.message);
          c->stop_reading = true;
          c->close_after_flush = true;
          break;
        }
        c->rbuf.erase(0, consumed);
        HandleFrame(c, frame);
      }
    }
    return Flush(c);
  }

  Connection::Slot& NewSlot(Connection* c, bool binary, wire::Opcode opcode,
                            std::uint64_t request_id) {
    Connection::Slot slot;
    slot.seq = c->next_seq++;
    slot.binary = binary;
    slot.opcode = opcode;
    slot.request_id = request_id;
    c->pending.push_back(std::move(slot));
    return c->pending.back();
  }

  /// Formats a typed error into `slot` in the connection's own protocol:
  /// a kError frame, or the line protocol's {"code":...} JSON (same
  /// category strings on both sides).
  void FillError(Connection* c, Connection::Slot* slot, wire::ErrorCode code,
                 const std::string& message) {
    // Every typed error funnels through here, so this is the one place
    // the per-code error counters are bumped.
    server_.ErrorCounter(wire::ToString(code))->Increment();
    slot->streaming = false;  // errors are single-frame, never kReplyEnd.
    if (slot->binary) {
      slot->opcode = wire::Opcode::kError;
      slot->body = wire::EncodeErrorPayload(code, message);
    } else {
      slot->body =
          TagSessionJson(c->id, TypedErrorJson(wire::ToString(code), message));
    }
    slot->ready = true;
  }

  /// One request line — from the line protocol or a kCommand frame.
  /// Queries go async (the reactor thread never runs an enumeration);
  /// everything else dispatches inline through the shared ServerSession.
  void HandleCommandText(Connection* c, const std::string& line, bool binary,
                         std::uint64_t request_id) {
    const RequestLine req = ParseRequestLine(line);
    if (req.command == "query") {
      Connection::Slot& slot =
          NewSlot(c, binary, wire::Opcode::kReply, request_id);
      auto built = BuildQueryRequest(req);
      auto stream = IntArg(req, "stream", 0);
      if (!built.ok() || !stream.ok()) {
        const Status& bad = !built.ok() ? built.status() : stream.status();
        if (binary) {
          FillError(c, &slot, wire::ErrorCode::kBadRequest, bad.message());
        } else {
          // The line protocol's historical bad-query shape (no "code"
          // field) — old clients parse it, the smoke oracle diffs it.
          slot.body = TagSessionJson(c->id, ErrorJson(bad));
          slot.ready = true;
        }
        return;
      }
      AdmitQuery(c, &slot, std::move(built).value(), stream.value() != 0);
      return;
    }
    std::string response;
    bool stop_server = false;
    const bool keep_going = c->session.Handle(line, &response, &stop_server);
    if (binary) {
      // Binary framing answers EVERY request frame (pipelined clients
      // match responses positionally / by id), even where the line
      // protocol stays silent on blanks and comments.
      Connection::Slot& slot =
          NewSlot(c, /*binary=*/true, wire::Opcode::kReply, request_id);
      slot.body = std::move(response);
      slot.ready = true;
    } else if (!response.empty()) {
      Connection::Slot& slot =
          NewSlot(c, /*binary=*/false, wire::Opcode::kReply, 0);
      slot.body = std::move(response);
      slot.ready = true;
    }
    if (stop_server) server_.RequestStop();
    if (!keep_going) {
      c->stop_reading = true;
      c->close_after_flush = true;
    }
  }

  void HandleFrame(Connection* c, wire::Frame& frame) {
    switch (frame.opcode) {
      case wire::Opcode::kPing: {
        Connection::Slot& slot =
            NewSlot(c, /*binary=*/true, wire::Opcode::kPong, frame.request_id);
        slot.ready = true;
        return;
      }
      case wire::Opcode::kCommand:
        HandleCommandText(c, frame.payload, /*binary=*/true, frame.request_id);
        return;
      case wire::Opcode::kQuery: {
        Connection::Slot& slot = NewSlot(c, /*binary=*/true,
                                         wire::Opcode::kReply,
                                         frame.request_id);
        bool stream = false;
        auto built = wire::DecodeQueryPayload(frame.payload, &stream);
        if (!built.ok()) {
          FillError(c, &slot, wire::ErrorCode::kBadRequest,
                    built.status().message());
          return;
        }
        AdmitQuery(c, &slot, std::move(built).value(), stream);
        return;
      }
      default: {
        // DecodeFrame admits response opcodes (clients must decode
        // them), but a client sending one AT the server is confused.
        Connection::Slot& slot =
            NewSlot(c, /*binary=*/true, wire::Opcode::kError,
                    frame.request_id);
        FillError(c, &slot, wire::ErrorCode::kBadFrame,
                  "response opcode sent to server");
        c->stop_reading = true;
        c->close_after_flush = true;
        return;
      }
    }
  }

  /// Admission + async dispatch for one query. The slot is addressed by
  /// (conn id, seq) — NOT by pointer — so a connection that dies while
  /// the query runs just drops the completion.
  void AdmitQuery(Connection* c, Connection::Slot* slot, QueryRequest query,
                  bool stream) {
    const unsigned limit = server_.options_.max_inflight;
    unsigned current = server_.inflight_.fetch_add(1, std::memory_order_acq_rel);
    if (limit != 0 && current >= limit) {
      server_.inflight_.fetch_sub(1, std::memory_order_release);
      FillError(c, slot, wire::ErrorCode::kBusy,
                "server busy: max-inflight=" + std::to_string(limit));
      return;
    }
    server_.inflight_gauge_->Increment();
    TcpServer* server = &server_;
    Reactor* self = this;
    const std::uint64_t conn_id = c->id;
    const std::uint64_t seq = slot->seq;
    auto complete = [server, self, conn_id, seq, query](QueryResult result) {
      std::string body;
      {
        // Retained traces get the response-serialization cost as a
        // post-hoc span (a tail sibling of the root "query" span).
        TraceSpan serialize_span(result.trace.get(), "serialize");
        body = TagSessionJson(conn_id, QueryResultJson(query, result));
      }
      // Post BEFORE releasing the in-flight ticket: Serve()'s drain
      // epilogue waits for inflight_ == 0 and may tear the server
      // down right after, so the post — and every other touch of
      // *server, the gauge included — must already have landed.
      self->PostCompletion(conn_id, seq, std::move(body));
      server->inflight_gauge_->Decrement();
      server->inflight_.fetch_sub(1, std::memory_order_release);
    };
    if (!stream) {
      server_.executor_.ExecuteAsync(query, std::move(complete));
      return;
    }
    slot->streaming = true;
    const bool binary = slot->binary;
    server_.executor_.ExecuteStreaming(
        query,
        [self, conn_id, seq, binary,
         query](const QueryExecutor::StreamChunk& chunk) {
          // The executor's empty end-of-stream marker is dropped: the
          // kReplyEnd frame / regular reply line is the wire's marker.
          if (chunk.final) return;
          std::string body =
              binary ? wire::EncodeChunkPayload(chunk.seq,
                                                chunk.results_so_far,
                                                chunk.nodes_so_far,
                                                chunk.bicliques)
                     : TagSessionJson(conn_id, StreamChunkJson(query, chunk));
          self->PostChunk(conn_id, seq, std::move(body));
        },
        std::move(complete));
  }

  /// Moves ready-in-order responses into wbuf and writes as much as the
  /// socket accepts; manages EPOLLOUT registration and the
  /// close-after-flush epilogue. Returns false when the connection was
  /// closed.
  bool Flush(Connection* c) {
    while (!c->pending.empty()) {
      Connection::Slot& slot = c->pending.front();
      // Stream chunks flush as soon as their slot reaches the front:
      // progressive delivery without ever reordering responses.
      while (!slot.chunks.empty()) {
        if (slot.binary) {
          wire::Frame frame;
          frame.opcode = wire::Opcode::kReplyChunk;
          frame.request_id = slot.request_id;
          frame.payload = std::move(slot.chunks.front());
          wire::EncodeFrame(frame, &c->wbuf);
        } else {
          c->wbuf += slot.chunks.front();
          c->wbuf += '\n';
        }
        slot.chunks.pop_front();
      }
      if (!slot.ready) break;  // response (or stream tail) still pending.
      if (slot.binary) {
        wire::Frame frame;
        frame.opcode = slot.streaming ? wire::Opcode::kReplyEnd : slot.opcode;
        frame.request_id = slot.request_id;
        frame.payload = std::move(slot.body);
        wire::EncodeFrame(frame, &c->wbuf);
      } else if (!slot.body.empty()) {
        c->wbuf += slot.body;
        c->wbuf += '\n';
      }
      c->pending.pop_front();
    }
    bool wrote = false;
    while (!c->wbuf.empty()) {
      const ssize_t n =
          ::send(c->fd, c->wbuf.data(), c->wbuf.size(), MSG_NOSIGNAL);
      if (n > 0) {
        server_.writes_->Increment();
        wrote = true;
        c->wbuf.erase(0, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      CloseConn(c);  // peer reset mid-response.
      return false;
    }
    if (wrote && c->wbuf.empty()) server_.flushes_->Increment();
    const bool want_write = !c->wbuf.empty();
    if (want_write != c->want_write) {
      epoll_event ev{};
      ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
      ev.data.u64 = c->id;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c->fd, &ev);
      c->want_write = want_write;
    }
    if (c->close_after_flush && c->pending.empty() && c->wbuf.empty()) {
      CloseConn(c);
      return false;
    }
    return true;
  }

  TcpServer& server_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::mutex ops_mu_;
  std::vector<Op> ops_;
  /// Owned connections, keyed by session id. Loop-thread only.
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  std::thread thread_;
};

// ---------------------------------------------------------------------------
// TcpServer: listener + accept loop over the reactor pool.
// ---------------------------------------------------------------------------

TcpServer::TcpServer(GraphCatalog& catalog, QueryExecutor& executor,
                     const TcpServerOptions& options)
    : catalog_(catalog),
      executor_(executor),
      options_(options),
      metrics_(executor.metrics()),
      accepts_(metrics_->GetCounter("fairbc_reactor_accepts_total",
                                    "TCP connections accepted.")),
      reads_(metrics_->GetCounter("fairbc_reactor_reads_total",
                                  "Successful socket reads (recv calls).")),
      writes_(metrics_->GetCounter("fairbc_reactor_writes_total",
                                   "Successful socket writes (send calls).")),
      flushes_(metrics_->GetCounter(
          "fairbc_reactor_flushes_total",
          "Flush passes that fully drained a connection's write buffer.")),
      server_full_(metrics_->GetCounter(
          "fairbc_server_full_total",
          "Connections turned away at max-sessions.")),
      sessions_metric_(metrics_->GetCounter("fairbc_sessions_total",
                                            "Sessions (connections) admitted.")),
      conns_gauge_(metrics_->GetGauge("fairbc_connections_active",
                                      "Live TCP connections.")),
      inflight_gauge_(metrics_->GetGauge(
          "fairbc_server_inflight_requests",
          "Query requests admitted by the server, not yet answered.")) {}

Counter* TcpServer::ErrorCounter(const char* code) {
  return metrics_->GetCounter("fairbc_server_errors_total",
                              "Typed request errors, by error code.",
                              std::string("code=\"") + code + "\"");
}

TcpServer::~TcpServer() {
  RequestStop();
  // Executor runner threads may still hold completions that post into a
  // reactor, so the reactor objects must outlive the last ticket.
  while (inflight_.load(std::memory_order_acquire) != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  reactors_.clear();  // each dtor stops, joins and reaps its fds.
  if (listener_ >= 0) ::close(listener_);
}

Status TcpServer::Listen() {
  listener_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listener_ < 0) {
    return Status::Internal("socket() failed");
  }
  int reuse = 1;
  ::setsockopt(listener_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  // A deep backlog: connection floods (the 10k-connection bench tier)
  // must queue behind the serial accept loop instead of overflowing the
  // SYN queue into multi-second client-side retransmit stalls. The
  // kernel clamps this to net.core.somaxconn.
  if (::bind(listener_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listener_, 4096) < 0) {
    ::close(listener_);
    listener_ = -1;
    return Status::Internal("cannot listen on 127.0.0.1:" +
                            std::to_string(options_.port));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listener_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = options_.port;
  }

  unsigned reactors = options_.reactor_threads;
  if (reactors == 0) {
    reactors = std::min(4u, std::max(1u, std::thread::hardware_concurrency()));
  }
  for (unsigned i = 0; i < reactors; ++i) {
    auto reactor = std::make_unique<Reactor>(*this);
    Status st = reactor->Start();
    if (!st.ok()) {
      reactors_.clear();
      return st;
    }
    reactors_.push_back(std::move(reactor));
  }
  return Status::OK();
}

void TcpServer::RequestStop() {
  stopping_.store(true, std::memory_order_release);
  // shutdown(2) — not close(2) — wakes a blocked accept() without
  // invalidating the fd another thread may be using: race-free shutdown.
  if (listener_ >= 0) ::shutdown(listener_, SHUT_RDWR);
  for (auto& reactor : reactors_) reactor->RequestStop();
}

void TcpServer::Serve() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int client = ::accept4(listener_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (client < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      // A resident server must survive transient accept failures: a
      // client aborting in the backlog (ECONNABORTED), a signal (EINTR)
      // or fd exhaustion while sessions hold sockets (EMFILE/ENFILE —
      // back off briefly so the loop cannot spin at the limit).
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      std::perror("fairbc_server: accept");
      break;  // not a known-transient failure: shut down cleanly.
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(client);
      break;
    }
    accepts_->Increment();
    // Small responses must not sit in Nagle's buffer behind a pipelined
    // request burst.
    int nodelay = 1;
    ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    const unsigned admitted =
        active_conns_.fetch_add(1, std::memory_order_acq_rel);
    conns_gauge_->Increment();
    if (admitted >= options_.max_sessions) {
      active_conns_.fetch_sub(1, std::memory_order_release);
      conns_gauge_->Decrement();
      server_full_->Increment();
      // Turn the client away with a parseable error rather than leaving
      // it queued behind an unbounded backlog. (Best effort on a fresh
      // socket whose send buffer is empty.)
      std::string reply =
          ErrorJson("server full: max-sessions=" +
                    std::to_string(options_.max_sessions)) +
          "\n";
      (void)!::send(client, reply.data(), reply.size(), MSG_NOSIGNAL);
      ::close(client);
      continue;
    }
    const std::uint64_t id =
        next_session_id_.fetch_add(1, std::memory_order_relaxed);
    sessions_started_.fetch_add(1, std::memory_order_relaxed);
    sessions_metric_->Increment();
    reactors_[id % reactors_.size()]->Adopt(client, id);
  }
  // Drain: every reactor keeps serving its live connections until they
  // close, then exits; then wait for stragglers' completions to land.
  for (auto& reactor : reactors_) reactor->RequestStop();
  for (auto& reactor : reactors_) reactor->Join();
  while (inflight_.load(std::memory_order_acquire) != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace fairbc
