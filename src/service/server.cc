#include "service/server.h"

#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "graph/generators.h"
#include "graph/snapshot.h"
#include "service/response_json.h"

namespace fairbc {

namespace {

/// alpha/beta/delta (and the sweep lists) live in [0, kMaxParamValue]:
/// far above any meaningful fairness threshold, far below the uint32
/// wrap that `query alpha=-1` used to silently hit.
constexpr std::int64_t kMaxParamValue = 1'000'000'000;

std::string Arg(const RequestLine& req, const std::string& key,
                const std::string& default_value) {
  auto it = req.args.find(key);
  return it == req.args.end() ? default_value : it->second;
}

/// Strict integer argument: absent → default, present-but-unparsable or
/// partially numeric ("3x") → error. Negative values parse fine here and
/// are range-checked by the caller, so "alpha=-1" reports its real value
/// instead of wrapping through an unsigned cast.
Result<std::int64_t> IntArg(const RequestLine& req, const std::string& key,
                            std::int64_t default_value) {
  auto it = req.args.find(key);
  if (it == req.args.end()) return default_value;
  const std::string& text = it->second;
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument(key + " must be an integer, got \"" + text +
                                   "\"");
  }
  return value;
}

/// Strict floating-point argument, same contract as IntArg.
Result<double> DoubleArg(const RequestLine& req, const std::string& key,
                         double default_value) {
  auto it = req.args.find(key);
  if (it == req.args.end()) return default_value;
  const std::string& text = it->second;
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(key);
    return value;
  } catch (...) {
    return Status::InvalidArgument(key + " must be a number, got \"" + text +
                                   "\"");
  }
}

Status RangeError(const std::string& key, const std::string& range) {
  return Status::InvalidArgument(key + " must be in " + range);
}

}  // namespace

RequestLine ParseRequestLine(const std::string& line) {
  RequestLine req;
  std::istringstream tokens(line);
  tokens >> req.command;
  std::string token;
  while (tokens >> token) {
    auto eq = token.find('=');
    if (eq == std::string::npos) {
      req.args[token] = "1";  // bare key = boolean true, like the CLI.
    } else {
      req.args[token.substr(0, eq)] = token.substr(eq + 1);
    }
  }
  return req;
}

Result<QueryRequest> BuildQueryRequest(const RequestLine& req) {
  QueryRequest query;
  query.graph = Arg(req, "graph", "");
  if (query.graph.empty()) {
    return Status::InvalidArgument("query needs graph=NAME");
  }
  auto model = ParseFairModel(Arg(req, "model", "ssfbc"));
  if (!model) return Status::InvalidArgument("bad model (ssfbc|bsfbc)");
  query.model = *model;
  auto algo = ParseFairAlgo(Arg(req, "algo", "pp"));
  if (!algo) return Status::InvalidArgument("bad algo (pp|bcem|naive)");
  query.algo = *algo;

  for (auto [key, field, default_value] :
       {std::tuple<const char*, std::uint32_t*, std::int64_t>
            {"alpha", &query.params.alpha, 1},
        {"beta", &query.params.beta, 1},
        {"delta", &query.params.delta, 0}}) {
    auto parsed = IntArg(req, key, default_value);
    if (!parsed.ok()) return parsed.status();
    if (parsed.value() < 0 || parsed.value() > kMaxParamValue) {
      return RangeError(key, "[0, 1000000000]");
    }
    *field = static_cast<std::uint32_t>(parsed.value());
  }

  auto theta = DoubleArg(req, "theta", 0.0);
  if (!theta.ok()) return theta.status();
  if (!(theta.value() >= 0.0) || !(theta.value() <= 1.0)) {
    return RangeError("theta", "[0, 1]");
  }
  query.params.theta = theta.value();

  const std::string ordering = Arg(req, "ordering", "deg");
  query.options.ordering = ordering == "id" ? VertexOrdering::kId
                                            : VertexOrdering::kDegreeDesc;
  const std::string pruning = Arg(req, "pruning", "colorful");
  query.options.pruning = pruning == "none"   ? PruningLevel::kNone
                          : pruning == "core" ? PruningLevel::kCore
                                              : PruningLevel::kColorful;

  auto budget = DoubleArg(req, "budget", 0.0);
  if (!budget.ok()) return budget.status();
  if (!(budget.value() >= 0.0)) return RangeError("budget", "[0, inf)");
  query.options.time_budget_seconds = budget.value();

  auto threads = IntArg(req, "threads", 1);
  if (!threads.ok()) return threads.status();
  if (threads.value() < 0 || threads.value() > 1024) {
    return RangeError("threads", "[0, 1024]");
  }
  query.options.num_threads = static_cast<unsigned>(threads.value());

  auto use_cache = IntArg(req, "cache", 1);
  if (!use_cache.ok()) return use_cache.status();
  query.use_cache = use_cache.value() != 0;
  return query;
}

ServerSession::ServerSession(GraphCatalog& catalog, QueryExecutor& executor,
                             std::uint64_t id)
    : catalog_(catalog), executor_(executor), id_(id) {}

std::string ServerSession::Tag(std::string json) const {
  if (json.empty() || json.front() != '{') return json;
  return "{\"session\":" + std::to_string(id_) + "," + json.substr(1);
}

bool ServerSession::Handle(const std::string& line, std::string* response,
                           bool* stop_server) {
  const RequestLine req = ParseRequestLine(line);
  if (req.command.empty() || req.command[0] == '#') {
    response->clear();
    return true;
  }
  if (req.command == "quit") {
    *response = Tag("{\"ok\":true,\"cmd\":\"quit\"}");
    return false;
  }
  if (req.command == "stop") {
    *stop_server = true;
    *response = Tag("{\"ok\":true,\"cmd\":\"stop\"}");
    return false;
  }
  *response = Tag(Dispatch(req));
  return true;
}

std::string ServerSession::Dispatch(const RequestLine& req) {
  if (req.command == "ping") return "{\"ok\":true,\"cmd\":\"ping\"}";
  if (req.command == "load") return Load(req);
  if (req.command == "gen") return Gen(req);
  if (req.command == "save") return Save(req);
  if (req.command == "drop") return Drop(req);
  if (req.command == "catalog") return Catalog();
  if (req.command == "cache") {
    return ExecutorTelemetryJson(executor_.telemetry());
  }
  if (req.command == "query") return Query(req);
  if (req.command == "sweep") return Sweep(req);
  return ErrorJson("unknown command: " + req.command);
}

std::string ServerSession::Load(const RequestLine& req) {
  const std::string name = Arg(req, "name", "");
  const std::string path = Arg(req, "path", "");
  if (name.empty() || path.empty()) {
    return ErrorJson("load needs name=NAME path=FILE");
  }
  auto format = ParseCatalogFormat(Arg(req, "format", "snapshot"));
  if (!format) return ErrorJson("bad format (snapshot|mmap|attr|edges)");
  Status st = catalog_.AddFromFile(name, path, *format);
  if (!st.ok()) return ErrorJson(st);
  return EntryReply("load", name);
}

std::string ServerSession::Gen(const RequestLine& req) {
  const std::string name = Arg(req, "name", "");
  if (name.empty()) return ErrorJson("gen needs name=NAME");
  const std::string kind = Arg(req, "kind", "affiliation");
  // Validate everything before casting: the generators FAIRBC_CHECK
  // (abort) on bad parameters, and a resident server must never die
  // on a request line.
  auto nu = IntArg(req, "nu", 1000);
  auto nv = IntArg(req, "nv", 1000);
  auto edges = IntArg(req, "edges", 5000);
  auto attrs = IntArg(req, "attrs", 2);
  auto communities = IntArg(req, "communities", 60);
  auto gamma = DoubleArg(req, "gamma", 2.2);
  auto seed = IntArg(req, "seed", 42);
  for (const auto* parsed : {&nu, &nv, &edges, &attrs, &communities, &seed}) {
    if (!parsed->ok()) return ErrorJson(parsed->status());
  }
  if (!gamma.ok()) return ErrorJson(gamma.status());
  if (nu.value() < 1 || nu.value() > 20'000'000 || nv.value() < 1 ||
      nv.value() > 20'000'000) {
    return ErrorJson("nu/nv must be in [1, 2e7]");
  }
  if (edges.value() < 0 || edges.value() > 200'000'000) {
    return ErrorJson("edges must be in [0, 2e8]");
  }
  if (attrs.value() < 1 || attrs.value() > 1024) {
    return ErrorJson("attrs must be in [1, 1024]");
  }
  if (communities.value() < 1 || communities.value() > 1'000'000) {
    return ErrorJson("communities must be in [1, 1e6]");
  }
  if (!(gamma.value() > 1.0) || gamma.value() > 10.0) {
    return ErrorJson("gamma must be in (1, 10]");
  }
  BipartiteGraph g;
  if (kind == "uniform") {
    g = MakeUniformRandom(static_cast<VertexId>(nu.value()),
                          static_cast<VertexId>(nv.value()),
                          static_cast<EdgeIndex>(edges.value()),
                          static_cast<AttrId>(attrs.value()),
                          static_cast<std::uint64_t>(seed.value()));
  } else if (kind == "powerlaw") {
    g = MakePowerLaw(static_cast<VertexId>(nu.value()),
                     static_cast<VertexId>(nv.value()),
                     static_cast<EdgeIndex>(edges.value()), gamma.value(),
                     static_cast<AttrId>(attrs.value()),
                     static_cast<std::uint64_t>(seed.value()));
  } else if (kind == "affiliation") {
    AffiliationConfig config;
    config.num_upper = static_cast<VertexId>(nu.value());
    config.num_lower = static_cast<VertexId>(nv.value());
    config.num_communities = static_cast<std::uint32_t>(communities.value());
    config.num_upper_attrs = static_cast<AttrId>(attrs.value());
    config.num_lower_attrs = static_cast<AttrId>(attrs.value());
    config.seed = static_cast<std::uint64_t>(seed.value());
    g = MakeAffiliation(config);
  } else {
    return ErrorJson("bad kind (uniform|powerlaw|affiliation)");
  }
  Status st = catalog_.AddGraph(name, std::move(g), "<gen:" + kind + ">");
  if (!st.ok()) return ErrorJson(st);
  return EntryReply("gen", name);
}

std::string ServerSession::Save(const RequestLine& req) {
  const std::string name = Arg(req, "name", "");
  const std::string path = Arg(req, "path", "");
  if (name.empty() || path.empty()) {
    return ErrorJson("save needs name=NAME path=FILE");
  }
  auto entry = catalog_.Get(name);
  if (entry == nullptr) return ErrorJson("unknown graph: " + name);
  Status st = WriteSnapshot(entry->graph, path);
  if (!st.ok()) return ErrorJson(st);
  return "{\"ok\":true,\"cmd\":\"save\",\"name\":\"" + JsonEscape(name) +
         "\",\"path\":\"" + JsonEscape(path) + "\",\"version\":\"" +
         JsonHex64(entry->version) + "\"}";
}

std::string ServerSession::Drop(const RequestLine& req) {
  const std::string name = Arg(req, "name", "");
  if (name.empty()) return ErrorJson("drop needs name=NAME");
  if (!catalog_.Remove(name)) return ErrorJson("unknown graph: " + name);
  return "{\"ok\":true,\"cmd\":\"drop\",\"name\":\"" + JsonEscape(name) +
         "\"}";
}

std::string ServerSession::Catalog() {
  std::ostringstream os;
  os << "{\"ok\":true,\"cmd\":\"catalog\",\"graphs\":[";
  bool first = true;
  for (const auto& entry : catalog_.List()) {
    if (!first) os << ",";
    first = false;
    os << CatalogEntryJson(*entry);
  }
  os << "]}";
  return os.str();
}

std::string ServerSession::Query(const RequestLine& req) {
  auto built = BuildQueryRequest(req);
  if (!built.ok()) return ErrorJson(built.status());
  const QueryRequest query = std::move(built).value();
  QueryResult result = executor_.Execute(query);
  return QueryResultJson(query, result);
}

// `sweep` expands a parameter grid (comma lists) into one batch and
// admits it onto the executor's pool — this is where the server's
// --threads width does concurrent work. Response: one JSON object
// with the per-query results, positionally aligned with the grid in
// alphas-outer / betas / deltas-inner order.
std::string ServerSession::Sweep(const RequestLine& req) {
  RequestLine base = req;
  base.args["alpha"] = "0";
  base.args["beta"] = "0";
  base.args["delta"] = "0";
  auto built = BuildQueryRequest(base);
  if (!built.ok()) return ErrorJson(built.status());
  const QueryRequest prototype = std::move(built).value();

  // Each list value gets the same strict parse + range check as the
  // scalar query parameters: `sweep alphas=-1` must be an error, not a
  // wrapped-to-4294967295 grid point.
  auto list = [&](const std::string& key, const std::string& fallback)
      -> Result<std::vector<std::uint32_t>> {
    std::vector<std::uint32_t> values;
    std::istringstream ss(Arg(req, key, fallback));
    std::string token;
    while (std::getline(ss, token, ',')) {
      std::int64_t value = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec != std::errc() || ptr != token.data() + token.size()) {
        return Status::InvalidArgument(key + " wants a comma list of " +
                                       "integers, got \"" + token + "\"");
      }
      if (value < 0 || value > kMaxParamValue) {
        return RangeError(key + " values", "[0, 1000000000]");
      }
      values.push_back(static_cast<std::uint32_t>(value));
    }
    if (values.empty()) {
      return Status::InvalidArgument(key + " wants a nonempty comma list");
    }
    return values;
  };
  auto alphas = list("alphas", "1");
  if (!alphas.ok()) return ErrorJson(alphas.status());
  auto betas = list("betas", "1");
  if (!betas.ok()) return ErrorJson(betas.status());
  auto deltas = list("deltas", "0");
  if (!deltas.ok()) return ErrorJson(deltas.status());

  constexpr std::size_t kMaxSweep = 4096;
  if (alphas.value().size() * betas.value().size() * deltas.value().size() >
      kMaxSweep) {
    return ErrorJson("sweep grid too large (max 4096 points)");
  }

  std::vector<QueryRequest> grid;
  for (std::uint32_t alpha : alphas.value()) {
    for (std::uint32_t beta : betas.value()) {
      for (std::uint32_t delta : deltas.value()) {
        QueryRequest point = prototype;
        point.params.alpha = alpha;
        point.params.beta = beta;
        point.params.delta = delta;
        grid.push_back(point);
      }
    }
  }
  std::vector<QueryResult> results = executor_.ExecuteBatch(grid);
  std::ostringstream os;
  os << "{\"ok\":true,\"cmd\":\"sweep\",\"queries\":" << grid.size()
     << ",\"results\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    os << (i > 0 ? "," : "") << QueryResultJson(grid[i], results[i]);
  }
  os << "]}";
  return os.str();
}

std::string ServerSession::EntryReply(const std::string& cmd,
                                      const std::string& name) {
  auto entry = catalog_.Get(name);
  if (entry == nullptr) return ErrorJson("entry vanished: " + name);
  return "{\"ok\":true,\"cmd\":\"" + cmd +
         "\",\"entry\":" + CatalogEntryJson(*entry) + "}";
}

bool ServeStream(std::istream& in, std::ostream& out, ServerSession& session) {
  bool stop_server = false;
  std::string line;
  while (std::getline(in, line)) {
    std::string response;
    const bool keep_going = session.Handle(line, &response, &stop_server);
    if (!response.empty()) out << response << "\n" << std::flush;
    if (!keep_going) break;
  }
  return stop_server;
}

TcpServer::TcpServer(GraphCatalog& catalog, QueryExecutor& executor,
                     const TcpServerOptions& options)
    : catalog_(catalog), executor_(executor), options_(options) {}

TcpServer::~TcpServer() {
  Reap(/*all=*/true);
  if (listener_ >= 0) ::close(listener_);
}

Status TcpServer::Listen() {
  listener_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener_ < 0) {
    return Status::Internal("socket() failed");
  }
  int reuse = 1;
  ::setsockopt(listener_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listener_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listener_, 16) < 0) {
    ::close(listener_);
    listener_ = -1;
    return Status::Internal("cannot listen on 127.0.0.1:" +
                            std::to_string(options_.port));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listener_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = options_.port;
  }
  return Status::OK();
}

void TcpServer::RequestStop() {
  stopping_.store(true, std::memory_order_release);
  // shutdown(2) — not close(2) — wakes a blocked accept() without
  // invalidating the fd another thread may be using: race-free shutdown.
  if (listener_ >= 0) ::shutdown(listener_, SHUT_RDWR);
}

void TcpServer::Reap(bool all) {
  // Splice the reapable slots out under the lock, join them outside it:
  // joining under sessions_mu_ could deadlock with a session thread that
  // is itself blocked on the mutex in its epilogue reap. splice keeps
  // the list nodes alive, so RunSession's `slot` pointer stays valid.
  std::list<SessionSlot> done;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      // A session thread reaping its peers must never join itself (its
      // own finished flag is not yet set at that point anyway; the id
      // check makes self-joining structurally impossible).
      if ((all || it->finished.load(std::memory_order_acquire)) &&
          it->thread.get_id() != std::this_thread::get_id()) {
        auto next = std::next(it);
        done.splice(done.end(), sessions_, it);
        it = next;
      } else {
        ++it;
      }
    }
  }
  for (SessionSlot& slot : done) {
    if (slot.thread.joinable()) slot.thread.join();
  }
}

void TcpServer::Serve() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int client = ::accept(listener_, nullptr, nullptr);
    if (client < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      // A resident server must survive transient accept failures: a
      // client aborting in the backlog (ECONNABORTED), a signal (EINTR)
      // or fd exhaustion while sessions hold sockets (EMFILE/ENFILE —
      // back off briefly so the loop cannot spin at the limit).
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      std::perror("fairbc_server: accept");
      break;  // not a known-transient failure: shut down cleanly.
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(client);
      break;
    }
    Reap(/*all=*/false);
    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (sessions_.size() >= options_.max_sessions) {
      // Turn the client away with a parseable error rather than leaving
      // it queued behind an unbounded backlog.
      std::string reply =
          ErrorJson("server full: max-sessions=" +
                    std::to_string(options_.max_sessions)) +
          "\n";
      (void)!::send(client, reply.data(), reply.size(), MSG_NOSIGNAL);
      ::close(client);
      continue;
    }
    const std::uint64_t id =
        next_session_id_.fetch_add(1, std::memory_order_relaxed);
    sessions_started_.fetch_add(1, std::memory_order_relaxed);
    sessions_.emplace_back();
    SessionSlot* slot = &sessions_.back();
    slot->thread = std::thread(
        [this, client, id, slot] { RunSession(client, id, slot); });
  }
  // Drain: let every active session finish its stream before returning.
  Reap(/*all=*/true);
}

void TcpServer::RunSession(int client_fd, std::uint64_t id,
                           SessionSlot* slot) {
  FILE* rf = ::fdopen(client_fd, "r");
  if (rf == nullptr) {
    ::close(client_fd);
    slot->finished.store(true, std::memory_order_release);
    return;
  }
  ServerSession session(catalog_, executor_, id);
  bool stop_server = false;
  char* buf = nullptr;
  size_t cap = 0;
  ssize_t len;
  bool keep_going = true;
  while (keep_going && (len = ::getline(&buf, &cap, rf)) >= 0) {
    std::string line(buf, static_cast<std::size_t>(len));
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    std::string response;
    keep_going = session.Handle(line, &response, &stop_server);
    if (!response.empty()) {
      response += "\n";
      const char* data = response.data();
      std::size_t remaining = response.size();
      while (remaining > 0) {
        // MSG_NOSIGNAL: a client resetting mid-response must surface as
        // an EPIPE error here, never as a process-wide SIGPIPE (the
        // tests run this server in-process without a signal handler).
        ssize_t n = ::send(client_fd, data, remaining, MSG_NOSIGNAL);
        if (n <= 0) {
          keep_going = false;
          break;
        }
        data += n;
        remaining -= static_cast<std::size_t>(n);
      }
    }
  }
  std::free(buf);
  ::fclose(rf);  // also closes the client fd.
  if (stop_server) RequestStop();
  // Join already-finished peers so an idle server does not accumulate
  // exited-but-unjoined threads until the next accept. The id check in
  // Reap keeps this thread from touching its own slot; its own join
  // happens on the next accept-loop reap or the final drain.
  Reap(/*all=*/false);
  slot->finished.store(true, std::memory_order_release);
}

}  // namespace fairbc
