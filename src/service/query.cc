#include "service/query.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "graph/snapshot.h"

namespace fairbc {

std::uint64_t BicliqueHash(const Biclique& b) {
  // FNV over the upper ids, a side separator, then the lower ids. The
  // per-biclique hash is order-*dependent* (vertex lists are canonically
  // sorted), the set digest built from it is order-independent.
  std::uint64_t state = Fnv1a64(b.upper.data(),
                                b.upper.size() * sizeof(VertexId));
  const std::uint32_t separator = 0x5eb1c11eu;
  state = Fnv1a64(&separator, sizeof(separator), state);
  return Fnv1a64(b.lower.data(), b.lower.size() * sizeof(VertexId), state);
}

BicliqueSink DigestAccumulator::Wrap(BicliqueSink inner) {
  return [this, inner = std::move(inner)](const Biclique& b) {
    ++count_;
    digest_ += BicliqueHash(b);
    max_upper_ = std::max(max_upper_, static_cast<std::uint32_t>(b.upper.size()));
    max_lower_ = std::max(max_lower_, static_cast<std::uint32_t>(b.lower.size()));
    return inner(b);
  };
}

void DigestAccumulator::FillSummary(QuerySummary* summary) const {
  summary->count = count_;
  summary->digest = digest_;
  summary->max_upper = max_upper_;
  summary->max_lower = max_lower_;
}

std::string CanonicalCacheKey(const QueryRequest& req,
                              std::uint64_t graph_version) {
  char buf[192];
  // %.17g round-trips every double, so distinct thetas never collide.
  std::snprintf(buf, sizeof(buf), "@%016llx|%s|%s|a=%u|b=%u|d=%u|t=%.17g|%s|%s",
                static_cast<unsigned long long>(graph_version),
                ToString(req.model), ToString(req.algo), req.params.alpha,
                req.params.beta, req.params.delta, req.params.theta,
                ToString(req.options.ordering), ToString(req.options.pruning));
  std::string key = req.graph + buf;
  if (req.top_k > 0) {
    // Top-k results are a different result set than the full enumeration;
    // full-enumeration keys stay byte-identical to previous releases.
    std::snprintf(buf, sizeof(buf), "|k=%u|rank=%s", req.top_k,
                  ToString(req.rank));
    key += buf;
  }
  return key;
}

std::optional<FairModel> ParseFairModel(const std::string& name) {
  if (name == "ssfbc") return FairModel::kSsfbc;
  if (name == "bsfbc") return FairModel::kBsfbc;
  return std::nullopt;
}

std::optional<FairAlgo> ParseFairAlgo(const std::string& name) {
  if (name == "pp") return FairAlgo::kPlusPlus;
  if (name == "bcem") return FairAlgo::kBcem;
  if (name == "naive") return FairAlgo::kNaive;
  return std::nullopt;
}

const char* ToString(FairModel model) {
  return model == FairModel::kBsfbc ? "bsfbc" : "ssfbc";
}

const char* ToString(FairAlgo algo) {
  switch (algo) {
    case FairAlgo::kBcem:
      return "bcem";
    case FairAlgo::kNaive:
      return "naive";
    case FairAlgo::kPlusPlus:
      break;
  }
  return "pp";
}

std::optional<TopKRank> ParseTopKRank(const std::string& name) {
  if (name == "weight") return TopKRank::kWeight;
  if (name == "size") return TopKRank::kSize;
  if (name == "balance") return TopKRank::kBalance;
  return std::nullopt;
}

const char* ToString(VertexOrdering ordering) {
  return ordering == VertexOrdering::kId ? "id" : "deg";
}

const char* ToString(TopKRank rank) {
  switch (rank) {
    case TopKRank::kSize:
      return "size";
    case TopKRank::kBalance:
      return "balance";
    case TopKRank::kWeight:
      break;
  }
  return "weight";
}

bool ValidRequestId(const std::string& token) {
  if (token.size() > 128) return false;
  for (char c : token) {
    if (c <= 0x20 || c >= 0x7f || c == '"' || c == '\\') return false;
  }
  return true;
}

const char* ToString(PruningLevel level) {
  switch (level) {
    case PruningLevel::kNone:
      return "none";
    case PruningLevel::kCore:
      return "core";
    case PruningLevel::kColorful:
      break;
  }
  return "colorful";
}

}  // namespace fairbc
