#ifndef FAIRBC_OBS_TRACE_H_
#define FAIRBC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fairbc {

/// One completed span, in microseconds since the recorder's origin.
struct TraceSpanData {
  const char* name = nullptr;
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::uint32_t tid = 0;
};

/// Bounded per-query span buffer. Emitters (reactor thread, runner
/// thread, enumeration pool workers) reserve a slot with one fetch_add
/// and publish it with one release store — no locks, no allocation after
/// construction. When the buffer fills, further spans are counted in
/// dropped() and discarded; the reserve-at-begin discipline of TraceSpan
/// means a flood of deep leaf spans can never crowd out the enclosing
/// phase spans, which reserved first.
///
/// Span names must outlive the recorder (string literals in practice).
/// Timestamps are microseconds on the steady clock since construction.
class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit TraceRecorder(std::size_t capacity = kDefaultCapacity);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Microseconds since the recorder was created (steady clock).
  double NowMicros() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - origin_)
        .count();
  }

  /// Claims a slot for a span that will be committed later; -1 when full
  /// (the span is counted as dropped).
  int Reserve() {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= capacity_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return -1;
    }
    return static_cast<int>(i);
  }

  /// Publishes a reserved slot. The tid is the calling thread's.
  void Commit(int slot, const char* name, double ts_us, double dur_us) {
    if (slot < 0) return;
    Slot& s = slots_[static_cast<std::size_t>(slot)];
    s.data.name = name;
    s.data.ts_us = ts_us;
    s.data.dur_us = dur_us;
    s.data.tid = ThreadTid();
    s.ready.store(true, std::memory_order_release);
  }

  /// Reserve + Commit in one call, for retroactively recorded spans
  /// (e.g. a phase timer that only knows its duration at scope exit).
  void Record(const char* name, double ts_us, double dur_us) {
    Commit(Reserve(), name, ts_us, dur_us);
  }

  /// Records a span of `dur_seconds` ending now.
  void RecordEnding(const char* name, double dur_seconds) {
    const double dur_us = dur_seconds * 1e6;
    const double now = NowMicros();
    Record(name, now > dur_us ? now - dur_us : 0.0, dur_us);
  }

  /// Completed spans, sorted by start time. Safe concurrently with
  /// emitters: unpublished slots are skipped.
  std::vector<TraceSpanData> Snapshot() const;

  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return capacity_; }

  /// Small dense per-recorder thread id for the calling thread (Chrome
  /// trace tid). Cached thread-locally, so it is one branch per call in
  /// the steady state.
  std::uint32_t ThreadTid();

  // Metadata stamped by the owner before the trace is published; not
  // synchronized against concurrent span emission — set them only from
  // the owning thread once the enumeration has returned.
  void set_label(std::string label) { label_ = std::move(label); }
  const std::string& label() const { return label_; }
  void set_wall_seconds(double s) { wall_seconds_ = s; }
  double wall_seconds() const { return wall_seconds_; }

 private:
  struct Slot {
    TraceSpanData data;
    std::atomic<bool> ready{false};
  };

  const std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint32_t> next_tid_{0};
  std::chrono::steady_clock::time_point origin_;
  std::string label_;
  double wall_seconds_ = 0.0;
};

/// RAII span: reserves its slot at construction (so enclosing spans
/// survive buffer exhaustion), measures wall time, commits at End() or
/// destruction. A null recorder makes every operation a no-op — the
/// disabled path costs one pointer test.
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* rec, const char* name) : rec_(rec), name_(name) {
    if (rec_ != nullptr) {
      slot_ = rec_->Reserve();
      start_us_ = rec_->NowMicros();
    }
  }
  ~TraceSpan() { End(); }

  TraceSpan(TraceSpan&& other) noexcept
      : rec_(other.rec_),
        name_(other.name_),
        slot_(other.slot_),
        start_us_(other.start_us_) {
    other.rec_ = nullptr;
  }
  TraceSpan& operator=(TraceSpan&& other) noexcept {
    if (this != &other) {
      End();
      rec_ = other.rec_;
      name_ = other.name_;
      slot_ = other.slot_;
      start_us_ = other.start_us_;
      other.rec_ = nullptr;
    }
    return *this;
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Ends the span early; idempotent.
  void End() {
    if (rec_ == nullptr) return;
    rec_->Commit(slot_, name_, start_us_, rec_->NowMicros() - start_us_);
    rec_ = nullptr;
  }

 private:
  TraceRecorder* rec_;
  const char* name_ = nullptr;
  int slot_ = -1;
  double start_us_ = 0.0;
};

/// Bounded ring of recently retained traces (the slow-query log's
/// storage). Push claims a slot with one fetch_add; the shared_ptr swap
/// itself is guarded by a per-slot mutex, touched only on the claimed
/// slot — pushes to different slots never contend.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity);

  void Push(std::shared_ptr<const TraceRecorder> trace);

  /// Up to `max_n` most recently pushed traces, newest first.
  std::vector<std::shared_ptr<const TraceRecorder>> Snapshot(
      std::size_t max_n) const;

  std::uint64_t pushed() const {
    return head_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return capacity_; }

 private:
  struct Slot {
    mutable std::mutex mu;
    std::shared_ptr<const TraceRecorder> trace;
  };

  const std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
};

/// Chrome trace-event JSON for one recorder:
///   {"label":...,"wall_ms":...,"dropped":N,"traceEvents":[
///     {"name":...,"cat":"query","ph":"X","ts":...,"dur":...,"pid":1,"tid":N},
///     ...]}
/// Loadable directly in Perfetto / chrome://tracing (extra top-level keys
/// are ignored by both).
std::string TraceEventsJson(const TraceRecorder& rec);

}  // namespace fairbc

#endif  // FAIRBC_OBS_TRACE_H_
