#include "obs/metrics_http.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.h"

namespace fairbc {

bool MetricsHttpServer::Start(std::uint16_t port, std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void MetricsHttpServer::Stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true, std::memory_order_relaxed);
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

void MetricsHttpServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (Stop) or broken; exit the thread.
    }
    // Drain whatever request line arrived; the response is the same for
    // every path, so one read is enough for well-behaved scrapers.
    char buf[4096];
    (void)::recv(fd, buf, sizeof(buf), 0);
    const std::string body = registry_->PrometheusText();
    std::string response =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: " +
        std::to_string(body.size()) +
        "\r\n"
        "Connection: close\r\n\r\n" +
        body;
    std::size_t sent = 0;
    while (sent < response.size()) {
      const ssize_t n =
          ::send(fd, response.data() + sent, response.size() - sent,
                 MSG_NOSIGNAL);
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
    ::close(fd);
  }
}

}  // namespace fairbc
