#ifndef FAIRBC_OBS_METRICS_HTTP_H_
#define FAIRBC_OBS_METRICS_HTTP_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

namespace fairbc {

class MetricsRegistry;

/// Minimal HTTP/1.0 exposition endpoint for Prometheus scrapes
/// (`--metrics-port`). One blocking accept thread; each connection gets
/// the registry's current text and is closed — deliberately outside the
/// reactor so a stuck scrape can never stall query traffic, and cheap
/// because scrape cadence is seconds, not microseconds. Any request path
/// returns the metrics (scrapers conventionally use /metrics).
class MetricsHttpServer {
 public:
  explicit MetricsHttpServer(MetricsRegistry* registry)
      : registry_(registry) {}
  ~MetricsHttpServer() { Stop(); }

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds 0.0.0.0:`port` (0 = ephemeral) and starts serving. Returns
  /// false (with a message in *error) on bind failure.
  bool Start(std::uint16_t port, std::string* error);

  /// The bound port (after Start); 0 when not running.
  std::uint16_t port() const { return port_; }

  void Stop();

 private:
  void AcceptLoop();

  MetricsRegistry* registry_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace fairbc

#endif  // FAIRBC_OBS_METRICS_HTTP_H_
