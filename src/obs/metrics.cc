#include "obs/metrics.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace fairbc {

unsigned MetricShardIndex() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id & (kMetricShards - 1);
}

static_assert((kMetricShards & (kMetricShards - 1)) == 0,
              "kMetricShards must be a power of two");

unsigned Histogram::Snapshot::QuantileBucket(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  std::uint64_t cum = 0;
  for (unsigned i = 0; i < kNumBuckets; ++i) {
    cum += buckets[i];
    if (cum >= rank) return i;
  }
  return kNumBuckets - 1;
}

double Histogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  unsigned b = QuantileBucket(q);
  if (b >= kFiniteBounds) b = kFiniteBounds - 1;
  return BucketBoundSeconds(b);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    const char* off = std::getenv("FAIRBC_OBS_OFF");
    if (off != nullptr && off[0] != '\0' && off[0] != '0') {
      r->set_enabled(false);
    }
    return r;
  }();
  return *registry;
}

MetricsRegistry::Metric* MetricsRegistry::GetOrCreate(Kind kind,
                                                      std::string_view name,
                                                      std::string_view help,
                                                      std::string_view labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = nullptr;
  for (auto& f : families_) {
    if (f->name == name) {
      family = f.get();
      break;
    }
  }
  if (family == nullptr) {
    auto f = std::make_unique<Family>();
    f->name = std::string(name);
    f->help = std::string(help);
    f->kind = kind;
    families_.push_back(std::move(f));
    family = families_.back().get();
  }
  for (auto& m : family->metrics) {
    if (m->labels == labels) return m.get();
  }
  auto m = std::make_unique<Metric>();
  m->labels = std::string(labels);
  switch (kind) {
    case Kind::kCounter:
      m->counter.reset(new Counter(&enabled_));
      break;
    case Kind::kGauge:
      m->gauge.reset(new Gauge(&enabled_));
      break;
    case Kind::kHistogram:
      m->histogram.reset(new Histogram(&enabled_));
      break;
  }
  family->metrics.push_back(std::move(m));
  return family->metrics.back().get();
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help,
                                     std::string_view labels) {
  return GetOrCreate(Kind::kCounter, name, help, labels)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view help,
                                 std::string_view labels) {
  return GetOrCreate(Kind::kGauge, name, help, labels)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help,
                                         std::string_view labels) {
  return GetOrCreate(Kind::kHistogram, name, help, labels)->histogram.get();
}

namespace {

std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// name{labels} or name{labels,extra} or name{extra} or name.
void AppendSeries(std::ostringstream& os, const std::string& name,
                  const std::string& suffix, const std::string& labels,
                  const std::string& extra) {
  os << name << suffix;
  if (!labels.empty() || !extra.empty()) {
    os << '{' << labels;
    if (!labels.empty() && !extra.empty()) os << ',';
    os << extra << '}';
  }
  os << ' ';
}

}  // namespace

std::string MetricsRegistry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& f : families_) {
    if (!f->help.empty()) os << "# HELP " << f->name << ' ' << f->help << '\n';
    os << "# TYPE " << f->name << ' '
       << (f->kind == Kind::kCounter
               ? "counter"
               : f->kind == Kind::kGauge ? "gauge" : "histogram")
       << '\n';
    for (const auto& m : f->metrics) {
      switch (f->kind) {
        case Kind::kCounter:
          AppendSeries(os, f->name, "", m->labels, "");
          os << m->counter->Value() << '\n';
          break;
        case Kind::kGauge:
          AppendSeries(os, f->name, "", m->labels, "");
          os << m->gauge->Value() << '\n';
          break;
        case Kind::kHistogram: {
          const Histogram::Snapshot snap = m->histogram->snapshot();
          std::uint64_t cum = 0;
          for (unsigned i = 0; i < Histogram::kFiniteBounds; ++i) {
            cum += snap.buckets[i];
            AppendSeries(os, f->name, "_bucket", m->labels,
                         "le=\"" +
                             FormatDouble(Histogram::BucketBoundSeconds(i)) +
                             "\"");
            os << cum << '\n';
          }
          AppendSeries(os, f->name, "_bucket", m->labels, "le=\"+Inf\"");
          os << snap.count << '\n';
          AppendSeries(os, f->name, "_sum", m->labels, "");
          os << FormatDouble(snap.sum_seconds) << '\n';
          AppendSeries(os, f->name, "_count", m->labels, "");
          os << snap.count << '\n';
          break;
        }
      }
    }
  }
  return os.str();
}

}  // namespace fairbc
