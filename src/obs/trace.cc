#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace fairbc {

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(new Slot[capacity == 0 ? 1 : capacity]),
      origin_(std::chrono::steady_clock::now()) {}

std::uint32_t TraceRecorder::ThreadTid() {
  thread_local const TraceRecorder* cached_rec = nullptr;
  thread_local std::uint32_t cached_tid = 0;
  if (cached_rec != this) {
    cached_rec = this;
    cached_tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
  }
  return cached_tid;
}

std::vector<TraceSpanData> TraceRecorder::Snapshot() const {
  const std::size_t n =
      std::min(next_.load(std::memory_order_relaxed), capacity_);
  std::vector<TraceSpanData> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!slots_[i].ready.load(std::memory_order_acquire)) continue;
    out.push_back(slots_[i].data);
  }
  std::sort(out.begin(), out.end(),
            [](const TraceSpanData& a, const TraceSpanData& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              return a.dur_us > b.dur_us;  // enclosing span first
            });
  return out;
}

TraceRing::TraceRing(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(new Slot[capacity == 0 ? 1 : capacity]) {}

void TraceRing::Push(std::shared_ptr<const TraceRecorder> trace) {
  const std::uint64_t i = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[i % capacity_];
  std::lock_guard<std::mutex> lock(slot.mu);
  slot.trace = std::move(trace);
}

std::vector<std::shared_ptr<const TraceRecorder>> TraceRing::Snapshot(
    std::size_t max_n) const {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t available =
      std::min<std::uint64_t>(head, capacity_);
  std::vector<std::shared_ptr<const TraceRecorder>> out;
  out.reserve(std::min<std::uint64_t>(available, max_n));
  for (std::uint64_t k = 0; k < available && out.size() < max_n; ++k) {
    const Slot& slot = slots_[(head - 1 - k) % capacity_];
    std::lock_guard<std::mutex> lock(slot.mu);
    if (slot.trace != nullptr) out.push_back(slot.trace);
  }
  return out;
}

namespace {

// Minimal JSON string escape (obs must not depend on the service layer).
std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatMicros(double us) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  return buf;
}

}  // namespace

std::string TraceEventsJson(const TraceRecorder& rec) {
  std::ostringstream os;
  os << "{\"label\":\"" << EscapeJson(rec.label()) << "\",\"wall_ms\":"
     << FormatMicros(rec.wall_seconds() * 1e3) << ",\"dropped\":"
     << rec.dropped() << ",\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceSpanData& s : rec.Snapshot()) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << EscapeJson(s.name != nullptr ? s.name : "")
       << "\",\"cat\":\"query\",\"ph\":\"X\",\"ts\":" << FormatMicros(s.ts_us)
       << ",\"dur\":" << FormatMicros(s.dur_us) << ",\"pid\":1,\"tid\":"
       << s.tid << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace fairbc
