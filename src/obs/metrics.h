#ifndef FAIRBC_OBS_METRICS_H_
#define FAIRBC_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace fairbc {

/// Number of per-thread shards behind every counter/gauge/histogram.
/// Threads hash onto shards by a process-wide thread index, so reactors
/// and pool workers update disjoint cache lines in the common case; the
/// scrape path sums the shards. A power of two keeps the index a mask.
inline constexpr unsigned kMetricShards = 16;

/// Process-wide thread index modulo kMetricShards. Assigned once per
/// thread on first use; stable for the thread's lifetime.
unsigned MetricShardIndex();

namespace internal {

struct alignas(64) CounterShard {
  std::atomic<std::uint64_t> value{0};
};

struct alignas(64) GaugeShard {
  std::atomic<std::int64_t> value{0};
};

}  // namespace internal

/// Monotonically increasing counter. Increment is wait-free: one relaxed
/// fetch_add on the calling thread's shard. Value() is a snapshot sum —
/// exact once all writers are quiescent, monotone under concurrency.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    shards_[MetricShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Zeroes all shards. Only for explicit telemetry resets (cache Clear);
  /// scrapes racing a Reset may observe a non-monotonic step.
  void Reset() {
    for (auto& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  internal::CounterShard shards_[kMetricShards];
  const std::atomic<bool>* enabled_;
};

/// Signed up/down gauge (connections, in-flight queries). Add(+d)/Add(-d)
/// are wait-free; Value() sums the shards.
class Gauge {
 public:
  void Add(std::int64_t delta) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    shards_[MetricShardIndex()].value.fetch_add(delta,
                                                std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  void Decrement() { Add(-1); }

  std::int64_t Value() const {
    std::int64_t total = 0;
    for (const auto& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  internal::GaugeShard shards_[kMetricShards];
  const std::atomic<bool>* enabled_;
};

/// Fixed log-bucketed latency histogram over seconds. Bucket upper bounds
/// are 2^i microseconds for i in [0, kFiniteBounds), plus +Inf — the same
/// layout for every histogram in the process, so percentiles from
/// different scrapes are always comparable. Observe() is wait-free (one
/// shard bucket add + one shard nanosecond-sum add).
class Histogram {
 public:
  /// Finite bucket bounds: 1us, 2us, ... 2^36us (~19h).
  static constexpr unsigned kFiniteBounds = 37;
  static constexpr unsigned kNumBuckets = kFiniteBounds + 1;  // + (+Inf)

  /// Bucket index for a latency in seconds (last index = +Inf bucket).
  static unsigned BucketIndex(double seconds) {
    const double us = seconds * 1e6;
    if (!(us > 1.0)) return 0;  // NaN/negative land in the first bucket.
    const double ceil_us = std::ceil(us);
    if (ceil_us >= 9.3e18) return kFiniteBounds;
    const auto u = static_cast<std::uint64_t>(ceil_us);
    const unsigned i = static_cast<unsigned>(std::bit_width(u - 1));
    return i < kFiniteBounds ? i : kFiniteBounds;
  }

  /// Upper bound of finite bucket `i`, in seconds.
  static double BucketBoundSeconds(unsigned i) {
    return static_cast<double>(std::uint64_t{1} << i) * 1e-6;
  }

  void Observe(double seconds) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    Shard& s = shards_[MetricShardIndex()];
    s.buckets[BucketIndex(seconds)].fetch_add(1, std::memory_order_relaxed);
    const double ns = seconds * 1e9;
    const std::uint64_t add =
        ns > 0 ? static_cast<std::uint64_t>(std::llround(ns)) : 0;
    s.sum_ns.fetch_add(add, std::memory_order_relaxed);
  }

  struct Snapshot {
    std::uint64_t buckets[kNumBuckets] = {};  ///< per-bucket (not cumulative)
    std::uint64_t count = 0;
    double sum_seconds = 0.0;

    /// Index of the bucket containing the q-quantile sample
    /// (rank = ceil(q * count), 1-based); 0 when empty.
    unsigned QuantileBucket(double q) const;
    /// Upper bound (seconds) of the quantile's bucket — matches a sorted-
    /// vector oracle to within one bucket by construction. For the +Inf
    /// bucket, returns the last finite bound.
    double Quantile(double q) const;
  };
  Snapshot snapshot() const {
    Snapshot out;
    for (const auto& s : shards_) {
      for (unsigned i = 0; i < kNumBuckets; ++i) {
        out.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
      }
      out.sum_seconds +=
          static_cast<double>(s.sum_ns.load(std::memory_order_relaxed)) * 1e-9;
    }
    for (unsigned i = 0; i < kNumBuckets; ++i) out.count += out.buckets[i];
    return out;
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  struct alignas(64) Shard {
    std::atomic<std::uint64_t> buckets[kNumBuckets] = {};
    std::atomic<std::uint64_t> sum_ns{0};
  };
  Shard shards_[kMetricShards];
  const std::atomic<bool>* enabled_;
};

/// Registry of named metrics with Prometheus text exposition.
///
/// Instantiable on purpose: the server process routes everything through
/// Global(), while tests and benches give each executor a private
/// registry so counts stay exact per instance. Registration
/// (GetCounter/GetGauge/GetHistogram) is mutex-guarded and idempotent —
/// the same (name, labels) returns the same metric, so two components
/// may declare the same counter. Update paths never touch the mutex.
///
/// Metrics sharing a name form one family (same HELP/TYPE, one block in
/// the exposition) and differ by their label string, e.g.
/// GetCounter("fairbc_server_errors_total", help, "code=\"busy\"").
class MetricsRegistry {
 public:
  MetricsRegistry() : enabled_(true) {}
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (the server binary's). Honors
  /// FAIRBC_OBS_OFF=1 in the environment: the registry still exists and
  /// scrapes (all zeros), but every update is a no-op.
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name, std::string_view help,
                      std::string_view labels = "");
  Gauge* GetGauge(std::string_view name, std::string_view help,
                  std::string_view labels = "");
  Histogram* GetHistogram(std::string_view name, std::string_view help,
                          std::string_view labels = "");

  /// Prometheus text exposition (version 0.0.4) of every registered
  /// metric, grouped by family in registration order. Safe to call while
  /// writers are updating.
  std::string PrometheusText() const;

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Metric {
    std::string labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string name;
    std::string help;
    Kind kind;
    std::vector<std::unique_ptr<Metric>> metrics;
  };

  Metric* GetOrCreate(Kind kind, std::string_view name, std::string_view help,
                      std::string_view labels);

  std::atomic<bool> enabled_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Family>> families_;  // registration order
};

}  // namespace fairbc

#endif  // FAIRBC_OBS_METRICS_H_
