#ifndef FAIRBC_COMMON_RANDOM_H_
#define FAIRBC_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/status.h"

namespace fairbc {

/// Deterministic random source. All stochastic pieces of the library
/// (generators, attribute assignment, edge sampling) draw from an explicit
/// Rng so experiments are reproducible from a seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [0, bound). `bound` must be positive.
  std::uint64_t NextUInt64(std::uint64_t bound) {
    FAIRBC_CHECK(bound > 0);
    return std::uniform_int_distribution<std::uint64_t>(0, bound - 1)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi) {
    FAIRBC_CHECK(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli draw.
  bool NextBool(double p_true) { return NextDouble() < p_true; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = NextUInt64(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Samples `k` distinct values from [0, n) (k <= n), order unspecified.
  std::vector<std::uint32_t> SampleWithoutReplacement(std::uint32_t n,
                                                      std::uint32_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

inline std::vector<std::uint32_t> Rng::SampleWithoutReplacement(
    std::uint32_t n, std::uint32_t k) {
  FAIRBC_CHECK(k <= n);
  // Floyd's algorithm: O(k) expected inserts without touching all of [0,n).
  std::vector<std::uint32_t> picked;
  picked.reserve(k);
  std::vector<bool> in_set;
  // For small n a bitmap is cheaper and simpler than a hash set.
  in_set.assign(n, false);
  for (std::uint32_t j = n - k; j < n; ++j) {
    auto t = static_cast<std::uint32_t>(NextUInt64(j + 1));
    if (in_set[t]) t = j;
    in_set[t] = true;
    picked.push_back(t);
  }
  return picked;
}

}  // namespace fairbc

#endif  // FAIRBC_COMMON_RANDOM_H_
