#include "common/status.h"

namespace fairbc {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kCorruptInput:
      return "CORRUPT_INPUT";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace fairbc
