#ifndef FAIRBC_COMMON_STATUS_H_
#define FAIRBC_COMMON_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>

namespace fairbc {

/// Error category for expected failures (IO, malformed input, bad
/// arguments). Programming errors use FAIRBC_CHECK instead.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kCorruptInput = 3,
  kOutOfRange = 4,
  kInternal = 5,
};

const char* StatusCodeToString(StatusCode code);

/// Lightweight status object used across the public API instead of
/// exceptions (see DESIGN.md conventions). Cheap to copy in the OK case.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status CorruptInput(std::string msg) {
    return Status(StatusCode::kCorruptInput, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" form.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Minimal expected-value wrapper: either a value or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}        // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status without value");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return value_;
  }
  T& value() & {
    CheckOk();
    return value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(value_);
  }

 private:
  void CheckOk() const {
    if (!status_.ok()) {
      std::cerr << "Result accessed with error: " << status_.ToString() << "\n";
      std::abort();
    }
  }

  T value_{};
  Status status_;
};

/// Fatal invariant check; prints and aborts. Used for programming errors
/// only, never for data-dependent failures.
#define FAIRBC_CHECK(cond)                                                    \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::cerr << "FAIRBC_CHECK failed at " << __FILE__ << ":" << __LINE__   \
                << ": " #cond << std::endl;                                   \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define FAIRBC_RETURN_IF_ERROR(expr)              \
  do {                                            \
    ::fairbc::Status _st = (expr);                \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace fairbc

#endif  // FAIRBC_COMMON_STATUS_H_
