#include "common/flags.h"

#include <cstdlib>

namespace fairbc {

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) {
      return Status::InvalidArgument("bare '--' is not a valid flag");
    }
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      std::string name = body.substr(0, eq);
      if (name.empty()) {
        return Status::InvalidArgument("flag with empty name: " + arg);
      }
      values_[name] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
  return Status::OK();
}

bool FlagParser::Has(const std::string& name) const {
  queried_[name] = true;
  return values_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  queried_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

std::int64_t FlagParser::GetInt(const std::string& name,
                                std::int64_t default_value) const {
  queried_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  std::int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') return default_value;
  return v;
}

double FlagParser::GetDouble(const std::string& name,
                             double default_value) const {
  queried_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') return default_value;
  return v;
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  queried_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> FlagParser::UnusedFlags() const {
  std::vector<std::string> unused;
  for (const auto& [name, value] : values_) {
    if (queried_.count(name) == 0) unused.push_back(name);
  }
  return unused;
}

}  // namespace fairbc
