#ifndef FAIRBC_COMMON_TIMER_H_
#define FAIRBC_COMMON_TIMER_H_

#include <chrono>

namespace fairbc {

/// Monotonic wall-clock stopwatch used by the experiment harness.
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Soft deadline used to emulate the paper's 24h "INF" timeout at laptop
/// scale. A zero budget means "no limit".
class Deadline {
 public:
  explicit Deadline(double budget_seconds) : budget_seconds_(budget_seconds) {}

  bool Expired() const {
    return budget_seconds_ > 0 && timer_.ElapsedSeconds() >= budget_seconds_;
  }

  double budget_seconds() const { return budget_seconds_; }

 private:
  double budget_seconds_;
  Timer timer_;
};

}  // namespace fairbc

#endif  // FAIRBC_COMMON_TIMER_H_
