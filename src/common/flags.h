#ifndef FAIRBC_COMMON_FLAGS_H_
#define FAIRBC_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace fairbc {

/// Minimal command-line flag parser for the CLI tool and ad-hoc
/// experiment drivers. Accepts `--name=value`, `--name value` and bare
/// `--name` (boolean true); everything else is a positional argument.
class FlagParser {
 public:
  /// Parses argv; returns an error for malformed flags (empty names).
  Status Parse(int argc, const char* const* argv);

  bool Has(const std::string& name) const;

  /// Typed getters with defaults; parse errors fall back to the default.
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  std::int64_t GetInt(const std::string& name,
                      std::int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags present on the command line but never queried; lets the CLI
  /// reject typos.
  std::vector<std::string> UnusedFlags() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace fairbc

#endif  // FAIRBC_COMMON_FLAGS_H_
