#ifndef FAIRBC_COMMON_TYPES_H_
#define FAIRBC_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace fairbc {

/// Vertex identifier within one side of a bipartite graph. Ids are dense
/// and zero-based; the upper and lower sides have independent id spaces.
using VertexId = std::uint32_t;

/// Index into edge arrays (CSR offsets). 64-bit so graphs with more than
/// 4B edges are representable even though the reproduction runs far below.
using EdgeIndex = std::uint64_t;

/// Attribute value identifier; attribute domains are dense `[0, n)`.
using AttrId = std::uint16_t;

inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();

/// Which side of the bipartite graph a vertex set refers to.
enum class Side : std::uint8_t {
  kUpper = 0,  ///< `U(G)` in the paper.
  kLower = 1,  ///< `V(G)` in the paper (the default fair side).
};

/// Returns the opposite side.
inline constexpr Side Opposite(Side s) {
  return s == Side::kUpper ? Side::kLower : Side::kUpper;
}

inline constexpr const char* ToString(Side s) {
  return s == Side::kUpper ? "upper" : "lower";
}

}  // namespace fairbc

#endif  // FAIRBC_COMMON_TYPES_H_
