#include "common/memory.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

namespace fairbc {

namespace {

std::uint64_t ReadStatusFieldKb(const char* field) {
  std::ifstream in("/proc/self/status");
  if (!in.is_open()) return 0;
  std::string line;
  const std::size_t field_len = std::strlen(field);
  while (std::getline(in, line)) {
    if (line.compare(0, field_len, field) == 0) {
      std::istringstream iss(line.substr(field_len));
      std::uint64_t kb = 0;
      iss >> kb;
      return kb;
    }
  }
  return 0;
}

}  // namespace

std::uint64_t PeakRssBytes() {
  // VmHWM is missing on some restricted kernels; fall back to the current
  // RSS so callers always get a usable lower bound of the peak.
  std::uint64_t hwm = ReadStatusFieldKb("VmHWM:");
  if (hwm == 0) hwm = ReadStatusFieldKb("VmRSS:");
  return hwm * 1024;
}

std::uint64_t CurrentRssBytes() { return ReadStatusFieldKb("VmRSS:") * 1024; }

std::string HumanBytes(std::uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f %s", value, units[unit]);
  return buf;
}

}  // namespace fairbc
