#ifndef FAIRBC_COMMON_MEMORY_H_
#define FAIRBC_COMMON_MEMORY_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace fairbc {

/// Peak resident set size of this process in bytes (VmHWM from
/// /proc/self/status). Returns 0 when unavailable.
std::uint64_t PeakRssBytes();

/// Current resident set size in bytes (VmRSS). Returns 0 when unavailable.
std::uint64_t CurrentRssBytes();

/// Manual accounting of algorithm-owned data structures, used by the
/// Fig. 8 memory-overhead experiment which reports algorithm memory
/// *excluding* the input graph, exactly as the paper does.
class MemoryMeter {
 public:
  void Add(std::size_t bytes) {
    bytes_ += bytes;
    if (bytes_ > peak_) peak_ = bytes_;
  }
  void Sub(std::size_t bytes) { bytes_ = bytes > bytes_ ? 0 : bytes_ - bytes; }

  std::size_t current_bytes() const { return bytes_; }
  std::size_t peak_bytes() const { return peak_; }
  void Reset() { bytes_ = peak_ = 0; }

 private:
  std::size_t bytes_ = 0;
  std::size_t peak_ = 0;
};

/// Pretty-prints a byte count ("12.4 MB").
std::string HumanBytes(std::uint64_t bytes);

}  // namespace fairbc

#endif  // FAIRBC_COMMON_MEMORY_H_
