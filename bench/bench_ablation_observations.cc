// Ablation A2 (DESIGN.md): contribution of each FairBCEM search-pruning
// rule (paper Observations 2, 4, 5 and the candidate alpha-filter) to
// the search size and runtime, on Youtube at default parameters.

#include <iostream>

#include "bench_util/datasets.h"
#include "bench_util/table.h"
#include "common/timer.h"
#include "core/pipeline.h"

namespace {

void Run(const fairbc::NamedGraph& data, const std::string& label,
         const fairbc::FairBcemSearchOptions& search,
         fairbc::TextTable& table) {
  fairbc::EnumOptions options;
  options.time_budget_seconds = 10.0;
  fairbc::CountSink sink;
  fairbc::Timer timer;
  fairbc::EnumStats stats = fairbc::EnumerateSSFBCWithSearchOptions(
      data.graph, data.spec.ss_defaults, options, search, sink.AsSink());
  table.AddRow({label, fairbc::TextTable::Num(stats.search_nodes),
                fairbc::TextTable::Seconds(timer.ElapsedSeconds(),
                                           stats.budget_exhausted),
                fairbc::TextTable::Num(sink.count())});
}

}  // namespace

int main() {
  fairbc::NamedGraph data = fairbc::LoadDataset("youtube");
  std::cout << "Dataset: " << data.graph.DebugString() << "\n";
  fairbc::PrintBanner(std::cout,
                      "Ablation: FairBCEM search-pruning rules (youtube)");
  fairbc::TextTable table({"configuration", "search nodes", "time (s)",
                           "#SSFBC"});

  fairbc::FairBcemSearchOptions all;
  Run(data, "all rules on (FairBCEM)", all, table);

  fairbc::FairBcemSearchOptions s = all;
  s.prune_small_l = false;
  Run(data, "- Obs.5 |L|>=alpha kill", s, table);

  s = all;
  s.prune_excluded_full = false;
  Run(data, "- Obs.2 excluded-full kill", s, table);

  s = all;
  s.prune_class_counts = false;
  Run(data, "- Obs.5 class-count kill", s, table);

  s = all;
  s.absorb_full_candidates = false;
  Run(data, "- Obs.4 absorb shortcut", s, table);

  s = all;
  s.filter_candidates_alpha = false;
  Run(data, "- candidate alpha-filter", s, table);

  Run(data, "all rules off (NSF)", fairbc::NaiveSearchOptions(), table);
  table.Print(std::cout);
  std::cout << "\nShape check: result counts identical in every row (the\n"
               "rules are lossless); search nodes and time grow as rules\n"
               "are removed, exploding for the NSF configuration.\n";
  return 0;
}
