// Snapshot codec bench: compressed (v3) size ratio and decode
// throughput against the raw v2 loaders, JSON to stdout.
//
// For each generator family and block size the bench writes the same
// graph as v2 and v3 and times, over the uncompressed payload size (so
// every MB/s figure shares one denominator):
//   - v2 eager load (ReadSnapshot: bulk reads + checksum)
//   - v2 mmap view  (ReadSnapshotView: map + checksum walk, zero copy)
//   - v3 eager load (ReadSnapshot: stream-decompress everything)
//   - v3 lazy open  (SnapshotReader::Open: metadata + offsets/attrs only)
//   - v3 point lookups (DecodeNeighbors on random vertices — the
//     hot-graph path that decodes one block per hit)
//
// The crossover this documents: the mmap view is near-free on a warm
// page cache, so on local disk v2 always loads faster — v3 wins when
// bytes are the constraint (cold object storage, network transfer,
// many resident snapshots): ratio x smaller files against decode at
// `v3_eager_mb_s` MB/s. A storage medium slower than roughly
// (1 - 1/ratio) * v3_eager_mb_s MB/s makes the compressed load faster
// end to end; the JSON carries both numbers so the reader can place
// their own hardware on either side.
//
// FAIRBC_SCALE scales the graph sizes (default 1.0).

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util/datasets.h"
#include "bench_util/meta.h"
#include "common/random.h"
#include "common/status.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "graph/snapshot.h"

namespace {

constexpr std::uint64_t kSeed = 7;

std::string TempPath(const std::string& name) {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr ? tmp : "/tmp") + "/" + name;
}

double MbPerSecond(std::uint64_t bytes, double seconds) {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(bytes) / 1e6 / seconds;
}

struct Family {
  const char* name;
  fairbc::BipartiteGraph graph;
};

std::vector<Family> MakeFamilies(double scale) {
  const auto nu = static_cast<fairbc::VertexId>(20000 * scale);
  const auto nv = static_cast<fairbc::VertexId>(20000 * scale);
  const auto edges = static_cast<fairbc::EdgeIndex>(400000 * scale);
  std::vector<Family> families;
  families.push_back(
      {"uniform", fairbc::MakeUniformRandom(nu, nv, edges, 3, kSeed)});
  families.push_back(
      {"powerlaw", fairbc::MakePowerLaw(nu, nv, edges, 2.2, 3, kSeed)});
  fairbc::AffiliationConfig config;
  config.num_upper = nu;
  config.num_lower = nv;
  config.num_communities = static_cast<std::uint32_t>(600 * scale);
  config.seed = kSeed;
  families.push_back({"affiliation", fairbc::MakeAffiliation(config)});
  return families;
}

}  // namespace

int main() {
  const double scale = fairbc::EnvScale();
  auto families = MakeFamilies(scale);
  const auto meta = fairbc::CollectRunMetadata(kSeed);

  std::cout << "{\n  \"bench\": \"snapshot_codec\",\n  \"meta\": "
            << fairbc::RunMetadataJson(meta) << ",\n  \"rows\": [\n";
  bool first_row = true;
  for (const Family& family : families) {
    const fairbc::BipartiteGraph& g = family.graph;
    const std::string v2_path = TempPath("bench_codec_v2.snap");
    if (!fairbc::WriteSnapshot(g, v2_path).ok()) return 1;
    auto v2_info = fairbc::ProbeSnapshot(v2_path);
    if (!v2_info.ok()) return 1;
    const std::uint64_t payload = v2_info.value().file_bytes;

    // v2 baselines, once per family (block size does not apply).
    fairbc::Timer timer;
    auto v2_eager = fairbc::ReadSnapshot(v2_path);
    const double v2_eager_s = timer.ElapsedSeconds();
    if (!v2_eager.ok()) return 1;
    timer.Restart();
    auto v2_view = fairbc::ReadSnapshotView(v2_path);
    const double v2_view_s = timer.ElapsedSeconds();
    if (!v2_view.ok() || !v2_view.value().IsView()) return 1;

    for (const std::uint32_t block_edges :
         {256u, 1024u, fairbc::kDefaultSnapshotBlockEdges, 16384u}) {
      const std::string v3_path = TempPath("bench_codec_v3.snap");
      fairbc::SnapshotWriteOptions options;
      options.version = fairbc::kSnapshotVersionCompressed;
      options.block_edges = block_edges;
      timer.Restart();
      if (!fairbc::WriteSnapshot(g, v3_path, options).ok()) return 1;
      const double encode_s = timer.ElapsedSeconds();
      auto v3_info = fairbc::ProbeSnapshot(v3_path);
      if (!v3_info.ok()) return 1;
      const std::uint64_t v3_bytes = v3_info.value().file_bytes;

      timer.Restart();
      auto v3_eager = fairbc::ReadSnapshot(v3_path);
      const double v3_eager_s = timer.ElapsedSeconds();
      if (!v3_eager.ok()) return 1;

      timer.Restart();
      auto reader = fairbc::SnapshotReader::Open(v3_path);
      const double v3_open_s = timer.ElapsedSeconds();
      if (!reader.ok()) return 1;

      // Point lookups: random vertices on alternating sides, one block
      // decode each — the resident-hot-graph access pattern.
      constexpr unsigned kLookups = 2000;
      fairbc::Rng rng(kSeed);
      std::vector<fairbc::VertexId> neighbors;
      std::uint64_t touched_edges = 0;
      timer.Restart();
      for (unsigned i = 0; i < kLookups; ++i) {
        const fairbc::Side side =
            (i & 1) == 0 ? fairbc::Side::kUpper : fairbc::Side::kLower;
        const auto n = side == fairbc::Side::kUpper ? g.NumUpper()
                                                    : g.NumLower();
        const auto v = static_cast<fairbc::VertexId>(rng.NextUInt64(n));
        if (!reader.value().DecodeNeighbors(side, v, &neighbors).ok()) {
          return 1;
        }
        touched_edges += neighbors.size();
      }
      const double lookup_s = timer.ElapsedSeconds();

      const double ratio =
          v3_bytes == 0
              ? 0.0
              : static_cast<double>(payload) / static_cast<double>(v3_bytes);
      std::cout << (first_row ? "" : ",\n") << "    {\"family\": \""
                << family.name << "\", \"edges\": " << g.NumEdges()
                << ", \"block_edges\": " << block_edges
                << ", \"v2_bytes\": " << payload
                << ", \"v3_bytes\": " << v3_bytes << ", \"ratio\": " << ratio
                << ", \"encode_s\": " << encode_s
                << ", \"v2_eager_mb_s\": " << MbPerSecond(payload, v2_eager_s)
                << ", \"v2_mmap_mb_s\": " << MbPerSecond(payload, v2_view_s)
                << ", \"v3_eager_mb_s\": " << MbPerSecond(payload, v3_eager_s)
                << ", \"v3_open_s\": " << v3_open_s
                << ", \"lookups_per_s\": "
                << (lookup_s > 0.0 ? kLookups / lookup_s : 0.0)
                << ", \"lookup_edges_per_s\": "
                << (lookup_s > 0.0 ? touched_edges / lookup_s : 0.0) << "}";
      first_row = false;
      std::remove(v3_path.c_str());
    }
    std::remove(v2_path.c_str());
  }
  std::cout << "\n  ]\n}\n";
  return 0;
}
