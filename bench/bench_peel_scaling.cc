// Parallel scaling of the graph-reduction phase: wall-clock for CFCore
// and BCFCore at 1/2/4/8 peeling threads on a fixed synthetic
// affiliation graph, emitted as JSON so the perf trajectory is
// machine-readable across PRs. Every parallel run is checked against the
// serial masks — the core is a unique fixpoint, so any divergence is a
// bug, not noise.
//
// Expected shape on a multi-core host: the degree init and the early
// frontier rounds scale near-linearly (they are embarrassingly parallel
// over vertices/removals); the tail rounds with tiny frontiers do not,
// so speedup saturates below the ideal. On a single-core host every row
// reports speedup ~1.0 and the run only measures round-barrier overhead.
//
// FAIRBC_SCALE scales the graph (default 1.0); FAIRBC_MAX_THREADS caps
// the sweep (default 8).

#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/datasets.h"
#include "bench_util/meta.h"
#include "common/timer.h"
#include "core/cfcore.h"
#include "core/parallel.h"
#include "core/reduction_context.h"
#include "graph/generators.h"

namespace {

using fairbc::BipartiteGraph;
using fairbc::PruneResult;
using fairbc::ReductionContext;
using fairbc::ReductionPhaseTimes;
using fairbc::VertexId;

struct Run {
  unsigned threads;
  double seconds;
  ReductionPhaseTimes phases;
};

bool SameMasks(const fairbc::SideMasks& a, const fairbc::SideMasks& b) {
  return a.upper_alive == b.upper_alive && a.lower_alive == b.lower_alive;
}

void EmitEngine(std::ostream& os, const BipartiteGraph& g,
                const std::string& name, bool bi_side, std::uint32_t alpha,
                std::uint32_t beta, unsigned max_threads, bool last) {
  auto run_once = [&](ReductionContext& ctx) {
    return bi_side ? fairbc::BCFCore(g, alpha, beta, &ctx)
                   : fairbc::CFCore(g, alpha, beta, &ctx);
  };

  PruneResult reference;
  std::vector<Run> runs;
  for (unsigned threads = 1; threads <= max_threads; threads *= 2) {
    // Best of two runs per point to damp scheduler noise; the context
    // (and its pool) is constructed outside the timed region like the
    // pipeline does. The context's phase timers provide the
    // construct/color/peel breakdown of the winning rep.
    double seconds = 0.0;
    ReductionPhaseTimes phases;
    PruneResult result;
    for (int rep = 0; rep < 2; ++rep) {
      ReductionContext ctx(threads);
      fairbc::Timer timer;
      result = run_once(ctx);
      const double elapsed = timer.ElapsedSeconds();
      if (rep == 0 || elapsed < seconds) {
        seconds = elapsed;
        phases = ctx.times();
      }
    }
    if (threads == 1) {
      reference = result;
    } else if (!SameMasks(reference.masks, result.masks)) {
      std::cerr << "ERROR: " << name << " masks changed with threads="
                << threads << "\n";
      std::exit(1);
    }
    runs.push_back({threads, seconds, phases});
  }

  const VertexId alive_upper = reference.masks.CountAlive(fairbc::Side::kUpper);
  const VertexId alive_lower = reference.masks.CountAlive(fairbc::Side::kLower);
  os << "    {\"engine\": \"" << name << "\", \"alive_upper\": " << alive_upper
     << ", \"alive_lower\": " << alive_lower << ", \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    os << "      {\"threads\": " << runs[i].threads
       << ", \"seconds\": " << runs[i].seconds
       << ", \"speedup\": " << runs[0].seconds / runs[i].seconds
       << ", \"construct\": " << runs[i].phases.construct_seconds
       << ", \"color\": " << runs[i].phases.color_seconds
       << ", \"peel\": " << runs[i].phases.peel_seconds << "}"
       << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  os << "    ]}" << (last ? "" : ",") << "\n";
}

}  // namespace

int main() {
  const double scale = fairbc::EnvScale();
  unsigned max_threads = 8;
  if (const char* env = std::getenv("FAIRBC_MAX_THREADS")) {
    max_threads = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    if (max_threads == 0) max_threads = 1;
  }

  // Larger and noisier than the search-scaling graph: reduction cost is
  // dominated by degree init + 2-hop construction + peel rounds, all of
  // which need volume (not search-tree depth) to show up.
  fairbc::AffiliationConfig config;
  config.num_upper = static_cast<VertexId>(6000 * scale);
  config.num_lower = static_cast<VertexId>(6000 * scale);
  config.num_communities = static_cast<std::uint32_t>(220 * scale);
  config.community_upper_max = 24;
  config.community_lower_max = 24;
  config.noise_fraction = 0.5;
  config.seed = 11;
  BipartiteGraph g = fairbc::MakeAffiliation(config);

  const std::uint32_t alpha = 2, beta = 2;

  std::cout << "{\n  \"bench\": \"peel_scaling\",\n"
            << "  \"meta\": "
            << fairbc::RunMetadataJson(fairbc::CollectRunMetadata(config.seed))
            << ",\n"
            << "  \"hardware_threads\": "
            << std::thread::hardware_concurrency() << ",\n"
            << "  \"graph\": {\"upper\": " << g.NumUpper()
            << ", \"lower\": " << g.NumLower()
            << ", \"edges\": " << g.NumEdges() << "},\n"
            << "  \"params\": {\"alpha\": " << alpha << ", \"beta\": " << beta
            << "},\n"
            << "  \"engines\": [\n";
  EmitEngine(std::cout, g, "cfcore", /*bi_side=*/false, alpha, beta,
             max_threads, /*last=*/false);
  EmitEngine(std::cout, g, "bcfcore", /*bi_side=*/true, alpha, beta,
             max_threads, /*last=*/true);
  std::cout << "  ]\n}\n";
  return 0;
}
