// Reproduces Fig. 11: the number of proportion fair bicliques (PSSFBC
// and PBSFBC) on Youtube while varying theta.
//
// Paper shape: counts increase as theta approaches 0.5 (more bicliques
// satisfy the proportion definition because maximal fair subsets become
// smaller and more numerous); at theta = 0.5 the problem degenerates to
// delta = 0.

#include <iostream>

#include "bench_util/datasets.h"
#include "bench_util/sweep.h"
#include "bench_util/table.h"

int main() {
  using fairbc::TextTable;
  fairbc::NamedGraph data = fairbc::LoadDataset("youtube");
  std::cout << "Dataset: " << data.graph.DebugString() << "\n";
  fairbc::EnumOptions options;
  options.time_budget_seconds = fairbc::BenchTimeBudget();

  fairbc::PrintBanner(std::cout, "Fig. 11(a): youtube #PSSFBC (vary theta)");
  TextTable ss_table({"theta", "#PSSFBC"});
  for (double theta : {0.30, 0.35, 0.40, 0.45, 0.50}) {
    auto p = data.spec.ss_defaults;
    p.theta = theta;
    auto run = RunCounting(fairbc::AlgoFairBCEMpp(), data.graph, p, options);
    ss_table.AddRow({TextTable::Double(theta, 2), TextTable::Num(run.count)});
  }
  ss_table.Print(std::cout);

  fairbc::PrintBanner(std::cout, "Fig. 11(b): youtube #PBSFBC (vary theta)");
  TextTable bs_table({"theta", "#PBSFBC"});
  for (double theta : {0.30, 0.35, 0.40, 0.45, 0.50}) {
    auto p = data.spec.bs_defaults;
    p.theta = theta;
    auto run = RunCounting(fairbc::AlgoBFairBCEMpp(), data.graph, p, options);
    bs_table.AddRow({TextTable::Double(theta, 2), TextTable::Num(run.count)});
  }
  bs_table.Print(std::cout);

  std::cout << "\nShape check (paper Fig. 11): counts rise with theta.\n";
  return 0;
}
