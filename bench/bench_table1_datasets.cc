// Reproduces Table I: dataset statistics and default parameters.
//
// Paper shape: five bipartite graphs of increasing size, density in the
// 1e-6 .. 1e-4 range, delta* = 2, theta* = 0.4. Our graphs are synthetic
// laptop-scale stand-ins (DESIGN.md §4) with the same relative ordering.

#include <iostream>

#include "bench_util/datasets.h"
#include "bench_util/table.h"

int main() {
  using fairbc::TextTable;
  fairbc::PrintBanner(std::cout, "Table I: datasets and parameters");
  TextTable table({"Dataset", "|U|", "|V|", "|E|", "Density", "a*_s", "b*_s",
                   "a*_b", "b*_b", "d*", "th*"});
  for (const auto& d : fairbc::LoadStandardDatasets()) {
    char density[32];
    std::snprintf(density, sizeof(density), "%.2e", d.graph.Density());
    table.AddRow({d.spec.name, TextTable::Num(d.graph.NumUpper()),
                  TextTable::Num(d.graph.NumLower()),
                  TextTable::Num(d.graph.NumEdges()), density,
                  TextTable::Num(d.spec.ss_defaults.alpha),
                  TextTable::Num(d.spec.ss_defaults.beta),
                  TextTable::Num(d.spec.bs_defaults.alpha),
                  TextTable::Num(d.spec.bs_defaults.beta),
                  TextTable::Num(d.spec.ss_defaults.delta), "0.4"});
  }
  table.Print(std::cout);
  std::cout << "\nShape check (paper Table I): sizes increase from youtube\n"
               "to dblp and density decreases; delta*=2, theta*=0.4.\n";
  return 0;
}
