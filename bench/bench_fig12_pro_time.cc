// Reproduces Fig. 12: runtime of FairBCEMPro++ and BFairBCEMPro++ on
// Youtube while varying theta.
//
// Paper shape: runtime increases mildly as theta approaches 0.5, driven
// by the growing number of proportion fair bicliques (Fig. 11).

#include <iostream>

#include "bench_util/datasets.h"
#include "bench_util/sweep.h"
#include "bench_util/table.h"

int main() {
  using fairbc::TextTable;
  fairbc::NamedGraph data = fairbc::LoadDataset("youtube");
  std::cout << "Dataset: " << data.graph.DebugString() << "\n";
  fairbc::EnumOptions options;
  options.time_budget_seconds = fairbc::BenchTimeBudget();

  fairbc::PrintBanner(std::cout,
                      "Fig. 12(a): youtube FairBCEMPro++ (vary theta)");
  TextTable ss_table({"theta", "time (s)", "#PSSFBC"});
  for (double theta : {0.30, 0.35, 0.40, 0.45, 0.50}) {
    auto p = data.spec.ss_defaults;
    p.theta = theta;
    auto run = RunCounting(fairbc::AlgoFairBCEMpp(), data.graph, p, options);
    ss_table.AddRow({TextTable::Double(theta, 2),
                     TextTable::Seconds(run.seconds, run.timed_out),
                     TextTable::Num(run.count)});
  }
  ss_table.Print(std::cout);

  fairbc::PrintBanner(std::cout,
                      "Fig. 12(b): youtube BFairBCEMPro++ (vary theta)");
  TextTable bs_table({"theta", "time (s)", "#PBSFBC"});
  for (double theta : {0.30, 0.35, 0.40, 0.45, 0.50}) {
    auto p = data.spec.bs_defaults;
    p.theta = theta;
    auto run = RunCounting(fairbc::AlgoBFairBCEMpp(), data.graph, p, options);
    bs_table.AddRow({TextTable::Double(theta, 2),
                     TextTable::Seconds(run.seconds, run.timed_out),
                     TextTable::Num(run.count)});
  }
  bs_table.Print(std::cout);

  std::cout << "\nShape check (paper Fig. 12): time rises with theta along\n"
               "with the result counts.\n";
  return 0;
}
