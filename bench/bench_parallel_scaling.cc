// Parallel scaling of the ++ engines: wall-clock for SSFBC++ and BSFBC++
// at 1/2/4/8 worker threads on a fixed synthetic affiliation graph,
// emitted as JSON so the perf trajectory is machine-readable across PRs.
//
// Expected shape on a multi-core host: near-linear speedup while the
// thread count stays at or below the physical cores (root branches
// dominate and steal-balancing keeps workers busy), flattening once
// threads exceed cores. On a single-core host every row reports
// speedup ~1.0 and the run only measures fan-out overhead.
//
// FAIRBC_SCALE scales the graph (default 1.0); FAIRBC_MAX_THREADS caps
// the sweep (default 8).

#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/datasets.h"
#include "bench_util/meta.h"
#include "common/timer.h"
#include "core/pipeline.h"
#include "graph/generators.h"

namespace {

using fairbc::BipartiteGraph;
using fairbc::EnumOptions;
using fairbc::EnumStats;
using fairbc::FairBicliqueParams;

struct Run {
  unsigned threads;
  double seconds;
  std::uint64_t results;
};

double RunOnce(const fairbc::BipartiteGraph& g,
               const FairBicliqueParams& params, unsigned threads,
               bool bi_side, std::uint64_t* count) {
  EnumOptions options;
  options.num_threads = threads;
  fairbc::CountSink sink;
  fairbc::Timer timer;
  EnumStats stats = bi_side
                        ? fairbc::EnumerateBSFBCPlusPlus(g, params, options,
                                                         sink.AsSink())
                        : fairbc::EnumerateSSFBCPlusPlus(g, params, options,
                                                         sink.AsSink());
  double seconds = timer.ElapsedSeconds();
  (void)stats;
  *count = sink.count();
  return seconds;
}

void EmitEngine(std::ostream& os, const BipartiteGraph& g,
                const std::string& name, const FairBicliqueParams& params,
                bool bi_side, unsigned max_threads, bool last) {
  std::vector<Run> runs;
  std::uint64_t reference_count = 0;
  for (unsigned threads = 1; threads <= max_threads; threads *= 2) {
    std::uint64_t count = 0;
    // Best of two runs per point to damp scheduler noise.
    double seconds = RunOnce(g, params, threads, bi_side, &count);
    std::uint64_t count2 = 0;
    seconds = std::min(seconds, RunOnce(g, params, threads, bi_side, &count2));
    if (threads == 1) reference_count = count;
    if (count != reference_count || count2 != reference_count) {
      std::cerr << "ERROR: " << name << " result count changed with threads="
                << threads << " (" << count << "/" << count2 << " vs "
                << reference_count << ")\n";
      std::exit(1);
    }
    runs.push_back({threads, seconds, count});
  }
  os << "    {\"engine\": \"" << name << "\", \"results\": "
     << reference_count << ", \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    os << "      {\"threads\": " << runs[i].threads
       << ", \"seconds\": " << runs[i].seconds
       << ", \"speedup\": " << runs[0].seconds / runs[i].seconds << "}"
       << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  os << "    ]}" << (last ? "" : ",") << "\n";
}

}  // namespace

int main() {
  const double scale = fairbc::EnvScale();
  unsigned max_threads = 8;
  if (const char* env = std::getenv("FAIRBC_MAX_THREADS")) {
    max_threads = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    if (max_threads == 0) max_threads = 1;
  }

  fairbc::AffiliationConfig config;
  config.num_upper = static_cast<fairbc::VertexId>(1500 * scale);
  config.num_lower = static_cast<fairbc::VertexId>(1500 * scale);
  config.num_communities = static_cast<std::uint32_t>(90 * scale);
  config.community_upper_max = 20;
  config.community_lower_max = 20;
  config.seed = 7;
  BipartiteGraph g = fairbc::MakeAffiliation(config);

  FairBicliqueParams params{2, 2, 1, 0.0};

  std::cout << "{\n  \"bench\": \"parallel_scaling\",\n"
            << "  \"meta\": "
            << fairbc::RunMetadataJson(fairbc::CollectRunMetadata(config.seed))
            << ",\n"
            << "  \"hardware_threads\": "
            << std::thread::hardware_concurrency() << ",\n"
            << "  \"graph\": {\"upper\": " << g.NumUpper()
            << ", \"lower\": " << g.NumLower()
            << ", \"edges\": " << g.NumEdges() << "},\n"
            << "  \"params\": {\"alpha\": " << params.alpha
            << ", \"beta\": " << params.beta
            << ", \"delta\": " << params.delta << "},\n"
            << "  \"engines\": [\n";
  EmitEngine(std::cout, g, "ssfbc_pp", params, /*bi_side=*/false, max_threads,
             /*last=*/false);
  EmitEngine(std::cout, g, "bsfbc_pp", params, /*bi_side=*/true, max_threads,
             /*last=*/true);
  std::cout << "  ]\n}\n";
  return 0;
}
