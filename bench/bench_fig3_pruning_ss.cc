// Reproduces Fig. 3: pruning power and cost of FCore vs CFCore for
// single-side fair biclique enumeration on IMDB, varying alpha and beta.
//
// Paper shape: both reductions shrink the graph by orders of magnitude;
// CFCore leaves fewer vertices than FCore (especially at small
// alpha/beta) at slightly higher pruning time; remaining nodes decrease
// as alpha or beta grows.

#include <iostream>

#include "bench_util/datasets.h"
#include "bench_util/table.h"
#include "common/timer.h"
#include "core/cfcore.h"
#include "core/fcore.h"

namespace {

using fairbc::TextTable;

void SweepPruning(const fairbc::BipartiteGraph& g, const std::string& name,
                  const std::vector<std::pair<std::uint32_t, std::uint32_t>>&
                      param_grid,
                  const std::string& param_name,
                  const std::vector<std::uint32_t>& values) {
  fairbc::PrintBanner(std::cout,
                      "Fig. 3: " + name + " (vary " + param_name + ")");
  TextTable table({param_name, "FCore nodes", "CFCore nodes", "FCore (s)",
                   "CFCore (s)"});
  for (std::size_t i = 0; i < param_grid.size(); ++i) {
    auto [alpha, beta] = param_grid[i];
    fairbc::Timer t1;
    fairbc::SideMasks fcore = fairbc::FCore(g, alpha, beta);
    double fcore_s = t1.ElapsedSeconds();
    std::uint64_t fcore_nodes = fcore.CountAlive(fairbc::Side::kUpper) +
                                fcore.CountAlive(fairbc::Side::kLower);
    fairbc::Timer t2;
    fairbc::PruneResult cf = fairbc::CFCore(g, alpha, beta);
    double cf_s = t2.ElapsedSeconds();
    std::uint64_t cf_nodes = cf.masks.CountAlive(fairbc::Side::kUpper) +
                             cf.masks.CountAlive(fairbc::Side::kLower);
    table.AddRow({TextTable::Num(values[i]), TextTable::Num(fcore_nodes),
                  TextTable::Num(cf_nodes), TextTable::Seconds(fcore_s),
                  TextTable::Seconds(cf_s)});
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  fairbc::NamedGraph data = fairbc::LoadDataset("imdb");
  std::cout << "Dataset: " << data.graph.DebugString() << " ("
            << data.graph.NumUpper() + data.graph.NumLower()
            << " original nodes)\n";
  const auto defaults = data.spec.ss_defaults;

  std::vector<std::pair<std::uint32_t, std::uint32_t>> grid;
  std::vector<std::uint32_t> values;
  for (std::uint32_t alpha = defaults.alpha; alpha <= defaults.alpha + 5;
       ++alpha) {
    grid.emplace_back(alpha, defaults.beta);
    values.push_back(alpha);
  }
  SweepPruning(data.graph, data.spec.name, grid, "alpha", values);

  grid.clear();
  values.clear();
  for (std::uint32_t beta = defaults.beta; beta <= defaults.beta + 5; ++beta) {
    grid.emplace_back(defaults.alpha, beta);
    values.push_back(beta);
  }
  SweepPruning(data.graph, data.spec.name, grid, "beta", values);

  std::cout << "\nShape check (paper Fig. 3): CFCore nodes <= FCore nodes\n"
               "<< original nodes; CFCore time slightly above FCore time;\n"
               "remaining nodes shrink as alpha/beta grow.\n";
  return 0;
}
