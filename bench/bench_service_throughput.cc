// Service-layer throughput: replays a mixed query trace (a shuffled
// parameter sweep with repeats — the fig2/fig5/fig7 shape) through
// QueryExecutor::ExecuteBatch at increasing pool widths and reports
// per-query latency percentiles, aggregate throughput, the ResultCache
// hit rate and the single-flight counters. Emitted as JSON so the
// serving trajectory is machine-readable across PRs.
//
// Expected shape on a multi-core host: throughput scales with the pool
// until queries contend for memory bandwidth; p99 tracks the most
// expensive uncached parameter point; the hit rate is trace-determined
// (~repeats/total; identical queries in flight at once now *coalesce*
// behind one execution instead of both missing, so executions ≈ unique
// points at every width). Each width gets a fresh executor so caches
// never leak across rows. On a single-core host every row measures
// admission overhead only.
//
// The trailing "duplicate_heavy" block is the burst shape single-flight
// admission targets: few unique points, many concurrent repeats, one
// batch at the widest pool. Its JSON must report coalesced > 0 on any
// multi-worker run and a hit rate at least as high as the pre-
// single-flight baseline (waiters count one miss each, exactly like the
// both-miss behavior they replace — so the rate can only move up as
// post-leader arrivals turn into hits).
//
// FAIRBC_SCALE scales the graph (default 1.0); FAIRBC_MAX_THREADS caps
// the sweep (default 8).

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_util/datasets.h"
#include "bench_util/meta.h"
#include "common/random.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "service/graph_catalog.h"
#include "service/query_executor.h"
#include "service/response_json.h"

namespace {

using fairbc::QueryRequest;
using fairbc::QueryResult;

constexpr std::uint64_t kSeed = 17;

/// The sweep grid: 2 models x alpha {2,3} x beta {2,3} x delta {1,2},
/// each issued `repeats` times, shuffled.
std::vector<QueryRequest> MakeTrace(const std::string& graph, int repeats,
                                    fairbc::Rng& rng) {
  std::vector<QueryRequest> unique;
  for (auto model : {fairbc::FairModel::kSsfbc, fairbc::FairModel::kBsfbc}) {
    for (std::uint32_t alpha = 2; alpha <= 3; ++alpha) {
      for (std::uint32_t beta = 2; beta <= 3; ++beta) {
        for (std::uint32_t delta = 1; delta <= 2; ++delta) {
          QueryRequest req;
          req.graph = graph;
          req.model = model;
          req.params = {alpha, beta, delta, 0.0};
          unique.push_back(req);
        }
      }
    }
  }
  std::vector<QueryRequest> trace;
  for (int r = 0; r < repeats; ++r) {
    trace.insert(trace.end(), unique.begin(), unique.end());
  }
  rng.Shuffle(trace);
  return trace;
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(p * (sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main() {
  const double scale = fairbc::EnvScale();
  unsigned max_threads = 8;
  if (const char* env = std::getenv("FAIRBC_MAX_THREADS")) {
    max_threads = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    if (max_threads == 0) max_threads = 1;
  }

  fairbc::AffiliationConfig config;
  config.num_upper = static_cast<fairbc::VertexId>(1200 * scale);
  config.num_lower = static_cast<fairbc::VertexId>(1200 * scale);
  config.num_communities = static_cast<std::uint32_t>(70 * scale);
  config.seed = kSeed;
  fairbc::BipartiteGraph g = fairbc::MakeAffiliation(config);

  fairbc::GraphCatalog catalog;
  FAIRBC_CHECK(catalog.AddGraph("synth", std::move(g)).ok());
  auto entry = catalog.Get("synth");

  constexpr int kRepeats = 4;
  fairbc::Rng rng(kSeed);
  const std::vector<QueryRequest> trace = MakeTrace("synth", kRepeats, rng);

  std::cout << "{\n  \"bench\": \"service_throughput\",\n"
            << "  \"meta\": "
            << fairbc::RunMetadataJson(fairbc::CollectRunMetadata(kSeed))
            << ",\n"
            << "  \"graph\": {\"upper\": " << entry->graph.NumUpper()
            << ", \"lower\": " << entry->graph.NumLower()
            << ", \"edges\": " << entry->graph.NumEdges() << ", \"version\": \""
            << fairbc::JsonHex64(entry->version) << "\"},\n"
            << "  \"queries\": " << trace.size()
            << ",\n  \"unique_queries\": " << trace.size() / kRepeats
            << ",\n  \"runs\": [\n";

  std::uint64_t reference_digest = 0;
  bool first_row = true;
  for (unsigned threads = 1; threads <= max_threads; threads *= 2) {
    fairbc::QueryExecutorOptions options;
    options.num_threads = threads;
    fairbc::QueryExecutor executor(catalog, options);

    fairbc::Timer timer;
    std::vector<QueryResult> results = executor.ExecuteBatch(trace);
    const double total = timer.ElapsedSeconds();

    std::vector<double> latencies;
    latencies.reserve(results.size());
    std::uint64_t digest = 0;
    for (const QueryResult& r : results) {
      FAIRBC_CHECK(r.status.ok());
      latencies.push_back(r.seconds);
      digest += r.summary.digest;
    }
    // Cross-width sanity: the batch's combined result digest must not
    // depend on the pool width (cache hits return the producing run's
    // summary, so digests survive caching unchanged).
    if (threads == 1) {
      reference_digest = digest;
    } else if (digest != reference_digest) {
      std::cerr << "ERROR: batch digest changed with threads=" << threads
                << "\n";
      return 1;
    }
    std::sort(latencies.begin(), latencies.end());
    const auto telemetry = executor.telemetry();

    std::cout << (first_row ? "" : ",\n") << "    {\"threads\": " << threads
              << ", \"total_seconds\": " << fairbc::JsonDouble(total)
              << ", \"qps\": "
              << fairbc::JsonDouble(static_cast<double>(results.size()) / total)
              << ", \"p50_ms\": "
              << fairbc::JsonDouble(Percentile(latencies, 0.50) * 1e3)
              << ", \"p99_ms\": "
              << fairbc::JsonDouble(Percentile(latencies, 0.99) * 1e3)
              << ", \"cache_hits\": " << telemetry.cache.hits
              << ", \"cache_hit_rate\": "
              << fairbc::JsonDouble(telemetry.cache.HitRate())
              << ", \"executions\": " << telemetry.executions
              << ", \"coalesced\": " << telemetry.coalesced << "}";
    first_row = false;
  }
  std::cout << "\n  ],\n";

  // Duplicate-heavy burst: 4 unique parameter points x 16 concurrent
  // repeats on the widest pool. Single-flight admission must show up as
  // executions ≈ 4 (one per unique point) with the other ~60 queries
  // split between coalesced waiters and cache hits.
  {
    const unsigned threads = std::max(max_threads, 2u);
    fairbc::QueryExecutorOptions options;
    options.num_threads = threads;
    fairbc::QueryExecutor executor(catalog, options);

    std::vector<QueryRequest> unique;
    for (std::uint32_t alpha = 2; alpha <= 3; ++alpha) {
      for (std::uint32_t beta = 2; beta <= 3; ++beta) {
        QueryRequest req;
        req.graph = "synth";
        req.params = {alpha, beta, 1, 0.0};
        unique.push_back(req);
      }
    }
    constexpr int kDupRepeats = 16;
    std::vector<QueryRequest> burst;
    for (int r = 0; r < kDupRepeats; ++r) {
      burst.insert(burst.end(), unique.begin(), unique.end());
    }
    rng.Shuffle(burst);

    fairbc::Timer timer;
    std::vector<QueryResult> results = executor.ExecuteBatch(burst);
    const double total = timer.ElapsedSeconds();
    std::uint64_t coalesced_results = 0;
    for (const QueryResult& r : results) {
      FAIRBC_CHECK(r.status.ok());
      coalesced_results += r.coalesced ? 1 : 0;
    }
    const auto telemetry = executor.telemetry();
    FAIRBC_CHECK(telemetry.coalesced == coalesced_results);
    if (threads > 1 && telemetry.coalesced == 0) {
      std::cerr << "WARNING: duplicate-heavy burst saw no coalescing "
                   "(expected on multi-worker pools)\n";
    }
    std::cout << "  \"duplicate_heavy\": {\"threads\": " << threads
              << ", \"queries\": " << burst.size()
              << ", \"unique_queries\": " << unique.size()
              << ", \"total_seconds\": " << fairbc::JsonDouble(total)
              << ", \"qps\": "
              << fairbc::JsonDouble(static_cast<double>(results.size()) /
                                    total)
              << ", \"executions\": " << telemetry.executions
              << ", \"coalesced\": " << telemetry.coalesced
              << ", \"cache_hits\": " << telemetry.cache.hits
              << ", \"cache_hit_rate\": "
              << fairbc::JsonDouble(telemetry.cache.HitRate()) << "}\n";
  }
  std::cout << "}\n";
  return 0;
}
