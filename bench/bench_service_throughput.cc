// Service-layer throughput: replays a mixed query trace (a shuffled
// parameter sweep with repeats — the fig2/fig5/fig7 shape) through
// QueryExecutor::ExecuteBatch at increasing pool widths and reports
// per-query latency percentiles, aggregate throughput, the ResultCache
// hit rate and the single-flight counters. Emitted as JSON so the
// serving trajectory is machine-readable across PRs.
//
// Expected shape on a multi-core host: throughput scales with the pool
// until queries contend for memory bandwidth; p99 tracks the most
// expensive uncached parameter point; the hit rate is trace-determined
// (~repeats/total; identical queries in flight at once now *coalesce*
// behind one execution instead of both missing, so executions ≈ unique
// points at every width). Each width gets a fresh executor so caches
// never leak across rows. On a single-core host every row measures
// admission overhead only.
//
// The trailing "duplicate_heavy" block is the burst shape single-flight
// admission targets: few unique points, many concurrent repeats, one
// batch at the widest pool. Its JSON must report coalesced > 0 on any
// multi-worker run and a hit rate at least as high as the pre-
// single-flight baseline (waiters count one miss each, exactly like the
// both-miss behavior they replace — so the rate can only move up as
// post-leader arrivals turn into hits).
//
// The "streaming" block replays the same trace through
// ExecuteStreaming on the widest pool and reports time-to-first-result
// (admission → first chunk) p50/p99 alongside total latency, plus the
// registry deltas for the stream counters (queries/chunks/payload
// replays) — and checks the summed streamed digests against the batch
// rows' reference (streamed == batch, at bench scale).
//
// The trailing "tcp" block drives the epoll reactor front end over real
// loopback sockets: {100, 1000, 10000} concurrent connections, line vs
// binary protocol, mostly idle with a bounded active set doing ping +
// cached-query round-trips. Reports per-round-trip p50/p99 and verifies
// the idle fleet still answers afterwards (sustained, not just opened).
// The process RLIMIT_NOFILE soft limit is raised to the hard limit
// first; connection counts that still do not fit are reported as
// explicitly skipped rows — never silently dropped.
//
// FAIRBC_SCALE scales the graph (default 1.0); FAIRBC_MAX_THREADS caps
// the sweep (default 8).

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bench_util/datasets.h"
#include "bench_util/meta.h"
#include "common/random.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "service/graph_catalog.h"
#include "service/query_executor.h"
#include "service/response_json.h"
#include "service/server.h"
#include "service/wire.h"

namespace {

using fairbc::QueryRequest;
using fairbc::QueryResult;

constexpr std::uint64_t kSeed = 17;

/// The sweep grid: 2 models x alpha {2,3} x beta {2,3} x delta {1,2},
/// each issued `repeats` times, shuffled.
std::vector<QueryRequest> MakeTrace(const std::string& graph, int repeats,
                                    fairbc::Rng& rng) {
  std::vector<QueryRequest> unique;
  for (auto model : {fairbc::FairModel::kSsfbc, fairbc::FairModel::kBsfbc}) {
    for (std::uint32_t alpha = 2; alpha <= 3; ++alpha) {
      for (std::uint32_t beta = 2; beta <= 3; ++beta) {
        for (std::uint32_t delta = 1; delta <= 2; ++delta) {
          QueryRequest req;
          req.graph = graph;
          req.model = model;
          req.params = {alpha, beta, delta, 0.0};
          unique.push_back(req);
        }
      }
    }
  }
  std::vector<QueryRequest> trace;
  for (int r = 0; r < repeats; ++r) {
    trace.insert(trace.end(), unique.begin(), unique.end());
  }
  rng.Shuffle(trace);
  return trace;
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(p * (sorted.size() - 1));
  return sorted[idx];
}

// --- Self-scrape helpers ----------------------------------------------------
//
// Telemetry in the rows below comes from scraping the executor through
// the REAL `metrics` command (the same dispatch a TCP client hits), not
// from recomputing counts client-side — so a registry bug shows up as a
// bench regression, and the rows are before/after deltas by
// construction.

/// Series values ("name" or "name{labels}") parsed from one exposition.
using Scrape = std::map<std::string, double>;

Scrape ScrapeMetrics(fairbc::GraphCatalog& catalog,
                     fairbc::QueryExecutor& executor) {
  fairbc::ServerSession session(catalog, executor, /*id=*/0);
  std::string response;
  bool stop_server = false;
  FAIRBC_CHECK(session.Handle("metrics", &response, &stop_server));
  // Pull the exposition out of the {"text":"..."} field and unescape
  // the \n separators (the only escapes PrometheusText produces are
  // \n and \" — metric names and label values here are tame).
  const std::size_t key = response.find("\"text\":\"");
  FAIRBC_CHECK(key != std::string::npos);
  std::string text;
  for (std::size_t i = key + 8; i < response.size(); ++i) {
    const char c = response[i];
    if (c == '"') break;
    if (c == '\\' && i + 1 < response.size()) {
      const char next = response[++i];
      text += next == 'n' ? '\n' : next;
      continue;
    }
    text += c;
  }
  Scrape scrape;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    scrape[line.substr(0, space)] = std::strtod(line.c_str() + space + 1,
                                                nullptr);
  }
  return scrape;
}

double Series(const Scrape& scrape, const std::string& series) {
  const auto it = scrape.find(series);
  return it == scrape.end() ? 0.0 : it->second;
}

/// Counter-series delta over a scrape window (counters only move up, so
/// the delta is a whole number).
std::uint64_t Delta(const Scrape& before, const Scrape& after,
                    const std::string& series) {
  const double d = Series(after, series) - Series(before, series);
  return d <= 0.0 ? 0 : static_cast<std::uint64_t>(d + 0.5);
}

/// Cache hit rate over a scrape window, from the counter deltas.
double ScrapedHitRate(const Scrape& before, const Scrape& after) {
  const double hits = Delta(before, after, "fairbc_cache_hits_total");
  const double misses = Delta(before, after, "fairbc_cache_misses_total");
  return hits + misses <= 0.0 ? 0.0 : hits / (hits + misses);
}

// --- TCP connection-axis helpers --------------------------------------------

int ConnectLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
  return fd;
}

bool SendAll(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// One blocking round-trip on an established connection: line mode sends
/// `line` + '\n' and reads one response line; binary mode sends one
/// frame and reads one frame. Returns false on any protocol error.
bool RoundTrip(int fd, bool binary, const std::string& line,
               const std::string& query_payload, std::string* rbuf) {
  if (binary) {
    fairbc::wire::Frame frame;
    if (line == "ping") {
      frame.opcode = fairbc::wire::Opcode::kPing;
    } else if (!query_payload.empty()) {
      frame.opcode = fairbc::wire::Opcode::kQuery;
      frame.payload = query_payload;
    } else {
      frame.opcode = fairbc::wire::Opcode::kCommand;
      frame.payload = line;
    }
    frame.request_id = 1;
    std::string encoded;
    fairbc::wire::EncodeFrame(frame, &encoded);
    if (!SendAll(fd, encoded.data(), encoded.size())) return false;
    for (;;) {
      fairbc::wire::Frame reply;
      std::size_t consumed = 0;
      const auto decoded = fairbc::wire::DecodeFrame(*rbuf, 64u << 20, &reply,
                                                     &consumed);
      if (decoded.status == fairbc::wire::FrameStatus::kOk) {
        rbuf->erase(0, consumed);
        return fairbc::wire::IsResponseOpcode(reply.opcode) &&
               reply.opcode != fairbc::wire::Opcode::kError;
      }
      if (decoded.status == fairbc::wire::FrameStatus::kBad) return false;
      char chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      rbuf->append(chunk, static_cast<std::size_t>(n));
    }
  }
  const std::string out = line + "\n";
  if (!SendAll(fd, out.data(), out.size())) return false;
  for (;;) {
    const std::size_t nl = rbuf->find('\n');
    if (nl != std::string::npos) {
      const bool ok = rbuf->compare(0, 11, "{\"session\":") == 0;
      rbuf->erase(0, nl + 1);
      return ok;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    rbuf->append(chunk, static_cast<std::size_t>(n));
  }
}

/// Raises RLIMIT_NOFILE as far as this process may: soft → hard always,
/// and a best-effort hard-limit bump (needs CAP_SYS_RESOURCE). Returns
/// the resulting soft limit and reports the detected hard cap through
/// `hard` — a skipped row must say what the environment would allow,
/// not just what it currently grants.
std::uint64_t RaiseNofileLimit(std::uint64_t* hard) {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) {
    *hard = 0;
    return 0;
  }
  rlimit want = lim;
  want.rlim_cur = want.rlim_max = 1 << 20;
  ::setrlimit(RLIMIT_NOFILE, &want);  // privileged environments only
  ::getrlimit(RLIMIT_NOFILE, &lim);
  if (lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &lim);
    ::getrlimit(RLIMIT_NOFILE, &lim);
  }
  *hard = static_cast<std::uint64_t>(lim.rlim_max);
  return static_cast<std::uint64_t>(lim.rlim_cur);
}

}  // namespace

int main() {
  // The TCP block writes to sockets a reactor may close first.
  std::signal(SIGPIPE, SIG_IGN);
  const double scale = fairbc::EnvScale();
  unsigned max_threads = 8;
  if (const char* env = std::getenv("FAIRBC_MAX_THREADS")) {
    max_threads = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    if (max_threads == 0) max_threads = 1;
  }

  fairbc::AffiliationConfig config;
  config.num_upper = static_cast<fairbc::VertexId>(1200 * scale);
  config.num_lower = static_cast<fairbc::VertexId>(1200 * scale);
  config.num_communities = static_cast<std::uint32_t>(70 * scale);
  config.seed = kSeed;
  fairbc::BipartiteGraph g = fairbc::MakeAffiliation(config);

  fairbc::GraphCatalog catalog;
  FAIRBC_CHECK(catalog.AddGraph("synth", std::move(g)).ok());
  auto entry = catalog.Get("synth");

  constexpr int kRepeats = 4;
  fairbc::Rng rng(kSeed);
  const std::vector<QueryRequest> trace = MakeTrace("synth", kRepeats, rng);

  std::cout << "{\n  \"bench\": \"service_throughput\",\n"
            << "  \"meta\": "
            << fairbc::RunMetadataJson(fairbc::CollectRunMetadata(kSeed))
            << ",\n"
            << "  \"graph\": {\"upper\": " << entry->graph.NumUpper()
            << ", \"lower\": " << entry->graph.NumLower()
            << ", \"edges\": " << entry->graph.NumEdges() << ", \"version\": \""
            << fairbc::JsonHex64(entry->version) << "\"},\n"
            << "  \"queries\": " << trace.size()
            << ",\n  \"unique_queries\": " << trace.size() / kRepeats
            << ",\n  \"runs\": [\n";

  std::uint64_t reference_digest = 0;
  bool first_row = true;
  for (unsigned threads = 1; threads <= max_threads; threads *= 2) {
    fairbc::QueryExecutorOptions options;
    options.num_threads = threads;
    fairbc::QueryExecutor executor(catalog, options);

    const Scrape before = ScrapeMetrics(catalog, executor);
    fairbc::Timer timer;
    std::vector<QueryResult> results = executor.ExecuteBatch(trace);
    const double total = timer.ElapsedSeconds();
    const Scrape after = ScrapeMetrics(catalog, executor);

    std::vector<double> latencies;
    latencies.reserve(results.size());
    std::uint64_t digest = 0;
    for (const QueryResult& r : results) {
      FAIRBC_CHECK(r.status.ok());
      latencies.push_back(r.seconds);
      digest += r.summary.digest;
    }
    // Cross-width sanity: the batch's combined result digest must not
    // depend on the pool width (cache hits return the producing run's
    // summary, so digests survive caching unchanged).
    if (threads == 1) {
      reference_digest = digest;
    } else if (digest != reference_digest) {
      std::cerr << "ERROR: batch digest changed with threads=" << threads
                << "\n";
      return 1;
    }
    std::sort(latencies.begin(), latencies.end());

    std::cout << (first_row ? "" : ",\n") << "    {\"threads\": " << threads
              << ", \"total_seconds\": " << fairbc::JsonDouble(total)
              << ", \"qps\": "
              << fairbc::JsonDouble(static_cast<double>(results.size()) / total)
              << ", \"p50_ms\": "
              << fairbc::JsonDouble(Percentile(latencies, 0.50) * 1e3)
              << ", \"p99_ms\": "
              << fairbc::JsonDouble(Percentile(latencies, 0.99) * 1e3)
              << ", \"cache_hits\": "
              << Delta(before, after, "fairbc_cache_hits_total")
              << ", \"cache_hit_rate\": "
              << fairbc::JsonDouble(ScrapedHitRate(before, after))
              << ", \"executions\": "
              << Delta(before, after, "fairbc_query_executions_total")
              << ", \"coalesced\": "
              << Delta(before, after, "fairbc_query_coalesced_total") << "}";
    first_row = false;
  }
  std::cout << "\n  ],\n";

  // Duplicate-heavy burst: 4 unique parameter points x 16 concurrent
  // repeats on the widest pool. Single-flight admission must show up as
  // executions ≈ 4 (one per unique point) with the other ~60 queries
  // split between coalesced waiters and cache hits.
  {
    const unsigned threads = std::max(max_threads, 2u);
    fairbc::QueryExecutorOptions options;
    options.num_threads = threads;
    fairbc::QueryExecutor executor(catalog, options);

    std::vector<QueryRequest> unique;
    for (std::uint32_t alpha = 2; alpha <= 3; ++alpha) {
      for (std::uint32_t beta = 2; beta <= 3; ++beta) {
        QueryRequest req;
        req.graph = "synth";
        req.params = {alpha, beta, 1, 0.0};
        unique.push_back(req);
      }
    }
    constexpr int kDupRepeats = 16;
    std::vector<QueryRequest> burst;
    for (int r = 0; r < kDupRepeats; ++r) {
      burst.insert(burst.end(), unique.begin(), unique.end());
    }
    rng.Shuffle(burst);

    const Scrape before = ScrapeMetrics(catalog, executor);
    fairbc::Timer timer;
    std::vector<QueryResult> results = executor.ExecuteBatch(burst);
    const double total = timer.ElapsedSeconds();
    const Scrape after = ScrapeMetrics(catalog, executor);
    std::uint64_t coalesced_results = 0;
    for (const QueryResult& r : results) {
      FAIRBC_CHECK(r.status.ok());
      coalesced_results += r.coalesced ? 1 : 0;
    }
    // The scraped counter must agree with the per-result flags — a
    // registry accounting bug fails the bench, not just a dashboard.
    const std::uint64_t coalesced =
        Delta(before, after, "fairbc_query_coalesced_total");
    FAIRBC_CHECK(coalesced == coalesced_results);
    if (threads > 1 && coalesced == 0) {
      std::cerr << "WARNING: duplicate-heavy burst saw no coalescing "
                   "(expected on multi-worker pools)\n";
    }
    std::cout << "  \"duplicate_heavy\": {\"threads\": " << threads
              << ", \"queries\": " << burst.size()
              << ", \"unique_queries\": " << unique.size()
              << ", \"total_seconds\": " << fairbc::JsonDouble(total)
              << ", \"qps\": "
              << fairbc::JsonDouble(static_cast<double>(results.size()) /
                                    total)
              << ", \"executions\": "
              << Delta(before, after, "fairbc_query_executions_total")
              << ", \"coalesced\": " << coalesced << ", \"cache_hits\": "
              << Delta(before, after, "fairbc_cache_hits_total")
              << ", \"cache_hit_rate\": "
              << fairbc::JsonDouble(ScrapedHitRate(before, after)) << "},\n";
  }

  // Streaming tier: the shuffled trace again, this time through
  // ExecuteStreaming, one query at a time so time-to-first-result is
  // admission → first chunk of THAT query (no queueing noise). Repeats
  // replay from the retained payload cache, so the TTFR distribution
  // mixes engine-fed and cache-fed streams — the serving mix a client
  // of the chunked protocol actually sees.
  {
    const unsigned threads = std::max(max_threads, 2u);
    fairbc::QueryExecutorOptions options;
    options.num_threads = threads;
    fairbc::QueryExecutor executor(catalog, options);

    const Scrape before = ScrapeMetrics(catalog, executor);
    std::vector<double> ttfr, latencies;
    ttfr.reserve(trace.size());
    latencies.reserve(trace.size());
    std::uint64_t digest = 0;
    fairbc::Timer wall;
    for (const QueryRequest& req : trace) {
      std::mutex mu;
      std::condition_variable cv;
      bool done = false;
      double first = -1.0, total = 0.0;
      QueryResult result;
      fairbc::Timer per_query;
      executor.ExecuteStreaming(
          req,
          [&](const fairbc::QueryExecutor::StreamChunk&) {
            std::lock_guard<std::mutex> lock(mu);
            if (first < 0) first = per_query.ElapsedSeconds();
          },
          [&](QueryResult r) {
            std::lock_guard<std::mutex> lock(mu);
            total = per_query.ElapsedSeconds();
            result = std::move(r);
            done = true;
            cv.notify_all();
          });
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return done; });
      FAIRBC_CHECK(result.status.ok());
      FAIRBC_CHECK(first >= 0.0);  // every stream carries >= 1 chunk.
      ttfr.push_back(first);
      latencies.push_back(total);
      digest += result.summary.digest;
    }
    const double total_seconds = wall.ElapsedSeconds();
    const Scrape after = ScrapeMetrics(catalog, executor);
    // Streamed summaries must reproduce the batch rows' digests exactly.
    if (digest != reference_digest) {
      std::cerr << "ERROR: streamed trace digest differs from batch\n";
      return 1;
    }
    std::sort(ttfr.begin(), ttfr.end());
    std::sort(latencies.begin(), latencies.end());

    std::cout << "  \"streaming\": {\"threads\": " << threads
              << ", \"queries\": " << trace.size() << ", \"total_seconds\": "
              << fairbc::JsonDouble(total_seconds) << ", \"qps\": "
              << fairbc::JsonDouble(static_cast<double>(trace.size()) /
                                    total_seconds)
              << ", \"ttfr_p50_ms\": "
              << fairbc::JsonDouble(Percentile(ttfr, 0.50) * 1e3)
              << ", \"ttfr_p99_ms\": "
              << fairbc::JsonDouble(Percentile(ttfr, 0.99) * 1e3)
              << ", \"p50_ms\": "
              << fairbc::JsonDouble(Percentile(latencies, 0.50) * 1e3)
              << ", \"p99_ms\": "
              << fairbc::JsonDouble(Percentile(latencies, 0.99) * 1e3)
              << ", \"stream_queries\": "
              << Delta(before, after, "fairbc_stream_queries_total")
              << ", \"chunks\": "
              << Delta(before, after, "fairbc_stream_chunks_total")
              << ", \"executions\": "
              << Delta(before, after, "fairbc_query_executions_total")
              << ", \"payload_replays\": "
              << Delta(before, after, "fairbc_cache_payload_hits_total")
              << "},\n";
  }

  // TCP connection axis: the epoll reactor under {100, 1000, 10000}
  // concurrent connections, line vs binary protocol. A bounded active
  // set does ping + cached-query round-trips while the rest sit idle;
  // the idle fleet is then sampled to prove it is still being served.
  {
    std::uint64_t nofile_hard = 0;
    const std::uint64_t nofile = RaiseNofileLimit(&nofile_hard);

    fairbc::QueryExecutorOptions exec_options;
    exec_options.num_threads = 2;  // every measured query is cache-warm.
    fairbc::QueryExecutor executor(catalog, exec_options);
    fairbc::TcpServerOptions tcp;
    tcp.port = 0;
    tcp.max_sessions = 20000;
    tcp.max_inflight = 256;
    fairbc::TcpServer server(catalog, executor, tcp);
    FAIRBC_CHECK(server.Listen().ok());
    std::thread serve_thread([&server] { server.Serve(); });

    QueryRequest warm;
    warm.graph = "synth";
    warm.params = {2, 2, 1, 0.0};
    FAIRBC_CHECK(executor.Execute(warm).status.ok());  // prime the cache
    const std::string warm_payload = fairbc::wire::EncodeQueryPayload(warm);
    const std::string warm_line = "query graph=synth alpha=2 beta=2 delta=1";

    std::cout << "  \"tcp\": {\"inflight_limit\": " << tcp.max_inflight
              << ", \"nofile_limit\": " << nofile << ", \"rows\": [\n";
    bool first_tcp_row = true;
    for (const unsigned conns : {100u, 1000u, 10000u}) {
      for (const bool binary : {false, true}) {
        const char* protocol = binary ? "binary" : "line";
        std::cout << (first_tcp_row ? "" : ",\n")
                  << "    {\"protocol\": \"" << protocol
                  << "\", \"connections\": " << conns;
        first_tcp_row = false;
        // Client and server ends share this process, so every
        // connection costs TWO fds.
        if (nofile < 2ull * conns + 128) {
          // Explicit skip, never a silent cap: this environment cannot
          // hold `conns` socket pairs + bookkeeping fds open at once.
          // Record the detected soft AND hard caps next to the required
          // one, so the reader can tell "raise ulimit -n" (soft < hard)
          // apart from "this machine cannot run the row at all".
          std::cout << ", \"skipped\": \"RLIMIT_NOFILE too low\""
                    << ", \"nofile_soft\": " << nofile
                    << ", \"nofile_hard\": " << nofile_hard
                    << ", \"nofile_required\": " << (2ull * conns + 128)
                    << "}";
          continue;
        }

        const Scrape before = ScrapeMetrics(catalog, executor);
        fairbc::Timer connect_timer;
        std::vector<int> fds;
        fds.reserve(conns);
        for (unsigned i = 0; i < conns; ++i) {
          const int fd = ConnectLoopback(server.port());
          if (fd < 0) break;
          fds.push_back(fd);
        }
        const double connect_seconds = connect_timer.ElapsedSeconds();
        if (fds.size() != conns) {
          std::cout << ", \"skipped\": \"connect failed at "
                    << fds.size() << "\"}";
          for (int fd : fds) ::close(fd);
          continue;
        }

        // Active phase: up to 256 connections, 8 driver threads, each
        // round-trip alternating ping and the cache-warm query.
        const unsigned active = std::min(conns, 256u);
        constexpr unsigned kDrivers = 8;
        constexpr unsigned kRounds = 8;
        std::vector<std::vector<double>> driver_latencies(kDrivers);
        std::atomic<unsigned> failures{0};
        fairbc::Timer active_timer;
        {
          std::vector<std::thread> drivers;
          for (unsigned d = 0; d < kDrivers; ++d) {
            drivers.emplace_back([&, d] {
              std::string rbuf;
              for (unsigned i = d; i < active; i += kDrivers) {
                rbuf.clear();
                for (unsigned round = 0; round < kRounds; ++round) {
                  const bool query = (round % 2) == 1;
                  fairbc::Timer rt;
                  const bool ok = RoundTrip(
                      fds[i], binary, query ? warm_line : "ping",
                      query && binary ? warm_payload : std::string(), &rbuf);
                  if (!ok) {
                    failures.fetch_add(1);
                    break;
                  }
                  driver_latencies[d].push_back(rt.ElapsedSeconds());
                }
              }
            });
          }
          for (std::thread& t : drivers) t.join();
        }
        const double active_seconds = active_timer.ElapsedSeconds();
        std::vector<double> latencies;
        for (const auto& v : driver_latencies) {
          latencies.insert(latencies.end(), v.begin(), v.end());
        }
        std::sort(latencies.begin(), latencies.end());

        // Sustained, not just opened: sample the idle remainder.
        unsigned idle_verified = 0, idle_sampled = 0;
        {
          std::string rbuf;
          const unsigned stride =
              std::max(1u, (conns - active) / 100u);
          for (unsigned i = active; i < conns; i += stride) {
            ++idle_sampled;
            rbuf.clear();
            if (RoundTrip(fds[i], binary, "ping", std::string(), &rbuf)) {
              ++idle_verified;
            }
          }
        }
        for (int fd : fds) ::close(fd);
        const Scrape after = ScrapeMetrics(catalog, executor);

        std::cout << ", \"active\": " << active
                  << ", \"rounds\": " << latencies.size()
                  << ", \"failures\": " << failures.load()
                  << ", \"connect_seconds\": "
                  << fairbc::JsonDouble(connect_seconds)
                  << ", \"p50_ms\": "
                  << fairbc::JsonDouble(Percentile(latencies, 0.50) * 1e3)
                  << ", \"p99_ms\": "
                  << fairbc::JsonDouble(Percentile(latencies, 0.99) * 1e3)
                  << ", \"rt_per_second\": "
                  << fairbc::JsonDouble(
                         static_cast<double>(latencies.size()) /
                         std::max(active_seconds, 1e-9))
                  << ", \"admission_rejections\": "
                  << Delta(before, after,
                           "fairbc_server_errors_total{code=\"busy\"}")
                  << ", \"coalesced\": "
                  << Delta(before, after, "fairbc_query_coalesced_total")
                  << ", \"cache_hit_rate\": "
                  << fairbc::JsonDouble(ScrapedHitRate(before, after))
                  << ", \"idle_sampled\": " << idle_sampled
                  << ", \"idle_verified\": " << idle_verified << "}";
      }
    }
    std::cout << "\n  ]}\n";
    server.RequestStop();
    serve_thread.join();
  }
  std::cout << "}\n";
  return 0;
}
