// Reproduces Table II: runtime of the four enumeration algorithms with
// IDOrd vs DegOrd candidate orderings under default parameters on all
// five datasets.
//
// Paper shape: DegOrd <= IDOrd for every algorithm/dataset; the ++
// variants beat their branch-and-bound counterparts either way.

#include <iostream>

#include "bench_util/datasets.h"
#include "bench_util/sweep.h"
#include "bench_util/table.h"

namespace {

std::string Run(const fairbc::Algorithm& algo, const fairbc::NamedGraph& data,
                const fairbc::FairBicliqueParams& params,
                fairbc::VertexOrdering ordering) {
  fairbc::EnumOptions options;
  options.ordering = ordering;
  options.time_budget_seconds = fairbc::BenchTimeBudget();
  auto r = RunCounting(algo, data.graph, params, options);
  return fairbc::TextTable::Seconds(r.seconds, r.timed_out);
}

}  // namespace

int main() {
  auto datasets = fairbc::LoadStandardDatasets();
  fairbc::PrintBanner(std::cout,
                      "Table II: IDOrd vs DegOrd (default parameters)");
  std::vector<std::string> header{"Algorithm", "Ordering"};
  for (const auto& d : datasets) header.push_back(d.spec.name);
  fairbc::TextTable table(header);

  struct Entry {
    fairbc::Algorithm algo;
    bool bi_side;
  };
  std::vector<Entry> entries{{fairbc::AlgoFairBCEM(), false},
                             {fairbc::AlgoFairBCEMpp(), false},
                             {fairbc::AlgoBFairBCEM(), true},
                             {fairbc::AlgoBFairBCEMpp(), true}};
  for (const Entry& e : entries) {
    for (auto ordering :
         {fairbc::VertexOrdering::kId, fairbc::VertexOrdering::kDegreeDesc}) {
      std::vector<std::string> row{
          e.algo.name,
          ordering == fairbc::VertexOrdering::kId ? "IDOrd" : "DegOrd"};
      for (const auto& d : datasets) {
        const auto& params =
            e.bi_side ? d.spec.bs_defaults : d.spec.ss_defaults;
        row.push_back(Run(e.algo, d, params, ordering));
      }
      table.AddRow(row);
    }
  }
  table.Print(std::cout);
  std::cout << "\nShape check (paper Table II): DegOrd <= IDOrd per row pair;\n"
               "++ variants fastest overall.\n";
  return 0;
}
