// Reproduces Fig. 4: pruning power and cost of BFCore vs BCFCore for
// bi-side fair biclique enumeration on Twitter, varying alpha and beta.
//
// Paper shape: BCFCore leaves fewer vertices than BFCore at slightly
// higher time; remaining nodes shrink as alpha/beta grow.

#include <iostream>

#include "bench_util/datasets.h"
#include "bench_util/table.h"
#include "common/timer.h"
#include "core/cfcore.h"
#include "core/fcore.h"

namespace {

using fairbc::TextTable;

void SweepPruning(const fairbc::BipartiteGraph& g, const std::string& name,
                  const std::vector<std::pair<std::uint32_t, std::uint32_t>>&
                      grid,
                  const std::string& param_name,
                  const std::vector<std::uint32_t>& values) {
  fairbc::PrintBanner(std::cout,
                      "Fig. 4: " + name + " (vary " + param_name + ")");
  TextTable table({param_name, "BFCore nodes", "BCFCore nodes", "BFCore (s)",
                   "BCFCore (s)"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    auto [alpha, beta] = grid[i];
    fairbc::Timer t1;
    fairbc::SideMasks bf = fairbc::BFCore(g, alpha, beta);
    double bf_s = t1.ElapsedSeconds();
    std::uint64_t bf_nodes = bf.CountAlive(fairbc::Side::kUpper) +
                             bf.CountAlive(fairbc::Side::kLower);
    fairbc::Timer t2;
    fairbc::PruneResult bcf = fairbc::BCFCore(g, alpha, beta);
    double bcf_s = t2.ElapsedSeconds();
    std::uint64_t bcf_nodes = bcf.masks.CountAlive(fairbc::Side::kUpper) +
                              bcf.masks.CountAlive(fairbc::Side::kLower);
    table.AddRow({TextTable::Num(values[i]), TextTable::Num(bf_nodes),
                  TextTable::Num(bcf_nodes), TextTable::Seconds(bf_s),
                  TextTable::Seconds(bcf_s)});
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  fairbc::NamedGraph data = fairbc::LoadDataset("twitter");
  std::cout << "Dataset: " << data.graph.DebugString() << " ("
            << data.graph.NumUpper() + data.graph.NumLower()
            << " original nodes)\n";
  const auto defaults = data.spec.bs_defaults;

  std::vector<std::pair<std::uint32_t, std::uint32_t>> grid;
  std::vector<std::uint32_t> values;
  for (std::uint32_t alpha = defaults.alpha; alpha <= defaults.alpha + 5;
       ++alpha) {
    grid.emplace_back(alpha, defaults.beta);
    values.push_back(alpha);
  }
  SweepPruning(data.graph, data.spec.name, grid, "alpha", values);

  grid.clear();
  values.clear();
  for (std::uint32_t beta = defaults.beta; beta <= defaults.beta + 5; ++beta) {
    grid.emplace_back(defaults.alpha, beta);
    values.push_back(beta);
  }
  SweepPruning(data.graph, data.spec.name, grid, "beta", values);

  std::cout << "\nShape check (paper Fig. 4): BCFCore nodes <= BFCore nodes;\n"
               "BCFCore time slightly above BFCore time.\n";
  return 0;
}
