// Ablation A1 (DESIGN.md): effect of the graph-reduction level on the
// end-to-end enumeration time — no pruning vs FCore vs CFCore — inside
// FairBCEM and FairBCEM++ on IMDB. Quantifies §III-B's claim that
// colorful pruning pays for itself.

#include <iostream>

#include "bench_util/datasets.h"
#include "bench_util/sweep.h"
#include "bench_util/table.h"

namespace {

void Run(const fairbc::NamedGraph& data, const fairbc::Algorithm& algo,
         fairbc::TextTable& table) {
  for (auto level : {fairbc::PruningLevel::kNone, fairbc::PruningLevel::kCore,
                     fairbc::PruningLevel::kColorful}) {
    fairbc::EnumOptions options;
    options.pruning = level;
    options.time_budget_seconds = fairbc::BenchTimeBudget();
    auto r = RunCounting(algo, data.graph, data.spec.ss_defaults, options);
    const char* name = level == fairbc::PruningLevel::kNone     ? "none"
                       : level == fairbc::PruningLevel::kCore   ? "FCore"
                                                                : "CFCore";
    table.AddRow({algo.name, name,
                  fairbc::TextTable::Seconds(r.stats.prune_seconds),
                  fairbc::TextTable::Seconds(r.stats.enum_seconds),
                  fairbc::TextTable::Seconds(r.seconds, r.timed_out),
                  fairbc::TextTable::Num(r.stats.remaining_upper +
                                         r.stats.remaining_lower),
                  fairbc::TextTable::Num(r.count)});
  }
}

}  // namespace

int main() {
  fairbc::NamedGraph data = fairbc::LoadDataset("imdb");
  std::cout << "Dataset: " << data.graph.DebugString() << "\n";
  fairbc::PrintBanner(std::cout, "Ablation: graph-reduction level (imdb)");
  fairbc::TextTable table({"algorithm", "pruning", "prune (s)", "enum (s)",
                           "total (s)", "remaining nodes", "#SSFBC"});
  Run(data, fairbc::AlgoFairBCEM(), table);
  Run(data, fairbc::AlgoFairBCEMpp(), table);
  table.Print(std::cout);
  std::cout << "\nShape check: identical result counts across levels\n"
               "(pruning is lossless); CFCore leaves the fewest nodes and\n"
               "minimizes total time for the branch-and-bound engine.\n";
  return 0;
}
