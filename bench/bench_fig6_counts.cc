// Reproduces Fig. 6: the number of maximal bicliques (MBC), single-side
// fair bicliques (SSFBC) and bi-side fair bicliques (BSFBC) on Wiki-cat,
// varying alpha, beta and delta.
//
// Per the paper's protocol, MBC counts for the SSFBC comparison use
// maximal bicliques with |L| >= alpha and |R| >= 2*beta; for the BSFBC
// comparison |L| >= 2*alpha and |R| >= 2*beta.
//
// Paper shape: #SSFBC and #BSFBC exceed #MBC by orders of magnitude and
// all counts fall as alpha/beta/delta grow.

#include <iostream>

#include "bench_util/datasets.h"
#include "bench_util/sweep.h"
#include "bench_util/table.h"

namespace {

std::uint64_t CountMbc(const fairbc::BipartiteGraph& g, std::uint32_t min_u,
                       std::uint32_t min_v) {
  fairbc::CountSink sink;
  fairbc::EnumOptions options;
  options.time_budget_seconds = fairbc::BenchTimeBudget();
  fairbc::EnumerateMaximalBicliquesPruned(g, min_u, min_v, options,
                                          sink.AsSink());
  return sink.count();
}

}  // namespace

int main() {
  using fairbc::TextTable;
  fairbc::NamedGraph data = fairbc::LoadDataset("wiki");
  std::cout << "Dataset: " << data.graph.DebugString() << "\n";
  const auto ss = data.spec.ss_defaults;
  const auto bs = data.spec.bs_defaults;
  fairbc::EnumOptions options;
  options.time_budget_seconds = fairbc::BenchTimeBudget();
  const fairbc::AttrId nav = data.graph.NumAttrs(fairbc::Side::kLower);

  {
    fairbc::PrintBanner(std::cout, "Fig. 6(a,c,e): wiki SSFBC vs MBC");
    TextTable table({"param", "value", "#MBC", "#SSFBC"});
    auto add = [&](const std::string& param, std::uint32_t value,
                   const fairbc::FairBicliqueParams& p) {
      auto run = RunCounting(fairbc::AlgoFairBCEMpp(), data.graph, p, options);
      std::uint64_t mbc = CountMbc(data.graph, p.alpha, nav * p.beta);
      table.AddRow({param, TextTable::Num(value), TextTable::Num(mbc),
                    TextTable::Num(run.count)});
    };
    for (std::uint32_t alpha = ss.alpha; alpha <= ss.alpha + 4; ++alpha) {
      auto p = ss;
      p.alpha = alpha;
      add("alpha", alpha, p);
    }
    for (std::uint32_t beta = ss.beta; beta <= ss.beta + 4; ++beta) {
      auto p = ss;
      p.beta = beta;
      add("beta", beta, p);
    }
    for (std::uint32_t delta = 0; delta <= 5; ++delta) {
      auto p = ss;
      p.delta = delta;
      add("delta", delta, p);
    }
    table.Print(std::cout);
  }

  {
    fairbc::PrintBanner(std::cout, "Fig. 6(b,d,f): wiki BSFBC vs MBC");
    TextTable table({"param", "value", "#MBC", "#BSFBC"});
    const fairbc::AttrId nau = data.graph.NumAttrs(fairbc::Side::kUpper);
    auto add = [&](const std::string& param, std::uint32_t value,
                   const fairbc::FairBicliqueParams& p) {
      auto run = RunCounting(fairbc::AlgoBFairBCEMpp(), data.graph, p, options);
      std::uint64_t mbc = CountMbc(data.graph, nau * p.alpha, nav * p.beta);
      table.AddRow({param, TextTable::Num(value), TextTable::Num(mbc),
                    TextTable::Num(run.count)});
    };
    for (std::uint32_t alpha = bs.alpha; alpha <= bs.alpha + 4; ++alpha) {
      auto p = bs;
      p.alpha = alpha;
      add("alpha", alpha, p);
    }
    for (std::uint32_t beta = bs.beta; beta <= bs.beta + 4; ++beta) {
      auto p = bs;
      p.beta = beta;
      add("beta", beta, p);
    }
    for (std::uint32_t delta = 0; delta <= 5; ++delta) {
      auto p = bs;
      p.delta = delta;
      add("delta", delta, p);
    }
    table.Print(std::cout);
  }

  std::cout << "\nShape check (paper Fig. 6): #SSFBC, #BSFBC >> #MBC; all\n"
               "counts decrease as alpha/beta grow.\n";
  return 0;
}
