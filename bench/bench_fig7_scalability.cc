// Reproduces Fig. 7: scalability of the SSFBC and BSFBC enumeration
// algorithms on random edge samples (20%..100%) of DBLP.
//
// Paper shape: runtimes grow smoothly with the edge fraction; the ++
// variants grow flatter and stay fastest throughout.

#include <iostream>

#include "bench_util/datasets.h"
#include "bench_util/sweep.h"
#include "bench_util/table.h"
#include "graph/generators.h"

int main() {
  using fairbc::TextTable;
  fairbc::NamedGraph data = fairbc::LoadDataset("dblp");
  std::cout << "Dataset: " << data.graph.DebugString() << "\n";
  fairbc::EnumOptions options;
  options.time_budget_seconds = fairbc::BenchTimeBudget();

  fairbc::PrintBanner(std::cout, "Fig. 7(a): dblp SSFBC algorithms (vary m)");
  TextTable ss_table({"m", "|E|", "FairBCEM (s)", "FairBCEM++ (s)", "#SSFBC"});
  for (int pct : {20, 40, 60, 80, 100}) {
    fairbc::BipartiteGraph sample =
        fairbc::SampleEdges(data.graph, pct / 100.0, /*seed=*/pct);
    auto bcem = RunCounting(fairbc::AlgoFairBCEM(), sample,
                            data.spec.ss_defaults, options);
    auto bpp = RunCounting(fairbc::AlgoFairBCEMpp(), sample,
                           data.spec.ss_defaults, options);
    ss_table.AddRow({std::to_string(pct) + "%", TextTable::Num(sample.NumEdges()),
                     TextTable::Seconds(bcem.seconds, bcem.timed_out),
                     TextTable::Seconds(bpp.seconds, bpp.timed_out),
                     TextTable::Num(bpp.count)});
  }
  ss_table.Print(std::cout);

  fairbc::PrintBanner(std::cout, "Fig. 7(b): dblp BSFBC algorithms (vary m)");
  TextTable bs_table({"m", "|E|", "BFairBCEM (s)", "BFairBCEM++ (s)",
                      "#BSFBC"});
  for (int pct : {20, 40, 60, 80, 100}) {
    fairbc::BipartiteGraph sample =
        fairbc::SampleEdges(data.graph, pct / 100.0, /*seed=*/pct);
    auto bcem = RunCounting(fairbc::AlgoBFairBCEM(), sample,
                            data.spec.bs_defaults, options);
    auto bpp = RunCounting(fairbc::AlgoBFairBCEMpp(), sample,
                           data.spec.bs_defaults, options);
    bs_table.AddRow({std::to_string(pct) + "%", TextTable::Num(sample.NumEdges()),
                     TextTable::Seconds(bcem.seconds, bcem.timed_out),
                     TextTable::Seconds(bpp.seconds, bpp.timed_out),
                     TextTable::Num(bpp.count)});
  }
  bs_table.Print(std::cout);

  std::cout << "\nShape check (paper Fig. 7): runtime grows smoothly with m;\n"
               "++ variants stay fastest and flattest.\n";
  return 0;
}
