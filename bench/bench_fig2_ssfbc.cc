// Reproduces Fig. 2: runtime of NSF, FairBCEM and FairBCEM++ for
// single-side fair biclique enumeration, varying alpha, beta and delta
// on the five datasets.
//
// Paper shape: FairBCEM++ fastest, FairBCEM next (the paper's gap is
// >= 100x at KONECT scale; at our laptop scale it is smaller but always
// > 1), NSF times out almost everywhere (INF); all runtimes decrease as
// alpha/beta/delta grow. NSF is swept on the smallest dataset only —
// exactly as the paper could only run it on one dataset.

#include <iostream>

#include "bench_util/datasets.h"
#include "bench_util/sweep.h"
#include "bench_util/table.h"

namespace {

using fairbc::TextTable;

void Sweep(const fairbc::NamedGraph& data, const std::string& param_name,
           const std::vector<fairbc::FairBicliqueParams>& grid,
           const std::vector<std::uint32_t>& values, bool include_nsf) {
  fairbc::PrintBanner(std::cout, "Fig. 2: " + data.spec.name + " (vary " +
                                     param_name + ")");
  TextTable table({param_name, "NSF (s)", "FairBCEM (s)", "FairBCEM++ (s)",
                   "#SSFBC"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    fairbc::EnumOptions slow_opt;
    slow_opt.time_budget_seconds = 1.5;
    fairbc::EnumOptions opt;
    opt.time_budget_seconds = fairbc::BenchTimeBudget();

    std::string nsf_cell = "-";
    if (include_nsf) {
      auto nsf = RunCounting(fairbc::AlgoNSF(), data.graph, grid[i], slow_opt);
      nsf_cell = TextTable::Seconds(nsf.seconds, nsf.timed_out);
    }
    auto bcem = RunCounting(fairbc::AlgoFairBCEM(), data.graph, grid[i], opt);
    auto bpp = RunCounting(fairbc::AlgoFairBCEMpp(), data.graph, grid[i], opt);
    table.AddRow({TextTable::Num(values[i]), nsf_cell,
                  TextTable::Seconds(bcem.seconds, bcem.timed_out),
                  TextTable::Seconds(bpp.seconds, bpp.timed_out),
                  TextTable::Num(bpp.count)});
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  for (const auto& data : fairbc::LoadStandardDatasets()) {
    const fairbc::FairBicliqueParams defaults = data.spec.ss_defaults;
    const bool include_nsf = data.spec.name == "youtube";

    std::vector<fairbc::FairBicliqueParams> grid;
    std::vector<std::uint32_t> values;
    for (std::uint32_t alpha = defaults.alpha;
         alpha <= defaults.alpha + 4; ++alpha) {
      auto p = defaults;
      p.alpha = alpha;
      grid.push_back(p);
      values.push_back(alpha);
    }
    Sweep(data, "alpha", grid, values, include_nsf);

    grid.clear();
    values.clear();
    for (std::uint32_t beta = defaults.beta;
         beta <= defaults.beta + 4; ++beta) {
      auto p = defaults;
      p.beta = beta;
      grid.push_back(p);
      values.push_back(beta);
    }
    Sweep(data, "beta", grid, values, include_nsf);

    grid.clear();
    values.clear();
    for (std::uint32_t delta = 0; delta <= 5; ++delta) {
      auto p = defaults;
      p.delta = delta;
      grid.push_back(p);
      values.push_back(delta);
    }
    Sweep(data, "delta", grid, values, include_nsf);
  }
  std::cout << "\nShape check (paper Fig. 2): FairBCEM++ < FairBCEM < NSF "
               "(INF);\nruntimes fall as alpha/beta grow.\n";
  return 0;
}
