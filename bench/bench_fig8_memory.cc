// Reproduces Fig. 8: memory overhead of the enumeration algorithms on
// all datasets. As in the paper, the reported figure excludes the input
// graph itself: it is the algorithm-owned auxiliary structures, which
// are dominated by the CFCore/BCFCore data (2-hop graph and color
// multiplicity matrices) shared by the plain and ++ variants.
//
// Paper shape: FairBCEM and FairBCEM++ use almost the same memory
// (likewise the bi-side pair), usually above the graph size.
//
// The 2-hop graph is accounted exactly as its CSR arrays
// (UnipartiteGraph::MemoryBytes: offsets + neighbors + attrs), not the
// old per-vector capacity approximation; the shape above still holds
// on all standard datasets.

#include <iostream>

#include "bench_util/datasets.h"
#include "bench_util/sweep.h"
#include "bench_util/table.h"
#include "common/memory.h"

namespace {

std::string RunMem(const fairbc::Algorithm& algo,
                   const fairbc::NamedGraph& data,
                   const fairbc::FairBicliqueParams& params) {
  fairbc::EnumOptions options;
  options.time_budget_seconds = fairbc::BenchTimeBudget();
  fairbc::CountSink sink;
  fairbc::EnumStats stats =
      algo.run(data.graph, params, options, sink.AsSink());
  return fairbc::HumanBytes(stats.peak_struct_bytes);
}

}  // namespace

int main() {
  auto datasets = fairbc::LoadStandardDatasets();
  fairbc::PrintBanner(std::cout, "Fig. 8: memory overhead (excl. input graph)");
  std::vector<std::string> header{"Dataset", "graph size", "FairBCEM",
                                  "FairBCEM++", "BFairBCEM", "BFairBCEM++"};
  fairbc::TextTable table(header);
  for (const auto& d : datasets) {
    table.AddRow({d.spec.name, fairbc::HumanBytes(d.graph.MemoryBytes()),
                  RunMem(fairbc::AlgoFairBCEM(), d, d.spec.ss_defaults),
                  RunMem(fairbc::AlgoFairBCEMpp(), d, d.spec.ss_defaults),
                  RunMem(fairbc::AlgoBFairBCEM(), d, d.spec.bs_defaults),
                  RunMem(fairbc::AlgoBFairBCEMpp(), d, d.spec.bs_defaults)});
  }
  table.Print(std::cout);
  std::cout << "\nProcess peak RSS: " << fairbc::HumanBytes(fairbc::PeakRssBytes())
            << "\nShape check (paper Fig. 8): the plain and ++ variants use\n"
               "nearly identical memory (CFCore structures dominate).\n";
  return 0;
}
