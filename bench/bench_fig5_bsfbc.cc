// Reproduces Fig. 5: runtime of BNSF, BFairBCEM and BFairBCEM++ for
// bi-side fair biclique enumeration, varying alpha, beta and delta on
// the five datasets.
//
// Paper shape: BFairBCEM++ is ~3-100x faster than BFairBCEM; BNSF times
// out (INF) nearly everywhere; runtimes fall as alpha/beta/delta grow.

#include <iostream>

#include "bench_util/datasets.h"
#include "bench_util/sweep.h"
#include "bench_util/table.h"

namespace {

using fairbc::TextTable;

void Sweep(const fairbc::NamedGraph& data, const std::string& param_name,
           const std::vector<fairbc::FairBicliqueParams>& grid,
           const std::vector<std::uint32_t>& values, bool include_bnsf) {
  fairbc::PrintBanner(std::cout, "Fig. 5: " + data.spec.name + " (vary " +
                                     param_name + ")");
  TextTable table({param_name, "BNSF (s)", "BFairBCEM (s)", "BFairBCEM++ (s)",
                   "#BSFBC"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    fairbc::EnumOptions slow_opt;
    slow_opt.time_budget_seconds = 1.5;
    fairbc::EnumOptions opt;
    opt.time_budget_seconds = fairbc::BenchTimeBudget();

    std::string bnsf_cell = "-";
    if (include_bnsf) {
      auto bnsf = RunCounting(fairbc::AlgoBNSF(), data.graph, grid[i], slow_opt);
      bnsf_cell = TextTable::Seconds(bnsf.seconds, bnsf.timed_out);
    }
    auto bcem = RunCounting(fairbc::AlgoBFairBCEM(), data.graph, grid[i], opt);
    auto bpp = RunCounting(fairbc::AlgoBFairBCEMpp(), data.graph, grid[i], opt);
    table.AddRow({TextTable::Num(values[i]), bnsf_cell,
                  TextTable::Seconds(bcem.seconds, bcem.timed_out),
                  TextTable::Seconds(bpp.seconds, bpp.timed_out),
                  TextTable::Num(bpp.count)});
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  for (const auto& data : fairbc::LoadStandardDatasets()) {
    const fairbc::FairBicliqueParams defaults = data.spec.bs_defaults;
    const bool include_bnsf = data.spec.name == "youtube";

    std::vector<fairbc::FairBicliqueParams> grid;
    std::vector<std::uint32_t> values;
    for (std::uint32_t alpha = defaults.alpha;
         alpha <= defaults.alpha + 4; ++alpha) {
      auto p = defaults;
      p.alpha = alpha;
      grid.push_back(p);
      values.push_back(alpha);
    }
    Sweep(data, "alpha", grid, values, include_bnsf);

    grid.clear();
    values.clear();
    for (std::uint32_t beta = defaults.beta;
         beta <= defaults.beta + 4; ++beta) {
      auto p = defaults;
      p.beta = beta;
      grid.push_back(p);
      values.push_back(beta);
    }
    Sweep(data, "beta", grid, values, include_bnsf);

    grid.clear();
    values.clear();
    for (std::uint32_t delta = 0; delta <= 5; ++delta) {
      auto p = defaults;
      p.delta = delta;
      grid.push_back(p);
      values.push_back(delta);
    }
    Sweep(data, "delta", grid, values, include_bnsf);
  }
  std::cout << "\nShape check (paper Fig. 5): BFairBCEM++ < BFairBCEM < BNSF "
               "(INF);\nruntimes fall as alpha/beta grow.\n";
  return 0;
}
