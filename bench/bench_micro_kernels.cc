// Google-benchmark microbenchmarks for the library's kernels: core
// peeling, 2-hop construction, coloring, combination counting, the
// enumeration engines on a fixed mid-size affiliation graph, and the
// set-intersection kernels of core/kernels.h.
//
// `--kernel_matrix[=quick]` bypasses Google Benchmark and prints one JSON
// document to stdout: run metadata plus a "kernel_matrix" array timing
// every kernel across size ratios 1:1..1:1024 and sparse..dense overlap
// windows, with the adaptive dispatcher's choice and its speedup over the
// scalar merge per cell. docs/PERF.md explains how to re-baseline.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <random>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util/meta.h"
#include "core/cfcore.h"
#include "core/coloring.h"
#include "core/fcore.h"
#include "core/kernels.h"
#include "core/pipeline.h"
#include "core/reduction_context.h"
#include "core/two_hop_graph.h"
#include "fairness/fair_vector.h"
#include "graph/generators.h"

namespace {

const fairbc::BipartiteGraph& TestGraph() {
  static const fairbc::BipartiteGraph* g = [] {
    fairbc::AffiliationConfig config;
    config.num_upper = 2000;
    config.num_lower = 1000;
    config.num_communities = 60;
    config.seed = 99;
    return new fairbc::BipartiteGraph(fairbc::MakeAffiliation(config));
  }();
  return *g;
}

void BM_FCore(benchmark::State& state) {
  const auto& g = TestGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fairbc::FCore(g, 3, 2));
  }
}
BENCHMARK(BM_FCore);

void BM_BFCore(benchmark::State& state) {
  const auto& g = TestGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fairbc::BFCore(g, 2, 2));
  }
}
BENCHMARK(BM_BFCore);

void BM_CFCore(benchmark::State& state) {
  const auto& g = TestGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fairbc::CFCore(g, 3, 2));
  }
}
BENCHMARK(BM_CFCore);

void BM_TwoHopConstruction(benchmark::State& state) {
  const auto& g = TestGraph();
  fairbc::SideMasks masks = fairbc::FCore(g, 3, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fairbc::Construct2HopGraph(g, fairbc::Side::kLower, 3, masks));
  }
}
BENCHMARK(BM_TwoHopConstruction);

void BM_GreedyColoring(benchmark::State& state) {
  const auto& g = TestGraph();
  fairbc::SideMasks masks = fairbc::FCore(g, 3, 2);
  fairbc::UnipartiteGraph h =
      fairbc::Construct2HopGraph(g, fairbc::Side::kLower, 3, masks);
  std::vector<char> alive(h.NumVertices(), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fairbc::GreedyColor(h, alive));
  }
}
BENCHMARK(BM_GreedyColoring);

void BM_JonesPlassmannColoring(benchmark::State& state) {
  const auto& g = TestGraph();
  fairbc::SideMasks masks = fairbc::FCore(g, 3, 2);
  fairbc::UnipartiteGraph h =
      fairbc::Construct2HopGraph(g, fairbc::Side::kLower, 3, masks);
  std::vector<char> alive(h.NumVertices(), 1);
  const unsigned threads = static_cast<unsigned>(state.range(0));
  fairbc::ReductionContext ctx(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fairbc::JonesPlassmannColor(h, alive, &ctx));
  }
}
BENCHMARK(BM_JonesPlassmannColoring)->Arg(1)->Arg(4);

void BM_TwoHopConstructionParallel(benchmark::State& state) {
  const auto& g = TestGraph();
  fairbc::SideMasks masks = fairbc::FCore(g, 3, 2);
  const unsigned threads = static_cast<unsigned>(state.range(0));
  fairbc::ReductionContext ctx(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fairbc::Construct2HopGraph(g, fairbc::Side::kLower, 3, masks, &ctx));
  }
}
BENCHMARK(BM_TwoHopConstructionParallel)->Arg(1)->Arg(4);

void BM_MaximalFairVectors(benchmark::State& state) {
  fairbc::SizeVector counts{static_cast<std::uint32_t>(state.range(0)),
                            static_cast<std::uint32_t>(state.range(0) / 2)};
  fairbc::FairnessSpec spec{2, 2, 0.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(fairbc::MaximalFairVectors(counts, spec));
  }
}
BENCHMARK(BM_MaximalFairVectors)->Arg(8)->Arg(64)->Arg(1024);

void BM_CountMaximalFairSubsets(benchmark::State& state) {
  fairbc::SizeVector counts{static_cast<std::uint32_t>(state.range(0)),
                            static_cast<std::uint32_t>(state.range(0)) / 2};
  fairbc::FairnessSpec spec{2, 2, 0.4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(fairbc::CountMaximalFairSubsets(counts, spec));
  }
}
BENCHMARK(BM_CountMaximalFairSubsets)->Arg(16)->Arg(256);

void BM_EnumerateSSFBCPlusPlus(benchmark::State& state) {
  const auto& g = TestGraph();
  fairbc::FairBicliqueParams params{3, 2, 2, 0.0};
  for (auto _ : state) {
    fairbc::CountSink sink;
    fairbc::EnumerateSSFBCPlusPlus(g, params, {}, sink.AsSink());
    benchmark::DoNotOptimize(sink.count());
  }
}
BENCHMARK(BM_EnumerateSSFBCPlusPlus);

void BM_EnumerateSSFBC(benchmark::State& state) {
  const auto& g = TestGraph();
  fairbc::FairBicliqueParams params{3, 2, 2, 0.0};
  for (auto _ : state) {
    fairbc::CountSink sink;
    fairbc::EnumerateSSFBC(g, params, {}, sink.AsSink());
    benchmark::DoNotOptimize(sink.count());
  }
}
BENCHMARK(BM_EnumerateSSFBC);

void BM_EnumerateBSFBCPlusPlus(benchmark::State& state) {
  const auto& g = TestGraph();
  fairbc::FairBicliqueParams params{2, 2, 2, 0.0};
  for (auto _ : state) {
    fairbc::CountSink sink;
    fairbc::EnumerateBSFBCPlusPlus(g, params, {}, sink.AsSink());
    benchmark::DoNotOptimize(sink.count());
  }
}
BENCHMARK(BM_EnumerateBSFBCPlusPlus);

// --- Intersection-kernel microbenchmarks ------------------------------------

// Sorted duplicate-free id set of `n` elements with mean gap `mean_gap`
// (window span ~ n * mean_gap, i.e. `mean_gap` bits per element).
std::vector<fairbc::VertexId> MakeIdSet(std::mt19937& rng, std::size_t n,
                                        std::uint32_t mean_gap) {
  std::uniform_int_distribution<std::uint32_t> gap(
      1, mean_gap > 1 ? 2 * mean_gap - 1 : 1);
  std::vector<fairbc::VertexId> v(n);
  fairbc::VertexId cur = 0;
  for (std::size_t i = 0; i < n; ++i) {
    cur += gap(rng);
    v[i] = cur;
  }
  return v;
}

// Random sorted `n`-subset of `from` (the small side of a skewed pair —
// mirrors a candidate set drawn from a neighbor list).
std::vector<fairbc::VertexId> MakeSubset(std::mt19937& rng,
                                         const std::vector<fairbc::VertexId>& from,
                                         std::size_t n) {
  std::vector<fairbc::VertexId> out;
  out.reserve(n);
  std::sample(from.begin(), from.end(), std::back_inserter(out), n, rng);
  return out;  // std::sample preserves order => still sorted.
}

void BM_IntersectAdaptive(benchmark::State& state) {
  std::mt19937 rng(1234);
  const auto ratio = static_cast<std::size_t>(state.range(0));
  const std::size_t small_n = 2048;
  auto b = MakeIdSet(rng, small_n * ratio, 16);
  auto a = MakeSubset(rng, b, small_n);
  std::vector<fairbc::VertexId> dst(small_n);
  fairbc::ScratchArena arena;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fairbc::IntersectInto(dst.data(), a, b, &arena));
  }
}
BENCHMARK(BM_IntersectAdaptive)->Arg(1)->Arg(16)->Arg(256);

// --- `--kernel_matrix` JSON mode --------------------------------------------

// ns/op of `op`: min average across fixed-size batches until the cell's
// time budget is spent. The min filters scheduler stalls and cgroup
// throttling, which otherwise dominate short windows on shared runners.
template <typename Op>
double TimeNs(Op&& op, double budget_ms) {
  using Clock = std::chrono::steady_clock;
  // Warm-up: loads caches and grows the arena to its high water.
  op();
  // Size batches so one batch is ~1/16 of the budget.
  const auto t0 = Clock::now();
  op();
  const double probe_ns =
      std::max(1.0, std::chrono::duration<double, std::nano>(Clock::now() - t0)
                        .count());
  const std::uint64_t batch = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(budget_ms * 1e6 / 16.0 / probe_ns));
  const auto deadline =
      Clock::now() +
      std::chrono::microseconds(static_cast<std::int64_t>(budget_ms * 1000));
  double best = 1e300;
  do {
    const auto start = Clock::now();
    for (std::uint64_t r = 0; r < batch; ++r) op();
    const double ns =
        std::chrono::duration<double, std::nano>(Clock::now() - start).count() /
        static_cast<double>(batch);
    best = std::min(best, ns);
  } while (Clock::now() < deadline);
  return best;
}

int RunKernelMatrix(bool quick) {
  const std::size_t small_n = quick ? 1024 : 4096;
  const double budget_ms = quick ? 2.0 : 20.0;
  const std::size_t ratios[] = {1, 4, 16, 64, 256, 1024};
  struct Density {
    const char* label;
    std::uint32_t bits;  // mean window bits per element.
  };
  const Density densities[] = {{"dense", 2}, {"mid", 16}, {"sparse", 64}};

  std::ostringstream os;
  os << "{\"meta\":"
     << fairbc::RunMetadataJson(fairbc::CollectRunMetadata(/*dataset_seed=*/1234))
     << ",\"quick\":" << (quick ? "true" : "false") << ",\"kernel_matrix\":[";
  bool first_cell = true;
  for (std::size_t ratio : ratios) {
    for (const Density& d : densities) {
      std::mt19937 rng(1234);
      const auto b = MakeIdSet(rng, small_n * ratio, d.bits);
      const auto a = MakeSubset(rng, b, small_n);
      std::vector<fairbc::VertexId> dst(small_n);
      fairbc::ScratchArena arena;

      const double merge_ns = TimeNs(
          [&] {
            benchmark::DoNotOptimize(
                fairbc::MergeIntersectInto(dst.data(), a, b));
          },
          budget_ms);
      const double gallop_ns = TimeNs(
          [&] {
            benchmark::DoNotOptimize(
                fairbc::GallopIntersectInto(dst.data(), a, b));
          },
          budget_ms);
      const double bitset_ns = TimeNs(
          [&] {
            benchmark::DoNotOptimize(
                fairbc::BitsetIntersectInto(dst.data(), a, b, arena));
          },
          budget_ms);
      fairbc::KernelStats stats;
      const double adaptive_ns = TimeNs(
          [&] {
            benchmark::DoNotOptimize(
                fairbc::IntersectInto(dst.data(), a, b, &arena, &stats));
          },
          budget_ms);
      const char* dispatch = stats.gallop > 0   ? "gallop"
                             : stats.bitset > 0 ? "bitset"
                                                : "merge";

      if (!first_cell) os << ",";
      first_cell = false;
      os << "{\"ratio\":" << ratio << ",\"density\":\"" << d.label
         << "\",\"density_bits\":" << d.bits << ",\"small\":" << small_n
         << ",\"large\":" << small_n * ratio << ",\"merge_ns\":" << merge_ns
         << ",\"gallop_ns\":" << gallop_ns << ",\"bitset_ns\":" << bitset_ns
         << ",\"adaptive_ns\":" << adaptive_ns << ",\"dispatch\":\"" << dispatch
         << "\",\"speedup_vs_merge\":" << merge_ns / adaptive_ns << "}";
    }
  }
  os << "]}";
  std::printf("%s\n", os.str().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--kernel_matrix" || arg == "--kernel_matrix=quick") {
      return RunKernelMatrix(arg == "--kernel_matrix=quick");
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
