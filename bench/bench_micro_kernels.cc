// Google-benchmark microbenchmarks for the library's kernels: core
// peeling, 2-hop construction, coloring, combination counting, and the
// enumeration engines on a fixed mid-size affiliation graph.

#include <benchmark/benchmark.h>

#include "core/cfcore.h"
#include "core/coloring.h"
#include "core/fcore.h"
#include "core/pipeline.h"
#include "core/reduction_context.h"
#include "core/two_hop_graph.h"
#include "fairness/fair_vector.h"
#include "graph/generators.h"

namespace {

const fairbc::BipartiteGraph& TestGraph() {
  static const fairbc::BipartiteGraph* g = [] {
    fairbc::AffiliationConfig config;
    config.num_upper = 2000;
    config.num_lower = 1000;
    config.num_communities = 60;
    config.seed = 99;
    return new fairbc::BipartiteGraph(fairbc::MakeAffiliation(config));
  }();
  return *g;
}

void BM_FCore(benchmark::State& state) {
  const auto& g = TestGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fairbc::FCore(g, 3, 2));
  }
}
BENCHMARK(BM_FCore);

void BM_BFCore(benchmark::State& state) {
  const auto& g = TestGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fairbc::BFCore(g, 2, 2));
  }
}
BENCHMARK(BM_BFCore);

void BM_CFCore(benchmark::State& state) {
  const auto& g = TestGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fairbc::CFCore(g, 3, 2));
  }
}
BENCHMARK(BM_CFCore);

void BM_TwoHopConstruction(benchmark::State& state) {
  const auto& g = TestGraph();
  fairbc::SideMasks masks = fairbc::FCore(g, 3, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fairbc::Construct2HopGraph(g, fairbc::Side::kLower, 3, masks));
  }
}
BENCHMARK(BM_TwoHopConstruction);

void BM_GreedyColoring(benchmark::State& state) {
  const auto& g = TestGraph();
  fairbc::SideMasks masks = fairbc::FCore(g, 3, 2);
  fairbc::UnipartiteGraph h =
      fairbc::Construct2HopGraph(g, fairbc::Side::kLower, 3, masks);
  std::vector<char> alive(h.NumVertices(), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fairbc::GreedyColor(h, alive));
  }
}
BENCHMARK(BM_GreedyColoring);

void BM_JonesPlassmannColoring(benchmark::State& state) {
  const auto& g = TestGraph();
  fairbc::SideMasks masks = fairbc::FCore(g, 3, 2);
  fairbc::UnipartiteGraph h =
      fairbc::Construct2HopGraph(g, fairbc::Side::kLower, 3, masks);
  std::vector<char> alive(h.NumVertices(), 1);
  const unsigned threads = static_cast<unsigned>(state.range(0));
  fairbc::ReductionContext ctx(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fairbc::JonesPlassmannColor(h, alive, &ctx));
  }
}
BENCHMARK(BM_JonesPlassmannColoring)->Arg(1)->Arg(4);

void BM_TwoHopConstructionParallel(benchmark::State& state) {
  const auto& g = TestGraph();
  fairbc::SideMasks masks = fairbc::FCore(g, 3, 2);
  const unsigned threads = static_cast<unsigned>(state.range(0));
  fairbc::ReductionContext ctx(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fairbc::Construct2HopGraph(g, fairbc::Side::kLower, 3, masks, &ctx));
  }
}
BENCHMARK(BM_TwoHopConstructionParallel)->Arg(1)->Arg(4);

void BM_MaximalFairVectors(benchmark::State& state) {
  fairbc::SizeVector counts{static_cast<std::uint32_t>(state.range(0)),
                            static_cast<std::uint32_t>(state.range(0) / 2)};
  fairbc::FairnessSpec spec{2, 2, 0.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(fairbc::MaximalFairVectors(counts, spec));
  }
}
BENCHMARK(BM_MaximalFairVectors)->Arg(8)->Arg(64)->Arg(1024);

void BM_CountMaximalFairSubsets(benchmark::State& state) {
  fairbc::SizeVector counts{static_cast<std::uint32_t>(state.range(0)),
                            static_cast<std::uint32_t>(state.range(0)) / 2};
  fairbc::FairnessSpec spec{2, 2, 0.4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(fairbc::CountMaximalFairSubsets(counts, spec));
  }
}
BENCHMARK(BM_CountMaximalFairSubsets)->Arg(16)->Arg(256);

void BM_EnumerateSSFBCPlusPlus(benchmark::State& state) {
  const auto& g = TestGraph();
  fairbc::FairBicliqueParams params{3, 2, 2, 0.0};
  for (auto _ : state) {
    fairbc::CountSink sink;
    fairbc::EnumerateSSFBCPlusPlus(g, params, {}, sink.AsSink());
    benchmark::DoNotOptimize(sink.count());
  }
}
BENCHMARK(BM_EnumerateSSFBCPlusPlus);

void BM_EnumerateSSFBC(benchmark::State& state) {
  const auto& g = TestGraph();
  fairbc::FairBicliqueParams params{3, 2, 2, 0.0};
  for (auto _ : state) {
    fairbc::CountSink sink;
    fairbc::EnumerateSSFBC(g, params, {}, sink.AsSink());
    benchmark::DoNotOptimize(sink.count());
  }
}
BENCHMARK(BM_EnumerateSSFBC);

void BM_EnumerateBSFBCPlusPlus(benchmark::State& state) {
  const auto& g = TestGraph();
  fairbc::FairBicliqueParams params{2, 2, 2, 0.0};
  for (auto _ : state) {
    fairbc::CountSink sink;
    fairbc::EnumerateBSFBCPlusPlus(g, params, {}, sink.AsSink());
    benchmark::DoNotOptimize(sink.count());
  }
}
BENCHMARK(BM_EnumerateBSFBCPlusPlus);

}  // namespace

BENCHMARK_MAIN();
