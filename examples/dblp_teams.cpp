// DBLP case study (paper §V-C, Fig. 9): find fair research teams in a
// synthetic author-publication network shaped like the paper's DBDA /
// DBDS subgraphs.
//
// Upper side: papers, attribute = venue area (DB=0, AI=1).
// Lower side: scholars, attribute = seniority (senior=0, junior=1).
//
// A single-side fair biclique is a set of papers all co-authored by a
// scholar group with a balanced senior/junior mix; a bi-side fair
// biclique additionally balances DB and AI papers — the paper's
// "team of experts with a similar number of junior and senior experts
// across research areas".

#include <iostream>

#include "core/pipeline.h"
#include "graph/generators.h"

int main() {
  // Synthetic DBDA stand-in: collaboration communities (research groups)
  // with overlapping membership (DESIGN.md §4 substitution).
  fairbc::AffiliationConfig config;
  config.num_upper = 4000;   // papers
  config.num_lower = 2500;   // scholars
  config.num_communities = 260;
  config.community_upper_min = 3;
  config.community_upper_max = 9;    // papers per group
  config.community_lower_min = 3;
  config.community_lower_max = 8;    // scholars per group
  config.noise_fraction = 0.15;
  config.num_upper_attrs = 2;  // DB / AI
  config.num_lower_attrs = 2;  // senior / junior
  config.seed = 1234;
  fairbc::BipartiteGraph dblp = fairbc::MakeAffiliation(config);
  std::cout << "Synthetic DBDA collaboration network: " << dblp.DebugString()
            << "\n\n";

  // Fig. 9(a): single-side fair teams, alpha=3, beta=3, delta=2.
  fairbc::FairBicliqueParams ss;
  ss.alpha = 3;
  ss.beta = 3;
  ss.delta = 2;
  fairbc::CollectSink teams;
  fairbc::EnumStats stats =
      fairbc::EnumerateSSFBCPlusPlus(dblp, ss, {}, teams.AsSink());
  std::cout << "SSFBC teams (alpha=3, beta=3, delta=2): " << stats.num_results
            << " found in " << stats.enum_seconds + stats.prune_seconds
            << " s\n";
  std::size_t shown = 0;
  for (const fairbc::Biclique& team : teams.results()) {
    if (shown++ == 3) break;
    int senior = 0, junior = 0;
    for (auto s : team.lower) {
      (dblp.Attr(fairbc::Side::kLower, s) == 0 ? senior : junior)++;
    }
    std::cout << "  team: " << team.upper.size() << " joint papers, "
              << senior << " senior + " << junior << " junior scholars\n";
  }

  // Fig. 9(b): bi-side fair teams, alpha=1, beta=2, delta=2 — the mix is
  // enforced on the paper side too.
  fairbc::FairBicliqueParams bs;
  bs.alpha = 1;
  bs.beta = 2;
  bs.delta = 2;
  fairbc::CollectSink biteams;
  fairbc::EnumStats bstats =
      fairbc::EnumerateBSFBCPlusPlus(dblp, bs, {}, biteams.AsSink());
  std::cout << "\nBSFBC teams (alpha=1, beta=2, delta=2): "
            << bstats.num_results << " found in "
            << bstats.enum_seconds + bstats.prune_seconds << " s\n";
  shown = 0;
  for (const fairbc::Biclique& team : biteams.results()) {
    if (shown++ == 3) break;
    int db = 0, ai = 0, senior = 0, junior = 0;
    for (auto p : team.upper) {
      (dblp.Attr(fairbc::Side::kUpper, p) == 0 ? db : ai)++;
    }
    for (auto s : team.lower) {
      (dblp.Attr(fairbc::Side::kLower, s) == 0 ? senior : junior)++;
    }
    std::cout << "  team: " << db << " DB + " << ai << " AI papers, "
              << senior << " senior + " << junior << " junior scholars\n";
  }
  std::cout << "\nEvery reported team is a maximal biclique whose member mix"
               "\nsatisfies the fairness constraints — the paper's fair"
               "\nresearch communities.\n";
  return 0;
}
