// Quickstart: build a small attributed bipartite graph, enumerate its
// single-side and bi-side fair bicliques, and print them.
//
//   ./examples/quickstart
//
// The graph models a tiny collaboration network: papers on the upper
// side (attribute: DB=0 / AI=1 venue) and scholars on the lower side
// (attribute: senior=0 / junior=1).

#include <iostream>

#include "core/pipeline.h"
#include "graph/builder.h"

namespace {

const char* ScholarName(fairbc::VertexId v) {
  static const char* kNames[] = {"alice (senior)",  "bob (senior)",
                                 "carol (senior)",  "dave (junior)",
                                 "erin (junior)",   "frank (junior)"};
  return kNames[v];
}

}  // namespace

int main() {
  // Papers p0..p3 (attrs: DB, DB, AI, AI), scholars s0..s5
  // (attrs: senior, senior, senior, junior, junior, junior).
  fairbc::BipartiteGraphBuilder builder(4, 6);
  builder.SetNumAttrs(fairbc::Side::kUpper, 2);
  builder.SetNumAttrs(fairbc::Side::kLower, 2);
  builder.SetAttrs(fairbc::Side::kUpper, {0, 0, 1, 1});
  builder.SetAttrs(fairbc::Side::kLower, {0, 0, 0, 1, 1, 1});
  // A joint project: papers 0-2 co-authored by scholars 0,1,3,4.
  for (fairbc::VertexId p : {0u, 1u, 2u}) {
    for (fairbc::VertexId s : {0u, 1u, 3u, 4u}) builder.AddEdge(p, s);
  }
  // A second group around papers 2,3 with scholars 1,2,4,5.
  for (fairbc::VertexId p : {2u, 3u}) {
    for (fairbc::VertexId s : {1u, 2u, 4u, 5u}) builder.AddEdge(p, s);
  }
  auto built = builder.Build();
  if (!built.ok()) {
    std::cerr << "graph construction failed: " << built.status().ToString()
              << "\n";
    return 1;
  }
  fairbc::BipartiteGraph graph = std::move(built).value();
  std::cout << "Input: " << graph.DebugString() << "\n\n";

  // Single-side fair bicliques: teams backed by >= 2 papers whose scholar
  // set has >= 2 seniors, >= 2 juniors, and difference <= 1.
  fairbc::FairBicliqueParams params;
  params.alpha = 2;
  params.beta = 2;
  params.delta = 1;

  std::cout << "Single-side fair bicliques (alpha=2, beta=2, delta=1):\n";
  fairbc::CollectSink ss;
  fairbc::EnumStats stats =
      fairbc::EnumerateSSFBCPlusPlus(graph, params, {}, ss.AsSink());
  for (const fairbc::Biclique& b : ss.results()) {
    std::cout << "  papers {";
    for (auto p : b.upper) std::cout << " p" << p;
    std::cout << " }  scholars {";
    for (auto s : b.lower) std::cout << " " << ScholarName(s);
    std::cout << " }\n";
  }
  std::cout << "  -> " << stats.num_results << " result(s), "
            << stats.search_nodes << " search nodes, pruned graph "
            << stats.remaining_upper << "x" << stats.remaining_lower << "\n\n";

  // Bi-side: additionally require a balanced mix of DB and AI papers.
  fairbc::FairBicliqueParams bi;
  bi.alpha = 1;
  bi.beta = 2;
  bi.delta = 1;
  std::cout << "Bi-side fair bicliques (alpha=1, beta=2, delta=1):\n";
  fairbc::CollectSink bs;
  fairbc::EnumerateBSFBCPlusPlus(graph, bi, {}, bs.AsSink());
  for (const fairbc::Biclique& b : bs.results()) {
    std::cout << "  papers {";
    for (auto p : b.upper) std::cout << " p" << p;
    std::cout << " }  scholars {";
    for (auto s : b.lower) std::cout << " " << ScholarName(s);
    std::cout << " }\n";
  }
  if (bs.results().empty()) std::cout << "  (none)\n";
  return 0;
}
