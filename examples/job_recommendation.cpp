// Jobs case study (paper §V-C, Fig. 10(a)-(b)): plain collaborative
// filtering exhibits popularity bias — less popular jobs are pushed to
// some users even with equal qualifications. Mining single-side fair
// bicliques on the top-k recommendation graph (jobs as the fair side)
// yields recommendation groups that mix popular and less popular jobs.
//
// Data: synthetic user-job interactions with planted exposure bias
// (DESIGN.md §4 substitution for the Kaggle dataset).

#include <iostream>

#include "core/pipeline.h"
#include "recsys/cf.h"
#include "recsys/recommend_graph.h"

int main() {
  fairbc::BiasedInteractionsConfig config;
  config.num_users = 400;          // applicants
  config.num_items = 300;          // jobs; attr 0 = popular, 1 = less popular
  config.num_clusters = 5;         // job markets
  config.interactions_per_user = 8;
  config.popularity_boost = 0.7;   // exposure bias strength
  config.num_user_attrs = 2;       // 0 = national, 1 = foreigner
  config.seed = 2024;
  fairbc::BipartiteGraph interactions =
      fairbc::MakeBiasedInteractions(config);
  std::cout << "Job application history: " << interactions.DebugString()
            << "\n";

  // Step 1: plain CF top-5 lists (the paper's Fig. 10(a) setting).
  fairbc::ItemBasedCF cf(interactions);
  fairbc::BipartiteGraph top5 =
      fairbc::BuildRecommendationGraph(interactions, cf, 5);
  std::cout << "CF top-5 recommendation graph: popular-job share = "
            << fairbc::PopularShare(top5)
            << " (biased toward already-popular jobs)\n";

  // Step 2: widen to top-10 and mine fair bicliques with jobs as the
  // fair side (paper: alpha=2, beta=2, delta=1).
  fairbc::BipartiteGraph top10 =
      fairbc::BuildRecommendationGraph(interactions, cf, 10);
  fairbc::FairBicliqueParams params;
  params.alpha = 2;
  params.beta = 2;
  params.delta = 1;
  fairbc::CollectSink sink;
  fairbc::EnumStats stats =
      fairbc::EnumerateSSFBCPlusPlus(top10, params, {}, sink.AsSink());
  std::cout << "\nSSFBC on the top-10 graph (alpha=2, beta=2, delta=1): "
            << stats.num_results << " fair recommendation groups\n";

  // Step 3: show that fair groups balance job popularity per user group.
  std::size_t shown = 0;
  for (const fairbc::Biclique& b : sink.results()) {
    if (shown++ == 4) break;
    int popular = 0, unpopular = 0;
    for (auto job : b.lower) {
      (top10.Attr(fairbc::Side::kLower, job) == 0 ? popular : unpopular)++;
    }
    std::cout << "  group: " << b.upper.size() << " users share " << popular
              << " popular + " << unpopular << " less-popular jobs\n";
  }
  if (sink.results().empty()) {
    std::cout << "  (no fair group at these parameters — relax alpha/beta)\n";
  } else {
    std::cout << "\nEvery group recommends both popular and less popular\n"
                 "jobs to every user in it, eliminating the exposure bias\n"
                 "seen in the plain CF lists.\n";
  }
  return 0;
}
