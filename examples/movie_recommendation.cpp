// Movies case study (paper §V-C, Fig. 10(c)-(e)): the cold-start /
// explosion-bias problem — plain CF keeps recommending old, established
// movies; comparable new movies rarely surface. Fair bicliques with the
// movie side as the fair side (old vs new attribute) surface groups that
// recommend both.
//
// Data: synthetic user-movie ratings with planted bias toward old movies
// (DESIGN.md §4 substitution for the Kaggle MovieLens-derived dataset).

#include <iostream>

#include "core/pipeline.h"
#include "recsys/cf.h"
#include "recsys/recommend_graph.h"

int main() {
  fairbc::BiasedInteractionsConfig config;
  config.num_users = 350;          // viewers
  config.num_items = 400;          // movies; attr 0 = old (pre-1990), 1 = new
  config.num_clusters = 8;         // genres
  config.interactions_per_user = 10;
  config.popularity_boost = 0.65;  // old movies get more exposure
  config.popular_fraction = 0.5;
  config.num_user_attrs = 2;
  config.seed = 777;
  fairbc::BipartiteGraph ratings = fairbc::MakeBiasedInteractions(config);
  std::cout << "Rating history: " << ratings.DebugString() << "\n";

  fairbc::ItemBasedCF cf(ratings);

  // Fig. 10(c)-(d): top-5 lists dominated by old movies.
  fairbc::BipartiteGraph top5 = fairbc::BuildRecommendationGraph(ratings, cf, 5);
  double old_share = fairbc::PopularShare(top5);
  std::cout << "Plain CF top-5: old-movie share = " << old_share << "\n";

  // Fig. 10(e): top-10 graph + SSFBC with movies as the fair side.
  fairbc::BipartiteGraph top10 =
      fairbc::BuildRecommendationGraph(ratings, cf, 10);
  fairbc::FairBicliqueParams params;
  params.alpha = 2;
  params.beta = 2;
  params.delta = 1;
  fairbc::CollectSink sink;
  fairbc::EnumerateSSFBCPlusPlus(top10, params, {}, sink.AsSink());
  std::cout << "SSFBC groups on top-10 graph: " << sink.results().size()
            << "\n";

  // Aggregate the old/new mix across fair groups vs the plain CF edges.
  std::uint64_t fair_old = 0, fair_new = 0;
  for (const fairbc::Biclique& b : sink.results()) {
    for (auto movie : b.lower) {
      (top10.Attr(fairbc::Side::kLower, movie) == 0 ? fair_old : fair_new)++;
    }
  }
  if (fair_old + fair_new > 0) {
    double fair_share =
        static_cast<double>(fair_old) / static_cast<double>(fair_old + fair_new);
    std::cout << "Old-movie share inside fair groups = " << fair_share
              << " (new movies like the paper's \"X-men\" now surface)\n";
    std::cout << "\nShape check: plain CF share " << old_share
              << " -> fair-biclique share " << fair_share
              << "; fairness mining balances exposure by construction\n"
              << "(every group holds >= 2 old and >= 2 new movies, "
                 "difference <= 1).\n";
  } else {
    std::cout << "No fair group found — relax parameters.\n";
  }

  // Per-user view for a couple of users (the paper's user 310 / 512).
  std::size_t shown = 0;
  for (const fairbc::Biclique& b : sink.results()) {
    if (shown++ == 2) break;
    std::cout << "  users {";
    for (auto u : b.upper) std::cout << " " << u;
    std::cout << " } get movies {";
    for (auto m : b.lower) {
      std::cout << " " << m
                << (top10.Attr(fairbc::Side::kLower, m) == 0 ? "(old)"
                                                             : "(new)");
    }
    std::cout << " }\n";
  }
  return 0;
}
