// fairbc query server: a long-lived front end over the service layer
// (GraphCatalog + QueryExecutor + ResultCache + single-flight admission).
// The protocol, the session dispatch and the concurrent TCP front end
// live in src/service/server.{h,cc} (so the tests can drive them
// in-process); this file is argument parsing and wiring.
//
// Usage:
//   fairbc_server [--port=N] [--max-sessions=N] [--cache=ENTRIES]
//                 [--threads=N] [--preload=NAME=PATH] [--mmap]
//                 [--reactor-threads=N] [--max-inflight=N]
//                 [--max-request-bytes=N] [--client-deadline-ms=N]
//                 [--metrics-port=N] [--slow-query-ms=MS]
//
// Observability (docs/OBSERVABILITY.md): the `metrics` command returns
// the process-wide Prometheus exposition over either protocol, and
// --metrics-port=N additionally serves it as plain text on
// 0.0.0.0:N/metrics (0 = ephemeral, reported on stderr) for real
// scrapers. --slow-query-ms=MS enables per-query phase tracing: every
// executed query records spans, those at or above MS milliseconds are
// retained for the `trace` command and logged to stderr (MS=0 retains
// every executed query; negative/absent disables tracing).
//
// Without --port it speaks the line protocol on stdin/stdout (one
// session, id 0); with --port it listens on 127.0.0.1:N (0 = ephemeral,
// the bound port is reported on stderr) and serves up to --max-sessions
// TCP clients *concurrently* — all connections are multiplexed over a
// fixed pool of --reactor-threads epoll loops (0 = min(4, hw threads)),
// each connection carrying a unique session id stamped into every
// response, over the shared catalog/executor/cache. The same port
// speaks the line protocol AND the binary wire protocol (see
// docs/WIRE_PROTOCOL.md), negotiated on a connection's first byte.
// Clients beyond the bound are turned away with
// {"ok":false,"error":"server full..."}; query requests beyond
// --max-inflight get a typed "busy" error; requests larger than
// --max-request-bytes get a typed "too_large" error; connections idle
// longer than --client-deadline-ms are closed (0 = never).
//
// `quit` ends one session; `stop` ends the session AND the server: the
// accept loop stops admitting and drains (waits for the remaining
// sessions to finish their streams) before the process exits. In stdin
// mode the single session *is* the server, so quit and stop both
// terminate the process; stop is additionally logged as a server stop.
// See service/server.h for the full protocol.
//
// --preload=NAME=PATH loads one snapshot before serving; with --mmap it
// is mapped in place (ReadSnapshotView) instead of copied, making the
// load allocation-free.

#include <csignal>
#include <iostream>
#include <string>

#include "common/flags.h"
#include "obs/metrics.h"
#include "obs/metrics_http.h"
#include "service/graph_catalog.h"
#include "service/query_executor.h"
#include "service/server.h"

int main(int argc, char** argv) {
  using fairbc::GraphCatalog;
  using fairbc::Status;

  // A TCP client resetting its connection mid-response must surface as
  // a write() error, not a process-killing SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  fairbc::FlagParser flags;
  // Parse skips argv[0] itself; the server has no subcommand word.
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::cerr << "error: " << st.ToString() << "\n";
    return 1;
  }

  GraphCatalog catalog;
  fairbc::QueryExecutorOptions options;
  auto pool_threads = flags.GetInt("threads", 0);
  if (pool_threads < 0 || pool_threads > 1024) {
    std::cerr << "error: --threads must be in [0, 1024]\n";
    return 1;
  }
  options.num_threads = static_cast<unsigned>(pool_threads);
  auto cache = flags.GetInt("cache", 256);
  options.cache_capacity = cache < 0 ? 0 : static_cast<std::size_t>(cache);
  // The server reports into the process registry so one scrape (the
  // `metrics` command or --metrics-port) covers executor, cache, kernel
  // and reactor counters together.
  options.metrics = &fairbc::MetricsRegistry::Global();
  options.slow_query_ms = flags.GetDouble("slow-query-ms", -1.0);
  if (options.slow_query_ms >= 0.0) {
    options.slow_query_log = [](const fairbc::QueryRequest& request,
                                const fairbc::QueryResult& result) {
      std::cerr << "slow query: graph=" << request.graph
                << " alpha=" << request.params.alpha
                << " beta=" << request.params.beta
                << " delta=" << request.params.delta << " wall_ms="
                << result.seconds * 1e3 << " (trace retained)\n";
    };
  }
  fairbc::QueryExecutor executor(catalog, options);

  fairbc::MetricsHttpServer metrics_http(&fairbc::MetricsRegistry::Global());
  auto metrics_port = flags.GetInt("metrics-port", -1);
  if (metrics_port >= 0) {
    if (metrics_port > 65535) {
      std::cerr << "error: --metrics-port must be in [0, 65535]\n";
      return 1;
    }
    std::string error;
    if (!metrics_http.Start(static_cast<std::uint16_t>(metrics_port),
                            &error)) {
      std::cerr << "error: metrics listener: " << error << "\n";
      return 1;
    }
    std::cerr << "metrics on 0.0.0.0:" << metrics_http.port()
              << "/metrics\n";
  }

  // --preload=NAME=PATH loads one snapshot before serving (--mmap maps
  // it in place instead of copying).
  std::string preload = flags.GetString("preload", "");
  const bool use_mmap = flags.GetBool("mmap", false);
  if (!preload.empty()) {
    auto eq = preload.find('=');
    if (eq == std::string::npos) {
      std::cerr << "error: --preload wants NAME=PATH\n";
      return 1;
    }
    Status loaded = catalog.AddFromFile(
        preload.substr(0, eq), preload.substr(eq + 1),
        use_mmap ? GraphCatalog::Format::kSnapshotMmap
                 : GraphCatalog::Format::kSnapshot);
    if (!loaded.ok()) {
      std::cerr << "error: preload failed: " << loaded.ToString() << "\n";
      return 1;
    }
  }

  auto port = flags.GetInt("port", -1);
  auto max_sessions = flags.GetInt("max-sessions", 8);
  auto reactor_threads = flags.GetInt("reactor-threads", 0);
  auto max_inflight = flags.GetInt("max-inflight", 256);
  auto max_request_bytes =
      flags.GetInt("max-request-bytes",
                   static_cast<std::int64_t>(fairbc::kDefaultMaxRequestBytes));
  auto client_deadline_ms = flags.GetInt("client-deadline-ms", 0);
  for (const std::string& name : flags.UnusedFlags()) {
    std::cerr << "warning: unknown flag --" << name << " ignored\n";
  }
  if (port >= 0) {
    if (port > 65535) {
      std::cerr << "error: --port must be in [0, 65535]\n";
      return 1;
    }
    if (max_sessions < 1 || max_sessions > 1024) {
      std::cerr << "error: --max-sessions must be in [1, 1024]\n";
      return 1;
    }
    if (reactor_threads < 0 || reactor_threads > 64) {
      std::cerr << "error: --reactor-threads must be in [0, 64]\n";
      return 1;
    }
    if (max_inflight < 0 || max_inflight > 1'000'000) {
      std::cerr << "error: --max-inflight must be in [0, 1000000]\n";
      return 1;
    }
    if (max_request_bytes < 64 || max_request_bytes > (1 << 30)) {
      std::cerr << "error: --max-request-bytes must be in [64, 2^30]\n";
      return 1;
    }
    if (client_deadline_ms < 0 || client_deadline_ms > 86'400'000) {
      std::cerr << "error: --client-deadline-ms must be in [0, 86400000]\n";
      return 1;
    }
    fairbc::TcpServerOptions tcp;
    tcp.port = static_cast<int>(port);
    tcp.max_sessions = static_cast<unsigned>(max_sessions);
    tcp.reactor_threads = static_cast<unsigned>(reactor_threads);
    tcp.max_inflight = static_cast<unsigned>(max_inflight);
    tcp.max_request_bytes = static_cast<std::size_t>(max_request_bytes);
    tcp.client_deadline_ms = static_cast<int>(client_deadline_ms);
    fairbc::TcpServer server(catalog, executor, tcp);
    Status listening = server.Listen();
    if (!listening.ok()) {
      std::cerr << "error: " << listening.ToString() << "\n";
      return 1;
    }
    std::cerr << "listening on 127.0.0.1:" << server.port() << "\n";
    server.Serve();
    std::cerr << "server stopped after " << server.sessions_started()
              << " sessions\n";
    return 0;
  }

  fairbc::ServerSession session(catalog, executor, /*id=*/0);
  const bool stop_requested = ServeStream(std::cin, std::cout, session);
  // Uniform stop semantics: in stdin mode the single session is the
  // server, so both quit and stream end finish the process; an explicit
  // `stop` is surfaced as the server stop it asked for.
  if (stop_requested) std::cerr << "server stopped\n";
  return 0;
}
