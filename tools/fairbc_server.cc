// fairbc query server: a long-lived front end over the service layer
// (GraphCatalog + QueryExecutor + ResultCache).
//
// Usage:
//   fairbc_server [--port=N] [--cache=ENTRIES] [--threads=N]
//                 [--preload=NAME=PATH]
//
// Without --port it speaks the line protocol on stdin/stdout; with
// --port it listens on 127.0.0.1:N and serves TCP clients one at a time
// (same protocol, one session per connection).
//
// Line protocol: one request per line, `command key=value ...`; one JSON
// object per response line. Blank lines and `#` comments are ignored.
//
//   ping
//   load name=G path=FILE [format=snapshot|attr|edges]
//   gen name=G [kind=uniform|powerlaw|affiliation] [nu=N] [nv=N]
//       [edges=M] [attrs=K] [seed=S] [communities=C]
//   save name=G path=FILE
//   catalog
//   query graph=G [model=ssfbc|bsfbc] [algo=pp|bcem|naive] [alpha=A]
//         [beta=B] [delta=D] [theta=T] [ordering=deg|id]
//         [pruning=colorful|core|none] [budget=SECONDS] [threads=N]
//         [cache=0|1]
//   sweep graph=G alphas=2,3 betas=2,3 deltas=1,2 [query keys...]
//         (expands the grid and runs it as one concurrent batch on the
//         executor's pool — the --threads width — returning an array
//         of per-query results)
//   cache        (telemetry)
//   drop name=G
//   quit         (ends the session; in TCP mode closes the connection)
//   stop         (TCP mode: also stops accepting new connections)
//
// Malformed requests get {"ok":false,"error":...}; the server never
// exits on bad input.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/flags.h"
#include "graph/generators.h"
#include "graph/snapshot.h"
#include "service/graph_catalog.h"
#include "service/query.h"
#include "service/query_executor.h"
#include "service/response_json.h"

namespace {

using fairbc::ErrorJson;
using fairbc::GraphCatalog;
using fairbc::QueryRequest;
using fairbc::Status;

/// Parsed request line: a command plus key=value arguments.
struct RequestLine {
  std::string command;
  std::map<std::string, std::string> args;
};

RequestLine ParseLine(const std::string& line) {
  RequestLine req;
  std::istringstream tokens(line);
  tokens >> req.command;
  std::string token;
  while (tokens >> token) {
    auto eq = token.find('=');
    if (eq == std::string::npos) {
      req.args[token] = "1";  // bare key = boolean true, like the CLI.
    } else {
      req.args[token.substr(0, eq)] = token.substr(eq + 1);
    }
  }
  return req;
}

std::string Arg(const RequestLine& req, const std::string& key,
                const std::string& default_value) {
  auto it = req.args.find(key);
  return it == req.args.end() ? default_value : it->second;
}

std::int64_t ArgInt(const RequestLine& req, const std::string& key,
                    std::int64_t default_value) {
  auto it = req.args.find(key);
  if (it == req.args.end()) return default_value;
  try {
    return std::stoll(it->second);
  } catch (...) {
    return default_value;
  }
}

double ArgDouble(const RequestLine& req, const std::string& key,
                 double default_value) {
  auto it = req.args.find(key);
  if (it == req.args.end()) return default_value;
  try {
    return std::stod(it->second);
  } catch (...) {
    return default_value;
  }
}

/// Builds a QueryRequest from a `query` line; unset keys keep the same
/// defaults as fairbc_cli enum.
fairbc::Result<QueryRequest> BuildQuery(const RequestLine& req) {
  QueryRequest query;
  query.graph = Arg(req, "graph", "");
  if (query.graph.empty()) {
    return Status::InvalidArgument("query needs graph=NAME");
  }
  auto model = fairbc::ParseFairModel(Arg(req, "model", "ssfbc"));
  if (!model) return Status::InvalidArgument("bad model (ssfbc|bsfbc)");
  query.model = *model;
  auto algo = fairbc::ParseFairAlgo(Arg(req, "algo", "pp"));
  if (!algo) return Status::InvalidArgument("bad algo (pp|bcem|naive)");
  query.algo = *algo;
  query.params.alpha = static_cast<std::uint32_t>(ArgInt(req, "alpha", 1));
  query.params.beta = static_cast<std::uint32_t>(ArgInt(req, "beta", 1));
  query.params.delta = static_cast<std::uint32_t>(ArgInt(req, "delta", 0));
  query.params.theta = ArgDouble(req, "theta", 0.0);
  const std::string ordering = Arg(req, "ordering", "deg");
  query.options.ordering = ordering == "id"
                               ? fairbc::VertexOrdering::kId
                               : fairbc::VertexOrdering::kDegreeDesc;
  const std::string pruning = Arg(req, "pruning", "colorful");
  query.options.pruning = pruning == "none" ? fairbc::PruningLevel::kNone
                          : pruning == "core"
                              ? fairbc::PruningLevel::kCore
                              : fairbc::PruningLevel::kColorful;
  query.options.time_budget_seconds = ArgDouble(req, "budget", 0.0);
  const std::int64_t threads = ArgInt(req, "threads", 1);
  if (threads < 0 || threads > 1024) {
    return Status::InvalidArgument("threads must be in [0, 1024]");
  }
  query.options.num_threads = static_cast<unsigned>(threads);
  query.use_cache = ArgInt(req, "cache", 1) != 0;
  return query;
}

/// One server session: catalog + executor shared across sessions.
class Session {
 public:
  Session(GraphCatalog& catalog, fairbc::QueryExecutor& executor)
      : catalog_(catalog), executor_(executor) {}

  /// Handles one request line. Returns false when the session ends
  /// (quit/stop); `stop_server` is latched by `stop`.
  bool Handle(const std::string& line, std::string* response,
              bool* stop_server) {
    const RequestLine req = ParseLine(line);
    if (req.command.empty() || req.command[0] == '#') {
      response->clear();
      return true;
    }
    if (req.command == "quit") {
      *response = "{\"ok\":true,\"cmd\":\"quit\"}";
      return false;
    }
    if (req.command == "stop") {
      *stop_server = true;
      *response = "{\"ok\":true,\"cmd\":\"stop\"}";
      return false;
    }
    *response = Dispatch(req);
    return true;
  }

 private:
  std::string Dispatch(const RequestLine& req) {
    if (req.command == "ping") return "{\"ok\":true,\"cmd\":\"ping\"}";
    if (req.command == "load") return Load(req);
    if (req.command == "gen") return Gen(req);
    if (req.command == "save") return Save(req);
    if (req.command == "drop") return Drop(req);
    if (req.command == "catalog") return Catalog();
    if (req.command == "cache") {
      return CacheTelemetryJson(executor_.cache().telemetry());
    }
    if (req.command == "query") return Query(req);
    if (req.command == "sweep") return Sweep(req);
    return ErrorJson("unknown command: " + req.command);
  }

  std::string Load(const RequestLine& req) {
    const std::string name = Arg(req, "name", "");
    const std::string path = Arg(req, "path", "");
    if (name.empty() || path.empty()) {
      return ErrorJson("load needs name=NAME path=FILE");
    }
    auto format = fairbc::ParseCatalogFormat(Arg(req, "format", "snapshot"));
    if (!format) return ErrorJson("bad format (snapshot|attr|edges)");
    Status st = catalog_.AddFromFile(name, path, *format);
    if (!st.ok()) return ErrorJson(st);
    return EntryReply("load", name);
  }

  std::string Gen(const RequestLine& req) {
    const std::string name = Arg(req, "name", "");
    if (name.empty()) return ErrorJson("gen needs name=NAME");
    const std::string kind = Arg(req, "kind", "affiliation");
    // Validate everything before casting: the generators FAIRBC_CHECK
    // (abort) on bad parameters, and a resident server must never die
    // on a request line.
    const std::int64_t nu = ArgInt(req, "nu", 1000);
    const std::int64_t nv = ArgInt(req, "nv", 1000);
    const std::int64_t edges = ArgInt(req, "edges", 5000);
    const std::int64_t attrs = ArgInt(req, "attrs", 2);
    const std::int64_t communities = ArgInt(req, "communities", 60);
    const double gamma = ArgDouble(req, "gamma", 2.2);
    if (nu < 1 || nu > 20'000'000 || nv < 1 || nv > 20'000'000) {
      return ErrorJson("nu/nv must be in [1, 2e7]");
    }
    if (edges < 0 || edges > 200'000'000) {
      return ErrorJson("edges must be in [0, 2e8]");
    }
    if (attrs < 1 || attrs > 1024) return ErrorJson("attrs must be in [1, 1024]");
    if (communities < 1 || communities > 1'000'000) {
      return ErrorJson("communities must be in [1, 1e6]");
    }
    if (!(gamma > 1.0) || gamma > 10.0) {
      return ErrorJson("gamma must be in (1, 10]");
    }
    const auto seed = static_cast<std::uint64_t>(ArgInt(req, "seed", 42));
    fairbc::BipartiteGraph g;
    if (kind == "uniform") {
      g = fairbc::MakeUniformRandom(static_cast<fairbc::VertexId>(nu),
                                    static_cast<fairbc::VertexId>(nv),
                                    static_cast<fairbc::EdgeIndex>(edges),
                                    static_cast<fairbc::AttrId>(attrs), seed);
    } else if (kind == "powerlaw") {
      g = fairbc::MakePowerLaw(static_cast<fairbc::VertexId>(nu),
                               static_cast<fairbc::VertexId>(nv),
                               static_cast<fairbc::EdgeIndex>(edges), gamma,
                               static_cast<fairbc::AttrId>(attrs), seed);
    } else if (kind == "affiliation") {
      fairbc::AffiliationConfig config;
      config.num_upper = static_cast<fairbc::VertexId>(nu);
      config.num_lower = static_cast<fairbc::VertexId>(nv);
      config.num_communities = static_cast<std::uint32_t>(communities);
      config.num_upper_attrs = static_cast<fairbc::AttrId>(attrs);
      config.num_lower_attrs = static_cast<fairbc::AttrId>(attrs);
      config.seed = seed;
      g = fairbc::MakeAffiliation(config);
    } else {
      return ErrorJson("bad kind (uniform|powerlaw|affiliation)");
    }
    Status st = catalog_.AddGraph(name, std::move(g), "<gen:" + kind + ">");
    if (!st.ok()) return ErrorJson(st);
    return EntryReply("gen", name);
  }

  std::string Save(const RequestLine& req) {
    const std::string name = Arg(req, "name", "");
    const std::string path = Arg(req, "path", "");
    if (name.empty() || path.empty()) {
      return ErrorJson("save needs name=NAME path=FILE");
    }
    auto entry = catalog_.Get(name);
    if (entry == nullptr) return ErrorJson("unknown graph: " + name);
    Status st = fairbc::WriteSnapshot(entry->graph, path);
    if (!st.ok()) return ErrorJson(st);
    return "{\"ok\":true,\"cmd\":\"save\",\"name\":\"" +
           fairbc::JsonEscape(name) + "\",\"path\":\"" +
           fairbc::JsonEscape(path) + "\",\"version\":\"" +
           fairbc::JsonHex64(entry->version) + "\"}";
  }

  std::string Drop(const RequestLine& req) {
    const std::string name = Arg(req, "name", "");
    if (name.empty()) return ErrorJson("drop needs name=NAME");
    if (!catalog_.Remove(name)) return ErrorJson("unknown graph: " + name);
    return "{\"ok\":true,\"cmd\":\"drop\",\"name\":\"" +
           fairbc::JsonEscape(name) + "\"}";
  }

  std::string Catalog() {
    std::ostringstream os;
    os << "{\"ok\":true,\"cmd\":\"catalog\",\"graphs\":[";
    bool first = true;
    for (const auto& entry : catalog_.List()) {
      if (!first) os << ",";
      first = false;
      os << fairbc::CatalogEntryJson(*entry);
    }
    os << "]}";
    return os.str();
  }

  std::string Query(const RequestLine& req) {
    auto built = BuildQuery(req);
    if (!built.ok()) return ErrorJson(built.status());
    const QueryRequest query = std::move(built).value();
    fairbc::QueryResult result = executor_.Execute(query);
    return QueryResultJson(query, result);
  }

  // `sweep` expands a parameter grid (comma lists) into one batch and
  // admits it onto the executor's pool — this is where the server's
  // --threads width does concurrent work. Response: one JSON object
  // with the per-query results, positionally aligned with the grid in
  // alphas-outer / betas / deltas-inner order.
  std::string Sweep(const RequestLine& req) {
    RequestLine base = req;
    base.args["alpha"] = "0";
    base.args["beta"] = "0";
    base.args["delta"] = "0";
    auto built = BuildQuery(base);
    if (!built.ok()) return ErrorJson(built.status());
    const QueryRequest prototype = std::move(built).value();

    auto list = [&](const std::string& key, const std::string& fallback) {
      std::vector<std::uint32_t> values;
      std::istringstream ss(Arg(req, key, fallback));
      std::string token;
      while (std::getline(ss, token, ',')) {
        try {
          values.push_back(static_cast<std::uint32_t>(std::stoul(token)));
        } catch (...) {
          values.clear();
          return values;
        }
      }
      return values;
    };
    const std::vector<std::uint32_t> alphas = list("alphas", "1");
    const std::vector<std::uint32_t> betas = list("betas", "1");
    const std::vector<std::uint32_t> deltas = list("deltas", "0");
    if (alphas.empty() || betas.empty() || deltas.empty()) {
      return ErrorJson("sweep wants comma lists: alphas= betas= deltas=");
    }
    constexpr std::size_t kMaxSweep = 4096;
    if (alphas.size() * betas.size() * deltas.size() > kMaxSweep) {
      return ErrorJson("sweep grid too large (max 4096 points)");
    }

    std::vector<QueryRequest> grid;
    for (std::uint32_t alpha : alphas) {
      for (std::uint32_t beta : betas) {
        for (std::uint32_t delta : deltas) {
          QueryRequest point = prototype;
          point.params.alpha = alpha;
          point.params.beta = beta;
          point.params.delta = delta;
          grid.push_back(point);
        }
      }
    }
    std::vector<fairbc::QueryResult> results = executor_.ExecuteBatch(grid);
    std::ostringstream os;
    os << "{\"ok\":true,\"cmd\":\"sweep\",\"queries\":" << grid.size()
       << ",\"results\":[";
    for (std::size_t i = 0; i < results.size(); ++i) {
      os << (i > 0 ? "," : "") << QueryResultJson(grid[i], results[i]);
    }
    os << "]}";
    return os.str();
  }

  std::string EntryReply(const std::string& cmd, const std::string& name) {
    auto entry = catalog_.Get(name);
    if (entry == nullptr) return ErrorJson("entry vanished: " + name);
    return "{\"ok\":true,\"cmd\":\"" + cmd + "\",\"entry\":" +
           fairbc::CatalogEntryJson(*entry) + "}";
  }

  GraphCatalog& catalog_;
  fairbc::QueryExecutor& executor_;
};

/// Serves one already-open line stream (stdin/stdout or a TCP client).
bool ServeStream(std::istream& in, std::ostream& out, Session& session) {
  bool stop_server = false;
  std::string line;
  while (std::getline(in, line)) {
    std::string response;
    const bool keep_going = session.Handle(line, &response, &stop_server);
    if (!response.empty()) out << response << "\n" << std::flush;
    if (!keep_going) break;
  }
  return stop_server;
}

int ServeTcp(int port, GraphCatalog& catalog, fairbc::QueryExecutor& executor) {
  int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::cerr << "error: socket() failed\n";
    return 1;
  }
  int reuse = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listener, 4) < 0) {
    std::cerr << "error: cannot listen on 127.0.0.1:" << port << "\n";
    ::close(listener);
    return 1;
  }
  std::cerr << "listening on 127.0.0.1:" << port << "\n";

  bool stop = false;
  while (!stop) {
    int client = ::accept(listener, nullptr, nullptr);
    if (client < 0) break;
    // One connection at a time: a session is a plain request/response
    // loop; concurrency lives inside the executor, not across sockets.
    FILE* rf = ::fdopen(client, "r");
    if (rf == nullptr) {
      ::close(client);
      continue;
    }
    Session session(catalog, executor);
    bool stop_server = false;
    char* buf = nullptr;
    size_t cap = 0;
    ssize_t len;
    bool keep_going = true;
    while (keep_going && (len = ::getline(&buf, &cap, rf)) >= 0) {
      std::string line(buf, static_cast<std::size_t>(len));
      while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
        line.pop_back();
      }
      std::string response;
      keep_going = session.Handle(line, &response, &stop_server);
      if (!response.empty()) {
        response += "\n";
        const char* data = response.data();
        std::size_t remaining = response.size();
        while (remaining > 0) {
          ssize_t n = ::write(client, data, remaining);
          if (n <= 0) {
            keep_going = false;
            break;
          }
          data += n;
          remaining -= static_cast<std::size_t>(n);
        }
      }
    }
    std::free(buf);
    ::fclose(rf);  // also closes the client fd.
    stop = stop_server;
  }
  ::close(listener);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // A TCP client resetting its connection mid-response must surface as
  // a write() error, not a process-killing SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  fairbc::FlagParser flags;
  // Parse skips argv[0] itself; the server has no subcommand word.
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::cerr << "error: " << st.ToString() << "\n";
    return 1;
  }

  GraphCatalog catalog;
  fairbc::QueryExecutorOptions options;
  auto pool_threads = flags.GetInt("threads", 0);
  if (pool_threads < 0 || pool_threads > 1024) {
    std::cerr << "error: --threads must be in [0, 1024]\n";
    return 1;
  }
  options.num_threads = static_cast<unsigned>(pool_threads);
  auto cache = flags.GetInt("cache", 256);
  options.cache_capacity =
      cache < 0 ? 0 : static_cast<std::size_t>(cache);
  fairbc::QueryExecutor executor(catalog, options);

  // --preload=NAME=PATH loads one snapshot before serving.
  std::string preload = flags.GetString("preload", "");
  if (!preload.empty()) {
    auto eq = preload.find('=');
    if (eq == std::string::npos) {
      std::cerr << "error: --preload wants NAME=PATH\n";
      return 1;
    }
    Status loaded =
        catalog.AddFromFile(preload.substr(0, eq), preload.substr(eq + 1),
                            GraphCatalog::Format::kSnapshot);
    if (!loaded.ok()) {
      std::cerr << "error: preload failed: " << loaded.ToString() << "\n";
      return 1;
    }
  }

  auto port = flags.GetInt("port", 0);
  for (const std::string& name : flags.UnusedFlags()) {
    std::cerr << "warning: unknown flag --" << name << " ignored\n";
  }
  if (port > 0) {
    return ServeTcp(static_cast<int>(port), catalog, executor);
  }
  Session session(catalog, executor);
  ServeStream(std::cin, std::cout, session);
  return 0;
}
