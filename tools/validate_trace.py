#!/usr/bin/env python3
"""Validates a fairbc Chrome trace-event JSON file (--trace-out / the
server `trace` command).

Checks, per trace object:
  - every event is a complete event: ph == "X" with numeric ts/dur and
    integer pid/tid;
  - per tid, spans are well-formed (properly nested or disjoint — no
    partial overlap);
  - when a root "query" span is present, the durations of its direct
    children cover its duration to within --tolerance (default 10%):
    phase accounting must not lose a significant slice of the query.

Input: a single trace object, a JSON array of them, or the full server
`trace` response ({"traces":[...]}). Exits non-zero on the first
violation. Stdlib only (CI-friendly).
"""

import argparse
import json
import sys

EPS_US = 1.0  # microsecond rounding slop between adjacent spans


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_events(events, label):
    if not events:
        fail(f"{label}: empty traceEvents")
    for i, ev in enumerate(events):
        for key in ("name", "ph", "ts", "dur", "pid", "tid"):
            if key not in ev:
                fail(f"{label}: event {i} missing '{key}': {ev}")
        if ev["ph"] != "X":
            fail(f"{label}: event {i} ph={ev['ph']!r}, want 'X'")
        if not isinstance(ev["ts"], (int, float)) or not isinstance(
            ev["dur"], (int, float)
        ):
            fail(f"{label}: event {i} non-numeric ts/dur: {ev}")
        if ev["ts"] < 0 or ev["dur"] < 0:
            fail(f"{label}: event {i} negative ts/dur: {ev}")
        if not isinstance(ev["pid"], int) or not isinstance(ev["tid"], int):
            fail(f"{label}: event {i} non-integer pid/tid: {ev}")


def validate_nesting(events, label):
    by_tid = {}
    for ev in events:
        by_tid.setdefault(ev["tid"], []).append(ev)
    for tid, spans in by_tid.items():
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []
        for ev in spans:
            while stack and ev["ts"] >= stack[-1]["ts"] + stack[-1]["dur"] - EPS_US:
                stack.pop()
            if stack:
                parent_end = stack[-1]["ts"] + stack[-1]["dur"]
                if ev["ts"] + ev["dur"] > parent_end + EPS_US:
                    fail(
                        f"{label}: tid {tid}: span '{ev['name']}' "
                        f"[{ev['ts']}, {ev['ts'] + ev['dur']}] partially "
                        f"overlaps '{stack[-1]['name']}' ending {parent_end}"
                    )
            stack.append(ev)


def direct_children(events, root):
    """Spans strictly inside `root` that are not inside a closer ancestor."""
    root_end = root["ts"] + root["dur"]
    inside = [
        ev
        for ev in events
        if ev is not root
        and ev["ts"] >= root["ts"] - EPS_US
        and ev["ts"] + ev["dur"] <= root_end + EPS_US
    ]
    children = []
    for ev in inside:
        has_closer = any(
            other is not ev
            and other["ts"] - EPS_US <= ev["ts"]
            and ev["ts"] + ev["dur"] <= other["ts"] + other["dur"] + EPS_US
            and other["dur"] < root["dur"]
            for other in inside
        )
        if not has_closer:
            children.append(ev)
    return children


def validate_phase_sum(events, label, tolerance):
    roots = [ev for ev in events if ev["name"] == "query"]
    if not roots:
        return  # engine-level trace without the executor's root span
    root = max(roots, key=lambda e: e["dur"])
    if root["dur"] <= 0:
        fail(f"{label}: root query span has dur {root['dur']}")
    child_sum = sum(ev["dur"] for ev in direct_children(events, root))
    covered = child_sum / root["dur"]
    if covered > 1.0 + tolerance:
        fail(
            f"{label}: direct children sum to {child_sum:.1f}us, "
            f"{covered:.1%} of the {root['dur']:.1f}us root (over 100%)"
        )
    if covered < 1.0 - tolerance:
        fail(
            f"{label}: direct children cover only {covered:.1%} of the "
            f"root query span ({child_sum:.1f}us of {root['dur']:.1f}us); "
            f"phase accounting lost more than {tolerance:.0%}"
        )
    print(
        f"validate_trace: {label}: {len(events)} events, phase coverage "
        f"{covered:.1%}"
    )


def validate_trace(trace, label, tolerance):
    if "traceEvents" not in trace:
        fail(f"{label}: no traceEvents key")
    events = trace["traceEvents"]
    validate_events(events, label)
    validate_nesting(events, label)
    validate_phase_sum(events, label, tolerance)
    if trace.get("dropped", 0):
        print(
            f"validate_trace: {label}: note: {trace['dropped']} spans "
            f"dropped at capacity"
        )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file", help="trace JSON file (or - for stdin)")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed phase-sum deviation from the root span (default 0.10)",
    )
    args = parser.parse_args()

    stream = sys.stdin if args.file == "-" else open(args.file)
    with stream:
        doc = json.load(stream)

    if isinstance(doc, dict) and "traces" in doc:
        traces = doc["traces"]
    elif isinstance(doc, list):
        traces = doc
    else:
        traces = [doc]
    if not traces:
        fail("no traces in input")
    for i, trace in enumerate(traces):
        validate_trace(trace, f"trace[{i}]", args.tolerance)
    print(f"validate_trace: OK ({len(traces)} trace(s))")


if __name__ == "__main__":
    main()
