#!/usr/bin/env bash
# Service-layer smoke: generate a graph, snapshot it, serve it with
# fairbc_server, replay a canned 20-query trace over the line protocol,
# and assert every response's count + result-set digest matches a
# fairbc_cli run of the same parameters. Also checks the repeated
# queries at the end of the trace were served from the ResultCache.
# Then restarts the server in TCP mode (--port=0, mmap preload) and
# replays the same trace through TWO PARALLEL TCP clients, diffing both
# response streams against the same CLI oracle — exercising concurrent
# sessions, session ids and single-flight admission end to end.
# Finally replays the trace a third time over the BINARY wire protocol
# (fairbc_wire_client --pipeline, responses verified in request order)
# against the same oracle, while a 256-connection idle soak proves the
# epoll reactor holds and still serves a large fd fleet — then a fourth
# time STREAMED (--stream): every query's kReplyChunk frames are
# reassembled client-side and the recomputed count + digest must equal
# the CLI oracle's, and a budgeted streamed query must see its first
# chunk strictly before the full response (progressive delivery).
#
# Observability coverage: the TCP server runs with --slow-query-ms=0 so
# every executed query is traced; the script scrapes the `metrics`
# command mid-replay (non-zero query counters, monotonic across
# scrapes), captures a retained trace via the `trace` command, validates
# it with tools/validate_trace.py, and leaves it at $TRACE_ARTIFACT
# (default BUILD_DIR/slow_query_trace.json) for CI artifact upload.
#
# Usage: tools/ci_service_smoke.sh [BUILD_DIR]   (default: build)

set -euo pipefail

BUILD=${1:-build}
CLI=$BUILD/fairbc_cli
SERVER=$BUILD/fairbc_server
WIRE=$BUILD/fairbc_wire_client
VALIDATE="$(dirname "$0")/validate_trace.py"
TRACE_ARTIFACT=${TRACE_ARTIFACT:-$BUILD/slow_query_trace.json}
WORK=$(mktemp -d)
SERVER_PID=
# A failed assertion mid-script must not leak the backgrounded TCP
# server: kill it (if any) before removing the workdir.
trap '[ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

jsonfield() {  # jsonfield FILE_LINE KEY -> value (flat compact JSON)
  sed -n "s/.*\"$2\":\"\{0,1\}\([^,\"}]*\)\"\{0,1\}[,}].*/\1/p" <<<"$1"
}

# scrape_metrics OUT_FILE — one `metrics` command over TCP; unescapes the
# exposition into OUT_FILE as plain Prometheus text.
scrape_metrics() {
  exec 4<>"/dev/tcp/127.0.0.1/$PORT"
  printf 'metrics\nquit\n' >&4
  local line; read -r line <&4
  exec 4<&- 4>&-
  printf '%s' "$line" | python3 -c '
import json, sys
resp = json.loads(sys.stdin.read())
assert resp.get("ok"), resp
sys.stdout.write(resp["text"])
' > "$1"
}

metric() {  # metric FILE SERIES -> value (0 when the series is absent)
  awk -v s="$2" '$1 == s {print $2; found = 1} END {if (!found) print 0}' "$1"
}

echo "== gen + snapshot save"
"$CLI" gen --out="$WORK/g.fbg" --kind=affiliation --nu=400 --nv=400 \
       --communities=20 --seed=7
"$CLI" snapshot save --graph="$WORK/g.fbg" --out="$WORK/g.snap"

echo "== build 20-query trace (16 unique + 4 repeats)"
PARAMS=()
for model in ssfbc bsfbc; do
  for alpha in 2 3; do
    for beta in 2 3; do
      for delta in 1 2; do
        PARAMS+=("$model $alpha $beta $delta")
      done
    done
  done
done
# Repeats of the first four parameter points → must be cache hits.
PARAMS+=("${PARAMS[0]}" "${PARAMS[1]}" "${PARAMS[2]}" "${PARAMS[3]}")
test "${#PARAMS[@]}" -eq 20

TRACE="$WORK/trace.txt"
{
  echo "load name=g path=$WORK/g.snap format=snapshot"
  for p in "${PARAMS[@]}"; do
    read -r model alpha beta delta <<<"$p"
    echo "query graph=g model=$model alpha=$alpha beta=$beta delta=$delta"
  done
  echo "cache"
  echo "quit"
} > "$TRACE"

echo "== replay through fairbc_server"
"$SERVER" < "$TRACE" > "$WORK/responses.txt"
mapfile -t RESPONSES < "$WORK/responses.txt"
# responses: [0]=load, [1..20]=queries, [21]=cache, [22]=quit
test "${#RESPONSES[@]}" -eq 23

grep -q '"ok":true' <<<"${RESPONSES[0]}" || { echo "load failed"; exit 1; }

echo "== build the fairbc_cli oracle (count + digest per parameter point)"
CLI_COUNT=()
CLI_DIGEST=()
for i in "${!PARAMS[@]}"; do
  read -r model alpha beta delta <<<"${PARAMS[$i]}"
  cli_out=$("$CLI" enum --graph="$WORK/g.snap" --format=snapshot \
    --model="$model" --alpha="$alpha" --beta="$beta" --delta="$delta" \
    --count-only --output=json)
  CLI_COUNT[$i]=$(jsonfield "$cli_out" count)
  CLI_DIGEST[$i]=$(jsonfield "$cli_out" digest)
  test -n "${CLI_COUNT[$i]}" || { echo "cli oracle $i failed"; exit 1; }
done

# check_stream LABEL RESP_FILE FIRST_QUERY_LINE — diffs a response
# stream's queries against the oracle; prints the stream's cache-hit
# count to stdout.
check_stream() {
  local label=$1 file=$2 offset=$3 hits=0
  mapfile -t resp < "$file"
  for i in "${!PARAMS[@]}"; do
    read -r model alpha beta delta <<<"${PARAMS[$i]}"
    local r="${resp[$((i + offset))]}"
    grep -q '"ok":true' <<<"$r" \
      || { echo "$label query $i failed: $r" >&2; return 1; }
    local got_count got_digest
    got_count=$(jsonfield "$r" count)
    got_digest=$(jsonfield "$r" digest)
    if [ "$got_count" != "${CLI_COUNT[$i]}" ] \
       || [ "$got_digest" != "${CLI_DIGEST[$i]}" ]; then
      echo "$label MISMATCH query $i ($model a=$alpha b=$beta d=$delta):" >&2
      echo "  server count=$got_count digest=$got_digest" >&2
      echo "  cli    count=${CLI_COUNT[$i]} digest=${CLI_DIGEST[$i]}" >&2
      return 1
    fi
    if [ "$(jsonfield "$r" cache_hit)" = "true" ]; then
      hits=$((hits + 1))
    fi
  done
  echo "$hits"
}

echo "== compare each stdin response against the oracle"
hits=$(check_stream stdin "$WORK/responses.txt" 1) || exit 1

echo "== check cache telemetry"
cache_hits=$(jsonfield "${RESPONSES[21]}" hits)
if [ "$hits" -lt 4 ] || [ "$cache_hits" -lt 4 ]; then
  echo "expected >=4 cache hits from the repeated queries, saw $hits" \
       "(telemetry: $cache_hits)"
  exit 1
fi
echo "stdin OK: 20 responses match fairbc_cli; $hits cache hits"

echo "== differential check: v3 (compressed) snapshot vs the v2 oracle"
# Save the served graph as a v3 compressed snapshot through the server's
# own save path, reload THAT file, and replay the full trace: every
# count + digest must match the v2-backed oracle exactly, and the
# catalog graph version (content fingerprint) must be identical across
# formats — the compressed format may never change query results.
{
  echo "load name=g path=$WORK/g.snap format=snapshot"
  echo "save name=g path=$WORK/g_v3.snap compress=1 block=512"
  echo "quit"
} > "$WORK/save_v3.txt"
"$SERVER" < "$WORK/save_v3.txt" > "$WORK/save_v3_resp.txt"
SAVE_LINE=$(sed -n 2p "$WORK/save_v3_resp.txt")
grep -q '"ok":true' <<<"$SAVE_LINE" || { echo "v3 save failed: $SAVE_LINE"; exit 1; }
test "$(jsonfield "$SAVE_LINE" snapshot_version)" = "3" \
  || { echo "expected snapshot_version 3: $SAVE_LINE"; exit 1; }
V3_BYTES=$(jsonfield "$SAVE_LINE" file_bytes)
V2_BYTES=$(stat -c %s "$WORK/g.snap")
if [ $((2 * V3_BYTES)) -gt "$V2_BYTES" ]; then
  echo "v3 snapshot not >=2x smaller: v2=$V2_BYTES v3=$V3_BYTES"
  exit 1
fi

sed "s|path=$WORK/g.snap|path=$WORK/g_v3.snap|" "$TRACE" > "$WORK/trace_v3.txt"
"$SERVER" < "$WORK/trace_v3.txt" > "$WORK/responses_v3.txt"
hits_v3=$(check_stream v3 "$WORK/responses_v3.txt" 1) || exit 1
V2_VERSION=$(jsonfield "${RESPONSES[1]}" version)
V3_VERSION=$(jsonfield "$(sed -n 2p "$WORK/responses_v3.txt")" version)
if [ -z "$V2_VERSION" ] || [ "$V2_VERSION" != "$V3_VERSION" ]; then
  echo "fingerprint drift across formats: v2=$V2_VERSION v3=$V3_VERSION"
  exit 1
fi
echo "v3 OK: 20 responses match the v2 oracle; fingerprint $V3_VERSION" \
     "identical; ${V2_BYTES}B -> ${V3_BYTES}B"

echo "== restart in TCP mode (mmap preload) and replay through 2 parallel clients"
# max-sessions covers the 2 line clients + the wire client + its
# 256-connection idle soak fleet below.
# --slow-query-ms=0 retains a phase trace for every executed query so
# the `trace` command below has something to export.
"$SERVER" --port=0 --preload=g="$WORK/g.snap" --mmap --max-sessions=300 \
  --slow-query-ms=0 2> "$WORK/server.log" &
SERVER_PID=$!
PORT=
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/.*listening on 127.0.0.1:\([0-9]*\).*/\1/p' \
         "$WORK/server.log")
  [ -n "$PORT" ] && break
  sleep 0.05
done
[ -n "$PORT" ] || { echo "server did not report its port"; cat "$WORK/server.log"; exit 1; }

tcp_client() {  # tcp_client OUTFILE — graph preloaded, so queries only
  exec 3<>"/dev/tcp/127.0.0.1/$PORT"
  {
    for p in "${PARAMS[@]}"; do
      read -r model alpha beta delta <<<"$p"
      echo "query graph=g model=$model alpha=$alpha beta=$beta delta=$delta"
    done
    echo "quit"
  } >&3
  local line n=0
  while [ "$n" -lt $(( ${#PARAMS[@]} + 1 )) ] && read -r line <&3; do
    echo "$line" >> "$1"
    n=$((n + 1))
  done
  exec 3<&- 3>&-
}

tcp_client "$WORK/tcp_a.txt" & CA=$!
tcp_client "$WORK/tcp_b.txt" & CB=$!
wait "$CA" "$CB"

hits_a=$(check_stream tcp-a "$WORK/tcp_a.txt" 0) || exit 1
hits_b=$(check_stream tcp-b "$WORK/tcp_b.txt" 0) || exit 1

# Distinct session ids prove both streams were real concurrent sessions.
sid_a=$(jsonfield "$(head -1 "$WORK/tcp_a.txt")" session)
sid_b=$(jsonfield "$(head -1 "$WORK/tcp_b.txt")" session)
if [ -z "$sid_a" ] || [ "$sid_a" = "$sid_b" ]; then
  echo "expected distinct session ids, got '$sid_a' and '$sid_b'"
  exit 1
fi

echo "== mid-replay metrics scrape (after line clients, before wire)"
scrape_metrics "$WORK/scrape1.txt"
Q1=$(metric "$WORK/scrape1.txt" fairbc_queries_total)
E1=$(metric "$WORK/scrape1.txt" fairbc_query_executions_total)
R1=$(metric "$WORK/scrape1.txt" fairbc_reactor_reads_total)
if [ "$Q1" -lt 40 ] || [ "$E1" -lt 1 ] || [ "$R1" -lt 1 ]; then
  echo "mid-replay scrape not live: queries=$Q1 executions=$E1 reads=$R1"
  exit 1
fi
echo "scrape 1: queries=$Q1 executions=$E1 reactor_reads=$R1"

echo "== binary wire protocol: pipelined replay + 256-idle-connection soak"
WIRE_TRACE="$WORK/wire_trace.txt"
for p in "${PARAMS[@]}"; do
  read -r model alpha beta delta <<<"$p"
  echo "query graph=g model=$model alpha=$alpha beta=$beta delta=$delta"
done > "$WIRE_TRACE"
# --pipeline sends all 20 frames before reading; the client exits
# nonzero if responses come back out of request order or any soak
# connection fails its ping after the replay.
"$WIRE" --port="$PORT" --pipeline --soak=256 \
  < "$WIRE_TRACE" > "$WORK/wire.txt" 2> "$WORK/wire.log" \
  || { echo "wire client failed:"; cat "$WORK/wire.log"; exit 1; }
hits_w=$(check_stream wire "$WORK/wire.txt" 0) || exit 1
grep -q "soak: 256 idle connections verified" "$WORK/wire.log" \
  || { echo "soak verification missing:"; cat "$WORK/wire.log"; exit 1; }
echo "wire OK: 20 pipelined responses match fairbc_cli ($hits_w cache hits);" \
     "256 idle connections verified"

echo "== streamed binary replay: chunk reassembly vs the CLI oracle"
# --stream sets the stream flag on every kQuery frame; for each query the
# client prints the kReplyEnd JSON, then a {"cmd":"stream_client",...}
# line with the count + digest it recomputed from the kReplyChunk frames
# it reassembled (seq-contiguity enforced client-side).
"$WIRE" --port="$PORT" --pipeline --stream \
  < "$WIRE_TRACE" > "$WORK/stream.txt" 2> "$WORK/stream.log" \
  || { echo "streamed wire client failed:"; cat "$WORK/stream.log"; exit 1; }
mapfile -t SLINES < "$WORK/stream.txt"
test "${#SLINES[@]}" -eq $((2 * ${#PARAMS[@]})) \
  || { echo "expected $((2 * ${#PARAMS[@]})) streamed lines, got ${#SLINES[@]}"; exit 1; }
stream_chunks_seen=0
for i in "${!PARAMS[@]}"; do
  reply="${SLINES[$((2 * i))]}"
  summary="${SLINES[$((2 * i + 1))]}"
  grep -q '"cmd":"stream_client"' <<<"$summary" \
    || { echo "stream query $i: missing reassembly line: $summary"; exit 1; }
  s_count=$(jsonfield "$summary" count)
  s_digest=$(jsonfield "$summary" digest)
  s_chunks=$(jsonfield "$summary" chunks)
  if [ "$s_count" != "${CLI_COUNT[$i]}" ] \
     || [ "$s_digest" != "${CLI_DIGEST[$i]}" ]; then
    echo "stream MISMATCH query $i (${PARAMS[$i]}):" >&2
    echo "  reassembled count=$s_count digest=$s_digest" >&2
    echo "  cli         count=${CLI_COUNT[$i]} digest=${CLI_DIGEST[$i]}" >&2
    exit 1
  fi
  # The end-of-stream summary must agree with its own chunk payload.
  r_count=$(jsonfield "$reply" count)
  r_digest=$(jsonfield "$reply" digest)
  if [ "$r_count" != "$s_count" ] || [ "$r_digest" != "$s_digest" ]; then
    echo "stream query $i: end summary ($r_count/$r_digest) disagrees" \
         "with its chunks ($s_count/$s_digest)"
    exit 1
  fi
  stream_chunks_seen=$((stream_chunks_seen + s_chunks))
done
test "$stream_chunks_seen" -ge "${#PARAMS[@]}" \
  || { echo "suspiciously few chunks across 20 streams: $stream_chunks_seen"; exit 1; }
echo "stream OK: 20 reassembled streams match fairbc_cli" \
     "($stream_chunks_seen chunks)"

echo "== budgeted streamed query: first chunk must beat the full response"
# A per-query budget skips cache and single-flight, so this runs the
# engines for real; the first kReplyChunk must land strictly before the
# kReplyEnd frame — the point of progressive delivery.
echo "query graph=g model=ssfbc alpha=2 beta=2 delta=1 budget=30" \
  | "$WIRE" --port="$PORT" --stream > "$WORK/stream_budget.txt" 2>&1 \
  || { echo "budgeted stream failed:"; cat "$WORK/stream_budget.txt"; exit 1; }
BLINE=$(grep '"cmd":"stream_client"' "$WORK/stream_budget.txt")
first_ms=$(jsonfield "$BLINE" first_ms)
total_ms=$(jsonfield "$BLINE" total_ms)
awk -v f="$first_ms" -v t="$total_ms" 'BEGIN { exit !(f >= 0 && f < t) }' \
  || { echo "first chunk not ahead of full response:" \
            "first_ms=$first_ms total_ms=$total_ms"; exit 1; }
echo "budgeted stream OK: first_ms=$first_ms < total_ms=$total_ms"

echo "== second scrape: counters must be monotonic and reflect the wire replay"
scrape_metrics "$WORK/scrape2.txt"
Q2=$(metric "$WORK/scrape2.txt" fairbc_queries_total)
R2=$(metric "$WORK/scrape2.txt" fairbc_reactor_reads_total)
SQ2=$(metric "$WORK/scrape2.txt" fairbc_stream_queries_total)
SC2=$(metric "$WORK/scrape2.txt" fairbc_stream_chunks_total)
if [ "$Q2" -le "$Q1" ] || [ "$R2" -lt "$R1" ]; then
  echo "scrape not monotonic: queries $Q1 -> $Q2, reads $R1 -> $R2"
  exit 1
fi
if [ "$SQ2" -lt 21 ] || [ "$SC2" -lt "$stream_chunks_seen" ]; then
  echo "stream counters not live: stream_queries=$SQ2 stream_chunks=$SC2"
  exit 1
fi
echo "scrape 2: queries=$Q2 reactor_reads=$R2 stream_queries=$SQ2" \
     "stream_chunks=$SC2 (monotonic)"

echo "== capture a retained trace and validate the Perfetto JSON"
exec 4<>"/dev/tcp/127.0.0.1/$PORT"
printf 'trace n=3\nquit\n' >&4
read -r TRACE_LINE <&4
exec 4<&- 4>&-
printf '%s' "$TRACE_LINE" > "$TRACE_ARTIFACT"
RETAINED=$(jsonfield "$TRACE_LINE" retained)
if [ -z "$RETAINED" ] || [ "$RETAINED" -lt 1 ]; then
  echo "trace command retained nothing: $TRACE_LINE"
  exit 1
fi
python3 "$VALIDATE" "$TRACE_ARTIFACT" \
  || { echo "trace validation failed"; exit 1; }
echo "trace OK: $RETAINED retained, artifact at $TRACE_ARTIFACT"

echo "== stop the server (drain) and collect telemetry"
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
echo "cache" >&3
read -r CACHE_LINE <&3
echo "stop" >&3
read -r _ <&3 || true
exec 3<&- 3>&-
wait "$SERVER_PID"
SERVER_PID=

total_hits=$(jsonfield "$CACHE_LINE" hits)
coalesced=$(jsonfield "$CACHE_LINE" coalesced)
executions=$(jsonfield "$CACHE_LINE" executions)
# Three identical batch 20-query traces over 16 unique points cost 16
# real executions (single-flight coalesces concurrent identicals, the
# cache serves the rest). The streamed replay re-executes each unique
# point once more — a summary-only cache entry cannot serve chunks, so
# the first stream of a point runs the engines and retains the payload,
# after which the repeats replay from memory — and the budgeted query
# always runs itself (budgeted runs never join or cache). Budget: 33.
if [ -z "$total_hits" ] || [ -z "$coalesced" ] || [ -z "$executions" ]; then
  echo "TCP telemetry unexpected: $CACHE_LINE"
  exit 1
fi
if [ "$executions" -gt 33 ]; then
  echo "single-flight failed: $executions executions for 16 unique points" \
       "(budget: 16 batch + 16 payload-producing streams + 1 budgeted)"
  exit 1
fi
if [ $((total_hits + coalesced)) -lt 24 ]; then
  echo "expected hits+coalesced >= 24, got $total_hits+$coalesced" \
       "($CACHE_LINE)"
  exit 1
fi

echo "OK: stdin + 2 TCP clients match fairbc_cli" \
     "(tcp hits: $hits_a/$hits_b, executions: $executions," \
     "coalesced: $coalesced)"
