#!/usr/bin/env bash
# Service-layer smoke: generate a graph, snapshot it, serve it with
# fairbc_server, replay a canned 20-query trace over the line protocol,
# and assert every response's count + result-set digest matches a
# fairbc_cli run of the same parameters. Also checks the repeated
# queries at the end of the trace were served from the ResultCache.
#
# Usage: tools/ci_service_smoke.sh [BUILD_DIR]   (default: build)

set -euo pipefail

BUILD=${1:-build}
CLI=$BUILD/fairbc_cli
SERVER=$BUILD/fairbc_server
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

jsonfield() {  # jsonfield FILE_LINE KEY -> value (flat compact JSON)
  sed -n "s/.*\"$2\":\"\{0,1\}\([^,\"}]*\)\"\{0,1\}[,}].*/\1/p" <<<"$1"
}

echo "== gen + snapshot save"
"$CLI" gen --out="$WORK/g.fbg" --kind=affiliation --nu=400 --nv=400 \
       --communities=20 --seed=7
"$CLI" snapshot save --graph="$WORK/g.fbg" --out="$WORK/g.snap"

echo "== build 20-query trace (16 unique + 4 repeats)"
PARAMS=()
for model in ssfbc bsfbc; do
  for alpha in 2 3; do
    for beta in 2 3; do
      for delta in 1 2; do
        PARAMS+=("$model $alpha $beta $delta")
      done
    done
  done
done
# Repeats of the first four parameter points → must be cache hits.
PARAMS+=("${PARAMS[0]}" "${PARAMS[1]}" "${PARAMS[2]}" "${PARAMS[3]}")
test "${#PARAMS[@]}" -eq 20

TRACE="$WORK/trace.txt"
{
  echo "load name=g path=$WORK/g.snap format=snapshot"
  for p in "${PARAMS[@]}"; do
    read -r model alpha beta delta <<<"$p"
    echo "query graph=g model=$model alpha=$alpha beta=$beta delta=$delta"
  done
  echo "cache"
  echo "quit"
} > "$TRACE"

echo "== replay through fairbc_server"
"$SERVER" < "$TRACE" > "$WORK/responses.txt"
mapfile -t RESPONSES < "$WORK/responses.txt"
# responses: [0]=load, [1..20]=queries, [21]=cache, [22]=quit
test "${#RESPONSES[@]}" -eq 23

grep -q '"ok":true' <<<"${RESPONSES[0]}" || { echo "load failed"; exit 1; }

echo "== compare each response against fairbc_cli"
hits=0
for i in "${!PARAMS[@]}"; do
  read -r model alpha beta delta <<<"${PARAMS[$i]}"
  resp="${RESPONSES[$((i + 1))]}"
  grep -q '"ok":true' <<<"$resp" || { echo "query $i failed: $resp"; exit 1; }

  cli_out=$("$CLI" enum --graph="$WORK/g.snap" --format=snapshot \
    --model="$model" --alpha="$alpha" --beta="$beta" --delta="$delta" \
    --count-only --output=json)

  for key in count digest; do
    want=$(jsonfield "$cli_out" $key)
    got=$(jsonfield "$resp" $key)
    if [ -z "$want" ] || [ "$want" != "$got" ]; then
      echo "MISMATCH query $i ($model a=$alpha b=$beta d=$delta):"
      echo "  server $key=$got, cli $key=$want"
      echo "  server: $resp"
      echo "  cli:    $cli_out"
      exit 1
    fi
  done
  if [ "$(jsonfield "$resp" cache_hit)" = "true" ]; then
    hits=$((hits + 1))
  fi
done

echo "== check cache telemetry"
cache_hits=$(jsonfield "${RESPONSES[21]}" hits)
if [ "$hits" -lt 4 ] || [ "$cache_hits" -lt 4 ]; then
  echo "expected >=4 cache hits from the repeated queries, saw $hits" \
       "(telemetry: $cache_hits)"
  exit 1
fi

echo "OK: 20 responses match fairbc_cli; $hits cache hits"
