// fairbc command-line tool.
//
// Usage:
//   fairbc_cli stats   --graph=FILE [--format=edges|attr|snapshot|mmap]
//   fairbc_cli enum    --graph=FILE [--format=edges|attr|snapshot|mmap]
//                      --model=ssfbc|bsfbc
//                      [--algo=pp|bcem|naive] [--alpha=A] [--beta=B]
//                      [--delta=D] [--theta=T] [--ordering=deg|id]
//                      [--pruning=colorful|core|none] [--budget=SECONDS]
//                      [--threads=N] [--out=FILE] [--count-only]
//                      [--output=text|json] [--rand-attrs=N --seed=S]
//                      [--trace-out=FILE] [--top-k=K]
//                      [--rank=weight|size|balance] [--stream] [--chunk=N]
//   fairbc_cli gen     --out=FILE --kind=uniform|powerlaw|affiliation
//                      [--nu=N --nv=N --edges=M --attrs=K --seed=S]
//   fairbc_cli snapshot save --graph=FILE [--format=edges|attr] --out=SNAP
//                            [--compress] [--block-edges=N]
//   fairbc_cli snapshot load --graph=SNAP
//   fairbc_cli snapshot info --graph=SNAP   (header probe: version, ratio)
//   fairbc_cli verify  --graph=FILE --results=FILE --model=ssfbc|bsfbc
//                      [--alpha=A --beta=B --delta=D --theta=T]
//
// `--format=edges` reads a plain `u v` edge list (attributes default to
// class 0; combine with --rand-attrs to mirror the paper's random
// attribute assignment). `--format=attr` reads the %fairbc format;
// `--format=snapshot` reads the binary snapshot format (graph/snapshot.h,
// written by `snapshot save` — bulk load, no text parsing);
// `--format=mmap` maps the same snapshot in place (read-only view, no
// copy — ReadSnapshotView).
//
// `--output=json` replaces enum's human-readable lines with one JSON
// object (count, result-set digest, per-phase stats) emitted through the
// same serializer as the fairbc_server responses.
//
// `--top-k=K` keeps only the K best bicliques under `--rank` (edge count,
// |L|+|R|, or min(|L|,|R|)) and lets the engines branch-and-bound prune
// against the current K-th best — the CLI mirror of the server's top-k
// queries. `--stream` emits results as they are found instead of
// collecting first: with --output=json, the server's {"cmd":"chunk",...}
// lines (--chunk=N results per line) followed by the usual summary
// object; with text output, bicliques print incrementally.
//
// `--trace-out=FILE` records the run's phase spans (reduce →
// construct/color/peel, enumerate → root/split) and writes them as
// Chrome trace-event JSON — load FILE in Perfetto / chrome://tracing.
// See docs/OBSERVABILITY.md.

#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/flags.h"
#include "common/timer.h"
#include "core/pipeline.h"
#include "core/result_sink.h"
#include "core/search_context.h"
#include "obs/trace.h"
#include "core/verify.h"
#include "graph/biclique_io.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/snapshot.h"
#include "graph/stats.h"
#include "service/query.h"
#include "service/response_json.h"

namespace {

using fairbc::BipartiteGraph;
using fairbc::FlagParser;
using fairbc::Side;
using fairbc::Status;

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

int Usage() {
  std::cerr << "usage: fairbc_cli <stats|enum|gen|snapshot|verify> [flags]\n"
               "run with a command to see its flags (top of tools/"
               "fairbc_cli.cc)\n";
  return 2;
}

fairbc::Result<BipartiteGraph> LoadGraph(const FlagParser& flags) {
  std::string path = flags.GetString("graph", "");
  if (path.empty()) {
    return Status::InvalidArgument("--graph is required");
  }
  std::string format = flags.GetString("format", "attr");
  fairbc::Result<BipartiteGraph> loaded =
      format == "edges"      ? fairbc::ReadEdgeList(path)
      : format == "snapshot" ? fairbc::ReadSnapshot(path)
      : format == "mmap"     ? fairbc::ReadSnapshotView(path)
                             : fairbc::ReadAttributedGraph(path);
  if (!loaded.ok()) return loaded;
  BipartiteGraph g = std::move(loaded).value();

  auto rand_attrs = flags.GetInt("rand-attrs", 0);
  if (rand_attrs > 1) {
    // Re-attribute both sides uniformly, the paper's preprocessing for
    // non-attributed inputs.
    fairbc::Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 42)));
    fairbc::BipartiteGraphBuilder builder(g.NumUpper(), g.NumLower());
    for (fairbc::VertexId u = 0; u < g.NumUpper(); ++u) {
      for (fairbc::VertexId v : g.Neighbors(Side::kUpper, u)) {
        builder.AddEdge(u, v);
      }
    }
    builder.AssignRandomAttrs(Side::kUpper, static_cast<fairbc::AttrId>(rand_attrs),
                              rng);
    builder.AssignRandomAttrs(Side::kLower, static_cast<fairbc::AttrId>(rand_attrs),
                              rng);
    return builder.Build();
  }
  return g;
}

int RunStats(const FlagParser& flags) {
  auto loaded = LoadGraph(flags);
  if (!loaded.ok()) return Fail(loaded.status());
  std::cout << fairbc::StatsReport(loaded.value());
  return 0;
}

int RunEnum(const FlagParser& flags) {
  auto loaded = LoadGraph(flags);
  if (!loaded.ok()) return Fail(loaded.status());
  const BipartiteGraph& g = loaded.value();

  fairbc::FairBicliqueParams params;
  params.alpha = static_cast<std::uint32_t>(flags.GetInt("alpha", 1));
  params.beta = static_cast<std::uint32_t>(flags.GetInt("beta", 1));
  params.delta = static_cast<std::uint32_t>(flags.GetInt("delta", 0));
  params.theta = flags.GetDouble("theta", 0.0);

  fairbc::EnumOptions options;
  std::string ordering = flags.GetString("ordering", "deg");
  options.ordering = ordering == "id" ? fairbc::VertexOrdering::kId
                                      : fairbc::VertexOrdering::kDegreeDesc;
  std::string pruning = flags.GetString("pruning", "colorful");
  options.pruning = pruning == "none"   ? fairbc::PruningLevel::kNone
                    : pruning == "core" ? fairbc::PruningLevel::kCore
                                        : fairbc::PruningLevel::kColorful;
  options.time_budget_seconds = flags.GetDouble("budget", 0.0);
  // 1 = serial (default, reproducible output order), 0 = all cores.
  std::int64_t threads = flags.GetInt("threads", 1);
  if (threads < 0) {
    std::cerr << "error: --threads must be >= 0\n";
    return 2;
  }
  options.num_threads = static_cast<unsigned>(threads);

  auto model = fairbc::ParseFairModel(flags.GetString("model", "ssfbc"));
  if (!model) return Fail(Status::InvalidArgument("bad --model (ssfbc|bsfbc)"));
  auto algo = fairbc::ParseFairAlgo(flags.GetString("algo", "pp"));
  if (!algo) return Fail(Status::InvalidArgument("bad --algo (pp|bcem|naive)"));

  auto rank = fairbc::ParseTopKRank(flags.GetString("rank", "weight"));
  if (!rank) {
    return Fail(Status::InvalidArgument("bad --rank (weight|size|balance)"));
  }
  const std::int64_t top_k_flag = flags.GetInt("top-k", 0);
  if (top_k_flag < 0 || top_k_flag > 1'000'000'000) {
    return Fail(Status::InvalidArgument("--top-k must be in [0, 1e9]"));
  }
  const auto top_k = static_cast<std::uint32_t>(top_k_flag);
  const bool stream = flags.GetBool("stream", false);
  const std::int64_t chunk_results = flags.GetInt("chunk", 64);
  if (chunk_results < 1 || chunk_results > 1'000'000) {
    return Fail(Status::InvalidArgument("--chunk must be in [1, 1e6]"));
  }

  const bool json = flags.GetString("output", "text") == "json";
  const std::string trace_out = flags.GetString("trace-out", "");
  std::unique_ptr<fairbc::TraceRecorder> recorder;
  if (!trace_out.empty()) {
    recorder = std::make_unique<fairbc::TraceRecorder>();
    recorder->set_label(flags.GetString("graph", "") + " " +
                        fairbc::ToString(*model) + "/" +
                        fairbc::ToString(*algo));
    options.trace = recorder.get();
  }
  // The digest feeds the JSON output; the pipeline serializes sink
  // invocation, so the plain accumulator is safe at any --threads.
  fairbc::DigestAccumulator digest;
  fairbc::Timer wall;
  // The digest must cover exactly the DELIVERED result set (all results,
  // or the K best for --top-k), so top-k runs wrap it around the replay
  // of the kept set, not around the enumeration sink.
  auto run = [&](fairbc::BicliqueSink sink, bool wrap_digest) {
    if (json && wrap_digest) sink = digest.Wrap(std::move(sink));
    // The root "query" span makes CLI traces the same shape as the
    // server's retained slow-query traces (one validator fits both).
    fairbc::TraceSpan root(recorder.get(), "query");
    return fairbc::RunEnumeration(g, *model, *algo, params, options, sink);
  };

  fairbc::EnumStats stats;
  std::string wrote;
  const std::string out = flags.GetString("out", "");
  const bool count_only = flags.GetBool("count-only", false);

  std::uint64_t chunk_seq = 0;
  std::optional<fairbc::SearchBudget> stream_budget;
  std::optional<fairbc::ChunkSink> chunker;
  if (stream) {
    if (!out.empty() || count_only) {
      return Fail(Status::InvalidArgument(
          "--stream is incompatible with --out/--count-only"));
    }
    stream_budget.emplace(options);
    options.shared_budget = &*stream_budget;
    chunker.emplace(
        static_cast<std::size_t>(chunk_results),
        [&](std::vector<fairbc::Biclique>&& bicliques,
            const fairbc::StreamCheckpoint& checkpoint) {
          if (bicliques.empty()) return true;
          if (json) {
            fairbc::QueryExecutor::StreamChunk chunk;
            chunk.seq = ++chunk_seq;
            chunk.results_so_far = checkpoint.results;
            chunk.nodes_so_far = checkpoint.nodes;
            chunk.bicliques = std::move(bicliques);
            std::cout << fairbc::StreamChunkJson(fairbc::QueryRequest(), chunk)
                      << "\n";
          } else {
            for (const fairbc::Biclique& b : bicliques) {
              std::cout << b.DebugString() << "\n";
            }
          }
          std::cout << std::flush;  // progressive delivery is the point.
          return true;
        },
        stream_budget.has_value() ? &*stream_budget : nullptr);
  }

  if (top_k > 0) {
    // Rank the whole (pruned) enumeration, keep the K best, then push
    // them through the normal output path best-first. The prune bound
    // lets engines skip subtrees that cannot beat the current K-th best,
    // exactly like the server's top-k queries.
    fairbc::TopKSink topk(top_k, *rank);
    options.topk = topk.prune_bound();
    stats = run(topk.AsSink(), /*wrap_digest=*/false);
    topk.Finish();
    std::vector<fairbc::Biclique> best = topk.Take();
    stats.num_results = best.size();
    fairbc::CollectSink collected;
    fairbc::BicliqueSink deliver;
    if (chunker) {
      deliver = chunker->AsSink();
    } else if (count_only) {
      deliver = [](const fairbc::Biclique&) { return true; };
    } else {
      deliver = collected.AsSink();
    }
    if (json) deliver = digest.Wrap(std::move(deliver));
    for (const fairbc::Biclique& b : best) {
      if (!deliver(b)) break;
    }
    if (chunker) {
      chunker->Finish();
    } else if (count_only) {
      if (!json) std::cout << "count: " << best.size() << "\n";
    } else if (!out.empty()) {
      Status st = fairbc::WriteBicliques(collected.results(), out);
      if (!st.ok()) return Fail(st);
      wrote = out;
      if (!json) {
        std::cout << "wrote " << collected.results().size()
                  << " bicliques to " << out << "\n";
      }
    } else if (!json) {
      for (const fairbc::Biclique& b : collected.results()) {
        std::cout << b.DebugString() << "\n";
      }
    }
  } else if (chunker) {
    stats = run(chunker->AsSink(), /*wrap_digest=*/true);
    chunker->Finish();
  } else if (count_only || (json && out.empty())) {
    // JSON mode only ever reports count/digest/stats, so unless the
    // bicliques are written to a file the streaming accumulator is all
    // that's needed — never buffer the result set just to drop it.
    fairbc::CountSink sink;
    stats = run(sink.AsSink(), /*wrap_digest=*/true);
    if (!json) std::cout << "count: " << sink.count() << "\n";
  } else {
    fairbc::CollectSink sink;
    stats = run(sink.AsSink(), /*wrap_digest=*/true);
    if (!out.empty()) {
      Status st = fairbc::WriteBicliques(sink.results(), out);
      if (!st.ok()) return Fail(st);
      wrote = out;
      if (!json) {
        std::cout << "wrote " << sink.results().size() << " bicliques to "
                  << out << "\n";
      }
    } else {
      for (const fairbc::Biclique& b : sink.results()) {
        std::cout << b.DebugString() << "\n";
      }
    }
  }
  if (recorder != nullptr) {
    recorder->set_wall_seconds(wall.ElapsedSeconds());
    std::ofstream trace_file(trace_out, std::ios::trunc);
    if (!trace_file) {
      return Fail(Status::Internal("cannot write --trace-out file: " +
                                   trace_out));
    }
    trace_file << fairbc::TraceEventsJson(*recorder) << "\n";
    if (!json) {
      std::cout << "wrote trace (" << recorder->Snapshot().size()
                << " spans) to " << trace_out << "\n";
    }
  }
  if (json) {
    // The params/summary fragment is the exact emitter the fairbc_server
    // `query` response uses, so CLI runs and server responses stay
    // textually comparable (the CI smoke relies on this).
    fairbc::QuerySummary summary;
    digest.FillSummary(&summary);
    std::cout << "{\"ok\":true,\"cmd\":\"enum\","
              << fairbc::QueryParamsSummaryJson(*model, *algo, params, summary);
    if (!wrote.empty()) {
      std::cout << ",\"wrote\":\"" << fairbc::JsonEscape(wrote) << "\"";
    }
    std::cout << ",\"stats\":" << fairbc::StatsJson(stats) << "}\n";
  } else {
    std::cout << "stats: " << stats.DebugString() << "\n";
  }
  return stats.budget_exhausted ? 3 : 0;
}

int RunSnapshot(const FlagParser& flags) {
  const auto& positional = flags.positional();
  std::string sub = positional.empty() ? "" : positional.front();
  if (sub == "save") {
    // --graph/--format name the (typically text) input; --out the
    // snapshot. --compress writes the v3 block-compressed format
    // (--block-edges sets its block granularity).
    std::string out = flags.GetString("out", "");
    if (out.empty()) return Fail(Status::InvalidArgument("--out is required"));
    auto loaded = LoadGraph(flags);
    if (!loaded.ok()) return Fail(loaded.status());
    fairbc::SnapshotWriteOptions options;
    if (flags.GetBool("compress", false)) {
      options.version = fairbc::kSnapshotVersionCompressed;
    }
    const auto block_edges =
        flags.GetInt("block-edges", fairbc::kDefaultSnapshotBlockEdges);
    if (block_edges < 1 || block_edges > 1'000'000'000) {
      return Fail(Status::InvalidArgument("--block-edges must be in [1, 1e9]"));
    }
    options.block_edges = static_cast<std::uint32_t>(block_edges);
    Status st = fairbc::WriteSnapshot(loaded.value(), out, options);
    if (!st.ok()) return Fail(st);
    std::cout << "wrote snapshot " << out << " v" << options.version
              << " version "
              << fairbc::JsonHex64(fairbc::GraphFingerprint(loaded.value()))
              << " (" << loaded.value().DebugString() << ")\n";
    return 0;
  }
  if (sub == "load") {
    std::string path = flags.GetString("graph", "");
    if (path.empty()) {
      return Fail(Status::InvalidArgument("--graph is required"));
    }
    auto loaded = fairbc::ReadSnapshot(path);
    if (!loaded.ok()) return Fail(loaded.status());
    std::cout << "loaded snapshot " << path << " version "
              << fairbc::JsonHex64(fairbc::GraphFingerprint(loaded.value()))
              << " (" << loaded.value().DebugString() << ")\n";
    return 0;
  }
  if (sub == "info") {
    // Header-only probe: format version, counts, fingerprint and the
    // compression ratio against the raw v2 encoding.
    std::string path = flags.GetString("graph", "");
    if (path.empty()) {
      return Fail(Status::InvalidArgument("--graph is required"));
    }
    auto info = fairbc::ProbeSnapshot(path);
    if (!info.ok()) return Fail(info.status());
    const fairbc::SnapshotInfo& i = info.value();
    std::cout << "{\"path\":\"" << fairbc::JsonEscape(path)
              << "\",\"snapshot_version\":" << i.version << ",\"version\":\""
              << fairbc::JsonHex64(i.checksum)
              << "\",\"upper\":" << i.num_upper << ",\"lower\":" << i.num_lower
              << ",\"edges\":" << i.num_edges
              << ",\"file_bytes\":" << i.file_bytes
              << ",\"uncompressed_bytes\":" << i.uncompressed_bytes
              << ",\"ratio\":"
              << fairbc::JsonDouble(
                     i.file_bytes == 0
                         ? 0.0
                         : static_cast<double>(i.uncompressed_bytes) /
                               static_cast<double>(i.file_bytes))
              << ",\"block_edges\":" << i.block_edges
              << ",\"num_blocks\":" << i.num_blocks << "}\n";
    return 0;
  }
  std::cerr << "usage: fairbc_cli snapshot <save|load|info> [flags]\n";
  return 2;
}

int RunGen(const FlagParser& flags) {
  std::string out = flags.GetString("out", "");
  if (out.empty()) return Fail(Status::InvalidArgument("--out is required"));
  auto nu = static_cast<fairbc::VertexId>(flags.GetInt("nu", 1000));
  auto nv = static_cast<fairbc::VertexId>(flags.GetInt("nv", 1000));
  auto edges = static_cast<fairbc::EdgeIndex>(flags.GetInt("edges", 5000));
  auto attrs = static_cast<fairbc::AttrId>(flags.GetInt("attrs", 2));
  auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  std::string kind = flags.GetString("kind", "affiliation");

  BipartiteGraph g;
  if (kind == "uniform") {
    g = fairbc::MakeUniformRandom(nu, nv, edges, attrs, seed);
  } else if (kind == "powerlaw") {
    g = fairbc::MakePowerLaw(nu, nv, edges, flags.GetDouble("gamma", 2.2),
                             attrs, seed);
  } else {
    fairbc::AffiliationConfig config;
    config.num_upper = nu;
    config.num_lower = nv;
    config.num_communities =
        static_cast<std::uint32_t>(flags.GetInt("communities", 60));
    config.num_upper_attrs = attrs;
    config.num_lower_attrs = attrs;
    config.seed = seed;
    g = fairbc::MakeAffiliation(config);
  }
  Status st = fairbc::WriteAttributedGraph(g, out);
  if (!st.ok()) return Fail(st);
  std::cout << "wrote " << g.DebugString() << " to " << out << "\n";
  return 0;
}

int RunVerify(const FlagParser& flags) {
  auto loaded = LoadGraph(flags);
  if (!loaded.ok()) return Fail(loaded.status());
  std::string results_path = flags.GetString("results", "");
  if (results_path.empty()) {
    return Fail(Status::InvalidArgument("--results is required"));
  }
  auto results = fairbc::ReadBicliques(results_path);
  if (!results.ok()) return Fail(results.status());

  fairbc::FairBicliqueParams params;
  params.alpha = static_cast<std::uint32_t>(flags.GetInt("alpha", 1));
  params.beta = static_cast<std::uint32_t>(flags.GetInt("beta", 1));
  params.delta = static_cast<std::uint32_t>(flags.GetInt("delta", 0));
  params.theta = flags.GetDouble("theta", 0.0);
  fairbc::FairModel model = flags.GetString("model", "ssfbc") == "bsfbc"
                                ? fairbc::FairModel::kBsfbc
                                : fairbc::FairModel::kSsfbc;
  Status st = fairbc::VerifyResultSet(loaded.value(), results.value(), params,
                                      model);
  if (!st.ok()) return Fail(st);
  std::cout << "OK: " << results.value().size()
            << " results verified (biclique, fairness, maximality, no "
               "duplicates)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  FlagParser flags;
  Status st = flags.Parse(argc - 1, argv + 1);
  if (!st.ok()) return Fail(st);

  int rc;
  if (command == "stats") {
    rc = RunStats(flags);
  } else if (command == "enum") {
    rc = RunEnum(flags);
  } else if (command == "gen") {
    rc = RunGen(flags);
  } else if (command == "snapshot") {
    rc = RunSnapshot(flags);
  } else if (command == "verify") {
    rc = RunVerify(flags);
  } else {
    return Usage();
  }
  for (const std::string& name : flags.UnusedFlags()) {
    std::cerr << "warning: unknown flag --" << name << " ignored\n";
  }
  return rc;
}
