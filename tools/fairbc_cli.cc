// fairbc command-line tool.
//
// Usage:
//   fairbc_cli stats   --graph=FILE [--format=edges|attr]
//   fairbc_cli enum    --graph=FILE [--format=edges|attr] --model=ssfbc|bsfbc
//                      [--algo=pp|bcem|naive] [--alpha=A] [--beta=B]
//                      [--delta=D] [--theta=T] [--ordering=deg|id]
//                      [--pruning=colorful|core|none] [--budget=SECONDS]
//                      [--threads=N] [--out=FILE] [--count-only]
//                      [--rand-attrs=N --seed=S]
//   fairbc_cli gen     --out=FILE --kind=uniform|powerlaw|affiliation
//                      [--nu=N --nv=N --edges=M --attrs=K --seed=S]
//   fairbc_cli verify  --graph=FILE --results=FILE --model=ssfbc|bsfbc
//                      [--alpha=A --beta=B --delta=D --theta=T]
//
// `--format=edges` reads a plain `u v` edge list (attributes default to
// class 0; combine with --rand-attrs to mirror the paper's random
// attribute assignment). `--format=attr` reads the %fairbc format.

#include <iostream>
#include <string>

#include "common/flags.h"
#include "core/pipeline.h"
#include "core/verify.h"
#include "graph/biclique_io.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/stats.h"

namespace {

using fairbc::BipartiteGraph;
using fairbc::FlagParser;
using fairbc::Side;
using fairbc::Status;

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

int Usage() {
  std::cerr << "usage: fairbc_cli <stats|enum|gen> [flags]\n"
               "run with a command to see its flags (top of tools/"
               "fairbc_cli.cc)\n";
  return 2;
}

fairbc::Result<BipartiteGraph> LoadGraph(const FlagParser& flags) {
  std::string path = flags.GetString("graph", "");
  if (path.empty()) {
    return Status::InvalidArgument("--graph is required");
  }
  std::string format = flags.GetString("format", "attr");
  fairbc::Result<BipartiteGraph> loaded =
      format == "edges" ? fairbc::ReadEdgeList(path)
                        : fairbc::ReadAttributedGraph(path);
  if (!loaded.ok()) return loaded;
  BipartiteGraph g = std::move(loaded).value();

  auto rand_attrs = flags.GetInt("rand-attrs", 0);
  if (rand_attrs > 1) {
    // Re-attribute both sides uniformly, the paper's preprocessing for
    // non-attributed inputs.
    fairbc::Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 42)));
    fairbc::BipartiteGraphBuilder builder(g.NumUpper(), g.NumLower());
    for (fairbc::VertexId u = 0; u < g.NumUpper(); ++u) {
      for (fairbc::VertexId v : g.Neighbors(Side::kUpper, u)) {
        builder.AddEdge(u, v);
      }
    }
    builder.AssignRandomAttrs(Side::kUpper, static_cast<fairbc::AttrId>(rand_attrs),
                              rng);
    builder.AssignRandomAttrs(Side::kLower, static_cast<fairbc::AttrId>(rand_attrs),
                              rng);
    return builder.Build();
  }
  return g;
}

int RunStats(const FlagParser& flags) {
  auto loaded = LoadGraph(flags);
  if (!loaded.ok()) return Fail(loaded.status());
  std::cout << fairbc::StatsReport(loaded.value());
  return 0;
}

int RunEnum(const FlagParser& flags) {
  auto loaded = LoadGraph(flags);
  if (!loaded.ok()) return Fail(loaded.status());
  const BipartiteGraph& g = loaded.value();

  fairbc::FairBicliqueParams params;
  params.alpha = static_cast<std::uint32_t>(flags.GetInt("alpha", 1));
  params.beta = static_cast<std::uint32_t>(flags.GetInt("beta", 1));
  params.delta = static_cast<std::uint32_t>(flags.GetInt("delta", 0));
  params.theta = flags.GetDouble("theta", 0.0);

  fairbc::EnumOptions options;
  std::string ordering = flags.GetString("ordering", "deg");
  options.ordering = ordering == "id" ? fairbc::VertexOrdering::kId
                                      : fairbc::VertexOrdering::kDegreeDesc;
  std::string pruning = flags.GetString("pruning", "colorful");
  options.pruning = pruning == "none"   ? fairbc::PruningLevel::kNone
                    : pruning == "core" ? fairbc::PruningLevel::kCore
                                        : fairbc::PruningLevel::kColorful;
  options.time_budget_seconds = flags.GetDouble("budget", 0.0);
  // 1 = serial (default, reproducible output order), 0 = all cores.
  std::int64_t threads = flags.GetInt("threads", 1);
  if (threads < 0) {
    std::cerr << "error: --threads must be >= 0\n";
    return 2;
  }
  options.num_threads = static_cast<unsigned>(threads);

  std::string model = flags.GetString("model", "ssfbc");
  std::string algo = flags.GetString("algo", "pp");
  auto run = [&](const fairbc::BicliqueSink& sink) {
    if (model == "bsfbc") {
      if (algo == "bcem") return fairbc::EnumerateBSFBC(g, params, options, sink);
      if (algo == "naive") {
        return fairbc::EnumerateBSFBCNaive(g, params, options, sink);
      }
      return fairbc::EnumerateBSFBCPlusPlus(g, params, options, sink);
    }
    if (algo == "bcem") return fairbc::EnumerateSSFBC(g, params, options, sink);
    if (algo == "naive") {
      return fairbc::EnumerateSSFBCNaive(g, params, options, sink);
    }
    return fairbc::EnumerateSSFBCPlusPlus(g, params, options, sink);
  };

  fairbc::EnumStats stats;
  if (flags.GetBool("count-only", false)) {
    fairbc::CountSink sink;
    stats = run(sink.AsSink());
    std::cout << "count: " << sink.count() << "\n";
  } else {
    fairbc::CollectSink sink;
    stats = run(sink.AsSink());
    std::string out = flags.GetString("out", "");
    if (!out.empty()) {
      Status st = fairbc::WriteBicliques(sink.results(), out);
      if (!st.ok()) return Fail(st);
      std::cout << "wrote " << sink.results().size() << " bicliques to "
                << out << "\n";
    } else {
      for (const fairbc::Biclique& b : sink.results()) {
        std::cout << b.DebugString() << "\n";
      }
    }
  }
  std::cout << "stats: " << stats.DebugString() << "\n";
  return stats.budget_exhausted ? 3 : 0;
}

int RunGen(const FlagParser& flags) {
  std::string out = flags.GetString("out", "");
  if (out.empty()) return Fail(Status::InvalidArgument("--out is required"));
  auto nu = static_cast<fairbc::VertexId>(flags.GetInt("nu", 1000));
  auto nv = static_cast<fairbc::VertexId>(flags.GetInt("nv", 1000));
  auto edges = static_cast<fairbc::EdgeIndex>(flags.GetInt("edges", 5000));
  auto attrs = static_cast<fairbc::AttrId>(flags.GetInt("attrs", 2));
  auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  std::string kind = flags.GetString("kind", "affiliation");

  BipartiteGraph g;
  if (kind == "uniform") {
    g = fairbc::MakeUniformRandom(nu, nv, edges, attrs, seed);
  } else if (kind == "powerlaw") {
    g = fairbc::MakePowerLaw(nu, nv, edges, flags.GetDouble("gamma", 2.2),
                             attrs, seed);
  } else {
    fairbc::AffiliationConfig config;
    config.num_upper = nu;
    config.num_lower = nv;
    config.num_communities =
        static_cast<std::uint32_t>(flags.GetInt("communities", 60));
    config.num_upper_attrs = attrs;
    config.num_lower_attrs = attrs;
    config.seed = seed;
    g = fairbc::MakeAffiliation(config);
  }
  Status st = fairbc::WriteAttributedGraph(g, out);
  if (!st.ok()) return Fail(st);
  std::cout << "wrote " << g.DebugString() << " to " << out << "\n";
  return 0;
}

int RunVerify(const FlagParser& flags) {
  auto loaded = LoadGraph(flags);
  if (!loaded.ok()) return Fail(loaded.status());
  std::string results_path = flags.GetString("results", "");
  if (results_path.empty()) {
    return Fail(Status::InvalidArgument("--results is required"));
  }
  auto results = fairbc::ReadBicliques(results_path);
  if (!results.ok()) return Fail(results.status());

  fairbc::FairBicliqueParams params;
  params.alpha = static_cast<std::uint32_t>(flags.GetInt("alpha", 1));
  params.beta = static_cast<std::uint32_t>(flags.GetInt("beta", 1));
  params.delta = static_cast<std::uint32_t>(flags.GetInt("delta", 0));
  params.theta = flags.GetDouble("theta", 0.0);
  fairbc::FairModel model = flags.GetString("model", "ssfbc") == "bsfbc"
                                ? fairbc::FairModel::kBsfbc
                                : fairbc::FairModel::kSsfbc;
  Status st = fairbc::VerifyResultSet(loaded.value(), results.value(), params,
                                      model);
  if (!st.ok()) return Fail(st);
  std::cout << "OK: " << results.value().size()
            << " results verified (biclique, fairness, maximality, no "
               "duplicates)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  FlagParser flags;
  Status st = flags.Parse(argc - 1, argv + 1);
  if (!st.ok()) return Fail(st);

  int rc;
  if (command == "stats") {
    rc = RunStats(flags);
  } else if (command == "enum") {
    rc = RunEnum(flags);
  } else if (command == "gen") {
    rc = RunGen(flags);
  } else if (command == "verify") {
    rc = RunVerify(flags);
  } else {
    return Usage();
  }
  for (const std::string& name : flags.UnusedFlags()) {
    std::cerr << "warning: unknown flag --" << name << " ignored\n";
  }
  return rc;
}
