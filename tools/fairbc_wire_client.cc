// Binary wire-protocol client for fairbc_server (docs/WIRE_PROTOCOL.md):
// reads line-protocol requests on stdin, ships them as binary frames —
// `query ...` lines as packed kQuery payloads, everything else as
// kCommand — and prints each response's JSON payload, one per line, so
// its output diffs 1:1 against the line protocol and the CLI oracle
// (that is how ci_service_smoke.sh uses it).
//
// Usage:
//   fairbc_wire_client --port=N [--pipeline] [--soak=K] [--stream]
//
//   --pipeline   send every request before reading any response, then
//                verify the responses come back in request order with
//                matching request ids (the server's per-connection
//                ordering guarantee).
//   --soak=K     hold K extra idle connections open for the whole run,
//                then ping each over the wire protocol and require a
//                pong — exercises the reactor's fd scalability.
//   --stream     set the stream flag on every kQuery frame: the server
//                answers with kReplyChunk frames closed by one kReplyEnd.
//                The client reassembles the chunks into a count and the
//                order-independent result digest and reports them (plus
//                first-chunk and total latency) as one extra
//                {"cmd":"stream_client",...} line after the kReplyEnd
//                JSON — so CI can assert streamed == batch against the
//                CLI oracle without trusting the server's own summary.
//
// Exit status is nonzero on any protocol violation (bad frame, out of
// order response, failed soak ping), so CI can assert wire correctness
// by exit code alone.

#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/flags.h"
#include "service/response_json.h"
#include "service/server.h"
#include "service/wire.h"

namespace {

using fairbc::wire::DecodeFrame;
using fairbc::wire::EncodeFrame;
using fairbc::wire::Frame;
using fairbc::wire::FrameStatus;
using fairbc::wire::Opcode;

int Connect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads one complete frame off the socket (blocking).
bool RecvFrame(int fd, std::string* buf, Frame* frame) {
  for (;;) {
    std::size_t consumed = 0;
    const auto decoded = DecodeFrame(
        *buf, /*max_payload=*/64u << 20, frame, &consumed);
    if (decoded.status == FrameStatus::kOk) {
      buf->erase(0, consumed);
      return true;
    }
    if (decoded.status == FrameStatus::kBad) {
      std::cerr << "wire_client: bad frame from server: " << decoded.message
                << "\n";
      return false;
    }
    char chunk[16384];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      std::cerr << "wire_client: connection closed mid-frame\n";
      return false;
    }
    buf->append(chunk, static_cast<std::size_t>(n));
  }
}

/// Formats one response frame the way the line protocol would print it.
bool PrintResponse(const Frame& frame) {
  switch (frame.opcode) {
    case Opcode::kReply:
      if (!frame.payload.empty()) std::cout << frame.payload << "\n";
      return true;
    case Opcode::kPong:
      std::cout << "{\"ok\":true,\"cmd\":\"pong\"}\n";
      return true;
    case Opcode::kError: {
      fairbc::wire::ErrorCode code;
      std::string message;
      if (!fairbc::wire::DecodeErrorPayload(frame.payload, &code, &message)
               .ok()) {
        std::cerr << "wire_client: unparsable error payload\n";
        return false;
      }
      std::cout << fairbc::TypedErrorJson(fairbc::wire::ToString(code), message)
                << "\n";
      return true;
    }
    default:
      std::cerr << "wire_client: unexpected opcode in response\n";
      return false;
  }
}

/// Encodes one request line as a frame: `query` lines as packed kQuery
/// payloads (exercising the binary query codec), everything else as a
/// kCommand carrying the line verbatim. With `stream`, kQuery frames get
/// the stream flag and `*is_stream_query` reports that a chunked response
/// must be read back.
bool EncodeRequestLine(const std::string& line, std::uint64_t request_id,
                       bool stream, std::string* out, bool* is_stream_query) {
  const fairbc::RequestLine parsed = fairbc::ParseRequestLine(line);
  *is_stream_query = false;
  Frame frame;
  frame.request_id = request_id;
  if (parsed.command == "query") {
    auto built = fairbc::BuildQueryRequest(parsed);
    if (!built.ok()) {
      // Ship it as a command so the SERVER produces the error reply —
      // client-side validation must not shadow server behavior.
      frame.opcode = Opcode::kCommand;
      frame.payload = line;
    } else {
      frame.opcode = Opcode::kQuery;
      frame.payload = fairbc::wire::EncodeQueryPayload(built.value(), stream);
      *is_stream_query = stream;
    }
  } else {
    frame.opcode = Opcode::kCommand;
    frame.payload = line;
  }
  EncodeFrame(frame, out);
  return true;
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Reads and prints the complete response to request `id`: one frame, or
/// — for stream-flagged queries — kReplyChunk frames closed by one
/// kReplyEnd, all echoing `id` contiguously. Chunks are reassembled
/// client-side (count + the order-independent BicliqueHash digest, via
/// DigestAccumulator — the same digest the batch path computes), and a
/// {"cmd":"stream_client",...} line reports the reassembly and latency.
bool ReadResponse(int fd, std::string* rbuf, std::uint64_t id, bool streamed,
                  std::chrono::steady_clock::time_point sent) {
  if (!streamed) {
    Frame frame;
    if (!RecvFrame(fd, rbuf, &frame)) return false;
    if (frame.request_id != id) {
      std::cerr << "error: response carries request id " << frame.request_id
                << ", want " << id << " (out of order)\n";
      return false;
    }
    return PrintResponse(frame);
  }
  fairbc::DigestAccumulator acc;
  fairbc::BicliqueSink accumulate =
      acc.Wrap([](const fairbc::Biclique&) { return true; });
  std::uint64_t chunks = 0;
  double first_ms = -1.0;
  for (;;) {
    Frame frame;
    if (!RecvFrame(fd, rbuf, &frame)) return false;
    if (frame.request_id != id) {
      std::cerr << "error: stream frame carries request id "
                << frame.request_id << ", want " << id
                << " (stream interleaved)\n";
      return false;
    }
    if (first_ms < 0) first_ms = MsSince(sent);
    if (frame.opcode == Opcode::kReplyChunk) {
      auto chunk = fairbc::wire::DecodeChunkPayload(frame.payload);
      if (!chunk.ok()) {
        std::cerr << "error: bad chunk payload: "
                  << chunk.status().ToString() << "\n";
        return false;
      }
      ++chunks;
      if (chunk.value().seq != chunks) {
        std::cerr << "error: chunk seq " << chunk.value().seq << ", want "
                  << chunks << " (gap or reorder)\n";
        return false;
      }
      for (const fairbc::Biclique& b : chunk.value().bicliques) accumulate(b);
      continue;
    }
    if (frame.opcode == Opcode::kReplyEnd) {
      const double total_ms = MsSince(sent);
      if (!frame.payload.empty()) std::cout << frame.payload << "\n";
      std::cout << "{\"ok\":true,\"cmd\":\"stream_client\",\"chunks\":"
                << chunks << ",\"count\":" << acc.count() << ",\"digest\":\""
                << fairbc::JsonHex64(acc.digest()) << "\",\"first_ms\":"
                << fairbc::JsonDouble(first_ms) << ",\"total_ms\":"
                << fairbc::JsonDouble(total_ms) << "}\n";
      return true;
    }
    // A rejected stream query is answered with a single kError frame.
    return PrintResponse(frame);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  fairbc::FlagParser flags;
  fairbc::Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::cerr << "error: " << st.ToString() << "\n";
    return 1;
  }
  const auto port = flags.GetInt("port", -1);
  const bool pipeline = flags.GetBool("pipeline", false);
  const bool stream = flags.GetBool("stream", false);
  const auto soak = flags.GetInt("soak", 0);
  for (const std::string& name : flags.UnusedFlags()) {
    std::cerr << "warning: unknown flag --" << name << " ignored\n";
  }
  if (port <= 0 || port > 65535) {
    std::cerr << "error: --port=N (1..65535) is required\n";
    return 1;
  }
  if (soak < 0 || soak > 10000) {
    std::cerr << "error: --soak must be in [0, 10000]\n";
    return 1;
  }

  std::vector<int> soak_fds;
  soak_fds.reserve(static_cast<std::size_t>(soak));
  for (std::int64_t i = 0; i < soak; ++i) {
    const int fd = Connect(static_cast<int>(port));
    if (fd < 0) {
      std::cerr << "error: soak connection " << i << " failed\n";
      return 1;
    }
    soak_fds.push_back(fd);
  }

  const int fd = Connect(static_cast<int>(port));
  if (fd < 0) {
    std::cerr << "error: cannot connect to 127.0.0.1:" << port << "\n";
    return 1;
  }

  std::vector<std::string> lines;
  std::string line;
  while (std::getline(std::cin, line)) {
    while (!line.empty() && line.back() == '\r') line.pop_back();
    // Blanks and comments produce no line-protocol output; skip them so
    // this client's stdout stays diffable against the stdin-mode replay.
    if (line.empty() || line[0] == '#') continue;
    lines.push_back(line);
  }

  int failures = 0;
  std::string rbuf;
  if (pipeline) {
    std::string burst;
    std::vector<bool> streamed(lines.size(), false);
    for (std::size_t i = 0; i < lines.size(); ++i) {
      bool is_stream = false;
      EncodeRequestLine(lines[i], /*request_id=*/i + 1, stream, &burst,
                        &is_stream);
      streamed[i] = is_stream;
    }
    const auto sent = std::chrono::steady_clock::now();
    if (!SendAll(fd, burst)) {
      std::cerr << "error: pipelined send failed\n";
      return 1;
    }
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (!ReadResponse(fd, &rbuf, i + 1, streamed[i], sent)) return 1;
    }
  } else {
    for (std::size_t i = 0; i < lines.size(); ++i) {
      std::string one;
      bool is_stream = false;
      EncodeRequestLine(lines[i], /*request_id=*/i + 1, stream, &one,
                        &is_stream);
      const auto sent = std::chrono::steady_clock::now();
      if (!SendAll(fd, one)) {
        std::cerr << "error: send failed at request " << i << "\n";
        return 1;
      }
      if (!ReadResponse(fd, &rbuf, i + 1, is_stream, sent)) return 1;
    }
  }
  ::close(fd);

  // The idle fleet must still be alive and serviceable after the whole
  // command stream ran on another connection.
  for (std::size_t i = 0; i < soak_fds.size(); ++i) {
    Frame ping;
    ping.opcode = Opcode::kPing;
    ping.request_id = 0xBEEF0000 + i;
    std::string encoded;
    EncodeFrame(ping, &encoded);
    std::string soak_buf;
    Frame pong;
    if (!SendAll(soak_fds[i], encoded) ||
        !RecvFrame(soak_fds[i], &soak_buf, &pong) ||
        pong.opcode != Opcode::kPong || pong.request_id != ping.request_id) {
      std::cerr << "error: soak connection " << i << " failed its ping\n";
      ++failures;
    }
    ::close(soak_fds[i]);
  }
  if (!soak_fds.empty() && failures == 0) {
    std::cerr << "soak: " << soak_fds.size() << " idle connections verified\n";
  }
  return failures == 0 ? 0 : 1;
}
