// Scrapes a running fairbc_server's metrics and prints the raw
// Prometheus exposition text to stdout.
//
// Usage:
//   fairbc_metrics_scrape --port=N          # line-protocol `metrics` command
//   fairbc_metrics_scrape --http-port=N     # --metrics-port HTTP endpoint
//
// The line-protocol path sends `metrics\n` and unwraps the JSON-escaped
// `text` field of the response; the HTTP path issues GET /metrics and
// strips the headers. Exit status is nonzero when the scrape fails or
// the response does not parse, so shell scripts can gate on it.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <iostream>
#include <string>

#include "common/flags.h"

namespace {

int Connect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

// Reads until `stop` appears (line protocol: '\n') or EOF.
std::string ReadUntil(int fd, char stop) {
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return out;
    out.append(buf, static_cast<std::size_t>(n));
    if (out.find(stop) != std::string::npos) return out;
  }
}

std::string ReadAll(int fd) {
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return out;
    out.append(buf, static_cast<std::size_t>(n));
  }
}

// Extracts and unescapes the `"text":"..."` field of a metrics response.
bool ExtractText(const std::string& json, std::string* out) {
  const std::string key = "\"text\":\"";
  const std::size_t start = json.find(key);
  if (start == std::string::npos) return false;
  out->clear();
  for (std::size_t i = start + key.size(); i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"') return true;
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (++i >= json.size()) return false;
    switch (json[i]) {
      case 'n':
        out->push_back('\n');
        break;
      case 'r':
        out->push_back('\r');
        break;
      case 't':
        out->push_back('\t');
        break;
      case 'u':
        // Exposition text is plain ASCII; \u00XX covers the control range.
        if (i + 4 < json.size()) {
          out->push_back(static_cast<char>(
              std::stoi(json.substr(i + 1, 4), nullptr, 16)));
          i += 4;
        }
        break;
      default:
        out->push_back(json[i]);
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  fairbc::FlagParser flags;
  if (fairbc::Status status = flags.Parse(argc, argv); !status.ok()) {
    std::cerr << "flag error: " << status.ToString() << "\n";
    return 2;
  }
  const int port = static_cast<int>(flags.GetInt("port", -1));
  const int http_port = static_cast<int>(flags.GetInt("http-port", -1));
  if ((port < 0) == (http_port < 0)) {
    std::cerr << "usage: fairbc_metrics_scrape --port=N | --http-port=N\n";
    return 2;
  }

  const int fd = Connect(port >= 0 ? port : http_port);
  if (fd < 0) {
    std::cerr << "connect failed: " << std::strerror(errno) << "\n";
    return 1;
  }

  std::string text;
  if (port >= 0) {
    if (!SendAll(fd, "metrics\n")) {
      std::cerr << "send failed\n";
      ::close(fd);
      return 1;
    }
    const std::string line = ReadUntil(fd, '\n');
    ::close(fd);
    if (line.find("\"ok\":true") == std::string::npos ||
        !ExtractText(line, &text)) {
      std::cerr << "bad metrics response: " << line << "\n";
      return 1;
    }
  } else {
    if (!SendAll(fd, "GET /metrics HTTP/1.0\r\n\r\n")) {
      std::cerr << "send failed\n";
      ::close(fd);
      return 1;
    }
    const std::string response = ReadAll(fd);
    ::close(fd);
    const std::size_t body = response.find("\r\n\r\n");
    if (response.compare(0, 12, "HTTP/1.0 200") != 0 ||
        body == std::string::npos) {
      std::cerr << "bad http response\n";
      return 1;
    }
    text = response.substr(body + 4);
  }

  std::cout << text;
  return 0;
}
