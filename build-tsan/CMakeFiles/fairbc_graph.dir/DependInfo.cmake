
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/attr_assign.cc" "CMakeFiles/fairbc_graph.dir/src/graph/attr_assign.cc.o" "gcc" "CMakeFiles/fairbc_graph.dir/src/graph/attr_assign.cc.o.d"
  "/root/repo/src/graph/biclique_io.cc" "CMakeFiles/fairbc_graph.dir/src/graph/biclique_io.cc.o" "gcc" "CMakeFiles/fairbc_graph.dir/src/graph/biclique_io.cc.o.d"
  "/root/repo/src/graph/bipartite_graph.cc" "CMakeFiles/fairbc_graph.dir/src/graph/bipartite_graph.cc.o" "gcc" "CMakeFiles/fairbc_graph.dir/src/graph/bipartite_graph.cc.o.d"
  "/root/repo/src/graph/builder.cc" "CMakeFiles/fairbc_graph.dir/src/graph/builder.cc.o" "gcc" "CMakeFiles/fairbc_graph.dir/src/graph/builder.cc.o.d"
  "/root/repo/src/graph/generators.cc" "CMakeFiles/fairbc_graph.dir/src/graph/generators.cc.o" "gcc" "CMakeFiles/fairbc_graph.dir/src/graph/generators.cc.o.d"
  "/root/repo/src/graph/io.cc" "CMakeFiles/fairbc_graph.dir/src/graph/io.cc.o" "gcc" "CMakeFiles/fairbc_graph.dir/src/graph/io.cc.o.d"
  "/root/repo/src/graph/stats.cc" "CMakeFiles/fairbc_graph.dir/src/graph/stats.cc.o" "gcc" "CMakeFiles/fairbc_graph.dir/src/graph/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/CMakeFiles/fairbc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
