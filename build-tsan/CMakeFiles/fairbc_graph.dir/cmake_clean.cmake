file(REMOVE_RECURSE
  "CMakeFiles/fairbc_graph.dir/src/graph/attr_assign.cc.o"
  "CMakeFiles/fairbc_graph.dir/src/graph/attr_assign.cc.o.d"
  "CMakeFiles/fairbc_graph.dir/src/graph/biclique_io.cc.o"
  "CMakeFiles/fairbc_graph.dir/src/graph/biclique_io.cc.o.d"
  "CMakeFiles/fairbc_graph.dir/src/graph/bipartite_graph.cc.o"
  "CMakeFiles/fairbc_graph.dir/src/graph/bipartite_graph.cc.o.d"
  "CMakeFiles/fairbc_graph.dir/src/graph/builder.cc.o"
  "CMakeFiles/fairbc_graph.dir/src/graph/builder.cc.o.d"
  "CMakeFiles/fairbc_graph.dir/src/graph/generators.cc.o"
  "CMakeFiles/fairbc_graph.dir/src/graph/generators.cc.o.d"
  "CMakeFiles/fairbc_graph.dir/src/graph/io.cc.o"
  "CMakeFiles/fairbc_graph.dir/src/graph/io.cc.o.d"
  "CMakeFiles/fairbc_graph.dir/src/graph/stats.cc.o"
  "CMakeFiles/fairbc_graph.dir/src/graph/stats.cc.o.d"
  "libfairbc_graph.a"
  "libfairbc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairbc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
