# Empty compiler generated dependencies file for fairbc_graph.
# This may be replaced when dependencies are built.
