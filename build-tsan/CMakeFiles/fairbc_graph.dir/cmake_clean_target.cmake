file(REMOVE_RECURSE
  "libfairbc_graph.a"
)
