# Empty compiler generated dependencies file for max_search_test.
# This may be replaced when dependencies are built.
