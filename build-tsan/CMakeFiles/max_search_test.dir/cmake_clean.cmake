file(REMOVE_RECURSE
  "CMakeFiles/max_search_test.dir/tests/max_search_test.cc.o"
  "CMakeFiles/max_search_test.dir/tests/max_search_test.cc.o.d"
  "max_search_test"
  "max_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/max_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
