# Empty compiler generated dependencies file for attr_assign_test.
# This may be replaced when dependencies are built.
