file(REMOVE_RECURSE
  "CMakeFiles/attr_assign_test.dir/tests/attr_assign_test.cc.o"
  "CMakeFiles/attr_assign_test.dir/tests/attr_assign_test.cc.o.d"
  "attr_assign_test"
  "attr_assign_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attr_assign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
