file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_pruning_bi.dir/bench/bench_fig4_pruning_bi.cc.o"
  "CMakeFiles/bench_fig4_pruning_bi.dir/bench/bench_fig4_pruning_bi.cc.o.d"
  "bench_fig4_pruning_bi"
  "bench_fig4_pruning_bi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_pruning_bi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
