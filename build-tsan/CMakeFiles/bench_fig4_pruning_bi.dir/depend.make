# Empty dependencies file for bench_fig4_pruning_bi.
# This may be replaced when dependencies are built.
