# Empty compiler generated dependencies file for fair_bcem_test.
# This may be replaced when dependencies are built.
