file(REMOVE_RECURSE
  "CMakeFiles/fair_bcem_test.dir/tests/fair_bcem_test.cc.o"
  "CMakeFiles/fair_bcem_test.dir/tests/fair_bcem_test.cc.o.d"
  "fair_bcem_test"
  "fair_bcem_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fair_bcem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
