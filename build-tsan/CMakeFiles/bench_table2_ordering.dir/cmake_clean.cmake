file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_ordering.dir/bench/bench_table2_ordering.cc.o"
  "CMakeFiles/bench_table2_ordering.dir/bench/bench_table2_ordering.cc.o.d"
  "bench_table2_ordering"
  "bench_table2_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
