
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cfcore_test.cc" "CMakeFiles/cfcore_test.dir/tests/cfcore_test.cc.o" "gcc" "CMakeFiles/cfcore_test.dir/tests/cfcore_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/CMakeFiles/fairbc_test_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/CMakeFiles/fairbc_recsys.dir/DependInfo.cmake"
  "/root/repo/build-tsan/CMakeFiles/fairbc_bench_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/CMakeFiles/fairbc_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/CMakeFiles/fairbc_fairness.dir/DependInfo.cmake"
  "/root/repo/build-tsan/CMakeFiles/fairbc_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/CMakeFiles/fairbc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
