file(REMOVE_RECURSE
  "CMakeFiles/cfcore_test.dir/tests/cfcore_test.cc.o"
  "CMakeFiles/cfcore_test.dir/tests/cfcore_test.cc.o.d"
  "cfcore_test"
  "cfcore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfcore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
