# Empty dependencies file for cfcore_test.
# This may be replaced when dependencies are built.
