# Empty compiler generated dependencies file for bench_ablation_observations.
# This may be replaced when dependencies are built.
