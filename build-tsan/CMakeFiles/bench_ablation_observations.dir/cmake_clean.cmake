file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_observations.dir/bench/bench_ablation_observations.cc.o"
  "CMakeFiles/bench_ablation_observations.dir/bench/bench_ablation_observations.cc.o.d"
  "bench_ablation_observations"
  "bench_ablation_observations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_observations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
