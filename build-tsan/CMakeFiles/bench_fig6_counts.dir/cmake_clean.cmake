file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_counts.dir/bench/bench_fig6_counts.cc.o"
  "CMakeFiles/bench_fig6_counts.dir/bench/bench_fig6_counts.cc.o.d"
  "bench_fig6_counts"
  "bench_fig6_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
