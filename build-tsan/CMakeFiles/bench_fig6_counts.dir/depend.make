# Empty dependencies file for bench_fig6_counts.
# This may be replaced when dependencies are built.
