# Empty compiler generated dependencies file for biclique_io_test.
# This may be replaced when dependencies are built.
