file(REMOVE_RECURSE
  "CMakeFiles/biclique_io_test.dir/tests/biclique_io_test.cc.o"
  "CMakeFiles/biclique_io_test.dir/tests/biclique_io_test.cc.o.d"
  "biclique_io_test"
  "biclique_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biclique_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
