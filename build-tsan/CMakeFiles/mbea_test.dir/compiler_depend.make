# Empty compiler generated dependencies file for mbea_test.
# This may be replaced when dependencies are built.
