file(REMOVE_RECURSE
  "CMakeFiles/mbea_test.dir/tests/mbea_test.cc.o"
  "CMakeFiles/mbea_test.dir/tests/mbea_test.cc.o.d"
  "mbea_test"
  "mbea_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbea_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
