file(REMOVE_RECURSE
  "CMakeFiles/fairbc_cli.dir/tools/fairbc_cli.cc.o"
  "CMakeFiles/fairbc_cli.dir/tools/fairbc_cli.cc.o.d"
  "fairbc_cli"
  "fairbc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairbc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
