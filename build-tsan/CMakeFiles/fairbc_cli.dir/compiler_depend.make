# Empty compiler generated dependencies file for fairbc_cli.
# This may be replaced when dependencies are built.
