# Empty compiler generated dependencies file for bench_fig11_pro_counts.
# This may be replaced when dependencies are built.
