file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_pro_counts.dir/bench/bench_fig11_pro_counts.cc.o"
  "CMakeFiles/bench_fig11_pro_counts.dir/bench/bench_fig11_pro_counts.cc.o.d"
  "bench_fig11_pro_counts"
  "bench_fig11_pro_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_pro_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
