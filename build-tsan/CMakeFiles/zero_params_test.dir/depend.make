# Empty dependencies file for zero_params_test.
# This may be replaced when dependencies are built.
