file(REMOVE_RECURSE
  "CMakeFiles/zero_params_test.dir/tests/zero_params_test.cc.o"
  "CMakeFiles/zero_params_test.dir/tests/zero_params_test.cc.o.d"
  "zero_params_test"
  "zero_params_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zero_params_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
