# Empty dependencies file for enumerate_types_test.
# This may be replaced when dependencies are built.
