file(REMOVE_RECURSE
  "CMakeFiles/enumerate_types_test.dir/tests/enumerate_types_test.cc.o"
  "CMakeFiles/enumerate_types_test.dir/tests/enumerate_types_test.cc.o.d"
  "enumerate_types_test"
  "enumerate_types_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enumerate_types_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
