# Empty compiler generated dependencies file for two_hop_test.
# This may be replaced when dependencies are built.
