file(REMOVE_RECURSE
  "CMakeFiles/two_hop_test.dir/tests/two_hop_test.cc.o"
  "CMakeFiles/two_hop_test.dir/tests/two_hop_test.cc.o.d"
  "two_hop_test"
  "two_hop_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_hop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
