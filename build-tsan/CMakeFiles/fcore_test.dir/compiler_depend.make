# Empty compiler generated dependencies file for fcore_test.
# This may be replaced when dependencies are built.
