file(REMOVE_RECURSE
  "CMakeFiles/fcore_test.dir/tests/fcore_test.cc.o"
  "CMakeFiles/fcore_test.dir/tests/fcore_test.cc.o.d"
  "fcore_test"
  "fcore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
