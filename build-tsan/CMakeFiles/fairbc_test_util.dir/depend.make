# Empty dependencies file for fairbc_test_util.
# This may be replaced when dependencies are built.
