file(REMOVE_RECURSE
  "libfairbc_test_util.a"
)
