file(REMOVE_RECURSE
  "CMakeFiles/fairbc_test_util.dir/tests/test_util.cc.o"
  "CMakeFiles/fairbc_test_util.dir/tests/test_util.cc.o.d"
  "libfairbc_test_util.a"
  "libfairbc_test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairbc_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
