file(REMOVE_RECURSE
  "CMakeFiles/cf_test.dir/tests/cf_test.cc.o"
  "CMakeFiles/cf_test.dir/tests/cf_test.cc.o.d"
  "cf_test"
  "cf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
