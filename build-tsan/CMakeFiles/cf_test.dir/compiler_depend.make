# Empty compiler generated dependencies file for cf_test.
# This may be replaced when dependencies are built.
