
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bfair_bcem.cc" "CMakeFiles/fairbc_core.dir/src/core/bfair_bcem.cc.o" "gcc" "CMakeFiles/fairbc_core.dir/src/core/bfair_bcem.cc.o.d"
  "/root/repo/src/core/bruteforce.cc" "CMakeFiles/fairbc_core.dir/src/core/bruteforce.cc.o" "gcc" "CMakeFiles/fairbc_core.dir/src/core/bruteforce.cc.o.d"
  "/root/repo/src/core/cfcore.cc" "CMakeFiles/fairbc_core.dir/src/core/cfcore.cc.o" "gcc" "CMakeFiles/fairbc_core.dir/src/core/cfcore.cc.o.d"
  "/root/repo/src/core/coloring.cc" "CMakeFiles/fairbc_core.dir/src/core/coloring.cc.o" "gcc" "CMakeFiles/fairbc_core.dir/src/core/coloring.cc.o.d"
  "/root/repo/src/core/enumerate.cc" "CMakeFiles/fairbc_core.dir/src/core/enumerate.cc.o" "gcc" "CMakeFiles/fairbc_core.dir/src/core/enumerate.cc.o.d"
  "/root/repo/src/core/fair_bcem.cc" "CMakeFiles/fairbc_core.dir/src/core/fair_bcem.cc.o" "gcc" "CMakeFiles/fairbc_core.dir/src/core/fair_bcem.cc.o.d"
  "/root/repo/src/core/fair_bcem_pp.cc" "CMakeFiles/fairbc_core.dir/src/core/fair_bcem_pp.cc.o" "gcc" "CMakeFiles/fairbc_core.dir/src/core/fair_bcem_pp.cc.o.d"
  "/root/repo/src/core/fcore.cc" "CMakeFiles/fairbc_core.dir/src/core/fcore.cc.o" "gcc" "CMakeFiles/fairbc_core.dir/src/core/fcore.cc.o.d"
  "/root/repo/src/core/max_search.cc" "CMakeFiles/fairbc_core.dir/src/core/max_search.cc.o" "gcc" "CMakeFiles/fairbc_core.dir/src/core/max_search.cc.o.d"
  "/root/repo/src/core/mbea.cc" "CMakeFiles/fairbc_core.dir/src/core/mbea.cc.o" "gcc" "CMakeFiles/fairbc_core.dir/src/core/mbea.cc.o.d"
  "/root/repo/src/core/ordering.cc" "CMakeFiles/fairbc_core.dir/src/core/ordering.cc.o" "gcc" "CMakeFiles/fairbc_core.dir/src/core/ordering.cc.o.d"
  "/root/repo/src/core/parallel.cc" "CMakeFiles/fairbc_core.dir/src/core/parallel.cc.o" "gcc" "CMakeFiles/fairbc_core.dir/src/core/parallel.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "CMakeFiles/fairbc_core.dir/src/core/pipeline.cc.o" "gcc" "CMakeFiles/fairbc_core.dir/src/core/pipeline.cc.o.d"
  "/root/repo/src/core/search_context.cc" "CMakeFiles/fairbc_core.dir/src/core/search_context.cc.o" "gcc" "CMakeFiles/fairbc_core.dir/src/core/search_context.cc.o.d"
  "/root/repo/src/core/two_hop_graph.cc" "CMakeFiles/fairbc_core.dir/src/core/two_hop_graph.cc.o" "gcc" "CMakeFiles/fairbc_core.dir/src/core/two_hop_graph.cc.o.d"
  "/root/repo/src/core/verify.cc" "CMakeFiles/fairbc_core.dir/src/core/verify.cc.o" "gcc" "CMakeFiles/fairbc_core.dir/src/core/verify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/CMakeFiles/fairbc_fairness.dir/DependInfo.cmake"
  "/root/repo/build-tsan/CMakeFiles/fairbc_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/CMakeFiles/fairbc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
