file(REMOVE_RECURSE
  "libfairbc_core.a"
)
