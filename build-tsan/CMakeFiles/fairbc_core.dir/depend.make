# Empty dependencies file for fairbc_core.
# This may be replaced when dependencies are built.
