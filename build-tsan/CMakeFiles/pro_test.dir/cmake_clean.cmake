file(REMOVE_RECURSE
  "CMakeFiles/pro_test.dir/tests/pro_test.cc.o"
  "CMakeFiles/pro_test.dir/tests/pro_test.cc.o.d"
  "pro_test"
  "pro_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pro_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
