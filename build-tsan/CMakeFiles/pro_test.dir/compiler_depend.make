# Empty compiler generated dependencies file for pro_test.
# This may be replaced when dependencies are built.
