file(REMOVE_RECURSE
  "CMakeFiles/property_oracle_test.dir/tests/property_oracle_test.cc.o"
  "CMakeFiles/property_oracle_test.dir/tests/property_oracle_test.cc.o.d"
  "property_oracle_test"
  "property_oracle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
