# Empty compiler generated dependencies file for property_oracle_test.
# This may be replaced when dependencies are built.
