# Empty dependencies file for fairbc_fairness.
# This may be replaced when dependencies are built.
