file(REMOVE_RECURSE
  "libfairbc_fairness.a"
)
