file(REMOVE_RECURSE
  "CMakeFiles/fairbc_fairness.dir/src/fairness/combination.cc.o"
  "CMakeFiles/fairbc_fairness.dir/src/fairness/combination.cc.o.d"
  "CMakeFiles/fairbc_fairness.dir/src/fairness/fair_set.cc.o"
  "CMakeFiles/fairbc_fairness.dir/src/fairness/fair_set.cc.o.d"
  "CMakeFiles/fairbc_fairness.dir/src/fairness/fair_vector.cc.o"
  "CMakeFiles/fairbc_fairness.dir/src/fairness/fair_vector.cc.o.d"
  "libfairbc_fairness.a"
  "libfairbc_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairbc_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
