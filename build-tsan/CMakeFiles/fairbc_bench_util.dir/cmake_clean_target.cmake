file(REMOVE_RECURSE
  "libfairbc_bench_util.a"
)
