file(REMOVE_RECURSE
  "CMakeFiles/fairbc_bench_util.dir/src/bench_util/datasets.cc.o"
  "CMakeFiles/fairbc_bench_util.dir/src/bench_util/datasets.cc.o.d"
  "CMakeFiles/fairbc_bench_util.dir/src/bench_util/sweep.cc.o"
  "CMakeFiles/fairbc_bench_util.dir/src/bench_util/sweep.cc.o.d"
  "CMakeFiles/fairbc_bench_util.dir/src/bench_util/table.cc.o"
  "CMakeFiles/fairbc_bench_util.dir/src/bench_util/table.cc.o.d"
  "libfairbc_bench_util.a"
  "libfairbc_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairbc_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
