# Empty compiler generated dependencies file for fairbc_bench_util.
# This may be replaced when dependencies are built.
