file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_bsfbc.dir/bench/bench_fig5_bsfbc.cc.o"
  "CMakeFiles/bench_fig5_bsfbc.dir/bench/bench_fig5_bsfbc.cc.o.d"
  "bench_fig5_bsfbc"
  "bench_fig5_bsfbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_bsfbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
