# Empty compiler generated dependencies file for bench_fig5_bsfbc.
# This may be replaced when dependencies are built.
