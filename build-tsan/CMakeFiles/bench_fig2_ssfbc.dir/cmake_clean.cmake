file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_ssfbc.dir/bench/bench_fig2_ssfbc.cc.o"
  "CMakeFiles/bench_fig2_ssfbc.dir/bench/bench_fig2_ssfbc.cc.o.d"
  "bench_fig2_ssfbc"
  "bench_fig2_ssfbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_ssfbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
