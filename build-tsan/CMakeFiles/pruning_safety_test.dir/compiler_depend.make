# Empty compiler generated dependencies file for pruning_safety_test.
# This may be replaced when dependencies are built.
