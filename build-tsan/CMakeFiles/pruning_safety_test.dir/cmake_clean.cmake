file(REMOVE_RECURSE
  "CMakeFiles/pruning_safety_test.dir/tests/pruning_safety_test.cc.o"
  "CMakeFiles/pruning_safety_test.dir/tests/pruning_safety_test.cc.o.d"
  "pruning_safety_test"
  "pruning_safety_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pruning_safety_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
