file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_pruning_ss.dir/bench/bench_fig3_pruning_ss.cc.o"
  "CMakeFiles/bench_fig3_pruning_ss.dir/bench/bench_fig3_pruning_ss.cc.o.d"
  "bench_fig3_pruning_ss"
  "bench_fig3_pruning_ss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_pruning_ss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
