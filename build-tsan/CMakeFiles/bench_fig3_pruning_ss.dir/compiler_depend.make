# Empty compiler generated dependencies file for bench_fig3_pruning_ss.
# This may be replaced when dependencies are built.
