file(REMOVE_RECURSE
  "libfairbc_common.a"
)
