file(REMOVE_RECURSE
  "CMakeFiles/fairbc_common.dir/src/common/flags.cc.o"
  "CMakeFiles/fairbc_common.dir/src/common/flags.cc.o.d"
  "CMakeFiles/fairbc_common.dir/src/common/memory.cc.o"
  "CMakeFiles/fairbc_common.dir/src/common/memory.cc.o.d"
  "CMakeFiles/fairbc_common.dir/src/common/status.cc.o"
  "CMakeFiles/fairbc_common.dir/src/common/status.cc.o.d"
  "libfairbc_common.a"
  "libfairbc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairbc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
