# Empty dependencies file for fairbc_common.
# This may be replaced when dependencies are built.
