# Empty compiler generated dependencies file for bfair_bcem_test.
# This may be replaced when dependencies are built.
