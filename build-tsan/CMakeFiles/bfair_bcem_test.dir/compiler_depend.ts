# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bfair_bcem_test.
