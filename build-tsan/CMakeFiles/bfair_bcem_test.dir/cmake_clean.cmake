file(REMOVE_RECURSE
  "CMakeFiles/bfair_bcem_test.dir/tests/bfair_bcem_test.cc.o"
  "CMakeFiles/bfair_bcem_test.dir/tests/bfair_bcem_test.cc.o.d"
  "bfair_bcem_test"
  "bfair_bcem_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfair_bcem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
