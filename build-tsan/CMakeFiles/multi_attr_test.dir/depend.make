# Empty dependencies file for multi_attr_test.
# This may be replaced when dependencies are built.
