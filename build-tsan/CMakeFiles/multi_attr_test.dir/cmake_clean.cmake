file(REMOVE_RECURSE
  "CMakeFiles/multi_attr_test.dir/tests/multi_attr_test.cc.o"
  "CMakeFiles/multi_attr_test.dir/tests/multi_attr_test.cc.o.d"
  "multi_attr_test"
  "multi_attr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_attr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
