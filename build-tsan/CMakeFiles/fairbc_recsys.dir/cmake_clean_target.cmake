file(REMOVE_RECURSE
  "libfairbc_recsys.a"
)
